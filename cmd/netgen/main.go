// Command netgen emits synthetic benchmark circuits in either netlist
// format, standing in for the MCNC suite of the paper's evaluation.
//
// Usage:
//
//	netgen -bench Prim2 -out prim2.hgr            # a named preset
//	netgen -modules 1000 -nets 1100 -seed 7 -out c.hgr
//	netgen -list                                   # show presets
package main

import (
	"flag"
	"fmt"
	"os"

	"igpart"
	"igpart/internal/hypergraph"
	"igpart/internal/netgen"
)

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark preset name (see -list)")
		list      = flag.Bool("list", false, "list benchmark presets and exit")
		modules   = flag.Int("modules", 0, "module count (custom circuit)")
		nets      = flag.Int("nets", 0, "net count (custom circuit)")
		seed      = flag.Int64("seed", 1, "generator seed")
		locality  = flag.Float64("locality", 0, "hierarchy locality (0 = default 0.93)")
		hubProb   = flag.Float64("hubs", 0, "per-net hub pickup probability (0 = off)")
		scale     = flag.Float64("scale", 1, "scale factor applied to preset sizes")
		out       = flag.String("out", "", "output path (.hgr or named format); stdout if empty")
		stats     = flag.Bool("stats", false, "print circuit statistics to stderr")
	)
	flag.Parse()

	if *list {
		for _, c := range netgen.Benchmarks {
			fmt.Printf("%-9s %7d modules %7d nets\n", c.Name, c.Modules, c.Nets)
		}
		fmt.Println("scale presets (million-net harness):")
		for _, c := range netgen.ScaleBenchmarks {
			fmt.Printf("%-9s %7d modules %7d nets\n", c.Name, c.Modules, c.Nets)
		}
		return
	}

	var cfg netgen.Config
	switch {
	case *benchName != "":
		c, ok := netgen.ByName(*benchName)
		if !ok {
			fatal(fmt.Errorf("unknown benchmark %q (try -list)", *benchName))
		}
		cfg = c.Scaled(*scale)
	case *modules > 0 && *nets > 0:
		cfg = netgen.Config{Name: "custom", Modules: *modules, Nets: *nets}
	default:
		fmt.Fprintln(os.Stderr, "netgen: need -bench or -modules/-nets")
		flag.Usage()
		os.Exit(2)
	}
	cfg.Seed = *seed
	cfg.Locality = *locality
	cfg.HubProb = *hubProb

	h, err := netgen.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Fprintln(os.Stderr, hypergraph.ComputeStats(h))
	}
	if *out == "" {
		if err := hypergraph.WriteHGR(os.Stdout, h); err != nil {
			fatal(err)
		}
		return
	}
	if err := igpart.Save(*out, h); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netgen:", err)
	os.Exit(1)
}
