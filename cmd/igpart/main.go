// Command igpart partitions a netlist file with a chosen algorithm and
// prints the resulting metrics (and optionally the assignment).
//
// Usage:
//
//	igpart -in design.hgr [-algo igmatch|multilevel|portfolio|igvote|eig1|rcut|kl|refined|condensed|multiway|kway|kway-spectral]
//	       [-levels 3] [-cratio 0.9] [-starts 10] [-seed 1] [-p 0] [-assign] [-stats]
//	       [-k 4] [-eps 0.03] [-fix design.fix]
//	       [-reorth auto|full|selective] [-matvec-p 0] [-candidates 0]
//	       [-portfolio-budget 30s] [-portfolio-accept 0]
//	       [-trace] [-metrics] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// The input format is selected by extension: ".hgr" for the hMETIS-style
// format, anything else for the named module/net format.
//
// -trace prints the per-stage timing tree of the run (for igmatch, the
// full pipeline breakdown: IG build, Laplacian assembly, eigensolve
// cycles, sweep shards). -metrics dumps the run's counter/gauge/timer
// registry. -cpuprofile / -memprofile write pprof profiles for
// `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"igpart"
	"igpart/internal/fm"
	"igpart/internal/hypergraph"
)

func main() {
	var (
		in     = flag.String("in", "", "input netlist path (.hgr or named format)")
		nodes  = flag.String("nodes", "", "Bookshelf .nodes path (use with -nets instead of -in)")
		nets   = flag.String("nets", "", "Bookshelf .nets path (use with -nodes instead of -in)")
		algo   = flag.String("algo", "igmatch", "algorithm: igmatch, multilevel, portfolio, igvote, eig1, rcut, kl, refined, condensed, multiway, kway, kway-spectral")
		k      = flag.Int("k", 4, "part count for -algo multiway/kway/kway-spectral")
		eps    = flag.Float64("eps", 0, "imbalance budget for -algo kway/kway-spectral: each part holds at most ceil((1+eps)*n/k) modules (0 = perfect balance)")
		levels = flag.Int("levels", 3, "V-cycle depth for -algo multilevel (1 = flat igmatch)")
		cratio = flag.Float64("cratio", 0.9, "largest acceptable per-round net shrink factor for -algo multilevel")
		starts = flag.Int("starts", 10, "random starts for rcut")
		par    = flag.Int("p", 0, "igmatch sweep parallelism: shards swept concurrently (0 = GOMAXPROCS, 1 = serial; results identical)")
		reorth = flag.String("reorth", "", "Lanczos reorthogonalization: auto (default; selective above "+
			"the size cutoff), full, selective")
		matvecP    = flag.Int("matvec-p", 0, "eigensolver matvec workers (0 = auto, 1 = serial; results bit-identical)")
		candidates = flag.Int("candidates", 0, "for -algo igmatch on huge netlists: complete only this many evenly spaced splits instead of the full sweep (0 = full sweep)")
		seed       = flag.Int64("seed", 1, "seed for randomized algorithms")
		budget     = flag.Duration("portfolio-budget", 0, "for -algo portfolio: race deadline; losers are cancelled and the best finished result wins (0 = wait for all)")
		accept     = flag.Float64("portfolio-accept", 0, "for -algo portfolio: acceptance ratio-cut bound — the first contender at or under it wins immediately (0 = best of lineup)")
		assign     = flag.Bool("assign", false, "print the per-module side assignment")
		stats      = flag.Bool("stats", false, "print netlist statistics before partitioning")
		fixIn      = flag.String("fix", "", "hMETIS .fix file pinning modules to sides; applied with FM refinement after the chosen algorithm")
		trace      = flag.Bool("trace", false, "print the per-stage timing tree after the run")
		metrics    = flag.Bool("metrics", false, "print the run's metrics registry (counters/gauges/timers)")
		cpuProf    = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()
	reorthMode, err := igpart.ParseReorthMode(*reorth)
	if err != nil {
		fatal(err)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}
	var tr *igpart.Trace
	var rec igpart.Recorder // nil when tracing is off
	if *trace || *metrics {
		tr = igpart.NewTrace("igpart")
		rec = tr
	}
	// report prints whatever -trace/-metrics asked for; deferred calls
	// run before the profile writers above.
	report := func() {
		if tr == nil {
			return
		}
		tr.End()
		if *trace {
			fmt.Print(tr.String())
		}
		if *metrics {
			fmt.Print(tr.Metrics().Snapshot().String())
		}
	}
	defer report()
	var h *igpart.Netlist
	switch {
	case *in != "":
		h, err = igpart.Load(*in)
	case *nodes != "" && *nets != "":
		h, err = igpart.LoadBookshelf(*nodes, *nets)
	default:
		fmt.Fprintln(os.Stderr, "igpart: need -in, or -nodes with -nets")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Println(hypergraph.ComputeStats(h))
	}

	// For igmatch the recorder threads through the whole pipeline; the
	// other algorithms get a single span covering their run.
	span := func(name string) func() {
		if rec == nil {
			return func() {}
		}
		sp := rec.StartSpan(name)
		return sp.End
	}

	var res igpart.Result
	switch *algo {
	case "igmatch":
		igOpts := igpart.IGMatchOptions{
			Parallelism: *par, Reorth: reorthMode, MatvecParallelism: *matvecP, Rec: rec,
		}
		var r igpart.IGMatchResult
		if *candidates > 0 {
			r, err = igpart.IGMatchCandidates(h, *candidates, igOpts)
		} else {
			r, err = igpart.IGMatch(h, igOpts)
		}
		if err != nil {
			fatal(err)
		}
		res = r.Result
		fmt.Printf("lambda2=%.6g split=%d/%d matching-bound=%d\n",
			r.Lambda2, r.BestRank, h.NumNets(), r.MatchingBound)
	case "multilevel":
		r, err := igpart.MultilevelIGMatch(h, igpart.MultilevelOptions{
			Levels: *levels, CoarseningRatio: *cratio, Parallelism: *par,
			Reorth: reorthMode, MatvecParallelism: *matvecP, Rec: rec,
		})
		if err != nil {
			fatal(err)
		}
		res = r.Result
		fmt.Printf("levels=%d coarsest-nets=%d/%d coarsest-on-input=%v\n",
			r.Levels, r.CoarsestNets, h.NumNets(), r.CoarsestOnInput)
	case "portfolio":
		r, err := igpart.Portfolio(h, igpart.PortfolioOptions{
			Budget: *budget, Accept: *accept, Seed: *seed,
			Parallelism: *par, Rec: rec,
		})
		if err != nil {
			fatal(err)
		}
		res = igpart.Result{Partition: r.Partition, Metrics: r.Metrics}
		fmt.Printf("features: %s\n", r.Features)
		for _, c := range r.Contenders {
			status := "finished"
			switch {
			case c.Cancelled:
				status = "cancelled"
			case c.Err != nil:
				status = "failed: " + c.Err.Error()
			}
			fmt.Printf("contender %-14s %-9s wall=%v ratio=%.6g\n", c.Alg, status, c.Wall.Round(time.Microsecond), c.Metrics.RatioCut)
		}
		fmt.Printf("winner=%s accepted=%v\n", r.Winner, r.Accepted)
	case "igvote":
		end := span("igvote")
		res, err = igpart.IGVote(h)
		end()
	case "eig1":
		end := span("eig1")
		res, err = igpart.EIG1(h)
		end()
	case "rcut":
		end := span("rcut")
		res, err = igpart.RCut(h, *starts, *seed)
		end()
	case "kl":
		end := span("kl")
		res, err = igpart.KL(h, *seed)
		end()
	case "refined":
		end := span("refined")
		res, err = igpart.Refined(h)
		end()
	case "condensed":
		end := span("condensed")
		res, err = igpart.Condensed(h)
		end()
	case "multiway":
		end := span("multiway")
		mw, err := igpart.Multiway(h, *k)
		end()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("multiway: k=%d sizes=%v spanning=%d connectivity=%d ratio=%.5g\n",
			mw.K, mw.PartSizesSorted(), mw.SpanningNets, mw.Connectivity, mw.RatioValue)
		if *assign {
			for v := 0; v < h.NumModules(); v++ {
				fmt.Printf("%s %d\n", h.ModuleName(v), mw.Part[v])
			}
		}
		return
	case "kway", "kway-spectral":
		// Unlike the bipartition algorithms, -fix threads into the engine
		// here: pins constrain every bisection rather than being patched in
		// by FM afterwards.
		kwOpts := igpart.KWayOptions{
			Eps: *eps, Spectral: *algo == "kway-spectral", Candidates: *candidates,
			Seed: *seed, Parallelism: *par, Reorth: reorthMode,
			MatvecParallelism: *matvecP, Rec: rec,
		}
		if *fixIn != "" {
			fix, err := hypergraph.LoadFix(*fixIn, h.NumModules(), *k)
			if err != nil {
				fatal(err)
			}
			kwOpts.Fixed = fix.Part
		}
		end := span(*algo)
		mw, err := igpart.KWay(h, *k, kwOpts)
		end()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: k=%d eps=%g cap=%d sizes=%v spanning=%d connectivity=%d ratio=%.5g\n",
			*algo, mw.K, *eps, mw.Cap, mw.PartSizesSorted(), mw.SpanningNets, mw.Connectivity, mw.RatioValue)
		if *assign {
			for v := 0; v < h.NumModules(); v++ {
				fmt.Printf("%s %d\n", h.ModuleName(v), mw.Part[v])
			}
		}
		return
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	if err != nil {
		fatal(err)
	}
	if *fixIn != "" {
		fix, err := hypergraph.LoadFix(*fixIn, h.NumModules(), 2)
		if err != nil {
			fatal(err)
		}
		for v, part := range fix.Part {
			if part == 0 {
				res.Partition.Set(v, igpart.U)
			} else if part == 1 {
				res.Partition.Set(v, igpart.W)
			}
		}
		met, _, err := fm.RefinePartition(h, res.Partition, fm.Options{Fixed: fix.Mask()})
		if err != nil {
			fatal(err)
		}
		res.Metrics = met
		fmt.Printf("applied %d pinned modules from %s\n", fix.NumFixed(), *fixIn)
	}
	fmt.Printf("%s: %v\n", *algo, res.Metrics)
	if *assign {
		for v := 0; v < h.NumModules(); v++ {
			fmt.Printf("%s %v\n", h.ModuleName(v), res.Partition.Side(v))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "igpart:", err)
	os.Exit(1)
}
