// Command igpart partitions a netlist file with a chosen algorithm and
// prints the resulting metrics (and optionally the assignment).
//
// Usage:
//
//	igpart -in design.hgr [-algo igmatch|igvote|eig1|rcut|kl|refined|condensed]
//	       [-starts 10] [-seed 1] [-p 0] [-assign] [-stats]
//
// The input format is selected by extension: ".hgr" for the hMETIS-style
// format, anything else for the named module/net format.
package main

import (
	"flag"
	"fmt"
	"os"

	"igpart"
	"igpart/internal/fm"
	"igpart/internal/hypergraph"
)

func main() {
	var (
		in     = flag.String("in", "", "input netlist path (.hgr or named format)")
		nodes  = flag.String("nodes", "", "Bookshelf .nodes path (use with -nets instead of -in)")
		nets   = flag.String("nets", "", "Bookshelf .nets path (use with -nodes instead of -in)")
		algo   = flag.String("algo", "igmatch", "algorithm: igmatch, igvote, eig1, rcut, kl, refined, condensed, multiway")
		k      = flag.Int("k", 4, "part count for -algo multiway")
		starts = flag.Int("starts", 10, "random starts for rcut")
		par    = flag.Int("p", 0, "igmatch sweep parallelism: shards swept concurrently (0 = GOMAXPROCS, 1 = serial; results identical)")
		seed   = flag.Int64("seed", 1, "seed for randomized algorithms")
		assign = flag.Bool("assign", false, "print the per-module side assignment")
		stats  = flag.Bool("stats", false, "print netlist statistics before partitioning")
		fixIn  = flag.String("fix", "", "hMETIS .fix file pinning modules to sides; applied with FM refinement after the chosen algorithm")
	)
	flag.Parse()
	var h *igpart.Netlist
	var err error
	switch {
	case *in != "":
		h, err = igpart.Load(*in)
	case *nodes != "" && *nets != "":
		h, err = igpart.LoadBookshelf(*nodes, *nets)
	default:
		fmt.Fprintln(os.Stderr, "igpart: need -in, or -nodes with -nets")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Println(hypergraph.ComputeStats(h))
	}

	var res igpart.Result
	switch *algo {
	case "igmatch":
		r, err := igpart.IGMatch(h, igpart.IGMatchOptions{Parallelism: *par})
		if err != nil {
			fatal(err)
		}
		res = r.Result
		fmt.Printf("lambda2=%.6g split=%d/%d matching-bound=%d\n",
			r.Lambda2, r.BestRank, h.NumNets(), r.MatchingBound)
	case "igvote":
		res, err = igpart.IGVote(h)
	case "eig1":
		res, err = igpart.EIG1(h)
	case "rcut":
		res, err = igpart.RCut(h, *starts, *seed)
	case "kl":
		res, err = igpart.KL(h, *seed)
	case "refined":
		res, err = igpart.Refined(h)
	case "condensed":
		res, err = igpart.Condensed(h)
	case "multiway":
		mw, err := igpart.Multiway(h, *k)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("multiway: k=%d sizes=%v spanning=%d connectivity=%d ratio=%.5g\n",
			mw.K, mw.PartSizesSorted(), mw.SpanningNets, mw.Connectivity, mw.RatioValue)
		if *assign {
			for v := 0; v < h.NumModules(); v++ {
				fmt.Printf("%s %d\n", h.ModuleName(v), mw.Part[v])
			}
		}
		return
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	if err != nil {
		fatal(err)
	}
	if *fixIn != "" {
		fix, err := hypergraph.LoadFix(*fixIn, h.NumModules(), 2)
		if err != nil {
			fatal(err)
		}
		for v, part := range fix.Part {
			if part == 0 {
				res.Partition.Set(v, igpart.U)
			} else if part == 1 {
				res.Partition.Set(v, igpart.W)
			}
		}
		met, _, err := fm.RefinePartition(h, res.Partition, fm.Options{Fixed: fix.Mask()})
		if err != nil {
			fatal(err)
		}
		res.Metrics = met
		fmt.Printf("applied %d pinned modules from %s\n", fix.NumFixed(), *fixIn)
	}
	fmt.Printf("%s: %v\n", *algo, res.Metrics)
	if *assign {
		for v := 0; v < h.NumModules(); v++ {
			fmt.Printf("%s %v\n", h.ModuleName(v), res.Partition.Side(v))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "igpart:", err)
	os.Exit(1)
}
