// Command experiments regenerates the paper's tables and the DESIGN.md
// ablations on the synthetic benchmark suite.
//
// Usage:
//
//	experiments                    # everything, full size
//	experiments -table 2           # one table: 1, 2, 3, eig1, igdiam,
//	                               # sparsity, timing, stability, weights,
//	                               # netmodel, threshold, recursive, refine,
//	                               # cluster, multilevel, taxonomy, ordering,
//	                               # lanczos, scaling, trace
//	experiments -scale 0.25        # smaller circuits for a quick pass
//	experiments -csv results/      # also write machine-readable CSVs
//	experiments -report nightly    # write results/BENCH_nightly.json
//	experiments -report ci -baseline results/BENCH_baseline.json
//	                               # CI bench-sanity: fail on ratio-cut
//	                               # regressions beyond -tolerance
//	experiments -trace -table 2    # per-stage timing tree after the tables
//	experiments -scale-report scale
//	                               # million-net harness: run the scale
//	                               # preset under selective and full
//	                               # reorth, write results/BENCH_scale.json
//	experiments -verify-scale results/BENCH_scale.json
//	                               # gate: ≥100k nets, selective ≥3×
//	                               # faster at equal ratio cut
//	experiments -portfolio-report portfolio
//	                               # portfolio/ECO harness: race vs fixed
//	                               # IG-Match, warm vs cold ECO re-solve,
//	                               # write results/BENCH_portfolio.json
//	experiments -verify-portfolio results/BENCH_portfolio.json
//	                               # gate: warm ECO ≥3× faster than cold
//	                               # at matching ratio cut
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"time"

	"igpart/internal/bench"
	"igpart/internal/eigen"
	"igpart/internal/obs"
)

func main() {
	var (
		table      = flag.String("table", "all", "which table to regenerate")
		scale      = flag.Float64("scale", 1.0, "benchmark scale factor")
		starts     = flag.Int("starts", 10, "RCut random starts")
		seeds      = flag.Int("seeds", 5, "seeds for the stability table")
		par        = flag.Int("p", 0, "IG-Match sweep parallelism (0 = GOMAXPROCS, 1 = serial; results identical)")
		levels     = flag.Int("levels", 0, "multilevel V-cycle depth (0 = package default, 1 = flat)")
		csvDir     = flag.String("csv", "", "also write machine-readable CSVs into this directory")
		report     = flag.String("report", "", "write a JSON run report named BENCH_<name>.json instead of tables")
		kwayReport = flag.String("kway-report", "", "write a balanced k-way report BENCH_<name>.json (both engines, k per -ks) instead of tables")
		kwayBase   = flag.String("kway-baseline", "", "with -kway-report: diff against this BENCH_*.json and fail on spanning-net regressions")
		kwayEps    = flag.Float64("kway-eps", 0.03, "imbalance budget for -kway-report")
		resultsDir = flag.String("results", "results", "directory for -report output")
		baseline   = flag.String("baseline", "", "with -report: diff the fresh report against this BENCH_*.json and fail on ratio-cut regressions")
		tolerance  = flag.Float64("tolerance", 0.10, "relative ratio-cut tolerance for -baseline comparisons")
		trace      = flag.Bool("trace", false, "print the per-stage timing tree after the run")
		metrics    = flag.Bool("metrics", false, "print the run's metrics registry (counters/gauges/timers)")
		cpuProf    = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")

		reorth      = flag.String("reorth", "", "Lanczos reorthogonalization mode: auto (default), full, selective")
		matvecP     = flag.Int("matvec-p", 0, "eigensolver matvec workers (0 = auto, 1 = serial)")
		scaleReport = flag.String("scale-report", "", "run the scale harness and write BENCH_<name>.json instead of tables")
		scalePreset = flag.String("scale-preset", "scale100k", "netgen preset for -scale-report (scale10k..scale1M or any benchmark)")
		candidates  = flag.Int("candidates", 0, "candidate splits for -scale-report (0 = default 32)")
		scaleBudget = flag.Float64("scale-budget", 3.0, "with -scale-report -baseline: wall-clock budget factor (<=0 disables)")
		verifyScale = flag.String("verify-scale", "", "verify an existing scale report against the >=100k-net, >=3x-speedup gate and exit")

		portfolioReport = flag.String("portfolio-report", "", "run the portfolio/ECO harness and write BENCH_<name>.json instead of tables")
		portfolioPreset = flag.String("portfolio-preset", "scale10k", "netgen preset for -portfolio-report")
		deltaNets       = flag.Int("delta-nets", 0, "nets removed by the ECO delta for -portfolio-report (0 = 1% of the circuit)")
		verifyPortfolio = flag.String("verify-portfolio", "", "verify an existing portfolio report against the warm>=3x-speedup gate and exit")
	)
	flag.Parse()
	reorthMode, err := eigen.ParseReorthMode(*reorth)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	if *verifyScale != "" {
		rep, err := bench.ReadReportFile(*verifyScale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: verify-scale:", err)
			os.Exit(1)
		}
		if violations := bench.VerifyScaleReport(rep); len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "experiments: %s fails the scale gate:\n", *verifyScale)
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "  ", v)
			}
			os.Exit(1)
		}
		fmt.Printf("verify-scale: %s passes (>=%d nets, >=%.1fx selective speedup, ratio cuts within %.0f%%)\n",
			*verifyScale, bench.ScaleMinNets, bench.ScaleMinSpeedup, bench.ScaleRatioTol*100)
		return
	}

	if *verifyPortfolio != "" {
		rep, err := bench.ReadReportFile(*verifyPortfolio)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: verify-portfolio:", err)
			os.Exit(1)
		}
		if violations := bench.VerifyPortfolioReport(rep); len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "experiments: %s fails the portfolio gate:\n", *verifyPortfolio)
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "  ", v)
			}
			os.Exit(1)
		}
		fmt.Printf("verify-portfolio: %s passes (warm ECO >=%.1fx faster than cold, ratio cuts within %.0f%%, portfolio no worse than fixed IG-Match)\n",
			*verifyPortfolio, bench.PortfolioWarmSpeedup, bench.PortfolioRatioTol*100)
		return
	}

	if *portfolioReport != "" {
		rep, err := bench.PortfolioReport(*portfolioReport, bench.PortfolioConfig{
			Preset:      *portfolioPreset,
			DeltaNets:   *deltaNets,
			Parallelism: *par,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: portfolio-report:", err)
			os.Exit(1)
		}
		path, err := rep.WriteFile(*resultsDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: portfolio-report:", err)
			os.Exit(1)
		}
		c := rep.Circuits[0]
		fmt.Printf("wrote %s (%s: %d modules, %d nets)\n", path, c.Name, c.Modules, c.Nets)
		for _, run := range c.Runs {
			fmt.Printf("  %-24s wall=%-14s ratio=%.6g cut=%d\n",
				run.Alg, fmtNS(run.WallNS), run.RatioCut, run.Metrics.CutNets)
		}
		if violations := bench.VerifyPortfolioReport(rep); len(violations) > 0 {
			fmt.Fprintln(os.Stderr, "experiments: fresh portfolio report fails its own gate:")
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "  ", v)
			}
			os.Exit(1)
		}
		return
	}

	if *scaleReport != "" {
		rep, err := bench.ScaleReport(*scaleReport, bench.ScaleConfig{
			Preset:        *scalePreset,
			Candidates:    *candidates,
			Parallelism:   *par,
			MatvecWorkers: *matvecP,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: scale-report:", err)
			os.Exit(1)
		}
		path, err := rep.WriteFile(*resultsDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: scale-report:", err)
			os.Exit(1)
		}
		c := rep.Circuits[0]
		fmt.Printf("wrote %s (%s: %d modules, %d nets)\n", path, c.Name, c.Modules, c.Nets)
		for _, run := range c.Runs {
			fmt.Printf("  %-20s wall=%-14s ratio=%.6g cut=%d\n",
				run.Alg, fmtNS(run.WallNS), run.RatioCut, run.Metrics.CutNets)
		}
		if *baseline != "" {
			base, err := bench.ReadReportFile(*baseline)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: baseline:", err)
				os.Exit(1)
			}
			regressions := bench.CompareReportsWithBudget(base, rep, *tolerance, *scaleBudget)
			if len(regressions) > 0 {
				fmt.Fprintf(os.Stderr, "experiments: %d regression(s) vs %s (ratio tolerance %.0f%%, wall budget %.1fx):\n",
					len(regressions), *baseline, *tolerance*100, *scaleBudget)
				for _, r := range regressions {
					fmt.Fprintln(os.Stderr, "  ", r)
				}
				os.Exit(1)
			}
			fmt.Printf("scale-smoke: no regressions vs %s (ratio tolerance %.0f%%, wall budget %.1fx)\n",
				*baseline, *tolerance*100, *scaleBudget)
		}
		return
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	s := bench.Suite{
		Scale: *scale, RCutStarts: *starts, Parallelism: *par, Levels: *levels,
		Reorth: reorthMode, MatvecWorkers: *matvecP,
	}

	var tr *obs.Trace
	if *trace || *metrics {
		tr = obs.NewTrace("experiments")
		s.Rec = tr
	}
	defer func() {
		if tr == nil {
			return
		}
		tr.End()
		if *trace {
			fmt.Print(tr.String())
		}
		if *metrics {
			fmt.Print(tr.Metrics().Snapshot().String())
		}
	}()

	if *report != "" {
		rep, err := s.Report(*report, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: report:", err)
			os.Exit(1)
		}
		path, err := rep.WriteFile(*resultsDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: report:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d circuits × %d algorithms)\n",
			path, len(rep.Circuits), len(rep.Algorithms))
		if *baseline != "" {
			base, err := bench.ReadReportFile(*baseline)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: baseline:", err)
				os.Exit(1)
			}
			regressions := bench.CompareReports(base, rep, *tolerance)
			if len(regressions) > 0 {
				fmt.Fprintf(os.Stderr, "experiments: %d ratio-cut regression(s) vs %s (tolerance %.0f%%):\n",
					len(regressions), *baseline, *tolerance*100)
				for _, r := range regressions {
					fmt.Fprintln(os.Stderr, "  ", r)
				}
				os.Exit(1)
			}
			fmt.Printf("bench-sanity: no ratio-cut regressions vs %s (tolerance %.0f%%)\n",
				*baseline, *tolerance*100)
		}
		return
	}

	if *kwayReport != "" {
		rep, err := s.KWayReport(*kwayReport, bench.DefaultKWayKs(), *kwayEps)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: kway-report:", err)
			os.Exit(1)
		}
		path, err := rep.WriteFile(*resultsDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: kway-report:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d circuits, k=%v, eps=%g)\n", path, len(rep.Circuits), rep.Ks, rep.Eps)
		fmt.Print(bench.FormatKWayTable(rep))
		if *kwayBase != "" {
			base, err := bench.ReadKWayReportFile(*kwayBase)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: kway-baseline:", err)
				os.Exit(1)
			}
			regressions := bench.CompareKWayReports(base, rep, *tolerance)
			if len(regressions) > 0 {
				fmt.Fprintf(os.Stderr, "experiments: %d spanning-net regression(s) vs %s (tolerance %.0f%%):\n",
					len(regressions), *kwayBase, *tolerance*100)
				for _, r := range regressions {
					fmt.Fprintln(os.Stderr, "  ", r)
				}
				os.Exit(1)
			}
			fmt.Printf("kway-sanity: no spanning-net regressions vs %s (tolerance %.0f%%)\n",
				*kwayBase, *tolerance*100)
		}
		return
	}

	writeCSV := func(name string, emit func(w *os.File) error) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: csv dir: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: csv %s: %v\n", name, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := emit(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: csv %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run := func(name string, f func() (string, error)) {
		if *table != "all" && *table != name {
			return
		}
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: table %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	run("1", func() (string, error) {
		r, err := s.Table1()
		if err != nil {
			return "", err
		}
		writeCSV("table1.csv", func(w *os.File) error {
			return bench.WriteCutStatsCSV(w, r.Rows)
		})
		out := bench.FormatTable1(r)
		out += fmt.Sprintf("non-monotone cut fraction (rows with ≥5 nets): %v\n",
			bench.NonMonotone(r.Rows, 5))
		return out, nil
	})
	run("2", func() (string, error) {
		rows, err := s.Table2()
		if err != nil {
			return "", err
		}
		writeCSV("table2.csv", func(w *os.File) error {
			return bench.WriteCompareCSV(w, "rcut", "igmatch", rows)
		})
		return bench.FormatCompare("Table 2: IG-Match vs RCut (paper: 28.8% avg)", "RCut", "IG-Match", rows), nil
	})
	run("3", func() (string, error) {
		rows, err := s.Table3()
		if err != nil {
			return "", err
		}
		writeCSV("table3.csv", func(w *os.File) error {
			return bench.WriteCompareCSV(w, "igvote", "igmatch", rows)
		})
		return bench.FormatCompare("Table 3: IG-Match vs IG-Vote (paper: 7% avg, uniform domination)", "IG-Vote", "IG-Match", rows), nil
	})
	run("eig1", func() (string, error) {
		rows, err := s.TableEIG1()
		if err != nil {
			return "", err
		}
		return bench.FormatCompare("Section 4: IG-Match vs EIG1 (paper: 22% avg)", "EIG1", "IG-Match", rows), nil
	})
	run("igdiam", func() (string, error) {
		rows, err := s.TableIGDiam()
		if err != nil {
			return "", err
		}
		return bench.FormatCompare("Prior IG work: IG-Match vs diameter heuristic (Kahng'89 style)", "IG-Diam", "IG-Match", rows), nil
	})
	run("sparsity", func() (string, error) {
		rows, err := s.SparsityTable()
		if err != nil {
			return "", err
		}
		return bench.FormatSparsity(rows), nil
	})
	run("timing", func() (string, error) {
		rows, err := s.TimingTable()
		if err != nil {
			return "", err
		}
		return bench.FormatTiming(rows, *starts), nil
	})
	run("stability", func() (string, error) {
		rows, err := s.StabilityTable(*seeds)
		if err != nil {
			return "", err
		}
		return bench.FormatStability(rows), nil
	})
	run("weights", func() (string, error) {
		rows, err := s.WeightSchemeTable()
		if err != nil {
			return "", err
		}
		return bench.FormatWeightSchemes(rows), nil
	})
	run("netmodel", func() (string, error) {
		rows, err := s.NetModelTable()
		if err != nil {
			return "", err
		}
		return bench.FormatNetModel(rows), nil
	})
	run("threshold", func() (string, error) {
		rows, err := s.ThresholdTable(nil)
		if err != nil {
			return "", err
		}
		return bench.FormatThreshold(rows), nil
	})
	run("recursive", func() (string, error) {
		rows, err := s.RecursiveTable()
		if err != nil {
			return "", err
		}
		return bench.FormatRecursive(rows), nil
	})
	run("refine", func() (string, error) {
		rows, err := s.RefineTable()
		if err != nil {
			return "", err
		}
		return bench.FormatRefine(rows), nil
	})
	run("cluster", func() (string, error) {
		rows, err := s.ClusterTable()
		if err != nil {
			return "", err
		}
		return bench.FormatCluster(rows), nil
	})
	run("multilevel", func() (string, error) {
		rows, err := s.MultilevelTable()
		if err != nil {
			return "", err
		}
		writeCSV("multilevel.csv", func(w *os.File) error {
			return bench.WriteMultilevelCSV(w, rows)
		})
		return bench.FormatMultilevel(rows), nil
	})
	run("taxonomy", func() (string, error) {
		rows, err := s.TaxonomyTable()
		if err != nil {
			return "", err
		}
		return bench.FormatTaxonomy(rows), nil
	})
	run("ordering", func() (string, error) {
		rows, err := s.OrderingTable(3)
		if err != nil {
			return "", err
		}
		return bench.FormatOrdering(rows), nil
	})
	run("lanczos", func() (string, error) {
		rows, err := s.LanczosTable()
		if err != nil {
			return "", err
		}
		return bench.FormatLanczos(rows), nil
	})
	run("scaling", func() (string, error) {
		rows, err := s.ScalingTable(nil)
		if err != nil {
			return "", err
		}
		return bench.FormatScaling(rows), nil
	})
	run("trace", func() (string, error) {
		trace, err := s.SweepTrace("Prim2")
		if err != nil {
			return "", err
		}
		writeCSV("trace_prim2.csv", func(w *os.File) error {
			return bench.WriteTraceCSV(w, trace)
		})
		return fmt.Sprintf("sweep trace: %d splits recorded (use -csv to export)", len(trace)), nil
	})
}

// fmtNS renders a wall time compactly for the scale-report summary.
func fmtNS(ns int64) string { return time.Duration(ns).Round(time.Millisecond).String() }
