package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"igpart/internal/cluster"
)

// The standby façade: liveness endpoints answer truthfully, readiness
// is an honest 503 describing how warm the standby is, and every API
// path is 503 + Retry-After so clients wait out the takeover.
func TestStandbyFacade(t *testing.T) {
	stb := cluster.NewStandby(cluster.StandbyConfig{
		Path:  filepath.Join(t.TempDir(), "journal.jsonl"),
		Owner: "test-standby",
	})
	srv := newStandbyServer(stb)

	for _, path := range []string{"/healthz", "/livez"} {
		rr := httptest.NewRecorder()
		srv.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, path, nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200 (a standby is alive)", path, rr.Code)
		}
		var body map[string]string
		if err := json.NewDecoder(rr.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		if body["role"] != "standby" || body["mode"] != "coordinator" {
			t.Fatalf("GET %s body = %v, want coordinator/standby", path, body)
		}
	}

	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("GET /readyz = %d, want 503 (a standby takes no work)", rr.Code)
	}
	var ready standbyHealthJSON
	if err := json.NewDecoder(rr.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "standby" || ready.Role != "standby" {
		t.Fatalf("readyz payload = %+v", ready)
	}

	for _, req := range []*http.Request{
		httptest.NewRequest(http.MethodPost, "/v1/jobs", nil),
		httptest.NewRequest(http.MethodGet, "/v1/jobs/cjob-1", nil),
		httptest.NewRequest(http.MethodPost, "/v1/batches", nil),
		httptest.NewRequest(http.MethodGet, "/metrics", nil),
	} {
		rr := httptest.NewRecorder()
		srv.ServeHTTP(rr, req)
		if rr.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s %s = %d, want 503", req.Method, req.URL.Path, rr.Code)
		}
		if rr.Header().Get("Retry-After") == "" {
			t.Fatalf("%s %s missing Retry-After", req.Method, req.URL.Path)
		}
	}
}

// switchHandler promotes the façade to the full API in place — the
// listener never restarts, only the handler behind it changes.
func TestSwitchHandlerPromotes(t *testing.T) {
	stb := cluster.NewStandby(cluster.StandbyConfig{
		Path:  filepath.Join(t.TempDir(), "journal.jsonl"),
		Owner: "test-standby",
	})
	sw := &switchHandler{}
	sw.Set(newStandbyServer(stb))

	rr := httptest.NewRecorder()
	sw.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/v1/jobs", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("pre-takeover submit = %d, want 503", rr.Code)
	}

	sw.Set(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusAccepted)
	}))
	rr = httptest.NewRecorder()
	sw.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/v1/jobs", nil))
	if rr.Code != http.StatusAccepted {
		t.Fatalf("post-takeover submit = %d, want the promoted handler", rr.Code)
	}
}
