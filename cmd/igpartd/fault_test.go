package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"igpart/internal/fault"
	"igpart/internal/service"
)

func getStatus(t *testing.T, ts *httptest.Server, path string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode %s: %v", path, err)
	}
	return resp.StatusCode, body
}

func TestLivenessAndReadinessSplit(t *testing.T) {
	ts, _ := testServer(t, service.Config{Workers: 1}, serverConfig{})
	for _, path := range []string{"/healthz", "/livez"} {
		code, body := getStatus(t, ts, path)
		if code != http.StatusOK || body["status"] != "ok" {
			t.Fatalf("%s = %d %v, want 200 ok", path, code, body)
		}
	}
	code, body := getStatus(t, ts, "/readyz")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("/readyz = %d %v, want 200 ok", code, body)
	}
}

// TestReadyzDegradesOnPanicStreak drives the daemon into degraded mode
// with injected worker panics: /readyz flips to 503 with reasons while
// /healthz and /livez stay 200 — the daemon is sick, not dead.
func TestReadyzDegradesOnPanicStreak(t *testing.T) {
	inj, err := fault.New(1, nil, fault.Rule{Point: fault.WorkerPanic, Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	ts, engine := testServer(t, service.Config{
		Workers: 1, RetryAttempts: -1, DegradedPanicStreak: 3, Fault: inj,
	}, serverConfig{inj: inj})

	body, _ := bookshelfPayload(t, "Prim1", 0.1, nil)
	var last jobJSON
	for i := 0; i < 3; i++ {
		code, j := postJob(t, ts, body)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, code)
		}
		if jb, ok := engine.Get(j.ID); ok {
			jb.Wait(t.Context())
		}
		_, last = getJob(t, ts, j.ID)
	}
	if last.State != "failed" || !strings.Contains(last.Error, "panic") {
		t.Fatalf("panicking job: state=%s err=%q", last.State, last.Error)
	}
	if last.Stack == "" || !strings.Contains(last.Stack, "goroutine") {
		t.Fatalf("job JSON carries no panic stack: %q", last.Stack)
	}

	code, ready := getStatus(t, ts, "/readyz")
	if code != http.StatusServiceUnavailable || ready["status"] != "degraded" {
		t.Fatalf("/readyz after 3 panics = %d %v, want 503 degraded", code, ready)
	}
	if code, _ := getStatus(t, ts, "/healthz"); code != http.StatusOK {
		t.Fatal("liveness dropped while merely degraded")
	}

	// Injection budget spent: a clean job completes and readiness heals.
	codeOK, j := postJob(t, ts, body)
	if codeOK != http.StatusAccepted {
		t.Fatalf("post-chaos submit = %d", codeOK)
	}
	if jb, ok := engine.Get(j.ID); ok {
		jb.Wait(t.Context())
	}
	if _, jj := getJob(t, ts, j.ID); jj.State != "done" {
		t.Fatalf("post-chaos job state = %s, want done", jj.State)
	}
	if code, _ := getStatus(t, ts, "/readyz"); code != http.StatusOK {
		t.Fatal("readiness did not heal after a clean solve")
	}
}

func TestSubmitBadRequestIs400(t *testing.T) {
	ts, _ := testServer(t, service.Config{Workers: 1}, serverConfig{})
	body, _ := bookshelfPayload(t, "Prim1", 0.1, map[string]any{"timeout_ms": -5})
	code, _ := postJob(t, ts, body)
	if code != http.StatusBadRequest {
		t.Fatalf("negative timeout submit = %d, want 400", code)
	}
	body2, _ := bookshelfPayload(t, "Prim1", 0.1, map[string]any{"block_size": 1 << 20})
	if code, _ := postJob(t, ts, body2); code != http.StatusBadRequest {
		t.Fatalf("absurd block size submit = %d, want 400", code)
	}
}

// TestIOReadErrInjectionIs503 pins the transient-IO contract: an
// injected read failure answers 503 + Retry-After, and the next attempt
// (budget spent) succeeds.
func TestIOReadErrInjectionIs503(t *testing.T) {
	inj, err := fault.New(1, nil, fault.Rule{Point: fault.IOReadErr, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := testServer(t, service.Config{Workers: 1}, serverConfig{inj: inj})
	body, _ := bookshelfPayload(t, "Prim1", 0.1, nil)

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("injected read error = %d (Retry-After %q), want 503 with Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if code, _ := postJob(t, ts, body); code != http.StatusAccepted {
		t.Fatalf("retry after transient error = %d, want 202", code)
	}
}
