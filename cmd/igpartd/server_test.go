package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"igpart"
	"igpart/internal/obs"
	"igpart/internal/service"
)

// testServer boots an httptest server over a fresh engine.
func testServer(t *testing.T, cfg service.Config, scfg serverConfig) (*httptest.Server, *service.Engine) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = new(obs.Registry)
	}
	engine := service.New(cfg)
	ts := httptest.NewServer(newServer(engine, scfg))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = engine.Shutdown(ctx)
	})
	return ts, engine
}

// bookshelfPayload serializes a generated benchmark as a submit body.
func bookshelfPayload(t *testing.T, bench string, scale float64, extra map[string]any) ([]byte, *igpart.Netlist) {
	t.Helper()
	cfg, ok := igpart.Benchmark(bench)
	if !ok {
		t.Fatalf("unknown benchmark %q", bench)
	}
	h, err := igpart.Generate(cfg.Scaled(scale))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	var nodes, nets bytes.Buffer
	if err := igpart.WriteBookshelf(&nodes, &nets, h); err != nil {
		t.Fatalf("write bookshelf: %v", err)
	}
	body := map[string]any{
		"bookshelf": map[string]string{"nodes": nodes.String(), "nets": nets.String()},
	}
	for k, v := range extra {
		body[k] = v
	}
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return buf, h
}

func postJob(t *testing.T, ts *httptest.Server, body []byte) (int, jobJSON) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var j jobJSON
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			t.Fatalf("decode job: %v", err)
		}
	}
	return resp.StatusCode, j
}

func getJob(t *testing.T, ts *httptest.Server, id string) (int, jobJSON) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET /v1/jobs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	var j jobJSON
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			t.Fatalf("decode job: %v", err)
		}
	}
	return resp.StatusCode, j
}

// pollTerminal polls until the job reaches a terminal state.
func pollTerminal(t *testing.T, ts *httptest.Server, id string, within time.Duration) jobJSON {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		code, j := getJob(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		if service.State(j.State).Terminal() {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %q after %v", id, j.State, within)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func metricCounter(t *testing.T, ts *httptest.Server, name string) int64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var snap obs.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	return snap.Counters[name]
}

// TestSubmitPollResult is the core round trip: a Bookshelf submission
// must come back with exactly the ratio cut a direct igpart.IGMatch
// call computes, and a byte-identical resubmission must be served from
// the cache without a second solve.
func TestSubmitPollResult(t *testing.T) {
	ts, _ := testServer(t, service.Config{Workers: 2}, serverConfig{})
	body, h := bookshelfPayload(t, "bm1", 0.25, nil)

	direct, err := igpart.IGMatch(h)
	if err != nil {
		t.Fatalf("direct IGMatch: %v", err)
	}

	code, j := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	done := pollTerminal(t, ts, j.ID, 30*time.Second)
	if done.State != string(service.StateDone) {
		t.Fatalf("state = %q (err %q), want done", done.State, done.Error)
	}
	if done.Cached {
		t.Fatal("first run reported cached")
	}
	res := done.Result
	if res == nil {
		t.Fatal("done job has no result")
	}
	if res.RatioCut != direct.Metrics.RatioCut || res.CutNets != direct.Metrics.CutNets {
		t.Fatalf("served result (cut %d, ratio %g) != direct (cut %d, ratio %g)",
			res.CutNets, res.RatioCut, direct.Metrics.CutNets, direct.Metrics.RatioCut)
	}
	if len(res.Sides) != h.NumModules() {
		t.Fatalf("sides length %d, want %d", len(res.Sides), h.NumModules())
	}
	if res.Stages == nil || res.Stages.Find("sweep") == nil {
		t.Fatal("result missing the solve stage tree")
	}

	// Identical resubmission: cache hit, no second solve span recorded.
	hits := metricCounter(t, ts, "service.cache_hits")
	code, j2 := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit status = %d, want 202", code)
	}
	done2 := pollTerminal(t, ts, j2.ID, 10*time.Second)
	if done2.State != string(service.StateDone) || !done2.Cached {
		t.Fatalf("resubmit state=%q cached=%v, want done from cache", done2.State, done2.Cached)
	}
	if got := metricCounter(t, ts, "service.cache_hits"); got != hits+1 {
		t.Fatalf("cache_hits = %d, want %d", got, hits+1)
	}
	if done2.Result.RatioCut != res.RatioCut {
		t.Fatal("cached result differs from original")
	}
}

// TestQueueFull429 exercises explicit-rejection backpressure end to
// end: one worker pinned by a long job, a one-deep queue filled by a
// second, and a third submission answered 429.
func TestQueueFull429(t *testing.T) {
	ts, _ := testServer(t, service.Config{Workers: 1, QueueDepth: 1, CacheEntries: -1}, serverConfig{})
	big, _ := bookshelfPayload(t, "Prim2", 1.0, map[string]any{"parallelism": 1})

	code, j1 := postJob(t, ts, big)
	if code != http.StatusAccepted {
		t.Fatalf("job 1 status = %d", code)
	}
	// Wait until job 1 occupies the worker so job 2 stays queued.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, j := getJob(t, ts, j1.ID)
		if j.State == string(service.StateRunning) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job 1 never started (state %q)", j.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	code, j2 := postJob(t, ts, big)
	if code != http.StatusAccepted {
		t.Fatalf("job 2 status = %d, want 202 (queued)", code)
	}
	code, _ = postJob(t, ts, big)
	if code != http.StatusTooManyRequests {
		t.Fatalf("job 3 status = %d, want 429", code)
	}
	if got := metricCounter(t, ts, "service.jobs_rejected"); got != 1 {
		t.Fatalf("jobs_rejected = %d, want 1", got)
	}

	// Cancel both so cleanup doesn't wait out two Prim2 solves.
	for _, id := range []string{j1.ID, j2.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}
}

// TestCancelRunningJob covers DELETE on an in-flight job: the solve
// must stop at a cancellation poll point well inside the 2s bound.
func TestCancelRunningJob(t *testing.T) {
	ts, _ := testServer(t, service.Config{Workers: 1, CacheEntries: -1}, serverConfig{})
	big, _ := bookshelfPayload(t, "Prim2", 1.0, map[string]any{"parallelism": 1})

	code, j := postJob(t, ts, big)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, s := getJob(t, ts, j.ID)
		if s.State == string(service.StateRunning) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started (state %q)", s.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(30 * time.Millisecond) // let the solve get into the pipeline

	start := time.Now()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d, want 200", resp.StatusCode)
	}
	done := pollTerminal(t, ts, j.ID, 2*time.Second)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want < 2s", elapsed)
	}
	if done.State != string(service.StateCancelled) {
		t.Fatalf("state = %q, want cancelled", done.State)
	}

	// The worker must be reusable after a cancellation.
	small, _ := bookshelfPayload(t, "bm1", 0.2, nil)
	code, j2 := postJob(t, ts, small)
	if code != http.StatusAccepted {
		t.Fatalf("post-cancel submit status = %d", code)
	}
	if after := pollTerminal(t, ts, j2.ID, 30*time.Second); after.State != string(service.StateDone) {
		t.Fatalf("post-cancel job state = %q, want done", after.State)
	}
}

// TestShutdownDrainsInFlight mirrors the SIGTERM path: HTTP intake
// stops, the engine drains the in-flight job to completion, and later
// submissions are refused with 503.
func TestShutdownDrainsInFlight(t *testing.T) {
	ts, engine := testServer(t, service.Config{Workers: 1}, serverConfig{})
	body, _ := bookshelfPayload(t, "bm1", 0.25, nil)

	code, j := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := engine.Shutdown(ctx); err != nil {
		t.Fatalf("drain did not complete: %v", err)
	}
	_, done := getJob(t, ts, j.ID)
	if done.State != string(service.StateDone) {
		t.Fatalf("drained job state = %q, want done", done.State)
	}
	code, _ = postJob(t, ts, body)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown submit status = %d, want 503", code)
	}
}

// TestBadRequests covers the validation surface.
func TestBadRequests(t *testing.T) {
	ts, _ := testServer(t, service.Config{Workers: 1}, serverConfig{maxBody: 1024})

	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty", `{}`, http.StatusBadRequest},
		{"bad json", `{`, http.StatusBadRequest},
		{"unknown field", `{"nope": 1}`, http.StatusBadRequest},
		{"both sources", `{"path": "x.hgr", "bookshelf": {"nodes": "", "nets": ""}}`, http.StatusBadRequest},
		{"path disabled", `{"path": "x.hgr"}`, http.StatusBadRequest},
		{"bad algo", `{"bookshelf": {"nodes": "NumNodes : 0", "nets": "NumNets : 0\nNumPins : 0"}, "algo": "magic"}`, http.StatusBadRequest},
		{"oversized", `{"bookshelf": {"nodes": "` + strings.Repeat("x", 2048) + `"}}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		code, _ := postJob(t, ts, []byte(tc.body))
		if code != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, code, tc.want)
		}
	}

	if code, _ := getJob(t, ts, "job-999"); code != http.StatusNotFound {
		t.Errorf("unknown job GET status = %d, want 404", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/job-999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job DELETE status = %d, want 404", resp.StatusCode)
	}
}

// TestPathTraversalRejected locks down the server-side path loader.
func TestPathTraversalRejected(t *testing.T) {
	dir := t.TempDir()
	ts, _ := testServer(t, service.Config{Workers: 1}, serverConfig{dataDir: dir})
	for _, p := range []string{"../secrets.hgr", "/etc/passwd", "a/../../b.hgr"} {
		body, _ := json.Marshal(map[string]string{"path": p})
		if code, _ := postJob(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("path %q: status = %d, want 400", p, code)
		}
	}
	// A missing-but-local path is a 400 from the loader, not a panic.
	body, _ := json.Marshal(map[string]string{"path": "missing.hgr"})
	if code, _ := postJob(t, ts, body); code != http.StatusBadRequest {
		t.Errorf("missing path: status = %d, want 400", code)
	}
}

// TestHealthAndMetrics sanity-checks the probe endpoints.
func TestHealthAndMetrics(t *testing.T) {
	ts, _ := testServer(t, service.Config{Workers: 1}, serverConfig{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	body, _ := bookshelfPayload(t, "bm1", 0.2, nil)
	code, j := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	pollTerminal(t, ts, j.ID, 30*time.Second)
	if got := metricCounter(t, ts, "service.jobs_submitted"); got != 1 {
		t.Fatalf("jobs_submitted = %d, want 1", got)
	}
	if got := metricCounter(t, ts, "service.jobs_completed"); got != 1 {
		t.Fatalf("jobs_completed = %d, want 1", got)
	}
}

// TestServerSidePath loads a netlist from the -data directory.
func TestServerSidePath(t *testing.T) {
	dir := t.TempDir()
	cfg, _ := igpart.Benchmark("bm1")
	h, err := igpart.Generate(cfg.Scaled(0.2))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if err := igpart.Save(dir+"/bm1.hgr", h); err != nil {
		t.Fatalf("save: %v", err)
	}
	ts, _ := testServer(t, service.Config{Workers: 1}, serverConfig{dataDir: dir})
	body, _ := json.Marshal(map[string]string{"path": "bm1.hgr"})
	code, j := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	done := pollTerminal(t, ts, j.ID, 30*time.Second)
	if done.State != string(service.StateDone) {
		t.Fatalf("state = %q (err %q), want done", done.State, done.Error)
	}
	direct, err := igpart.IGMatch(h)
	if err != nil {
		t.Fatalf("direct: %v", err)
	}
	if done.Result.RatioCut != direct.Metrics.RatioCut {
		t.Fatalf("served ratio %g != direct %g", done.Result.RatioCut, direct.Metrics.RatioCut)
	}
}

// TestSubmitKWayEndToEnd is the acceptance path for balanced k-way over
// HTTP: POST a k=4 job with an imbalance budget and two fixed modules,
// poll it to completion, and verify the JSON result delivers exactly 4
// capped parts with both pinned modules on their pinned parts.
func TestSubmitKWayEndToEnd(t *testing.T) {
	ts, _ := testServer(t, service.Config{Workers: 2}, serverConfig{})
	// Generation is deterministic, so a first payload reveals the module
	// names the fix list needs.
	_, h := bookshelfPayload(t, "Prim1", 0.12, nil)
	mA, mB := h.ModuleName(0), h.ModuleName(1)
	body, _ := bookshelfPayload(t, "Prim1", 0.12, map[string]any{
		"algo": "kway", "k": 4, "eps": 0.1,
		"fix": []map[string]any{
			{"module": mA, "part": 2},
			{"module": mB, "part": 0},
		},
	})
	code, j := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("POST status %d, want 202", code)
	}
	j = pollTerminal(t, ts, j.ID, 30*time.Second)
	if j.State != string(service.StateDone) {
		t.Fatalf("job state %q err %q, want done", j.State, j.Error)
	}
	res := j.Result
	if res == nil || res.Algo != "kway" || res.K != 4 {
		t.Fatalf("result %+v, want algo kway k=4", res)
	}
	if len(res.Parts) != h.NumModules() || len(res.PartSizes) != 4 {
		t.Fatalf("parts=%d part_sizes=%d, want %d/4", len(res.Parts), len(res.PartSizes), h.NumModules())
	}
	for p, sz := range res.PartSizes {
		if sz == 0 || sz > res.Cap {
			t.Fatalf("part %d size %d outside (0,%d]", p, sz, res.Cap)
		}
	}
	if res.Parts[0] != 2 || res.Parts[1] != 0 {
		t.Fatalf("pinned modules landed on parts %d/%d, want 2/0", res.Parts[0], res.Parts[1])
	}
	if res.SpanningNets <= 0 || res.Connectivity < res.SpanningNets {
		t.Fatalf("metrics spanning=%d connectivity=%d inconsistent", res.SpanningNets, res.Connectivity)
	}
	if len(res.Sides) != 0 {
		t.Fatalf("kway result carries %d bipartition sides", len(res.Sides))
	}
}

// TestSubmitKWayBadRequests pins the HTTP classification of invalid
// k-way submissions: all 400, never enqueued.
func TestSubmitKWayBadRequests(t *testing.T) {
	ts, _ := testServer(t, service.Config{Workers: 1}, serverConfig{})
	cases := []map[string]any{
		{"algo": "kway", "k": 1},
		{"algo": "kway", "k": 4, "eps": -0.5},
		{"algo": "kway-spectral", "k": 4, "fix": []map[string]any{{"module": "no-such-module", "part": 0}}},
		{"algo": "kway", "k": 4, "fix": []map[string]any{{"module": "m0", "part": 9}}},
	}
	for i, extra := range cases {
		body, _ := bookshelfPayload(t, "Prim1", 0.12, extra)
		code, _ := postJob(t, ts, body)
		if code != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, code)
		}
	}
}
