// igpartd's HTTP layer: a thin JSON façade over internal/service.
//
// Endpoints:
//
//	POST   /v1/jobs      submit a partitioning job (202 + job id)
//	GET    /v1/jobs/{id} poll status; terminal jobs carry the result
//	PATCH  /v1/jobs/{id} submit an ECO delta against a finished job
//	                     (202 + new job id, warm-started from the cache)
//	DELETE /v1/jobs/{id} request cooperative cancellation
//	GET    /healthz      liveness probe (alias of /livez)
//	GET    /livez        liveness probe: 200 while the process serves
//	GET    /readyz       readiness probe: 503 while degraded (queue
//	                     backlog or consecutive solve panics) or draining
//	GET    /metrics      JSON dump of the obs metrics registry
//
// Submission is non-blocking end to end: a full queue answers 429
// immediately (the engine's explicit-rejection backpressure), so the
// daemon never accumulates hidden in-flight work beyond its bounds.
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"path/filepath"
	"strings"
	"time"

	"igpart"
	"igpart/internal/fault"
	"igpart/internal/service"
)

// serverConfig carries the HTTP-layer knobs (the engine has its own).
type serverConfig struct {
	// dataDir is the root for server-side netlist paths in submissions;
	// empty disables the "path" field entirely.
	dataDir string
	// maxBody bounds the request body size in bytes.
	maxBody int64
	// inj arms the transport-layer fault points (io.read-err in netlist
	// loading); nil disarms them.
	inj *fault.Injector
}

// server routes HTTP requests onto a service.Engine.
type server struct {
	engine *service.Engine
	cfg    serverConfig
	mux    *http.ServeMux
}

func newServer(engine *service.Engine, cfg serverConfig) *server {
	if cfg.maxBody <= 0 {
		cfg.maxBody = 32 << 20
	}
	s := &server{engine: engine, cfg: cfg, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("PATCH /v1/jobs/{id}", s.handlePatch)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleLive)
	s.mux.HandleFunc("GET /livez", s.handleLive)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// submitRequest is the POST /v1/jobs payload. Exactly one netlist
// source must be set: an inline Bookshelf pair or a server-side path
// (relative to the daemon's -data directory).
type submitRequest struct {
	Path      string         `json:"path,omitempty"`
	Bookshelf *bookshelfPair `json:"bookshelf,omitempty"`

	Algo            string  `json:"algo,omitempty"`
	Scheme          string  `json:"scheme,omitempty"`
	Threshold       int     `json:"threshold,omitempty"`
	Seed            int64   `json:"seed,omitempty"`
	BlockSize       int     `json:"block_size,omitempty"`
	Parallelism     int     `json:"parallelism,omitempty"`
	Levels          int     `json:"levels,omitempty"`
	CoarseningRatio float64 `json:"coarsening_ratio,omitempty"`
	TimeoutMS       int64   `json:"timeout_ms,omitempty"`

	// Balanced k-way options (algo "kway" / "kway-spectral"): part count,
	// imbalance budget, and named fixed-module pins.
	K   int             `json:"k,omitempty"`
	Eps float64         `json:"eps,omitempty"`
	Fix []igpart.FixPin `json:"fix,omitempty"`

	// Portfolio options (algo "portfolio"): race budget and acceptance
	// ratio-cut bound.
	BudgetMS int64   `json:"budget_ms,omitempty"`
	Accept   float64 `json:"accept,omitempty"`
}

// deltaRequest is the PATCH /v1/jobs/{id} payload: an ECO delta to
// apply against the identified finished job.
type deltaRequest struct {
	Delta     *igpart.NetlistDelta `json:"delta"`
	TimeoutMS int64                `json:"timeout_ms,omitempty"`
}

// bookshelfPair is an inline UCLA Bookshelf netlist.
type bookshelfPair struct {
	Nodes string `json:"nodes"`
	Nets  string `json:"nets"`
}

// jobJSON is the wire form of a job snapshot.
type jobJSON struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
	// Stack carries the recovered panic stack when the job failed
	// because a solve panicked; empty otherwise.
	Stack     string      `json:"stack,omitempty"`
	Submitted time.Time   `json:"submitted"`
	Started   *time.Time  `json:"started,omitempty"`
	Finished  *time.Time  `json:"finished,omitempty"`
	Result    *resultJSON `json:"result,omitempty"`
}

type resultJSON struct {
	Algo         string  `json:"algo"`
	CutNets      int     `json:"cut_nets"`
	SizeU        int     `json:"size_u"`
	SizeW        int     `json:"size_w"`
	RatioCut     float64 `json:"ratio_cut"`
	Lambda2      float64 `json:"lambda2,omitempty"`
	BestRank     int     `json:"best_rank,omitempty"`
	Levels       int     `json:"levels,omitempty"`
	CoarsestNets int     `json:"coarsest_nets,omitempty"`
	// Winner names the portfolio race's winning engine (algo
	// "portfolio"); Warm and TouchedNets describe an ECO delta job's
	// warm start.
	Winner      string `json:"winner,omitempty"`
	Warm        bool   `json:"warm,omitempty"`
	TouchedNets int    `json:"touched_nets,omitempty"`
	// Sides is per-module 0/1; an explicit int array rather than
	// []igpart.Side, which (being a byte slice) would marshal as base64.
	Sides []int `json:"sides,omitempty"`
	// Balanced k-way results carry the per-module part assignment and the
	// multiway metrics instead of Sides and the bipartition metrics.
	K            int           `json:"k,omitempty"`
	Cap          int           `json:"cap,omitempty"`
	Parts        []int         `json:"parts,omitempty"`
	PartSizes    []int         `json:"part_sizes,omitempty"`
	SpanningNets int           `json:"spanning_nets,omitempty"`
	Connectivity int           `json:"connectivity,omitempty"`
	RatioValue   float64       `json:"ratio_value,omitempty"`
	Stages       *igpart.Stage `json:"stages,omitempty"`
}

func snapshotJSON(snap service.Snapshot) jobJSON {
	j := jobJSON{
		ID:        snap.ID,
		State:     string(snap.State),
		Cached:    snap.Cached,
		Submitted: snap.Submitted,
	}
	if snap.Err != nil {
		j.Error = snap.Err.Error()
		if pe, ok := fault.AsPanic(snap.Err); ok {
			j.Stack = string(pe.Stack)
		}
	}
	if !snap.Started.IsZero() {
		t := snap.Started
		j.Started = &t
	}
	if !snap.Finished.IsZero() {
		t := snap.Finished
		j.Finished = &t
	}
	if res := snap.Result; res != nil {
		stages := res.Stages
		sides := make([]int, len(res.Sides))
		for i, s := range res.Sides {
			sides[i] = int(s)
		}
		j.Result = &resultJSON{
			Algo:         res.Algo,
			CutNets:      res.Metrics.CutNets,
			SizeU:        res.Metrics.SizeU,
			SizeW:        res.Metrics.SizeW,
			RatioCut:     res.Metrics.RatioCut,
			Lambda2:      res.Lambda2,
			BestRank:     res.BestRank,
			Levels:       res.Levels,
			CoarsestNets: res.CoarsestNets,
			Winner:       res.Winner,
			Warm:         res.Warm,
			TouchedNets:  res.TouchedNets,
			Sides:        sides,
			K:            res.K,
			Cap:          res.Cap,
			Parts:        res.Parts,
			PartSizes:    res.PartSizes,
			SpanningNets: res.SpanningNets,
			Connectivity: res.Connectivity,
			RatioValue:   res.RatioValue,
			Stages:       &stages,
		}
	}
	return j
}

// errTransientIO marks a netlist read that failed for reasons the
// caller can retry (as opposed to a malformed request); handleSubmit
// maps it to 503.
var errTransientIO = errors.New("transient read error loading netlist")

// loadNetlist resolves the submission's netlist source.
func (s *server) loadNetlist(req *submitRequest) (*igpart.Netlist, error) {
	return loadNetlist(req, s.cfg.dataDir, s.cfg.inj)
}

// loadNetlist is shared between the single-node server and the cluster
// coordinator (which inlines the netlist before forwarding, so the
// backends need no shared filesystem).
func loadNetlist(req *submitRequest, dataDir string, inj *fault.Injector) (*igpart.Netlist, error) {
	if inj.Active(fault.IOReadErr) {
		return nil, errTransientIO
	}
	switch {
	case req.Path != "" && req.Bookshelf != nil:
		return nil, errors.New("set exactly one of \"path\" and \"bookshelf\"")
	case req.Bookshelf != nil:
		return igpart.ReadBookshelf(
			strings.NewReader(req.Bookshelf.Nodes),
			strings.NewReader(req.Bookshelf.Nets))
	case req.Path != "":
		if dataDir == "" {
			return nil, errors.New("server-side paths are disabled (daemon started without -data)")
		}
		// filepath.IsLocal rejects absolute paths and any ".." escape, so
		// a request cannot read outside the data directory.
		if !filepath.IsLocal(req.Path) {
			return nil, fmt.Errorf("path %q is not local to the data directory", req.Path)
		}
		return igpart.Load(filepath.Join(dataDir, req.Path))
	default:
		return nil, errors.New("request carries no netlist: set \"path\" or \"bookshelf\"")
	}
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.maxBody)
	var req submitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	h, err := s.loadNetlist(&req)
	if errors.Is(err, errTransientIO) {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	job, err := s.engine.Submit(service.Request{
		Netlist: h,
		Options: service.Options{
			Algo:            req.Algo,
			Scheme:          req.Scheme,
			Threshold:       req.Threshold,
			Seed:            req.Seed,
			BlockSize:       req.BlockSize,
			Parallelism:     req.Parallelism,
			Levels:          req.Levels,
			CoarseningRatio: req.CoarseningRatio,
			K:               req.K,
			Eps:             req.Eps,
			Fix:             req.Fix,
			Budget:          time.Duration(req.BudgetMS) * time.Millisecond,
			Accept:          req.Accept,
			Timeout:         time.Duration(req.TimeoutMS) * time.Millisecond,
		},
	})
	switch {
	case errors.Is(err, service.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, service.ErrShutdown):
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, service.ErrBadRequest):
		httpError(w, http.StatusBadRequest, err.Error())
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID())
	writeJSON(w, http.StatusAccepted, snapshotJSON(job.Snapshot()))
}

// handlePatch submits an ECO delta against a finished job. The engine
// warm-starts from the base result's cached net ordering; the response
// is a brand-new job (202) polled like any other.
func (s *server) handlePatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.maxBody)
	var req deltaRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.Delta == nil {
		httpError(w, http.StatusBadRequest, "request carries no delta")
		return
	}
	job, err := s.engine.SubmitDelta(r.PathValue("id"), *req.Delta,
		time.Duration(req.TimeoutMS)*time.Millisecond)
	switch {
	case errors.Is(err, service.ErrUnknownBase):
		httpError(w, http.StatusNotFound, err.Error())
		return
	case errors.Is(err, service.ErrNotWarmStartable):
		httpError(w, http.StatusConflict, err.Error())
		return
	case errors.Is(err, service.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, service.ErrShutdown):
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID())
	writeJSON(w, http.StatusAccepted, snapshotJSON(job.Snapshot()))
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.engine.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, snapshotJSON(job.Snapshot()))
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.engine.Cancel(id) {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	job, _ := s.engine.Get(id)
	writeJSON(w, http.StatusOK, snapshotJSON(job.Snapshot()))
}

// handleLive is the liveness probe: the process is up and serving, say
// 200 — even when degraded, because restarting a degraded daemon loses
// its queue for no gain. (/healthz is an alias so pre-split monitoring
// keeps working.)
func (s *server) handleLive(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// healthJSON is the /readyz payload.
type healthJSON struct {
	Status      string   `json:"status"`
	Reasons     []string `json:"reasons,omitempty"`
	QueueDepth  int      `json:"queue_depth"`
	QueueCap    int      `json:"queue_cap"`
	PanicStreak int      `json:"panic_streak,omitempty"`
}

// handleReady is the readiness probe: 503 tells the load balancer to
// route new work elsewhere while the engine is backlogged, repeatedly
// panicking, or draining — conditions that self-heal without a restart.
func (s *server) handleReady(w http.ResponseWriter, _ *http.Request) {
	hl := s.engine.Health()
	status := http.StatusOK
	if !hl.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, healthJSON{
		Status:      hl.Status,
		Reasons:     hl.Reasons,
		QueueDepth:  hl.QueueDepth,
		QueueCap:    hl.QueueCap,
		PanicStreak: hl.PanicStreak,
	})
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Metrics().Snapshot())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("igpartd: encode response: %v", err)
	}
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
