// igpartd's cluster-mode HTTP layer: a coordinator façade over
// internal/cluster that keeps the single-node wire API and adds batch
// intake.
//
// Endpoints:
//
//	POST   /v1/jobs      submit one job; routed to a backend by
//	                     consistent hashing on the netlist's content
//	                     address (202 + cluster job id)
//	GET    /v1/jobs/{id} poll a cluster job; terminal jobs relay the
//	                     backend's result verbatim
//	PATCH  /v1/jobs/{id} submit an ECO delta against a finished cluster
//	                     job; forwarded to the backend that solved the
//	                     base (pinned — its cache holds the warm state)
//	DELETE /v1/jobs/{id} cancel (propagated to the owning backend)
//	POST   /v1/batches   submit many jobs in one request; the chunked
//	                     NDJSON response streams one event per job
//	                     completion (with its obs span) as they finish
//	GET    /healthz      liveness (alias /livez)
//	GET    /readyz       fleet readiness: 503 until >= 1 backend ready
//	GET    /metrics      coordinator counters + proxied per-backend
//	                     /metrics, one aggregate document
//
// Submissions are re-serialized with the netlist inlined before
// forwarding, so backends need no shared filesystem; the -data flag
// only governs what the coordinator itself may read.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"igpart"
	"igpart/internal/cluster"
	"igpart/internal/obs"
)

// maxBatchJobs bounds one /v1/batches request; beyond this the client
// should split the batch (the limit exists to bound journal write
// bursts and the streamed response's lifetime, not memory).
const maxBatchJobs = 256

// coordServer routes HTTP requests onto a cluster.Coordinator.
type coordServer struct {
	coord   *cluster.Coordinator
	dataDir string
	maxBody int64
	mux     *http.ServeMux
}

func newCoordServer(coord *cluster.Coordinator, dataDir string, maxBody int64) *coordServer {
	if maxBody <= 0 {
		maxBody = 32 << 20
	}
	s := &coordServer{coord: coord, dataDir: dataDir, maxBody: maxBody, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("PATCH /v1/jobs/{id}", s.handlePatch)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("POST /v1/batches", s.handleBatch)
	s.mux.HandleFunc("GET /healthz", s.handleLive)
	s.mux.HandleFunc("GET /livez", s.handleLive)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

func (s *coordServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// prepare resolves one submission into its routing key and the
// backend-ready forward body: the netlist is loaded here (inline or
// via the coordinator's -data directory), its content address becomes
// the ring key — the very key the backends' result caches use, so the
// cache shards across the fleet with zero invalidation protocol — and
// the request is re-marshalled with the netlist inlined.
func (s *coordServer) prepare(req *submitRequest) (key string, body []byte, err error) {
	h, err := loadNetlist(req, s.dataDir, nil)
	if err != nil {
		return "", nil, err
	}
	var nodes, nets bytes.Buffer
	if err := igpart.WriteBookshelf(&nodes, &nets, h); err != nil {
		return "", nil, fmt.Errorf("serialize netlist: %v", err)
	}
	fwd := *req
	fwd.Path = ""
	fwd.Bookshelf = &bookshelfPair{Nodes: nodes.String(), Nets: nets.String()}
	body, err = json.Marshal(&fwd)
	if err != nil {
		return "", nil, err
	}
	return fmt.Sprintf("%x", sha256.Sum256(h.CanonicalBytes())), body, nil
}

// coordJobJSON is the wire form of a cluster job snapshot. The result
// field relays the backend's result object verbatim, so cluster-mode
// clients parse the same shape as single-node ones.
type coordJobJSON struct {
	ID         string          `json:"id"`
	Batch      string          `json:"batch,omitempty"`
	State      string          `json:"state"`
	Backend    string          `json:"backend,omitempty"`
	BackendJob string          `json:"backend_job,omitempty"`
	Attempts   int             `json:"attempts"`
	Resubmits  int             `json:"resubmits"`
	Cached     bool            `json:"cached,omitempty"`
	Error      string          `json:"error,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
	Submitted  time.Time       `json:"submitted"`
	Finished   *time.Time      `json:"finished,omitempty"`
}

func coordSnapshotJSON(snap cluster.Snapshot) coordJobJSON {
	j := coordJobJSON{
		ID:         snap.ID,
		Batch:      snap.Batch,
		State:      snap.State,
		Backend:    snap.Backend,
		BackendJob: snap.BackendJob,
		Attempts:   snap.Attempts,
		Resubmits:  snap.Resubmits,
		Cached:     snap.Cached,
		Error:      snap.Err,
		Result:     snap.Result,
		Submitted:  snap.Submitted,
	}
	if !snap.Finished.IsZero() {
		t := snap.Finished
		j.Finished = &t
	}
	return j
}

func (s *coordServer) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeSubmit(w, r)
	if !ok {
		return
	}
	key, body, err := s.prepare(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	job, err := s.coord.Submit(key, body)
	if errors.Is(err, cluster.ErrShutdown) {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, "journal write failed: "+err.Error())
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID())
	writeJSON(w, http.StatusAccepted, coordSnapshotJSON(job.Snapshot()))
}

// decodeSubmit parses one submitRequest body with the size cap.
func (s *coordServer) decodeSubmit(w http.ResponseWriter, r *http.Request) (*submitRequest, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	var req submitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
			return nil, false
		}
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return nil, false
	}
	return &req, true
}

// handlePatch forwards an ECO delta to the backend that solved the
// base cluster job. The body is relayed verbatim — the backend's
// SubmitDelta does the delta validation, and its verdict maps back
// onto the same status codes single-node clients see.
func (s *coordServer) handlePatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	job, err := s.coord.SubmitDelta(r.Context(), r.PathValue("id"), body)
	switch {
	case errors.Is(err, cluster.ErrShutdown):
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, cluster.ErrUnknownBase):
		httpError(w, http.StatusNotFound, err.Error())
		return
	case errors.Is(err, cluster.ErrNotWarmStartable):
		httpError(w, http.StatusConflict, err.Error())
		return
	case cluster.IsNodeError(err):
		httpError(w, http.StatusBadGateway, err.Error())
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID())
	writeJSON(w, http.StatusAccepted, coordSnapshotJSON(job.Snapshot()))
}

func (s *coordServer) handleGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.coord.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, coordSnapshotJSON(job.Snapshot()))
}

func (s *coordServer) handleCancel(w http.ResponseWriter, r *http.Request) {
	// Resolve the *Job once and cancel through it: a second Get after
	// Cancel(id) could miss if MaxFinished pruning evicts the job in
	// between.
	job, ok := s.coord.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job")
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, coordSnapshotJSON(job.Snapshot()))
}

// batchRequest is the POST /v1/batches payload.
type batchRequest struct {
	Jobs []submitRequest `json:"jobs"`
}

// batchEvent is one NDJSON line of the streamed batch response. The
// first line is event "accepted" (job IDs in submission order); then
// one "job" event per completion as it happens, carrying the job's obs
// span (wall time from acceptance to completion, attempt/resubmit
// counters); finally one "batch" summary event.
type batchEvent struct {
	Event string `json:"event"`
	Batch string `json:"batch,omitempty"`
	// Accepted event: the job IDs.
	Jobs []string `json:"jobs,omitempty"`
	// Job event: the completed job's snapshot fields.
	ID        string          `json:"id,omitempty"`
	State     string          `json:"state,omitempty"`
	Backend   string          `json:"backend,omitempty"`
	Attempts  int             `json:"attempts,omitempty"`
	Resubmits int             `json:"resubmits,omitempty"`
	Cached    bool            `json:"cached,omitempty"`
	Error     string          `json:"error,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
	// Span is the obs stage for this job (or, on the summary event, the
	// whole batch): name, wall time, counters.
	Span *obs.Stage `json:"span,omitempty"`
	// Batch summary event tallies.
	Done   int `json:"done,omitempty"`
	Failed int `json:"failed,omitempty"`
}

func (s *coordServer) handleBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	var req batchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.Jobs) == 0 {
		httpError(w, http.StatusBadRequest, "batch carries no jobs")
		return
	}
	if len(req.Jobs) > maxBatchJobs {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d jobs exceeds the %d-job limit", len(req.Jobs), maxBatchJobs))
		return
	}
	// Resolve every netlist before accepting anything: a batch is
	// all-or-nothing at intake, so a typo in job 17 cannot strand 16
	// journaled jobs the client thinks were rejected.
	keys := make([]string, len(req.Jobs))
	bodies := make([]json.RawMessage, len(req.Jobs))
	for i := range req.Jobs {
		key, body, err := s.prepare(&req.Jobs[i])
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("job %d: %v", i, err))
			return
		}
		keys[i], bodies[i] = key, json.RawMessage(body)
	}
	batch, err := s.coord.SubmitBatch(keys, bodies)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}

	// From here on the response is a chunked NDJSON stream; errors can
	// only be conveyed in-band.
	tr := obs.NewTrace("batch:" + batch.ID)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusAccepted)
	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	emit := func(ev batchEvent) bool {
		// The server's WriteTimeout (when set) is absolute from request
		// start; push the deadline out at every event so a long batch is
		// bounded by inactivity, not total stream lifetime. Best-effort:
		// not every ResponseWriter supports it.
		rc.SetWriteDeadline(time.Now().Add(time.Minute))
		if err := json.NewEncoder(w).Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	ids := make([]string, len(batch.Jobs))
	spans := make([]obs.Recorder, len(batch.Jobs))
	for i, j := range batch.Jobs {
		ids[i] = j.ID()
		spans[i] = tr.StartSpan("job:" + j.ID())
	}
	if !emit(batchEvent{Event: "accepted", Batch: batch.ID, Jobs: ids}) {
		return
	}

	// Fan the per-job completions into one stream, in completion order.
	type doneMsg struct {
		idx  int
		snap cluster.Snapshot
	}
	completions := make(chan doneMsg)
	for i, j := range batch.Jobs {
		go func(i int, j *cluster.Job) {
			select {
			case <-j.Done():
			case <-r.Context().Done():
				return
			}
			select {
			case completions <- doneMsg{i, j.Snapshot()}:
			case <-r.Context().Done():
			}
		}(i, j)
	}
	done, failed := 0, 0
	for n := 0; n < len(batch.Jobs); n++ {
		var msg doneMsg
		select {
		case msg = <-completions:
		case <-r.Context().Done():
			return // client went away; the jobs keep running
		}
		sp := spans[msg.idx]
		sp.Count("attempts", int64(msg.snap.Attempts))
		sp.Count("resubmits", int64(msg.snap.Resubmits))
		sp.End()
		stage := tr.Report().Children[msg.idx]
		if msg.snap.State == cluster.StateDone {
			done++
		} else {
			failed++
		}
		if !emit(batchEvent{
			Event:     "job",
			ID:        msg.snap.ID,
			State:     msg.snap.State,
			Backend:   msg.snap.Backend,
			Attempts:  msg.snap.Attempts,
			Resubmits: msg.snap.Resubmits,
			Cached:    msg.snap.Cached,
			Error:     msg.snap.Err,
			Result:    msg.snap.Result,
			Span:      &stage,
		}) {
			return
		}
	}
	root := tr.Finish()
	emit(batchEvent{Event: "batch", Batch: batch.ID, Done: done, Failed: failed, Span: &root})
}

func (s *coordServer) handleLive(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "mode": "coordinator"})
}

// clusterHealthJSON is the coordinator's /readyz payload: per-backend
// readiness plus the rollup. The coordinator is ready while at least
// one backend can take work — a degraded fleet routes around its dead
// nodes, which is the whole point of the tier.
type clusterHealthJSON struct {
	Status   string                  `json:"status"`
	Ready    int                     `json:"ready"`
	Total    int                     `json:"total"`
	Backends []cluster.BackendStatus `json:"backends"`
}

func (s *coordServer) handleReady(w http.ResponseWriter, r *http.Request) {
	statuses := s.coord.Status(r.Context())
	ready := 0
	for _, st := range statuses {
		if st.Ready {
			ready++
		}
	}
	h := clusterHealthJSON{Ready: ready, Total: len(statuses), Backends: statuses}
	code := http.StatusOK
	switch {
	case ready == len(statuses):
		h.Status = "ok"
	case ready > 0:
		h.Status = "degraded"
	default:
		h.Status = "down"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// clusterMetricsJSON aggregates the fleet's metrics: the coordinator's
// own registry (routing, failover, journal counters) plus each
// backend's /metrics document verbatim (null for unreachable nodes).
type clusterMetricsJSON struct {
	Coordinator obs.MetricsSnapshot        `json:"coordinator"`
	Backends    map[string]json.RawMessage `json:"backends"`
}

func (s *coordServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, clusterMetricsJSON{
		Coordinator: s.coord.Metrics().Snapshot(),
		Backends:    s.coord.GatherMetrics(r.Context()),
	})
}

// coordOptions gathers everything runCoordinator needs, leader or
// standby.
type coordOptions struct {
	addr    string
	dataDir string
	maxBody int64
	grace   time.Duration
	readTO  time.Duration
	writeTO time.Duration

	cfg            cluster.Config
	journalPath    string
	standby        bool
	leaseTTL       time.Duration
	backendsFile   string
	membershipPoll time.Duration
	inj            *igpart.FaultInjector
}

// switchHandler atomically swaps the daemon's handler when a standby
// wins leadership mid-serve: requests before the swap see the standby
// façade, requests after see the full coordinator API.
type switchHandler struct {
	h atomic.Value // http.Handler
}

func (s *switchHandler) Set(h http.Handler) { s.h.Store(&h) }

func (s *switchHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*s.h.Load().(*http.Handler)).ServeHTTP(w, r)
}

// standbyServer is the HTTP façade served while this process is a warm
// standby: health endpoints answer truthfully (alive, role standby),
// everything else is 503 + Retry-After so clients and load balancers
// wait out the takeover or go find the leader.
type standbyServer struct {
	stb *cluster.Standby
	mux *http.ServeMux
}

func newStandbyServer(stb *cluster.Standby) *standbyServer {
	s := &standbyServer{stb: stb, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleLive)
	s.mux.HandleFunc("GET /livez", s.handleLive)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("/", s.handleNotLeader)
	return s
}

func (s *standbyServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *standbyServer) handleLive(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "mode": "coordinator", "role": "standby"})
}

// standbyHealthJSON is the standby's /readyz payload: not ready (a
// standby takes no work), but transparent about how warm it is and
// whose lease it is watching.
type standbyHealthJSON struct {
	Status       string    `json:"status"`
	Role         string    `json:"role"`
	LeaseTerm    int64     `json:"lease_term,omitempty"`
	LeaseOwner   string    `json:"lease_owner,omitempty"`
	LeaseExpires time.Time `json:"lease_expires,omitempty"`
	WarmRecords  int       `json:"warm_records"`
	Unfinished   int       `json:"unfinished"`
}

func (s *standbyServer) handleReady(w http.ResponseWriter, _ *http.Request) {
	st := s.stb.Status()
	h := standbyHealthJSON{Status: "standby", Role: "standby", WarmRecords: st.Records, Unfinished: st.Unfinished}
	if st.HasLease {
		h.LeaseTerm = st.Lease.Term
		h.LeaseOwner = st.Lease.Owner
		h.LeaseExpires = st.Lease.Deadline
	}
	writeJSON(w, http.StatusServiceUnavailable, h)
}

func (s *standbyServer) handleNotLeader(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Retry-After", "1")
	httpError(w, http.StatusServiceUnavailable, "standby coordinator: not the leader yet; retry after takeover")
}

// runCoordinator boots cluster mode. A leader takes the journal's
// leadership lease, builds the fleet (static -backends or the
// watchable -backends-file), replays unfinished work, and serves the
// coordinator API; a standby serves the 503 façade while tailing the
// journal, then flips to leader in place when the lease lapses. On
// SIGTERM both drain (grace-bounded; jobs the drain abandons are
// replayed by the next boot), and a leader releases its lock early so
// a standby need not wait out the lease window.
func runCoordinator(o coordOptions) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	owner := cluster.LeaseOwnerID()
	sw := &switchHandler{}
	var active atomic.Pointer[cluster.Coordinator]

	// SIGHUP forces a membership reload. Armed in every coordinator
	// mode so a standby that takes over inherits the behavior.
	force := make(chan struct{}, 1)
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
				select {
				case force <- struct{}{}:
				default:
				}
			}
		}
	}()

	startLeader := func(j *cluster.Journal, replay []cluster.Record, lease *cluster.Lease) error {
		cfg := o.cfg
		cfg.Journal = j
		if o.backendsFile != "" {
			fleet, err := cluster.ParseBackendsFile(o.backendsFile)
			if err != nil {
				return err
			}
			cfg.Backends = fleet
		}
		if lease != nil {
			cfg.HA = &cluster.HAConfig{Lease: *lease, TTL: o.leaseTTL, LockPath: cluster.LockPath(o.journalPath)}
		}
		coord, err := cluster.New(cfg)
		if err != nil {
			return err
		}
		if n := coord.Recover(replay); n > 0 {
			log.Printf("igpartd: journal replay resubmitted %d unfinished job(s)", n)
		}
		if o.backendsFile != "" {
			go coord.WatchBackendsFile(ctx, o.backendsFile, o.membershipPoll, force, log.Printf)
		}
		names := make([]string, len(cfg.Backends))
		for i, b := range cfg.Backends {
			names[i] = b.Name + "=" + b.URL
		}
		log.Printf("igpartd: coordinator over %d backend(s): %v", len(names), names)
		if lease != nil {
			log.Printf("igpartd: leadership held (term %d, owner %s)", lease.Term, lease.Owner)
		}
		active.Store(coord)
		sw.Set(newCoordServer(coord, o.dataDir, o.maxBody))
		return nil
	}

	if o.standby {
		stb := cluster.NewStandby(cluster.StandbyConfig{
			Path:    o.journalPath,
			Owner:   owner,
			TTL:     o.leaseTTL,
			Metrics: o.cfg.Metrics,
		})
		sw.Set(newStandbyServer(stb))
		log.Printf("igpartd: standby tailing %s (owner %s)", o.journalPath, owner)
		go func() {
			j, replay, lease, err := stb.Run(ctx)
			if err != nil {
				if ctx.Err() == nil {
					log.Printf("igpartd: standby: %v", err)
				}
				return
			}
			j.SetFault(o.inj)
			log.Printf("igpartd: standby takeover: lease term %d (owner %s)", lease.Term, lease.Owner)
			if err := startLeader(j, replay, &lease); err != nil {
				// Keep serving the 503 façade; the operator sees why.
				log.Printf("igpartd: standby takeover failed: %v", err)
			}
		}()
	} else {
		var (
			j      *cluster.Journal
			replay []cluster.Record
			lease  *cluster.Lease
		)
		if o.journalPath != "" {
			jj, recs, l, err := cluster.TakeLeadership(o.journalPath, owner, o.leaseTTL)
			if err != nil {
				return err
			}
			jj.SetFault(o.inj)
			j, replay, lease = jj, recs, &l
		}
		if err := startLeader(j, replay, lease); err != nil {
			return err
		}
	}

	drain := func(dctx context.Context) error {
		cancel() // stop the standby tail and the membership watcher
		if c := active.Load(); c != nil {
			return c.Shutdown(dctx)
		}
		return nil
	}
	return serveHTTP(o.addr, o.readTO, o.writeTO, sw, drain, o.grace)
}
