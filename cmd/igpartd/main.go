// Command igpartd serves the igpart pipeline over HTTP: submit
// partitioning jobs, poll for results, cancel, and scrape metrics.
//
//	igpartd -addr 127.0.0.1:8080 -data ./benchmarks
//
// The daemon is bounded at every layer: a worker pool sized to the
// machine, a fixed-depth queue that rejects overflow with 429, a
// request body size cap, and per-job deadlines. SIGTERM/SIGINT starts
// a graceful drain — intake stops, queued and running jobs finish (up
// to -shutdown-grace), then the process exits.
//
// Cluster mode turns the process into a coordinator instead:
//
//	igpartd -coordinator -backends http://n1:8080,http://n2:8080 \
//	        -journal /var/lib/igpartd/journal.jsonl
//
// The coordinator keeps the same /v1/jobs API, adds POST /v1/batches
// with streamed per-job completions, routes every job to a backend by
// consistent hashing on the netlist's content address, fails work over
// when a backend dies, and journals accepted jobs durably so its own
// restart loses nothing.
//
// The control plane itself is made highly available by a warm standby
// sharing the journal path (-standby: tails the journal, takes over on
// lease expiry), and the fleet can change live via a watchable
// backends file (-backends-file; SIGHUP forces a reload).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"igpart"
	"igpart/internal/cluster"
	"igpart/internal/service"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		workers       = flag.Int("workers", 0, "solver pool size (0 = GOMAXPROCS)")
		queue         = flag.Int("queue", 64, "queued-job bound; submissions beyond it get 429")
		cacheEntries  = flag.Int("cache", 128, "result cache entries (negative disables)")
		maxBody       = flag.Int64("max-body", 32<<20, "request body size limit in bytes")
		dataDir       = flag.String("data", "", "directory for server-side netlist paths (empty disables \"path\" submissions)")
		jobTimeout    = flag.Duration("job-timeout", 0, "default per-job deadline (0 = none)")
		maxJobTimeout = flag.Duration("max-job-timeout", 0, "cap on per-request deadlines (0 = uncapped)")
		shutdownGrace = flag.Duration("shutdown-grace", 30*time.Second, "drain budget after SIGTERM before cancelling jobs")
		readTimeout   = flag.Duration("read-timeout", 30*time.Second, "per-request read timeout")
		writeTimeout  = flag.Duration("write-timeout", 30*time.Second, "per-request write timeout (0 = none; coordinator mode defaults to 0 so batch streams are not cut off)")
		retry         = flag.Int("retry", 0, "solve attempts per job (0 = default 2, negative disables retrying)")
		inject        = flag.String("inject", "", "fault-injection spec, e.g. 'worker.panic:limit=1,eigen.noconverge:p=0.5' (empty = off)")
		injectSeed    = flag.Int64("inject-seed", 1, "seed for the deterministic fault-injection streams")

		// Cluster-mode flags. With -coordinator the engine flags above
		// (-workers, -queue, -cache, -retry, job timeouts) are unused:
		// the coordinator computes nothing itself. -inject stays live for
		// the coordinator-side chaos points (coord.crash,
		// journal.write-err).
		coordinator     = flag.Bool("coordinator", false, "run as a cluster coordinator over -backends instead of solving locally")
		backendsFlag    = flag.String("backends", "", "comma-separated backend URLs, each optionally name= prefixed (coordinator mode, static fleet)")
		backendsFile    = flag.String("backends-file", "", "watchable backends file: one backend spec per line (name=URL or URL, '#' comments); polled for changes, SIGHUP forces a reload (coordinator mode, dynamic fleet)")
		membershipPoll  = flag.Duration("membership-poll", 2*time.Second, "backends-file change poll cadence")
		minDwell        = flag.Duration("min-dwell", 5*time.Second, "flapping guard: a backend re-added within this window of its removal waits it out before rejoining the ring (negative disables)")
		journalPath     = flag.String("journal", "", "durable job journal path (JSONL, fsync'd; replayed on boot; empty disables)")
		standby         = flag.Bool("standby", false, "run as a warm-standby coordinator: tail the shared -journal, serve 503s, and take over when the leader's lease expires")
		leaseTTL        = flag.Duration("lease-ttl", cluster.DefaultLeaseTTL, "coordinator leadership lease horizon; the leader renews at a third of this, a standby takes over once it expires")
		clusterAttempts = flag.Int("cluster-attempts", 0, "max submissions per job across failover hops (0 = 2x backend count)")
		pollInterval    = flag.Duration("poll-interval", 50*time.Millisecond, "backend job status poll cadence")
		probeInterval   = flag.Duration("probe-interval", 500*time.Millisecond, "backend /readyz health probe cadence (negative disables)")
	)
	flag.Parse()

	if *coordinator {
		// http.Server's WriteTimeout is absolute from request start, which
		// would kill a chunked /v1/batches stream mid-flight; unless the
		// operator explicitly asked for one, run the coordinator without.
		wtSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "write-timeout" {
				wtSet = true
			}
		})
		if !wtSet {
			*writeTimeout = 0
		}
		if (*backendsFlag == "") == (*backendsFile == "") {
			log.Fatalf("igpartd: coordinator mode needs exactly one of -backends or -backends-file")
		}
		if *standby && *journalPath == "" {
			log.Fatalf("igpartd: -standby requires -journal (the leadership lease lives there)")
		}
		reg := new(igpart.MetricsRegistry)
		inj, err := igpart.ParseFaultSpec(*inject, *injectSeed, reg)
		if err != nil {
			log.Fatalf("igpartd: -inject: %v", err)
		}
		if inj != nil {
			log.Printf("igpartd: FAULT INJECTION ARMED: %s", inj)
		}
		var backends []cluster.Backend
		if *backendsFlag != "" {
			backends, err = cluster.ParseBackends(*backendsFlag)
			if err != nil {
				log.Fatalf("igpartd: -backends: %v", err)
			}
		}
		err = runCoordinator(coordOptions{
			addr:    *addr,
			dataDir: *dataDir,
			maxBody: *maxBody,
			grace:   *shutdownGrace,
			readTO:  *readTimeout,
			writeTO: *writeTimeout,
			cfg: cluster.Config{
				Backends:      backends,
				Attempts:      *clusterAttempts,
				PollInterval:  *pollInterval,
				ProbeInterval: *probeInterval,
				MinDwell:      *minDwell,
				Metrics:       reg,
				Fault:         inj,
			},
			journalPath:    *journalPath,
			standby:        *standby,
			leaseTTL:       *leaseTTL,
			backendsFile:   *backendsFile,
			membershipPoll: *membershipPoll,
			inj:            inj,
		})
		if err != nil {
			log.Fatalf("igpartd: %v", err)
		}
		return
	}
	if *backendsFlag != "" || *backendsFile != "" || *journalPath != "" || *standby {
		log.Fatalf("igpartd: -backends/-backends-file/-journal/-standby require -coordinator")
	}

	reg := new(igpart.MetricsRegistry)
	inj, err := igpart.ParseFaultSpec(*inject, *injectSeed, reg)
	if err != nil {
		log.Fatalf("igpartd: -inject: %v", err)
	}
	if inj != nil {
		log.Printf("igpartd: FAULT INJECTION ARMED: %s", inj)
	}
	if err := run(*addr, *dataDir, *maxBody, *shutdownGrace, *readTimeout, *writeTimeout, service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheEntries,
		DefaultTimeout: *jobTimeout,
		MaxTimeout:     *maxJobTimeout,
		Metrics:        reg,
		RetryAttempts:  *retry,
		Fault:          inj,
	}); err != nil {
		log.Fatalf("igpartd: %v", err)
	}
}

func run(addr, dataDir string, maxBody int64, grace, readTO, writeTO time.Duration, cfg service.Config) error {
	engine := service.New(cfg)
	handler := newServer(engine, serverConfig{dataDir: dataDir, maxBody: maxBody, inj: cfg.Fault})
	return serveHTTP(addr, readTO, writeTO, handler, engine.Shutdown, grace)
}

// serveHTTP is the shared daemon skeleton for both modes: listen, log
// the bound address (the smoke scripts and tests parse this line),
// serve until SIGTERM/SIGINT, then drain — first HTTP (so no new
// submission can race past the engine close), then the engine or
// coordinator behind it, both bounded by grace.
func serveHTTP(addr string, readTO, writeTO time.Duration, handler http.Handler, drain func(context.Context) error, grace time.Duration) error {
	// Listen before building anything else so "port in use" fails fast,
	// and so -addr :0 can report the chosen port.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           handler,
		ReadTimeout:       readTO,
		WriteTimeout:      writeTO,
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("igpartd: listening on %s", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	log.Printf("igpartd: shutting down, draining for up to %v", grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("igpartd: http shutdown: %v", err)
	}
	if err := drain(shutdownCtx); err != nil {
		log.Printf("igpartd: drain incomplete: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("serve: %w", err)
	}
	log.Printf("igpartd: shutdown complete")
	return nil
}
