package main

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"igpart"
	"igpart/internal/cluster"
	"igpart/internal/obs"
	"igpart/internal/service"
)

// clusterBackend is one real igpartd node under test: a full service
// engine behind the single-node HTTP façade.
type clusterBackend struct {
	name   string
	engine *service.Engine
	reg    *obs.Registry
	ts     *httptest.Server
	pinID  string
}

func newClusterBackend(t *testing.T, name string) *clusterBackend {
	t.Helper()
	reg := new(obs.Registry)
	engine := service.New(service.Config{Workers: 1, Metrics: reg})
	ts := httptest.NewServer(newServer(engine, serverConfig{}))
	b := &clusterBackend{name: name, engine: engine, reg: reg, ts: ts}
	t.Cleanup(func() {
		ts.Close()
		// Backends may hold deliberately long pin jobs; a short deadline
		// force-cancels them instead of waiting the solve out.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = engine.Shutdown(ctx)
	})
	return b
}

// pin occupies the backend's single worker with a long solve submitted
// directly (not through the coordinator), so coordinator jobs routed to
// this backend queue without completing.
func (b *clusterBackend) pin(t *testing.T) {
	t.Helper()
	body, _ := bookshelfPayload(t, "Prim2", 1.0, map[string]any{"parallelism": 1})
	code, j := postJob(t, b.ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("pin %s: status %d", b.name, code)
	}
	b.pinID = j.ID
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, s := getJob(t, b.ts, j.ID)
		if s.State == string(service.StateRunning) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pin %s never started (state %q)", b.name, s.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (b *clusterBackend) submitted() int64 {
	return b.reg.Counter("service.jobs_submitted").Value()
}

// testCoordinator builds a coordinator + HTTP façade over the given
// backends with fast test timings.
func testCoordinator(t *testing.T, journalPath string, probe time.Duration, backends ...*clusterBackend) (*httptest.Server, *cluster.Coordinator) {
	t.Helper()
	cfg := cluster.Config{
		PollInterval:   5 * time.Millisecond,
		ProbeInterval:  probe,
		RetryBaseDelay: 2 * time.Millisecond,
		RetryMaxDelay:  10 * time.Millisecond,
		Metrics:        new(obs.Registry),
	}
	for _, b := range backends {
		cfg.Backends = append(cfg.Backends, cluster.Backend{Name: b.name, URL: b.ts.URL})
	}
	var replay []cluster.Record
	if journalPath != "" {
		j, recs, err := cluster.OpenJournal(journalPath)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Journal = j
		replay = recs
	}
	coord, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	coord.Recover(replay)
	ts := httptest.NewServer(newCoordServer(coord, "", 0))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = coord.Shutdown(ctx)
	})
	return ts, coord
}

// batchBody builds a /v1/batches payload: n jobs over one netlist with
// seeds 1..n — one routing key, so the whole batch lands on the ring
// owner of that netlist, while the distinct seeds make each job a
// distinct solve (and a distinct backend cache entry). The returned
// netlist is the bookshelf round trip of the generated one — the exact
// netlist the coordinator hashes for routing and the backends solve.
func batchBody(t *testing.T, bench string, scale float64, n int) ([]byte, *igpart.Netlist) {
	t.Helper()
	cfg, ok := igpart.Benchmark(bench)
	if !ok {
		t.Fatalf("unknown benchmark %q", bench)
	}
	gen, err := igpart.Generate(cfg.Scaled(scale))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	var nodes, nets bytes.Buffer
	if err := igpart.WriteBookshelf(&nodes, &nets, gen); err != nil {
		t.Fatalf("write bookshelf: %v", err)
	}
	h, err := loadNetlist(&submitRequest{
		Bookshelf: &bookshelfPair{Nodes: nodes.String(), Nets: nets.String()},
	}, "", nil)
	if err != nil {
		t.Fatalf("round-trip netlist: %v", err)
	}
	jobs := make([]map[string]any, n)
	for i := range jobs {
		jobs[i] = map[string]any{
			"bookshelf": map[string]string{"nodes": nodes.String(), "nets": nets.String()},
			"seed":      i + 1,
		}
	}
	body, err := json.Marshal(map[string]any{"jobs": jobs})
	if err != nil {
		t.Fatalf("marshal batch: %v", err)
	}
	return body, h
}

func routingKey(h *igpart.Netlist) string {
	return fmt.Sprintf("%x", sha256.Sum256(h.CanonicalBytes()))
}

// streamBatch POSTs a batch and returns the response body reader; the
// caller reads NDJSON events off it as completions arrive.
func streamBatch(t *testing.T, ctx context.Context, url string, body []byte) (*bufio.Reader, func()) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/batches", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/batches: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch status = %d, want 202", resp.StatusCode)
	}
	return bufio.NewReader(resp.Body), func() { resp.Body.Close() }
}

func readEvent(t *testing.T, br *bufio.Reader) batchEvent {
	t.Helper()
	line, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatalf("read batch stream: %v (partial %q)", err, line)
	}
	var ev batchEvent
	if err := json.Unmarshal(line, &ev); err != nil {
		t.Fatalf("decode event %q: %v", line, err)
	}
	return ev
}

// TestClusterChaosFailover is the acceptance chaos path: two real
// backends, a batch routed entirely to the ring owner, the owner
// SIGKILLed (connection-level death) mid-batch. Every accepted job must
// still reach a terminal state — completed on the survivor — with a
// ratio cut identical to what a single-node solve computes, and the
// failover must be visible in the resubmit counter.
func TestClusterChaosFailover(t *testing.T) {
	b0 := newClusterBackend(t, "b0")
	b1 := newClusterBackend(t, "b1")
	cts, coord := testCoordinator(t, filepath.Join(t.TempDir(), "journal.jsonl"), -1, b0, b1)

	const n = 6
	body, h := batchBody(t, "bm1", 0.25, n)
	owner, survivor := b0, b1
	if coord.Ring().Owner(routingKey(h)) == "b1" {
		owner, survivor = b1, b0
	}
	// Single-node ground truth per seed (solves are deterministic).
	direct := make(map[int64]float64, n)
	for seed := int64(1); seed <= n; seed++ {
		res, err := igpart.IGMatch(h, igpart.IGMatchOptions{Seed: seed})
		if err != nil {
			t.Fatalf("direct IGMatch seed %d: %v", seed, err)
		}
		direct[seed] = res.Metrics.RatioCut
	}

	// Pin the owner's only worker so no batch job can complete before
	// the kill — the whole batch is mid-flight by construction.
	owner.pin(t)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	br, closeStream := streamBatch(t, ctx, cts.URL, body)
	defer closeStream()
	accepted := readEvent(t, br)
	if accepted.Event != "accepted" || len(accepted.Jobs) != n {
		t.Fatalf("first event = %+v, want accepted with %d jobs", accepted, n)
	}

	// Wait until the coordinator has handed every job to the owner, then
	// kill it (pin job + n batch jobs = n+1 submissions).
	deadline := time.Now().Add(30 * time.Second)
	for owner.submitted() < n+1 {
		if time.Now().After(deadline) {
			t.Fatalf("owner saw %d submissions, want %d", owner.submitted(), n+1)
		}
		time.Sleep(2 * time.Millisecond)
	}
	owner.ts.CloseClientConnections()
	owner.ts.Close()

	// Every job completes on the survivor, after at least one failover
	// hop, with the single-node result.
	matchedSeeds := make(map[int64]bool)
	for i := 0; i < n; i++ {
		ev := readEvent(t, br)
		if ev.Event != "job" {
			t.Fatalf("event %d = %+v, want a job completion", i, ev)
		}
		if ev.State != string(service.StateDone) {
			t.Fatalf("job %s ended %q (err %q), want done", ev.ID, ev.State, ev.Error)
		}
		if ev.Backend != survivor.name {
			t.Errorf("job %s completed on %s, want survivor %s", ev.ID, ev.Backend, survivor.name)
		}
		if ev.Resubmits < 1 {
			t.Errorf("job %s resubmits = %d, want >= 1 (owner was killed)", ev.ID, ev.Resubmits)
		}
		if ev.Span == nil || ev.Span.Name != "job:"+ev.ID {
			t.Errorf("job %s span = %+v, want job:%s", ev.ID, ev.Span, ev.ID)
		}
		var res struct {
			RatioCut float64 `json:"ratio_cut"`
		}
		if err := json.Unmarshal(ev.Result, &res); err != nil {
			t.Fatalf("job %s result %q: %v", ev.ID, ev.Result, err)
		}
		// Multiset-match the result back to the per-seed single-node
		// ground truth: every streamed ratio cut must equal one
		// still-unclaimed direct solve's.
		matched := false
		for seed, want := range direct {
			if !matchedSeeds[seed] && res.RatioCut == want {
				matchedSeeds[seed] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("job %s ratio cut %g matches no single-node result %v", ev.ID, res.RatioCut, direct)
		}
	}
	summary := readEvent(t, br)
	if summary.Event != "batch" || summary.Done != n || summary.Failed != 0 {
		t.Fatalf("summary = %+v, want batch done=%d failed=0", summary, n)
	}
	if summary.Span == nil || len(summary.Span.Children) != n {
		t.Fatalf("batch span = %+v, want %d child job spans", summary.Span, n)
	}
	if got := coord.Metrics().Counter("cluster.failover.resubmits").Value(); got < int64(n) {
		t.Errorf("cluster.failover.resubmits = %d, want >= %d", got, n)
	}
}

// TestClusterBatchStreamAndAggregates is the healthy-fleet path: a
// batch spread over real backends streams per-job completions with
// spans, and the aggregate /metrics and /readyz views cover the fleet.
func TestClusterBatchStreamAndAggregates(t *testing.T) {
	b0 := newClusterBackend(t, "b0")
	b1 := newClusterBackend(t, "b1")
	cts, _ := testCoordinator(t, "", 20*time.Millisecond, b0, b1)

	const n = 3
	body, _ := batchBody(t, "bm1", 0.2, n)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	br, closeStream := streamBatch(t, ctx, cts.URL, body)
	defer closeStream()

	accepted := readEvent(t, br)
	if accepted.Event != "accepted" || len(accepted.Jobs) != n || accepted.Batch == "" {
		t.Fatalf("accepted event = %+v", accepted)
	}
	for i := 0; i < n; i++ {
		ev := readEvent(t, br)
		if ev.Event != "job" || ev.State != string(service.StateDone) {
			t.Fatalf("job event = %+v, want done", ev)
		}
		if ev.Result == nil || ev.Span == nil || ev.Span.Counters["attempts"] != 1 {
			t.Fatalf("job event missing result/span: %+v", ev)
		}
	}
	summary := readEvent(t, br)
	if summary.Event != "batch" || summary.Done != n {
		t.Fatalf("summary = %+v", summary)
	}

	// Aggregated metrics: the coordinator's own counters plus one entry
	// per backend, each a verbatim backend snapshot.
	resp, err := http.Get(cts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var agg struct {
		Coordinator obs.MetricsSnapshot        `json:"coordinator"`
		Backends    map[string]json.RawMessage `json:"backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&agg); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}
	if agg.Coordinator.Counters["cluster.jobs_completed"] != n {
		t.Errorf("aggregate jobs_completed = %d, want %d", agg.Coordinator.Counters["cluster.jobs_completed"], n)
	}
	if len(agg.Backends) != 2 {
		t.Fatalf("aggregate covers %d backends, want 2", len(agg.Backends))
	}
	var total int64
	for name, raw := range agg.Backends {
		var snap obs.MetricsSnapshot
		if err := json.Unmarshal(raw, &snap); err != nil {
			t.Fatalf("backend %s metrics: %v", name, err)
		}
		total += snap.Counters["service.jobs_submitted"]
	}
	if total != n {
		t.Errorf("backends saw %d submissions in aggregate, want %d", total, n)
	}

	// Fleet readiness: all up -> ok; one dead -> degraded but still 200.
	resp, err = http.Get(cts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var health clusterHealthJSON
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || health.Status != "ok" || health.Ready != 2 {
		t.Fatalf("healthy-fleet readyz = %d %+v", resp.StatusCode, health)
	}
	b1.ts.Close()
	resp, err = http.Get(cts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || health.Status != "degraded" || health.Ready != 1 {
		t.Fatalf("degraded-fleet readyz = %d %+v", resp.StatusCode, health)
	}
}

// TestClusterCoordinatorRestartReplaysJournal reboots the coordinator
// HTTP tier mid-batch: jobs accepted (journaled) but unfinished at the
// crash must complete after the restart, queryable under their original
// IDs, without the client resubmitting anything.
func TestClusterCoordinatorRestartReplaysJournal(t *testing.T) {
	b0 := newClusterBackend(t, "b0")
	b1 := newClusterBackend(t, "b1")
	journal := filepath.Join(t.TempDir(), "journal.jsonl")

	// Pin both backends: nothing the batch submits can complete, so the
	// crash abandons the whole accepted set.
	b0.pin(t)
	b1.pin(t)

	cts1, coord1 := testCoordinator(t, journal, -1, b0, b1)
	const n = 3
	body, _ := batchBody(t, "bm1", 0.2, n)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	br, closeStream := streamBatch(t, ctx, cts1.URL, body)
	accepted := readEvent(t, br)
	closeStream() // the client walks away; acceptance is durable anyway
	if accepted.Event != "accepted" || len(accepted.Jobs) != n {
		t.Fatalf("accepted event = %+v", accepted)
	}
	// All jobs dispatched to some backend (2 pins + n batch jobs).
	deadline := time.Now().Add(30 * time.Second)
	for b0.submitted()+b1.submitted() < n+2 {
		if time.Now().After(deadline) {
			t.Fatalf("backends saw %d submissions, want %d", b0.submitted()+b1.submitted(), n+2)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Crash the coordinator: expired drain budget, runners abort without
	// journaling completions.
	cts1.Close()
	crashCtx, crashCancel := context.WithCancel(context.Background())
	crashCancel()
	if err := coord1.Shutdown(crashCtx); err == nil {
		t.Fatal("crash-style shutdown reported a clean drain")
	}

	// Unpin the workers, then reboot onto the same journal.
	for _, b := range []*clusterBackend{b0, b1} {
		req, _ := http.NewRequest(http.MethodDelete, b.ts.URL+"/v1/jobs/"+b.pinID, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}
	cts2, coord2 := testCoordinator(t, journal, -1, b0, b1)
	if got := coord2.Metrics().Counter("cluster.journal.replayed").Value(); got != n {
		t.Fatalf("journal replay resubmitted %d jobs, want %d", got, n)
	}
	for _, id := range accepted.Jobs {
		final := pollClusterJob(t, cts2, id, 60*time.Second)
		if final.State != string(service.StateDone) {
			t.Fatalf("replayed job %s ended %q (err %q), want done", id, final.State, final.Error)
		}
		if final.Result == nil {
			t.Fatalf("replayed job %s has no result", id)
		}
	}
}

// pollClusterJob polls the coordinator's GET /v1/jobs/{id} until the
// job is terminal.
func pollClusterJob(t *testing.T, ts *httptest.Server, id string, within time.Duration) coordJobJSON {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET /v1/jobs/%s: %v", id, err)
		}
		var j coordJobJSON
		err = json.NewDecoder(resp.Body).Decode(&j)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s: status %d, err %v", id, resp.StatusCode, err)
		}
		if service.State(j.State).Terminal() {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %q after %v", id, j.State, within)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
