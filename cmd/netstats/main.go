// Command netstats analyzes a netlist: size summary, net-size histogram
// (the layout of the paper's Table 1, before partitioning), connectivity,
// and the clique-vs-intersection-graph sparsity comparison of Section 1.2.
//
// Usage:
//
//	netstats -in design.hgr [-lambda2]
//	netstats -nodes d.nodes -nets d.nets
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"igpart"
	"igpart/internal/eigen"
	"igpart/internal/hypergraph"
	"igpart/internal/netmodel"
)

func main() {
	var (
		in      = flag.String("in", "", "input netlist path (.hgr or named format)")
		nodes   = flag.String("nodes", "", "Bookshelf .nodes path")
		nets    = flag.String("nets", "", "Bookshelf .nets path")
		lambda2 = flag.Bool("lambda2", false, "also compute the IG Laplacian's second eigenvalue")
	)
	flag.Parse()

	var h *igpart.Netlist
	var err error
	switch {
	case *in != "":
		h, err = igpart.Load(*in)
	case *nodes != "" && *nets != "":
		h, err = igpart.LoadBookshelf(*nodes, *nets)
	default:
		fmt.Fprintln(os.Stderr, "netstats: need -in, or -nodes with -nets")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "netstats:", err)
		os.Exit(1)
	}

	s := hypergraph.ComputeStats(h)
	fmt.Println(s)
	_, comps := hypergraph.ConnectedComponents(h)
	fmt.Printf("connected components: %d\n", comps)

	sp := netmodel.CompareSparsity(h)
	fmt.Printf("nonzeros: clique=%d ig=%d (clique/ig = %.2f)\n",
		sp.CliqueNonzeros, sp.IGNonzeros, sp.Ratio)

	fmt.Println("\nnet-size histogram:")
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "Net Size\tNumber of Nets\t")
	for _, row := range s.SizeHistogramRows() {
		fmt.Fprintf(w, "%d\t%d\t\n", row[0], row[1])
	}
	w.Flush()

	if *lambda2 {
		q := netmodel.IGLaplacian(h, netmodel.IGOptions{})
		res, err := eigen.Fiedler(q, eigen.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "netstats: eigensolve:", err)
			os.Exit(1)
		}
		fmt.Printf("\nIG lambda2 = %.6g (ratio-cut lower bound λ2/m = %.3g)\n",
			res.Lambda2, res.Lambda2/float64(h.NumNets()))
	}
}
