package igpart

// One testing.B benchmark per table and figure of the paper (see DESIGN.md
// §3 for the experiment index). The benchmarks run the same harness code as
// cmd/experiments, at reduced scale so `go test -bench=.` completes in
// minutes; run `go run igpart/cmd/experiments` for the full-size tables.

import (
	"fmt"
	"runtime"
	"testing"

	"igpart/internal/bench"
	"igpart/internal/core"
	"igpart/internal/eigen"
	"igpart/internal/netgen"
	"igpart/internal/netmodel"
)

// benchSuite is the reduced-scale harness configuration used by the
// per-table benchmarks.
func benchSuite() bench.Suite { return bench.Suite{Scale: 0.2, RCutStarts: 5} }

// T1 — Table 1: cut statistics per net size.
func BenchmarkTable1(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// T2 — Table 2: IG-Match vs RCut.
func BenchmarkTable2(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bench.GeomImprovement(rows), "avg-improve-%")
	}
}

// T3 — Table 3: IG-Match vs IG-Vote.
func BenchmarkTable3(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Table3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bench.GeomImprovement(rows), "avg-improve-%")
	}
}

// §4 — the EIG1 comparison quoted alongside Table 3.
func BenchmarkTableEIG1(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.TableEIG1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bench.GeomImprovement(rows), "avg-improve-%")
	}
}

// Prior IG work — IG-Match vs the Kahng'89-style diameter heuristic.
func BenchmarkTableIGDiam(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.TableIGDiam()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bench.GeomImprovement(rows), "avg-improve-%")
	}
}

// X1 — sparsity comparison (the Test05 nonzero-count claim).
func BenchmarkSparsity(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.SparsityTable()
		if err != nil {
			b.Fatal(err)
		}
		avg := 0.0
		for _, r := range rows {
			avg += r.Ratio
		}
		b.ReportMetric(avg/float64(len(rows)), "clique/IG-nnz")
	}
}

// §5 scalability claim — pipeline cost vs circuit size.
func BenchmarkScaling(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.ScalingTable([]float64{0.5, 1, 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// X2 — runtime comparison: spectral flow vs multi-start RCut.
func BenchmarkTiming(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.TimingTable(); err != nil {
			b.Fatal(err)
		}
	}
}

// X3 — stability: deterministic IG-Match vs seed-dependent RCut.
func BenchmarkStability(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.StabilityTable(3); err != nil {
			b.Fatal(err)
		}
	}
}

// A1 — IG edge-weight scheme ablation.
func BenchmarkWeightSchemes(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.WeightSchemeTable(); err != nil {
			b.Fatal(err)
		}
	}
}

// A6 — net-model fragility ablation (EIG1 clique vs star; IG-Match none).
func BenchmarkNetModel(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.NetModelTable(); err != nil {
			b.Fatal(err)
		}
	}
}

// A2 — thresholding sparsification ablation.
func BenchmarkThreshold(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.ThresholdTable(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// A3 — recursive completion extension.
func BenchmarkRecursive(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.RecursiveTable(); err != nil {
			b.Fatal(err)
		}
	}
}

// A4 — FM post-refinement extension.
func BenchmarkRefine(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.RefineTable(); err != nil {
			b.Fatal(err)
		}
	}
}

// A5 — clustering condensation extension.
func BenchmarkCluster(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.ClusterTable(); err != nil {
			b.Fatal(err)
		}
	}
}

// §1.1 taxonomy — one representative per partitioning-approach class.
func BenchmarkTaxonomy(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.TaxonomyTable(); err != nil {
			b.Fatal(err)
		}
	}
}

// O1 — net-ordering ablation (eigen vs random vs size vs BFS orders).
func BenchmarkOrdering(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.OrderingTable(2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the pipeline stages on a full-size circuit. ---

func prim2(b *testing.B, scale float64) *Netlist {
	b.Helper()
	cfg, _ := netgen.ByName("Prim2")
	h, err := netgen.Generate(cfg.Scaled(scale))
	if err != nil {
		b.Fatal(err)
	}
	return h
}

// F1 — intersection-graph construction (the Figure 1 transformation).
func BenchmarkFigure1IGConstruction(b *testing.B) {
	h := prim2(b, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		netmodel.IntersectionGraph(h, netmodel.IGOptions{})
	}
}

// Lanczos Fiedler solve on the full-size Prim2 intersection graph.
func BenchmarkFiedlerIGPrim2(b *testing.B) {
	h := prim2(b, 1.0)
	q := netmodel.IGLaplacian(h, netmodel.IGOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eigen.Fiedler(q, eigen.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// F2/F5–F7 — the incremental sweep with matching maintenance and
// completions (the IG-Match main loop without the eigensolve).
func BenchmarkSweepPrim2(b *testing.B) {
	h := prim2(b, 1.0)
	res, err := core.Partition(h, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PartitionWithOrder(h, res.NetOrder, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// P-scaling — the sharded sweep engine at P=1 (serial) vs P=NumCPU on the
// full-size Prim2 circuit. Both produce bit-identical results; the sub-
// benchmark ratio is the sweep speedup the Parallelism knob buys on this
// machine.
func BenchmarkSweepPrim2Parallel(b *testing.B) {
	h := prim2(b, 1.0)
	res, err := core.Partition(h, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.PartitionWithOrder(h, res.NetOrder, core.Options{Parallelism: p}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// End-to-end IG-Match on the full-size Prim2 circuit.
func BenchmarkIGMatchPrim2(b *testing.B) {
	h := prim2(b, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := IGMatch(h); err != nil {
			b.Fatal(err)
		}
	}
}

// End-to-end RCut best-of-10 on the full-size Prim2 circuit (the paper's
// runtime comparison partner).
func BenchmarkRCutPrim2(b *testing.B) {
	h := prim2(b, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RCut(h, 10, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
