package igpart_test

import (
	"fmt"

	"igpart"
)

// The smallest interesting netlist: two triangles joined by a bridge net.
func twoTriangles() *igpart.Netlist {
	b := igpart.NewBuilder()
	b.AddNet(0, 1)
	b.AddNet(1, 2)
	b.AddNet(0, 2)
	b.AddNet(3, 4)
	b.AddNet(4, 5)
	b.AddNet(3, 5)
	b.AddNamedNet("bridge", 2, 3)
	return b.Build()
}

func ExampleIGMatch() {
	h := twoTriangles()
	res, err := igpart.IGMatch(h)
	if err != nil {
		panic(err)
	}
	fmt.Println("cut nets:", res.Metrics.CutNets)
	fmt.Println("sides:", res.Metrics.SizeU, res.Metrics.SizeW)
	fmt.Println("cut within bound:", res.Metrics.CutNets <= res.MatchingBound)
	// Output:
	// cut nets: 1
	// sides: 3 3
	// cut within bound: true
}

func ExampleNewBuilder() {
	b := igpart.NewBuilder()
	b.AddNamedNet("clk", 0, 1, 2)
	b.AddNamedNet("d", 0, 1)
	h := b.Build()
	fmt.Println(h.NumModules(), "modules,", h.NumNets(), "nets,", h.NumPins(), "pins")
	// Output: 3 modules, 2 nets, 5 pins
}

func ExampleEvaluate() {
	h := twoTriangles()
	p := igpart.NewBipartition(h.NumModules())
	for v := 3; v <= 5; v++ {
		p.Set(v, igpart.W)
	}
	fmt.Println(igpart.Evaluate(h, p))
	// Output: 3:3 cut=1 ratio=0.1111
}

func ExampleMultiway() {
	h := twoTriangles()
	res, err := igpart.Multiway(h, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("parts:", res.K, "spanning:", res.SpanningNets)
	// Output: parts: 2 spanning: 1
}

func ExampleCompareSparsity() {
	b := igpart.NewBuilder()
	big := make([]int, 20)
	for i := range big {
		big[i] = i
	}
	b.AddNet(big...) // one 20-pin net: 190 clique pairs, 0 IG edges
	b.AddNet(0, 1)
	h := b.Build()
	s := igpart.CompareSparsity(h)
	fmt.Println(s.CliqueNonzeros > 10*s.IGNonzeros)
	// Output: true
}
