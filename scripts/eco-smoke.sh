#!/bin/sh
# End-to-end smoke test of incremental ECO re-partitioning, suitable
# for CI:
#
#   1. build igpartd and netgen;
#   2. generate a mid-size netlist and boot the daemon;
#   3. submit it and solve cold (this is the timing baseline — the
#      delta'd netlist differs by 5 nets out of 4000, so the base
#      solve is a fair stand-in for a cold re-solve);
#   4. PATCH a 5-net delta against the done base job, poll the warm
#      job, and assert it warm-started (warm:true, touched_nets:5),
#      landed a sane bipartition, and beat the cold solve time;
#   5. re-PATCH the identical delta and require a cache hit;
#   6. PATCH garbage and out-of-range deltas and require 400, a delta
#      against an unknown job and require 404;
#   7. SIGTERM the daemon and require a clean exit.
#
# Requires only the Go toolchain and POSIX sh + curl + grep + sed.
set -eu

TAG=eco-smoke
workdir=$(mktemp -d)
. "$(dirname "$0")/lib.sh"
cleanup() {
    cleanup_daemons
    rm -rf "$workdir"
}
trap cleanup EXIT

# stage_ns: root stage duration of the last $resp's result, in ns.
stage_ns() {
    printf '%s' "$resp" | sed -n 's/.*"duration_ns":\([0-9]*\).*/\1/p' | head -1
}

say "building binaries"
go build -o "$workdir/igpartd" igpart/cmd/igpartd
go build -o "$workdir/netgen" igpart/cmd/netgen
IGPARTD=$workdir/igpartd

mkdir "$workdir/data"
"$workdir/netgen" -modules 3000 -nets 4000 -seed 11 -out "$workdir/data/eco.hgr"

say "starting igpartd"
boot_daemon "$workdir/igpartd.log" -data "$workdir/data"
say "daemon up at $addr"
wait_ready

say "submitting base job (cold solve)"
fetch POST /v1/jobs '{"path": "eco.hgr"}'
[ "$status" = 202 ] || die "submit -> $status ($resp)"
base_id=$(job_field id)
[ -n "$base_id" ] || die "no job id in $resp"
poll_job "$base_id"
[ "$state" = done ] || die "base job ended '$state': $resp"
cold_ns=$(stage_ns)
[ -n "$cold_ns" ] || die "base result carries no stage timing: $resp"
say "base solved cold in ${cold_ns}ns"

say "patching a 5-net delta"
delta='{"delta": {"remove_nets": [0, 1, 2, 3, 4]}}'
fetch PATCH "/v1/jobs/$base_id" "$delta"
[ "$status" = 202 ] || die "patch -> $status ($resp)"
warm_id=$(job_field id)
[ -n "$warm_id" ] && [ "$warm_id" != "$base_id" ] || die "no fresh job id in $resp"
poll_job "$warm_id"
[ "$state" = done ] || die "delta job ended '$state': $resp"
printf '%s' "$resp" | grep -q '"warm":true' || die "delta job did not warm-start: $resp"
printf '%s' "$resp" | grep -q '"touched_nets":5' || die "wrong touched_nets: $resp"
for side in size_u size_w; do
    n=$(printf '%s' "$resp" | sed -n 's/.*"'"$side"'":\([0-9]*\).*/\1/p')
    [ -n "$n" ] && [ "$n" -gt 0 ] || die "degenerate bipartition ($side=$n): $resp"
done
warm_ns=$(stage_ns)
[ -n "$warm_ns" ] || die "delta result carries no stage timing: $resp"
say "warm re-partition in ${warm_ns}ns"
[ "$warm_ns" -lt "$cold_ns" ] || \
    die "warm re-partition (${warm_ns}ns) not faster than cold solve (${cold_ns}ns)"

say "re-patching the identical delta (cache hit expected)"
fetch PATCH "/v1/jobs/$base_id" "$delta"
[ "$status" = 202 ] || die "re-patch -> $status ($resp)"
cached_id=$(job_field id)
poll_job "$cached_id"
[ "$state" = done ] || die "cached delta job ended '$state': $resp"
printf '%s' "$resp" | grep -q '"cached":true' || die "identical re-patch missed the cache: $resp"

say "checking rejections"
fetch PATCH "/v1/jobs/$base_id" '{"delta": {"remove_nets": [999999]}}'
[ "$status" = 400 ] || die "out-of-range delta -> $status, want 400 ($resp)"
fetch PATCH "/v1/jobs/$base_id" '{not json'
[ "$status" = 400 ] || die "malformed body -> $status, want 400 ($resp)"
fetch PATCH /v1/jobs/job-nope "$delta"
[ "$status" = 404 ] || die "unknown base -> $status, want 404 ($resp)"

fetch GET /metrics
printf '%s' "$resp" | grep -q '"portfolio.warm_start":' || \
    die "metrics missing warm-start counter: $resp"

say "sending SIGTERM"
stop_daemon "$daemon_pid" "$workdir/igpartd.log"
say "PASS"
