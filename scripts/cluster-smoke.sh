#!/bin/sh
# End-to-end smoke test of igpartd cluster mode, suitable for CI:
#
#   1. build igpartd and netgen; generate a benchmark netlist;
#   2. boot two single-worker backends and a coordinator over them
#      (consistent-hash routing, fsync'd job journal);
#   3. submit a probe job to learn which backend owns the netlist's
#      routing key (all jobs on one netlist route to its ring owner);
#   4. stream a POST /v1/batches of 8 jobs (same netlist, distinct
#      seeds) and SIGKILL the owner backend as soon as the batch is
#      accepted — mid-batch, before the serialized solves can finish;
#   5. assert every job in the stream completes "done" on the survivor,
#      the batch summary counts 8 done / 0 failed, and the aggregated
#      /metrics shows cluster.failover.resubmits > 0;
#   6. SIGTERM the coordinator and the survivor and require clean,
#      prompt exits.
#
# Requires only the Go toolchain and POSIX sh + curl + grep + sed.
set -eu

TAG=cluster-smoke
workdir=$(mktemp -d)
. "$(dirname "$0")/lib.sh"
curl_pid=""
cleanup() {
    [ -n "$curl_pid" ] && kill "$curl_pid" 2>/dev/null || true
    cleanup_daemons
    rm -rf "$workdir"
}
trap cleanup EXIT

say "building binaries"
go build -o "$workdir/igpartd" igpart/cmd/igpartd
go build -o "$workdir/netgen" igpart/cmd/netgen
IGPARTD=$workdir/igpartd

mkdir "$workdir/data"
"$workdir/netgen" -bench bm1 -out "$workdir/data/bm1.hgr"

say "starting backends"
boot_daemon "$workdir/n1.log" -workers 1
n1_pid=$daemon_pid n1_addr=$addr
boot_daemon "$workdir/n2.log" -workers 1
n2_pid=$daemon_pid n2_addr=$addr
say "backends up at n1=$n1_addr n2=$n2_addr"

say "starting coordinator"
boot_daemon "$workdir/coord.log" -coordinator \
    -backends "n1=http://$n1_addr,n2=http://$n2_addr" \
    -journal "$workdir/journal.jsonl" \
    -data "$workdir/data" \
    -write-timeout 0 -poll-interval 20ms -probe-interval 100ms
coord_pid=$daemon_pid coord_addr=$addr
say "coordinator up at $coord_addr"
wait_ready

# Learn the ring owner of the netlist: routing hashes the netlist's
# content address, so the probe job and the whole batch land on the
# same backend.
say "probing for the netlist's ring owner"
fetch POST /v1/jobs '{"path": "bm1.hgr"}'
[ "$status" = 202 ] || die "probe submit -> $status ($resp)"
probe_id=$(job_field id)
poll_job "$probe_id"
[ "$state" = done ] || die "probe job ended '$state': $resp"
owner=$(job_field backend)
case "$owner" in
    n1) owner_pid=$n1_pid; survivor=n2; survivor_pid=$n2_pid; survivor_log=$workdir/n2.log ;;
    n2) owner_pid=$n2_pid; survivor=n1; survivor_pid=$n1_pid; survivor_log=$workdir/n1.log ;;
    *) die "probe job reports no backend: $resp" ;;
esac
say "owner is $owner, survivor is $survivor"

# Batch of 8 jobs on the owner's netlist, distinct seeds so each is a
# distinct solve (and a distinct backend cache entry).
jobs=""
for seed in 1 2 3 4 5 6 7 8; do
    jobs="$jobs{\"path\": \"bm1.hgr\", \"seed\": $seed},"
done
printf '{"jobs": [%s]}' "${jobs%,}" >"$workdir/batch.json"

say "streaming the batch"
curl -sS -N -X POST -H 'Content-Type: application/json' \
    -d @"$workdir/batch.json" -o "$workdir/stream.ndjson" \
    "http://$coord_addr/v1/batches" &
curl_pid=$!

# SIGKILL the owner the moment the batch is accepted: with one worker
# the 8 solves serialize, so the kill necessarily lands mid-batch.
i=0
while ! grep -q '"event":"accepted"' "$workdir/stream.ndjson" 2>/dev/null; do
    if [ $i -ge 100 ]; then
        kill "$curl_pid" 2>/dev/null || true
        die "batch never accepted: $(cat "$workdir/stream.ndjson" 2>/dev/null)"
    fi
    if ! kill -0 "$curl_pid" 2>/dev/null; then
        die "batch stream ended prematurely: $(cat "$workdir/stream.ndjson" 2>/dev/null)"
    fi
    sleep 0.05
    i=$((i + 1))
done
say "batch accepted; SIGKILLing owner $owner (pid $owner_pid)"
kill -9 "$owner_pid"

say "waiting for the batch stream to finish"
i=0
while ! grep -q '"event":"batch"' "$workdir/stream.ndjson" 2>/dev/null; do
    if [ $i -ge 1200 ]; then
        kill "$curl_pid" 2>/dev/null || true
        die "batch never finished: $(cat "$workdir/stream.ndjson")"
    fi
    sleep 0.1
    i=$((i + 1))
done
wait "$curl_pid" || die "batch stream curl failed"
curl_pid=""

# Every accepted job completed despite the node death.
n_jobs=$(grep -c '"event":"job"' "$workdir/stream.ndjson")
[ "$n_jobs" = 8 ] || die "stream carries $n_jobs job events, want 8: $(cat "$workdir/stream.ndjson")"
if grep '"event":"job"' "$workdir/stream.ndjson" | grep -qv '"state":"done"'; then
    die "a batch job did not complete: $(cat "$workdir/stream.ndjson")"
fi
summary=$(grep '"event":"batch"' "$workdir/stream.ndjson")
printf '%s' "$summary" | grep -q '"done":8' || die "summary not 8 done: $summary"
printf '%s' "$summary" | grep -q '"failed"' && die "summary reports failures: $summary"
say "all 8 jobs completed after the owner died"

# The failover is visible in the aggregated metrics, and the fleet
# reports itself degraded but serving.
addr=$coord_addr
fetch GET /metrics
printf '%s' "$resp" | grep -q '"cluster.failover.resubmits":[1-9]' || \
    die "metrics show no failover resubmits: $resp"
fetch GET /readyz
[ "$status" = 200 ] || die "degraded fleet /readyz -> $status ($resp)"
printf '%s' "$resp" | grep -q '"status":"degraded"' || \
    die "readyz not degraded with one backend dead: $resp"
say "failover visible in metrics; fleet degraded but ready"

say "draining coordinator and survivor"
stop_daemon "$coord_pid" "$workdir/coord.log"
stop_daemon "$survivor_pid" "$survivor_log"
say "PASS"
