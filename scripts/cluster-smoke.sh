#!/bin/sh
# End-to-end smoke test of igpartd cluster mode, suitable for CI:
#
#   1. build igpartd and netgen; generate a benchmark netlist;
#   2. boot two single-worker backends and a coordinator over them
#      (consistent-hash routing, fsync'd job journal);
#   3. submit a probe job to learn which backend owns the netlist's
#      routing key (all jobs on one netlist route to its ring owner);
#   4. stream a POST /v1/batches of 8 jobs (same netlist, distinct
#      seeds) and SIGKILL the owner backend as soon as the batch is
#      accepted — mid-batch, before the serialized solves can finish;
#   5. assert every job in the stream completes "done" on the survivor,
#      the batch summary counts 8 done / 0 failed, and the aggregated
#      /metrics shows cluster.failover.resubmits > 0;
#   6. SIGTERM the coordinator and the survivor and require clean,
#      prompt exits.
#
# With the `ha` argument two control-plane chaos phases run after the
# data-plane one above:
#
#   HA 1 (coordinator kill): a leader and a warm standby share a journal
#     (-standby, -lease-ttl 1s). A streamed batch is accepted, the
#     leader is SIGKILLed mid-batch, and the standby must take over
#     within the lease window, resubmit the journaled unfinished jobs
#     under their original cjob IDs, and finish them all — with
#     ratio-cut parity against direct backend solves and zero duplicate
#     completion records in the journal.
#
#   HA 2 (live membership): a coordinator running from -backends-file
#     gets a backend added and the batch owner removed mid-batch (file
#     edit + SIGHUP). All jobs must still complete, and
#     cluster.ring.moved_keys must show consistent-hash-sized churn —
#     a third-ish of the sampled keys, never a full rehash.
#
# Requires only the Go toolchain and POSIX sh + curl + grep + sed.
set -eu
phase=${1:-}

TAG=cluster-smoke
workdir=$(mktemp -d)
. "$(dirname "$0")/lib.sh"
curl_pid=""
cleanup() {
    [ -n "$curl_pid" ] && kill "$curl_pid" 2>/dev/null || true
    cleanup_daemons
    rm -rf "$workdir"
}
trap cleanup EXIT

say "building binaries"
go build -o "$workdir/igpartd" igpart/cmd/igpartd
go build -o "$workdir/netgen" igpart/cmd/netgen
IGPARTD=$workdir/igpartd

mkdir "$workdir/data"
"$workdir/netgen" -bench bm1 -out "$workdir/data/bm1.hgr"

say "starting backends"
boot_daemon "$workdir/n1.log" -workers 1
n1_pid=$daemon_pid n1_addr=$addr
boot_daemon "$workdir/n2.log" -workers 1
n2_pid=$daemon_pid n2_addr=$addr
say "backends up at n1=$n1_addr n2=$n2_addr"

say "starting coordinator"
boot_daemon "$workdir/coord.log" -coordinator \
    -backends "n1=http://$n1_addr,n2=http://$n2_addr" \
    -journal "$workdir/journal.jsonl" \
    -data "$workdir/data" \
    -write-timeout 0 -poll-interval 20ms -probe-interval 100ms
coord_pid=$daemon_pid coord_addr=$addr
say "coordinator up at $coord_addr"
wait_ready

# Learn the ring owner of the netlist: routing hashes the netlist's
# content address, so the probe job and the whole batch land on the
# same backend.
say "probing for the netlist's ring owner"
fetch POST /v1/jobs '{"path": "bm1.hgr"}'
[ "$status" = 202 ] || die "probe submit -> $status ($resp)"
probe_id=$(job_field id)
poll_job "$probe_id"
[ "$state" = done ] || die "probe job ended '$state': $resp"
owner=$(job_field backend)
case "$owner" in
    n1) owner_pid=$n1_pid; survivor=n2; survivor_pid=$n2_pid; survivor_log=$workdir/n2.log ;;
    n2) owner_pid=$n2_pid; survivor=n1; survivor_pid=$n1_pid; survivor_log=$workdir/n1.log ;;
    *) die "probe job reports no backend: $resp" ;;
esac
say "owner is $owner, survivor is $survivor"

# Batch of 8 jobs on the owner's netlist, distinct seeds so each is a
# distinct solve (and a distinct backend cache entry).
jobs=""
for seed in 1 2 3 4 5 6 7 8; do
    jobs="$jobs{\"path\": \"bm1.hgr\", \"seed\": $seed},"
done
printf '{"jobs": [%s]}' "${jobs%,}" >"$workdir/batch.json"

say "streaming the batch"
curl -sS -N -X POST -H 'Content-Type: application/json' \
    -d @"$workdir/batch.json" -o "$workdir/stream.ndjson" \
    "http://$coord_addr/v1/batches" &
curl_pid=$!

# SIGKILL the owner the moment the batch is accepted: with one worker
# the 8 solves serialize, so the kill necessarily lands mid-batch.
i=0
while ! grep -q '"event":"accepted"' "$workdir/stream.ndjson" 2>/dev/null; do
    if [ $i -ge 100 ]; then
        kill "$curl_pid" 2>/dev/null || true
        die "batch never accepted: $(cat "$workdir/stream.ndjson" 2>/dev/null)"
    fi
    if ! kill -0 "$curl_pid" 2>/dev/null; then
        die "batch stream ended prematurely: $(cat "$workdir/stream.ndjson" 2>/dev/null)"
    fi
    sleep 0.05
    i=$((i + 1))
done
say "batch accepted; SIGKILLing owner $owner (pid $owner_pid)"
kill -9 "$owner_pid"

say "waiting for the batch stream to finish"
i=0
while ! grep -q '"event":"batch"' "$workdir/stream.ndjson" 2>/dev/null; do
    if [ $i -ge 1200 ]; then
        kill "$curl_pid" 2>/dev/null || true
        die "batch never finished: $(cat "$workdir/stream.ndjson")"
    fi
    sleep 0.1
    i=$((i + 1))
done
wait "$curl_pid" || die "batch stream curl failed"
curl_pid=""

# Every accepted job completed despite the node death.
n_jobs=$(grep -c '"event":"job"' "$workdir/stream.ndjson")
[ "$n_jobs" = 8 ] || die "stream carries $n_jobs job events, want 8: $(cat "$workdir/stream.ndjson")"
if grep '"event":"job"' "$workdir/stream.ndjson" | grep -qv '"state":"done"'; then
    die "a batch job did not complete: $(cat "$workdir/stream.ndjson")"
fi
summary=$(grep '"event":"batch"' "$workdir/stream.ndjson")
printf '%s' "$summary" | grep -q '"done":8' || die "summary not 8 done: $summary"
printf '%s' "$summary" | grep -q '"failed"' && die "summary reports failures: $summary"
say "all 8 jobs completed after the owner died"

# The failover is visible in the aggregated metrics, and the fleet
# reports itself degraded but serving.
addr=$coord_addr
fetch GET /metrics
printf '%s' "$resp" | grep -q '"cluster.failover.resubmits":[1-9]' || \
    die "metrics show no failover resubmits: $resp"
fetch GET /readyz
[ "$status" = 200 ] || die "degraded fleet /readyz -> $status ($resp)"
printf '%s' "$resp" | grep -q '"status":"degraded"' || \
    die "readyz not degraded with one backend dead: $resp"
say "failover visible in metrics; fleet degraded but ready"

say "draining coordinator and survivor"
stop_daemon "$coord_pid" "$workdir/coord.log"
stop_daemon "$survivor_pid" "$survivor_log"

if [ "$phase" != ha ]; then
    say "PASS"
    exit 0
fi

# ---------------------------------------------------------------------
# HA phase 1: kill the coordinator, the standby takes over.
# ---------------------------------------------------------------------
say "=== HA phase 1: coordinator kill + standby takeover ==="

say "starting fresh backends"
boot_daemon "$workdir/m1.log" -workers 1 -data "$workdir/data"
m1_pid=$daemon_pid m1_addr=$addr
boot_daemon "$workdir/m2.log" -workers 1 -data "$workdir/data"
m2_pid=$daemon_pid m2_addr=$addr

ha_journal=$workdir/ha-journal.jsonl
say "starting leader and warm standby on a shared journal"
boot_daemon "$workdir/leader.log" -coordinator \
    -backends "m1=http://$m1_addr,m2=http://$m2_addr" \
    -journal "$ha_journal" -lease-ttl 1s \
    -data "$workdir/data" \
    -write-timeout 0 -poll-interval 20ms -probe-interval 100ms
leader_pid=$daemon_pid leader_addr=$addr
boot_daemon "$workdir/standby.log" -coordinator -standby \
    -backends "m1=http://$m1_addr,m2=http://$m2_addr" \
    -journal "$ha_journal" -lease-ttl 1s \
    -data "$workdir/data" \
    -write-timeout 0 -poll-interval 20ms -probe-interval 100ms
standby_pid=$daemon_pid standby_addr=$addr
addr=$leader_addr
wait_ready
say "leader at $leader_addr, standby at $standby_addr"

# The standby is honest about its role: alive, not ready, role standby.
addr=$standby_addr
fetch GET /readyz
[ "$status" = 503 ] || die "standby /readyz -> $status, want 503 ($resp)"
printf '%s' "$resp" | grep -q '"role":"standby"' || die "standby readyz hides its role: $resp"
fetch GET /healthz
[ "$status" = 200 ] || die "standby /healthz -> $status ($resp)"

jobs=""
for seed in 1 2 3 4 5 6 7 8; do
    jobs="$jobs{\"path\": \"bm1.hgr\", \"seed\": $seed},"
done
printf '{"jobs": [%s]}' "${jobs%,}" >"$workdir/ha-batch.json"

say "streaming the batch to the leader"
curl -sS -N -X POST -H 'Content-Type: application/json' \
    -d @"$workdir/ha-batch.json" -o "$workdir/ha-stream.ndjson" \
    "http://$leader_addr/v1/batches" &
curl_pid=$!

i=0
while ! grep -q '"event":"accepted"' "$workdir/ha-stream.ndjson" 2>/dev/null; do
    if [ $i -ge 100 ]; then
        kill "$curl_pid" 2>/dev/null || true
        die "HA batch never accepted: $(cat "$workdir/ha-stream.ndjson" 2>/dev/null)"
    fi
    if ! kill -0 "$curl_pid" 2>/dev/null; then
        die "HA batch stream ended prematurely: $(cat "$workdir/ha-stream.ndjson" 2>/dev/null)"
    fi
    sleep 0.05
    i=$((i + 1))
done
say "batch accepted and journaled; SIGKILLing the leader (pid $leader_pid)"
kill -9 "$leader_pid"
wait "$curl_pid" 2>/dev/null || true # the stream died with the leader
curl_pid=""

say "waiting for the standby to take over"
addr=$standby_addr
i=0
while :; do
    status=$(curl -sS -o /dev/null -w '%{http_code}' "http://$standby_addr/readyz" 2>/dev/null) || status=000
    [ "$status" = 200 ] && break
    if [ $i -ge 150 ]; then
        die "standby never became leader: $(cat "$workdir/standby.log")"
    fi
    sleep 0.1
    i=$((i + 1))
done
grep -q 'standby takeover: lease term 2' "$workdir/standby.log" || \
    die "no fenced takeover (term 2) in standby log: $(cat "$workdir/standby.log")"
grep -q 'journal replay resubmitted' "$workdir/standby.log" || \
    die "takeover replayed nothing; the kill missed the mid-batch window: $(cat "$workdir/standby.log")"
say "standby leads at term 2 and replayed the unfinished jobs"

# Every batch job finishes under its original ID. A job the leader
# completed before dying is compacted out of the takeover journal (its
# accept/done pair is dropped), so a 404 here means completed-pre-kill,
# not lost: a lost job would be an accept without a done, which is
# exactly what the replay set resurfaces.
say "polling the original cjob IDs on the new leader"
replayed=0
for n in 1 2 3 4 5 6 7 8; do
    fetch GET "/v1/jobs/cjob-$n"
    if [ "$status" = 404 ]; then
        eval "rc_$n="
        continue
    fi
    [ "$status" = 200 ] || die "GET cjob-$n -> $status ($resp)"
    poll_job "cjob-$n"
    [ "$state" = done ] || die "replayed cjob-$n ended '$state': $resp"
    eval "rc_$n=\$(printf '%s' \"\$resp\" | sed -n 's/.*\"ratio_cut\":\\([0-9.eE+-]*\\).*/\\1/p')"
    replayed=$((replayed + 1))
done
[ "$replayed" -ge 1 ] || die "no job was replayed; nothing was tested"
say "$replayed/8 jobs completed on the new leader (the rest pre-kill)"

# Ratio-cut parity: the same netlist+seed solved directly on a backend
# must give the identical ratio cut — takeover must not change results.
say "checking ratio-cut parity against direct backend solves"
for n in 1 2 3 4 5 6 7 8; do
    eval "rc=\$rc_$n"
    [ -n "$rc" ] || continue
    addr=$m1_addr
    fetch POST /v1/jobs "{\"path\": \"bm1.hgr\", \"seed\": $n}"
    [ "$status" = 202 ] || die "direct solve submit -> $status ($resp)"
    direct_id=$(job_field id)
    poll_job "$direct_id"
    [ "$state" = done ] || die "direct solve ended '$state': $resp"
    direct_rc=$(printf '%s' "$resp" | sed -n 's/.*"ratio_cut":\([0-9.eE+-]*\).*/\1/p')
    [ "$rc" = "$direct_rc" ] || die "seed $n ratio-cut mismatch: takeover $rc vs direct $direct_rc"
done
say "ratio cuts identical across the takeover"

# Zero duplicate completions: at most one done record per job may ever
# be journaled, or the job ran under two identities across the crash.
for n in 1 2 3 4 5 6 7 8; do
    dups=$(grep -c "\"t\":\"done\",\"job\":\"cjob-$n\"" "$ha_journal" || true)
    [ "$dups" -le 1 ] || die "cjob-$n has $dups completion records in the journal"
done
say "no duplicate completion records"

say "draining the new leader"
stop_daemon "$standby_pid" "$workdir/standby.log"

# ---------------------------------------------------------------------
# HA phase 2: live membership — add and remove backends mid-batch.
# ---------------------------------------------------------------------
say "=== HA phase 2: backends-file hot swap mid-batch ==="

boot_daemon "$workdir/m3.log" -workers 1
m3_pid=$daemon_pid m3_addr=$addr

backends_file=$workdir/backends.txt
printf 'm1=http://%s\nm2=http://%s\n' "$m1_addr" "$m2_addr" >"$backends_file"
boot_daemon "$workdir/coord2.log" -coordinator \
    -backends-file "$backends_file" \
    -membership-poll 100ms -min-dwell=-1s \
    -data "$workdir/data" \
    -write-timeout 0 -poll-interval 20ms -probe-interval 100ms
coord2_pid=$daemon_pid coord2_addr=$addr
addr=$coord2_addr
wait_ready

# Learn which backend owns the netlist so the removal below is the
# interesting one: the node whose in-flight jobs must drain.
fetch POST /v1/jobs '{"path": "bm1.hgr", "seed": 99}'
[ "$status" = 202 ] || die "owner probe submit -> $status ($resp)"
poll_job "$(job_field id)"
[ "$state" = done ] || die "owner probe ended '$state': $resp"
ha_owner=$(job_field backend)
case "$ha_owner" in
    m1) keep="m2=http://$m2_addr" ;;
    m2) keep="m1=http://$m1_addr" ;;
    *) die "owner probe reports no backend: $resp" ;;
esac
say "batch owner will be $ha_owner"

# Fresh seeds (11..18): phase 1 warmed backend caches for 1..8, and a
# cache-hit batch would finish before the membership swap lands.
jobs=""
for seed in 11 12 13 14 15 16 17 18; do
    jobs="$jobs{\"path\": \"bm1.hgr\", \"seed\": $seed},"
done
printf '{"jobs": [%s]}' "${jobs%,}" >"$workdir/memb-batch.json"

say "streaming the batch"
curl -sS -N -X POST -H 'Content-Type: application/json' \
    -d @"$workdir/memb-batch.json" -o "$workdir/memb-stream.ndjson" \
    "http://$coord2_addr/v1/batches" &
curl_pid=$!
i=0
while ! grep -q '"event":"accepted"' "$workdir/memb-stream.ndjson" 2>/dev/null; do
    if [ $i -ge 100 ]; then
        kill "$curl_pid" 2>/dev/null || true
        die "membership batch never accepted"
    fi
    sleep 0.05
    i=$((i + 1))
done

say "adding m3 to the fleet mid-batch (file edit + SIGHUP)"
printf 'm1=http://%s\nm2=http://%s\nm3=http://%s\n' "$m1_addr" "$m2_addr" "$m3_addr" >"$backends_file"
kill -HUP "$coord2_pid"
i=0
while ! grep -q 'membership reload: added \[m3\]' "$workdir/coord2.log"; do
    if [ $i -ge 100 ]; then
        die "m3 never joined: $(cat "$workdir/coord2.log")"
    fi
    sleep 0.1
    i=$((i + 1))
done

# Minimal ring churn: one joiner in a fleet of three owns about a third
# of the key space. More than half the sampled keys moving means the
# ring rehashed wholesale.
fetch GET /metrics
moved=$(printf '%s' "$resp" | sed -n 's/.*"cluster.ring.moved_keys":\([0-9]*\).*/\1/p')
[ -n "$moved" ] || die "cluster.ring.moved_keys missing from /metrics: $resp"
[ "$moved" -gt 0 ] || die "adding m3 moved no keys"
[ "$moved" -le 2048 ] || die "adding m3 moved $moved/4096 sampled keys — not consistent hashing"
say "m3 joined moving $moved/4096 sampled keys"

say "removing the batch owner $ha_owner mid-batch"
printf '%s\nm3=http://%s\n' "$keep" "$m3_addr" >"$backends_file"
kill -HUP "$coord2_pid"
i=0
while ! grep -q "membership reload:.*removed \[$ha_owner\]" "$workdir/coord2.log"; do
    if [ $i -ge 100 ]; then
        die "$ha_owner never left: $(cat "$workdir/coord2.log")"
    fi
    sleep 0.1
    i=$((i + 1))
done

say "waiting for the batch to finish across the membership churn"
i=0
while ! grep -q '"event":"batch"' "$workdir/memb-stream.ndjson" 2>/dev/null; do
    if [ $i -ge 1200 ]; then
        kill "$curl_pid" 2>/dev/null || true
        die "membership batch never finished: $(cat "$workdir/memb-stream.ndjson")"
    fi
    sleep 0.1
    i=$((i + 1))
done
wait "$curl_pid" || die "membership batch curl failed"
curl_pid=""

n_jobs=$(grep -c '"event":"job"' "$workdir/memb-stream.ndjson")
[ "$n_jobs" = 8 ] || die "stream carries $n_jobs job events, want 8: $(cat "$workdir/memb-stream.ndjson")"
if grep '"event":"job"' "$workdir/memb-stream.ndjson" | grep -qv '"state":"done"'; then
    die "a job was lost to the membership swap: $(cat "$workdir/memb-stream.ndjson")"
fi
summary=$(grep '"event":"batch"' "$workdir/memb-stream.ndjson")
printf '%s' "$summary" | grep -q '"done":8' || die "summary not 8 done: $summary"
say "all 8 jobs survived the add and the owner's removal"

say "draining everything"
stop_daemon "$coord2_pid" "$workdir/coord2.log"
stop_daemon "$m1_pid" "$workdir/m1.log"
stop_daemon "$m2_pid" "$workdir/m2.log"
stop_daemon "$m3_pid" "$workdir/m3.log"
say "PASS"
