#!/bin/sh
# End-to-end smoke test of the igpartd daemon, suitable for CI:
#
#   1. build igpartd and netgen;
#   2. generate a benchmark netlist into a scratch data directory;
#   3. boot the daemon on a random port and parse the address it logs;
#   4. submit the netlist by server-side path, poll until terminal;
#   5. assert the job finished "done" with a positive ratio cut;
#   6. SIGTERM the daemon and require a clean, prompt exit;
#   7. reboot with -inject 'worker.panic:limit=1': the first job fails
#      with a recovered panic, the daemon stays live on /healthz, the
#      next job completes clean, and the panic shows in /metrics.
#
# Requires only the Go toolchain and POSIX sh + curl + grep + sed.
set -eu

TAG=smoke
workdir=$(mktemp -d)
. "$(dirname "$0")/lib.sh"
cleanup() {
    cleanup_daemons
    rm -rf "$workdir"
}
trap cleanup EXIT

say "building binaries"
go build -o "$workdir/igpartd" igpart/cmd/igpartd
go build -o "$workdir/netgen" igpart/cmd/netgen
IGPARTD=$workdir/igpartd

mkdir "$workdir/data"
"$workdir/netgen" -bench bm1 -out "$workdir/data/bm1.hgr"

say "starting igpartd"
boot_daemon "$workdir/igpartd.log" -data "$workdir/data"
say "daemon up at $addr"

fetch GET /healthz
[ "$status" = 200 ] || die "/healthz -> $status ($resp)"

say "submitting job"
fetch POST /v1/jobs '{"path": "bm1.hgr"}'
[ "$status" = 202 ] || die "submit -> $status ($resp)"
job_id=$(job_field id)
[ -n "$job_id" ] || die "no job id in $resp"

say "polling $job_id"
poll_job "$job_id"
[ "$state" = done ] || die "job ended '$state': $resp"

ratio=$(printf '%s' "$resp" | sed -n 's/.*"ratio_cut":\([0-9.e+-]*\).*/\1/p')
[ -n "$ratio" ] || die "no ratio_cut in result: $resp"
case "$ratio" in
    0|0.0|-*) die "implausible ratio cut $ratio" ;;
esac
say "job done, ratio cut $ratio"

fetch GET /metrics
printf '%s' "$resp" | grep -q '"service.jobs_completed":1' || \
    die "metrics missing completed job: $resp"

say "sending SIGTERM"
stop_daemon "$daemon_pid" "$workdir/igpartd.log"

# Phase 2: chaos. Reboot with one worker panic armed and retries off;
# the first job must fail with a recovered panic while the daemon stays
# up and completes the next, clean job.
say "restarting igpartd with worker.panic injection"
boot_daemon "$workdir/igpartd-chaos.log" -data "$workdir/data" \
    -inject 'worker.panic:limit=1' -retry=-1
say "chaos daemon up at $addr"

fetch POST /v1/jobs '{"path": "bm1.hgr"}'
[ "$status" = 202 ] || die "chaos submit -> $status ($resp)"
job_id=$(job_field id)
poll_job "$job_id"
[ "$state" = failed ] || die "injected-panic job ended '$state', want failed: $resp"
printf '%s' "$resp" | grep -q 'panic' || \
    die "failed job carries no panic error: $resp"
say "injected panic recovered as a failed job"

# The daemon survived the panic: liveness still answers and a clean job
# (injection budget spent) completes.
fetch GET /healthz
[ "$status" = 200 ] || die "/healthz after panic -> $status"

fetch POST /v1/jobs '{"path": "bm1.hgr", "seed": 7}'
[ "$status" = 202 ] || die "post-panic submit -> $status ($resp)"
job_id=$(job_field id)
poll_job "$job_id"
[ "$state" = done ] || die "post-panic job ended '$state': $resp"

fetch GET /metrics
printf '%s' "$resp" | grep -q '"service.panics_recovered":1' || \
    die "metrics missing recovered panic: $resp"
printf '%s' "$resp" | grep -q '"fault.fired.worker.panic":1' || \
    die "metrics missing fault fire count: $resp"

say "draining chaos daemon"
stop_daemon "$daemon_pid" "$workdir/igpartd-chaos.log"
say "PASS"
