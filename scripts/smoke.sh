#!/bin/sh
# End-to-end smoke test of the igpartd daemon, suitable for CI:
#
#   1. build igpartd and netgen;
#   2. generate a benchmark netlist into a scratch data directory;
#   3. boot the daemon on a random port and parse the address it logs;
#   4. submit the netlist by server-side path, poll until terminal;
#   5. assert the job finished "done" with a positive ratio cut;
#   6. SIGTERM the daemon and require a clean, prompt exit;
#   7. reboot with -inject 'worker.panic:limit=1': the first job fails
#      with a recovered panic, the daemon stays live on /healthz, the
#      next job completes clean, and the panic shows in /metrics.
#
# Requires only the Go toolchain and POSIX sh + grep + sed.
set -eu

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
    if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -9 "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "smoke: building binaries"
go build -o "$workdir/igpartd" igpart/cmd/igpartd
go build -o "$workdir/netgen" igpart/cmd/netgen

mkdir "$workdir/data"
"$workdir/netgen" -bench bm1 -out "$workdir/data/bm1.hgr"

# boot_daemon LOGFILE [EXTRA_FLAGS...]: start igpartd, wait for the
# "listening on HOST:PORT" line, and set $daemon_pid and $addr.
boot_daemon() {
    logfile=$1
    shift
    "$workdir/igpartd" -addr 127.0.0.1:0 -data "$workdir/data" "$@" >"$logfile" 2>&1 &
    daemon_pid=$!
    addr=""
    i=0
    while [ $i -lt 100 ]; do
        addr=$(sed -n 's/.*igpartd: listening on \([0-9.:]*\)$/\1/p' "$logfile" | head -1)
        [ -n "$addr" ] && break
        if ! kill -0 "$daemon_pid" 2>/dev/null; then
            echo "smoke: daemon died during startup" >&2
            cat "$logfile" >&2
            exit 1
        fi
        sleep 0.1
        i=$((i + 1))
    done
    if [ -z "$addr" ]; then
        echo "smoke: daemon never logged its address" >&2
        cat "$logfile" >&2
        exit 1
    fi
}

echo "smoke: starting igpartd"
boot_daemon "$workdir/igpartd.log"
echo "smoke: daemon up at $addr"

# fetch METHOD PATH [BODY]: response body lands in $resp, HTTP status
# in $status. Runs in the current shell (no command substitution) so
# both variables survive the call.
fetch() {
    method=$1 path=$2 body=${3:-}
    if [ -n "$body" ]; then
        status=$(curl -sS -o "$workdir/resp" -w '%{http_code}' -X "$method" \
            -H 'Content-Type: application/json' -d "$body" "http://$addr$path")
    else
        status=$(curl -sS -o "$workdir/resp" -w '%{http_code}' -X "$method" "http://$addr$path")
    fi
    resp=$(cat "$workdir/resp")
}

fetch GET /healthz
[ "$status" = 200 ] || { echo "smoke: /healthz -> $status ($resp)" >&2; exit 1; }

echo "smoke: submitting job"
fetch POST /v1/jobs '{"path": "bm1.hgr"}'
[ "$status" = 202 ] || { echo "smoke: submit -> $status ($resp)" >&2; exit 1; }
job_id=$(printf '%s' "$resp" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
[ -n "$job_id" ] || { echo "smoke: no job id in $resp" >&2; exit 1; }

echo "smoke: polling $job_id"
state=""
i=0
while [ $i -lt 300 ]; do
    fetch GET "/v1/jobs/$job_id"
    [ "$status" = 200 ] || { echo "smoke: poll -> $status ($resp)" >&2; exit 1; }
    state=$(printf '%s' "$resp" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
    case "$state" in
        done) break ;;
        failed|cancelled) echo "smoke: job ended $state: $resp" >&2; exit 1 ;;
    esac
    sleep 0.2
    i=$((i + 1))
done
[ "$state" = done ] || { echo "smoke: job stuck in state '$state'" >&2; exit 1; }

ratio=$(printf '%s' "$resp" | sed -n 's/.*"ratio_cut":\([0-9.e+-]*\).*/\1/p')
[ -n "$ratio" ] || { echo "smoke: no ratio_cut in result: $resp" >&2; exit 1; }
case "$ratio" in
    0|0.0|-*) echo "smoke: implausible ratio cut $ratio" >&2; exit 1 ;;
esac
echo "smoke: job done, ratio cut $ratio"

fetch GET /metrics
printf '%s' "$resp" | grep -q '"service.jobs_completed":1' || {
    echo "smoke: metrics missing completed job: $resp" >&2; exit 1; }

echo "smoke: sending SIGTERM"
kill -TERM "$daemon_pid"
i=0
while kill -0 "$daemon_pid" 2>/dev/null; do
    if [ $i -ge 100 ]; then
        echo "smoke: daemon did not exit within 10s of SIGTERM" >&2
        cat "$workdir/igpartd.log" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
grep -q 'shutdown complete' "$workdir/igpartd.log" || {
    echo "smoke: no clean shutdown in log" >&2
    cat "$workdir/igpartd.log" >&2
    exit 1
}

# Phase 2: chaos. Reboot with one worker panic armed and retries off;
# the first job must fail with a recovered panic while the daemon stays
# up and completes the next, clean job.
echo "smoke: restarting igpartd with worker.panic injection"
boot_daemon "$workdir/igpartd-chaos.log" -inject 'worker.panic:limit=1' -retry=-1
echo "smoke: chaos daemon up at $addr"

# poll_job JOB_ID: poll until terminal; leaves the state in $state and
# the last response in $resp.
poll_job() {
    job=$1
    state=""
    i=0
    while [ $i -lt 300 ]; do
        fetch GET "/v1/jobs/$job"
        [ "$status" = 200 ] || { echo "smoke: poll -> $status ($resp)" >&2; exit 1; }
        state=$(printf '%s' "$resp" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
        case "$state" in
            done|failed|cancelled) return 0 ;;
        esac
        sleep 0.2
        i=$((i + 1))
    done
    echo "smoke: job $job stuck in state '$state'" >&2
    exit 1
}

fetch POST /v1/jobs '{"path": "bm1.hgr"}'
[ "$status" = 202 ] || { echo "smoke: chaos submit -> $status ($resp)" >&2; exit 1; }
job_id=$(printf '%s' "$resp" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
poll_job "$job_id"
[ "$state" = failed ] || { echo "smoke: injected-panic job ended '$state', want failed: $resp" >&2; exit 1; }
printf '%s' "$resp" | grep -q 'panic' || {
    echo "smoke: failed job carries no panic error: $resp" >&2; exit 1; }
echo "smoke: injected panic recovered as a failed job"

# The daemon survived the panic: liveness still answers and a clean job
# (injection budget spent) completes.
fetch GET /healthz
[ "$status" = 200 ] || { echo "smoke: /healthz after panic -> $status" >&2; exit 1; }

fetch POST /v1/jobs '{"path": "bm1.hgr", "seed": 7}'
[ "$status" = 202 ] || { echo "smoke: post-panic submit -> $status ($resp)" >&2; exit 1; }
job_id=$(printf '%s' "$resp" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')
poll_job "$job_id"
[ "$state" = done ] || { echo "smoke: post-panic job ended '$state': $resp" >&2; exit 1; }

fetch GET /metrics
printf '%s' "$resp" | grep -q '"service.panics_recovered":1' || {
    echo "smoke: metrics missing recovered panic: $resp" >&2; exit 1; }
printf '%s' "$resp" | grep -q '"fault.fired.worker.panic":1' || {
    echo "smoke: metrics missing fault fire count: $resp" >&2; exit 1; }

echo "smoke: draining chaos daemon"
kill -TERM "$daemon_pid"
i=0
while kill -0 "$daemon_pid" 2>/dev/null; do
    if [ $i -ge 100 ]; then
        echo "smoke: chaos daemon did not exit within 10s of SIGTERM" >&2
        cat "$workdir/igpartd-chaos.log" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
grep -q 'shutdown complete' "$workdir/igpartd-chaos.log" || {
    echo "smoke: no clean chaos shutdown in log" >&2
    cat "$workdir/igpartd-chaos.log" >&2
    exit 1
}
echo "smoke: PASS"
