# Shared helpers for the igpartd smoke scripts. POSIX sh; requires
# curl, grep, sed. Callers must set:
#
#   $workdir  scratch directory (fetch writes response bodies there)
#   $IGPARTD  path to the built igpartd binary (for boot_daemon)
#   $TAG      log prefix, e.g. "smoke" or "cluster-smoke"
#
# and should `trap cleanup_daemons EXIT` (plus their own scratch
# cleanup). Every boot_daemon appends its PID to $daemon_pids.

TAG=${TAG:-smoke}
daemon_pids=""

say() { echo "$TAG: $*"; }
die() { echo "$TAG: $*" >&2; exit 1; }

# cleanup_daemons: SIGKILL every daemon still running. For EXIT traps —
# the happy path stops daemons with stop_daemon first.
cleanup_daemons() {
    for pid in $daemon_pids; do
        if kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
        fi
    done
}

# boot_daemon LOGFILE [FLAGS...]: start $IGPARTD on a random port, wait
# for the "listening on HOST:PORT" log line, and set $daemon_pid and
# $addr. The PID is also appended to $daemon_pids for cleanup.
boot_daemon() {
    logfile=$1
    shift
    "$IGPARTD" -addr 127.0.0.1:0 "$@" >"$logfile" 2>&1 &
    daemon_pid=$!
    daemon_pids="$daemon_pids $daemon_pid"
    addr=""
    i=0
    while [ $i -lt 100 ]; do
        addr=$(sed -n 's/.*igpartd: listening on \([0-9.:]*\)$/\1/p' "$logfile" | head -1)
        [ -n "$addr" ] && break
        if ! kill -0 "$daemon_pid" 2>/dev/null; then
            echo "$TAG: daemon died during startup" >&2
            cat "$logfile" >&2
            exit 1
        fi
        sleep 0.1
        i=$((i + 1))
    done
    if [ -z "$addr" ]; then
        echo "$TAG: daemon never logged its address" >&2
        cat "$logfile" >&2
        exit 1
    fi
}

# fetch METHOD PATH [BODY]: request against the daemon at $addr;
# response body lands in $resp, HTTP status in $status. Runs in the
# current shell (no command substitution) so both variables survive
# the call.
fetch() {
    method=$1 path=$2 body=${3:-}
    if [ -n "$body" ]; then
        status=$(curl -sS -o "$workdir/resp" -w '%{http_code}' -X "$method" \
            -H 'Content-Type: application/json' -d "$body" "http://$addr$path")
    else
        status=$(curl -sS -o "$workdir/resp" -w '%{http_code}' -X "$method" "http://$addr$path")
    fi
    resp=$(cat "$workdir/resp")
}

# wait_ready: poll /readyz at $addr until it answers 200 (10s budget).
wait_ready() {
    i=0
    while [ $i -lt 100 ]; do
        status=$(curl -sS -o /dev/null -w '%{http_code}' "http://$addr/readyz" 2>/dev/null) || status=000
        [ "$status" = 200 ] && return 0
        sleep 0.1
        i=$((i + 1))
    done
    die "daemon at $addr never became ready"
}

# poll_job JOB_ID: poll until terminal; leaves the state in $state and
# the last response in $resp.
poll_job() {
    job=$1
    state=""
    i=0
    while [ $i -lt 300 ]; do
        fetch GET "/v1/jobs/$job"
        [ "$status" = 200 ] || die "poll -> $status ($resp)"
        state=$(printf '%s' "$resp" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
        case "$state" in
            done|failed|cancelled) return 0 ;;
        esac
        sleep 0.2
        i=$((i + 1))
    done
    die "job $job stuck in state '$state'"
}

# job_field FIELD: extract a string field from the last $resp.
job_field() {
    printf '%s' "$resp" | sed -n 's/.*"'"$1"'":"\([^"]*\)".*/\1/p'
}

# stop_daemon PID LOGFILE: SIGTERM and require a clean, prompt exit
# with "shutdown complete" in the log.
stop_daemon() {
    pid=$1 logfile=$2
    kill -TERM "$pid"
    i=0
    while kill -0 "$pid" 2>/dev/null; do
        if [ $i -ge 100 ]; then
            echo "$TAG: daemon $pid did not exit within 10s of SIGTERM" >&2
            cat "$logfile" >&2
            exit 1
        fi
        sleep 0.1
        i=$((i + 1))
    done
    wait "$pid" 2>/dev/null || true
    grep -q 'shutdown complete' "$logfile" || {
        echo "$TAG: no clean shutdown in $logfile" >&2
        cat "$logfile" >&2
        exit 1
    }
}
