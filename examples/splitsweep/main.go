// Splitsweep: visualize the IG-Match main loop (Figures 2 and 5–7 of the
// paper). As nets migrate from L to R in eigenvector order, the induced
// bipartite conflict graph's maximum matching bounds the completed cut; the
// sweep's ratio-cut profile shows where the natural partition lives. The
// example prints an ASCII profile of matching size and completed ratio cut
// against the split rank.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"igpart/internal/core"
	"igpart/internal/netgen"
)

func main() {
	cfg, _ := netgen.ByName("Prim1")
	h, err := netgen.Generate(cfg.Scaled(0.5))
	if err != nil {
		log.Fatal(err)
	}

	var trace []core.SplitRecord
	res, err := core.Partition(h, core.Options{Trace: &trace})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit: %d modules, %d nets\n", h.NumModules(), h.NumNets())
	fmt.Printf("best split: rank %d of %d, %v (matching bound %d)\n\n",
		res.BestRank, h.NumNets(), res.Metrics, res.BestMatching)

	// Downsample the sweep into 40 buckets and plot min ratio + matching.
	const buckets = 40
	fmt.Println("rank     matching  best-ratio   profile (log scale, * = best bucket)")
	bestBucket := res.BestRank * buckets / len(trace)
	for bkt := 0; bkt < buckets; bkt++ {
		lo := bkt * len(trace) / buckets
		hi := (bkt + 1) * len(trace) / buckets
		if lo >= hi {
			continue
		}
		minRatio := math.Inf(1)
		maxMatch := 0
		for _, rec := range trace[lo:hi] {
			if rec.RatioCut > 0 && !math.IsInf(rec.RatioCut, 1) && rec.RatioCut < minRatio {
				minRatio = rec.RatioCut
			}
			if rec.MatchingSize > maxMatch {
				maxMatch = rec.MatchingSize
			}
		}
		bar := ""
		if !math.IsInf(minRatio, 1) {
			// Log-scale bar: shorter is better.
			n := int(8 * (math.Log10(minRatio) + 5)) // 1e-5 -> 0, 1e-1 -> 32
			if n < 0 {
				n = 0
			}
			if n > 48 {
				n = 48
			}
			bar = strings.Repeat("#", n)
		}
		marker := " "
		if bkt == bestBucket {
			marker = "*"
		}
		fmt.Printf("%5d %s %8d  %10.3g   %s\n", trace[lo].Rank, marker, maxMatch, minRatio, bar)
	}

	// The Theorem 5 invariant holds at every split.
	for _, rec := range trace {
		if rec.CutNets >= 0 && rec.CutNets > rec.MatchingSize {
			log.Fatalf("rank %d: cut %d exceeds matching %d", rec.Rank, rec.CutNets, rec.MatchingSize)
		}
	}
	fmt.Println("\nTheorem 5 verified at every split: completed cut ≤ |maximum matching|")
}
