// Hwsim: the hardware-simulation scenario from the paper's introduction.
// When a large design is mapped onto a multi-board hardware simulator, the
// signals crossing between boards must be multiplexed — so the mapping
// quality is the number of cut nets, and a good ratio-cut partition
// directly reduces simulator cost (Wei reports 50% savings on a 5M-gate
// Amdahl design). This example partitions a generated circuit and reports
// the multiplexed-signal saving of IG-Match over a naive balanced mapping.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"igpart"
)

func main() {
	cfg, _ := igpart.Benchmark("Test05")
	h, err := igpart.Generate(cfg.Scaled(0.5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design: %d modules, %d nets\n", h.NumModules(), h.NumNets())

	// Naive mapping: a random balanced assignment to the two boards, the
	// kind of split a netlist-order allocator produces.
	rng := rand.New(rand.NewSource(1))
	naive := igpart.NewBipartition(h.NumModules())
	for i, v := range rng.Perm(h.NumModules()) {
		if i%2 == 1 {
			naive.Set(v, igpart.W)
		}
	}
	naiveMet := igpart.Evaluate(h, naive)

	// Ratio-cut driven mapping.
	res, err := igpart.IGMatch(h)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("naive mapping:    %d multiplexed signals (%d:%d modules)\n",
		naiveMet.CutNets, naiveMet.SizeU, naiveMet.SizeW)
	fmt.Printf("IG-Match mapping: %d multiplexed signals (%d:%d modules)\n",
		res.Metrics.CutNets, res.Metrics.SizeU, res.Metrics.SizeW)
	if naiveMet.CutNets > 0 {
		saving := 100 * (1 - float64(res.Metrics.CutNets)/float64(naiveMet.CutNets))
		fmt.Printf("multiplexing saving: %.1f%%\n", saving)
	}

	// Test-vector view: cut nets become extra block inputs that test
	// vectors must drive; count them per block for both mappings.
	nu, nw := blockInputs(h, naive)
	iu, iw := blockInputs(h, res.Partition)
	fmt.Printf("extra block inputs: naive %d+%d, IG-Match %d+%d\n", nu, nw, iu, iw)
}

// blockInputs counts, for each side, the cut nets entering it (each cut net
// is an input signal the other board must drive).
func blockInputs(h *igpart.Netlist, p *igpart.Bipartition) (intoU, intoW int) {
	for e := 0; e < h.NumNets(); e++ {
		if igpart.IsNetCut(h, p, e) {
			intoU++
			intoW++
		}
	}
	return intoU, intoW
}
