// Placement: Hall's quadratic placement (Appendix A of the paper) and the
// nets-as-points embedding (Pillage–Rohrer, cited in Section 2.2), rendered
// as a coarse ASCII floorplan. The same eigenvector machinery that orders
// nets for IG-Match produces 2-D coordinates when two eigenvectors are
// used.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"igpart"
)

func main() {
	// A small circuit with four planted quadrant blocks.
	rng := rand.New(rand.NewSource(5))
	b := igpart.NewBuilder()
	const blockSize = 16
	b.SetNumModules(4 * blockSize)
	for c := 0; c < 4; c++ {
		base := c * blockSize
		for i := 0; i < blockSize-1; i++ {
			b.AddNet(base+i, base+i+1)
		}
		for e := 0; e < 2*blockSize; e++ {
			b.AddNet(base+rng.Intn(blockSize), base+rng.Intn(blockSize))
		}
	}
	// Ring of bridges between blocks.
	for c := 0; c < 4; c++ {
		b.AddNet(c*blockSize, ((c+1)%4)*blockSize)
	}
	h := b.Build()

	p, lams, err := igpart.PlaceHall2D(h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Hall 2-D placement: λ2=%.4f λ3=%.4f, HPWL=%.2f\n", lams[0], lams[1], igpart.HPWL(h, p))
	render(p, h.NumModules(), blockSize)

	_, modules, err := igpart.PlaceNetsAsPoints(h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnets-as-points module placement: HPWL=%.2f\n", igpart.HPWL(h, modules))
	render(modules, h.NumModules(), blockSize)
}

// render draws modules on a 24x12 grid, labeling each by its planted block.
func render(p igpart.Placement, n, blockSize int) {
	const gw, gh = 48, 14
	minX, maxX := p.X[0], p.X[0]
	minY, maxY := p.Y[0], p.Y[0]
	for i := 1; i < n; i++ {
		if p.X[i] < minX {
			minX = p.X[i]
		}
		if p.X[i] > maxX {
			maxX = p.X[i]
		}
		if p.Y[i] < minY {
			minY = p.Y[i]
		}
		if p.Y[i] > maxY {
			maxY = p.Y[i]
		}
	}
	grid := make([][]byte, gh)
	for r := range grid {
		grid[r] = make([]byte, gw)
		for c := range grid[r] {
			grid[r][c] = '.'
		}
	}
	for v := 0; v < n; v++ {
		c := int(float64(gw-1) * (p.X[v] - minX) / (maxX - minX + 1e-12))
		r := int(float64(gh-1) * (p.Y[v] - minY) / (maxY - minY + 1e-12))
		grid[r][c] = byte('A' + v/blockSize)
	}
	for _, row := range grid {
		fmt.Println(string(row))
	}
}
