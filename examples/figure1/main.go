// Figure 1: the paper's worked example of dualizing a netlist hypergraph
// into its intersection graph. We build a six-net ring netlist in the
// figure's style, print the intersection-graph edge weights computed with
// the Section 2.2 formula, and verify one weight by hand.
package main

import (
	"fmt"
	"log"

	"igpart"
	"igpart/internal/netmodel"
)

func main() {
	// Six signal nets over nine modules, alternating 2-pin and 3-pin,
	// arranged in a ring (each consecutive pair of nets shares one module).
	b := igpart.NewBuilder()
	s1 := b.AddNamedNet("s1", 0, 1)
	s2 := b.AddNamedNet("s2", 1, 2, 3)
	b.AddNamedNet("s3", 3, 4)
	b.AddNamedNet("s4", 4, 5, 6)
	b.AddNamedNet("s5", 6, 7)
	b.AddNamedNet("s6", 7, 8, 0)
	h := b.Build()

	fmt.Println("hypergraph:")
	for e := 0; e < h.NumNets(); e++ {
		fmt.Printf("  %s = %v\n", h.NetName(e), h.Pins(e))
	}

	g := netmodel.IntersectionGraph(h, netmodel.IGOptions{})
	fmt.Println("\nintersection graph (A'_ab per the Section 2.2 formula):")
	for a := 0; a < g.N(); a++ {
		cols, vals := g.Row(a)
		for i, c := range cols {
			if c > a {
				fmt.Printf("  A'(%s,%s) = %.4f\n", h.NetName(a), h.NetName(c), vals[i])
			}
		}
	}

	// Hand check of A'(s1,s2): the nets share module 1, which touches
	// d=2 nets, so A' = 1/(d−1) · (1/|s1| + 1/|s2|) = 1 · (1/2 + 1/3).
	want := 1.0/2 + 1.0/3
	got := g.At(s1, s2)
	fmt.Printf("\nhand check A'(s1,s2): got %.4f, want %.4f\n", got, want)
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		log.Fatal("figure 1 weight mismatch")
	}

	// The sparsity comparison the paper motivates with this figure.
	s := igpart.CompareSparsity(h)
	fmt.Printf("\nnonzeros: clique model %d, intersection graph %d\n",
		s.CliqueNonzeros, s.IGNonzeros)
}
