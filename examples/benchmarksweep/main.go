// Benchmarksweep: run the four partitioners of the paper's evaluation over
// the synthetic benchmark suite and print a Table 2/3-style comparison.
// Pass a scale factor to shrink the circuits (default 0.25 keeps the whole
// sweep under a minute).
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"text/tabwriter"

	"igpart"
)

func main() {
	scale := 0.25
	if len(os.Args) > 1 {
		s, err := strconv.ParseFloat(os.Args[1], 64)
		if err != nil {
			log.Fatalf("bad scale %q: %v", os.Args[1], err)
		}
		scale = s
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Test\tmodules\tIG-Match\tIG-Vote\tEIG1\tRCut(10)\t")
	for _, name := range igpart.BenchmarkNames() {
		cfg, _ := igpart.Benchmark(name)
		h, err := igpart.Generate(cfg.Scaled(scale))
		if err != nil {
			log.Fatal(err)
		}
		igm, err := igpart.IGMatch(h)
		if err != nil {
			log.Fatal(err)
		}
		igv, err := igpart.IGVote(h)
		if err != nil {
			log.Fatal(err)
		}
		e1, err := igpart.EIG1(h)
		if err != nil {
			log.Fatal(err)
		}
		rc, err := igpart.RCut(h, 10, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%d\t%.3g\t%.3g\t%.3g\t%.3g\t\n",
			name, h.NumModules(),
			igm.Metrics.RatioCut, igv.Metrics.RatioCut,
			e1.Metrics.RatioCut, rc.Metrics.RatioCut)
	}
	w.Flush()
	fmt.Println("\n(ratio-cut cost; lower is better — IG-Match should win or tie every row)")
}
