// Quickstart: build a tiny netlist by hand, partition it with IG-Match,
// and inspect the result.
package main

import (
	"fmt"
	"log"

	"igpart"
)

func main() {
	// A 10-module circuit with two natural halves (modules 0–4 and 5–9)
	// joined by a single bridge net.
	b := igpart.NewBuilder()
	for _, grp := range [][]int{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}} {
		// A local bus plus short chains inside each half.
		b.AddNet(grp...)
		for i := 0; i < len(grp)-1; i++ {
			b.AddNet(grp[i], grp[i+1])
		}
	}
	bridge := b.AddNamedNet("bridge", 4, 5)
	h := b.Build()

	res, err := igpart.IGMatch(h)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("netlist: %d modules, %d nets\n", h.NumModules(), h.NumNets())
	fmt.Printf("partition: %v\n", res.Metrics)
	fmt.Printf("lambda2 = %.4f, matching bound = %d\n", res.Lambda2, res.MatchingBound)
	fmt.Printf("bridge net cut: %v\n", cutsNet(h, res.Partition, bridge))
	for v := 0; v < h.NumModules(); v++ {
		fmt.Printf("  module %d -> side %v\n", v, res.Partition.Side(v))
	}
}

// cutsNet reports whether net e has pins on both sides.
func cutsNet(h *igpart.Netlist, p *igpart.Bipartition, e int) bool {
	first := p.Side(h.Pins(e)[0])
	for _, v := range h.Pins(e) {
		if p.Side(v) != first {
			return true
		}
	}
	return false
}
