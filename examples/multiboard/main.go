// Multiboard: k-way partitioning for multi-board packaging — the "packaging
// or repackaging of designs" application from the paper's introduction.
// A design too large for one board is split across four; every net spanning
// boards needs a backplane connection, so the objective is to minimize
// spanning nets while keeping boards usable.
package main

import (
	"fmt"
	"log"

	"igpart"
)

func main() {
	cfg, _ := igpart.Benchmark("19ks")
	h, err := igpart.Generate(cfg.Scaled(0.5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design: %d modules, %d nets\n", h.NumModules(), h.NumNets())

	for _, k := range []int{2, 4, 8} {
		res, err := igpart.Multiway(h, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%d boards:\n", res.K)
		fmt.Printf("  board sizes:     %v\n", res.PartSizesSorted())
		fmt.Printf("  spanning nets:   %d (backplane connections)\n", res.SpanningNets)
		fmt.Printf("  connectivity:    %d (sum of spans-1)\n", res.Connectivity)
		fmt.Printf("  ratio value:     %.5f\n", res.RatioValue)
	}

	// Compare the 4-way result against a naive index-sliced assignment.
	res, err := igpart.Multiway(h, 4)
	if err != nil {
		log.Fatal(err)
	}
	naive := make([]int, h.NumModules())
	per := (h.NumModules() + 3) / 4
	for v := range naive {
		naive[v] = v / per
	}
	base := igpart.EvaluateMultiway(h, naive, 4)
	fmt.Printf("\n4-way: naive slicing spans %d nets, IG-Match %d (%.1f%% fewer)\n",
		base.SpanningNets, res.SpanningNets,
		100*(1-float64(res.SpanningNets)/float64(base.SpanningNets)))
}
