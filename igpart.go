// Package igpart is a circuit netlist partitioning library built around
// intersection-graph spectral partitioning: the IG-Match algorithm of Cong,
// Hagen and Kahng ("Net Partitions Yield Better Module Partitions", DAC
// 1992), together with the baselines it was evaluated against and the
// substrates they all share.
//
// A netlist is a hypergraph: modules (gates, cells) are vertices and signal
// nets are hyperedges. IG-Match partitions the *nets* first — it sorts the
// second eigenvector of the Laplacian of the netlist's intersection graph
// (one vertex per net, edges between nets sharing a module), sweeps every
// split of that ordering, and completes each net bipartition into a module
// bipartition with a maximum-matching computation that provably cuts no
// more nets than the matching size. The best ratio-cut completion wins.
//
// Quick start:
//
//	h, err := igpart.Load("design.hgr")          // or igpart.NewBuilder()
//	res, err := igpart.IGMatch(h)
//	fmt.Println(res.Metrics)                      // areas, net cut, ratio cut
//
// The package also provides:
//
//   - IGVote, EIG1, RCut, KL: the comparison algorithms from the paper.
//   - Refined and Condensed: the Section 5 hybrid flows (FM polishing and
//     cluster condensation).
//   - Generate: a synthetic benchmark generator reproducing the structural
//     properties of the MCNC circuits the paper evaluates on.
//
// Everything is deterministic for a fixed seed; IG-Match itself needs no
// seed at all (a single run suffices — the stability property the paper
// emphasizes over multi-start iterative methods). The sweep over all net
// orderings shards across cores (IGMatchOptions.Parallelism, default
// GOMAXPROCS) and remains bit-identical to the serial engine at every
// parallelism level.
package igpart

import (
	"context"
	"io"
	"time"

	"igpart/internal/anneal"
	"igpart/internal/cluster"
	"igpart/internal/core"
	"igpart/internal/eigen"
	"igpart/internal/fault"
	"igpart/internal/features"
	"igpart/internal/flow"
	"igpart/internal/fm"
	"igpart/internal/hypergraph"
	"igpart/internal/igdiam"
	"igpart/internal/igvote"
	"igpart/internal/kl"
	"igpart/internal/multilevel"
	"igpart/internal/multiway"
	"igpart/internal/netgen"
	"igpart/internal/netmodel"
	"igpart/internal/obs"
	"igpart/internal/partition"
	"igpart/internal/place"
	"igpart/internal/portfolio"
	"igpart/internal/refine"
	"igpart/internal/spectral"
)

// Netlist is a circuit hypergraph: modules connected by multi-pin signal
// nets. Construct one with NewBuilder, Load, or Generate.
type Netlist = hypergraph.Hypergraph

// Builder assembles a Netlist incrementally.
type Builder = hypergraph.Builder

// Bipartition assigns each module to side U or W.
type Bipartition = partition.Bipartition

// Metrics reports net cut, side sizes, and ratio cut for a bipartition.
type Metrics = partition.Metrics

// Side identifies a partition side.
type Side = partition.Side

// The two sides of a bipartition.
const (
	U = partition.U
	W = partition.W
)

// GenConfig parameterizes the synthetic benchmark generator.
type GenConfig = netgen.Config

// WeightScheme selects the intersection-graph edge weighting.
type WeightScheme = netmodel.WeightScheme

// The available intersection-graph weightings (SchemePaper is the formula
// from Section 2.2 of the paper).
const (
	SchemePaper   = netmodel.SchemePaper
	SchemeUnit    = netmodel.SchemeUnit
	SchemeOverlap = netmodel.SchemeOverlap
	SchemeMinSize = netmodel.SchemeMinSize
)

// ReorthMode selects the Lanczos reorthogonalization scheme.
type ReorthMode = eigen.ReorthMode

// The reorthogonalization modes: ReorthAuto (the default) uses full
// reorthogonalization below ReorthAutoCutoff nets and the
// ω-recurrence-monitored selective scheme above it; the other two force
// one engine. Selective mode matches full-mode Fiedler pairs to solver
// tolerance while skipping most reorthogonalization work on large
// circuits.
const (
	ReorthAuto      = eigen.ReorthAuto
	ReorthFull      = eigen.ReorthFull
	ReorthSelective = eigen.ReorthSelective
)

// ReorthAutoCutoff is the net count at which ReorthAuto switches from
// full to selective reorthogonalization.
const ReorthAutoCutoff = eigen.ReorthAutoCutoff

// ParseReorthMode parses "auto" (or ""), "full", or "selective" — the
// accepted values of a -reorth CLI flag.
func ParseReorthMode(s string) (ReorthMode, error) { return eigen.ParseReorthMode(s) }

// NewBuilder returns an empty netlist builder.
func NewBuilder() *Builder { return hypergraph.NewBuilder() }

// Load reads a netlist from disk (.hgr for the hMETIS-style format,
// anything else for the named `module`/`net` format).
func Load(path string) (*Netlist, error) { return hypergraph.LoadFile(path) }

// Save writes a netlist to disk, dispatching on extension like Load.
func Save(path string, h *Netlist) error { return hypergraph.SaveFile(path, h) }

// Generate produces a synthetic benchmark circuit.
func Generate(cfg GenConfig) (*Netlist, error) { return netgen.Generate(cfg) }

// Benchmark returns the named preset from the paper's evaluation suite
// (bm1, 19ks, Prim1, Prim2, Test02–Test06) — see BenchmarkNames.
func Benchmark(name string) (GenConfig, bool) { return netgen.ByName(name) }

// BenchmarkNames lists the benchmark presets in the paper's table order.
func BenchmarkNames() []string { return netgen.Names() }

// Evaluate computes the metric set of p on h.
func Evaluate(h *Netlist, p *Bipartition) Metrics { return partition.Evaluate(h, p) }

// NewBipartition returns a bipartition of n modules, all on side U.
func NewBipartition(n int) *Bipartition { return partition.New(n) }

// IsNetCut reports whether net e has pins on both sides of p.
func IsNetCut(h *Netlist, p *Bipartition, e int) bool { return partition.IsNetCut(h, p, e) }

// Result is the common shape returned by every partitioner in this package.
type Result struct {
	// Partition is the module bipartition found.
	Partition *Bipartition
	// Metrics evaluates Partition on the input netlist.
	Metrics Metrics
}

// IGMatchOptions tunes IGMatch.
type IGMatchOptions struct {
	// Scheme selects the intersection-graph edge weighting
	// (default SchemePaper).
	Scheme WeightScheme
	// Threshold, when positive, excludes nets above this size from the
	// eigensolve's intersection graph (sparsification; completions remain
	// exact).
	Threshold int
	// RecursionDepth enables the recursive completion extension.
	RecursionDepth int
	// Seed seeds the Lanczos starting vector (results are deterministic per
	// seed; the default seed is fine for production use).
	Seed int64
	// BlockSize selects the block Lanczos engine with the given block width
	// when > 1 — the paper's solver family, more robust on clustered or
	// degenerate eigenvalues. ≤ 1 uses single-vector Lanczos.
	BlockSize int
	// Parallelism bounds the number of concurrent shards of the IG-Match
	// sweep (0 = GOMAXPROCS, 1 = serial). The result is bit-identical for
	// every value: shards reduce deterministically with metric ties broken
	// by lowest split rank, matching the serial sweep order.
	Parallelism int
	// Reorth selects the Lanczos reorthogonalization mode. The default,
	// ReorthAuto, keeps the historical full scheme below ReorthAutoCutoff
	// nets and switches to selective (ω-recurrence-monitored)
	// reorthogonalization above it; ReorthFull and ReorthSelective force
	// either engine.
	Reorth ReorthMode
	// MatvecParallelism bounds the eigensolver's matvec workers (0 = auto:
	// parallel for large circuits; 1 = serial; <0 = GOMAXPROCS). Results
	// are bit-identical at every value.
	MatvecParallelism int
	// Rec, when non-nil, records per-stage timing spans and counters for
	// the run (see NewTrace). Tracing never changes the result; leaving
	// it nil costs nothing on the hot path.
	Rec Recorder
	// Ctx, when non-nil, enables cooperative cancellation: the pipeline
	// polls it at sweep-split and Lanczos-cycle granularity and returns
	// an error wrapping ctx.Err() promptly once it fires (use
	// errors.Is(err, context.Canceled) / context.DeadlineExceeded to
	// detect it). A nil or background context changes nothing — results
	// stay bit-identical.
	Ctx context.Context
	// Fault, when non-nil, arms deterministic fault-injection points in
	// the pipeline (see ParseFaultSpec). Nil — the production default —
	// disarms every point at zero cost.
	Fault *FaultInjector
}

// IGMatchResult extends Result with IG-Match-specific detail.
type IGMatchResult struct {
	Result
	// Lambda2 is the second-smallest eigenvalue of the intersection-graph
	// Laplacian.
	Lambda2 float64
	// NetOrder is the eigenvector-sorted net ordering driving the sweep.
	NetOrder []int
	// BestRank is the winning split position in NetOrder.
	BestRank int
	// MatchingBound is the maximum-matching size at the winning split — a
	// certified upper bound on the nets the completion cut (Theorem 5).
	MatchingBound int
}

// IGMatch partitions h with the paper's IG-Match algorithm.
func IGMatch(h *Netlist, opts ...IGMatchOptions) (IGMatchResult, error) {
	var o IGMatchOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	res, err := core.Partition(h, core.Options{
		IG: netmodel.IGOptions{Scheme: o.Scheme, Threshold: o.Threshold},
		Eigen: eigen.Options{
			Seed: o.Seed, BlockSize: o.BlockSize,
			ReorthMode: o.Reorth, MatvecWorkers: o.MatvecParallelism,
		},
		RecursionDepth: o.RecursionDepth,
		Parallelism:    o.Parallelism,
		Rec:            o.Rec,
		Ctx:            o.Ctx,
		Fault:          o.Fault,
	})
	if err != nil {
		return IGMatchResult{}, err
	}
	return IGMatchResult{
		Result:        Result{Partition: res.Partition, Metrics: res.Metrics},
		Lambda2:       res.Lambda2,
		NetOrder:      res.NetOrder,
		BestRank:      res.BestRank,
		MatchingBound: res.BestMatching,
	}, nil
}

// IGMatchCandidates runs the million-net-scale variant of IG-Match: the
// same eigenvector ordering, but instead of sweeping all m−1 splits (the
// full sweep is quadratic in the worst case — Theorem 6), it completes
// `candidates` evenly spaced splits, each bootstrapped independently and
// evaluated in parallel with the same lowest-rank-wins reduction as the
// full sweep. candidates ≤ 0 uses the default of 32. On the paper-scale
// circuits the full sweep is affordable and strictly at least as good;
// above ~10⁵ nets the candidate sweep is the practical choice.
func IGMatchCandidates(h *Netlist, candidates int, opts ...IGMatchOptions) (IGMatchResult, error) {
	var o IGMatchOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	if candidates <= 0 {
		candidates = core.DefaultCandidates
	}
	res, err := core.PartitionCandidates(h, candidates, core.Options{
		IG: netmodel.IGOptions{Scheme: o.Scheme, Threshold: o.Threshold},
		Eigen: eigen.Options{
			Seed: o.Seed, BlockSize: o.BlockSize,
			ReorthMode: o.Reorth, MatvecWorkers: o.MatvecParallelism,
		},
		RecursionDepth: o.RecursionDepth,
		Parallelism:    o.Parallelism,
		Rec:            o.Rec,
		Ctx:            o.Ctx,
		Fault:          o.Fault,
	})
	if err != nil {
		return IGMatchResult{}, err
	}
	return IGMatchResult{
		Result:        Result{Partition: res.Partition, Metrics: res.Metrics},
		Lambda2:       res.Lambda2,
		NetOrder:      res.NetOrder,
		BestRank:      res.BestRank,
		MatchingBound: res.BestMatching,
	}, nil
}

// MultilevelOptions tunes MultilevelIGMatch.
type MultilevelOptions struct {
	// Levels is the total V-cycle depth counting the input level: 1
	// disables coarsening and reproduces flat IGMatch bit for bit; higher
	// values halve the net count per extra level before the eigensolve and
	// sweep. Default 3. Coarsening stops early when matching stalls (see
	// CoarseningRatio).
	Levels int
	// CoarseningRatio is the largest acceptable per-round net shrink
	// factor; a matching round keeping more than this fraction of the nets
	// stops the descent. Default 0.9.
	CoarseningRatio float64
	// Scheme selects the intersection-graph edge weighting, used both for
	// the coarsest eigensolve and as the heavy-edge affinity for net
	// matching (default SchemePaper).
	Scheme WeightScheme
	// Threshold excludes nets above this size from the eigensolve IG.
	Threshold int
	// Seed seeds the coarsest-level Lanczos starting vector.
	Seed int64
	// BlockSize selects block Lanczos at the coarsest level when > 1.
	BlockSize int
	// Parallelism bounds the concurrent sweep shards of the coarsest-level
	// solve (0 = GOMAXPROCS, 1 = serial).
	Parallelism int
	// Reorth selects the coarsest-level Lanczos reorthogonalization mode
	// (see IGMatchOptions.Reorth).
	Reorth ReorthMode
	// MatvecParallelism bounds the coarsest-level eigensolver's matvec
	// workers (see IGMatchOptions.MatvecParallelism).
	MatvecParallelism int
	// SkipRefine disables the per-level FM polish (projection ablation).
	SkipRefine bool
	// Rec, when non-nil, records the V-cycle stage spans (coarsening
	// rounds, coarsest-solve pipeline breakdown, per-level uncoarsening).
	Rec Recorder
	// Ctx, when non-nil, enables cooperative cancellation of the V-cycle:
	// polled at every coarsening round and uncoarsening level and
	// threaded into the coarsest-level solve. A nil or background context
	// changes nothing.
	Ctx context.Context
	// Fault arms deterministic fault-injection points in the
	// coarsest-level solve (see ParseFaultSpec). Nil disarms everything.
	Fault *FaultInjector
}

// MultilevelResult extends Result with V-cycle detail.
type MultilevelResult struct {
	Result
	// Levels is the number of levels actually built.
	Levels int
	// CoarsestNets is the net count of the coarsest level solved.
	CoarsestNets int
	// CoarsestOnInput evaluates the coarsest-level solution directly on
	// the input netlist; the refined result is never worse.
	CoarsestOnInput Metrics
}

// MultilevelIGMatch partitions h with the multilevel V-cycle: nets are
// merged by heavy-edge intersection-graph affinity until the netlist is
// small, the coarsest level is solved by flat IGMatch, and the net
// bipartition is projected back level by level under König re-completion
// and FM refinement. Levels=1 is bit-identical to IGMatch; deeper cycles
// trade a bounded amount of quality for a much cheaper eigensolve and
// sweep.
func MultilevelIGMatch(h *Netlist, opts ...MultilevelOptions) (MultilevelResult, error) {
	var o MultilevelOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	res, err := multilevel.Partition(h, multilevel.Options{
		Levels:          o.Levels,
		CoarseningRatio: o.CoarseningRatio,
		Core: core.Options{
			IG: netmodel.IGOptions{Scheme: o.Scheme, Threshold: o.Threshold},
			Eigen: eigen.Options{
				Seed: o.Seed, BlockSize: o.BlockSize,
				ReorthMode: o.Reorth, MatvecWorkers: o.MatvecParallelism,
			},
			Parallelism: o.Parallelism,
			Ctx:         o.Ctx,
			Fault:       o.Fault,
		},
		SkipRefine: o.SkipRefine,
		Rec:        o.Rec,
	})
	if err != nil {
		return MultilevelResult{}, err
	}
	return MultilevelResult{
		Result:          Result{Partition: res.Partition, Metrics: res.Metrics},
		Levels:          res.Levels,
		CoarsestNets:    res.CoarsestNets,
		CoarsestOnInput: res.CoarsestOnInput,
	}, nil
}

// PortfolioOptions tunes Portfolio.
type PortfolioOptions struct {
	// Budget bounds the whole race; contenders still running when it
	// expires are cancelled and the best finished result wins. 0 waits
	// for every contender.
	Budget time.Duration
	// Accept, when positive, is the acceptance ratio-cut bound: the
	// first contender finishing at or under it wins immediately and
	// the rest are cancelled. Note this makes the winner depend on
	// contender timing; leave it 0 for a deterministic best-of-lineup.
	Accept float64
	// Lineup overrides the feature-driven lineup with explicit
	// contender names (PortfolioAlg* constants).
	Lineup []string
	// Parallelism bounds each contender's sweep shards.
	Parallelism int
	// Seed seeds the contenders' eigensolvers.
	Seed int64
	// Rec records one span per contender plus portfolio.* counters.
	Rec Recorder
	// Ctx cancels the whole race when it fires.
	Ctx context.Context
}

// The portfolio contender names.
const (
	PortfolioAlgIGMatch    = portfolio.AlgIGMatch
	PortfolioAlgMultilevel = portfolio.AlgMultilevel
	PortfolioAlgEIG1       = portfolio.AlgEIG1
	PortfolioAlgCandidates = portfolio.AlgCandidates
)

// PortfolioResult is the outcome of a portfolio race.
type PortfolioResult = portfolio.Result

// NetlistFeatures is the cheap structural feature vector (size, pin
// density, distribution shape) driving portfolio lineup selection.
type NetlistFeatures = features.Vector

// ExtractFeatures computes the feature vector of h in one O(pins) walk.
func ExtractFeatures(h *Netlist) NetlistFeatures { return features.Extract(h) }

// Portfolio partitions h adaptively: it extracts the netlist's feature
// vector, picks a starting lineup of engines suited to the instance
// class ({IG-Match, ML-IGMatch, EIG1, candidate sweep}), and races them
// under one budgeted context — first result under the acceptance bound
// wins and cancels the losers, otherwise the best result standing at
// the deadline wins.
func Portfolio(h *Netlist, opts ...PortfolioOptions) (PortfolioResult, error) {
	var o PortfolioOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	return portfolio.Race(h, portfolio.Options{
		Budget:      o.Budget,
		Accept:      o.Accept,
		Lineup:      o.Lineup,
		Parallelism: o.Parallelism,
		Seed:        o.Seed,
		Rec:         o.Rec,
		Ctx:         o.Ctx,
	})
}

// NetlistDelta is an ECO (engineering change order) against a base
// netlist: nets added or removed, pins added or removed on surviving
// nets. Apply one incrementally with WarmStart, or PATCH it to a
// running igpartd.
type NetlistDelta = portfolio.Delta

// DeltaPin names one (net, module) incidence in a NetlistDelta.
type DeltaPin = portfolio.PinRef

// WarmStartResult is the outcome of a WarmStart solve.
type WarmStartResult = portfolio.WarmResult

// WarmStart re-partitions a previously solved netlist after an ECO
// delta, reusing the cached net ordering and best split from the base
// IGMatch result: only a rank window around the carried-over winner is
// swept (plus a sparse global probe) — no eigensolve at all. Deltas
// perturbing more than a quarter of the nets fall back to a cold solve.
// An empty delta reproduces the base result bit for bit.
func WarmStart(h *Netlist, base IGMatchResult, d NetlistDelta, opts ...IGMatchOptions) (WarmStartResult, error) {
	var o IGMatchOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	return portfolio.WarmStart(h, base.NetOrder, base.BestRank, d, portfolio.WarmOptions{
		Core: core.Options{
			IG: netmodel.IGOptions{Scheme: o.Scheme, Threshold: o.Threshold},
			Eigen: eigen.Options{
				Seed: o.Seed, BlockSize: o.BlockSize,
				ReorthMode: o.Reorth, MatvecWorkers: o.MatvecParallelism,
			},
			Parallelism: o.Parallelism,
			Rec:         o.Rec,
			Ctx:         o.Ctx,
			Fault:       o.Fault,
		},
	})
}

// IGVote partitions h with the Hagen–Kahng IG-Vote heuristic (the EIG1-IG
// algorithm of the paper's Appendix B).
func IGVote(h *Netlist) (Result, error) {
	res, err := igvote.Partition(h, igvote.Options{})
	if err != nil {
		return Result{}, err
	}
	return Result{Partition: res.Partition, Metrics: res.Metrics}, nil
}

// EIG1 partitions h with the Hagen–Kahng module-side spectral heuristic
// (clique net model, sorted Fiedler vector, best ratio-cut split).
func EIG1(h *Netlist) (Result, error) {
	res, err := spectral.Partition(h, spectral.Options{})
	if err != nil {
		return Result{}, err
	}
	return Result{Partition: res.Partition, Metrics: res.Metrics}, nil
}

// RCut partitions h with the multi-start FM-style ratio-cut optimizer
// standing in for Wei–Cheng RCut1.0. starts ≤ 0 selects the paper's
// best-of-10.
func RCut(h *Netlist, starts int, seed int64) (Result, error) {
	if starts <= 0 {
		starts = 10
	}
	res, err := fm.RatioCut(h, fm.Options{Starts: starts, Seed: seed})
	if err != nil {
		return Result{}, err
	}
	return Result{Partition: res.Partition, Metrics: res.Metrics}, nil
}

// IGDiam partitions h with the diameter-based intersection-graph heuristic
// (Kahng, DAC 1989 — the earliest IG partitioner the paper cites).
func IGDiam(h *Netlist) (Result, error) {
	res, err := igdiam.Partition(h)
	if err != nil {
		return Result{}, err
	}
	return Result{Partition: res.Partition, Metrics: res.Metrics}, nil
}

// KL bisects h with Kernighan–Lin on the clique-model graph.
func KL(h *Netlist, seed int64) (Result, error) {
	res, err := kl.Bisect(h, kl.Options{Seed: seed})
	if err != nil {
		return Result{}, err
	}
	return Result{Partition: res.Partition, Metrics: res.Metrics}, nil
}

// Anneal partitions h with simulated annealing on the ratio-cut objective
// (the stochastic class of Section 1.1).
func Anneal(h *Netlist, seed int64) (Result, error) {
	res, err := anneal.RatioCut(h, anneal.Options{Seed: seed})
	if err != nil {
		return Result{}, err
	}
	return Result{Partition: res.Partition, Metrics: res.Metrics}, nil
}

// MinCut finds a small net cut by max-flow over a few well-spread
// source/sink pairs — the Section 1.1 "Minimum Cut" formulation. The cut
// is provably minimum for the best pair tried; as the paper notes, it
// usually divides the circuit very unevenly.
func MinCut(h *Netlist) (Result, error) {
	res, err := flow.BestOverPairs(h, 6)
	if err != nil {
		return Result{}, err
	}
	return Result{Partition: res.Partition, Metrics: res.Metrics}, nil
}

// MinNetCutBetween computes the exact minimum net cut separating modules s
// and t (max-flow/min-cut on the net-splitting gadget network).
func MinNetCutBetween(h *Netlist, s, t int) (Result, int, error) {
	res, err := flow.MinNetCut(h, s, t)
	if err != nil {
		return Result{}, 0, err
	}
	return Result{Partition: res.Partition, Metrics: res.Metrics}, res.MaxFlow, nil
}

// Refined runs IG-Match and polishes the result with ratio-cut FM passes
// (the Section 5 hybrid). The refined result is never worse than the pure
// spectral one.
func Refined(h *Netlist) (Result, error) {
	res, err := refine.IGMatchFM(h, core.Options{}, fm.Options{})
	if err != nil {
		return Result{}, err
	}
	return Result{Partition: res.Partition, Metrics: res.Refined}, nil
}

// Condensed runs the cluster-condensation pipeline: coarsen by heavy
// matching, IG-Match on the coarse circuit, project, FM-polish.
func Condensed(h *Netlist) (Result, error) {
	res, err := cluster.Partition(h, cluster.Options{})
	if err != nil {
		return Result{}, err
	}
	return Result{Partition: res.Partition, Metrics: res.Metrics}, nil
}

// Recorder is the pipeline observability hook: a hierarchical stage-span
// handle with counters plus a run-wide metrics registry. Pass a Recorder
// in IGMatchOptions.Rec to capture where an IG-Match run spends its time
// (intersection-graph build, Laplacian assembly, eigensolve cycles,
// sweep shards). A nil Recorder disables tracing at near-zero cost.
type Recorder = obs.Recorder

// Trace is the concrete Recorder: it records a stage tree with wall
// times and counters. Trace.String renders the per-stage timing tree,
// Trace.Finish returns the machine-readable report, and Trace.Metrics
// exposes the counters/gauges/timers registry.
type Trace = obs.Trace

// NewTrace returns a recording Trace whose root span bears the given
// name.
func NewTrace(name string) *Trace { return obs.NewTrace(name) }

// Stage is one node of the stage-span tree a Trace records: name, wall
// time, counters, and child stages. Trace.Finish returns the root Stage.
type Stage = obs.Stage

// MetricsRegistry is the run-wide counters/gauges/timers registry a
// Trace (and the service engine) records into.
type MetricsRegistry = obs.Registry

// FaultInjector is a deterministic, seeded fault-injection harness: it
// arms named points in the pipeline (eigen non-convergence, slow sweep
// shards, worker panics, …) with per-point firing rules. A nil injector
// is the production configuration — every point is disarmed at zero
// cost. See internal/fault for the point catalogue and rule semantics.
type FaultInjector = fault.Injector

// ParseFaultSpec parses a fault-injection spec string of the form
//
//	point[:p=X][:every=N][:limit=N][,point...]
//
// e.g. "eigen.noconverge:limit=1,sweep.slow-shard:p=0.25" — into an
// injector seeded with seed, recording fire counts into reg (which may
// be nil). An empty spec returns a nil injector: injection off.
func ParseFaultSpec(spec string, seed int64, reg *MetricsRegistry) (*FaultInjector, error) {
	return fault.Parse(spec, seed, reg)
}

// Sparsity compares the clique-model and intersection-graph representation
// sizes of h (stored off-diagonal nonzeros).
type Sparsity = netmodel.Sparsity

// CompareSparsity builds both net models of h and reports their sizes.
func CompareSparsity(h *Netlist) Sparsity { return netmodel.CompareSparsity(h) }

// MultiwayResult is a k-way partition with its quality metrics (spanning
// nets, connectivity, multiway ratio value).
type MultiwayResult = multiway.Result

// Multiway produces a k-way partition of h by recursive IG-Match
// bisection with no imbalance budget — the legacy behavior. Use KWay for
// the balanced (k, ε, fixed-module) contract.
func Multiway(h *Netlist, k int) (MultiwayResult, error) {
	return multiway.Partition(h, multiway.Options{K: k, Eps: multiway.Unbounded})
}

// EpsUnbounded disables the KWay imbalance budget: parts may be any size
// above one module.
var EpsUnbounded = multiway.Unbounded

// FixPin names one module pinned to a part for a k-way run; resolve a
// list of them against a netlist with hypergraph.FixFromPins.
type FixPin = hypergraph.FixPin

// KWayOptions configures KWay. The zero value demands perfect balance
// (ε = 0) with no fixed modules on the default IG-Match pipeline.
type KWayOptions struct {
	// Eps is the imbalance budget ε ≥ 0: every part holds at most
	// ⌈(1+ε)·n/k⌉ modules (multiway.PartCap). 0 — the default — demands
	// perfect balance; EpsUnbounded disables the budget.
	Eps float64
	// Fixed pins modules to parts: Fixed[v] ∈ [0,k) pins module v there,
	// −1 leaves it free; nil leaves every module free. Build one from a
	// named pin list with hypergraph.FixFromPins, or from an hMETIS .fix
	// file with hypergraph.LoadFix.
	Fixed []int
	// Spectral selects the direct spectral-k engine — Riolo–Newman
	// vector partitioning on the first k eigenvectors — instead of
	// recursive IG-Match bisection.
	Spectral bool
	// Candidates, when positive, makes each constrained bisection probe
	// that many evenly spaced splits (the scalable candidate sweep)
	// instead of sweeping its whole balance window.
	Candidates int
	// The pipeline knobs below mirror IGMatchOptions and apply to every
	// bisection (or to the spectral-k eigensolve).
	Scheme            WeightScheme
	Threshold         int
	Seed              int64
	BlockSize         int
	Parallelism       int
	Reorth            ReorthMode
	MatvecParallelism int
	Rec               Recorder
	Ctx               context.Context
	Fault             *FaultInjector
}

// KWay produces a balanced k-way module partition of h: exactly k
// non-empty parts, every part within the ε budget's per-part cap, every
// fixed module in its pinned part. With k=2, ε=EpsUnbounded, and no
// fixed modules the recursive engine reduces bit-for-bit to the IGMatch
// bisection.
func KWay(h *Netlist, k int, opts ...KWayOptions) (MultiwayResult, error) {
	var o KWayOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	return multiway.Partition(h, multiway.Options{
		K: k, Eps: o.Eps, Fixed: o.Fixed, Spectral: o.Spectral, Candidates: o.Candidates,
		Core: core.Options{
			IG: netmodel.IGOptions{Scheme: o.Scheme, Threshold: o.Threshold},
			Eigen: eigen.Options{
				Seed: o.Seed, BlockSize: o.BlockSize,
				ReorthMode: o.Reorth, MatvecWorkers: o.MatvecParallelism,
			},
			Parallelism: o.Parallelism,
			Rec:         o.Rec,
			Ctx:         o.Ctx,
			Fault:       o.Fault,
		},
	})
}

// EvaluateMultiway computes the multiway metrics for an arbitrary part
// assignment with parts 0..k−1.
func EvaluateMultiway(h *Netlist, part []int, k int) MultiwayResult {
	return multiway.Evaluate(h, part, k)
}

// Placement holds 1-D or 2-D coordinates for modules or nets.
type Placement = place.Placement

// PlaceHall1D computes Hall's one-dimensional quadratic placement of the
// modules (Appendix A of the paper) and returns it with λ₂, the optimal
// objective value.
func PlaceHall1D(h *Netlist) (Placement, float64, error) {
	return place.Hall1D(h, place.Options{})
}

// PlaceHall2D computes Hall's two-dimensional placement from eigenvectors
// 2 and 3 of the module Laplacian.
func PlaceHall2D(h *Netlist) (Placement, [2]float64, error) {
	return place.Hall2D(h, place.Options{})
}

// PlaceNetsAsPoints embeds the nets in 2-D via the intersection graph and
// drops each module at the centroid of its nets (the Pillage–Rohrer
// construction cited in Section 2.2).
func PlaceNetsAsPoints(h *Netlist) (nets, modules Placement, err error) {
	return place.NetsAsPoints2D(h, place.Options{})
}

// HPWL evaluates the half-perimeter wirelength of a module placement.
func HPWL(h *Netlist, p Placement) float64 { return place.HPWL(h, p) }

// LoadBookshelf reads a UCLA Bookshelf .nodes/.nets file pair.
func LoadBookshelf(nodesPath, netsPath string) (*Netlist, error) {
	return hypergraph.LoadBookshelf(nodesPath, netsPath)
}

// ReadBookshelf parses a UCLA Bookshelf .nodes/.nets stream pair, e.g.
// an in-memory payload received by cmd/igpartd.
func ReadBookshelf(nodes, nets io.Reader) (*Netlist, error) {
	return hypergraph.ReadBookshelf(nodes, nets)
}

// WriteBookshelf serializes a netlist as a UCLA Bookshelf .nodes/.nets
// stream pair, the inverse of ReadBookshelf.
func WriteBookshelf(nodes, nets io.Writer, h *Netlist) error {
	return hypergraph.WriteBookshelf(nodes, nets, h)
}

// SaveBookshelf writes a UCLA Bookshelf .nodes/.nets file pair.
func SaveBookshelf(nodesPath, netsPath string, h *Netlist) error {
	return hypergraph.SaveBookshelf(nodesPath, netsPath, h)
}
