GO ?= go

.PHONY: all build vet lint test race bench fuzz fuzz-smoke bench-sanity scale-report scale-smoke experiments cover serve smoke cluster-smoke ha-smoke eco-smoke chaos clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Style gate: gofmt must be clean, and staticcheck runs when installed
# (CI installs it; locally it is optional so a bare toolchain still
# passes `make all`).
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt: needs formatting:"; echo "$$out"; exit 1; \
	fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Tier-1 chain: vet, full test run, a race pass over the concurrent
# packages (the parallel sweep engine and matvec kernels, the matching
# substrate, the portfolio racer, the job engine, the cluster
# coordinator, and the HTTP daemon), and a 10-second fuzz smoke of the
# Bookshelf writer round trip.
test:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/core ./internal/bipartite ./internal/sparse ./internal/par ./internal/multiway ./internal/portfolio ./internal/features ./internal/service ./internal/cluster ./cmd/igpartd
	$(GO) test ./internal/hypergraph -run '^$$' -fuzz '^FuzzBookshelfRoundTrip$$' -fuzztime 10s

# CI fuzz smoke: 10 seconds each on the Bookshelf writer round trip, the
# multilevel V-cycle invariants, service request validation (generic,
# k-way, and ECO delta), and the benchmark generator's structural
# contract.
fuzz-smoke:
	$(GO) test ./internal/hypergraph -run '^$$' -fuzz '^FuzzBookshelfRoundTrip$$' -fuzztime 10s
	$(GO) test ./internal/multilevel -run '^$$' -fuzz '^FuzzVCycle$$' -fuzztime 10s
	$(GO) test ./internal/service -run '^$$' -fuzz '^FuzzRequestValidate$$' -fuzztime 10s
	$(GO) test ./internal/service -run '^$$' -fuzz '^FuzzKWayRequest$$' -fuzztime 10s
	$(GO) test ./internal/service -run '^$$' -fuzz '^FuzzDeltaRequest$$' -fuzztime 10s
	$(GO) test ./internal/netgen -run '^$$' -fuzz '^FuzzNetgen$$' -fuzztime 10s

# Chaos suite: the seeded fault-injection and panic-isolation tests —
# injector determinism, shard panic barriers, eigen fallback rungs, the
# 100-panicking-jobs survival run, the daemon's degraded-readiness
# probes, and the cluster tier's failover, journal-recovery, HA
# (lease fencing, standby takeover, coordinator crash injection), and
# membership-churn paths — all under the race detector.
chaos:
	$(GO) test -race ./internal/fault
	$(GO) test -race ./internal/core -run 'Panic|SlowShard|FaultThreaded'
	$(GO) test -race ./internal/eigen -run 'Fallback|NoConverge|Rung|NonFinite'
	$(GO) test -race ./internal/service -run 'Chaos|Retry|Backoff|Health|Validate|ShutdownRacingCancel'
	$(GO) test -race ./internal/cluster -run 'Failover|Dead|JournalRecovery|Backpressure|Lease|Standby|Membership|Backends|Crash|Probe'
	$(GO) test -race ./cmd/igpartd -run 'Readyz|Liveness|IOReadErr|BadRequest|ClusterChaos|ClusterCoordinatorRestart|Standby|SwitchHandler'

# CI bench sanity: regenerate the small-circuit report and fail on any
# ratio-cut regression beyond 10% of the checked-in baseline, hold the
# checked-in scale report to the million-net gate (>=100k nets, selective
# reorth >=3x faster than full at equal ratio cut) and the checked-in
# portfolio report to the ECO gate (warm re-partition >=3x faster than a
# cold re-solve at matching ratio cut), then the kway-sanity step: rerun
# both balanced k-way engines at k in {2,4,8} and fail on spanning-net
# regressions against the checked-in k-way baseline.
bench-sanity:
	$(GO) run igpart/cmd/experiments -report ci -scale 0.25 -p 1 \
		-baseline results/BENCH_baseline.json -tolerance 0.10
	$(GO) run igpart/cmd/experiments -verify-scale results/BENCH_scale.json
	$(GO) run igpart/cmd/experiments -verify-portfolio results/BENCH_portfolio.json
	$(GO) run igpart/cmd/experiments -kway-report kway-ci -results /tmp/igpart-kway \
		-scale 0.25 -p 1 -kway-baseline results/BENCH_kway.json -tolerance 0.10

# Regenerate the checked-in million-net-scale report: the 100k-net preset
# partitioned by the candidate sweep under selective and full
# reorthogonalization.
scale-report:
	$(GO) run igpart/cmd/experiments -scale-report scale -scale-preset scale100k

# CI scale smoke: a fresh 100k-net run diffed against the checked-in
# report — ratio cuts are deterministic (1% tolerance), wall times get a
# generous 5x cross-machine budget — then the >=3x-speedup gate on the
# fresh numbers themselves.
scale-smoke:
	$(GO) run igpart/cmd/experiments -scale-report scale-smoke -results /tmp/igpart-scale \
		-scale-preset scale100k -baseline results/BENCH_scale.json \
		-tolerance 0.01 -scale-budget 5.0
	$(GO) run igpart/cmd/experiments -verify-scale /tmp/igpart-scale/BENCH_scale-smoke.json

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzzing pass over every parser, the Bookshelf writer, and the
# multilevel V-cycle.
fuzz:
	$(GO) test ./internal/hypergraph -fuzz FuzzReadHGR -fuzztime 30s
	$(GO) test ./internal/hypergraph -fuzz FuzzReadNetlist -fuzztime 30s
	$(GO) test ./internal/hypergraph -fuzz FuzzReadBookshelf -fuzztime 30s
	$(GO) test ./internal/hypergraph -fuzz FuzzBookshelfRoundTrip -fuzztime 30s
	$(GO) test ./internal/multilevel -fuzz FuzzVCycle -fuzztime 30s
	$(GO) test ./internal/service -fuzz FuzzRequestValidate -fuzztime 30s
	$(GO) test ./internal/service -fuzz FuzzKWayRequest -fuzztime 30s
	$(GO) test ./internal/service -fuzz FuzzDeltaRequest -fuzztime 30s
	$(GO) test ./internal/netgen -fuzz FuzzNetgen -fuzztime 30s

# Regenerate every paper table at full size.
experiments:
	$(GO) run igpart/cmd/experiments

# COVER_PKGS must each stay at or above COVER_MIN% statement coverage:
# the pipeline core, the multilevel engine, the balanced k-way engine,
# the observability layer, the matching substrate, the portfolio racer
# and its feature extractor, the partition-service job engine, and the
# cluster coordinator.
COVER_PKGS = igpart/internal/core igpart/internal/multilevel igpart/internal/multiway igpart/internal/obs igpart/internal/bipartite igpart/internal/portfolio igpart/internal/features igpart/internal/service igpart/internal/cluster
COVER_MIN  = 70

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1
	@for pkg in $(COVER_PKGS); do \
		pct=$$($(GO) test -cover $$pkg | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage figure for $$pkg"; exit 1; fi; \
		ok=$$(awk -v p="$$pct" -v m="$(COVER_MIN)" 'BEGIN { print (p >= m) ? 1 : 0 }'); \
		if [ "$$ok" != 1 ]; then \
			echo "cover: $$pkg at $$pct% is below the $(COVER_MIN)% floor"; exit 1; \
		fi; \
		echo "cover: $$pkg $$pct% (floor $(COVER_MIN)%)"; \
	done

# Run the partitioning daemon locally, serving netlists from the repo
# root (submit e.g. {"path": "circuits/bm1.hgr"} after netgen -out).
serve:
	$(GO) run igpart/cmd/igpartd -addr 127.0.0.1:8080 -data .

# End-to-end daemon smoke: boot igpartd on a random port, submit a
# generated benchmark, poll to completion, assert a sane result, and
# verify SIGTERM drains cleanly.
smoke:
	./scripts/smoke.sh

# Cluster-mode smoke: coordinator + two backends, a streamed batch, the
# owner backend SIGKILLed mid-batch — every job must still complete and
# the failover must show in the aggregated metrics.
cluster-smoke:
	./scripts/cluster-smoke.sh

# HA smoke: the cluster smoke plus the coordinator-kill and membership
# phases — a standby tails the shared journal and is SIGKILL-promoted
# mid-batch (all jobs finish under their original IDs with ratio-cut
# parity and no duplicate completions), then a backend joins and the
# batch owner leaves via the backends file mid-batch with minimal ring
# churn.
ha-smoke:
	./scripts/cluster-smoke.sh ha

# Incremental-ECO smoke: boot igpartd, solve a base netlist, PATCH a
# small delta against it, and assert the warm re-partition beat a cold
# resubmission of the edited netlist while landing a sane cut.
eco-smoke:
	./scripts/eco-smoke.sh

clean:
	rm -f cover.out
