GO ?= go

.PHONY: all build vet lint test race bench fuzz fuzz-smoke bench-sanity experiments cover serve smoke chaos clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Style gate: gofmt must be clean, and staticcheck runs when installed
# (CI installs it; locally it is optional so a bare toolchain still
# passes `make all`).
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt: needs formatting:"; echo "$$out"; exit 1; \
	fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Tier-1 chain: vet, full test run, a race pass over the concurrent
# packages (the parallel sweep engine, its matching substrate, the job
# engine, and the HTTP daemon), and a 10-second fuzz smoke of the
# Bookshelf writer round trip.
test:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/core ./internal/bipartite ./internal/service ./cmd/igpartd
	$(GO) test ./internal/hypergraph -run '^$$' -fuzz '^FuzzBookshelfRoundTrip$$' -fuzztime 10s

# CI fuzz smoke: 10 seconds each on the Bookshelf writer round trip, the
# multilevel V-cycle invariants, and service request validation.
fuzz-smoke:
	$(GO) test ./internal/hypergraph -run '^$$' -fuzz '^FuzzBookshelfRoundTrip$$' -fuzztime 10s
	$(GO) test ./internal/multilevel -run '^$$' -fuzz '^FuzzVCycle$$' -fuzztime 10s
	$(GO) test ./internal/service -run '^$$' -fuzz '^FuzzRequestValidate$$' -fuzztime 10s

# Chaos suite: the seeded fault-injection and panic-isolation tests —
# injector determinism, shard panic barriers, eigen fallback rungs, the
# 100-panicking-jobs survival run, and the daemon's degraded-readiness
# probes — all under the race detector.
chaos:
	$(GO) test -race ./internal/fault
	$(GO) test -race ./internal/core -run 'Panic|SlowShard|FaultThreaded'
	$(GO) test -race ./internal/eigen -run 'Fallback|NoConverge|Rung|NonFinite'
	$(GO) test -race ./internal/service -run 'Chaos|Retry|Backoff|Health|Validate|ShutdownRacingCancel'
	$(GO) test -race ./cmd/igpartd -run 'Readyz|Liveness|IOReadErr|BadRequest'

# CI bench sanity: regenerate the small-circuit report and fail on any
# ratio-cut regression beyond 10% of the checked-in baseline.
bench-sanity:
	$(GO) run igpart/cmd/experiments -report ci -scale 0.25 -p 1 \
		-baseline results/BENCH_baseline.json -tolerance 0.10

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzzing pass over every parser, the Bookshelf writer, and the
# multilevel V-cycle.
fuzz:
	$(GO) test ./internal/hypergraph -fuzz FuzzReadHGR -fuzztime 30s
	$(GO) test ./internal/hypergraph -fuzz FuzzReadNetlist -fuzztime 30s
	$(GO) test ./internal/hypergraph -fuzz FuzzReadBookshelf -fuzztime 30s
	$(GO) test ./internal/hypergraph -fuzz FuzzBookshelfRoundTrip -fuzztime 30s
	$(GO) test ./internal/multilevel -fuzz FuzzVCycle -fuzztime 30s
	$(GO) test ./internal/service -fuzz FuzzRequestValidate -fuzztime 30s

# Regenerate every paper table at full size.
experiments:
	$(GO) run igpart/cmd/experiments

# COVER_PKGS must each stay at or above COVER_MIN% statement coverage:
# the pipeline core, the multilevel engine, the observability layer, the
# matching substrate, and the partition-service job engine.
COVER_PKGS = igpart/internal/core igpart/internal/multilevel igpart/internal/obs igpart/internal/bipartite igpart/internal/service
COVER_MIN  = 70

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1
	@for pkg in $(COVER_PKGS); do \
		pct=$$($(GO) test -cover $$pkg | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "cover: no coverage figure for $$pkg"; exit 1; fi; \
		ok=$$(awk -v p="$$pct" -v m="$(COVER_MIN)" 'BEGIN { print (p >= m) ? 1 : 0 }'); \
		if [ "$$ok" != 1 ]; then \
			echo "cover: $$pkg at $$pct% is below the $(COVER_MIN)% floor"; exit 1; \
		fi; \
		echo "cover: $$pkg $$pct% (floor $(COVER_MIN)%)"; \
	done

# Run the partitioning daemon locally, serving netlists from the repo
# root (submit e.g. {"path": "circuits/bm1.hgr"} after netgen -out).
serve:
	$(GO) run igpart/cmd/igpartd -addr 127.0.0.1:8080 -data .

# End-to-end daemon smoke: boot igpartd on a random port, submit a
# generated benchmark, poll to completion, assert a sane result, and
# verify SIGTERM drains cleanly.
smoke:
	./scripts/smoke.sh

clean:
	rm -f cover.out
