GO ?= go

.PHONY: all build vet test race bench fuzz experiments cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Tier-1 chain: vet, full test run, then a race pass over the concurrent
# packages (the parallel sweep engine and its matching substrate).
test:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./internal/core ./internal/bipartite

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzzing pass over every parser.
fuzz:
	$(GO) test ./internal/hypergraph -fuzz FuzzReadHGR -fuzztime 30s
	$(GO) test ./internal/hypergraph -fuzz FuzzReadNetlist -fuzztime 30s
	$(GO) test ./internal/hypergraph -fuzz FuzzReadBookshelf -fuzztime 30s

# Regenerate every paper table at full size.
experiments:
	$(GO) run igpart/cmd/experiments

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out
