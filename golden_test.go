package igpart

import (
	"fmt"
	"testing"

	"igpart/internal/core"
)

// TestGoldenDeterminism pins the integer outcomes (cut, sizes, bound) of
// every deterministic algorithm on a fixed seeded circuit. It protects the
// reproduction against silent behavioral drift: any change to the
// generator, eigensolver ordering, sweep, or completions that alters
// results must consciously update these numbers.
//
// Only integer metrics are pinned; floating-point ratio values follow from
// them exactly.
func TestGoldenDeterminism(t *testing.T) {
	cfg, _ := Benchmark("Prim1")
	h, err := Generate(cfg.Scaled(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumModules() != 249 || h.NumNets() != 270 || h.NumPins() != 1055 {
		t.Fatalf("generator drift: %d modules %d nets %d pins",
			h.NumModules(), h.NumNets(), h.NumPins())
	}

	type golden struct {
		cut, sizeU, sizeW int
	}
	check := func(name string, got Metrics, want golden) {
		t.Helper()
		if got.CutNets != want.cut || got.SizeU != want.sizeU || got.SizeW != want.sizeW {
			t.Errorf("%s drift: got cut=%d %d:%d, golden cut=%d %d:%d",
				name, got.CutNets, got.SizeU, got.SizeW, want.cut, want.sizeU, want.sizeW)
		}
	}

	ig, err := IGMatch(h)
	if err != nil {
		t.Fatal(err)
	}
	check("IGMatch", ig.Metrics, golden{cut: 11, sizeU: 125, sizeW: 124})

	// Pin the winning split itself, not just the final metrics: a
	// parallel-reduction tie-break bug could return an equal-metric
	// partition from a different rank, which a metrics-only golden would
	// miss. The record is fetched from the sweep trace at BestRank.
	if ig.BestRank != 140 || ig.MatchingBound != 13 {
		t.Errorf("IGMatch winning split drift: rank=%d bound=%d, golden rank=140 bound=13",
			ig.BestRank, ig.MatchingBound)
	}
	var trace []core.SplitRecord
	cres, err := core.Partition(h, core.Options{Trace: &trace})
	if err != nil {
		t.Fatal(err)
	}
	if cres.BestRank < 1 || cres.BestRank > len(trace) {
		t.Fatalf("best rank %d outside trace of %d records", cres.BestRank, len(trace))
	}
	win := trace[cres.BestRank-1]
	if win.Rank != 140 || win.MatchingSize != 13 || win.CutNets != 11 {
		t.Errorf("winning split record drift: %+v, golden Rank=140 MatchingSize=13 CutNets=11", win)
	}

	// The parallel sharded sweep must reproduce the same golden numbers
	// bit-for-bit (deterministic lowest-rank reduction).
	for _, p := range []int{2, 4} {
		igp, err := IGMatch(h, IGMatchOptions{Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("IGMatch(P=%d)", p), igp.Metrics, golden{cut: 11, sizeU: 125, sizeW: 124})
		if igp.BestRank != ig.BestRank || igp.MatchingBound != ig.MatchingBound {
			t.Errorf("IGMatch(P=%d) split drift: rank=%d bound=%d, serial rank=%d bound=%d",
				p, igp.BestRank, igp.MatchingBound, ig.BestRank, ig.MatchingBound)
		}
	}

	iv, err := IGVote(h)
	if err != nil {
		t.Fatal(err)
	}
	check("IGVote", iv.Metrics, golden{cut: 11, sizeU: 132, sizeW: 117})

	e1, err := EIG1(h)
	if err != nil {
		t.Fatal(err)
	}
	check("EIG1", e1.Metrics, golden{cut: 11, sizeU: 125, sizeW: 124})

	rc, err := RCut(h, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	check("RCut", rc.Metrics, golden{cut: 13, sizeU: 182, sizeW: 67})

	dm, err := IGDiam(h)
	if err != nil {
		t.Fatal(err)
	}
	check("IGDiam", dm.Metrics, golden{cut: 6, sizeU: 24, sizeW: 225})
}
