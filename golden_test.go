package igpart

import "testing"

// TestGoldenDeterminism pins the integer outcomes (cut, sizes, bound) of
// every deterministic algorithm on a fixed seeded circuit. It protects the
// reproduction against silent behavioral drift: any change to the
// generator, eigensolver ordering, sweep, or completions that alters
// results must consciously update these numbers.
//
// Only integer metrics are pinned; floating-point ratio values follow from
// them exactly.
func TestGoldenDeterminism(t *testing.T) {
	cfg, _ := Benchmark("Prim1")
	h, err := Generate(cfg.Scaled(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumModules() != 249 || h.NumNets() != 270 || h.NumPins() != 1055 {
		t.Fatalf("generator drift: %d modules %d nets %d pins",
			h.NumModules(), h.NumNets(), h.NumPins())
	}

	type golden struct {
		cut, sizeU, sizeW int
	}
	check := func(name string, got Metrics, want golden) {
		t.Helper()
		if got.CutNets != want.cut || got.SizeU != want.sizeU || got.SizeW != want.sizeW {
			t.Errorf("%s drift: got cut=%d %d:%d, golden cut=%d %d:%d",
				name, got.CutNets, got.SizeU, got.SizeW, want.cut, want.sizeU, want.sizeW)
		}
	}

	ig, err := IGMatch(h)
	if err != nil {
		t.Fatal(err)
	}
	check("IGMatch", ig.Metrics, golden{cut: 11, sizeU: 125, sizeW: 124})

	iv, err := IGVote(h)
	if err != nil {
		t.Fatal(err)
	}
	check("IGVote", iv.Metrics, golden{cut: 11, sizeU: 132, sizeW: 117})

	e1, err := EIG1(h)
	if err != nil {
		t.Fatal(err)
	}
	check("EIG1", e1.Metrics, golden{cut: 11, sizeU: 125, sizeW: 124})

	rc, err := RCut(h, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	check("RCut", rc.Metrics, golden{cut: 13, sizeU: 182, sizeW: 67})

	dm, err := IGDiam(h)
	if err != nil {
		t.Fatal(err)
	}
	check("IGDiam", dm.Metrics, golden{cut: 6, sizeU: 24, sizeW: 225})
}
