package igpart

import (
	"math"
	"testing"
)

// algUnderTest names one façade algorithm and adapts it to the common
// (Result, error) shape so every partitioner goes through the same
// invariant checks.
type algUnderTest struct {
	name string
	run  func(h *Netlist) (Result, error)
}

func allAlgorithms() []algUnderTest {
	return []algUnderTest{
		{"IGMatch", func(h *Netlist) (Result, error) {
			r, err := IGMatch(h)
			return r.Result, err
		}},
		{"IGVote", IGVote},
		{"EIG1", EIG1},
		{"KL", func(h *Netlist) (Result, error) { return KL(h, 7) }},
		{"Anneal", func(h *Netlist) (Result, error) { return Anneal(h, 7) }},
		{"MinCut", MinCut},
		{"Refined", Refined},
		{"Condensed", Condensed},
		{"IGDiam", IGDiam},
		{"RCut", func(h *Netlist) (Result, error) { return RCut(h, 3, 7) }},
	}
}

// TestAlgorithmMetricsInvariants re-derives every algorithm's reported
// metrics from its returned bipartition and checks the two properties
// any correct partitioner must satisfy:
//
//  1. The Metrics in the result are exactly Evaluate(h, Partition) — no
//     algorithm may report a cut it did not produce.
//  2. The ratio cut is invariant under swapping the two sides (the cost
//     cut/(|U|·|W|) is symmetric in U and W), while SizeU/SizeW trade
//     places and CutNets is unchanged.
func TestAlgorithmMetricsInvariants(t *testing.T) {
	circuits := []struct {
		name  string
		scale float64
	}{
		{"Prim1", 0.15},
		{"Test04", 0.08},
	}
	for _, c := range circuits {
		cfg, ok := Benchmark(c.name)
		if !ok {
			t.Fatalf("benchmark %s missing", c.name)
		}
		h, err := Generate(cfg.Scaled(c.scale))
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range allAlgorithms() {
			alg := alg
			t.Run(c.name+"/"+alg.name, func(t *testing.T) {
				res, err := alg.run(h)
				if err != nil {
					t.Fatal(err)
				}
				if res.Partition == nil {
					t.Fatal("nil partition")
				}
				if res.Partition.NumModules() != h.NumModules() {
					t.Fatalf("partition covers %d of %d modules",
						res.Partition.NumModules(), h.NumModules())
				}
				got := Evaluate(h, res.Partition)
				if got != res.Metrics {
					t.Errorf("reported metrics %+v != re-evaluated %+v", res.Metrics, got)
				}
				if got.SizeU == 0 || got.SizeW == 0 {
					t.Errorf("improper bipartition: sizes %d/%d", got.SizeU, got.SizeW)
				}
				if got.SizeU+got.SizeW != h.NumModules() {
					t.Errorf("sizes %d+%d != %d modules", got.SizeU, got.SizeW, h.NumModules())
				}

				swapped := res.Partition.Clone()
				swapped.Swap()
				sm := Evaluate(h, swapped)
				if sm.CutNets != got.CutNets {
					t.Errorf("cut changed under side swap: %d vs %d", sm.CutNets, got.CutNets)
				}
				if sm.SizeU != got.SizeW || sm.SizeW != got.SizeU {
					t.Errorf("sizes not exchanged under swap: %+v vs %+v", sm, got)
				}
				if math.Abs(sm.RatioCut-got.RatioCut) > 1e-15 {
					t.Errorf("ratio cut not swap-invariant: %g vs %g", sm.RatioCut, got.RatioCut)
				}
			})
		}
	}
}
