package multilevel

import (
	"testing"

	"igpart/internal/hypergraph"
	"igpart/internal/partition"
)

// FuzzVCycle drives the whole V-cycle over arbitrary builder-constructed
// netlists: any input the engine accepts must yield a proper, consistently
// scored bipartition that is no worse than the coarsest-level solution —
// the same invariants the deterministic tests pin, pushed into odd corners
// (degenerate nets, disconnected modules, pathological overlaps).
func FuzzVCycle(f *testing.F) {
	f.Add(uint8(6), uint8(3), []byte{2, 0, 1, 2, 1, 2, 3, 0, 3, 2, 4, 5})
	f.Add(uint8(9), uint8(2), []byte{3, 0, 1, 2, 3, 3, 4, 5, 2, 5, 6, 2, 7, 8, 2, 0, 8})
	f.Add(uint8(4), uint8(4), []byte{1, 0, 1, 1, 2, 2, 3, 2, 0, 3})
	f.Fuzz(func(t *testing.T, nMod, levels uint8, data []byte) {
		n := int(nMod)%32 + 2
		b := hypergraph.NewBuilder().SetNumModules(n)
		// Decode data as a net stream: one size byte, then pins mod n.
		for i := 0; i < len(data); {
			size := int(data[i])%5 + 1
			i++
			pins := make([]int, 0, size)
			for j := 0; j < size && i < len(data); j++ {
				pins = append(pins, int(data[i])%n)
				i++
			}
			if len(pins) == 0 {
				break
			}
			b.AddNet(pins...)
		}
		h := b.Build()
		res, err := Partition(h, Options{Levels: int(levels)%4 + 1, MinNets: 4})
		if err != nil {
			return // degenerate inputs may be rejected, never panic
		}
		if res.Metrics.SizeU <= 0 || res.Metrics.SizeW <= 0 {
			t.Fatalf("infeasible result %v", res.Metrics)
		}
		if got := partition.Evaluate(h, res.Partition); got != res.Metrics {
			t.Fatalf("metrics %v disagree with evaluation %v", res.Metrics, got)
		}
		if res.Metrics.RatioCut > res.CoarsestOnInput.RatioCut {
			t.Fatalf("final ratio %v worse than coarsest-on-input %v",
				res.Metrics.RatioCut, res.CoarsestOnInput.RatioCut)
		}
		if res.Levels < 1 || res.CoarsestNets < 2 || res.CoarsestNets > h.NumNets() {
			t.Fatalf("implausible hierarchy: levels=%d coarsestNets=%d of %d",
				res.Levels, res.CoarsestNets, h.NumNets())
		}
	})
}
