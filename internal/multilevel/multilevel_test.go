package multilevel

import (
	"math"
	"testing"

	"igpart/internal/core"
	"igpart/internal/hypergraph"
	"igpart/internal/netgen"
	"igpart/internal/obs"
	"igpart/internal/partition"
)

// circuit generates one benchmark preset at a reduced scale.
func circuit(t *testing.T, name string, scale float64) *hypergraph.Hypergraph {
	t.Helper()
	cfg, ok := netgen.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	h, err := netgen.Generate(cfg.Scaled(scale))
	if err != nil {
		t.Fatalf("generating %s: %v", name, err)
	}
	return h
}

// TestLevels1BitIdentical is the degenerate-cycle contract: Levels=1 must
// reproduce flat IG-Match bit for bit — same side per module, same winning
// split, same eigenvalue — on every golden circuit.
func TestLevels1BitIdentical(t *testing.T) {
	for _, name := range []string{"bm1", "Prim1", "Test03"} {
		h := circuit(t, name, 0.3)
		flat, err := core.Partition(h, core.Options{})
		if err != nil {
			t.Fatalf("%s: flat: %v", name, err)
		}
		ml, err := Partition(h, Options{Levels: 1})
		if err != nil {
			t.Fatalf("%s: multilevel: %v", name, err)
		}
		if ml.Levels != 1 || len(ml.LevelStats) != 0 {
			t.Fatalf("%s: Levels=1 built %d levels, %d stats", name, ml.Levels, len(ml.LevelStats))
		}
		if ml.Metrics != flat.Metrics {
			t.Fatalf("%s: metrics diverge: flat %v, multilevel %v", name, flat.Metrics, ml.Metrics)
		}
		if ml.Coarsest.BestRank != flat.BestRank || ml.Coarsest.BestMatching != flat.BestMatching {
			t.Fatalf("%s: winning split diverges: flat rank=%d bound=%d, multilevel rank=%d bound=%d",
				name, flat.BestRank, flat.BestMatching, ml.Coarsest.BestRank, ml.Coarsest.BestMatching)
		}
		if ml.Coarsest.Lambda2 != flat.Lambda2 {
			t.Fatalf("%s: lambda2 diverges: %v vs %v", name, flat.Lambda2, ml.Coarsest.Lambda2)
		}
		for v := 0; v < h.NumModules(); v++ {
			if ml.Partition.Side(v) != flat.Partition.Side(v) {
				t.Fatalf("%s: module %d on side %v, flat has %v", name, v, ml.Partition.Side(v), flat.Partition.Side(v))
			}
		}
	}
}

// TestProjectionFeasibility asserts every uncoarsening level produced a
// proper bipartition: both sides populated, sizes summing to the module
// count, and the reported metrics consistent.
func TestProjectionFeasibility(t *testing.T) {
	h := circuit(t, "Prim2", 0.3)
	res, err := Partition(h, Options{Levels: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels < 2 {
		t.Fatalf("coarsening produced only %d level(s)", res.Levels)
	}
	if len(res.LevelStats) != res.Levels-1 {
		t.Fatalf("want %d level stats, got %d", res.Levels-1, len(res.LevelStats))
	}
	n := h.NumModules()
	for i, st := range res.LevelStats {
		if st.Refined.SizeU <= 0 || st.Refined.SizeW <= 0 {
			t.Fatalf("level stat %d: infeasible refined partition %v", i, st.Refined)
		}
		if st.Refined.SizeU+st.Refined.SizeW != n {
			t.Fatalf("level stat %d: sizes %d+%d do not cover %d modules",
				i, st.Refined.SizeU, st.Refined.SizeW, n)
		}
		if st.CompletionOK && (st.Completion.SizeU <= 0 || st.Completion.SizeW <= 0) {
			t.Fatalf("level stat %d: completion marked ok but infeasible: %v", i, st.Completion)
		}
		if math.IsInf(st.Refined.RatioCut, 1) {
			t.Fatalf("level stat %d: infinite ratio cut", i)
		}
	}
	if got := partition.Evaluate(h, res.Partition); got != res.Metrics {
		t.Fatalf("reported metrics %v disagree with evaluation %v", res.Metrics, got)
	}
	if res.Metrics.SizeU == 0 || res.Metrics.SizeW == 0 {
		t.Fatalf("final partition infeasible: %v", res.Metrics)
	}
}

// TestVCycleNotWorseThanCoarsest is the monotonicity contract: after
// refinement, the finest-level result is never worse (by ratio cut) than
// the coarsest-level solution evaluated on the input netlist.
func TestVCycleNotWorseThanCoarsest(t *testing.T) {
	for _, name := range []string{"bm1", "19ks", "Test02", "Test04"} {
		for _, levels := range []int{2, 3, 4} {
			h := circuit(t, name, 0.25)
			res, err := Partition(h, Options{Levels: levels})
			if err != nil {
				t.Fatalf("%s levels=%d: %v", name, levels, err)
			}
			if res.Metrics.RatioCut > res.CoarsestOnInput.RatioCut {
				t.Fatalf("%s levels=%d: final ratio %v worse than coarsest-on-input %v",
					name, levels, res.Metrics.RatioCut, res.CoarsestOnInput.RatioCut)
			}
		}
	}
}

// TestDeterminism asserts the V-cycle is reproducible and independent of
// the coarsest-level sweep parallelism (the PR 1 guarantee must survive
// the multilevel wrapper).
func TestDeterminism(t *testing.T) {
	h := circuit(t, "Test05", 0.25)
	base, err := Partition(h, Options{Levels: 3, Core: core.Options{Parallelism: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{0, 2, 4} {
		res, err := Partition(h, Options{Levels: 3, Core: core.Options{Parallelism: par}})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if res.Metrics != base.Metrics {
			t.Fatalf("parallelism %d: metrics %v diverge from serial %v", par, res.Metrics, base.Metrics)
		}
		for v := 0; v < h.NumModules(); v++ {
			if res.Partition.Side(v) != base.Partition.Side(v) {
				t.Fatalf("parallelism %d: module %d side diverges", par, v)
			}
		}
	}
}

// TestCoarseningGuards exercises the stop conditions: an over-deep request
// stalls at MinNets (or when matching stops shrinking) instead of erroring,
// and the coarsest level always keeps enough nets to solve.
func TestCoarseningGuards(t *testing.T) {
	h := circuit(t, "Prim1", 0.2)
	res, err := Partition(h, Options{Levels: 50, MinNets: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels >= 50 {
		t.Fatalf("coarsening never stalled: built %d levels", res.Levels)
	}
	if res.CoarsestNets < 2 {
		t.Fatalf("coarsest level unsolvable with %d nets", res.CoarsestNets)
	}
	// MinNets bounds the *input* to a coarsening round, so only the last
	// level may dip below it — and never to a degenerate size.
	if res.CoarsestNets > h.NumNets() {
		t.Fatalf("coarsest level grew: %d > %d nets", res.CoarsestNets, h.NumNets())
	}
}

// TestTracingChangesNothing runs the same cycle with and without a
// recorder and demands identical output, plus the expected stage spans.
func TestTracingChangesNothing(t *testing.T) {
	h := circuit(t, "Test06", 0.25)
	plain, err := Partition(h, Options{Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace("vcycle")
	traced, err := Partition(h, Options{Levels: 3, Rec: tr})
	if err != nil {
		t.Fatal(err)
	}
	tr.End()
	if plain.Metrics != traced.Metrics {
		t.Fatalf("tracing changed the result: %v vs %v", plain.Metrics, traced.Metrics)
	}
	root := tr.Finish()
	for _, stage := range []string{"coarsen", "coarsest-solve", "sweep", "uncoarsen-L0"} {
		if root.Find(stage) == nil {
			t.Errorf("stage %q missing from the trace", stage)
		}
	}
	if got := root.Find("coarsen").Counters["levels"]; got != int64(traced.Levels) {
		t.Errorf("coarsen span reports %d levels, result has %d", got, traced.Levels)
	}
}

// TestErrors covers the degenerate inputs.
func TestErrors(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddNet(0, 1)
	if _, err := Partition(b.Build(), Options{}); err == nil {
		t.Error("single-net netlist must be rejected")
	}
	b2 := hypergraph.NewBuilder()
	b2.AddNet(0)
	b2.AddNet(0)
	if _, err := Partition(b2.Build(), Options{}); err == nil {
		t.Error("single-module netlist must be rejected")
	}
}

// TestNetSides pins the net-side derivation rule: strict pin majority
// moves a net to R, ties and pinless nets stay on L.
func TestNetSides(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.SetNumModules(4)
	b.AddNet(0, 1)    // both on U -> L
	b.AddNet(2, 3)    // both on W -> R
	b.AddNet(0, 2)    // tie -> L
	b.AddNet(1, 2, 3) // majority W -> R
	h := b.Build()
	p := partition.New(4)
	p.Set(2, partition.W)
	p.Set(3, partition.W)
	got := netSides(h, p)
	want := []bool{false, true, false, true}
	for e := range want {
		if got[e] != want[e] {
			t.Errorf("net %d: inR=%v, want %v", e, got[e], want[e])
		}
	}
}
