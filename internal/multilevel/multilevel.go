// Package multilevel implements a multilevel V-cycle over the paper's
// net-intersection formulation — the "coarsen, solve, uncoarsen, refine"
// paradigm of modern hypergraph partitioners (KaHyPar, SHyPar) applied to
// IG-Match.
//
// The cycle has three phases:
//
//  1. Coarsen: nets are greedily matched by heavy-edge affinity in the
//     intersection graph (the same Section 2.2 edge weights the eigensolve
//     uses) and merged pairwise — each coarse net's pin set is the union of
//     its two fine nets' pins. Modules are untouched, so every level shares
//     the input's module universe. Repeating this halves the net count per
//     level, and with it the cost of the eigensolve and of the
//     O(m·(m+e)) IG-Match sweep.
//  2. Solve: the coarsest level is partitioned by the full IG-Match
//     pipeline (Fiedler ordering of the coarse intersection graph, parallel
//     sweep with incremental matching, König completions).
//  3. Uncoarsen + refine: the winning net bipartition is projected back one
//     level at a time. At each level the projected net partition is
//     re-completed into a module partition by the Phase I/II König
//     machinery (core.CompleteNetPartition) and raced against the module
//     partition carried from the coarser level; the better of the
//     candidates is polished with ratio-cut FM passes against this level's
//     (finer) net structure, and the refined partition re-derives the net
//     sides for the next projection.
//
// With Levels=1 the cycle degenerates to exactly the flat IG-Match run —
// no coarsening, no extra refinement — and is bit-identical to
// core.Partition. At the finest level the coarsest module partition is kept
// as a safety-net candidate and FM never worsens the ratio cut, so the
// final result is provably no worse than the coarsest-level solution
// evaluated on the input netlist.
package multilevel

import (
	"context"
	"errors"
	"fmt"

	"igpart/internal/cluster"
	"igpart/internal/core"
	"igpart/internal/fm"
	"igpart/internal/hypergraph"
	"igpart/internal/netmodel"
	"igpart/internal/obs"
	"igpart/internal/partition"
)

// Options configures a multilevel V-cycle run. The zero value runs a
// three-level cycle with the paper's IG-Match configuration at the
// coarsest level.
type Options struct {
	// Levels is the total number of levels in the V-cycle, counting the
	// input netlist: 1 disables coarsening entirely and reproduces flat
	// IG-Match bit for bit. Default 3. Coarsening may stop early when the
	// net count stops shrinking (see CoarseningRatio) or hits MinNets, so
	// this is an upper bound.
	Levels int
	// CoarseningRatio is the largest acceptable nets-after/nets-before
	// shrink factor per coarsening round: a round that leaves more than
	// this fraction of the nets alive stops the descent (the matching has
	// run out of affine pairs). Must lie in (0, 1]; default 0.9.
	CoarseningRatio float64
	// MinNets stops coarsening once a level has this few nets or fewer,
	// keeping the coarsest eigensolve meaningful. Default 24.
	MinNets int
	// Core configures the coarsest-level IG-Match solve (weight scheme,
	// eigensolver, sweep parallelism). Its IG options also drive the
	// heavy-edge affinity weights used for net matching at every level,
	// and its Ctx (when non-nil) is additionally polled by the V-cycle at
	// every coarsening round and uncoarsening level for cooperative
	// cancellation.
	Core core.Options
	// Refine configures the per-level FM polish.
	Refine fm.Options
	// SkipRefine disables the per-level FM polish (projection and König
	// re-completion only) — the refinement ablation.
	SkipRefine bool
	// Rec, when non-nil, receives the V-cycle's stage spans: one coarsen
	// span with per-round net counts, the coarsest solve's full IG-Match
	// breakdown, and one uncoarsen span per projection level with the
	// completion cut and refinement gain. Tracing never changes the
	// result.
	Rec obs.Recorder
}

func (o Options) withDefaults() Options {
	if o.Levels <= 0 {
		o.Levels = 3
	}
	if o.CoarseningRatio <= 0 || o.CoarseningRatio > 1 {
		o.CoarseningRatio = 0.9
	}
	if o.MinNets <= 0 {
		o.MinNets = 24
	}
	return o
}

// LevelStat records what happened at one uncoarsening level, coarsest
// first. The feasibility and monotonicity tests key off these.
type LevelStat struct {
	// Nets is the level's net count.
	Nets int
	// CompletionOK reports whether the König completion of the projected
	// net bipartition produced a proper module partition.
	CompletionOK bool
	// Completion is the completion's metric set on this level (zero when
	// !CompletionOK).
	Completion partition.Metrics
	// Chosen names the candidate that won at this level before
	// refinement: "carried", "completion", or "coarsest".
	Chosen string
	// Refined is the level's final metric set (on this level's nets)
	// after the FM polish.
	Refined partition.Metrics
	// Passes is the number of FM passes the polish ran.
	Passes int
}

// Result is the outcome of a V-cycle run.
type Result struct {
	// Partition is the final module bipartition on the input netlist.
	Partition *partition.Bipartition
	// Metrics evaluates Partition on the input netlist.
	Metrics partition.Metrics
	// Levels is the number of levels actually built (1 when coarsening was
	// disabled or immediately stalled).
	Levels int
	// CoarsestNets is the net count of the coarsest level solved.
	CoarsestNets int
	// Coarsest is the coarsest-level IG-Match result (for Levels=1 runs it
	// is the entire result).
	Coarsest core.Result
	// CoarsestOnInput evaluates the coarsest-level module partition
	// directly on the input netlist — the baseline the V-cycle's
	// refinement provably never falls behind.
	CoarsestOnInput partition.Metrics
	// LevelStats describes each uncoarsening step, coarsest first; empty
	// for Levels=1 runs.
	LevelStats []LevelStat
}

// Partition runs the multilevel V-cycle on the netlist h.
func Partition(h *hypergraph.Hypergraph, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if h.NumNets() < 2 {
		return Result{}, errors.New("multilevel: need at least 2 nets")
	}
	if h.NumModules() < 2 {
		return Result{}, errors.New("multilevel: need at least 2 modules")
	}
	rec := obs.OrNop(opts.Rec)

	// Phase 1: build the level hierarchy. maps[k] sends level-k nets to
	// level-k+1 nets.
	levels := []*hypergraph.Hypergraph{h}
	var maps [][]int
	csp := rec.StartSpan("coarsen")
	for len(levels) < opts.Levels {
		if err := ctxErr(opts.Core.Ctx); err != nil {
			csp.End()
			return Result{}, fmt.Errorf("multilevel: cancelled during coarsening: %w", err)
		}
		cur := levels[len(levels)-1]
		if cur.NumNets() <= opts.MinNets {
			break
		}
		netMap, k := matchNets(cur, opts.Core.IG)
		if float64(k) > opts.CoarseningRatio*float64(cur.NumNets()) {
			break // matching stalled; deeper levels would not shrink
		}
		coarse, err := hypergraph.ContractNets(cur, netMap, k)
		if err != nil {
			csp.End()
			return Result{}, fmt.Errorf("multilevel: coarsening level %d: %w", len(levels), err)
		}
		levels = append(levels, coarse)
		maps = append(maps, netMap)
	}
	nLevels := len(levels)
	csp.Count("levels", int64(nLevels))
	csp.Count("finest-nets", int64(h.NumNets()))
	csp.Count("coarsest-nets", int64(levels[nLevels-1].NumNets()))
	csp.End()
	reg := rec.Metrics()
	reg.Gauge("multilevel.levels").Set(float64(nLevels))
	reg.Gauge("multilevel.coarsest_nets").Set(float64(levels[nLevels-1].NumNets()))
	if h.NumNets() > 0 {
		reg.Gauge("multilevel.coarsening_ratio").Set(float64(levels[nLevels-1].NumNets()) / float64(h.NumNets()))
	}

	// Phase 2: solve the coarsest level with the full IG-Match pipeline.
	ssp := rec.StartSpan("coarsest-solve")
	coreOpts := opts.Core
	coreOpts.Rec = ssp
	coarseRes, err := core.Partition(levels[nLevels-1], coreOpts)
	ssp.End()
	if err != nil {
		return Result{}, fmt.Errorf("multilevel: coarsest solve: %w", err)
	}
	if nLevels == 1 {
		// Flat IG-Match, bit for bit: no projection, no refinement.
		return Result{
			Partition:       coarseRes.Partition,
			Metrics:         coarseRes.Metrics,
			Levels:          1,
			CoarsestNets:    h.NumNets(),
			Coarsest:        coarseRes,
			CoarsestOnInput: coarseRes.Metrics,
		}, nil
	}

	// The winning net bipartition: the sweep moved NetOrder[:BestRank]
	// to the R side.
	inR := make([]bool, levels[nLevels-1].NumNets())
	for _, e := range coarseRes.NetOrder[:coarseRes.BestRank] {
		inR[e] = true
	}

	res := Result{
		Levels:          nLevels,
		CoarsestNets:    levels[nLevels-1].NumNets(),
		Coarsest:        coarseRes,
		CoarsestOnInput: partition.Evaluate(h, coarseRes.Partition),
	}

	// Phase 3: uncoarsen level by level. Modules are shared across all
	// levels, so the carried partition is directly valid one level down.
	p := coarseRes.Partition.Clone()
	for k := nLevels - 2; k >= 0; k-- {
		if err := ctxErr(opts.Core.Ctx); err != nil {
			return Result{}, fmt.Errorf("multilevel: cancelled during uncoarsening: %w", err)
		}
		lh := levels[k]
		usp := rec.StartSpan(fmt.Sprintf("uncoarsen-L%d", k))
		st := LevelStat{Nets: lh.NumNets(), Chosen: "carried"}

		// Project the net bipartition down and race the König completion
		// against the carried module partition.
		fineInR := make([]bool, lh.NumNets())
		for e := range fineInR {
			fineInR[e] = inR[maps[k][e]]
		}
		best := partition.Evaluate(lh, p)
		if cp, cmet, _, cerr := core.CompleteNetPartition(lh, fineInR); cerr == nil {
			st.CompletionOK = true
			st.Completion = cmet
			if ratioBetter(cmet, best) {
				p, best = cp, cmet
				st.Chosen = "completion"
			}
		}
		if k == 0 {
			// Safety net: the coarsest solution itself, evaluated on the
			// input netlist, guarantees Metrics ≤ CoarsestOnInput.
			if ratioBetter(res.CoarsestOnInput, best) {
				p, best = coarseRes.Partition.Clone(), res.CoarsestOnInput
				st.Chosen = "coarsest"
			}
		}
		usp.Count("completion-cut", int64(st.Completion.CutNets))

		// FM polish against this level's net structure. FM's prefix
		// selection should never worsen the ratio cut; stay defensive and
		// roll back if it somehow did, keeping the level monotone.
		st.Refined = best
		if !opts.SkipRefine {
			trial := p.Clone()
			met, passes, rerr := fm.RefinePartition(lh, trial, opts.Refine)
			if rerr != nil {
				usp.End()
				return Result{}, fmt.Errorf("multilevel: refining level %d: %w", k, rerr)
			}
			st.Passes = passes
			if ratioBetter(met, best) {
				p = trial
				st.Refined = met
			}
		}
		usp.Count("refined-cut", int64(st.Refined.CutNets))
		usp.Count("fm-passes", int64(st.Passes))

		// The refined module partition re-derives the net sides driving
		// the next projection, so per-level gains propagate downward.
		if k > 0 {
			inR = netSides(lh, p)
		}
		usp.End()
		res.LevelStats = append(res.LevelStats, st)
	}

	res.Partition = p
	res.Metrics = partition.Evaluate(h, p)
	reg.Gauge("multilevel.final_ratio").Set(res.Metrics.RatioCut)
	return res, nil
}

// matchNets performs one round of heavy-edge net matching: the
// intersection graph supplies the affinity weights (same scheme as the
// eigensolve) and the greedy maximal matching merges the heaviest
// still-free pairs first.
func matchNets(h *hypergraph.Hypergraph, ig netmodel.IGOptions) ([]int, int) {
	g := netmodel.IntersectionGraph(h, ig)
	var pairs []cluster.WeightedPair
	for i := 0; i < g.N(); i++ {
		cols, vals := g.Row(i)
		for j, c := range cols {
			if c > i {
				pairs = append(pairs, cluster.WeightedPair{A: i, B: c, W: vals[j]})
			}
		}
	}
	return cluster.MatchByWeight(h.NumNets(), pairs)
}

// netSides derives a net bipartition from a module partition: a net joins
// the R side when the majority of its pins sit on side W, with ties (and
// pinless nets) staying on the L side — deterministic by construction.
func netSides(h *hypergraph.Hypergraph, p *partition.Bipartition) []bool {
	inR := make([]bool, h.NumNets())
	for e := 0; e < h.NumNets(); e++ {
		onW := 0
		for _, v := range h.Pins(e) {
			if p.Side(v) == partition.W {
				onW++
			}
		}
		inR[e] = 2*onW > h.NetSize(e)
	}
	return inR
}

// ctxErr polls an optional context: nil contexts never cancel.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// ratioBetter orders candidate partitions the way the sweep does:
// primarily by ratio cut, then by fewer cut nets.
func ratioBetter(a, b partition.Metrics) bool {
	if a.RatioCut != b.RatioCut {
		return a.RatioCut < b.RatioCut
	}
	return a.CutNets < b.CutNets
}
