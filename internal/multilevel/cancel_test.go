package multilevel

import (
	"context"
	"errors"
	"testing"

	"igpart/internal/core"
)

func TestVCycleCancelled(t *testing.T) {
	h := circuit(t, "bm1", 0.5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Partition(h, Options{Levels: 3, Core: core.Options{Ctx: ctx}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Partition = %v, want wrapped context.Canceled", err)
	}
}

func TestVCycleBackgroundContextHarmless(t *testing.T) {
	h := circuit(t, "bm1", 0.3)
	plain, err := Partition(h, Options{Levels: 2})
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	withCtx, err := Partition(h, Options{Levels: 2, Core: core.Options{Ctx: context.Background()}})
	if err != nil {
		t.Fatalf("with ctx: %v", err)
	}
	if plain.Metrics != withCtx.Metrics {
		t.Fatalf("background context changed the V-cycle result: %+v vs %+v", plain.Metrics, withCtx.Metrics)
	}
}
