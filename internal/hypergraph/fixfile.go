package hypergraph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// This file implements the hMETIS fixed-vertex (.fix) format: one line per
// module, containing the part index the module is pinned to, or -1 for
// free modules. It pairs with the fixed-module support in the FM engine
// (I/O pads and pre-placed macros keep their sides during refinement).

// FixAssignment is the parsed content of a .fix file: Part[v] is the
// pinned part of module v, or −1 when v is free.
type FixAssignment struct {
	Part []int
}

// NumFixed counts the pinned modules.
func (f FixAssignment) NumFixed() int {
	k := 0
	for _, p := range f.Part {
		if p >= 0 {
			k++
		}
	}
	return k
}

// Mask returns the boolean fixed-mask the FM engine consumes.
func (f FixAssignment) Mask() []bool {
	m := make([]bool, len(f.Part))
	for v, p := range f.Part {
		m[v] = p >= 0
	}
	return m
}

// ReadFix parses a .fix stream for a netlist with n modules. maxPart bounds
// the accepted part indices (2 for bipartitioning).
func ReadFix(r io.Reader, n, maxPart int) (FixAssignment, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	f := FixAssignment{Part: make([]int, 0, n)}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") || strings.HasPrefix(line, "#") {
			continue
		}
		p, err := strconv.Atoi(line)
		if err != nil {
			return FixAssignment{}, fmt.Errorf("fix line %d: bad part %q", lineNo, line)
		}
		if p < -1 || p >= maxPart {
			return FixAssignment{}, fmt.Errorf("fix line %d: part %d outside [-1,%d)", lineNo, p, maxPart)
		}
		f.Part = append(f.Part, p)
	}
	if err := sc.Err(); err != nil {
		return FixAssignment{}, err
	}
	if len(f.Part) != n {
		return FixAssignment{}, fmt.Errorf("fix: %d lines for %d modules", len(f.Part), n)
	}
	return f, nil
}

// WriteFix writes a .fix stream.
func WriteFix(w io.Writer, f FixAssignment) error {
	bw := bufio.NewWriter(w)
	for _, p := range f.Part {
		fmt.Fprintf(bw, "%d\n", p)
	}
	return bw.Flush()
}

// FixPin names one pinned module for a k-way run: the module called
// Module is pinned to part Part. It is the wire format the service's
// fix-lists use, resolved against a netlist by FixFromPins.
type FixPin struct {
	Module string `json:"module"`
	Part   int    `json:"part"`
}

// FixFromPins resolves a named pin list against h for a k-part run. It
// rejects part indices outside [0,k), module names h does not contain,
// and a module named twice with different parts; exact duplicates are
// tolerated. The result leaves every unnamed module free (−1).
func FixFromPins(h *Hypergraph, pins []FixPin, k int) (FixAssignment, error) {
	n := h.NumModules()
	f := FixAssignment{Part: make([]int, n)}
	for v := range f.Part {
		f.Part[v] = -1
	}
	if len(pins) == 0 {
		return f, nil
	}
	idx := make(map[string]int, n)
	for v := 0; v < n; v++ {
		idx[h.ModuleName(v)] = v
	}
	for _, p := range pins {
		if p.Part < 0 || p.Part >= k {
			return FixAssignment{}, fmt.Errorf("fix: module %q pinned to part %d outside [0,%d)", p.Module, p.Part, k)
		}
		v, ok := idx[p.Module]
		if !ok {
			return FixAssignment{}, fmt.Errorf("fix: unknown module %q", p.Module)
		}
		if f.Part[v] >= 0 && f.Part[v] != p.Part {
			return FixAssignment{}, fmt.Errorf("fix: module %q pinned to both part %d and part %d", p.Module, f.Part[v], p.Part)
		}
		f.Part[v] = p.Part
	}
	return f, nil
}

// LoadFix reads a .fix file for a netlist with n modules.
func LoadFix(path string, n, maxPart int) (FixAssignment, error) {
	fl, err := os.Open(path)
	if err != nil {
		return FixAssignment{}, err
	}
	defer fl.Close()
	return ReadFix(fl, n, maxPart)
}
