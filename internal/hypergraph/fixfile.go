package hypergraph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// This file implements the hMETIS fixed-vertex (.fix) format: one line per
// module, containing the part index the module is pinned to, or -1 for
// free modules. It pairs with the fixed-module support in the FM engine
// (I/O pads and pre-placed macros keep their sides during refinement).

// FixAssignment is the parsed content of a .fix file: Part[v] is the
// pinned part of module v, or −1 when v is free.
type FixAssignment struct {
	Part []int
}

// NumFixed counts the pinned modules.
func (f FixAssignment) NumFixed() int {
	k := 0
	for _, p := range f.Part {
		if p >= 0 {
			k++
		}
	}
	return k
}

// Mask returns the boolean fixed-mask the FM engine consumes.
func (f FixAssignment) Mask() []bool {
	m := make([]bool, len(f.Part))
	for v, p := range f.Part {
		m[v] = p >= 0
	}
	return m
}

// ReadFix parses a .fix stream for a netlist with n modules. maxPart bounds
// the accepted part indices (2 for bipartitioning).
func ReadFix(r io.Reader, n, maxPart int) (FixAssignment, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	f := FixAssignment{Part: make([]int, 0, n)}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") || strings.HasPrefix(line, "#") {
			continue
		}
		p, err := strconv.Atoi(line)
		if err != nil {
			return FixAssignment{}, fmt.Errorf("fix line %d: bad part %q", lineNo, line)
		}
		if p < -1 || p >= maxPart {
			return FixAssignment{}, fmt.Errorf("fix line %d: part %d outside [-1,%d)", lineNo, p, maxPart)
		}
		f.Part = append(f.Part, p)
	}
	if err := sc.Err(); err != nil {
		return FixAssignment{}, err
	}
	if len(f.Part) != n {
		return FixAssignment{}, fmt.Errorf("fix: %d lines for %d modules", len(f.Part), n)
	}
	return f, nil
}

// WriteFix writes a .fix stream.
func WriteFix(w io.Writer, f FixAssignment) error {
	bw := bufio.NewWriter(w)
	for _, p := range f.Part {
		fmt.Fprintf(bw, "%d\n", p)
	}
	return bw.Flush()
}

// LoadFix reads a .fix file for a netlist with n modules.
func LoadFix(path string, n, maxPart int) (FixAssignment, error) {
	fl, err := os.Open(path)
	if err != nil {
		return FixAssignment{}, err
	}
	defer fl.Close()
	return ReadFix(fl, n, maxPart)
}
