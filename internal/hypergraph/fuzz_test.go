package hypergraph

import (
	"bytes"
	"strings"
	"testing"
)

// The fuzz targets assert the parsers never panic and that anything they
// accept is internally consistent and round-trips. `go test` runs the seed
// corpus; `go test -fuzz=FuzzReadHGR ./internal/hypergraph` explores.

func FuzzReadHGR(f *testing.F) {
	f.Add("2 3\n1 2\n2 3\n")
	f.Add("% c\n1 2 10\n1 2\n3\n4\n")
	f.Add("0 0\n")
	f.Add("1 1\n1\n")
	f.Add("2 3 10\n1\n2 3\n1\n1\n1\n")
	f.Fuzz(func(t *testing.T, in string) {
		h, err := ReadHGR(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("accepted inconsistent netlist: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteHGR(&buf, h); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		h2, err := ReadHGR(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if h2.NumModules() != h.NumModules() || h2.NumNets() != h.NumNets() || h2.NumPins() != h.NumPins() {
			t.Fatal("round trip changed sizes")
		}
	})
}

func FuzzReadNetlist(f *testing.F) {
	f.Add("module a\nnet n : a b\n")
	f.Add("net x : p q r\nmodule p 4\n")
	f.Add("# only a comment\n")
	f.Fuzz(func(t *testing.T, in string) {
		h, err := ReadNetlist(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("accepted inconsistent netlist: %v", err)
		}
	})
}

func FuzzReadBookshelf(f *testing.F) {
	f.Add("UCLA nodes 1.0\nNumNodes : 2\na 1 1\nb 2 2\n",
		"UCLA nets 1.0\nNumNets : 1\nNetDegree : 2 n\n a I\n b O\n")
	f.Add("a 1 1\n", "NetDegree : 1\n a\n")
	f.Add("", "")
	f.Fuzz(func(t *testing.T, nodes, nets string) {
		h, err := ReadBookshelf(strings.NewReader(nodes), strings.NewReader(nets))
		if err != nil {
			return
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("accepted inconsistent netlist: %v", err)
		}
		var nb, eb bytes.Buffer
		if err := WriteBookshelf(&nb, &eb, h); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		h2, err := ReadBookshelf(&nb, &eb)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if h2.NumPins() != h.NumPins() {
			t.Fatal("round trip changed pin count")
		}
	})
}
