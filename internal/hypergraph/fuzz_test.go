package hypergraph

import (
	"bytes"
	"strings"
	"testing"
)

// The fuzz targets assert the parsers never panic and that anything they
// accept is internally consistent and round-trips. `go test` runs the seed
// corpus; `go test -fuzz=FuzzReadHGR ./internal/hypergraph` explores.

func FuzzReadHGR(f *testing.F) {
	f.Add("2 3\n1 2\n2 3\n")
	f.Add("% c\n1 2 10\n1 2\n3\n4\n")
	f.Add("0 0\n")
	f.Add("1 1\n1\n")
	f.Add("2 3 10\n1\n2 3\n1\n1\n1\n")
	f.Fuzz(func(t *testing.T, in string) {
		h, err := ReadHGR(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("accepted inconsistent netlist: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteHGR(&buf, h); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		h2, err := ReadHGR(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if h2.NumModules() != h.NumModules() || h2.NumNets() != h.NumNets() || h2.NumPins() != h.NumPins() {
			t.Fatal("round trip changed sizes")
		}
	})
}

func FuzzReadNetlist(f *testing.F) {
	f.Add("module a\nnet n : a b\n")
	f.Add("net x : p q r\nmodule p 4\n")
	f.Add("# only a comment\n")
	f.Fuzz(func(t *testing.T, in string) {
		h, err := ReadNetlist(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("accepted inconsistent netlist: %v", err)
		}
	})
}

// FuzzBookshelfRoundTrip drives the writer side: arbitrary
// builder-constructed netlists must survive WriteBookshelf→ReadBookshelf
// exactly — same shape, same pins per net, same names and weights. The
// builder sorts and dedups pins and the writer names unnamed entities
// "m<v>"/"n<e>", so equality is strict, not merely size-preserving.
func FuzzBookshelfRoundTrip(f *testing.F) {
	f.Add(uint8(3), []byte{2, 0, 1, 3, 0, 1, 2})
	f.Add(uint8(1), []byte{})
	f.Add(uint8(7), []byte{5, 6, 6, 1, 2, 3, 0, 2, 4, 5})
	f.Fuzz(func(t *testing.T, nMod uint8, data []byte) {
		n := int(nMod)%24 + 1
		b := NewBuilder().SetNumModules(n)
		// Decode data as a stream of nets: one size byte, then that many
		// pin bytes (each mod n). Degenerate nets are fine — the builder
		// dedups pins and the format allows single-pin nets.
		for i := 0; i < len(data); {
			size := int(data[i])%6 + 1
			i++
			pins := make([]int, 0, size)
			for j := 0; j < size && i < len(data); j++ {
				pins = append(pins, int(data[i])%n)
				i++
			}
			if len(pins) == 0 {
				break
			}
			b.AddNet(pins...)
		}
		h := b.Build()

		var nb, eb bytes.Buffer
		if err := WriteBookshelf(&nb, &eb, h); err != nil {
			t.Fatalf("write failed: %v", err)
		}
		h2, err := ReadBookshelf(&nb, &eb)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if h2.NumModules() != h.NumModules() || h2.NumNets() != h.NumNets() || h2.NumPins() != h.NumPins() {
			t.Fatalf("shape changed: %d/%d/%d -> %d/%d/%d",
				h.NumModules(), h.NumNets(), h.NumPins(),
				h2.NumModules(), h2.NumNets(), h2.NumPins())
		}
		for v := 0; v < h.NumModules(); v++ {
			if h2.ModuleName(v) != h.ModuleName(v) {
				t.Fatalf("module %d name %q -> %q", v, h.ModuleName(v), h2.ModuleName(v))
			}
			if h2.ModuleWeight(v) != h.ModuleWeight(v) {
				t.Fatalf("module %d weight %d -> %d", v, h.ModuleWeight(v), h2.ModuleWeight(v))
			}
		}
		for e := 0; e < h.NumNets(); e++ {
			if h2.NetName(e) != h.NetName(e) {
				t.Fatalf("net %d name %q -> %q", e, h.NetName(e), h2.NetName(e))
			}
			p1, p2 := h.Pins(e), h2.Pins(e)
			if len(p1) != len(p2) {
				t.Fatalf("net %d degree %d -> %d", e, len(p1), len(p2))
			}
			for k := range p1 {
				if p1[k] != p2[k] {
					t.Fatalf("net %d pins %v -> %v", e, p1, p2)
				}
			}
		}
	})
}

func FuzzReadBookshelf(f *testing.F) {
	f.Add("UCLA nodes 1.0\nNumNodes : 2\na 1 1\nb 2 2\n",
		"UCLA nets 1.0\nNumNets : 1\nNetDegree : 2 n\n a I\n b O\n")
	f.Add("a 1 1\n", "NetDegree : 1\n a\n")
	f.Add("", "")
	f.Fuzz(func(t *testing.T, nodes, nets string) {
		h, err := ReadBookshelf(strings.NewReader(nodes), strings.NewReader(nets))
		if err != nil {
			return
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("accepted inconsistent netlist: %v", err)
		}
		var nb, eb bytes.Buffer
		if err := WriteBookshelf(&nb, &eb, h); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		h2, err := ReadBookshelf(&nb, &eb)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if h2.NumPins() != h.NumPins() {
			t.Fatal("round trip changed pin count")
		}
	})
}
