// Package hypergraph provides the netlist hypergraph representation used
// throughout the library.
//
// A circuit netlist is modeled as a hypergraph H = (V, E'): vertices are
// modules (cells, gates, blocks) and hyperedges are signal nets, each net
// being the set of modules it connects. Modules and nets are identified by
// dense integer indices; optional names may be attached for I/O and
// reporting.
//
// The representation is bidirectional: each net knows its pins (the modules
// it contains) and each module knows its incident nets. Both directions are
// stored as sorted, duplicate-free index slices, which makes intersection
// and traversal operations cheap and deterministic.
package hypergraph

import (
	"errors"
	"fmt"
	"sort"
)

// Hypergraph is an immutable netlist hypergraph. Construct one with a
// Builder or one of the parsers in this package; the zero value is an empty
// netlist with no modules and no nets.
type Hypergraph struct {
	pins     [][]int // net index -> sorted module indices
	incident [][]int // module index -> sorted net indices
	numPins  int     // total number of (net, module) incidences

	moduleNames []string // optional; nil means unnamed
	netNames    []string // optional; nil means unnamed

	weights []int // optional module areas; nil means unit areas
}

// NumModules returns the number of modules (hypergraph vertices).
func (h *Hypergraph) NumModules() int { return len(h.incident) }

// NumNets returns the number of signal nets (hyperedges).
func (h *Hypergraph) NumNets() int { return len(h.pins) }

// NumPins returns the total number of pins, i.e. the sum of net sizes.
func (h *Hypergraph) NumPins() int { return h.numPins }

// Pins returns the sorted module indices connected by net e. The returned
// slice is owned by the hypergraph and must not be modified.
func (h *Hypergraph) Pins(e int) []int { return h.pins[e] }

// NetSize returns the number of pins of net e.
func (h *Hypergraph) NetSize(e int) int { return len(h.pins[e]) }

// Nets returns the sorted net indices incident to module v. The returned
// slice is owned by the hypergraph and must not be modified.
func (h *Hypergraph) Nets(v int) []int { return h.incident[v] }

// Degree returns the number of nets incident to module v.
func (h *Hypergraph) Degree(v int) int { return len(h.incident[v]) }

// ModuleName returns the name of module v, or a synthesized "m<v>" if the
// netlist is unnamed.
func (h *Hypergraph) ModuleName(v int) string {
	if h.moduleNames != nil && h.moduleNames[v] != "" {
		return h.moduleNames[v]
	}
	return fmt.Sprintf("m%d", v)
}

// NetName returns the name of net e, or a synthesized "n<e>" if the netlist
// is unnamed.
func (h *Hypergraph) NetName(e int) string {
	if h.netNames != nil && h.netNames[e] != "" {
		return h.netNames[e]
	}
	return fmt.Sprintf("n%d", e)
}

// ModuleWeight returns the area weight of module v (1 if unweighted).
func (h *Hypergraph) ModuleWeight(v int) int {
	if h.weights == nil {
		return 1
	}
	return h.weights[v]
}

// TotalWeight returns the sum of all module weights.
func (h *Hypergraph) TotalWeight() int {
	if h.weights == nil {
		return len(h.incident)
	}
	t := 0
	for _, w := range h.weights {
		t += w
	}
	return t
}

// Weighted reports whether explicit module areas were supplied.
func (h *Hypergraph) Weighted() bool { return h.weights != nil }

// Clone returns a deep copy of the hypergraph.
func (h *Hypergraph) Clone() *Hypergraph {
	c := &Hypergraph{numPins: h.numPins}
	c.pins = make([][]int, len(h.pins))
	for i, p := range h.pins {
		c.pins[i] = append([]int(nil), p...)
	}
	c.incident = make([][]int, len(h.incident))
	for i, p := range h.incident {
		c.incident[i] = append([]int(nil), p...)
	}
	if h.moduleNames != nil {
		c.moduleNames = append([]string(nil), h.moduleNames...)
	}
	if h.netNames != nil {
		c.netNames = append([]string(nil), h.netNames...)
	}
	if h.weights != nil {
		c.weights = append([]int(nil), h.weights...)
	}
	return c
}

// Validate checks internal consistency: pin/incidence symmetry, sortedness,
// index bounds, and no duplicate pins. It is primarily a testing aid; all
// constructors in this package produce valid hypergraphs.
func (h *Hypergraph) Validate() error {
	n, m := h.NumModules(), h.NumNets()
	pins := 0
	for e, p := range h.pins {
		for i, v := range p {
			if v < 0 || v >= n {
				return fmt.Errorf("net %d: pin %d out of range [0,%d)", e, v, n)
			}
			if i > 0 && p[i-1] >= v {
				return fmt.Errorf("net %d: pins not strictly sorted at position %d", e, i)
			}
			if !containsSorted(h.incident[v], e) {
				return fmt.Errorf("net %d contains module %d but reverse incidence is missing", e, v)
			}
		}
		pins += len(p)
	}
	rev := 0
	for v, inc := range h.incident {
		for i, e := range inc {
			if e < 0 || e >= m {
				return fmt.Errorf("module %d: net %d out of range [0,%d)", v, e, m)
			}
			if i > 0 && inc[i-1] >= e {
				return fmt.Errorf("module %d: incident nets not strictly sorted at position %d", v, i)
			}
			if !containsSorted(h.pins[e], v) {
				return fmt.Errorf("module %d lists net %d but the net does not contain it", v, e)
			}
		}
		rev += len(inc)
	}
	if pins != rev || pins != h.numPins {
		return fmt.Errorf("pin count mismatch: nets=%d modules=%d cached=%d", pins, rev, h.numPins)
	}
	if h.moduleNames != nil && len(h.moduleNames) != n {
		return errors.New("module name table has wrong length")
	}
	if h.netNames != nil && len(h.netNames) != m {
		return errors.New("net name table has wrong length")
	}
	if h.weights != nil && len(h.weights) != n {
		return errors.New("weight table has wrong length")
	}
	return nil
}

func containsSorted(s []int, x int) bool {
	i := sort.SearchInts(s, x)
	return i < len(s) && s[i] == x
}

// Builder assembles a hypergraph incrementally. Modules are implied by the
// largest index mentioned, or may be reserved explicitly with SetNumModules
// (useful for isolated modules that belong to no net).
type Builder struct {
	numModules  int
	pins        [][]int
	netNames    []string
	moduleNames map[int]string
	weights     map[int]int
	named       bool
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{}
}

// SetNumModules reserves at least n modules, so that modules with no nets
// survive into the built hypergraph.
func (b *Builder) SetNumModules(n int) *Builder {
	if n > b.numModules {
		b.numModules = n
	}
	return b
}

// AddNet appends a net connecting the given modules and returns its index.
// Duplicate pins within the net are merged. A net may be empty or have a
// single pin (such nets can never be cut but do occur in real netlists).
func (b *Builder) AddNet(modules ...int) int {
	p := append([]int(nil), modules...)
	sort.Ints(p)
	p = dedupSorted(p)
	for _, v := range p {
		if v < 0 {
			panic(fmt.Sprintf("hypergraph: negative module index %d", v))
		}
		if v+1 > b.numModules {
			b.numModules = v + 1
		}
	}
	b.pins = append(b.pins, p)
	b.netNames = append(b.netNames, "")
	return len(b.pins) - 1
}

// AddNamedNet is AddNet with a net name attached.
func (b *Builder) AddNamedNet(name string, modules ...int) int {
	e := b.AddNet(modules...)
	b.netNames[e] = name
	if name != "" {
		b.named = true
	}
	return e
}

// NameModule attaches a name to module v.
func (b *Builder) NameModule(v int, name string) *Builder {
	if b.moduleNames == nil {
		b.moduleNames = make(map[int]string)
	}
	b.moduleNames[v] = name
	b.SetNumModules(v + 1)
	if name != "" {
		b.named = true
	}
	return b
}

// SetWeight sets the area weight of module v.
func (b *Builder) SetWeight(v, w int) *Builder {
	if b.weights == nil {
		b.weights = make(map[int]int)
	}
	b.weights[v] = w
	b.SetNumModules(v + 1)
	return b
}

// Build finalizes the hypergraph. The Builder remains usable afterwards
// (Build copies everything it needs).
func (b *Builder) Build() *Hypergraph {
	h := &Hypergraph{}
	h.pins = make([][]int, len(b.pins))
	deg := make([]int, b.numModules)
	for e, p := range b.pins {
		h.pins[e] = append([]int(nil), p...)
		h.numPins += len(p)
		for _, v := range p {
			deg[v]++
		}
	}
	h.incident = make([][]int, b.numModules)
	for v, d := range deg {
		h.incident[v] = make([]int, 0, d)
	}
	for e, p := range h.pins {
		for _, v := range p {
			h.incident[v] = append(h.incident[v], e)
		}
	}
	if b.named {
		h.netNames = append([]string(nil), b.netNames...)
		h.moduleNames = make([]string, b.numModules)
		for v, name := range b.moduleNames {
			h.moduleNames[v] = name
		}
	}
	if len(b.weights) > 0 {
		h.weights = make([]int, b.numModules)
		for v := range h.weights {
			h.weights[v] = 1
		}
		for v, w := range b.weights {
			h.weights[v] = w
		}
	}
	return h
}

func dedupSorted(s []int) []int {
	if len(s) < 2 {
		return s
	}
	out := s[:1]
	for _, x := range s[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
