package hypergraph

import (
	"encoding/binary"
	"slices"
	"sort"
)

// canonicalMagic versions the CanonicalBytes encoding; bump it whenever
// the byte layout changes so stale cache entries can never alias fresh
// ones.
const canonicalMagic = "igpart-canon-v1\n"

// CanonicalBytes returns a stable serialization of the netlist's
// partitioning-relevant structure: module count, module area weights
// (when present), and the multiset of net pin sets. The encoding is
// invariant to the order nets were added in and to the order pins were
// listed (pins are stored sorted and deduplicated; nets are emitted
// sorted lexicographically by their pin slices). Module indices are
// preserved; module and net names are excluded — no partitioner in this
// repository reads them.
//
// Two netlists with equal CanonicalBytes are interchangeable inputs for
// every module-partitioning entry point, which makes the hash of these
// bytes a content address for result caching (internal/service keys its
// LRU on SHA-256 of exactly this serialization). Note the guarantee is
// on module partitions: net-indexed outputs such as IGMatchResult.
// NetOrder do refer to the caller's net numbering.
func (h *Hypergraph) CanonicalBytes() []byte {
	order := make([]int, len(h.pins))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return slices.Compare(h.pins[order[a]], h.pins[order[b]]) < 0
	})

	// Uvarint fields are self-delimiting, so the concatenation below is
	// prefix-free and unambiguous.
	buf := make([]byte, 0, len(canonicalMagic)+2*h.numPins+16)
	buf = append(buf, canonicalMagic...)
	buf = binary.AppendUvarint(buf, uint64(len(h.incident)))
	buf = binary.AppendUvarint(buf, uint64(len(h.pins)))
	if h.weights == nil {
		buf = append(buf, 0)
	} else {
		buf = append(buf, 1)
		for _, w := range h.weights {
			buf = binary.AppendVarint(buf, int64(w))
		}
	}
	for _, e := range order {
		p := h.pins[e]
		buf = binary.AppendUvarint(buf, uint64(len(p)))
		for _, v := range p {
			buf = binary.AppendUvarint(buf, uint64(v))
		}
	}
	return buf
}
