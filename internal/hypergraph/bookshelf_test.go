package hypergraph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const nodesSample = `UCLA nodes 1.0
# generated
NumNodes : 4
NumTerminals : 1
  a0  6  9
  a1  1  1
  a2  2  2  terminal
  a3  1  1
`

const netsSample = `UCLA nets 1.0
NumNets : 2
NumPins : 5
NetDegree : 3  clk
  a0 I : 0.5 0.5
  a1 O
  a2 B
NetDegree : 2
  a0 O
  a3 I
`

func TestReadBookshelf(t *testing.T) {
	h, err := ReadBookshelf(strings.NewReader(nodesSample), strings.NewReader(netsSample))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumModules() != 4 || h.NumNets() != 2 || h.NumPins() != 5 {
		t.Fatalf("sizes: %d/%d/%d", h.NumModules(), h.NumNets(), h.NumPins())
	}
	if h.ModuleName(0) != "a0" || h.NetName(0) != "clk" {
		t.Errorf("names lost: %q %q", h.ModuleName(0), h.NetName(0))
	}
	if got := h.ModuleWeight(0); got != 54 { // 6×9
		t.Errorf("weight(a0) = %d, want 54", got)
	}
	if got := h.ModuleWeight(2); got != 4 {
		t.Errorf("weight(a2) = %d, want 4", got)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// Net 0 connects a0,a1,a2 = modules 0,1,2.
	want := []int{0, 1, 2}
	for i, v := range h.Pins(0) {
		if v != want[i] {
			t.Errorf("Pins(0) = %v", h.Pins(0))
			break
		}
	}
}

func TestBookshelfRoundTrip(t *testing.T) {
	h, err := ReadBookshelf(strings.NewReader(nodesSample), strings.NewReader(netsSample))
	if err != nil {
		t.Fatal(err)
	}
	var nodes, nets bytes.Buffer
	if err := WriteBookshelf(&nodes, &nets, h); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBookshelf(&nodes, &nets)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumModules() != h.NumModules() || got.NumNets() != h.NumNets() || got.NumPins() != h.NumPins() {
		t.Fatalf("round trip sizes differ")
	}
	for v := 0; v < h.NumModules(); v++ {
		if got.ModuleWeight(v) != h.ModuleWeight(v) {
			t.Errorf("weight(%d) = %d, want %d", v, got.ModuleWeight(v), h.ModuleWeight(v))
		}
		if got.ModuleName(v) != h.ModuleName(v) {
			t.Errorf("name(%d) = %q, want %q", v, got.ModuleName(v), h.ModuleName(v))
		}
	}
}

func TestBookshelfFiles(t *testing.T) {
	h, err := ReadBookshelf(strings.NewReader(nodesSample), strings.NewReader(netsSample))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	np, ep := filepath.Join(dir, "c.nodes"), filepath.Join(dir, "c.nets")
	if err := SaveBookshelf(np, ep, h); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBookshelf(np, ep)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNets() != 2 {
		t.Errorf("reload nets = %d", got.NumNets())
	}
	if _, err := LoadBookshelf(filepath.Join(dir, "missing.nodes"), ep); err == nil {
		t.Error("missing nodes file accepted")
	}
	if _, err := LoadBookshelf(np, filepath.Join(dir, "missing.nets")); err == nil {
		t.Error("missing nets file accepted")
	}
}

func TestBookshelfErrors(t *testing.T) {
	cases := []struct {
		name, nodes, nets string
	}{
		{"badNumNodes", "NumNodes : x\n", ""},
		{"countMismatch", "NumNodes : 3\na 1 1\n", ""},
		{"dupNode", "a 1 1\na 1 1\n", ""},
		{"badNumNets", "a 1 1\n", "NumNets : q\n"},
		{"badDegree", "a 1 1\n", "NetDegree : x\n"},
		{"emptyDegree", "a 1 1\n", "NetDegree :\n"},
		{"unknownNode", "a 1 1\n", "NetDegree : 1\n  z I\n"},
		{"pinOutsideBlock", "a 1 1\n", "  a I\n"},
		{"shortNet", "a 1 1\nb 1 1\n", "NetDegree : 2\n  a I\n"},
		{"shortThenNew", "a 1 1\nb 1 1\n", "NetDegree : 2\n  a I\nNetDegree : 1\n  b I\n"},
		{"netsCountMismatch", "a 1 1\nb 1 1\n", "NumNets : 5\nNetDegree : 2\n  a I\n  b O\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadBookshelf(strings.NewReader(c.nodes), strings.NewReader(c.nets))
			if err == nil {
				t.Errorf("accepted malformed input")
			}
		})
	}
}

func TestBookshelfUnnamedNetGetsName(t *testing.T) {
	nodes := "a 1 1\nb 1 1\n"
	nets := "NetDegree : 2\n a\n b\n"
	h, err := ReadBookshelf(strings.NewReader(nodes), strings.NewReader(nets))
	if err != nil {
		t.Fatal(err)
	}
	if h.NetName(0) == "" {
		t.Error("unnamed net has empty name")
	}
}
