package hypergraph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// This file implements two textual netlist formats.
//
// HGR format (hMETIS-compatible):
//
//	% comment
//	<numNets> <numModules> [fmt]
//	<pin> <pin> ...        (one line per net, 1-based module indices)
//
// When fmt contains the digit 10, module weight lines follow the net lines
// (one integer per module). fmt 1 (net weights) is accepted but the weights
// are discarded with a diagnostic error, since this library treats nets
// uniformly per the paper.
//
// NET format (named netlist):
//
//	# comment
//	module <name> [weight]
//	net <name> : <module-name> <module-name> ...
//
// Modules may also be introduced implicitly by their first mention in a net
// line.

// WriteHGR writes h in HGR format.
func WriteHGR(w io.Writer, h *Hypergraph) error {
	bw := bufio.NewWriter(w)
	if h.Weighted() {
		fmt.Fprintf(bw, "%d %d 10\n", h.NumNets(), h.NumModules())
	} else {
		fmt.Fprintf(bw, "%d %d\n", h.NumNets(), h.NumModules())
	}
	for e := 0; e < h.NumNets(); e++ {
		pins := h.Pins(e)
		for i, v := range pins {
			if i > 0 {
				bw.WriteByte(' ')
			}
			bw.WriteString(strconv.Itoa(v + 1))
		}
		bw.WriteByte('\n')
	}
	if h.Weighted() {
		for v := 0; v < h.NumModules(); v++ {
			fmt.Fprintf(bw, "%d\n", h.ModuleWeight(v))
		}
	}
	return bw.Flush()
}

// ReadHGR parses HGR input.
func ReadHGR(r io.Reader) (*Hypergraph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line, lineNo, err := nextLine(sc, 0)
	if err != nil {
		return nil, fmt.Errorf("hgr: missing header: %w", err)
	}
	fields := strings.Fields(line)
	if len(fields) < 2 || len(fields) > 3 {
		return nil, fmt.Errorf("hgr line %d: header must be `nets modules [fmt]`", lineNo)
	}
	numNets, err := strconv.Atoi(fields[0])
	if err != nil || numNets < 0 {
		return nil, fmt.Errorf("hgr line %d: bad net count %q", lineNo, fields[0])
	}
	numModules, err := strconv.Atoi(fields[1])
	if err != nil || numModules < 0 {
		return nil, fmt.Errorf("hgr line %d: bad module count %q", lineNo, fields[1])
	}
	hasWeights := false
	if len(fields) == 3 {
		switch fields[2] {
		case "10":
			hasWeights = true
		case "0", "":
		default:
			return nil, fmt.Errorf("hgr line %d: unsupported fmt %q (only module weights, fmt 10, are supported)", lineNo, fields[2])
		}
	}
	b := NewBuilder()
	b.SetNumModules(numModules)
	for i := 0; i < numNets; i++ {
		line, lineNo, err = nextLine(sc, lineNo)
		if err != nil {
			return nil, fmt.Errorf("hgr: expected %d net lines, got %d: %w", numNets, i, err)
		}
		fields = strings.Fields(line)
		pins := make([]int, 0, len(fields))
		for _, f := range fields {
			p, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("hgr line %d: bad pin %q", lineNo, f)
			}
			if p < 1 || p > numModules {
				return nil, fmt.Errorf("hgr line %d: pin %d outside [1,%d]", lineNo, p, numModules)
			}
			pins = append(pins, p-1)
		}
		b.AddNet(pins...)
	}
	if hasWeights {
		for v := 0; v < numModules; v++ {
			line, lineNo, err = nextLine(sc, lineNo)
			if err != nil {
				return nil, fmt.Errorf("hgr: expected %d weight lines, got %d: %w", numModules, v, err)
			}
			w, err := strconv.Atoi(strings.TrimSpace(line))
			if err != nil || w < 0 {
				return nil, fmt.Errorf("hgr line %d: bad module weight %q", lineNo, line)
			}
			b.SetWeight(v, w)
		}
	}
	return b.Build(), nil
}

// nextLine returns the next non-blank, non-comment line.
func nextLine(sc *bufio.Scanner, lineNo int) (string, int, error) {
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") || strings.HasPrefix(line, "#") {
			continue
		}
		return line, lineNo, nil
	}
	if err := sc.Err(); err != nil {
		return "", lineNo, err
	}
	return "", lineNo, io.ErrUnexpectedEOF
}

// WriteNetlist writes h in the named NET format.
func WriteNetlist(w io.Writer, h *Hypergraph) error {
	bw := bufio.NewWriter(w)
	for v := 0; v < h.NumModules(); v++ {
		if h.Weighted() {
			fmt.Fprintf(bw, "module %s %d\n", h.ModuleName(v), h.ModuleWeight(v))
		} else {
			fmt.Fprintf(bw, "module %s\n", h.ModuleName(v))
		}
	}
	for e := 0; e < h.NumNets(); e++ {
		fmt.Fprintf(bw, "net %s :", h.NetName(e))
		for _, v := range h.Pins(e) {
			bw.WriteByte(' ')
			bw.WriteString(h.ModuleName(v))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadNetlist parses the named NET format.
func ReadNetlist(r io.Reader) (*Hypergraph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	b := NewBuilder()
	idx := make(map[string]int)
	lookup := func(name string) int {
		if i, ok := idx[name]; ok {
			return i
		}
		i := len(idx)
		idx[name] = i
		b.NameModule(i, name)
		return i
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "module":
			if len(fields) < 2 || len(fields) > 3 {
				return nil, fmt.Errorf("netlist line %d: want `module <name> [weight]`", lineNo)
			}
			v := lookup(fields[1])
			if len(fields) == 3 {
				w, err := strconv.Atoi(fields[2])
				if err != nil || w < 0 {
					return nil, fmt.Errorf("netlist line %d: bad weight %q", lineNo, fields[2])
				}
				b.SetWeight(v, w)
			}
		case "net":
			colon := -1
			for i, f := range fields {
				if f == ":" {
					colon = i
					break
				}
			}
			if colon != 2 {
				return nil, fmt.Errorf("netlist line %d: want `net <name> : <modules...>`", lineNo)
			}
			pins := make([]int, 0, len(fields)-3)
			for _, f := range fields[3:] {
				pins = append(pins, lookup(f))
			}
			b.AddNamedNet(fields[1], pins...)
		default:
			return nil, fmt.Errorf("netlist line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// LoadFile reads a netlist from path, dispatching on the file extension:
// ".hgr" selects the HGR parser and anything else the named NET parser.
func LoadFile(path string) (*Hypergraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".hgr") {
		return ReadHGR(f)
	}
	return ReadNetlist(f)
}

// SaveFile writes a netlist to path, dispatching on extension like LoadFile.
func SaveFile(path string, h *Hypergraph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".hgr") {
		return WriteHGR(f, h)
	}
	return WriteNetlist(f, h)
}
