package hypergraph

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes the structural properties of a netlist that matter for
// partitioning: size, pin counts, and the net-size and module-degree
// distributions discussed in Section 2 of the paper.
type Stats struct {
	Modules int
	Nets    int
	Pins    int

	MinNetSize int
	MaxNetSize int
	AvgNetSize float64

	MinDegree int
	MaxDegree int
	AvgDegree float64

	NetSizeHist map[int]int // net size -> count
	DegreeHist  map[int]int // module degree -> count
}

// ComputeStats walks the hypergraph once and returns its Stats.
func ComputeStats(h *Hypergraph) Stats {
	s := Stats{
		Modules:     h.NumModules(),
		Nets:        h.NumNets(),
		Pins:        h.NumPins(),
		NetSizeHist: make(map[int]int),
		DegreeHist:  make(map[int]int),
	}
	for e := 0; e < h.NumNets(); e++ {
		k := h.NetSize(e)
		s.NetSizeHist[k]++
		if e == 0 || k < s.MinNetSize {
			s.MinNetSize = k
		}
		if k > s.MaxNetSize {
			s.MaxNetSize = k
		}
	}
	for v := 0; v < h.NumModules(); v++ {
		d := h.Degree(v)
		s.DegreeHist[d]++
		if v == 0 || d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	if s.Nets > 0 {
		s.AvgNetSize = float64(s.Pins) / float64(s.Nets)
	}
	if s.Modules > 0 {
		s.AvgDegree = float64(s.Pins) / float64(s.Modules)
	}
	return s
}

// String renders a short human-readable summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "modules=%d nets=%d pins=%d", s.Modules, s.Nets, s.Pins)
	fmt.Fprintf(&b, " netsize[min=%d avg=%.2f max=%d]", s.MinNetSize, s.AvgNetSize, s.MaxNetSize)
	fmt.Fprintf(&b, " degree[min=%d avg=%.2f max=%d]", s.MinDegree, s.AvgDegree, s.MaxDegree)
	return b.String()
}

// SizeHistogramRows returns the net-size histogram as sorted (size, count)
// rows — the layout of the paper's Table 1 before the "number cut" column.
func (s Stats) SizeHistogramRows() [][2]int {
	sizes := make([]int, 0, len(s.NetSizeHist))
	for k := range s.NetSizeHist {
		sizes = append(sizes, k)
	}
	sort.Ints(sizes)
	rows := make([][2]int, len(sizes))
	for i, k := range sizes {
		rows[i] = [2]int{k, s.NetSizeHist[k]}
	}
	return rows
}

// ConnectedComponents returns, for each module, the index of its connected
// component (two modules are connected when some net contains both), along
// with the number of components. Isolated modules form singleton components.
func ConnectedComponents(h *Hypergraph) (comp []int, n int) {
	comp = make([]int, h.NumModules())
	for i := range comp {
		comp[i] = -1
	}
	netSeen := make([]bool, h.NumNets())
	var queue []int
	for v := range comp {
		if comp[v] >= 0 {
			continue
		}
		comp[v] = n
		queue = append(queue[:0], v)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, e := range h.Nets(u) {
				if netSeen[e] {
					continue
				}
				netSeen[e] = true
				for _, w := range h.Pins(e) {
					if comp[w] < 0 {
						comp[w] = n
						queue = append(queue, w)
					}
				}
			}
		}
		n++
	}
	return comp, n
}

// SubHypergraph extracts the hypergraph induced by the module set keep
// (given as a boolean mask over modules). Nets are restricted to their kept
// pins; nets that lose all pins are dropped. It returns the induced
// hypergraph along with index maps from new module/net indices back to the
// originals.
func SubHypergraph(h *Hypergraph, keep []bool) (sub *Hypergraph, moduleMap, netMap []int) {
	if len(keep) != h.NumModules() {
		panic("hypergraph: keep mask has wrong length")
	}
	newIdx := make([]int, h.NumModules())
	for i := range newIdx {
		newIdx[i] = -1
	}
	for v, k := range keep {
		if k {
			newIdx[v] = len(moduleMap)
			moduleMap = append(moduleMap, v)
		}
	}
	b := NewBuilder()
	b.SetNumModules(len(moduleMap))
	for e := 0; e < h.NumNets(); e++ {
		var pins []int
		for _, v := range h.Pins(e) {
			if newIdx[v] >= 0 {
				pins = append(pins, newIdx[v])
			}
		}
		if len(pins) == 0 {
			continue
		}
		b.AddNet(pins...)
		netMap = append(netMap, e)
	}
	sub = b.Build()
	if h.weights != nil {
		sub.weights = make([]int, len(moduleMap))
		for i, v := range moduleMap {
			sub.weights[i] = h.weights[v]
		}
	}
	return sub, moduleMap, netMap
}

// Contract builds the coarse hypergraph obtained by merging modules into
// clusters. cluster[v] gives the cluster index of module v; cluster indices
// must form a dense range 0..k-1. Nets are re-expressed over clusters with
// duplicate pins merged, and nets reduced to a single cluster are dropped
// (they can never be cut at the coarse level). Cluster weights are the sums
// of their member weights.
func Contract(h *Hypergraph, cluster []int, numClusters int) (*Hypergraph, error) {
	if len(cluster) != h.NumModules() {
		return nil, fmt.Errorf("hypergraph: cluster map has %d entries, want %d", len(cluster), h.NumModules())
	}
	for v, c := range cluster {
		if c < 0 || c >= numClusters {
			return nil, fmt.Errorf("hypergraph: module %d has cluster %d outside [0,%d)", v, c, numClusters)
		}
	}
	b := NewBuilder()
	b.SetNumModules(numClusters)
	buf := make([]int, 0, 16)
	for e := 0; e < h.NumNets(); e++ {
		buf = buf[:0]
		for _, v := range h.Pins(e) {
			buf = append(buf, cluster[v])
		}
		sort.Ints(buf)
		buf = dedupSorted(buf)
		if len(buf) < 2 {
			continue
		}
		b.AddNet(buf...)
	}
	coarse := b.Build()
	coarse.weights = make([]int, numClusters)
	for v, c := range cluster {
		coarse.weights[c] += h.ModuleWeight(v)
	}
	return coarse, nil
}

// ContractNets builds the coarse hypergraph obtained by merging nets into
// groups, leaving the modules untouched — the dual of Contract, and the
// coarsening step of the multilevel V-cycle over the net-intersection
// formulation. netMap[e] gives the coarse net index of fine net e; coarse
// indices must be dense in [0, numCoarse) and every coarse net must absorb
// at least one fine net, so netMap remains a total projection the V-cycle
// can push net bipartitions back through. Each coarse net's pin set is the
// union of its fine nets' pins. Module names and area weights carry over;
// net names do not survive merging.
func ContractNets(h *Hypergraph, netMap []int, numCoarse int) (*Hypergraph, error) {
	if len(netMap) != h.NumNets() {
		return nil, fmt.Errorf("hypergraph: net map has %d entries, want %d", len(netMap), h.NumNets())
	}
	groups := make([][]int, numCoarse)
	for e, c := range netMap {
		if c < 0 || c >= numCoarse {
			return nil, fmt.Errorf("hypergraph: net %d has group %d outside [0,%d)", e, c, numCoarse)
		}
		groups[c] = append(groups[c], e)
	}
	b := NewBuilder()
	b.SetNumModules(h.NumModules())
	var buf []int
	for c, group := range groups {
		if len(group) == 0 {
			return nil, fmt.Errorf("hypergraph: coarse net %d absorbed no fine net", c)
		}
		buf = buf[:0]
		for _, e := range group {
			buf = append(buf, h.Pins(e)...)
		}
		b.AddNet(buf...) // AddNet sorts and dedups the union
	}
	coarse := b.Build()
	if h.moduleNames != nil {
		coarse.moduleNames = append([]string(nil), h.moduleNames...)
	}
	if h.weights != nil {
		coarse.weights = append([]int(nil), h.weights...)
	}
	return coarse, nil
}
