package hypergraph

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadFix(t *testing.T) {
	in := "% pads\n0\n-1\n1\n-1\n"
	f, err := ReadFix(strings.NewReader(in), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumFixed() != 2 {
		t.Errorf("NumFixed = %d, want 2", f.NumFixed())
	}
	want := []int{0, -1, 1, -1}
	for i, p := range want {
		if f.Part[i] != p {
			t.Errorf("Part[%d] = %d, want %d", i, f.Part[i], p)
		}
	}
	mask := f.Mask()
	if !mask[0] || mask[1] || !mask[2] || mask[3] {
		t.Errorf("Mask = %v", mask)
	}
}

func TestReadFixErrors(t *testing.T) {
	cases := []struct {
		name, in string
		n        int
	}{
		{"shortFile", "0\n", 2},
		{"longFile", "0\n1\n-1\n", 2},
		{"badInt", "x\n", 1},
		{"partTooBig", "2\n", 1},
		{"partTooSmall", "-2\n", 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadFix(strings.NewReader(c.in), c.n, 2); err == nil {
				t.Error("accepted malformed fix file")
			}
		})
	}
}

func TestFixRoundTrip(t *testing.T) {
	f := FixAssignment{Part: []int{-1, 0, 1, -1, 0}}
	var buf bytes.Buffer
	if err := WriteFix(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFix(&buf, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Part {
		if got.Part[i] != f.Part[i] {
			t.Errorf("Part[%d] = %d, want %d", i, got.Part[i], f.Part[i])
		}
	}
}

func TestLoadFix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.fix")
	f := FixAssignment{Part: []int{0, -1}}
	buf := &bytes.Buffer{}
	if err := WriteFix(buf, f); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFix(path, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumFixed() != 1 {
		t.Errorf("NumFixed = %d", got.NumFixed())
	}
	if _, err := LoadFix(filepath.Join(dir, "absent.fix"), 2, 2); err == nil {
		t.Error("missing file accepted")
	}
}

func TestFixFromPins(t *testing.T) {
	b := NewBuilder().SetNumModules(4)
	b.NameModule(0, "cpu").NameModule(1, "ram")
	b.AddNet(0, 1)
	b.AddNet(2, 3)
	h := b.Build()

	f, err := FixFromPins(h, []FixPin{
		{Module: "cpu", Part: 2},
		{Module: "m3", Part: 0},  // unnamed modules answer to their synthesized name
		{Module: "cpu", Part: 2}, // exact duplicate tolerated
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, -1, -1, 0}
	for v, p := range want {
		if f.Part[v] != p {
			t.Errorf("Part[%d] = %d, want %d", v, f.Part[v], p)
		}
	}
	if f.NumFixed() != 2 {
		t.Errorf("NumFixed = %d, want 2", f.NumFixed())
	}

	if f, err := FixFromPins(h, nil, 3); err != nil || f.NumFixed() != 0 {
		t.Errorf("empty pin list: %v, %d fixed", err, f.NumFixed())
	}

	bad := []struct {
		name string
		pins []FixPin
		k    int
	}{
		{"unknown module", []FixPin{{Module: "gpu", Part: 0}}, 3},
		{"part at k", []FixPin{{Module: "cpu", Part: 3}}, 3},
		{"negative part", []FixPin{{Module: "cpu", Part: -1}}, 3},
		{"conflicting duplicate", []FixPin{{Module: "cpu", Part: 0}, {Module: "cpu", Part: 1}}, 3},
	}
	for _, tc := range bad {
		if _, err := FixFromPins(h, tc.pins, tc.k); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}
