package hypergraph

import (
	"bytes"
	"math/rand"
	"testing"
)

// buildPermuted assembles the same set of nets under a net-order
// permutation and per-net pin shuffles driven by rng.
func buildPermuted(t *testing.T, nets [][]int, numModules int, rng *rand.Rand) *Hypergraph {
	t.Helper()
	order := rng.Perm(len(nets))
	b := NewBuilder().SetNumModules(numModules)
	for _, i := range order {
		pins := append([]int(nil), nets[i]...)
		rng.Shuffle(len(pins), func(a, c int) { pins[a], pins[c] = pins[c], pins[a] })
		b.AddNet(pins...)
	}
	return b.Build()
}

func TestCanonicalBytesInvariance(t *testing.T) {
	nets := [][]int{
		{0, 1, 2},
		{2, 3},
		{1, 4, 5, 6},
		{0, 6},
		{3, 4},
		{5, 7, 8},
		{2, 3}, // duplicate net: the multiset must be preserved
	}
	ref := buildPermuted(t, nets, 9, rand.New(rand.NewSource(1)))
	want := ref.CanonicalBytes()
	for seed := int64(2); seed < 12; seed++ {
		got := buildPermuted(t, nets, 9, rand.New(rand.NewSource(seed))).CanonicalBytes()
		if !bytes.Equal(got, want) {
			t.Fatalf("seed %d: canonical bytes differ under net/pin reordering", seed)
		}
	}
}

func TestCanonicalBytesDistinguishesStructure(t *testing.T) {
	base := func() *Builder {
		b := NewBuilder()
		b.AddNet(0, 1, 2)
		b.AddNet(2, 3)
		return b
	}
	ref := base().Build().CanonicalBytes()

	// A changed pin set must change the bytes.
	b := NewBuilder()
	b.AddNet(0, 1, 3)
	b.AddNet(2, 3)
	if bytes.Equal(b.Build().CanonicalBytes(), ref) {
		t.Fatal("different pin sets produced equal canonical bytes")
	}

	// An extra isolated module must change the bytes.
	if bytes.Equal(base().SetNumModules(5).Build().CanonicalBytes(), ref) {
		t.Fatal("different module counts produced equal canonical bytes")
	}

	// Dropping the duplicate of a repeated net must change the bytes.
	b = base()
	b.AddNet(2, 3)
	dup := b.Build().CanonicalBytes()
	if bytes.Equal(dup, ref) {
		t.Fatal("net multiplicity ignored by canonical bytes")
	}

	// Area weights must change the bytes.
	if bytes.Equal(base().SetWeight(1, 4).Build().CanonicalBytes(), ref) {
		t.Fatal("module weights ignored by canonical bytes")
	}
}

func TestCanonicalBytesIgnoresNames(t *testing.T) {
	plain := NewBuilder()
	plain.AddNet(0, 1)
	plain.AddNet(1, 2)

	named := NewBuilder()
	named.NameModule(0, "alu").NameModule(2, "rom")
	named.AddNamedNet("clk", 0, 1)
	named.AddNamedNet("rst", 1, 2)

	if !bytes.Equal(plain.Build().CanonicalBytes(), named.Build().CanonicalBytes()) {
		t.Fatal("names changed the canonical bytes; they never affect partitioning")
	}
}
