package hypergraph

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestHGRRoundTrip(t *testing.T) {
	h := paperFigure1()
	var buf bytes.Buffer
	if err := WriteHGR(&buf, h); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHGR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumModules() != h.NumModules() || got.NumNets() != h.NumNets() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d",
			got.NumModules(), got.NumNets(), h.NumModules(), h.NumNets())
	}
	for e := 0; e < h.NumNets(); e++ {
		if !reflect.DeepEqual(got.Pins(e), h.Pins(e)) {
			t.Errorf("net %d pins = %v, want %v", e, got.Pins(e), h.Pins(e))
		}
	}
}

func TestHGRWeightedRoundTrip(t *testing.T) {
	b := NewBuilder()
	b.AddNet(0, 1)
	b.AddNet(1, 2)
	b.SetWeight(0, 3)
	b.SetWeight(2, 5)
	h := b.Build()
	var buf bytes.Buffer
	if err := WriteHGR(&buf, h); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "2 3 10\n") {
		t.Fatalf("weighted header missing: %q", buf.String())
	}
	got, err := ReadHGR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 3; v++ {
		if got.ModuleWeight(v) != h.ModuleWeight(v) {
			t.Errorf("weight(%d) = %d, want %d", v, got.ModuleWeight(v), h.ModuleWeight(v))
		}
	}
}

func TestReadHGRComments(t *testing.T) {
	in := "% a comment\n\n2 3\n% another\n1 2\n2 3\n"
	h, err := ReadHGR(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumNets() != 2 || h.NumModules() != 3 {
		t.Fatalf("got %d nets, %d modules", h.NumNets(), h.NumModules())
	}
	if !reflect.DeepEqual(h.Pins(0), []int{0, 1}) {
		t.Errorf("Pins(0) = %v", h.Pins(0))
	}
}

func TestReadHGRErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"badHeader", "x y\n"},
		{"negativeNets", "-1 3\n"},
		{"shortNets", "2 3\n1 2\n"},
		{"pinRange", "1 3\n4\n"},
		{"pinZero", "1 3\n0\n"},
		{"badPin", "1 3\n1 q\n"},
		{"badFmt", "1 3 11\n1 2\n"},
		{"netWeightsUnsupported", "1 3 1\n5 1 2\n"},
		{"missingWeights", "1 2 10\n1 2\n1\n"},
		{"badWeight", "1 2 10\n1 2\n-3\n2\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadHGR(strings.NewReader(c.in)); err == nil {
				t.Errorf("ReadHGR(%q) succeeded, want error", c.in)
			}
		})
	}
}

func TestNetlistRoundTrip(t *testing.T) {
	b := NewBuilder()
	b.NameModule(0, "alu")
	b.NameModule(1, "reg")
	b.NameModule(2, "mux")
	b.AddNamedNet("clk", 0, 1, 2)
	b.AddNamedNet("d0", 0, 2)
	b.SetWeight(0, 4)
	h := b.Build()
	var buf bytes.Buffer
	if err := WriteNetlist(&buf, h); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNetlist(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumModules() != 3 || got.NumNets() != 2 {
		t.Fatalf("got %d modules %d nets", got.NumModules(), got.NumNets())
	}
	if got.NetName(0) != "clk" || got.ModuleName(0) != "alu" {
		t.Errorf("names lost: net=%q module=%q", got.NetName(0), got.ModuleName(0))
	}
	if got.ModuleWeight(0) != 4 {
		t.Errorf("weight lost: %d", got.ModuleWeight(0))
	}
}

func TestReadNetlistImplicitModules(t *testing.T) {
	in := "net a : x y z\nnet b : z w\n"
	h, err := ReadNetlist(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumModules() != 4 {
		t.Fatalf("modules = %d, want 4", h.NumModules())
	}
	if h.NumNets() != 2 {
		t.Fatalf("nets = %d, want 2", h.NumNets())
	}
}

func TestReadNetlistErrors(t *testing.T) {
	cases := []string{
		"module\n",
		"module a b c d\n",
		"module a -1\n",
		"module a x\n",
		"net a x y\n", // missing colon
		"frobnicate\n",
	}
	for _, in := range cases {
		if _, err := ReadNetlist(strings.NewReader(in)); err == nil {
			t.Errorf("ReadNetlist(%q) succeeded, want error", in)
		}
	}
}

func TestLoadSaveFile(t *testing.T) {
	dir := t.TempDir()
	h := paperFigure1()

	hgr := filepath.Join(dir, "fig1.hgr")
	if err := SaveFile(hgr, h); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(hgr)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNets() != h.NumNets() {
		t.Errorf("hgr reload nets = %d, want %d", got.NumNets(), h.NumNets())
	}

	net := filepath.Join(dir, "fig1.net")
	if err := SaveFile(net, h); err != nil {
		t.Fatal(err)
	}
	got, err = LoadFile(net)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNets() != h.NumNets() || got.NetName(0) != "s1" {
		t.Errorf("net reload mismatch: nets=%d name=%q", got.NumNets(), got.NetName(0))
	}

	if _, err := LoadFile(filepath.Join(dir, "absent.hgr")); !os.IsNotExist(err) {
		t.Errorf("LoadFile(missing) err = %v, want not-exist", err)
	}
}

func TestHGRRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHypergraph(rng, 25, 40)
		var buf bytes.Buffer
		if err := WriteHGR(&buf, h); err != nil {
			return false
		}
		got, err := ReadHGR(&buf)
		if err != nil {
			return false
		}
		if got.NumModules() != h.NumModules() || got.NumNets() != h.NumNets() {
			return false
		}
		for e := 0; e < h.NumNets(); e++ {
			if !reflect.DeepEqual(got.Pins(e), h.Pins(e)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
