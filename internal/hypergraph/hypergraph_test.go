package hypergraph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// paperFigure1 builds the 6-net, 9-module hypergraph of Figure 1 in the
// paper. Modules are labeled 0..8; nets: s1={0,1}, s2={1,2,3}, s3={3,4},
// s4={4,5,6}, s5={6,7}, s6={7,8,0}.
//
// (The exact figure is illustrative; this instance follows its structure:
// six nets arranged in a ring, alternating 2-pin and 3-pin.)
func paperFigure1() *Hypergraph {
	b := NewBuilder()
	b.AddNamedNet("s1", 0, 1)
	b.AddNamedNet("s2", 1, 2, 3)
	b.AddNamedNet("s3", 3, 4)
	b.AddNamedNet("s4", 4, 5, 6)
	b.AddNamedNet("s5", 6, 7)
	b.AddNamedNet("s6", 7, 8, 0)
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	h := paperFigure1()
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got, want := h.NumModules(), 9; got != want {
		t.Errorf("NumModules = %d, want %d", got, want)
	}
	if got, want := h.NumNets(), 6; got != want {
		t.Errorf("NumNets = %d, want %d", got, want)
	}
	if got, want := h.NumPins(), 15; got != want {
		t.Errorf("NumPins = %d, want %d", got, want)
	}
	if got, want := h.NetSize(1), 3; got != want {
		t.Errorf("NetSize(1) = %d, want %d", got, want)
	}
	if got, want := h.Degree(0), 2; got != want {
		t.Errorf("Degree(0) = %d, want %d", got, want)
	}
	if got, want := h.NetName(3), "s4"; got != want {
		t.Errorf("NetName(3) = %q, want %q", got, want)
	}
	if !reflect.DeepEqual(h.Pins(1), []int{1, 2, 3}) {
		t.Errorf("Pins(1) = %v", h.Pins(1))
	}
	if !reflect.DeepEqual(h.Nets(0), []int{0, 5}) {
		t.Errorf("Nets(0) = %v", h.Nets(0))
	}
}

func TestBuilderDedupsPins(t *testing.T) {
	b := NewBuilder()
	b.AddNet(3, 1, 3, 1, 2)
	h := b.Build()
	if !reflect.DeepEqual(h.Pins(0), []int{1, 2, 3}) {
		t.Errorf("Pins(0) = %v, want [1 2 3]", h.Pins(0))
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestIsolatedModules(t *testing.T) {
	b := NewBuilder()
	b.SetNumModules(5)
	b.AddNet(0, 1)
	h := b.Build()
	if got, want := h.NumModules(), 5; got != want {
		t.Fatalf("NumModules = %d, want %d", got, want)
	}
	if h.Degree(4) != 0 {
		t.Errorf("Degree(4) = %d, want 0", h.Degree(4))
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestEmptyHypergraph(t *testing.T) {
	var h Hypergraph
	if h.NumModules() != 0 || h.NumNets() != 0 || h.NumPins() != 0 {
		t.Errorf("zero Hypergraph not empty: %d/%d/%d", h.NumModules(), h.NumNets(), h.NumPins())
	}
	if err := h.Validate(); err != nil {
		t.Errorf("Validate on zero value: %v", err)
	}
	built := NewBuilder().Build()
	if err := built.Validate(); err != nil {
		t.Errorf("Validate on empty build: %v", err)
	}
}

func TestWeights(t *testing.T) {
	b := NewBuilder()
	b.AddNet(0, 1, 2)
	b.SetWeight(1, 7)
	h := b.Build()
	if !h.Weighted() {
		t.Fatal("Weighted() = false")
	}
	if got := h.ModuleWeight(0); got != 1 {
		t.Errorf("default weight = %d, want 1", got)
	}
	if got := h.ModuleWeight(1); got != 7 {
		t.Errorf("weight(1) = %d, want 7", got)
	}
	if got := h.TotalWeight(); got != 9 {
		t.Errorf("TotalWeight = %d, want 9", got)
	}
	u := paperFigure1()
	if u.Weighted() {
		t.Error("unweighted netlist reports Weighted")
	}
	if got := u.TotalWeight(); got != 9 {
		t.Errorf("unweighted TotalWeight = %d, want 9 (module count)", got)
	}
}

func TestClone(t *testing.T) {
	h := paperFigure1()
	c := h.Clone()
	if err := c.Validate(); err != nil {
		t.Fatalf("clone Validate: %v", err)
	}
	c.pins[0][0] = 99 // mutate the clone's storage
	if h.Pins(0)[0] == 99 {
		t.Error("Clone shares pin storage with the original")
	}
}

func TestComputeStats(t *testing.T) {
	h := paperFigure1()
	s := ComputeStats(h)
	if s.Modules != 9 || s.Nets != 6 || s.Pins != 15 {
		t.Fatalf("stats sizes wrong: %+v", s)
	}
	if s.MinNetSize != 2 || s.MaxNetSize != 3 {
		t.Errorf("net size range [%d,%d], want [2,3]", s.MinNetSize, s.MaxNetSize)
	}
	if s.NetSizeHist[2] != 3 || s.NetSizeHist[3] != 3 {
		t.Errorf("net size hist = %v", s.NetSizeHist)
	}
	if s.AvgNetSize != 2.5 {
		t.Errorf("AvgNetSize = %v, want 2.5", s.AvgNetSize)
	}
	rows := s.SizeHistogramRows()
	if !reflect.DeepEqual(rows, [][2]int{{2, 3}, {3, 3}}) {
		t.Errorf("SizeHistogramRows = %v", rows)
	}
	if s.String() == "" {
		t.Error("String() empty")
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder()
	b.SetNumModules(7)
	b.AddNet(0, 1, 2)
	b.AddNet(2, 3)
	b.AddNet(4, 5)
	// module 6 isolated
	h := b.Build()
	comp, n := ConnectedComponents(h)
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if comp[0] != comp[3] {
		t.Errorf("modules 0 and 3 should share a component: %v", comp)
	}
	if comp[4] != comp[5] || comp[4] == comp[0] {
		t.Errorf("modules 4,5 component wrong: %v", comp)
	}
	if comp[6] == comp[0] || comp[6] == comp[4] {
		t.Errorf("module 6 should be its own component: %v", comp)
	}
}

func TestSubHypergraph(t *testing.T) {
	h := paperFigure1()
	keep := make([]bool, h.NumModules())
	for _, v := range []int{0, 1, 2, 3} {
		keep[v] = true
	}
	sub, moduleMap, netMap := SubHypergraph(h, keep)
	if err := sub.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if sub.NumModules() != 4 {
		t.Fatalf("sub modules = %d, want 4", sub.NumModules())
	}
	// Nets surviving (with ≥1 kept pin): s1{0,1}, s2{1,2,3}, s3{3}, s6{0}.
	if sub.NumNets() != 4 {
		t.Fatalf("sub nets = %d, want 4: netMap=%v", sub.NumNets(), netMap)
	}
	if !reflect.DeepEqual(moduleMap, []int{0, 1, 2, 3}) {
		t.Errorf("moduleMap = %v", moduleMap)
	}
	if !reflect.DeepEqual(netMap, []int{0, 1, 2, 5}) {
		t.Errorf("netMap = %v", netMap)
	}
}

func TestContract(t *testing.T) {
	h := paperFigure1()
	// Merge into 3 clusters of 3 consecutive modules each.
	cluster := []int{0, 0, 0, 1, 1, 1, 2, 2, 2}
	coarse, err := Contract(h, cluster, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := coarse.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if coarse.NumModules() != 3 {
		t.Fatalf("coarse modules = %d, want 3", coarse.NumModules())
	}
	// Internal nets s1{0,1}->{0}, s3 spans clusters 1... let's recount:
	// s1{0,1}->c{0}: dropped. s2{1,2,3}->c{0,1}: kept. s3{3,4}->c{1}: dropped.
	// s4{4,5,6}->c{1,2}: kept. s5{6,7}->c{2}: dropped. s6{7,8,0}->c{2,0}: kept.
	if coarse.NumNets() != 3 {
		t.Fatalf("coarse nets = %d, want 3", coarse.NumNets())
	}
	if got := coarse.ModuleWeight(0); got != 3 {
		t.Errorf("cluster 0 weight = %d, want 3", got)
	}

	if _, err := Contract(h, cluster[:3], 3); err == nil {
		t.Error("Contract accepted short cluster map")
	}
	bad := append([]int(nil), cluster...)
	bad[0] = 5
	if _, err := Contract(h, bad, 3); err == nil {
		t.Error("Contract accepted out-of-range cluster index")
	}
}

// randomHypergraph builds a random netlist for property tests.
func randomHypergraph(rng *rand.Rand, maxModules, maxNets int) *Hypergraph {
	n := 2 + rng.Intn(maxModules-1)
	m := 1 + rng.Intn(maxNets)
	b := NewBuilder()
	b.SetNumModules(n)
	for e := 0; e < m; e++ {
		k := 2 + rng.Intn(5)
		pins := make([]int, k)
		for i := range pins {
			pins[i] = rng.Intn(n)
		}
		b.AddNet(pins...)
	}
	return b.Build()
}

func TestRandomHypergraphsValidate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHypergraph(rng, 40, 60)
		return h.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPinIncidenceDuality(t *testing.T) {
	// Sum of net sizes equals sum of module degrees equals NumPins.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHypergraph(rng, 30, 50)
		sizes, degs := 0, 0
		for e := 0; e < h.NumNets(); e++ {
			sizes += h.NetSize(e)
		}
		for v := 0; v < h.NumModules(); v++ {
			degs += h.Degree(v)
		}
		return sizes == degs && sizes == h.NumPins()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestContractPreservesPinsUpperBound(t *testing.T) {
	// Coarse hypergraph can never have more pins than the original.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomHypergraph(rng, 30, 50)
		k := 1 + rng.Intn(h.NumModules())
		cluster := make([]int, h.NumModules())
		for v := range cluster {
			cluster[v] = rng.Intn(k)
		}
		// Densify cluster ids.
		seen := map[int]int{}
		for v, c := range cluster {
			if _, ok := seen[c]; !ok {
				seen[c] = len(seen)
			}
			cluster[v] = seen[c]
		}
		coarse, err := Contract(h, cluster, len(seen))
		if err != nil {
			return false
		}
		return coarse.NumPins() <= h.NumPins() && coarse.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNegativePinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddNet accepted a negative module index")
		}
	}()
	NewBuilder().AddNet(-1, 2)
}

func TestContractNets(t *testing.T) {
	b := NewBuilder()
	b.SetWeight(0, 3)
	b.AddNet(0, 1)
	b.AddNet(1, 2)
	b.AddNet(2, 3)
	b.AddNet(3, 4)
	h := b.Build()
	// Merge nets {0,1} and {2,3}.
	coarse, err := ContractNets(h, []int{0, 0, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := coarse.Validate(); err != nil {
		t.Fatalf("coarse hypergraph inconsistent: %v", err)
	}
	if coarse.NumModules() != h.NumModules() {
		t.Fatalf("modules changed: %d -> %d", h.NumModules(), coarse.NumModules())
	}
	if coarse.NumNets() != 2 {
		t.Fatalf("want 2 coarse nets, got %d", coarse.NumNets())
	}
	wantPins := [][]int{{0, 1, 2}, {2, 3, 4}}
	for e, want := range wantPins {
		got := coarse.Pins(e)
		if len(got) != len(want) {
			t.Fatalf("coarse net %d: pins %v, want %v", e, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("coarse net %d: pins %v, want %v", e, got, want)
			}
		}
	}
	if coarse.ModuleWeight(0) != 3 {
		t.Errorf("module weight lost: got %d, want 3", coarse.ModuleWeight(0))
	}
}

func TestContractNetsErrors(t *testing.T) {
	b := NewBuilder()
	b.AddNet(0, 1)
	b.AddNet(1, 2)
	h := b.Build()
	if _, err := ContractNets(h, []int{0}, 1); err == nil {
		t.Error("short net map accepted")
	}
	if _, err := ContractNets(h, []int{0, 2}, 2); err == nil {
		t.Error("out-of-range group accepted")
	}
	if _, err := ContractNets(h, []int{0, 0}, 2); err == nil {
		t.Error("empty coarse net accepted")
	}
}
