package hypergraph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// This file implements the UCLA Bookshelf netlist format (the .nodes /
// .nets file pair used by placement and partitioning benchmarks since the
// ISPD98 suites):
//
//	.nodes:  UCLA nodes 1.0
//	         NumNodes : <n>
//	         NumTerminals : <t>
//	         <name> <width> <height> [terminal]
//
//	.nets:   UCLA nets 1.0
//	         NumNets : <m>
//	         NumPins : <p>
//	         NetDegree : <k> [name]
//	         <nodename> [I|O|B] [: <xoff> <yoff>]
//
// Module area weights are width×height rounded to the nearest integer
// (minimum 1). Pin directions and offsets are parsed and discarded — the
// partitioning formulations here are direction-agnostic.

// ReadBookshelf parses a Bookshelf .nodes/.nets pair.
func ReadBookshelf(nodes, nets io.Reader) (*Hypergraph, error) {
	b := NewBuilder()
	idx := make(map[string]int)

	// --- .nodes ---
	sc := bufio.NewScanner(nodes)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo := 0
	declared := -1
	weighted := false
	for sc.Scan() {
		lineNo++
		line := bookshelfLine(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "UCLA") {
			continue
		}
		if key, val, ok := bookshelfHeader(line); ok {
			switch key {
			case "NumNodes":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("bookshelf nodes line %d: bad NumNodes %q", lineNo, val)
				}
				declared = n
			case "NumTerminals":
				// informational
			}
			continue
		}
		fields := strings.Fields(line)
		name := fields[0]
		if _, dup := idx[name]; dup {
			return nil, fmt.Errorf("bookshelf nodes line %d: duplicate node %q", lineNo, name)
		}
		v := len(idx)
		idx[name] = v
		b.NameModule(v, name)
		if len(fields) >= 3 {
			wd, errW := strconv.ParseFloat(fields[1], 64)
			ht, errH := strconv.ParseFloat(fields[2], 64)
			if errW == nil && errH == nil {
				area := int(wd*ht + 0.5)
				if area < 1 {
					area = 1
				}
				if area != 1 {
					weighted = true
				}
				b.SetWeight(v, area)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if declared >= 0 && declared != len(idx) {
		return nil, fmt.Errorf("bookshelf nodes: NumNodes %d but %d node lines", declared, len(idx))
	}
	_ = weighted

	// --- .nets ---
	sc = bufio.NewScanner(nets)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo = 0
	declaredNets := -1
	var pins []int
	var netName string
	remaining := 0
	flush := func() {
		if netName != "" || len(pins) > 0 {
			b.AddNamedNet(netName, pins...)
			pins = pins[:0]
			netName = ""
		}
	}
	for sc.Scan() {
		lineNo++
		line := bookshelfLine(sc.Text())
		if line == "" || strings.HasPrefix(line, "UCLA") {
			continue
		}
		if key, val, ok := bookshelfHeader(line); ok {
			switch key {
			case "NumNets":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("bookshelf nets line %d: bad NumNets %q", lineNo, val)
				}
				declaredNets = n
				continue
			case "NumPins":
				continue
			case "NetDegree":
				if remaining > 0 {
					return nil, fmt.Errorf("bookshelf nets line %d: previous net short by %d pins", lineNo, remaining)
				}
				flush()
				fields := strings.Fields(val)
				if len(fields) == 0 {
					return nil, fmt.Errorf("bookshelf nets line %d: NetDegree without a count", lineNo)
				}
				k, err := strconv.Atoi(fields[0])
				if err != nil || k < 0 {
					return nil, fmt.Errorf("bookshelf nets line %d: bad NetDegree %q", lineNo, fields[0])
				}
				remaining = k
				if len(fields) > 1 {
					netName = fields[1]
				} else {
					netName = fmt.Sprintf("n%d", countNets(b))
				}
				continue
			}
		}
		// A pin line.
		if remaining <= 0 {
			return nil, fmt.Errorf("bookshelf nets line %d: pin outside a NetDegree block", lineNo)
		}
		fields := strings.Fields(line)
		v, ok := idx[fields[0]]
		if !ok {
			return nil, fmt.Errorf("bookshelf nets line %d: unknown node %q", lineNo, fields[0])
		}
		pins = append(pins, v)
		remaining--
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if remaining > 0 {
		return nil, fmt.Errorf("bookshelf nets: last net short by %d pins", remaining)
	}
	flush()
	h := b.Build()
	if declaredNets >= 0 && declaredNets != h.NumNets() {
		return nil, fmt.Errorf("bookshelf nets: NumNets %d but parsed %d", declaredNets, h.NumNets())
	}
	return h, nil
}

// countNets reports how many nets the builder holds so far.
func countNets(b *Builder) int { return len(b.pins) }

// bookshelfLine strips comments and whitespace.
func bookshelfLine(s string) string {
	if i := strings.IndexByte(s, '#'); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

// bookshelfHeader parses "Key : value" lines.
func bookshelfHeader(line string) (key, val string, ok bool) {
	i := strings.Index(line, ":")
	if i < 0 {
		return "", "", false
	}
	key = strings.TrimSpace(line[:i])
	val = strings.TrimSpace(line[i+1:])
	// Headers have a single-word key starting with an ASCII letter and, to
	// distinguish them from pin lines with offsets ("o1 I : 0 0"), no
	// space inside the key.
	if key == "" || strings.ContainsAny(key, " \t") {
		return "", "", false
	}
	return key, val, true
}

// WriteBookshelf writes the .nodes/.nets pair for h. Module weights are
// emitted as width=weight, height=1.
func WriteBookshelf(nodes, nets io.Writer, h *Hypergraph) error {
	nw := bufio.NewWriter(nodes)
	fmt.Fprintln(nw, "UCLA nodes 1.0")
	fmt.Fprintf(nw, "NumNodes : %d\n", h.NumModules())
	fmt.Fprintf(nw, "NumTerminals : 0\n")
	for v := 0; v < h.NumModules(); v++ {
		fmt.Fprintf(nw, "  %s %d 1\n", h.ModuleName(v), h.ModuleWeight(v))
	}
	if err := nw.Flush(); err != nil {
		return err
	}
	ew := bufio.NewWriter(nets)
	fmt.Fprintln(ew, "UCLA nets 1.0")
	fmt.Fprintf(ew, "NumNets : %d\n", h.NumNets())
	fmt.Fprintf(ew, "NumPins : %d\n", h.NumPins())
	for e := 0; e < h.NumNets(); e++ {
		fmt.Fprintf(ew, "NetDegree : %d %s\n", h.NetSize(e), h.NetName(e))
		for _, v := range h.Pins(e) {
			fmt.Fprintf(ew, "  %s B\n", h.ModuleName(v))
		}
	}
	return ew.Flush()
}

// LoadBookshelf reads a netlist from a .nodes/.nets file pair.
func LoadBookshelf(nodesPath, netsPath string) (*Hypergraph, error) {
	nf, err := os.Open(nodesPath)
	if err != nil {
		return nil, err
	}
	defer nf.Close()
	ef, err := os.Open(netsPath)
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	return ReadBookshelf(nf, ef)
}

// SaveBookshelf writes a netlist to a .nodes/.nets file pair.
func SaveBookshelf(nodesPath, netsPath string, h *Hypergraph) error {
	nf, err := os.Create(nodesPath)
	if err != nil {
		return err
	}
	defer nf.Close()
	ef, err := os.Create(netsPath)
	if err != nil {
		return err
	}
	defer ef.Close()
	return WriteBookshelf(nf, ef, h)
}
