// Package partition defines the module bipartition type and the cut
// metrics the paper optimizes: net cut and the Wei–Cheng ratio cut
// e(U,W) / (|U|·|W|).
package partition

import (
	"fmt"
	"math"
	"sort"

	"igpart/internal/hypergraph"
)

// Side identifies one side of a bipartition.
type Side uint8

// The two sides of a bipartition, named U and W after the paper.
const (
	U Side = 0
	W Side = 1
)

// Opposite returns the other side.
func (s Side) Opposite() Side { return s ^ 1 }

// String implements fmt.Stringer.
func (s Side) String() string {
	if s == U {
		return "U"
	}
	return "W"
}

// Bipartition assigns every module of a netlist to side U or W.
type Bipartition struct {
	side []Side
}

// New returns a bipartition of n modules with every module on side U.
func New(n int) *Bipartition {
	return &Bipartition{side: make([]Side, n)}
}

// FromSides wraps an explicit side assignment (the slice is not copied).
func FromSides(sides []Side) *Bipartition {
	return &Bipartition{side: sides}
}

// NumModules returns the number of modules covered by the bipartition.
func (p *Bipartition) NumModules() int { return len(p.side) }

// Side returns the side of module v.
func (p *Bipartition) Side(v int) Side { return p.side[v] }

// Set assigns module v to side s.
func (p *Bipartition) Set(v int, s Side) { p.side[v] = s }

// Sides exposes the underlying side slice (owned by the bipartition).
func (p *Bipartition) Sides() []Side { return p.side }

// Clone returns an independent copy.
func (p *Bipartition) Clone() *Bipartition {
	return &Bipartition{side: append([]Side(nil), p.side...)}
}

// Sizes returns the number of modules on each side.
func (p *Bipartition) Sizes() (nu, nw int) {
	for _, s := range p.side {
		if s == U {
			nu++
		} else {
			nw++
		}
	}
	return nu, nw
}

// Weights returns the total module weight on each side of the partition.
func (p *Bipartition) Weights(h *hypergraph.Hypergraph) (wu, ww int) {
	for v, s := range p.side {
		if s == U {
			wu += h.ModuleWeight(v)
		} else {
			ww += h.ModuleWeight(v)
		}
	}
	return wu, ww
}

// Swap flips every module to the opposite side, in place.
func (p *Bipartition) Swap() {
	for i := range p.side {
		p.side[i] ^= 1
	}
}

// IsNetCut reports whether net e has pins on both sides of p.
func IsNetCut(h *hypergraph.Hypergraph, p *Bipartition, e int) bool {
	pins := h.Pins(e)
	if len(pins) < 2 {
		return false
	}
	first := p.side[pins[0]]
	for _, v := range pins[1:] {
		if p.side[v] != first {
			return true
		}
	}
	return false
}

// CutNets counts the nets of h cut by p.
func CutNets(h *hypergraph.Hypergraph, p *Bipartition) int {
	cut := 0
	for e := 0; e < h.NumNets(); e++ {
		if IsNetCut(h, p, e) {
			cut++
		}
	}
	return cut
}

// RatioCut returns the ratio-cut cost cut/(|U|·|W|) of p, using module
// counts as in the paper (the spectral methods treat modules uniformly).
// It returns +Inf when either side is empty: such a "partition" does not
// divide the circuit at all.
func RatioCut(h *hypergraph.Hypergraph, p *Bipartition) float64 {
	nu, nw := p.Sizes()
	if nu == 0 || nw == 0 {
		return math.Inf(1)
	}
	return float64(CutNets(h, p)) / (float64(nu) * float64(nw))
}

// WeightedRatioCut returns the ratio-cut cost cut/(w(U)·w(W)) using module
// area weights in the denominator — the Wei–Cheng formulation when areas
// matter (the spectral methods are area-oblivious, as the paper's Section 4
// discusses, but the iterative baselines can optimize this directly).
func WeightedRatioCut(h *hypergraph.Hypergraph, p *Bipartition) float64 {
	wu, ww := p.Weights(h)
	if wu == 0 || ww == 0 {
		return math.Inf(1)
	}
	return float64(CutNets(h, p)) / (float64(wu) * float64(ww))
}

// RatioCutFrom computes the ratio-cut cost from precomputed components.
func RatioCutFrom(cut, nu, nw int) float64 {
	if nu == 0 || nw == 0 {
		return math.Inf(1)
	}
	return float64(cut) / (float64(nu) * float64(nw))
}

// Metrics bundles everything a partition report needs.
type Metrics struct {
	CutNets  int
	SizeU    int
	SizeW    int
	RatioCut float64
}

// Evaluate computes the full metric set for p on h.
func Evaluate(h *hypergraph.Hypergraph, p *Bipartition) Metrics {
	nu, nw := p.Sizes()
	cut := CutNets(h, p)
	return Metrics{
		CutNets:  cut,
		SizeU:    nu,
		SizeW:    nw,
		RatioCut: RatioCutFrom(cut, nu, nw),
	}
}

// String renders metrics in the paper's table style ("areas cut ratio").
func (m Metrics) String() string {
	return fmt.Sprintf("%d:%d cut=%d ratio=%.4g", m.SizeU, m.SizeW, m.CutNets, m.RatioCut)
}

// CutStatRow is one row of the paper's Table 1: for each net size, how many
// nets exist and how many of them the partition cuts.
type CutStatRow struct {
	NetSize int
	Count   int
	Cut     int
}

// CutStatistics tabulates cut counts per net size for partition p — the
// analysis behind Table 1 of the paper.
func CutStatistics(h *hypergraph.Hypergraph, p *Bipartition) []CutStatRow {
	count := map[int]int{}
	cut := map[int]int{}
	for e := 0; e < h.NumNets(); e++ {
		k := h.NetSize(e)
		count[k]++
		if IsNetCut(h, p, e) {
			cut[k]++
		}
	}
	sizes := make([]int, 0, len(count))
	for k := range count {
		sizes = append(sizes, k)
	}
	sort.Ints(sizes)
	rows := make([]CutStatRow, len(sizes))
	for i, k := range sizes {
		rows[i] = CutStatRow{NetSize: k, Count: count[k], Cut: cut[k]}
	}
	return rows
}

// FromOrderSplit builds the bipartition that places the first r modules of
// order on side U and the rest on side W. order must be a permutation of
// 0..n-1 and 1 ≤ r ≤ n−1 for a proper bipartition (r outside that range is
// allowed but yields an improper partition with an empty side).
func FromOrderSplit(order []int, r int) *Bipartition {
	p := New(len(order))
	for i, v := range order {
		if i < r {
			p.side[v] = U
		} else {
			p.side[v] = W
		}
	}
	return p
}

// Counter tracks, per net, how many pins lie on each side of a partition,
// allowing O(degree) incremental module moves and O(1) cut queries. It is
// the shared engine under the iterative heuristics.
type Counter struct {
	h       *hypergraph.Hypergraph
	p       *Bipartition
	pinsOnU []int // per net
	cut     int
}

// NewCounter builds a Counter for h around partition p. The Counter keeps a
// reference to p; moves must go through Move so the counts stay in sync.
func NewCounter(h *hypergraph.Hypergraph, p *Bipartition) *Counter {
	c := &Counter{h: h, p: p, pinsOnU: make([]int, h.NumNets())}
	for e := 0; e < h.NumNets(); e++ {
		onU := 0
		for _, v := range h.Pins(e) {
			if p.Side(v) == U {
				onU++
			}
		}
		c.pinsOnU[e] = onU
		if onU > 0 && onU < h.NetSize(e) {
			c.cut++
		}
	}
	return c
}

// Cut returns the current number of cut nets.
func (c *Counter) Cut() int { return c.cut }

// Partition returns the underlying bipartition.
func (c *Counter) Partition() *Bipartition { return c.p }

// PinsOnU returns how many pins of net e are currently on side U.
func (c *Counter) PinsOnU(e int) int { return c.pinsOnU[e] }

// Move flips module v to the opposite side, updating all counts.
func (c *Counter) Move(v int) {
	from := c.p.Side(v)
	c.p.Set(v, from.Opposite())
	for _, e := range c.h.Nets(v) {
		size := c.h.NetSize(e)
		wasCut := c.pinsOnU[e] > 0 && c.pinsOnU[e] < size
		if from == U {
			c.pinsOnU[e]--
		} else {
			c.pinsOnU[e]++
		}
		isCut := c.pinsOnU[e] > 0 && c.pinsOnU[e] < size
		if wasCut && !isCut {
			c.cut--
		} else if !wasCut && isCut {
			c.cut++
		}
	}
}

// Gain returns the decrease in cut nets if module v were moved to the
// opposite side (negative when the move would increase the cut). This is
// the Fiduccia–Mattheyses cell gain.
func (c *Counter) Gain(v int) int {
	from := c.p.Side(v)
	g := 0
	for _, e := range c.h.Nets(v) {
		size := c.h.NetSize(e)
		if size < 2 {
			continue
		}
		onFrom := c.pinsOnU[e]
		if from == W {
			onFrom = size - onFrom
		}
		if onFrom == 1 {
			g++ // v is the last pin on its side: moving uncuts e
		} else if onFrom == size {
			g-- // e is currently uncut: moving v cuts it
		}
	}
	return g
}
