package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"igpart/internal/hypergraph"
)

// triH builds a small netlist: nets {0,1}, {1,2,3}, {3,4}, modules 0..4.
func triH() *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder()
	b.AddNet(0, 1)
	b.AddNet(1, 2, 3)
	b.AddNet(3, 4)
	return b.Build()
}

func TestSide(t *testing.T) {
	if U.Opposite() != W || W.Opposite() != U {
		t.Error("Opposite broken")
	}
	if U.String() != "U" || W.String() != "W" {
		t.Error("String broken")
	}
}

func TestBasicMetrics(t *testing.T) {
	h := triH()
	p := New(5)
	p.Set(3, W)
	p.Set(4, W)
	// Net {0,1}: uncut. Net {1,2,3}: cut. Net {3,4}: uncut.
	if got := CutNets(h, p); got != 1 {
		t.Errorf("CutNets = %d, want 1", got)
	}
	if !IsNetCut(h, p, 1) || IsNetCut(h, p, 0) || IsNetCut(h, p, 2) {
		t.Error("IsNetCut wrong")
	}
	nu, nw := p.Sizes()
	if nu != 3 || nw != 2 {
		t.Errorf("Sizes = %d,%d", nu, nw)
	}
	want := 1.0 / 6.0
	if got := RatioCut(h, p); math.Abs(got-want) > 1e-15 {
		t.Errorf("RatioCut = %v, want %v", got, want)
	}
	m := Evaluate(h, p)
	if m.CutNets != 1 || m.SizeU != 3 || m.SizeW != 2 || math.Abs(m.RatioCut-want) > 1e-15 {
		t.Errorf("Evaluate = %+v", m)
	}
	if m.String() == "" {
		t.Error("empty String")
	}
}

func TestRatioCutEmptySide(t *testing.T) {
	h := triH()
	p := New(5)
	if !math.IsInf(RatioCut(h, p), 1) {
		t.Error("RatioCut with empty side should be +Inf")
	}
	if !math.IsInf(RatioCutFrom(0, 0, 5), 1) {
		t.Error("RatioCutFrom with empty side should be +Inf")
	}
}

func TestSwapInvariance(t *testing.T) {
	h := triH()
	p := New(5)
	p.Set(1, W)
	p.Set(2, W)
	before := Evaluate(h, p)
	p.Swap()
	after := Evaluate(h, p)
	if before.CutNets != after.CutNets || before.RatioCut != after.RatioCut {
		t.Errorf("metrics changed under Swap: %+v vs %+v", before, after)
	}
	if after.SizeU != before.SizeW || after.SizeW != before.SizeU {
		t.Error("sizes not swapped")
	}
}

func TestSingletonNetsNeverCut(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddNet(0)
	b.AddNet(0, 1)
	h := b.Build()
	p := New(2)
	p.Set(1, W)
	if CutNets(h, p) != 1 {
		t.Errorf("CutNets = %d, want 1 (singleton nets cannot be cut)", CutNets(h, p))
	}
}

func TestWeights(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddNet(0, 1, 2)
	b.SetWeight(0, 5)
	b.SetWeight(1, 2)
	h := b.Build()
	p := New(3)
	p.Set(0, W)
	wu, ww := p.Weights(h)
	if wu != 3 || ww != 5 { // modules 1(w=2)+2(w=1) vs module 0(w=5)
		t.Errorf("Weights = %d,%d, want 3,5", wu, ww)
	}
}

func TestWeightedRatioCut(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddNet(0, 1)
	b.AddNet(1, 2)
	b.SetWeight(0, 10)
	b.SetWeight(1, 1)
	b.SetWeight(2, 1)
	h := b.Build()
	p := New(3)
	p.Set(2, W)
	// cut = 1 (net {1,2}); weights U = 11, W = 1.
	want := 1.0 / 11.0
	if got := WeightedRatioCut(h, p); math.Abs(got-want) > 1e-15 {
		t.Errorf("WeightedRatioCut = %v, want %v", got, want)
	}
	empty := New(3)
	if !math.IsInf(WeightedRatioCut(h, empty), 1) {
		t.Error("empty side should be +Inf")
	}
	// Unweighted circuits reduce to the count form.
	u := triH()
	q := New(5)
	q.Set(3, W)
	q.Set(4, W)
	if WeightedRatioCut(u, q) != RatioCut(u, q) {
		t.Error("unweighted WeightedRatioCut differs from RatioCut")
	}
}

func TestFromOrderSplit(t *testing.T) {
	order := []int{3, 1, 4, 0, 2}
	p := FromOrderSplit(order, 2)
	wantU := map[int]bool{3: true, 1: true}
	for v := 0; v < 5; v++ {
		if (p.Side(v) == U) != wantU[v] {
			t.Errorf("module %d on side %v", v, p.Side(v))
		}
	}
}

func TestCutStatistics(t *testing.T) {
	h := triH()
	p := New(5)
	p.Set(3, W)
	p.Set(4, W)
	rows := CutStatistics(h, p)
	// Sizes present: 2 (two nets, zero cut), 3 (one net, one cut).
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0] != (CutStatRow{NetSize: 2, Count: 2, Cut: 0}) {
		t.Errorf("rows[0] = %+v", rows[0])
	}
	if rows[1] != (CutStatRow{NetSize: 3, Count: 1, Cut: 1}) {
		t.Errorf("rows[1] = %+v", rows[1])
	}
}

func TestClone(t *testing.T) {
	p := New(3)
	c := p.Clone()
	c.Set(0, W)
	if p.Side(0) != U {
		t.Error("Clone shares storage")
	}
}

func randomInstance(seed int64) (*hypergraph.Hypergraph, *Bipartition, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	n := 3 + rng.Intn(20)
	b := hypergraph.NewBuilder()
	b.SetNumModules(n)
	m := 1 + rng.Intn(30)
	for e := 0; e < m; e++ {
		k := 1 + rng.Intn(5)
		pins := make([]int, k)
		for i := range pins {
			pins[i] = rng.Intn(n)
		}
		b.AddNet(pins...)
	}
	h := b.Build()
	p := New(n)
	for v := 0; v < n; v++ {
		if rng.Intn(2) == 1 {
			p.Set(v, W)
		}
	}
	return h, p, rng
}

func TestCounterTracksMoves(t *testing.T) {
	f := func(seed int64) bool {
		h, p, rng := randomInstance(seed)
		c := NewCounter(h, p)
		if c.Cut() != CutNets(h, p) {
			return false
		}
		for step := 0; step < 40; step++ {
			v := rng.Intn(h.NumModules())
			g := c.Gain(v)
			before := c.Cut()
			c.Move(v)
			if c.Cut() != CutNets(h, p) {
				return false
			}
			if before-c.Cut() != g {
				return false // gain must predict the cut delta exactly
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCounterAccessors(t *testing.T) {
	h := triH()
	p := New(5)
	p.Set(3, W)
	c := NewCounter(h, p)
	if c.Partition() != p {
		t.Error("Partition accessor broken")
	}
	// Net 1 = {1,2,3}: pins 1,2 on U, 3 on W.
	if got := c.PinsOnU(1); got != 2 {
		t.Errorf("PinsOnU(1) = %d, want 2", got)
	}
	if FromSides(p.Sides()).Side(3) != W {
		t.Error("FromSides/Sides round trip broken")
	}
	if p.NumModules() != 5 {
		t.Errorf("NumModules = %d", p.NumModules())
	}
}

func TestCounterMoveRoundTrip(t *testing.T) {
	h, p, _ := randomInstance(42)
	c := NewCounter(h, p)
	before := c.Cut()
	c.Move(0)
	c.Move(0)
	if c.Cut() != before {
		t.Errorf("double move changed cut: %d vs %d", c.Cut(), before)
	}
	if p.Side(0) != U && p.Side(0) != W {
		t.Error("invalid side")
	}
}

func TestCutStatisticsTotalsMatch(t *testing.T) {
	f := func(seed int64) bool {
		h, p, _ := randomInstance(seed)
		rows := CutStatistics(h, p)
		totalNets, totalCut := 0, 0
		for _, r := range rows {
			totalNets += r.Count
			totalCut += r.Cut
			if r.Cut > r.Count {
				return false
			}
		}
		return totalNets == h.NumNets() && totalCut == CutNets(h, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
