// Package anneal implements a simulated-annealing ratio-cut partitioner —
// the stochastic hill-climbing class of Section 1.1 (Kirkpatrick et al.
// [20], Sechen [28]). Moves flip one module across the cut; the Metropolis
// rule accepts uphill moves with probability exp(−Δ/T) under a geometric
// cooling schedule. The best configuration seen is returned, so quality is
// monotone in the sweep budget.
package anneal

import (
	"errors"
	"math"
	"math/rand"

	"igpart/internal/hypergraph"
	"igpart/internal/partition"
)

// Options tunes the annealer. The zero value gives a sensible schedule.
type Options struct {
	// Sweeps is the number of full-circuit move sweeps. Default 60.
	Sweeps int
	// T0 is the initial temperature (in units of ratio-cut cost relative to
	// the initial configuration). Default 0.3.
	T0 float64
	// Alpha is the geometric cooling factor per sweep. Default 0.92.
	Alpha float64
	// Seed seeds the random walk.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Sweeps <= 0 {
		o.Sweeps = 60
	}
	if o.T0 <= 0 {
		o.T0 = 0.3
	}
	if o.Alpha <= 0 || o.Alpha >= 1 {
		o.Alpha = 0.92
	}
	return o
}

// Result reports the annealing outcome.
type Result struct {
	Partition *partition.Bipartition
	Metrics   partition.Metrics
	// Accepted counts accepted moves (diagnostics).
	Accepted int
}

// RatioCut anneals a ratio-cut bipartition of h.
func RatioCut(h *hypergraph.Hypergraph, opts Options) (Result, error) {
	n := h.NumModules()
	if n < 2 {
		return Result{}, errors.New("anneal: need at least 2 modules")
	}
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	p := partition.New(n)
	for v := 0; v < n; v++ {
		if rng.Intn(2) == 1 {
			p.Set(v, partition.W)
		}
	}
	c := partition.NewCounter(h, p)
	sizes := [2]int{}
	for v := 0; v < n; v++ {
		sizes[p.Side(v)]++
	}
	cost := func() float64 {
		return partition.RatioCutFrom(c.Cut(), sizes[0], sizes[1])
	}
	cur := cost()
	if math.IsInf(cur, 1) {
		// All modules on one side; flip one to make the walk startable.
		c.Move(0)
		sizes[0], sizes[1] = sizes[0]-1, sizes[1]+1
		if p.Side(0) == partition.U {
			sizes[0], sizes[1] = sizes[0]+2, sizes[1]-2
		}
		cur = cost()
	}

	best := p.Clone()
	bestCost := cur
	// Temperature is relative to the starting cost so the schedule adapts
	// to instance scale.
	temp := opts.T0 * math.Max(cur, 1e-12)
	accepted := 0
	for sweep := 0; sweep < opts.Sweeps; sweep++ {
		for step := 0; step < n; step++ {
			v := rng.Intn(n)
			from := p.Side(v)
			if sizes[from] <= 1 {
				continue // keep both sides non-empty
			}
			c.Move(v)
			sizes[from]--
			sizes[from.Opposite()]++
			next := cost()
			delta := next - cur
			if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
				cur = next
				accepted++
				if cur < bestCost {
					bestCost = cur
					copy(best.Sides(), p.Sides())
				}
			} else {
				// Reject: undo.
				c.Move(v)
				sizes[from]++
				sizes[from.Opposite()]--
			}
		}
		temp *= opts.Alpha
	}
	return Result{
		Partition: best,
		Metrics:   partition.Evaluate(h, best),
		Accepted:  accepted,
	}, nil
}
