package anneal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"igpart/internal/hypergraph"
	"igpart/internal/partition"
)

func clustered(k, bridges int, seed int64) *hypergraph.Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	b := hypergraph.NewBuilder()
	b.SetNumModules(2 * k)
	for c := 0; c < 2; c++ {
		base := c * k
		for i := 0; i < k-1; i++ {
			b.AddNet(base+i, base+i+1)
		}
		for e := 0; e < 2*k; e++ {
			b.AddNet(base+rng.Intn(k), base+rng.Intn(k), base+rng.Intn(k))
		}
	}
	for i := 0; i < bridges; i++ {
		b.AddNet(rng.Intn(k), k+rng.Intn(k))
	}
	return b.Build()
}

func TestAnnealFindsGoodCut(t *testing.T) {
	h := clustered(15, 1, 3)
	res, err := RatioCut(h, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.SizeU == 0 || res.Metrics.SizeW == 0 {
		t.Fatal("improper partition")
	}
	if res.Metrics.CutNets > 5 {
		t.Errorf("cut = %d, want near 1", res.Metrics.CutNets)
	}
	if res.Accepted == 0 {
		t.Error("no moves accepted")
	}
}

func TestAnnealMetricsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		b := hypergraph.NewBuilder()
		b.SetNumModules(n)
		for e := 0; e < 2*n; e++ {
			pins := []int{rng.Intn(n), rng.Intn(n), rng.Intn(n)}
			b.AddNet(pins...)
		}
		h := b.Build()
		res, err := RatioCut(h, Options{Seed: seed, Sweeps: 15})
		if err != nil {
			return false
		}
		met := partition.Evaluate(h, res.Partition)
		return met == res.Metrics && met.SizeU > 0 && met.SizeW > 0 &&
			!math.IsInf(met.RatioCut, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAnnealDeterministicPerSeed(t *testing.T) {
	h := clustered(10, 2, 7)
	a, err := RatioCut(h, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RatioCut(h, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics != b.Metrics || a.Accepted != b.Accepted {
		t.Error("same seed, different walks")
	}
}

func TestAnnealMoreSweepsNeverHurts(t *testing.T) {
	// The best-seen tracking makes quality monotone in the budget for a
	// fixed seed prefix... the walk differs, so compare statistically: the
	// long run must be at least as good as the short run on this easy
	// instance.
	h := clustered(12, 1, 5)
	short, err := RatioCut(h, Options{Seed: 3, Sweeps: 5})
	if err != nil {
		t.Fatal(err)
	}
	long, err := RatioCut(h, Options{Seed: 3, Sweeps: 120})
	if err != nil {
		t.Fatal(err)
	}
	if long.Metrics.RatioCut > short.Metrics.RatioCut+1e-9 {
		t.Errorf("longer run worse: %v vs %v", long.Metrics.RatioCut, short.Metrics.RatioCut)
	}
}

func TestAnnealTooSmall(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.SetNumModules(1)
	if _, err := RatioCut(b.Build(), Options{}); err == nil {
		t.Error("accepted 1 module")
	}
}
