package kl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"igpart/internal/hypergraph"
	"igpart/internal/netmodel"
	"igpart/internal/partition"
)

func clustered(k, bridges int, seed int64) *hypergraph.Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	b := hypergraph.NewBuilder()
	b.SetNumModules(2 * k)
	for c := 0; c < 2; c++ {
		base := c * k
		for i := 0; i < k-1; i++ {
			b.AddNet(base+i, base+i+1)
		}
		for e := 0; e < 2*k; e++ {
			b.AddNet(base+rng.Intn(k), base+rng.Intn(k))
		}
	}
	for i := 0; i < bridges; i++ {
		b.AddNet(rng.Intn(k), k+rng.Intn(k))
	}
	return b.Build()
}

func TestKLFindsPlantedBisection(t *testing.T) {
	h := clustered(20, 2, 3)
	res, err := Bisect(h, Options{Starts: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	nu, nw := res.Partition.Sizes()
	if nu != 20 || nw != 20 {
		t.Fatalf("not a bisection: %d vs %d", nu, nw)
	}
	if res.Metrics.CutNets > 6 {
		t.Errorf("cut = %d, want near 2", res.Metrics.CutNets)
	}
}

func TestKLBalancePreserved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		b := hypergraph.NewBuilder()
		b.SetNumModules(n)
		for e := 0; e < 2*n; e++ {
			b.AddNet(rng.Intn(n), rng.Intn(n))
		}
		h := b.Build()
		res, err := Bisect(h, Options{Seed: seed})
		if err != nil {
			return false
		}
		nu, nw := res.Partition.Sizes()
		d := nu - nw
		if d < 0 {
			d = -d
		}
		return d <= 1 && partition.Evaluate(h, res.Partition) == res.Metrics
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestKLEdgeCutConsistent(t *testing.T) {
	h := clustered(10, 3, 5)
	res, err := Bisect(h, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	g := netmodel.CliqueGraph(h, 0)
	want := 0.0
	for v := 0; v < g.N(); v++ {
		cols, vals := g.Row(v)
		for k, u := range cols {
			if u > v && res.Partition.Side(u) != res.Partition.Side(v) {
				want += vals[k]
			}
		}
	}
	if math.Abs(res.EdgeCut-want) > 1e-9 {
		t.Errorf("EdgeCut = %v, recomputed %v", res.EdgeCut, want)
	}
}

func TestKLImprovesOverRandom(t *testing.T) {
	// KL's edge cut must be no worse than the average random bisection.
	h := clustered(15, 4, 11)
	g := netmodel.CliqueGraph(h, 0)
	res, err := Bisect(h, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	totRandom := 0.0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		side := randomBisection(h.NumModules(), rng)
		totRandom += edgeCut(g, side)
	}
	if res.EdgeCut > totRandom/trials {
		t.Errorf("KL cut %v worse than average random %v", res.EdgeCut, totRandom/trials)
	}
}

func TestKLTooSmall(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.SetNumModules(1)
	if _, err := Bisect(b.Build(), Options{}); err == nil {
		t.Error("accepted single module")
	}
}
