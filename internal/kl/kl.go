// Package kl implements the Kernighan–Lin graph bisection heuristic on the
// clique-model graph of a netlist. KL is the ancestor of the iterative
// methods the paper discusses (Section 1.1) and serves as historical
// baseline context; it optimizes weighted edge cut on the derived graph,
// not hypergraph net cut.
package kl

import (
	"errors"
	"math"
	"math/rand"

	"igpart/internal/hypergraph"
	"igpart/internal/netmodel"
	"igpart/internal/partition"
	"igpart/internal/sparse"
)

// Options configures a KL run.
type Options struct {
	// MaxPasses bounds improvement passes. Default 8.
	MaxPasses int
	// Candidates is how many top-D vertices per side are examined when
	// selecting each swap pair (the classical speedup). Default 8.
	Candidates int
	// Seed seeds the random initial bisection.
	Seed int64
	// Starts is the number of random restarts. Default 1.
	Starts int
}

func (o Options) withDefaults() Options {
	if o.MaxPasses <= 0 {
		o.MaxPasses = 8
	}
	if o.Candidates <= 0 {
		o.Candidates = 8
	}
	if o.Starts <= 0 {
		o.Starts = 1
	}
	return o
}

// Result reports the best bisection found.
type Result struct {
	Partition *partition.Bipartition
	// Metrics evaluates the partition on the original hypergraph (net cut),
	// for comparability with the other algorithms.
	Metrics partition.Metrics
	// EdgeCut is the weighted clique-model edge cut KL actually optimized.
	EdgeCut float64
}

// Bisect runs Kernighan–Lin on the clique model of h. The module count must
// be even for a perfect bisection; an odd count leaves one side larger by
// one.
func Bisect(h *hypergraph.Hypergraph, opts Options) (Result, error) {
	n := h.NumModules()
	if n < 2 {
		return Result{}, errors.New("kl: need at least 2 modules")
	}
	opts = opts.withDefaults()
	g := netmodel.CliqueGraph(h, 0)
	rng := rand.New(rand.NewSource(opts.Seed))

	var best Result
	bestCut := math.Inf(1)
	for s := 0; s < opts.Starts; s++ {
		side := randomBisection(n, rng)
		cut := runKL(g, side, opts)
		if cut < bestCut {
			bestCut = cut
			sides := make([]partition.Side, n)
			for v, inU := range side {
				if !inU {
					sides[v] = partition.W
				}
			}
			p := partition.FromSides(sides)
			best = Result{Partition: p, Metrics: partition.Evaluate(h, p), EdgeCut: cut}
		}
	}
	return best, nil
}

// randomBisection returns a random perfectly balanced side assignment.
func randomBisection(n int, rng *rand.Rand) []bool {
	side := make([]bool, n)
	perm := rng.Perm(n)
	for i, v := range perm {
		side[v] = i < (n+1)/2
	}
	return side
}

// runKL improves side in place and returns the final weighted edge cut.
func runKL(g *sparse.SymCSR, side []bool, opts Options) float64 {
	n := g.N()
	d := make([]float64, n)
	locked := make([]bool, n)
	for pass := 0; pass < opts.MaxPasses; pass++ {
		computeD(g, side, d)
		for i := range locked {
			locked[i] = false
		}
		type swap struct {
			a, b int
			gain float64
		}
		var swaps []swap
		total := 0.0
		bestPrefix, bestTotal := 0, 0.0
		for k := 0; k < n/2; k++ {
			a, b, gain := pickPair(g, side, d, locked, opts.Candidates)
			if a < 0 {
				break
			}
			// Tentatively swap a and b, updating D values.
			applySwap(g, side, d, a, b)
			locked[a], locked[b] = true, true
			swaps = append(swaps, swap{a, b, gain})
			total += gain
			if total > bestTotal+1e-12 {
				bestTotal = total
				bestPrefix = len(swaps)
			}
		}
		// Roll back swaps beyond the best prefix.
		for i := len(swaps) - 1; i >= bestPrefix; i-- {
			s := swaps[i]
			side[s.a] = !side[s.a]
			side[s.b] = !side[s.b]
		}
		if bestPrefix == 0 {
			break
		}
	}
	return edgeCut(g, side)
}

// computeD fills d[v] = external − internal connection cost of v.
func computeD(g *sparse.SymCSR, side []bool, d []float64) {
	for v := 0; v < g.N(); v++ {
		cols, vals := g.Row(v)
		ext, int_ := 0.0, 0.0
		for k, u := range cols {
			if u == v {
				continue
			}
			if side[u] == side[v] {
				int_ += vals[k]
			} else {
				ext += vals[k]
			}
		}
		d[v] = ext - int_
	}
}

// pickPair selects the best swap among the top-Candidates D values on each
// side. Returns (−1, −1, 0) when no unlocked pair remains.
func pickPair(g *sparse.SymCSR, side []bool, d []float64, locked []bool, cand int) (int, int, float64) {
	topU := topCandidates(d, side, locked, true, cand)
	topW := topCandidates(d, side, locked, false, cand)
	if len(topU) == 0 || len(topW) == 0 {
		return -1, -1, 0
	}
	bestA, bestB := -1, -1
	bestGain := math.Inf(-1)
	for _, a := range topU {
		for _, b := range topW {
			gain := d[a] + d[b] - 2*g.At(a, b)
			if gain > bestGain {
				bestGain, bestA, bestB = gain, a, b
			}
		}
	}
	return bestA, bestB, bestGain
}

// topCandidates returns up to cand unlocked vertices of the given side with
// the largest D values.
func topCandidates(d []float64, side, locked []bool, wantU bool, cand int) []int {
	var top []int
	for v := range d {
		if locked[v] || side[v] != wantU {
			continue
		}
		// Insertion into a small sorted list.
		pos := len(top)
		for pos > 0 && d[top[pos-1]] < d[v] {
			pos--
		}
		if pos < cand {
			top = append(top, 0)
			copy(top[pos+1:], top[pos:])
			top[pos] = v
			if len(top) > cand {
				top = top[:cand]
			}
		}
	}
	return top
}

// applySwap swaps a and b across the cut and updates D values of all
// vertices per the KL update rule.
func applySwap(g *sparse.SymCSR, side []bool, d []float64, a, b int) {
	for _, v := range []int{a, b} {
		cols, vals := g.Row(v)
		for k, u := range cols {
			if u == v {
				continue
			}
			if side[u] == side[v] {
				d[u] += 2 * vals[k] // u loses an internal edge partner
			} else {
				d[u] -= 2 * vals[k]
			}
		}
		side[v] = !side[v]
	}
	// a and b are locked afterwards; their D values are not reused.
}

// edgeCut returns the weighted cut of the side assignment.
func edgeCut(g *sparse.SymCSR, side []bool) float64 {
	cut := 0.0
	for v := 0; v < g.N(); v++ {
		cols, vals := g.Row(v)
		for k, u := range cols {
			if u > v && side[u] != side[v] {
				cut += vals[k]
			}
		}
	}
	return cut
}
