// Package netmodel converts netlist hypergraphs into the two graph
// representations compared in the paper: the standard weighted clique model
// over modules, and the dual intersection graph over nets (the paper's
// central representation).
package netmodel

import (
	"fmt"
	"sort"

	"igpart/internal/hypergraph"
	"igpart/internal/sparse"
)

// CliqueGraph builds the "standard" weighted clique model adjacency matrix
// over modules: a k-pin net contributes 1/(k−1) to each of its C(k,2)
// module pairs. Nets with fewer than two pins contribute nothing; nets
// larger than threshold (when threshold > 0) are skipped entirely — the
// classical sparsification the paper warns may discard useful information.
func CliqueGraph(h *hypergraph.Hypergraph, threshold int) *sparse.SymCSR {
	b := sparse.NewCSRBuilder(h.NumModules())
	for e := 0; e < h.NumNets(); e++ {
		pins := h.Pins(e)
		k := len(pins)
		if k < 2 {
			continue
		}
		if threshold > 0 && k > threshold {
			continue
		}
		w := 1 / float64(k-1)
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				b.Add(pins[i], pins[j], w)
			}
		}
	}
	return b.Build()
}

// StarGraph builds the star net model over modules plus one virtual center
// vertex per net: a k-pin net contributes k unit edges from its pins to its
// center. The matrix dimension is NumModules + NumNets, with the virtual
// centers occupying indices NumModules… — callers that only care about
// modules use the first NumModules entries of any derived vector. The star
// model is one of the classical alternatives Section 2.1 surveys; together
// with the clique model it feeds the net-model fragility ablation.
func StarGraph(h *hypergraph.Hypergraph, threshold int) *sparse.SymCSR {
	n := h.NumModules()
	b := sparse.NewCSRBuilder(n + h.NumNets())
	for e := 0; e < h.NumNets(); e++ {
		pins := h.Pins(e)
		k := len(pins)
		if k < 2 {
			continue
		}
		if threshold > 0 && k > threshold {
			continue
		}
		center := n + e
		for _, v := range pins {
			b.Add(v, center, 1)
		}
	}
	return b.Build()
}

// WeightScheme selects the edge weighting used when building the
// intersection graph. The paper reports that several schemes give
// "extremely similar, high-quality" results (Section 2.2); the ablation
// benchmark A1 tests exactly that claim.
type WeightScheme int

const (
	// SchemePaper is the weighting defined in Section 2.2:
	//
	//	A'_ab = Σ_{k=1..q} 1/(d_k − 1) · (1/|s_a| + 1/|s_b|)
	//
	// summed over the q modules common to nets a and b, where d_k is the
	// number of nets at the k-th common module. Overlaps between large nets
	// are discounted relative to overlaps between small nets.
	SchemePaper WeightScheme = iota
	// SchemeUnit sets A'_ab = 1 whenever the nets share a module.
	SchemeUnit
	// SchemeOverlap sets A'_ab = q, the number of shared modules.
	SchemeOverlap
	// SchemeMinSize sets A'_ab = q / min(|s_a|, |s_b|).
	SchemeMinSize
)

// String implements fmt.Stringer.
func (s WeightScheme) String() string {
	switch s {
	case SchemePaper:
		return "paper"
	case SchemeUnit:
		return "unit"
	case SchemeOverlap:
		return "overlap"
	case SchemeMinSize:
		return "minsize"
	default:
		return fmt.Sprintf("WeightScheme(%d)", int(s))
	}
}

// IGOptions configures intersection-graph construction.
type IGOptions struct {
	// Scheme selects the edge weighting (default SchemePaper).
	Scheme WeightScheme
	// Threshold, when positive, excludes nets with more than Threshold pins
	// from inducing edges (their IG vertices remain, isolated). This is the
	// thresholding sparsification discussed as future work in Section 5.
	Threshold int
}

// IntersectionGraph builds the dual intersection graph G' of the netlist:
// one vertex per net, an edge between two nets exactly when they share at
// least one module, weighted per opts.Scheme. The matrix dimension equals
// h.NumNets().
//
// The build streams one IG row at a time through pin buckets: for row net
// a, walking the incidence lists of a's pins touches exactly the nets
// that conflict with a, and a stamp array accumulates each neighbor's
// weight without any pairwise coordinate buffer. Total work is
// Σ_v deg(v)² and peak memory is O(m + nnz) — the memory-lean form that
// makes 10⁵–10⁶-net inputs feasible, where the historical all-pairs
// coordinate build (24 bytes per duplicate contribution plus a global
// sort) did not fit. Weight folds run over shared modules in ascending
// pin order for both (a,c) and (c,a), so the matrix is exactly symmetric.
func IntersectionGraph(h *hypergraph.Hypergraph, opts IGOptions) *sparse.SymCSR {
	m := h.NumNets()
	b := sparse.NewRowsBuilder(m)
	skip := func(e int) bool {
		return opts.Threshold > 0 && h.NetSize(e) > opts.Threshold
	}
	var (
		acc       = make([]float64, m) // weight accumulator, valid where stamped
		stamp     = make([]int, m)     // row id + 1 marking valid acc entries
		neighbors []int                // stamped columns of the current row
		vals      []float64
	)
	for a := 0; a < m; a++ {
		neighbors = neighbors[:0]
		if !skip(a) {
			invA := 1 / float64(h.NetSize(a))
			for _, v := range h.Pins(a) {
				nets := h.Nets(v)
				d := len(nets)
				if d < 2 {
					continue
				}
				invD := 1 / float64(d-1)
				for _, c := range nets {
					if c == a || skip(c) {
						continue
					}
					if stamp[c] != a+1 {
						stamp[c] = a + 1
						acc[c] = 0
						neighbors = append(neighbors, c)
					}
					switch opts.Scheme {
					case SchemeUnit:
						acc[c] = 1
					case SchemeOverlap:
						acc[c]++
					case SchemeMinSize:
						mn := h.NetSize(a)
						if s := h.NetSize(c); s < mn {
							mn = s
						}
						acc[c] += 1 / float64(mn)
					default: // SchemePaper
						acc[c] += invD * (invA + 1/float64(h.NetSize(c)))
					}
				}
			}
		}
		sort.Ints(neighbors)
		vals = vals[:0]
		for _, c := range neighbors {
			vals = append(vals, acc[c])
		}
		b.AppendRow(neighbors, vals)
	}
	return b.Build()
}

// ModuleLaplacian returns Q = D − A for the clique-model graph — the matrix
// the EIG1 baseline solves.
func ModuleLaplacian(h *hypergraph.Hypergraph, threshold int) *sparse.SymCSR {
	return sparse.Laplacian(CliqueGraph(h, threshold))
}

// IGLaplacian returns Q' = D' − A' for the intersection graph — the matrix
// IG-Match and IG-Vote solve.
func IGLaplacian(h *hypergraph.Hypergraph, opts IGOptions) *sparse.SymCSR {
	return sparse.Laplacian(IntersectionGraph(h, opts))
}

// Sparsity compares the representation sizes of the two net models, in
// stored off-diagonal nonzeros — the quantity behind the paper's Test05
// observation (19 935 IG nonzeros vs 219 811 clique nonzeros).
type Sparsity struct {
	CliqueNonzeros int
	IGNonzeros     int
	Ratio          float64 // clique / IG; >1 means the IG is sparser
}

// CompareSparsity builds both models and reports their nonzero counts.
func CompareSparsity(h *hypergraph.Hypergraph) Sparsity {
	clique := CliqueGraph(h, 0).OffDiagNNZ()
	ig := IntersectionGraph(h, IGOptions{}).OffDiagNNZ()
	s := Sparsity{CliqueNonzeros: clique, IGNonzeros: ig}
	if ig > 0 {
		s.Ratio = float64(clique) / float64(ig)
	}
	return s
}
