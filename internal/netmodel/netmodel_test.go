package netmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"igpart/internal/hypergraph"
	"igpart/internal/sparse"
)

// example builds the hand-checked instance used across these tests:
// modules 0,1,2; nets a={0,1}, b={1,2}, c={0,1,2}.
// Degrees: d(0)=2, d(1)=3, d(2)=2.
func example() *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder()
	b.AddNamedNet("a", 0, 1)
	b.AddNamedNet("b", 1, 2)
	b.AddNamedNet("c", 0, 1, 2)
	return b.Build()
}

func TestCliqueGraphWeights(t *testing.T) {
	h := example()
	g := CliqueGraph(h, 0)
	// Net a: +1 on (0,1). Net b: +1 on (1,2). Net c: +1/2 on all pairs.
	check := func(i, j int, want float64) {
		if got := g.At(i, j); math.Abs(got-want) > 1e-15 {
			t.Errorf("A[%d][%d] = %v, want %v", i, j, got, want)
		}
	}
	check(0, 1, 1.5)
	check(1, 2, 1.5)
	check(0, 2, 0.5)
	check(0, 0, 0)
}

func TestCliqueGraphThreshold(t *testing.T) {
	h := example()
	g := CliqueGraph(h, 2) // drop the 3-pin net c
	if got := g.At(0, 2); got != 0 {
		t.Errorf("thresholded A[0][2] = %v, want 0", got)
	}
	if got := g.At(0, 1); got != 1 {
		t.Errorf("thresholded A[0][1] = %v, want 1", got)
	}
}

func TestCliqueGraphIgnoresSmallNets(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddNet(0)
	b.AddNet(1, 2)
	h := b.Build()
	g := CliqueGraph(h, 0)
	if g.OffDiagNNZ() != 2 { // only the 2-pin net appears (stored twice)
		t.Errorf("OffDiagNNZ = %d, want 2", g.OffDiagNNZ())
	}
}

func TestIntersectionGraphPaperWeights(t *testing.T) {
	h := example()
	g := IntersectionGraph(h, IGOptions{})
	if g.N() != 3 {
		t.Fatalf("IG dimension = %d, want 3 (one vertex per net)", g.N())
	}
	// Hand computation with the Section 2.2 formula:
	// A'(a,b): share module 1 (d=3): 1/2·(1/2+1/2) = 0.5
	// A'(a,c): share modules 0 (d=2) and 1 (d=3):
	//          1/1·(1/2+1/3) + 1/2·(1/2+1/3) = 5/6 + 5/12 = 1.25
	// A'(b,c): symmetric to (a,c) = 1.25
	check := func(i, j int, want float64) {
		if got := g.At(i, j); math.Abs(got-want) > 1e-12 {
			t.Errorf("A'[%d][%d] = %v, want %v", i, j, got, want)
		}
	}
	check(0, 1, 0.5)
	check(0, 2, 1.25)
	check(1, 2, 1.25)
}

func TestIntersectionGraphSchemes(t *testing.T) {
	h := example()

	unit := IntersectionGraph(h, IGOptions{Scheme: SchemeUnit})
	for _, p := range [][2]int{{0, 1}, {0, 2}, {1, 2}} {
		if got := unit.At(p[0], p[1]); got != 1 {
			t.Errorf("unit A'[%d][%d] = %v, want 1", p[0], p[1], got)
		}
	}

	overlap := IntersectionGraph(h, IGOptions{Scheme: SchemeOverlap})
	if got := overlap.At(0, 2); got != 2 { // nets a and c share modules 0 and 1
		t.Errorf("overlap A'[0][2] = %v, want 2", got)
	}
	if got := overlap.At(0, 1); got != 1 {
		t.Errorf("overlap A'[0][1] = %v, want 1", got)
	}

	minsize := IntersectionGraph(h, IGOptions{Scheme: SchemeMinSize})
	if got := minsize.At(0, 2); math.Abs(got-1.0) > 1e-15 { // q=2, min(2,3)=2
		t.Errorf("minsize A'[0][2] = %v, want 1", got)
	}
}

func TestStarGraph(t *testing.T) {
	h := example() // 3 modules, nets a={0,1}, b={1,2}, c={0,1,2}
	g := StarGraph(h, 0)
	if g.N() != 6 { // 3 modules + 3 centers
		t.Fatalf("dim = %d, want 6", g.N())
	}
	// Spokes: center of net a (index 3) to modules 0 and 1.
	if g.At(3, 0) != 1 || g.At(3, 1) != 1 || g.At(3, 2) != 0 {
		t.Errorf("net a spokes wrong: %v %v %v", g.At(3, 0), g.At(3, 1), g.At(3, 2))
	}
	// Module-module edges never appear in a star model.
	if g.At(0, 1) != 0 {
		t.Errorf("direct module edge in star model: %v", g.At(0, 1))
	}
	// Pin count conservation: nonzeros = 2 × pins.
	if g.OffDiagNNZ() != 2*h.NumPins() {
		t.Errorf("nonzeros = %d, want %d", g.OffDiagNNZ(), 2*h.NumPins())
	}
	// Thresholding drops the 3-pin net c entirely.
	gt := StarGraph(h, 2)
	if gt.At(5, 0) != 0 || gt.At(5, 1) != 0 {
		t.Error("thresholded star still has net c spokes")
	}
}

func TestWeightSchemeString(t *testing.T) {
	for s, want := range map[WeightScheme]string{
		SchemePaper: "paper", SchemeUnit: "unit",
		SchemeOverlap: "overlap", SchemeMinSize: "minsize",
		WeightScheme(9): "WeightScheme(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(s), got, want)
		}
	}
}

func TestIntersectionGraphThreshold(t *testing.T) {
	h := example()
	g := IntersectionGraph(h, IGOptions{Threshold: 2})
	// Net c (3 pins) is excluded; only the a–b edge (via module 1) remains.
	if got := g.At(0, 2); got != 0 {
		t.Errorf("thresholded A'[0][2] = %v, want 0", got)
	}
	if got := g.At(1, 2); got != 0 {
		t.Errorf("thresholded A'[1][2] = %v, want 0", got)
	}
	if got := g.At(0, 1); got == 0 {
		t.Error("a–b edge lost under threshold")
	}
	if g.N() != 3 {
		t.Errorf("thresholding must keep all net vertices: N = %d", g.N())
	}
}

func TestIGDisjointNetsNoEdge(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddNet(0, 1)
	b.AddNet(2, 3)
	h := b.Build()
	g := IntersectionGraph(h, IGOptions{})
	if g.OffDiagNNZ() != 0 {
		t.Errorf("disjoint nets produced %d IG nonzeros", g.OffDiagNNZ())
	}
}

func TestLaplacianWrappers(t *testing.T) {
	h := example()
	qm := ModuleLaplacian(h, 0)
	if qm.N() != 3 {
		t.Errorf("module Laplacian dim = %d", qm.N())
	}
	qn := IGLaplacian(h, IGOptions{})
	if qn.N() != 3 {
		t.Errorf("IG Laplacian dim = %d", qn.N())
	}
	// Laplacian rows sum to zero.
	one := []float64{1, 1, 1}
	y := make([]float64, 3)
	qn.MulVec(y, one)
	for _, v := range y {
		if math.Abs(v) > 1e-12 {
			t.Errorf("IG Laplacian row sums nonzero: %v", y)
		}
	}
}

func TestCompareSparsity(t *testing.T) {
	// A single large net makes the clique model dense while the IG stays
	// tiny — the effect behind the paper's Test05 measurement.
	b := hypergraph.NewBuilder()
	big := make([]int, 40)
	for i := range big {
		big[i] = i
	}
	b.AddNet(big...)
	for i := 0; i < 39; i++ {
		b.AddNet(i, i+1)
	}
	h := b.Build()
	s := CompareSparsity(h)
	if s.CliqueNonzeros <= s.IGNonzeros {
		t.Errorf("expected clique denser: %+v", s)
	}
	if s.Ratio <= 1 {
		t.Errorf("Ratio = %v, want > 1", s.Ratio)
	}
}

func TestIGSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(15)
		bld := hypergraph.NewBuilder()
		bld.SetNumModules(n)
		for e := 0; e < 2+rng.Intn(20); e++ {
			k := 2 + rng.Intn(4)
			pins := make([]int, k)
			for i := range pins {
				pins[i] = rng.Intn(n)
			}
			bld.AddNet(pins...)
		}
		h := bld.Build()
		for _, scheme := range []WeightScheme{SchemePaper, SchemeUnit, SchemeOverlap, SchemeMinSize} {
			g := IntersectionGraph(h, IGOptions{Scheme: scheme})
			for i := 0; i < g.N(); i++ {
				cols, vals := g.Row(i)
				for k, j := range cols {
					if math.Abs(g.At(j, i)-vals[k]) > 1e-12 {
						return false
					}
					if vals[k] < 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIGEdgeIffSharedModule(t *testing.T) {
	// Structural property: A'_ab ≠ 0 exactly when nets a and b intersect.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		bld := hypergraph.NewBuilder()
		bld.SetNumModules(n)
		for e := 0; e < 2+rng.Intn(12); e++ {
			k := 2 + rng.Intn(4)
			pins := make([]int, k)
			for i := range pins {
				pins[i] = rng.Intn(n)
			}
			bld.AddNet(pins...)
		}
		h := bld.Build()
		g := IntersectionGraph(h, IGOptions{})
		for a := 0; a < h.NumNets(); a++ {
			for b := a + 1; b < h.NumNets(); b++ {
				shared := false
				for _, v := range h.Pins(a) {
					for _, w := range h.Pins(b) {
						if v == w {
							shared = true
						}
					}
				}
				if shared != (g.At(a, b) != 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

var sinkCSR *sparse.SymCSR

func BenchmarkIntersectionGraph(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bld := hypergraph.NewBuilder()
	n := 2000
	bld.SetNumModules(n)
	for e := 0; e < 2500; e++ {
		k := 2 + rng.Intn(5)
		pins := make([]int, k)
		for i := range pins {
			pins[i] = rng.Intn(n)
		}
		bld.AddNet(pins...)
	}
	h := bld.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkCSR = IntersectionGraph(h, IGOptions{})
	}
}
