// The recursive-bisection engine: each level halves its part range,
// derives the left-group size window its share of the ε budget allows,
// and runs an IG-Match bisection constrained to that window with the
// level's fixed modules pinned (core.Balance / core.FixedSides). The
// window math is chosen so feasibility is inductive — a level that
// respects its window hands both children solvable subproblems — and a
// deterministic fallback split repaired by FM-gain moves covers levels
// whose sweep finds no feasible completion (degenerate sub-netlists,
// eigensolve failures, empty windows after pruning).
package multiway

import (
	"context"
	"errors"
	"fmt"
	"math"

	"igpart/internal/core"
	"igpart/internal/hypergraph"
	"igpart/internal/obs"
	"igpart/internal/partition"
)

// Partition produces a balanced k-way module partition of h satisfying
// the (K, Eps, Fixed) contract: exactly K non-empty parts, every part at
// most PartCap(n, K, Eps) modules, every fixed module in its pinned part.
func Partition(h *hypergraph.Hypergraph, opts Options) (Result, error) {
	n := h.NumModules()
	partCap, err := validateOptions(n, opts)
	if err != nil {
		return Result{}, err
	}
	if opts.Spectral {
		return spectralK(h, opts, partCap)
	}
	part := make([]int, n)
	rec := obs.OrNop(opts.Core.Rec)
	if err := recurse(h, opts, rec, allModules(n), 0, opts.K, partCap, part); err != nil {
		return Result{}, err
	}
	res := Evaluate(h, part, opts.K)
	res.Cap = partCap
	return res, nil
}

// validateOptions checks the (K, Eps, Fixed) request against the netlist
// size and returns the per-part cap. The checks are exactly the
// feasibility preconditions the recursion preserves: every part's pinned
// modules fit under the cap, and there are enough free modules to make
// every pin-less part non-empty.
func validateOptions(n int, opts Options) (int, error) {
	if opts.K < 2 {
		return 0, fmt.Errorf("multiway: K=%d, need at least 2", opts.K)
	}
	if n < opts.K {
		return 0, fmt.Errorf("multiway: %d modules cannot form %d parts", n, opts.K)
	}
	if math.IsNaN(opts.Eps) || opts.Eps < 0 {
		return 0, fmt.Errorf("multiway: imbalance budget eps=%v, need >= 0", opts.Eps)
	}
	partCap := PartCap(n, opts.K, opts.Eps)
	if opts.Fixed != nil {
		if len(opts.Fixed) != n {
			return 0, fmt.Errorf("multiway: Fixed has %d entries, want %d", len(opts.Fixed), n)
		}
		count := make([]int, opts.K)
		nFixed := 0
		for v, p := range opts.Fixed {
			if p < -1 || p >= opts.K {
				return 0, fmt.Errorf("multiway: Fixed[%d]=%d outside [-1,%d)", v, p, opts.K)
			}
			if p >= 0 {
				count[p]++
				nFixed++
			}
		}
		needy := 0
		for p, c := range count {
			if c > partCap {
				return 0, fmt.Errorf("multiway: %d modules pinned to part %d exceed the %d-module cap", c, p, partCap)
			}
			if c == 0 {
				needy++
			}
		}
		if n-nFixed < needy {
			return 0, fmt.Errorf("multiway: only %d free modules for %d parts with no pinned module", n-nFixed, needy)
		}
	}
	return partCap, nil
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// levelSpan opens the stage span for one recursion level; the label is
// only built when a real recorder listens.
func levelSpan(rec obs.Recorder, p0, k int) obs.Recorder {
	if !rec.Enabled() {
		return obs.Nop
	}
	return rec.StartSpan(fmt.Sprintf("kway-level[p%d:p%d]", p0, p0+k))
}

// recurse assigns parts p0..p0+k−1 to modules. The context is polled at
// every level entry, so a cancelled run unwinds within one bisection.
// Child levels record under this level's span, nesting the level tree.
func recurse(h *hypergraph.Hypergraph, opts Options, rec obs.Recorder, modules []int, p0, k, partCap int, part []int) error {
	if err := ctxErr(opts.Core.Ctx); err != nil {
		return fmt.Errorf("multiway: cancelled before level p%d:p%d: %w", p0, p0+k, err)
	}
	if k == 1 {
		for _, v := range modules {
			part[v] = p0
		}
		return nil
	}
	sp := levelSpan(rec, p0, k)
	defer sp.End()
	sp.Count("modules", int64(len(modules)))
	kL := (k + 1) / 2
	left, right, err := splitGroup(h, opts, sp, modules, p0, kL, k-kL, partCap)
	if err != nil {
		return err
	}
	sp.Count("left", int64(len(left)))
	sp.Count("right", int64(len(right)))
	if err := recurse(h, opts, sp, left, p0, kL, partCap, part); err != nil {
		return err
	}
	return recurse(h, opts, sp, right, p0+kL, k-kL, partCap, part)
}

// splitGroup bisects one level's modules into the kL-part left group and
// the kR-part right group, honoring the size window
//
//	sizeL ∈ [max(n − kR·cap, fixedL+needyL), min(kL·cap, n − fixedR − needyR)]
//
// — the exact condition under which both children remain feasible:
// the right group fits under its caps, and each group keeps its pinned
// modules plus one free module per pin-less part.
func splitGroup(h *hypergraph.Hypergraph, opts Options, sp obs.Recorder, modules []int, p0, kL, kR, partCap int) (left, right []int, err error) {
	nSub := len(modules)
	k := kL + kR
	fixedCount := make([]int, k)
	hasFix := false
	for _, v := range modules {
		if opts.Fixed != nil && opts.Fixed[v] >= 0 {
			fixedCount[opts.Fixed[v]-p0]++
			hasFix = true
		}
	}
	fixedL, needyL := 0, 0
	for i := 0; i < kL; i++ {
		fixedL += fixedCount[i]
		if fixedCount[i] == 0 {
			needyL++
		}
	}
	fixedR, needyR := 0, 0
	for i := kL; i < k; i++ {
		fixedR += fixedCount[i]
		if fixedCount[i] == 0 {
			needyR++
		}
	}
	lo := nSub - kR*partCap
	if m := fixedL + needyL; m > lo {
		lo = m
	}
	hi := kL * partCap
	if m := nSub - fixedR - needyR; m < hi {
		hi = m
	}
	if lo > hi {
		return nil, nil, fmt.Errorf("multiway: infeasible level p%d:p%d: left window [%d,%d] over %d modules", p0, p0+k, lo, hi, nSub)
	}

	// The top level partitions the whole netlist: skip the subgraph copy
	// (also what keeps k=2 runs on the identical IG-Match path).
	sub, moduleMap := h, []int(nil)
	if nSub != h.NumModules() {
		keep := make([]bool, h.NumModules())
		for _, v := range modules {
			keep[v] = true
		}
		sub, moduleMap, _ = hypergraph.SubHypergraph(h, keep)
	}
	var fixedSides []int8
	if hasFix {
		fixedSides = make([]int8, nSub)
		for i := range fixedSides {
			fixedSides[i] = -1
			v := i
			if moduleMap != nil {
				v = moduleMap[i]
			}
			if p := opts.Fixed[v]; p >= 0 && p-p0 >= kL {
				fixedSides[i] = 1
			} else if p >= 0 {
				fixedSides[i] = 0
			}
		}
	}

	constrained := hasFix || lo > 1 || hi < nSub-1
	sides, met, err := bisectSides(sub, fixedSides, lo, hi, constrained, opts, sp)
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return nil, nil, err
	}
	if hasFix {
		// The sweep grows U from one end of the Fiedler ordering, so it
		// realizes only one orientation of each cut — and the pins break
		// the U/W symmetry, possibly sitting at the wrong end. Solve the
		// mirrored problem too and keep the better completion.
		s2, met2, err2 := bisectSides(sub, flipFixed(fixedSides), nSub-hi, nSub-lo, true, opts, sp)
		if err2 != nil && (errors.Is(err2, context.Canceled) || errors.Is(err2, context.DeadlineExceeded)) {
			return nil, nil, err2
		}
		if err2 == nil {
			for i, s := range s2 {
				if s == partition.U {
					s2[i] = partition.W
				} else {
					s2[i] = partition.U
				}
			}
			if err != nil || met2.RatioCut < met.RatioCut {
				sides, err = s2, nil
				sp.Count("mirror-win", 1)
			}
		}
	}
	if err != nil {
		// Degenerate sub-netlist, eigensolve failure, or an infeasible
		// sweep: fall back to a deterministic split that honors the pins
		// and the window, then let the FM repair below polish it.
		sp.Count("fallback", 1)
		sides = fallbackSides(nSub, fixedSides, lo, hi, kL, kR)
	}
	szU := 0
	for _, s := range sides {
		if s == partition.U {
			szU++
		}
	}
	if szU < lo || szU > hi {
		if err := repairWindow(sub, sides, fixedSides, szU, lo, hi); err != nil {
			return nil, nil, err
		}
	}
	for i, s := range sides {
		v := i
		if moduleMap != nil {
			v = moduleMap[i]
		}
		if s == partition.U {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	return left, right, nil
}

// bisectSides runs one IG-Match bisection, constrained to the balance
// window and pins when the level needs them. An unconstrained level (k=2
// with an unbounded budget and no pins) takes the exact paper path —
// that is the bit-parity guarantee with the plain IGMatch bisection.
func bisectSides(sub *hypergraph.Hypergraph, fixedSides []int8, lo, hi int, constrained bool, opts Options, sp obs.Recorder) ([]partition.Side, partition.Metrics, error) {
	if sub.NumNets() < 2 || sub.NumModules() < 2 {
		return nil, partition.Metrics{}, errors.New("multiway: sub-netlist too degenerate to bisect")
	}
	co := opts.Core
	co.Trace = nil
	co.Rec = sp
	co.Balance = nil
	co.FixedSides = nil
	if constrained {
		co.Balance = &core.Balance{MinU: lo, MaxU: hi}
		co.FixedSides = fixedSides
	}
	var res core.Result
	var err error
	if opts.Candidates > 0 {
		res, err = core.PartitionCandidates(sub, opts.Candidates, co)
	} else {
		res, err = core.Partition(sub, co)
	}
	if err != nil {
		return nil, partition.Metrics{}, err
	}
	sides := make([]partition.Side, sub.NumModules())
	for i := range sides {
		sides[i] = res.Partition.Side(i)
	}
	return sides, res.Metrics, nil
}

// flipFixed mirrors a pin vector across the cut (U pins become W pins).
func flipFixed(fixedSides []int8) []int8 {
	flipped := make([]int8, len(fixedSides))
	for i, s := range fixedSides {
		switch s {
		case 0:
			flipped[i] = 1
		case 1:
			flipped[i] = 0
		default:
			flipped[i] = -1
		}
	}
	return flipped
}

// fallbackSides builds the deterministic window-feasible split used when
// the sweep cannot: pinned modules keep their group, and free modules
// fill the left group in index order up to the proportional target
// clamped into the window.
func fallbackSides(nSub int, fixedSides []int8, lo, hi, kL, kR int) []partition.Side {
	sides := make([]partition.Side, nSub)
	target := nSub * kL / (kL + kR)
	if target < lo {
		target = lo
	}
	if target > hi {
		target = hi
	}
	szU := 0
	for v := range sides {
		if fixedSides != nil && fixedSides[v] == 0 {
			sides[v] = partition.U
			szU++
		} else {
			sides[v] = partition.W
		}
	}
	for v := 0; v < nSub && szU < target; v++ {
		if fixedSides == nil || fixedSides[v] < 0 {
			if sides[v] == partition.W {
				sides[v] = partition.U
				szU++
			}
		}
	}
	return sides
}

// repairWindow moves free modules across the cut — best FM gain first,
// lowest index breaking ties — until the U side lands inside [lo, hi].
// Feasible windows always leave enough free modules to finish (the
// splitGroup window math guarantees it); running out means the caller
// violated the contract.
func repairWindow(sub *hypergraph.Hypergraph, sides []partition.Side, fixedSides []int8, szU, lo, hi int) error {
	p := partition.FromSides(sides) // shares the slice: moves land in sides
	c := partition.NewCounter(sub, p)
	free := func(v int) bool { return fixedSides == nil || fixedSides[v] < 0 }
	moveBest := func(from partition.Side) error {
		best, bestGain := -1, 0
		for v := 0; v < len(sides); v++ {
			if sides[v] != from || !free(v) {
				continue
			}
			if g := c.Gain(v); best < 0 || g > bestGain {
				best, bestGain = v, g
			}
		}
		if best < 0 {
			return errors.New("multiway: balance repair ran out of free modules")
		}
		c.Move(best)
		return nil
	}
	for ; szU < lo; szU++ {
		if err := moveBest(partition.W); err != nil {
			return err
		}
	}
	for ; szU > hi; szU-- {
		if err := moveBest(partition.U); err != nil {
			return err
		}
	}
	return nil
}
