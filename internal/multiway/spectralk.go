// The direct spectral-k engine: Riolo–Newman vector partitioning
// ("First-principles multiway spectral partitioning") adapted to the
// module Laplacian. Each module v gets a k-dimensional vertex vector
//
//	r_v[i] = sqrt(λmax − λ_i) · u_i(v)
//
// from the first k eigenpairs (λ_i, u_i) of the Laplacian, weighted by
// headroom below the Gershgorin spectral bound so the flattest directions
// dominate. Maximizing Σ_p |R_p|² over part vector sums R_p = Σ_{v∈p} r_v
// is then equivalent to minimizing the clique-model cut, and the
// assignment reduces to greedy vector packing: seed parts with the
// longest vectors, add each module to the part whose sum it extends most,
// and polish with single-module moves — all under the part cap, the
// fixed-module pins, and k-non-empty repair, so the balanced contract
// holds exactly even though the objective is heuristic.
package multiway

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"igpart/internal/eigen"
	"igpart/internal/hypergraph"
	"igpart/internal/netmodel"
	"igpart/internal/obs"
)

// spectralK runs the vector-partitioning engine for Options.Spectral.
func spectralK(h *hypergraph.Hypergraph, opts Options, partCap int) (Result, error) {
	n := h.NumModules()
	k := opts.K
	rec := obs.OrNop(opts.Core.Rec)
	sp := rec.StartSpan("spectral-k")
	defer sp.End()

	q := netmodel.ModuleLaplacian(h, 0)
	eo := opts.Core.Eigen
	if eo.Rec == nil {
		eo.Rec = sp
	}
	if eo.Ctx == nil {
		eo.Ctx = opts.Core.Ctx
	}
	if eo.Fault == nil {
		eo.Fault = opts.Core.Fault
	}
	vals, vecs, err := eigen.SmallestK(q, k, eo)
	if err != nil {
		return Result{}, fmt.Errorf("multiway: spectral-k eigensolve failed: %w", err)
	}
	sp.Count("eigenpairs", int64(k))

	lmax := eigen.GershgorinUpper(q)
	r := make([]float64, n*k)
	norm2 := make([]float64, n)
	for i := 0; i < k; i++ {
		w := lmax - vals[i]
		if w < 0 {
			w = 0
		}
		w = math.Sqrt(w)
		for v := 0; v < n; v++ {
			x := w * vecs[i][v]
			r[v*k+i] = x
			norm2[v] += x * x
		}
	}
	assign, err := vectorPartition(n, k, partCap, opts, r, norm2)
	if err != nil {
		return Result{}, err
	}
	res := Evaluate(h, assign, k)
	res.Cap = partCap
	return res, nil
}

// dotRV is the inner product of part p's vector sum with module v's
// vertex vector.
func dotRV(R []float64, p int, r []float64, v, k int) float64 {
	s := 0.0
	for i := 0; i < k; i++ {
		s += R[p*k+i] * r[v*k+i]
	}
	return s
}

// addRV adds (sign=+1) or removes (sign=−1) module v's vector from part
// p's sum.
func addRV(R []float64, p int, r []float64, v, k int, sign float64) {
	for i := 0; i < k; i++ {
		R[p*k+i] += sign * r[v*k+i]
	}
}

// dotVV is the inner product of two modules' vertex vectors.
func dotVV(r []float64, v, w, k int) float64 {
	s := 0.0
	for i := 0; i < k; i++ {
		s += r[v*k+i] * r[w*k+i]
	}
	return s
}

// vectorPartition performs the capped, pin-respecting greedy assignment
// plus local refinement. Moving v from part s to part p changes the
// objective Σ_q |R_q|² by 2(⟨R_p,r_v⟩ − ⟨R_s,r_v⟩) + 2|r_v|² (with v
// counted in R_s and not in R_p); insertions and steals are special
// cases. Every tie breaks on the lowest part/module index, making the
// result deterministic.
func vectorPartition(n, k, partCap int, opts Options, r, norm2 []float64) ([]int, error) {
	assign := make([]int, n)
	size := make([]int, k)
	R := make([]float64, k*k)
	free := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if opts.Fixed != nil && opts.Fixed[v] >= 0 {
			p := opts.Fixed[v]
			assign[v] = p
			size[p]++
			addRV(R, p, r, v, k, +1)
		} else {
			assign[v] = -1
			free = append(free, v)
		}
	}

	// Farthest-point seeding: give every pin-less part one anchor module
	// before the greedy fill. Without it the first insertions all land on
	// part 0 (every empty part scores the same) and structurally distinct
	// modules pile together. The pairwise distance cancels the constant
	// first eigenvector, so anchors spread across the *structural*
	// dimensions of the embedding.
	seeded := make([]bool, n)
	var anchors []int
	for p := 0; p < k; p++ {
		if size[p] > 0 {
			continue
		}
		best, bestScore := -1, math.Inf(-1)
		for _, v := range free {
			if seeded[v] {
				continue
			}
			score := norm2[v]
			if len(anchors) > 0 {
				score = math.Inf(1)
				for _, s := range anchors {
					d := norm2[v] + norm2[s] - 2*dotVV(r, v, s, k)
					if d < score {
						score = d
					}
				}
			}
			if score > bestScore {
				best, bestScore = v, score
			}
		}
		if best < 0 {
			// Unreachable after validateOptions: there are at least as many
			// free modules as pin-less parts.
			return nil, fmt.Errorf("multiway: no free module available to seed part %d", p)
		}
		seeded[best] = true
		anchors = append(anchors, best)
		assign[best] = p
		size[p]++
		addRV(R, p, r, best, k, +1)
	}

	// Greedy insertion, longest vectors first: they anchor the part sums
	// the later, shorter vectors align against.
	order := append([]int(nil), free...)
	sort.SliceStable(order, func(a, b int) bool {
		va, vb := order[a], order[b]
		if norm2[va] != norm2[vb] {
			return norm2[va] > norm2[vb]
		}
		return va < vb
	})
	for _, v := range order {
		if seeded[v] {
			continue
		}
		best, bestScore := -1, 0.0
		for p := 0; p < k; p++ {
			if size[p] >= partCap {
				continue
			}
			s := 2*dotRV(R, p, r, v, k) + norm2[v]
			if best < 0 || s > bestScore {
				best, bestScore = p, s
			}
		}
		if best < 0 {
			// Unreachable: Σ caps = k·cap ≥ n by PartCap's construction.
			return nil, errors.New("multiway: spectral-k ran out of part capacity")
		}
		assign[v] = best
		size[best]++
		addRV(R, best, r, v, k, +1)
	}

	// The contract demands k non-empty parts: populate any empty part
	// with the free module whose move costs the least objective.
	for p := 0; p < k; p++ {
		if size[p] > 0 {
			continue
		}
		best, bestDelta := -1, math.Inf(-1)
		for _, v := range free {
			s := assign[v]
			if size[s] < 2 {
				continue
			}
			delta := 2*norm2[v] - 2*dotRV(R, s, r, v, k)
			if delta > bestDelta {
				best, bestDelta = v, delta
			}
		}
		if best < 0 {
			// Unreachable after validateOptions: there are at least as
			// many free modules as pin-less parts.
			return nil, fmt.Errorf("multiway: no free module available to populate part %d", p)
		}
		s := assign[best]
		addRV(R, s, r, best, k, -1)
		size[s]--
		assign[best] = p
		size[p]++
		addRV(R, p, r, best, k, +1)
	}

	// Local refinement: bounded passes of strictly-improving single
	// moves that respect the caps and never empty a part.
	for pass := 0; pass < 8; pass++ {
		if err := ctxErr(opts.Core.Ctx); err != nil {
			return nil, fmt.Errorf("multiway: cancelled during spectral-k refinement: %w", err)
		}
		moved := false
		for _, v := range free {
			s := assign[v]
			if size[s] <= 1 {
				continue
			}
			ds := dotRV(R, s, r, v, k)
			best, bestDelta := -1, 1e-9
			for p := 0; p < k; p++ {
				if p == s || size[p] >= partCap {
					continue
				}
				delta := 2*(dotRV(R, p, r, v, k)-ds) + 2*norm2[v]
				if delta > bestDelta {
					best, bestDelta = p, delta
				}
			}
			if best >= 0 {
				addRV(R, s, r, v, k, -1)
				size[s]--
				assign[v] = best
				size[best]++
				addRV(R, best, r, v, k, +1)
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	return assign, nil
}
