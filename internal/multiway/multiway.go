// Package multiway implements balanced k-way circuit partitioning — the
// extension of the paper's IG-Match flow to the multiple-way formulations
// of Sanchis [26] and Yeh–Cheng–Lin [35] that Section 5 points toward
// (packaging, hardware simulation across many boards, multi-FPGA
// mapping), under the KaHyPar-style (k, ε, fixed-vertex) contract:
//
//   - exactly K non-empty parts;
//   - every part holds at most ⌈(1+ε)·n/K⌉ modules;
//   - every fixed module sits in its pinned part.
//
// Two engines satisfy the contract. The default recursively bisects with
// IG-Match, each level sweeping only the split window its share of the ε
// budget allows (core.Balance) with the level's fixed modules pinned into
// the König completion (core.FixedSides); when a level's sweep finds no
// feasible completion, a deterministic fallback split repaired by
// FM-gain moves keeps the contract. The alternative (Options.Spectral)
// embeds the modules with the first K eigenvectors of the module
// Laplacian and assigns parts by the Riolo–Newman vector-partitioning
// construction.
//
// Three standard quality metrics are reported: the number of spanning
// nets, the connectivity (sum over nets of spans−1, the "λ−1" metric),
// and the multiway ratio value Σᵢ ext(Vᵢ)/|Vᵢ|, which for k=2 is the
// ratio-cut cost scaled by the module count.
package multiway

import (
	"math"
	"sort"

	"igpart/internal/core"
	"igpart/internal/hypergraph"
)

// Unbounded disables the imbalance budget ε: parts may be any size above
// one module. With K=2 and no fixed modules this reproduces the plain
// IG-Match bisection bit for bit.
var Unbounded = math.Inf(1)

// Options configures a k-way run.
type Options struct {
	// K is the number of parts (≥ 2).
	K int
	// Eps is the imbalance budget ε ≥ 0: every part holds at most
	// ⌈(1+ε)·n/K⌉ modules (PartCap). 0 demands perfect balance;
	// Unbounded (+Inf) disables the budget.
	Eps float64
	// Fixed pins modules to parts: Fixed[v] ∈ [0,K) pins module v there,
	// −1 leaves it free. nil leaves every module free.
	Fixed []int
	// Spectral selects the direct spectral-k engine — Riolo–Newman
	// vector partitioning on the first K eigenvectors — instead of
	// recursive bisection.
	Spectral bool
	// Candidates, when positive, makes each constrained bisection probe
	// that many evenly spaced splits (core.PartitionCandidates) instead
	// of sweeping the whole balance window — the scalable trade for big
	// circuits. 0 sweeps the full window.
	Candidates int
	// Core configures each IG-Match bisection (parallelism, eigensolver,
	// recorder, context, fault injection). Core.Balance and
	// Core.FixedSides are owned by the driver and overwritten per level.
	Core core.Options
}

// Result is a k-way partition with its quality metrics.
type Result struct {
	// Part maps each module to its part index in [0, K).
	Part []int
	// K is the number of parts produced. The balanced engines always
	// deliver the requested K, each part non-empty.
	K int
	// Cap is the per-part module ceiling ⌈(1+ε)·n/K⌉ the run enforced
	// (n when the budget was Unbounded).
	Cap int
	// SpanningNets counts nets touching at least two parts.
	SpanningNets int
	// Connectivity is Σ over nets of (parts spanned − 1) — the λ−1 metric;
	// it equals the cut count for k=2 and grows with fragmentation.
	Connectivity int
	// RatioValue is Σ_i ext(V_i)/|V_i|, where ext(V_i) counts nets with
	// pins both inside and outside part i — the multiway generalization of
	// the ratio-cut numerator/denominator tradeoff.
	RatioValue float64
	// Sizes lists the part sizes.
	Sizes []int
}

// PartCap returns the per-part module ceiling ⌈(1+ε)·n/k⌉ of the balance
// contract (n when ε is Unbounded). A hair is shaved off before the
// ceiling so binary-inexact ε values (0.1·n/k landing at 22.0000…04)
// don't round a whole extra module into the cap.
func PartCap(n, k int, eps float64) int {
	if math.IsInf(eps, 1) {
		return n
	}
	c := int(math.Ceil((1+eps)*float64(n)/float64(k) - 1e-9))
	if c < 1 {
		c = 1
	}
	if c > n {
		c = n
	}
	return c
}

// Evaluate computes the multiway metrics for an arbitrary part assignment
// with parts 0..k−1.
func Evaluate(h *hypergraph.Hypergraph, part []int, k int) Result {
	res := Result{Part: part, K: k, Sizes: make([]int, k)}
	for _, p := range part {
		res.Sizes[p]++
	}
	// external[i] counts nets crossing part i's boundary.
	external := make([]int, k)
	seen := make([]int, k)
	for i := range seen {
		seen[i] = -1
	}
	for e := 0; e < h.NumNets(); e++ {
		spans := 0
		for _, v := range h.Pins(e) {
			p := part[v]
			if seen[p] != e {
				seen[p] = e
				spans++
			}
		}
		if spans >= 2 {
			res.SpanningNets++
			res.Connectivity += spans - 1
			// Each spanned part sees this net as external.
			for _, v := range h.Pins(e) {
				p := part[v]
				if seen[p] == e {
					seen[p] = -2 - e // count once per part
					external[p]++
				}
			}
		}
	}
	for i := 0; i < k; i++ {
		if res.Sizes[i] > 0 {
			res.RatioValue += float64(external[i]) / float64(res.Sizes[i])
		}
	}
	return res
}

// PartSizesSorted returns the part sizes in descending order (reporting
// convenience).
func (r Result) PartSizesSorted() []int {
	s := append([]int(nil), r.Sizes...)
	sort.Sort(sort.Reverse(sort.IntSlice(s)))
	return s
}

func allModules(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}
