// Package multiway implements k-way circuit partitioning by recursive
// IG-Match bisection — the natural extension of the paper's flow to the
// multiple-way formulations of Sanchis [26] and Yeh–Cheng–Lin [35] that
// Section 5 points toward (packaging, hardware simulation across many
// boards, multi-FPGA mapping).
//
// The driver repeatedly bisects the currently largest part with IG-Match
// on the induced sub-netlist until k parts exist (or no part can be split
// further). Three standard quality metrics are reported: the number of
// spanning nets, the connectivity (sum over nets of spans−1, the "λ−1"
// metric), and the multiway ratio value Σᵢ ext(Vᵢ)/|Vᵢ|, which for k=2
// is the ratio-cut cost scaled by the module count.
package multiway

import (
	"errors"
	"fmt"
	"sort"

	"igpart/internal/core"
	"igpart/internal/hypergraph"
)

// Options configures a k-way run.
type Options struct {
	// K is the number of parts (≥ 2).
	K int
	// MinPart refuses to split parts below this size (default 2).
	MinPart int
	// Core configures each IG-Match bisection.
	Core core.Options
}

// Result is a k-way partition with its quality metrics.
type Result struct {
	// Part maps each module to its part index in [0, K).
	Part []int
	// K is the number of non-empty parts produced (may fall short of the
	// request when the circuit cannot be split further).
	K int
	// SpanningNets counts nets touching at least two parts.
	SpanningNets int
	// Connectivity is Σ over nets of (parts spanned − 1) — the λ−1 metric;
	// it equals the cut count for k=2 and grows with fragmentation.
	Connectivity int
	// RatioValue is Σ_i ext(V_i)/|V_i|, where ext(V_i) counts nets with
	// pins both inside and outside part i — the multiway generalization of
	// the ratio-cut numerator/denominator tradeoff.
	RatioValue float64
	// Sizes lists the part sizes.
	Sizes []int
}

// Partition produces a k-way module partition of h.
func Partition(h *hypergraph.Hypergraph, opts Options) (Result, error) {
	if opts.K < 2 {
		return Result{}, errors.New("multiway: K must be at least 2")
	}
	if opts.MinPart < 2 {
		opts.MinPart = 2
	}
	n := h.NumModules()
	if n < opts.K {
		return Result{}, fmt.Errorf("multiway: %d modules cannot form %d parts", n, opts.K)
	}

	part := make([]int, n)
	members := [][]int{allModules(n)}

	for len(members) < opts.K {
		// Split the largest still-splittable, non-frozen part.
		idx := -1
		for i, m := range members {
			if isFrozen(m) || len(m) < 2*opts.MinPart {
				continue
			}
			if idx < 0 || len(m) > len(members[idx]) {
				idx = i
			}
		}
		if idx < 0 {
			break
		}
		left, right, err := bisect(h, members[idx], opts.Core)
		if err != nil {
			// Degenerate sub-netlist: freeze this part so it is never
			// retried, and keep splitting the others.
			members[idx] = markFrozen(members[idx])
			continue
		}
		members[idx] = left
		members = append(members, right)
	}

	for p, m := range members {
		for _, v := range unfreeze(m) {
			part[v] = p
		}
	}
	res := Evaluate(h, part, len(members))
	return res, nil
}

// frozen parts are marked by negating indices−1 in a copy; helpers below
// keep that encoding local to this file.
func markFrozen(m []int) []int {
	out := make([]int, len(m))
	for i, v := range m {
		out[i] = -v - 1
	}
	return out
}

func unfreeze(m []int) []int {
	out := make([]int, len(m))
	for i, v := range m {
		if v < 0 {
			out[i] = -v - 1
		} else {
			out[i] = v
		}
	}
	return out
}

func isFrozen(m []int) bool { return len(m) > 0 && m[0] < 0 }

func allModules(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// bisect runs IG-Match on the sub-netlist induced by the given modules and
// returns the two sides as original-module lists.
func bisect(h *hypergraph.Hypergraph, modules []int, coreOpts core.Options) (left, right []int, err error) {
	keep := make([]bool, h.NumModules())
	for _, v := range modules {
		keep[v] = true
	}
	sub, moduleMap, _ := hypergraph.SubHypergraph(h, keep)
	if sub.NumNets() < 2 || sub.NumModules() < 2 {
		return nil, nil, errors.New("multiway: sub-netlist too degenerate to bisect")
	}
	res, err := core.Partition(sub, coreOpts)
	if err != nil {
		return nil, nil, err
	}
	for i, orig := range moduleMap {
		if res.Partition.Side(i) == 0 {
			left = append(left, orig)
		} else {
			right = append(right, orig)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return nil, nil, errors.New("multiway: bisection left a side empty")
	}
	return left, right, nil
}

// Evaluate computes the multiway metrics for an arbitrary part assignment
// with parts 0..k−1.
func Evaluate(h *hypergraph.Hypergraph, part []int, k int) Result {
	res := Result{Part: part, K: k, Sizes: make([]int, k)}
	for _, p := range part {
		res.Sizes[p]++
	}
	// external[i] counts nets crossing part i's boundary.
	external := make([]int, k)
	seen := make([]int, k)
	for i := range seen {
		seen[i] = -1
	}
	for e := 0; e < h.NumNets(); e++ {
		spans := 0
		for _, v := range h.Pins(e) {
			p := part[v]
			if seen[p] != e {
				seen[p] = e
				spans++
			}
		}
		if spans >= 2 {
			res.SpanningNets++
			res.Connectivity += spans - 1
			// Each spanned part sees this net as external.
			for _, v := range h.Pins(e) {
				p := part[v]
				if seen[p] == e {
					seen[p] = -2 - e // count once per part
					external[p]++
				}
			}
		}
	}
	for i := 0; i < k; i++ {
		if res.Sizes[i] > 0 {
			res.RatioValue += float64(external[i]) / float64(res.Sizes[i])
		}
	}
	return res
}

// PartSizesSorted returns the part sizes in descending order (reporting
// convenience).
func (r Result) PartSizesSorted() []int {
	s := append([]int(nil), r.Sizes...)
	sort.Sort(sort.Reverse(sort.IntSlice(s)))
	return s
}
