package multiway

import (
	"math/rand"
	"testing"
	"testing/quick"

	"igpart/internal/hypergraph"
)

// blocks builds a circuit with `k` planted clusters of `size` modules,
// adjacent clusters joined by one bridge net each.
func blocks(k, size int, seed int64) *hypergraph.Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	b := hypergraph.NewBuilder()
	b.SetNumModules(k * size)
	for c := 0; c < k; c++ {
		base := c * size
		for i := 0; i < size-1; i++ {
			b.AddNet(base+i, base+i+1)
		}
		for e := 0; e < 2*size; e++ {
			b.AddNet(base+rng.Intn(size), base+rng.Intn(size), base+rng.Intn(size))
		}
		if c > 0 {
			b.AddNet((c-1)*size+rng.Intn(size), base+rng.Intn(size))
		}
	}
	return b.Build()
}

func TestFourWayRecoversBlocks(t *testing.T) {
	h := blocks(4, 20, 3)
	res, err := Partition(h, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 4 {
		t.Fatalf("K = %d, want 4", res.K)
	}
	for p, sz := range res.Sizes {
		if sz == 0 {
			t.Errorf("part %d empty", p)
		}
	}
	// With 3 bridges, a perfect quad split spans exactly 3 nets.
	if res.SpanningNets > 8 {
		t.Errorf("spanning nets = %d, want near 3", res.SpanningNets)
	}
	// Each planted block should land (almost) whole in one part.
	for c := 0; c < 4; c++ {
		counts := map[int]int{}
		for v := c * 20; v < (c+1)*20; v++ {
			counts[res.Part[v]]++
		}
		max := 0
		for _, n := range counts {
			if n > max {
				max = n
			}
		}
		if max < 18 {
			t.Errorf("block %d scattered: %v", c, counts)
		}
	}
}

func TestEvaluateMetrics(t *testing.T) {
	// 6 modules in 3 parts; nets: {0,1} internal, {1,2} spans 2,
	// {0,2,4} spans 3, {5} singleton.
	b := hypergraph.NewBuilder()
	b.SetNumModules(6)
	b.AddNet(0, 1)
	b.AddNet(1, 2)
	b.AddNet(0, 2, 4)
	b.AddNet(5)
	h := b.Build()
	part := []int{0, 0, 1, 1, 2, 2}
	res := Evaluate(h, part, 3)
	if res.SpanningNets != 2 {
		t.Errorf("SpanningNets = %d, want 2", res.SpanningNets)
	}
	// Connectivity: (2-1) + (3-1) = 3.
	if res.Connectivity != 3 {
		t.Errorf("Connectivity = %d, want 3", res.Connectivity)
	}
	// external: part0 sees nets {1,2} -> 2; part1 sees {1,2} -> 2;
	// part2 sees {2} -> 1. Sizes all 2.
	want := 2.0/2 + 2.0/2 + 1.0/2
	if diff := res.RatioValue - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("RatioValue = %v, want %v", res.RatioValue, want)
	}
	if got := res.PartSizesSorted(); got[0] != 2 || got[2] != 2 {
		t.Errorf("PartSizesSorted = %v", got)
	}
}

func TestKTwoMatchesBisection(t *testing.T) {
	h := blocks(2, 25, 7)
	res, err := Partition(h, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 {
		t.Fatalf("K = %d", res.K)
	}
	// Connectivity equals spanning nets for k=2 (spans can only be 2).
	if res.Connectivity != res.SpanningNets {
		t.Errorf("k=2: connectivity %d != spanning %d", res.Connectivity, res.SpanningNets)
	}
}

func TestPartitionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 12 + rng.Intn(40)
		b := hypergraph.NewBuilder()
		b.SetNumModules(n)
		for e := 0; e < 2*n; e++ {
			k := 2 + rng.Intn(3)
			pins := make([]int, k)
			for i := range pins {
				pins[i] = rng.Intn(n)
			}
			b.AddNet(pins...)
		}
		h := b.Build()
		k := 2 + rng.Intn(3)
		res, err := Partition(h, Options{K: k})
		if err != nil {
			return true // degenerate netlist
		}
		total := 0
		for p, sz := range res.Sizes {
			if sz == 0 {
				return false
			}
			total += sz
			_ = p
		}
		if total != n {
			return false
		}
		for _, p := range res.Part {
			if p < 0 || p >= res.K {
				return false
			}
		}
		// Re-evaluation agrees.
		re := Evaluate(h, res.Part, res.K)
		return re.SpanningNets == res.SpanningNets &&
			re.Connectivity == res.Connectivity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestUnsplittableStopsEarly(t *testing.T) {
	// A circuit of 4 modules joined by a single net cannot form 4 proper
	// IG-Match parts; the driver must stop with fewer without looping.
	b := hypergraph.NewBuilder()
	b.AddNet(0, 1, 2, 3)
	b.AddNet(0, 1, 2, 3)
	h := b.Build()
	res, err := Partition(h, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.K > 4 || res.K < 1 {
		t.Errorf("K = %d", res.K)
	}
}

func TestErrors(t *testing.T) {
	h := blocks(2, 5, 1)
	if _, err := Partition(h, Options{K: 1}); err == nil {
		t.Error("accepted K=1")
	}
	if _, err := Partition(h, Options{K: 100}); err == nil {
		t.Error("accepted K > modules")
	}
}

func TestDeterministic(t *testing.T) {
	h := blocks(3, 15, 9)
	a, err := Partition(h, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(h, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.SpanningNets != b.SpanningNets || a.RatioValue != b.RatioValue {
		t.Error("nondeterministic")
	}
}

func BenchmarkFourWay(b *testing.B) {
	h := blocks(4, 100, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Partition(h, Options{K: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
