package multiway

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"testing"
	"time"

	"igpart/internal/core"
	"igpart/internal/hypergraph"
	"igpart/internal/netgen"
	"igpart/internal/partition"
)

// randCircuit builds a connected random circuit: a spanning tree plus
// extra 2–4-pin nets.
func randCircuit(n, nets int, seed int64) *hypergraph.Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	b := hypergraph.NewBuilder()
	b.SetNumModules(n)
	for v := 1; v < n; v++ {
		b.AddNet(rng.Intn(v), v)
	}
	for e := 0; e < nets; e++ {
		switch rng.Intn(3) {
		case 0:
			b.AddNet(rng.Intn(n), rng.Intn(n))
		case 1:
			b.AddNet(rng.Intn(n), rng.Intn(n), rng.Intn(n))
		default:
			b.AddNet(rng.Intn(n), rng.Intn(n), rng.Intn(n), rng.Intn(n))
		}
	}
	return b.Build()
}

// randomPins pins up to three distinct modules to random parts (odd
// seeds only, so the battery covers the pin-free path too).
func randomPins(rng *rand.Rand, n, k int) []int {
	fixed := make([]int, n)
	for v := range fixed {
		fixed[v] = -1
	}
	nPins := 1 + rng.Intn(3)
	for i := 0; i < nPins; i++ {
		fixed[rng.Intn(n)] = rng.Intn(k)
	}
	return fixed
}

// checkContract asserts the full balanced k-way contract on a result:
// exactly k non-empty parts, every part within the cap, every fixed
// module in its pinned part, and internally consistent metrics.
func checkContract(t *testing.T, h *hypergraph.Hypergraph, res Result, k int, eps float64, fixed []int) {
	t.Helper()
	n := h.NumModules()
	if res.K != k || len(res.Sizes) != k {
		t.Fatalf("K=%d len(Sizes)=%d, want %d", res.K, len(res.Sizes), k)
	}
	cap_ := PartCap(n, k, eps)
	if res.Cap != cap_ {
		t.Fatalf("Cap=%d, want %d", res.Cap, cap_)
	}
	if len(res.Part) != n {
		t.Fatalf("len(Part)=%d, want %d", len(res.Part), n)
	}
	sizes := make([]int, k)
	for v, p := range res.Part {
		if p < 0 || p >= k {
			t.Fatalf("Part[%d]=%d outside [0,%d)", v, p, k)
		}
		sizes[p]++
	}
	for p := 0; p < k; p++ {
		if sizes[p] != res.Sizes[p] {
			t.Fatalf("Sizes[%d]=%d, recount %d", p, res.Sizes[p], sizes[p])
		}
		if sizes[p] == 0 {
			t.Fatalf("part %d empty", p)
		}
		if sizes[p] > cap_ {
			t.Fatalf("part %d holds %d modules, cap %d (n=%d k=%d eps=%g)", p, sizes[p], cap_, n, k, eps)
		}
	}
	for v, p := range fixed {
		if p >= 0 && res.Part[v] != p {
			t.Fatalf("module %d pinned to part %d, landed in %d", v, p, res.Part[v])
		}
	}
}

// TestKWayPropertyBattery is the contract battery: both engines, 20
// seeds, k ∈ {2,3,4,8}, ε ∈ {0, 0.03, 0.10}, random circuits, random
// pins on odd seeds. Run with -race it also shakes the sweep shards and
// parallel matvecs under the constrained paths.
func TestKWayPropertyBattery(t *testing.T) {
	const seeds = 20
	for _, spectral := range []bool{false, true} {
		for _, k := range []int{2, 3, 4, 8} {
			for _, eps := range []float64{0, 0.03, 0.10} {
				spectral, k, eps := spectral, k, eps
				name := "recursive"
				if spectral {
					name = "spectral"
				}
				t.Run(fmt.Sprintf("%s/k=%d/eps=%g", name, k, eps), func(t *testing.T) {
					t.Parallel()
					for seed := int64(0); seed < seeds; seed++ {
						n := 3*k + int(seed%5)
						h := randCircuit(n, n+n/2, 1000*seed+int64(k))
						opts := Options{K: k, Eps: eps, Spectral: spectral}
						if seed%2 == 1 {
							rng := rand.New(rand.NewSource(seed))
							opts.Fixed = randomPins(rng, n, k)
						}
						res, err := Partition(h, opts)
						if err != nil {
							t.Fatalf("seed %d: %v", seed, err)
						}
						checkContract(t, h, res, k, eps, opts.Fixed)
					}
				})
			}
		}
	}
}

// TestKWayCandidatesBattery runs the candidate-sweep variant through the
// same contract checks on a subset of the matrix.
func TestKWayCandidatesBattery(t *testing.T) {
	for _, k := range []int{2, 4} {
		for seed := int64(0); seed < 10; seed++ {
			n := 6*k + int(seed%7)
			h := randCircuit(n, 2*n, 7000+13*seed)
			opts := Options{K: k, Eps: 0.10, Candidates: 8}
			if seed%2 == 1 {
				rng := rand.New(rand.NewSource(seed))
				opts.Fixed = randomPins(rng, n, k)
			}
			res, err := Partition(h, opts)
			if err != nil {
				t.Fatalf("k=%d seed %d: %v", k, seed, err)
			}
			checkContract(t, h, res, k, 0.10, opts.Fixed)
		}
	}
}

// partHash condenses a part assignment into one pinnable integer.
func partHash(part []int) uint64 {
	h := fnv.New64a()
	for _, p := range part {
		h.Write([]byte{byte(p), byte(p >> 8)})
	}
	return h.Sum64()
}

// TestKTwoUnboundedParityWithIGMatch is the parity pin: k=2 with an
// unbounded budget and no pins must reproduce the plain IG-Match
// bisection bit for bit — same side for every module, pinned by a golden
// FNV hash so any silent divergence (an accidental subgraph copy, a
// constraint leaking into the unconstrained path) fails loudly.
func TestKTwoUnboundedParityWithIGMatch(t *testing.T) {
	h := blocks(2, 30, 11)
	want, err := core.Partition(h, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Partition(h, Options{K: 2, Eps: Unbounded})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < h.NumModules(); v++ {
		wantPart := 0
		if want.Partition.Side(v) == partition.W {
			wantPart = 1
		}
		if got.Part[v] != wantPart {
			t.Fatalf("module %d: kway part %d, IGMatch side %v", v, got.Part[v], want.Partition.Side(v))
		}
	}
	if got.SpanningNets != want.Metrics.CutNets {
		t.Fatalf("spanning nets %d != cut nets %d", got.SpanningNets, want.Metrics.CutNets)
	}
	const golden = uint64(0xbf8bb50830079c6d) // update only with a deliberate algorithm change
	if gh := partHash(got.Part); gh != golden {
		t.Fatalf("parity hash %#x, golden %#x", gh, golden)
	}
}

// TestKTwoUnboundedParityCandidates pins the same parity for the
// candidate-sweep configuration against core.PartitionCandidates.
func TestKTwoUnboundedParityCandidates(t *testing.T) {
	h := blocks(2, 30, 11)
	want, err := core.PartitionCandidates(h, 8, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Partition(h, Options{K: 2, Eps: Unbounded, Candidates: 8})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < h.NumModules(); v++ {
		wantPart := 0
		if want.Partition.Side(v) == partition.W {
			wantPart = 1
		}
		if got.Part[v] != wantPart {
			t.Fatalf("module %d: kway part %d, candidates side %v", v, got.Part[v], want.Partition.Side(v))
		}
	}
}

func TestPartCap(t *testing.T) {
	cases := []struct {
		n, k int
		eps  float64
		want int
	}{
		{100, 4, 0, 25},
		{101, 4, 0, 26},
		{100, 4, Unbounded, 100},
		{100, 3, 0, 34},
		// (1+0.1)·80/4 = 22.000000000000004 in binary: the cap must stay
		// 22, not round the representation error up to 23.
		{80, 4, 0.1, 22},
		{10, 4, 0.03, 3},
		{4, 4, 0, 1},
	}
	for _, c := range cases {
		if got := PartCap(c.n, c.k, c.eps); got != c.want {
			t.Errorf("PartCap(%d,%d,%g) = %d, want %d", c.n, c.k, c.eps, got, c.want)
		}
	}
}

func TestKWayValidation(t *testing.T) {
	h := randCircuit(12, 20, 1)
	bad := []Options{
		{K: 1},
		{K: 0},
		{K: 13},                               // more parts than modules
		{K: 4, Eps: -0.1},                     // negative budget
		{K: 4, Eps: math.NaN()},               // NaN budget
		{K: 4, Fixed: make([]int, 5)},         // wrong length
		{K: 4, Fixed: pinAll(12, 4)},          // Fixed[v]=4 out of range
		{K: 3, Fixed: overfull(12, 0, 5)},     // 5 pins on part 0 exceed the cap 4
		{K: 4, Fixed: leaveNoFree(12, 4)},     // no free module for the pin-less part
		{K: 4, Eps: 0, Fixed: pinNeg(12, -2)}, // Fixed[v]=-2 out of range
	}
	for i, o := range bad {
		if _, err := Partition(h, o); err == nil {
			t.Errorf("case %d (%+v): no error", i, o)
		}
		o.Spectral = true
		if _, err := Partition(h, o); err == nil {
			t.Errorf("case %d spectral (%+v): no error", i, o)
		}
	}
}

func pinAll(n, p int) []int {
	f := make([]int, n)
	for i := range f {
		f[i] = p
	}
	return f
}

func pinNeg(n, v int) []int {
	f := pinAll(n, -1)
	f[0] = v
	return f
}

func overfull(n, p, count int) []int {
	f := pinAll(n, -1)
	for i := 0; i < count; i++ {
		f[i] = p
	}
	return f
}

// leaveNoFree pins every module to parts 0..k−2, starving part k−1.
func leaveNoFree(n, k int) []int {
	f := make([]int, n)
	for i := range f {
		f[i] = i % (k - 1)
	}
	return f
}

// TestKWayCancelledContext asserts both engines notice a pre-cancelled
// context before doing any work.
func TestKWayCancelledContext(t *testing.T) {
	h := blocks(4, 20, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, spectral := range []bool{false, true} {
		opts := Options{K: 4, Eps: Unbounded, Spectral: spectral}
		opts.Core.Ctx = ctx
		if _, err := Partition(h, opts); !errors.Is(err, context.Canceled) {
			t.Errorf("spectral=%v: err = %v, want context.Canceled", spectral, err)
		}
	}
}

// TestKWayCancelMidRun mirrors the service's Prim2 cancellation test at
// the engine level: a k=4 run over the full Prim2 benchmark, cancelled
// shortly after it starts, must return a context error within 2 seconds
// — the recursion polls its context between levels and the bisections
// poll inside their sweeps.
func TestKWayCancelMidRun(t *testing.T) {
	cfg, ok := netgen.ByName("Prim2")
	if !ok {
		t.Fatal("Prim2 preset missing")
	}
	h, err := netgen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	opts := Options{K: 4, Eps: 0.10}
	opts.Core.Ctx = ctx
	opts.Core.Parallelism = 1

	errc := make(chan error, 1)
	go func() {
		_, err := Partition(h, opts)
		errc <- err
	}()
	time.Sleep(30 * time.Millisecond) // bite into the first bisection
	t0 := time.Now()
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if elapsed := time.Since(t0); elapsed > 2*time.Second {
			t.Fatalf("cancellation took %v, want < 2s", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run ignored cancellation")
	}
}

// TestKWaySpectralRecoversBlocks sanity-checks the spectral engine's
// quality: four planted clusters should come back (mostly) whole.
func TestKWaySpectralRecoversBlocks(t *testing.T) {
	h := blocks(4, 20, 3)
	res, err := Partition(h, Options{K: 4, Eps: 0.10, Spectral: true})
	if err != nil {
		t.Fatal(err)
	}
	checkContract(t, h, res, 4, 0.10, nil)
	for c := 0; c < 4; c++ {
		counts := map[int]int{}
		for v := c * 20; v < (c+1)*20; v++ {
			counts[res.Part[v]]++
		}
		max := 0
		for _, n := range counts {
			if n > max {
				max = n
			}
		}
		if max < 15 {
			t.Errorf("block %d scattered: %v", c, counts)
		}
	}
}

// TestKWayFixedModulesSteerParts pins one module of each planted block
// to a distinct part and requires each whole block to follow its pin —
// the fixed-module threading must reach every recursion level.
func TestKWayFixedModulesSteerParts(t *testing.T) {
	const size = 20
	h := blocks(4, size, 3)
	fixed := pinAll(4*size, -1)
	// Pin block c's first module to part 3−c: the reverse of the layout
	// order, so following the pins is never the accidental default.
	for c := 0; c < 4; c++ {
		fixed[c*size] = 3 - c
	}
	for _, spectral := range []bool{false, true} {
		res, err := Partition(h, Options{K: 4, Eps: 0.10, Fixed: fixed, Spectral: spectral})
		if err != nil {
			t.Fatalf("spectral=%v: %v", spectral, err)
		}
		checkContract(t, h, res, 4, 0.10, fixed)
		for c := 0; c < 4; c++ {
			inPinned := 0
			for v := c * size; v < (c+1)*size; v++ {
				if res.Part[v] == 3-c {
					inPinned++
				}
			}
			if inPinned < size*3/4 {
				t.Errorf("spectral=%v: block %d: only %d/%d modules followed the pin to part %d", spectral, c, inPinned, size, 3-c)
			}
		}
	}
}
