package portfolio

import (
	"fmt"
	"sort"

	"igpart/internal/core"
	"igpart/internal/hypergraph"
	"igpart/internal/obs"
	"igpart/internal/partition"
)

// DefaultWarmThreshold is the fraction of base nets a delta may touch
// before WarmStart falls back to a cold solve: past it the cached
// Fiedler ordering no longer resembles the perturbed instance's and the
// windowed sweep would chase a stale optimum.
const DefaultWarmThreshold = 0.25

// WarmOptions configures an incremental re-solve.
type WarmOptions struct {
	// Threshold overrides DefaultWarmThreshold when positive.
	Threshold float64
	// Window overrides the sweep half-width around the carried-over
	// best rank when positive; 0 derives it from the delta size.
	Window int
	// Core configures the underlying sweep (parallelism, recorder,
	// context, eigen options for a cold fallback).
	Core core.Options
}

// WarmResult is the outcome of WarmStart. The embedded core.Result
// partitions H, the delta'd netlist.
type WarmResult struct {
	core.Result
	// H is the netlist the delta produced — the one Partition and
	// Metrics refer to.
	H *hypergraph.Hypergraph
	// Cold reports that the delta exceeded the perturbation threshold
	// and a full from-scratch solve ran instead of the windowed sweep.
	Cold bool
	// TouchedNets is the delta's perturbation size.
	TouchedNets int
	// SweepLo and SweepHi are the rank window actually swept (zero
	// when Cold).
	SweepLo, SweepHi int
}

// WarmStart re-partitions base after applying delta d, reusing the
// previous solve's net ordering instead of re-running the eigensolve:
// surviving nets keep their relative order, added nets slot in at the
// median position of the base nets they share modules with, and only a
// rank window around the carried-over best split is swept (sweep +
// König completion — the eigensolve is skipped entirely). When the
// delta touches more than Threshold of the base nets, it falls back to
// a cold core.Partition on the new netlist.
//
// An empty delta reproduces the base result bit for bit: the ordering
// is unchanged and the window contains the base best rank, which the
// earliest-best shard reduction then re-selects.
func WarmStart(base *hypergraph.Hypergraph, baseOrder []int, baseBestRank int, d Delta, opts WarmOptions) (WarmResult, error) {
	m0 := base.NumNets()
	if len(baseOrder) != m0 {
		return WarmResult{}, fmt.Errorf("portfolio: base order has %d nets, want %d", len(baseOrder), m0)
	}
	if baseBestRank < 1 || baseBestRank > m0-1 {
		return WarmResult{}, fmt.Errorf("portfolio: base best rank %d outside [1,%d]", baseBestRank, m0-1)
	}
	if err := d.Validate(base); err != nil {
		return WarmResult{}, fmt.Errorf("portfolio: invalid delta: %w", err)
	}
	rec := obs.OrNop(opts.Core.Rec)
	h, netMap := d.Apply(base)
	touched := d.TouchedNets()
	res := WarmResult{H: h, TouchedNets: touched}

	threshold := opts.Threshold
	if threshold <= 0 {
		threshold = DefaultWarmThreshold
	}
	if float64(touched) > threshold*float64(m0) {
		rec.Metrics().Counter("portfolio.cold_fallback").Add(1)
		cold, err := core.Partition(h, opts.Core)
		if err != nil {
			return WarmResult{}, err
		}
		res.Result = cold
		res.Cold = true
		return res, nil
	}

	order, rank := warmOrder(base, baseOrder, baseBestRank, h, netMap)
	m := h.NumNets()
	w := opts.Window
	if w <= 0 {
		w = warmWindow(m, touched)
	}
	co := opts.Core
	co.SweepLo, co.SweepHi = rank-w, rank+w
	if co.SweepLo < 1 {
		co.SweepLo = 1
	}
	if co.SweepHi > m-1 {
		co.SweepHi = m - 1
	}
	rec.Metrics().Counter("portfolio.warm_start").Add(1)
	warm, err := core.PartitionWithOrder(h, order, co)
	if err != nil {
		return WarmResult{}, err
	}
	res.Result = warm
	res.SweepLo, res.SweepHi = co.SweepLo, co.SweepHi

	// The dense window assumes the optimum stayed near the carried-over
	// rank; a perturbation can relocate it. A sparse global probe —
	// a few dozen evenly spaced completions over the whole ordering —
	// catches that at a cost independent of the window. Strict
	// improvement only: on an unchanged instance the windowed winner is
	// the global optimum, so a probe can at best tie and the result
	// stays bit-identical.
	probeOpts := opts.Core
	probeOpts.SweepLo, probeOpts.SweepHi = 0, 0
	if probe, perr := core.PartitionCandidatesWithOrder(h, order, 0, probeOpts); perr == nil &&
		betterMetrics(probe.Metrics, res.Metrics) {
		res.Result = probe
		rec.Metrics().Counter("portfolio.warm_probe_win").Add(1)
	}

	// A net removal can disconnect the circuit, putting a zero-cut
	// partition arbitrarily far from the carried-over rank window. The
	// component structure is an O(pins) check, so guard the windowed
	// sweep with it; strict improvement only, which keeps the
	// empty-delta path bit-identical.
	if p, met, ok := componentSplit(h); ok && met.RatioCut < res.Metrics.RatioCut {
		res.Partition = p
		res.Metrics = met
		rec.Metrics().Counter("portfolio.component_split").Add(1)
	}
	return res, nil
}

// componentSplit builds the best-balanced zero-cut partition of a
// disconnected netlist by packing whole components onto the lighter
// side (largest first). ok is false when h is connected.
func componentSplit(h *hypergraph.Hypergraph) (*partition.Bipartition, partition.Metrics, bool) {
	comp, n := hypergraph.ConnectedComponents(h)
	if n < 2 {
		return nil, partition.Metrics{}, false
	}
	sizes := make([]int, n)
	for _, c := range comp {
		sizes[c]++
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return sizes[idx[i]] > sizes[idx[j]] })
	sideOf := make([]partition.Side, n)
	nu, nw := 0, 0
	for _, c := range idx {
		if nu <= nw {
			sideOf[c] = partition.U
			nu += sizes[c]
		} else {
			sideOf[c] = partition.W
			nw += sizes[c]
		}
	}
	sides := make([]partition.Side, h.NumModules())
	for v, c := range comp {
		sides[v] = sideOf[c]
	}
	p := partition.FromSides(sides)
	met := partition.Evaluate(h, p)
	if met.SizeU == 0 || met.SizeW == 0 {
		return nil, partition.Metrics{}, false
	}
	return p, met, true
}

// warmWindow sizes the sweep half-width: wide enough that small deltas
// cannot push the optimum out of reach, narrow enough that the windowed
// sweep beats the full one by a large factor on big instances.
func warmWindow(m, touched int) int {
	w := 128
	if t := 4 * touched; t > w {
		w = t
	}
	if f := m / 32; f > w {
		w = f
	}
	return w
}

// warmOrder builds the new net ordering from the cached one. Every
// surviving base net keeps its base rank as a sort key; an added net
// takes the median key of the surviving base nets it shares a module
// with (appended at the end when it has no placed neighbor). It returns
// the ordering and the delta-adjusted best rank: the number of nets
// whose key falls before the base best split boundary.
func warmOrder(base *hypergraph.Hypergraph, baseOrder []int, baseBestRank int, h *hypergraph.Hypergraph, netMap []int) ([]int, int) {
	m0, m := base.NumNets(), h.NumNets()
	pos := make([]int, m0)
	for i, e := range baseOrder {
		pos[e] = i
	}
	// survivingKey[f] is base net f's sort key, or −1 if removed.
	survivingKey := make([]float64, m0)
	for f := range survivingKey {
		survivingKey[f] = -1
	}
	for _, f := range netMap {
		if f >= 0 {
			survivingKey[f] = float64(pos[f])
		}
	}
	key := make([]float64, m)
	var neigh []float64
	for e := 0; e < m; e++ {
		if f := netMap[e]; f >= 0 {
			key[e] = float64(pos[f])
			continue
		}
		neigh = neigh[:0]
		for _, v := range h.Pins(e) {
			if v >= base.NumModules() {
				continue // fresh module, no base incidence
			}
			for _, f := range base.Nets(v) {
				if survivingKey[f] >= 0 {
					neigh = append(neigh, survivingKey[f])
				}
			}
		}
		if len(neigh) == 0 {
			key[e] = float64(m0) // no anchor: append at the end
			continue
		}
		sort.Float64s(neigh)
		key[e] = neigh[len(neigh)/2]
	}
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return key[order[i]] < key[order[j]] })

	// The base best split puts baseOrder[0..r−1] on one side: carry the
	// boundary over as "everything keyed strictly before it".
	boundary := float64(baseBestRank) - 0.5
	rank := 0
	for _, e := range order {
		if key[e] < boundary {
			rank++
		}
	}
	if rank < 1 {
		rank = 1
	}
	if rank > m-1 {
		rank = m - 1
	}
	return order, rank
}
