// Package portfolio turns the fixed-algorithm pipeline into an adaptive
// one, two ways:
//
//   - Race: extract the instance's cheap feature vector
//     (internal/features), pick a starting lineup of engines suited to
//     its class, and race them under one parent context with a shared
//     budget — the first result meeting an acceptance ratio-cut bound
//     wins and cancels the losers; otherwise the best result standing
//     at the deadline wins.
//
//   - WarmStart (warm.go): re-solve an ECO delta of a previously solved
//     netlist by reusing its Fiedler ordering and sweeping only a rank
//     window around the previous winner — no eigensolve at all.
//
// Both paths record portfolio.* counters and per-contender obs spans.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"igpart/internal/core"
	"igpart/internal/eigen"
	"igpart/internal/features"
	"igpart/internal/hypergraph"
	"igpart/internal/multilevel"
	"igpart/internal/obs"
	"igpart/internal/partition"
	"igpart/internal/spectral"
)

// Contender algorithm names. The first three match the bench suite's
// labels so reports line up.
const (
	AlgIGMatch    = "IG-Match"
	AlgMultilevel = "ML-IGMatch"
	AlgEIG1       = "EIG1"
	AlgCandidates = "IG-Candidates"
)

// errLostRace is the cancel cause handed to losing contenders.
var errLostRace = errors.New("portfolio: lost race")

// Options configures a portfolio race.
type Options struct {
	// Budget bounds the whole race; contenders still running when it
	// expires are cancelled and the best finished result wins. 0 means
	// no deadline — the race waits for every contender.
	Budget time.Duration
	// Accept, when positive, is the acceptance ratio-cut bound: the
	// first contender to finish at or under it wins immediately and
	// the rest are cancelled. 0 disables early acceptance, making the
	// outcome independent of contender timing (best result wins).
	Accept float64
	// Lineup overrides the feature-driven lineup selection with an
	// explicit list of contender names.
	Lineup []string
	// Parallelism is passed through to each contender's sweep.
	Parallelism int
	// Seed seeds the contenders' eigensolvers.
	Seed int64
	// Rec receives one span per contender plus race-level counters
	// (portfolio.started, portfolio.cancelled, portfolio.winner.<alg>).
	Rec obs.Recorder
	// Ctx is the parent context; cancelling it aborts the whole race.
	Ctx context.Context
}

// Contender is one engine's outcome within a race.
type Contender struct {
	Alg     string
	Metrics partition.Metrics
	Wall    time.Duration
	// Err is non-nil when the contender failed or was cancelled;
	// Cancelled distinguishes losing the race from genuine failure.
	Err       error
	Cancelled bool
}

// Result is the outcome of a race.
type Result struct {
	// Winner is the winning contender's algorithm name.
	Winner string
	// Partition and Metrics are the winning partition on the input.
	Partition *partition.Bipartition
	Metrics   partition.Metrics
	// NetOrder and BestRank carry the winner's sweep state when the
	// winning engine produces one on the input netlist (IG-Match and
	// IG-Candidates do; ML-IGMatch and EIG1 leave them empty). They
	// seed later WarmStart calls.
	NetOrder []int
	BestRank int
	Lambda2  float64
	// Features is the extracted feature vector that picked the lineup.
	Features features.Vector
	// Contenders reports every raced engine, lineup order.
	Contenders []Contender
	// Accepted reports whether the winner met the acceptance bound
	// early (as opposed to winning at the deadline).
	Accepted bool
}

// Lineup returns the starting lineup for a netlist with feature vector
// v, best engine first. The heuristic follows the bench taxonomy: small
// instances race the direct engines where spectral quality wins; dense
// instances lead with the module-side eigensolve, whose clique model
// sidesteps the heavy intersection graph; large instances lead with the
// engines whose sweep cost is sublinear in splits.
func Lineup(v features.Vector) []string {
	switch v.Class {
	case features.ClassTiny:
		return []string{AlgIGMatch, AlgEIG1}
	case features.ClassDense:
		return []string{AlgEIG1, AlgMultilevel, AlgIGMatch}
	case features.ClassLarge:
		return []string{AlgMultilevel, AlgCandidates, AlgEIG1}
	default: // sparse
		return []string{AlgIGMatch, AlgMultilevel, AlgEIG1}
	}
}

// outcome is what a contender run hands back to the race loop.
type outcome struct {
	part     *partition.Bipartition
	met      partition.Metrics
	netOrder []int
	bestRank int
	lambda2  float64
}

// runFunc runs one engine under ctx. Engines poll ctx cooperatively
// (per sweep split / Lanczos cycle) so a cancelled contender returns
// promptly.
type runFunc func(ctx context.Context, h *hypergraph.Hypergraph, rec obs.Recorder) (outcome, error)

func (o Options) engine(alg string) (runFunc, error) {
	coreOpts := func(ctx context.Context, rec obs.Recorder) core.Options {
		return core.Options{
			Parallelism: o.Parallelism,
			Eigen:       eigen.Options{Seed: o.Seed},
			Rec:         rec,
			Ctx:         ctx,
		}
	}
	switch alg {
	case AlgIGMatch:
		return func(ctx context.Context, h *hypergraph.Hypergraph, rec obs.Recorder) (outcome, error) {
			r, err := core.Partition(h, coreOpts(ctx, rec))
			if err != nil {
				return outcome{}, err
			}
			return outcome{part: r.Partition, met: r.Metrics, netOrder: r.NetOrder, bestRank: r.BestRank, lambda2: r.Lambda2}, nil
		}, nil
	case AlgCandidates:
		return func(ctx context.Context, h *hypergraph.Hypergraph, rec obs.Recorder) (outcome, error) {
			r, err := core.PartitionCandidates(h, 0, coreOpts(ctx, rec))
			if err != nil {
				return outcome{}, err
			}
			return outcome{part: r.Partition, met: r.Metrics, netOrder: r.NetOrder, bestRank: r.BestRank, lambda2: r.Lambda2}, nil
		}, nil
	case AlgMultilevel:
		return func(ctx context.Context, h *hypergraph.Hypergraph, rec obs.Recorder) (outcome, error) {
			r, err := multilevel.Partition(h, multilevel.Options{Core: coreOpts(ctx, obs.Nop), Rec: rec})
			if err != nil {
				return outcome{}, err
			}
			return outcome{part: r.Partition, met: r.Metrics, lambda2: r.Coarsest.Lambda2}, nil
		}, nil
	case AlgEIG1:
		return func(ctx context.Context, h *hypergraph.Hypergraph, rec obs.Recorder) (outcome, error) {
			r, err := spectral.Partition(h, spectral.Options{Eigen: eigen.Options{Seed: o.Seed, Ctx: ctx, Rec: rec}})
			if err != nil {
				return outcome{}, err
			}
			return outcome{part: r.Partition, met: r.Metrics, lambda2: r.Lambda2}, nil
		}, nil
	default:
		return nil, fmt.Errorf("portfolio: unknown contender %q", alg)
	}
}

// Race runs the portfolio on h: lineup selection from the feature
// vector (unless overridden), then all contenders concurrently under
// one budgeted context. See Options for the win conditions.
func Race(h *hypergraph.Hypergraph, opts Options) (Result, error) {
	v := features.Extract(h)
	lineup := opts.Lineup
	if len(lineup) == 0 {
		lineup = Lineup(v)
	}
	runs := make([]runFunc, len(lineup))
	for i, alg := range lineup {
		rf, err := opts.engine(alg)
		if err != nil {
			return Result{}, err
		}
		runs[i] = rf
	}
	res, err := race(h, lineup, runs, opts)
	if err != nil {
		return Result{}, err
	}
	res.Features = v
	return res, nil
}

// race is the engine-agnostic core of Race, split out so tests can
// inject synthetic contenders and prove the cancellation protocol.
func race(h *hypergraph.Hypergraph, lineup []string, runs []runFunc, opts Options) (Result, error) {
	rec := obs.OrNop(opts.Rec)
	parent := opts.Ctx
	if parent == nil {
		parent = context.Background()
	}
	ctx := parent
	cancel := context.CancelFunc(func() {})
	if opts.Budget > 0 {
		ctx, cancel = context.WithTimeout(parent, opts.Budget)
	}
	defer cancel()

	type slot struct {
		out       outcome
		err       error
		wall      time.Duration
		cancelled bool
	}
	slots := make([]slot, len(runs))
	cancels := make([]context.CancelCauseFunc, len(runs))
	raceSpan := rec.StartSpan("portfolio-race")
	defer raceSpan.End()
	met := rec.Metrics()

	var mu sync.Mutex
	winner := -1 // index of the early-accepted contender, under mu
	var wg sync.WaitGroup
	for i := range runs {
		cctx, ccancel := context.WithCancelCause(ctx)
		cancels[i] = ccancel
		met.Counter("portfolio.started").Add(1)
		sp := raceSpan.StartSpan("contender:" + lineup[i])
		wg.Add(1)
		go func(i int, cctx context.Context, sp obs.Recorder) {
			defer wg.Done()
			defer sp.End()
			t0 := time.Now()
			out, err := runs[i](cctx, h, sp)
			wall := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			slots[i] = slot{out: out, err: err, wall: wall}
			if err != nil {
				if context.Cause(cctx) == errLostRace {
					slots[i].cancelled = true
				}
				return
			}
			// First acceptable result wins and cancels everyone else.
			if opts.Accept > 0 && out.met.RatioCut <= opts.Accept && winner < 0 {
				winner = i
				for j, c := range cancels {
					if j != i {
						c(errLostRace)
					}
				}
			}
		}(i, cctx, sp)
	}
	wg.Wait()
	cancelledTotal := 0
	for i := range cancels {
		cancels[i](nil) // release timers
		if slots[i].cancelled {
			cancelledTotal++
		}
	}
	met.Counter("portfolio.cancelled").Add(int64(cancelledTotal))

	res := Result{Contenders: make([]Contender, len(runs))}
	best := -1
	for i, s := range slots {
		res.Contenders[i] = Contender{Alg: lineup[i], Metrics: s.out.met, Wall: s.wall, Err: s.err, Cancelled: s.cancelled}
		if s.err != nil {
			continue
		}
		if best < 0 || betterMetrics(s.out.met, slots[best].out.met) {
			best = i
		}
	}
	if winner >= 0 {
		best = winner
		res.Accepted = true
	}
	if best < 0 {
		// Nothing finished. Prefer the parent/budget error; otherwise
		// surface the first contender failure.
		if err := ctx.Err(); err != nil {
			return Result{}, fmt.Errorf("portfolio: no contender finished within budget: %w", err)
		}
		for _, s := range slots {
			if s.err != nil {
				return Result{}, fmt.Errorf("portfolio: all contenders failed: %w", s.err)
			}
		}
		return Result{}, errors.New("portfolio: empty lineup")
	}
	w := slots[best]
	res.Winner = lineup[best]
	res.Partition = w.out.part
	res.Metrics = w.out.met
	res.NetOrder = w.out.netOrder
	res.BestRank = w.out.bestRank
	res.Lambda2 = w.out.lambda2
	met.Counter("portfolio.winner." + res.Winner).Add(1)
	met.Gauge("portfolio.winner_ratio").Set(res.Metrics.RatioCut)
	return res, nil
}

// betterMetrics orders race results like the sweep reduction orders
// splits: lower ratio cut first, then fewer cut nets; the earlier
// lineup slot keeps ties.
func betterMetrics(a, b partition.Metrics) bool {
	if a.RatioCut != b.RatioCut {
		return a.RatioCut < b.RatioCut
	}
	return a.CutNets < b.CutNets
}
