package portfolio

import (
	"strings"
	"testing"

	"igpart/internal/hypergraph"
)

// base44 builds a 4-net, 5-module test netlist with known pins.
func base44() *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder()
	b.AddNet(0, 1)
	b.AddNet(1, 2)
	b.AddNet(2, 3)
	b.AddNet(3, 4)
	return b.Build()
}

func TestDeltaValidateRejections(t *testing.T) {
	h := base44()
	cases := []struct {
		name string
		d    Delta
		want string
	}{
		{"remove-out-of-range", Delta{RemoveNets: []int{4}}, "outside"},
		{"remove-negative", Delta{RemoveNets: []int{-1}}, "outside"},
		{"remove-twice", Delta{RemoveNets: []int{1, 1}}, "twice"},
		{"empty-add-net", Delta{AddNets: [][]int{{}}}, "empty pin list"},
		{"add-net-bad-module", Delta{AddNets: [][]int{{0, 99}}}, "outside"},
		{"add-pin-bad-net", Delta{AddPins: []PinRef{{Net: 9, Module: 0}}}, "outside"},
		{"add-pin-on-removed", Delta{RemoveNets: []int{1}, AddPins: []PinRef{{Net: 1, Module: 4}}}, "also removed"},
		{"add-existing-pin", Delta{AddPins: []PinRef{{Net: 0, Module: 1}}}, "already present"},
		{"add-pin-twice", Delta{AddPins: []PinRef{{Net: 0, Module: 3}, {Net: 0, Module: 3}}}, "twice"},
		{"remove-missing-pin", Delta{RemovePins: []PinRef{{Net: 0, Module: 4}}}, "not present"},
		{"remove-pin-on-removed", Delta{RemoveNets: []int{2}, RemovePins: []PinRef{{Net: 2, Module: 2}}}, "also removed"},
		{"add-and-remove-pin", Delta{AddPins: []PinRef{{Net: 0, Module: 3}}, RemovePins: []PinRef{{Net: 0, Module: 3}}}, "both added and removed"},
	}
	for _, c := range cases {
		err := c.d.Validate(h)
		if err == nil {
			t.Errorf("%s: Validate accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.want)
		}
	}
}

func TestDeltaValidateAccepts(t *testing.T) {
	h := base44()
	ok := []Delta{
		{},
		{AddNets: [][]int{{0, 4}, {1, 3}}},
		{RemoveNets: []int{3, 0}},
		{AddPins: []PinRef{{Net: 0, Module: 4}}, RemovePins: []PinRef{{Net: 1, Module: 2}}},
		{AddNets: [][]int{{0, 5}}}, // fresh module one past the base range
	}
	for i, d := range ok {
		if err := d.Validate(h); err != nil {
			t.Errorf("delta %d: %v", i, err)
		}
	}
}

func TestDeltaCanonicalOrderIndependent(t *testing.T) {
	a := Delta{
		AddNets:    [][]int{{3, 0}, {1, 4}},
		RemoveNets: []int{2, 0},
		AddPins:    []PinRef{{Net: 1, Module: 4}, {Net: 1, Module: 0}},
		RemovePins: []PinRef{{Net: 3, Module: 4}},
	}
	b := Delta{
		AddNets:    [][]int{{4, 1}, {0, 3}},
		RemoveNets: []int{0, 2},
		AddPins:    []PinRef{{Net: 1, Module: 0}, {Net: 1, Module: 4}},
		RemovePins: []PinRef{{Net: 3, Module: 4}},
	}
	if a.Canonical() != b.Canonical() {
		t.Fatalf("canonical differs:\n%s\n%s", a.Canonical(), b.Canonical())
	}
	c := a
	c.RemoveNets = []int{0, 3}
	if a.Canonical() == c.Canonical() {
		t.Fatal("different deltas share a canonical encoding")
	}
	if (Delta{}).Canonical() != "delta/v1" {
		t.Fatalf("empty canonical = %q", (Delta{}).Canonical())
	}
}

func TestDeltaApply(t *testing.T) {
	h := base44()
	d := Delta{
		AddNets:    [][]int{{0, 4}},
		RemoveNets: []int{1},
		AddPins:    []PinRef{{Net: 0, Module: 2}},
		RemovePins: []PinRef{{Net: 3, Module: 3}},
	}
	if err := d.Validate(h); err != nil {
		t.Fatal(err)
	}
	nh, netMap := d.Apply(h)
	if nh.NumNets() != 4 {
		t.Fatalf("nets = %d, want 4", nh.NumNets())
	}
	wantMap := []int{0, 2, 3, -1}
	for i, f := range wantMap {
		if netMap[i] != f {
			t.Fatalf("netMap = %v, want %v", netMap, wantMap)
		}
	}
	wantPins := [][]int{{0, 1, 2}, {2, 3}, {4}, {0, 4}}
	for e, want := range wantPins {
		got := nh.Pins(e)
		if len(got) != len(want) {
			t.Fatalf("net %d pins %v, want %v", e, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("net %d pins %v, want %v", e, got, want)
			}
		}
	}
	if d.TouchedNets() != 4 { // +1 net, −1 net, 2 pin-edited nets
		t.Fatalf("touched = %d, want 4", d.TouchedNets())
	}
}

func TestDeltaEmptyAndTouched(t *testing.T) {
	if !(Delta{}).Empty() {
		t.Fatal("zero delta not Empty")
	}
	d := Delta{RemoveNets: []int{0}, RemovePins: []PinRef{{Net: 0, Module: 1}}}
	// The pin edit targets a removed net: removal supersedes it.
	if d.TouchedNets() != 1 {
		t.Fatalf("touched = %d, want 1", d.TouchedNets())
	}
}
