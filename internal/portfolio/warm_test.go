package portfolio

import (
	"math/rand"
	"testing"

	"igpart/internal/core"
	"igpart/internal/hypergraph"
	"igpart/internal/netgen"
)

func genCircuit(t testing.TB, modules, nets int, seed int64) *hypergraph.Hypergraph {
	t.Helper()
	h, err := netgen.Generate(netgen.Config{Name: "eco", Modules: modules, Nets: nets, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// randomDelta perturbs ~frac of the base nets: a third added, a third
// removed, a third pin edits.
func randomDelta(rng *rand.Rand, h *hypergraph.Hypergraph, frac float64) Delta {
	m, n := h.NumNets(), h.NumModules()
	k := int(frac * float64(m))
	if k < 3 {
		k = 3
	}
	var d Delta
	removed := make(map[int]bool)
	for i := 0; i < k/3; i++ {
		e := rng.Intn(m)
		if removed[e] {
			continue
		}
		removed[e] = true
		d.RemoveNets = append(d.RemoveNets, e)
	}
	for i := 0; i < k/3; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			b = (b + 1) % n
		}
		d.AddNets = append(d.AddNets, []int{a, b})
	}
	seen := make(map[PinRef]bool)
	for i := 0; i < k/3; i++ {
		e := rng.Intn(m)
		if removed[e] {
			continue
		}
		v := rng.Intn(n)
		p := PinRef{Net: e, Module: v}
		if seen[p] || hasPin(h, e, v) {
			continue
		}
		seen[p] = true
		d.AddPins = append(d.AddPins, p)
	}
	return d
}

// TestWarmStartParityBattery is the 20-seed ECO battery: a ~3%-of-nets
// delta warm-started from the cached base solve must land within
// tolerance of a cold solve on the same perturbed netlist.
func TestWarmStartParityBattery(t *testing.T) {
	const tol = 1.10 // warm ratio cut within 10% of cold
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := genCircuit(t, 350, 380, 1000+seed)
		base, err := core.Partition(h, core.Options{})
		if err != nil {
			t.Fatalf("seed %d: base: %v", seed, err)
		}
		d := randomDelta(rng, h, 0.03)
		if err := d.Validate(h); err != nil {
			t.Fatalf("seed %d: delta: %v", seed, err)
		}
		warm, err := WarmStart(h, base.NetOrder, base.BestRank, d, WarmOptions{})
		if err != nil {
			t.Fatalf("seed %d: warm: %v", seed, err)
		}
		if warm.Cold {
			t.Fatalf("seed %d: %d touched nets triggered cold fallback", seed, warm.TouchedNets)
		}
		cold, err := core.Partition(warm.H, core.Options{})
		if err != nil {
			t.Fatalf("seed %d: cold: %v", seed, err)
		}
		if warm.Metrics.RatioCut > cold.Metrics.RatioCut*tol+1e-12 {
			t.Errorf("seed %d: warm ratio %.6g vs cold %.6g exceeds %.0f%% tolerance",
				seed, warm.Metrics.RatioCut, cold.Metrics.RatioCut, (tol-1)*100)
		}
	}
}

// TestWarmStartEmptyDeltaBitIdentical: with no delta the warm start must
// reproduce the base solve exactly — same metrics, same best rank, same
// side for every module.
func TestWarmStartEmptyDeltaBitIdentical(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		h := genCircuit(t, 300, 330, 2000+seed)
		base, err := core.Partition(h, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		warm, err := WarmStart(h, base.NetOrder, base.BestRank, Delta{}, WarmOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if warm.Cold {
			t.Fatal("empty delta fell back to cold")
		}
		if warm.Metrics != base.Metrics {
			t.Fatalf("seed %d: metrics %+v != base %+v", seed, warm.Metrics, base.Metrics)
		}
		if warm.BestRank != base.BestRank {
			t.Fatalf("seed %d: best rank %d != base %d", seed, warm.BestRank, base.BestRank)
		}
		for v := 0; v < h.NumModules(); v++ {
			if warm.Partition.Side(v) != base.Partition.Side(v) {
				t.Fatalf("seed %d: module %d side differs", seed, v)
			}
		}
	}
}

// TestWarmStartColdFallback: a delta past the threshold must run the
// full solve and say so.
func TestWarmStartColdFallback(t *testing.T) {
	h := genCircuit(t, 200, 220, 7)
	base, err := core.Partition(h, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	d := randomDelta(rng, h, 0.9)
	if err := d.Validate(h); err != nil {
		t.Fatal(err)
	}
	warm, err := WarmStart(h, base.NetOrder, base.BestRank, d, WarmOptions{Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cold {
		t.Fatalf("%d touched nets under threshold 0.05 did not fall back", warm.TouchedNets)
	}
	cold, err := core.Partition(warm.H, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Metrics != cold.Metrics {
		t.Fatalf("cold fallback metrics %+v != direct cold %+v", warm.Metrics, cold.Metrics)
	}
}

// TestWarmStartRejects: malformed inputs fail up front.
func TestWarmStartRejects(t *testing.T) {
	h := genCircuit(t, 100, 120, 3)
	base, err := core.Partition(h, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WarmStart(h, base.NetOrder[:10], base.BestRank, Delta{}, WarmOptions{}); err == nil {
		t.Fatal("short order accepted")
	}
	if _, err := WarmStart(h, base.NetOrder, 0, Delta{}, WarmOptions{}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if _, err := WarmStart(h, base.NetOrder, base.BestRank, Delta{RemoveNets: []int{-4}}, WarmOptions{}); err == nil {
		t.Fatal("invalid delta accepted")
	}
}
