package portfolio

import (
	"fmt"
	"sort"
	"strings"

	"igpart/internal/hypergraph"
)

// PinRef names one (net, module) incidence of the base netlist — the unit
// of an ECO pin change. Net indexes the base netlist's nets, Module its
// modules (AddPin may reference modules beyond the base count to
// introduce new modules).
type PinRef struct {
	Net    int `json:"net"`
	Module int `json:"module"`
}

// Delta is an ECO (engineering change order) against a base netlist:
// whole nets added or removed, and single pins moved on surviving nets.
// Net and module indices refer to the base netlist; added nets may
// reference fresh modules one past the base module count (appended in
// order of first use).
//
// A Delta is data, not a diff of pointers: it marshals to JSON for the
// PATCH /v1/jobs API and has a canonical encoding (Canonical) that cache
// keys build on.
type Delta struct {
	// AddNets lists new nets, each as its pin (module) list.
	AddNets [][]int `json:"add_nets,omitempty"`
	// RemoveNets lists base net indices to delete.
	RemoveNets []int `json:"remove_nets,omitempty"`
	// AddPins adds modules to surviving base nets.
	AddPins []PinRef `json:"add_pins,omitempty"`
	// RemovePins removes existing pins from surviving base nets.
	RemovePins []PinRef `json:"remove_pins,omitempty"`
}

// Empty reports whether the delta changes nothing.
func (d Delta) Empty() bool {
	return len(d.AddNets) == 0 && len(d.RemoveNets) == 0 &&
		len(d.AddPins) == 0 && len(d.RemovePins) == 0
}

// TouchedNets counts how many nets the delta perturbs — added nets,
// removed nets, and distinct surviving nets with pin changes. The
// warm-start threshold compares this against the base net count.
func (d Delta) TouchedNets() int {
	touched := make(map[int]bool)
	for _, p := range d.AddPins {
		touched[p.Net] = true
	}
	for _, p := range d.RemovePins {
		touched[p.Net] = true
	}
	for _, e := range d.RemoveNets {
		delete(touched, e) // removal supersedes pin edits
	}
	return len(d.AddNets) + len(d.RemoveNets) + len(touched)
}

// maxDeltaNets bounds a single delta's size; a "delta" rewriting more
// nets than this is not an ECO and should be a fresh submission.
const maxDeltaNets = 1 << 20

// Validate checks the delta against the base netlist it will be applied
// to: indices in range, no duplicate or conflicting edits, and pins
// referenced by RemovePins actually present. A valid delta is guaranteed
// to Apply without error.
func (d Delta) Validate(base *hypergraph.Hypergraph) error {
	m, n := base.NumNets(), base.NumModules()
	if t := len(d.AddNets) + len(d.RemoveNets) + len(d.AddPins) + len(d.RemovePins); t > maxDeltaNets {
		return fmt.Errorf("delta has %d edits, max %d", t, maxDeltaNets)
	}
	// New modules may be introduced by AddNets/AddPins; cap the module
	// universe at base plus one fresh module per added pin.
	budget := n
	for _, pins := range d.AddNets {
		budget += len(pins)
	}
	budget += len(d.AddPins)

	removed := make(map[int]bool, len(d.RemoveNets))
	for _, e := range d.RemoveNets {
		if e < 0 || e >= m {
			return fmt.Errorf("remove_nets: net %d outside [0,%d)", e, m)
		}
		if removed[e] {
			return fmt.Errorf("remove_nets: net %d removed twice", e)
		}
		removed[e] = true
	}
	for i, pins := range d.AddNets {
		if len(pins) == 0 {
			return fmt.Errorf("add_nets[%d]: empty pin list", i)
		}
		for _, v := range pins {
			if v < 0 || v >= budget {
				return fmt.Errorf("add_nets[%d]: module %d outside [0,%d)", i, v, budget)
			}
		}
	}
	seenAdd := make(map[PinRef]bool, len(d.AddPins))
	for _, p := range d.AddPins {
		if p.Net < 0 || p.Net >= m {
			return fmt.Errorf("add_pins: net %d outside [0,%d)", p.Net, m)
		}
		if removed[p.Net] {
			return fmt.Errorf("add_pins: net %d is also removed", p.Net)
		}
		if p.Module < 0 || p.Module >= budget {
			return fmt.Errorf("add_pins: module %d outside [0,%d)", p.Module, budget)
		}
		if seenAdd[p] {
			return fmt.Errorf("add_pins: pin (%d,%d) added twice", p.Net, p.Module)
		}
		seenAdd[p] = true
		if p.Module < n && hasPin(base, p.Net, p.Module) {
			return fmt.Errorf("add_pins: pin (%d,%d) already present", p.Net, p.Module)
		}
	}
	seenRm := make(map[PinRef]bool, len(d.RemovePins))
	for _, p := range d.RemovePins {
		if p.Net < 0 || p.Net >= m {
			return fmt.Errorf("remove_pins: net %d outside [0,%d)", p.Net, m)
		}
		if removed[p.Net] {
			return fmt.Errorf("remove_pins: net %d is also removed", p.Net)
		}
		if seenRm[p] {
			return fmt.Errorf("remove_pins: pin (%d,%d) removed twice", p.Net, p.Module)
		}
		seenRm[p] = true
		if seenAdd[p] {
			return fmt.Errorf("pin (%d,%d) both added and removed", p.Net, p.Module)
		}
		if p.Module < 0 || p.Module >= n || !hasPin(base, p.Net, p.Module) {
			return fmt.Errorf("remove_pins: pin (%d,%d) not present in base", p.Net, p.Module)
		}
	}
	return nil
}

func hasPin(h *hypergraph.Hypergraph, e, v int) bool {
	// Pins are sorted ascending (Builder invariant).
	pins := h.Pins(e)
	i := sort.SearchInts(pins, v)
	return i < len(pins) && pins[i] == v
}

// Canonical returns a stable textual encoding of the delta: equal edit
// sets yield equal strings regardless of slice order, so cache keys
// derived from it are stable. The encoding sorts every edit list and
// the pins within each added net.
func (d Delta) Canonical() string {
	var b strings.Builder
	b.WriteString("delta/v1")
	if len(d.AddNets) > 0 {
		nets := make([]string, len(d.AddNets))
		for i, pins := range d.AddNets {
			p := append([]int(nil), pins...)
			sort.Ints(p)
			nets[i] = intsKey(p)
		}
		sort.Strings(nets)
		b.WriteString("|+nets=")
		b.WriteString(strings.Join(nets, ";"))
	}
	if len(d.RemoveNets) > 0 {
		e := append([]int(nil), d.RemoveNets...)
		sort.Ints(e)
		b.WriteString("|-nets=")
		b.WriteString(intsKey(e))
	}
	writePins := func(tag string, pins []PinRef) {
		if len(pins) == 0 {
			return
		}
		p := append([]PinRef(nil), pins...)
		sort.Slice(p, func(i, j int) bool {
			if p[i].Net != p[j].Net {
				return p[i].Net < p[j].Net
			}
			return p[i].Module < p[j].Module
		})
		b.WriteString(tag)
		for i, pr := range p {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d:%d", pr.Net, pr.Module)
		}
	}
	writePins("|+pins=", d.AddPins)
	writePins("|-pins=", d.RemovePins)
	return b.String()
}

func intsKey(s []int) string {
	parts := make([]string, len(s))
	for i, v := range s {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}

// Apply builds the delta'd netlist. The returned netMap gives, for each
// net of the new netlist, its index in the base netlist (−1 for added
// nets): surviving base nets keep their relative order, added nets are
// appended in AddNets order. Module indices are preserved; fresh modules
// referenced by added pins extend the module range. Apply assumes a
// Validate'd delta and panics on out-of-range indices like the Builder
// does.
func (d Delta) Apply(base *hypergraph.Hypergraph) (h *hypergraph.Hypergraph, netMap []int) {
	removed := make(map[int]bool, len(d.RemoveNets))
	for _, e := range d.RemoveNets {
		removed[e] = true
	}
	addPins := make(map[int][]int)
	for _, p := range d.AddPins {
		addPins[p.Net] = append(addPins[p.Net], p.Module)
	}
	rmPins := make(map[int]map[int]bool)
	for _, p := range d.RemovePins {
		if rmPins[p.Net] == nil {
			rmPins[p.Net] = make(map[int]bool)
		}
		rmPins[p.Net][p.Module] = true
	}

	b := hypergraph.NewBuilder()
	b.SetNumModules(base.NumModules())
	var pins []int
	for e := 0; e < base.NumNets(); e++ {
		if removed[e] {
			continue
		}
		pins = pins[:0]
		rm := rmPins[e]
		for _, v := range base.Pins(e) {
			if !rm[v] {
				pins = append(pins, v)
			}
		}
		pins = append(pins, addPins[e]...)
		b.AddNet(pins...)
		netMap = append(netMap, e)
	}
	for _, p := range d.AddNets {
		b.AddNet(p...)
		netMap = append(netMap, -1)
	}
	return b.Build(), netMap
}
