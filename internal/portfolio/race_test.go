package portfolio

import (
	"context"
	"errors"
	"testing"
	"time"

	"igpart/internal/features"
	"igpart/internal/hypergraph"
	"igpart/internal/obs"
	"igpart/internal/partition"
)

func featuresVecOf(class string) features.Vector {
	return features.Vector{Class: features.Class(class)}
}

// fakeOutcome builds a trivial valid outcome with the given ratio cut.
func fakeOutcome(ratio float64) outcome {
	return outcome{
		part: partition.New(4),
		met:  partition.Metrics{RatioCut: ratio, CutNets: 1, SizeU: 2, SizeW: 2},
	}
}

// TestRaceCancelsLosers proves the cancellation protocol: one contender
// finishes under the acceptance bound, the other blocks until cancelled.
// The blocked contender must observe its cancellation well within 2s,
// and the portfolio counters must record it.
func TestRaceCancelsLosers(t *testing.T) {
	tr := obs.NewTrace("race")
	h := base44()
	cancelledIn := make(chan time.Duration, 1)
	t0 := time.Now()
	slow := func(ctx context.Context, _ *hypergraph.Hypergraph, _ obs.Recorder) (outcome, error) {
		select {
		case <-ctx.Done():
			cancelledIn <- time.Since(t0)
			return outcome{}, context.Cause(ctx)
		case <-time.After(30 * time.Second):
			return outcome{}, errors.New("slow contender was never cancelled")
		}
	}
	fast := func(ctx context.Context, _ *hypergraph.Hypergraph, _ obs.Recorder) (outcome, error) {
		return fakeOutcome(0.001), nil
	}
	res, err := race(h, []string{"slow", "fast"}, []runFunc{slow, fast}, Options{
		Accept: 0.01,
		Rec:    tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "fast" || !res.Accepted {
		t.Fatalf("winner = %q accepted=%v, want fast via accept bound", res.Winner, res.Accepted)
	}
	select {
	case d := <-cancelledIn:
		if d > 2*time.Second {
			t.Fatalf("loser cancelled after %v, want < 2s", d)
		}
	default:
		t.Fatal("slow contender never saw cancellation")
	}
	m := tr.Metrics()
	if got := m.Counter("portfolio.started").Value(); got != 2 {
		t.Fatalf("portfolio.started = %d, want 2", got)
	}
	if got := m.Counter("portfolio.cancelled").Value(); got != 1 {
		t.Fatalf("portfolio.cancelled = %d, want 1", got)
	}
	if got := m.Counter("portfolio.winner.fast").Value(); got != 1 {
		t.Fatalf("portfolio.winner.fast = %d, want 1", got)
	}
	var loser Contender
	for _, c := range res.Contenders {
		if c.Alg == "slow" {
			loser = c
		}
	}
	if !loser.Cancelled || loser.Err == nil {
		t.Fatalf("loser not marked cancelled: %+v", loser)
	}
}

// TestRaceBestAtDeadline: with no acceptance bound every contender runs
// to completion and the best ratio cut wins deterministically.
func TestRaceBestAtDeadline(t *testing.T) {
	mk := func(r float64) runFunc {
		return func(ctx context.Context, _ *hypergraph.Hypergraph, _ obs.Recorder) (outcome, error) {
			return fakeOutcome(r), nil
		}
	}
	res, err := race(base44(), []string{"a", "b", "c"}, []runFunc{mk(0.5), mk(0.2), mk(0.9)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "b" || res.Accepted {
		t.Fatalf("winner = %q accepted=%v, want b at deadline", res.Winner, res.Accepted)
	}
	if got := len(res.Contenders); got != 3 {
		t.Fatalf("contenders = %d", got)
	}
}

// TestRaceBudgetExpiry: when no contender finishes inside the budget the
// race fails with the deadline error.
func TestRaceBudgetExpiry(t *testing.T) {
	block := func(ctx context.Context, _ *hypergraph.Hypergraph, _ obs.Recorder) (outcome, error) {
		<-ctx.Done()
		return outcome{}, ctx.Err()
	}
	_, err := race(base44(), []string{"block"}, []runFunc{block}, Options{Budget: 50 * time.Millisecond})
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline", err)
	}
}

// TestRaceFailedContenderSurfacesOthers: one engine failing must not
// sink the race while another succeeds.
func TestRaceFailedContenderSurfacesOthers(t *testing.T) {
	boom := func(ctx context.Context, _ *hypergraph.Hypergraph, _ obs.Recorder) (outcome, error) {
		return outcome{}, errors.New("boom")
	}
	ok := func(ctx context.Context, _ *hypergraph.Hypergraph, _ obs.Recorder) (outcome, error) {
		return fakeOutcome(0.3), nil
	}
	res, err := race(base44(), []string{"bad", "good"}, []runFunc{boom, ok}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "good" {
		t.Fatalf("winner = %q", res.Winner)
	}
	if res.Contenders[0].Err == nil || res.Contenders[0].Cancelled {
		t.Fatalf("failed contender misreported: %+v", res.Contenders[0])
	}
}

// TestRaceRealEngines runs the genuine lineup on a small circuit.
func TestRaceRealEngines(t *testing.T) {
	h := genCircuit(t, 300, 330, 42)
	tr := obs.NewTrace("race")
	res, err := Race(h, Options{Budget: 30 * time.Second, Seed: 1, Rec: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner == "" || res.Partition == nil {
		t.Fatalf("no winner: %+v", res)
	}
	if res.Features.Class == "" {
		t.Fatal("features not attached")
	}
	want := int64(len(Lineup(res.Features)))
	if got := tr.Metrics().Counter("portfolio.started").Value(); got != want {
		t.Fatalf("portfolio.started = %d, want %d", got, want)
	}
	if res.Metrics.RatioCut <= 0 {
		t.Fatalf("ratio cut %g", res.Metrics.RatioCut)
	}
	// The winner's cached sweep state must be usable for warm starts
	// when present.
	if len(res.NetOrder) > 0 && res.BestRank < 1 {
		t.Fatalf("net order without best rank: %d", res.BestRank)
	}
}

// TestLineupCoversClasses: every class yields a non-empty lineup of
// known engines.
func TestLineupCoversClasses(t *testing.T) {
	known := map[string]bool{AlgIGMatch: true, AlgMultilevel: true, AlgEIG1: true, AlgCandidates: true}
	for _, c := range []string{"tiny", "sparse", "dense", "large"} {
		l := Lineup(featuresVecOf(c))
		if len(l) == 0 {
			t.Fatalf("class %s: empty lineup", c)
		}
		for _, alg := range l {
			if !known[alg] {
				t.Fatalf("class %s: unknown engine %q", c, alg)
			}
			if _, err := (Options{}).engine(alg); err != nil {
				t.Fatalf("class %s: %v", c, err)
			}
		}
	}
}
