package bench

import (
	"strings"
	"testing"

	"igpart/internal/obs"
)

// syntheticScale fabricates a report shaped like results/BENCH_scale.json.
func syntheticScale(nets int, selNS, fullNS int64, selRatio, fullRatio float64, skipped int64) *RunReport {
	return &RunReport{
		Name: "scale",
		Circuits: []CircuitReport{{
			Name: "scale100k",
			Nets: nets,
			Runs: []AlgRun{
				{Alg: AlgScaleSelective, WallNS: selNS, RatioCut: selRatio},
				{Alg: AlgScaleFull, WallNS: fullNS, RatioCut: fullRatio},
			},
		}},
		Metrics: obs.MetricsSnapshot{Counters: map[string]int64{"eigen.reorth.skipped": skipped}},
	}
}

func TestVerifyScaleReportGate(t *testing.T) {
	ok := syntheticScale(100_000, 1e9, 4e9, 2.00e-5, 2.01e-5, 1234)
	if v := VerifyScaleReport(ok); len(v) != 0 {
		t.Fatalf("clean report flagged: %v", v)
	}

	cases := []struct {
		name string
		r    *RunReport
		want string
	}{
		{"too-small", syntheticScale(50_000, 1e9, 4e9, 2e-5, 2e-5, 1), "scale floor"},
		{"too-slow", syntheticScale(100_000, 2e9, 4e9, 2e-5, 2e-5, 1), "speedup"},
		{"ratio-drift", syntheticScale(100_000, 1e9, 4e9, 2.1e-5, 2.0e-5, 1), "ratio cuts diverge"},
		{"no-skips", syntheticScale(100_000, 1e9, 4e9, 2e-5, 2e-5, 0), "reorth.skipped"},
		{"missing-runs", &RunReport{Name: "scale"}, "no circuit"},
	}
	for _, tc := range cases {
		v := VerifyScaleReport(tc.r)
		found := false
		for _, msg := range v {
			if strings.Contains(msg, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: violations %v do not mention %q", tc.name, v, tc.want)
		}
	}
}

func TestCompareReportsWithBudget(t *testing.T) {
	base := syntheticScale(100_000, 1e9, 4e9, 2e-5, 2e-5, 1)
	// Same ratios, selective 2.5x slower than its baseline cell.
	cur := syntheticScale(100_000, 25e8, 4e9, 2e-5, 2e-5, 1)
	if reg := CompareReportsWithBudget(base, cur, 0.10, 3.0); len(reg) != 0 {
		t.Fatalf("within 3x budget but flagged: %v", reg)
	}
	reg := CompareReportsWithBudget(base, cur, 0.10, 2.0)
	if len(reg) != 1 || !strings.Contains(reg[0], "budget") {
		t.Fatalf("2x budget should flag the selective cell once, got %v", reg)
	}
	// Factor <= 0 disables the wall gate entirely.
	if reg := CompareReportsWithBudget(base, cur, 0.10, 0); len(reg) != 0 {
		t.Fatalf("disabled budget still flagged: %v", reg)
	}
	// The ratio gate still applies underneath.
	worse := syntheticScale(100_000, 1e9, 4e9, 3e-5, 2e-5, 1)
	if reg := CompareReportsWithBudget(base, worse, 0.10, 0); len(reg) == 0 {
		t.Fatal("ratio regression slipped past the budget wrapper")
	}
}

// TestScaleReportSmoke runs the real pipeline on a small preset: both
// modes complete, runs are labeled, and the report round-trips the gate
// plumbing (the 3x/100k gate itself is only meaningful at full scale).
func TestScaleReportSmoke(t *testing.T) {
	rep, err := ScaleReport("scale-smoke", ScaleConfig{Preset: "Prim1", Candidates: 8})
	if err != nil {
		t.Fatalf("ScaleReport: %v", err)
	}
	c, sel, full := findScaleRuns(rep)
	if c == nil {
		t.Fatal("report lacks the selective/full run pair")
	}
	if c.Nets != 902 {
		t.Fatalf("Prim1 preset produced %d nets", c.Nets)
	}
	if sel.Metrics.CutNets <= 0 || full.Metrics.CutNets <= 0 {
		t.Fatalf("degenerate cuts: selective %d, full %d", sel.Metrics.CutNets, full.Metrics.CutNets)
	}
	if sel.WallNS <= 0 || full.WallNS <= 0 {
		t.Fatal("wall times not recorded")
	}
	// Identical ordering => identical candidate sweep => identical cut.
	if sel.RatioCut != full.RatioCut {
		t.Fatalf("selective ratio cut %.9g != full %.9g on Prim1 — ordering parity broke", sel.RatioCut, full.RatioCut)
	}
}
