package bench

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"text/tabwriter"

	"igpart/internal/core"
	"igpart/internal/hypergraph"
)

// OrderingRow compares IG-Match sweep quality under different net orderings
// on one benchmark — the ablation that isolates how much of IG-Match's
// quality comes from the spectral ordering versus the matching completion.
type OrderingRow struct {
	Name string
	// Eigen is the ratio cut with the Fiedler-vector ordering (the paper's
	// configuration).
	Eigen float64
	// RandomBest and RandomMean summarize sweeps over random orderings.
	RandomBest float64
	RandomMean float64
	// BySize is the ratio cut with nets sorted by ascending pin count.
	BySize float64
	// BFS is the ratio cut with a breadth-first ordering of the
	// intersection graph.
	BFS float64
}

// OrderingTable runs the ordering ablation over the suite.
func (s Suite) OrderingTable(randomTrials int) ([]OrderingRow, error) {
	s = s.withDefaults()
	if randomTrials <= 0 {
		randomTrials = 3
	}
	cfgs, hs, err := s.circuits()
	if err != nil {
		return nil, err
	}
	rows := make([]OrderingRow, len(hs))
	for i, h := range hs {
		row := OrderingRow{Name: cfgs[i].Name}

		eig, err := core.Partition(h, core.Options{})
		if err != nil {
			return nil, fmt.Errorf("bench: eigen order on %s: %w", cfgs[i].Name, err)
		}
		row.Eigen = eig.Metrics.RatioCut

		rng := rand.New(rand.NewSource(77 + s.Seed))
		row.RandomBest = math.Inf(1)
		sum := 0.0
		for trial := 0; trial < randomTrials; trial++ {
			order := rng.Perm(h.NumNets())
			res, err := core.PartitionWithOrder(h, order, core.Options{})
			if err != nil {
				return nil, err
			}
			sum += res.Metrics.RatioCut
			if res.Metrics.RatioCut < row.RandomBest {
				row.RandomBest = res.Metrics.RatioCut
			}
		}
		row.RandomMean = sum / float64(randomTrials)

		res, err := core.PartitionWithOrder(h, sizeOrder(h), core.Options{})
		if err != nil {
			return nil, err
		}
		row.BySize = res.Metrics.RatioCut

		res, err = core.PartitionWithOrder(h, bfsOrder(h), core.Options{})
		if err != nil {
			return nil, err
		}
		row.BFS = res.Metrics.RatioCut

		rows[i] = row
	}
	return rows, nil
}

// sizeOrder sorts nets by ascending pin count (stable on index).
func sizeOrder(h *hypergraph.Hypergraph) []int {
	order := make([]int, h.NumNets())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return h.NetSize(order[a]) < h.NetSize(order[b])
	})
	return order
}

// bfsOrder orders nets breadth-first over the intersection graph starting
// from net 0 (unreached nets appended in index order).
func bfsOrder(h *hypergraph.Hypergraph) []int {
	adj := core.IGAdjacency(h)
	m := len(adj)
	order := make([]int, 0, m)
	seen := make([]bool, m)
	for start := 0; start < m; start++ {
		if seen[start] {
			continue
		}
		seen[start] = true
		order = append(order, start)
		for qi := len(order) - 1; qi < len(order); qi++ {
			for _, nb := range adj[order[qi]] {
				if !seen[nb] {
					seen[nb] = true
					order = append(order, nb)
				}
			}
		}
	}
	return order
}

// FormatOrdering renders the ordering ablation.
func FormatOrdering(rows []OrderingRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation O1: IG-Match sweep under different net orderings (ratio cut)")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Test\teigen\trandom best\trandom mean\tby-size\tBFS\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t\n",
			r.Name, ratioStr(r.Eigen), ratioStr(r.RandomBest),
			ratioStr(r.RandomMean), ratioStr(r.BySize), ratioStr(r.BFS))
	}
	w.Flush()
	return b.String()
}
