package bench

import (
	"strings"
	"testing"

	"igpart/internal/obs"
)

// syntheticPortfolio fabricates a report shaped like
// results/BENCH_portfolio.json.
func syntheticPortfolio(raceRatio, fixedRatio float64, warmNS, coldNS int64, warmRatio, coldRatio float64, warmStarts int64) *RunReport {
	return &RunReport{
		Name: "portfolio",
		Circuits: []CircuitReport{{
			Name: "scale10k",
			Nets: 10_000,
			Runs: []AlgRun{
				{Alg: AlgPortfolioRace, WallNS: 3e9, RatioCut: raceRatio},
				{Alg: AlgPortfolioFixed, WallNS: 9e9, RatioCut: fixedRatio},
				{Alg: AlgECOWarm, WallNS: warmNS, RatioCut: warmRatio},
				{Alg: AlgECOCold, WallNS: coldNS, RatioCut: coldRatio},
			},
		}},
		Metrics: obs.MetricsSnapshot{Counters: map[string]int64{"portfolio.warm_start": warmStarts}},
	}
}

func TestVerifyPortfolioReportGate(t *testing.T) {
	ok := syntheticPortfolio(2e-5, 2e-5, 1e9, 4e9, 2.00e-5, 2.01e-5, 1)
	if v := VerifyPortfolioReport(ok); len(v) != 0 {
		t.Fatalf("clean report flagged: %v", v)
	}

	cases := []struct {
		name string
		r    *RunReport
		want string
	}{
		{"warm-too-slow", syntheticPortfolio(2e-5, 2e-5, 2e9, 4e9, 2e-5, 2e-5, 1), "speedup"},
		{"eco-ratio-drift", syntheticPortfolio(2e-5, 2e-5, 1e9, 4e9, 2.3e-5, 2.0e-5, 1), "ratio cuts diverge"},
		{"no-warm-starts", syntheticPortfolio(2e-5, 2e-5, 1e9, 4e9, 2e-5, 2e-5, 0), "warm_start"},
		{"race-loses", syntheticPortfolio(2.3e-5, 2.0e-5, 1e9, 4e9, 2e-5, 2e-5, 1), "loses to fixed"},
		{"missing-runs", &RunReport{Name: "portfolio"}, "no circuit"},
	}
	for _, tc := range cases {
		v := VerifyPortfolioReport(tc.r)
		found := false
		for _, msg := range v {
			if strings.Contains(msg, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: violations %v do not mention %q", tc.name, v, tc.want)
		}
	}
}

// TestPortfolioReportSmoke runs the real pipeline on a small preset:
// all four rows complete, the ECO delta warm-starts, and the warm-start
// counter lands in the report's metrics snapshot (the 3x speedup gate
// itself is only meaningful at the checked-in report's scale).
func TestPortfolioReportSmoke(t *testing.T) {
	rep, err := PortfolioReport("portfolio-smoke", PortfolioConfig{Preset: "Prim1", DeltaNets: 5})
	if err != nil {
		t.Fatalf("PortfolioReport: %v", err)
	}
	c, runs := findPortfolioRuns(rep)
	if c == nil {
		t.Fatal("report lacks the four portfolio/ECO rows")
	}
	for _, alg := range []string{AlgPortfolioRace, AlgPortfolioFixed, AlgECOWarm, AlgECOCold} {
		run := runs[alg]
		if run.WallNS <= 0 {
			t.Errorf("%s: wall time not recorded", alg)
		}
		if run.Metrics.SizeU <= 0 || run.Metrics.SizeW <= 0 {
			t.Errorf("%s: degenerate bipartition %d:%d", alg, run.Metrics.SizeU, run.Metrics.SizeW)
		}
	}
	if rep.Metrics.Counters["portfolio.warm_start"] != 1 {
		t.Fatalf("warm_start counter = %d, want 1 (counters %v)",
			rep.Metrics.Counters["portfolio.warm_start"], rep.Metrics.Counters)
	}
	// Portfolio's winner is the best of a lineup that includes IG-Match,
	// so with Accept=0 it can never be worse than the fixed row.
	if runs[AlgPortfolioRace].RatioCut > runs[AlgPortfolioFixed].RatioCut {
		t.Fatalf("portfolio ratio %.9g worse than fixed IG-Match %.9g",
			runs[AlgPortfolioRace].RatioCut, runs[AlgPortfolioFixed].RatioCut)
	}
}
