// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (and the ablations DESIGN.md calls out)
// on the synthetic benchmark suite, producing aligned text tables that
// mirror the paper's layout. See EXPERIMENTS.md for the paper-vs-measured
// record.
package bench

import (
	"fmt"
	"math"
	"time"

	"igpart/internal/core"
	"igpart/internal/eigen"
	"igpart/internal/fm"
	"igpart/internal/hypergraph"
	"igpart/internal/igdiam"
	"igpart/internal/igvote"
	"igpart/internal/multilevel"
	"igpart/internal/netgen"
	"igpart/internal/obs"
	"igpart/internal/partition"
	"igpart/internal/spectral"
)

// Suite controls a harness run.
type Suite struct {
	// Scale shrinks every benchmark circuit to Scale× its published size
	// (1.0 = full size). Sub-unit scales make the whole suite run in
	// seconds for tests and quick iteration.
	Scale float64
	// RCutStarts is the number of random starts for the RCut baseline
	// (the paper compares against best-of-10).
	RCutStarts int
	// Seed offsets the generator seeds, for stability studies.
	Seed int64
	// Parallelism is the IG-Match sweep shard count (0 = GOMAXPROCS,
	// 1 = serial). Results are identical for every value; only wall-clock
	// changes, which the scaling table reports.
	Parallelism int
	// Levels is the V-cycle depth for the multilevel IG-Match runs
	// (0 uses the multilevel default of 3; 1 degenerates to flat).
	Levels int
	// Reorth selects the Lanczos reorthogonalization mode for the
	// IG-Match and multilevel runs (auto/full/selective; zero value is
	// auto, which matches full below eigen.ReorthAutoCutoff).
	Reorth eigen.ReorthMode
	// MatvecWorkers is threaded to eigen.Options.MatvecWorkers for the
	// IG-Match and multilevel runs (0 = auto, 1 = serial).
	MatvecWorkers int
	// Rec, when non-nil, receives one stage span per algorithm run; the
	// IG-Match spans carry the full pipeline breakdown (IG build,
	// eigensolve, sweep shards). Run reports (report.go) thread their
	// own Trace here.
	Rec obs.Recorder
}

// DefaultSuite is the full-size configuration used by cmd/experiments.
func DefaultSuite() Suite { return Suite{Scale: 1.0, RCutStarts: 10} }

func (s Suite) withDefaults() Suite {
	if s.Scale <= 0 {
		s.Scale = 1.0
	}
	if s.RCutStarts <= 0 {
		s.RCutStarts = 10
	}
	return s
}

// circuits generates the benchmark suite at the configured scale.
func (s Suite) circuits() ([]netgen.Config, []*hypergraph.Hypergraph, error) {
	cfgs := make([]netgen.Config, len(netgen.Benchmarks))
	hs := make([]*hypergraph.Hypergraph, len(netgen.Benchmarks))
	for i, cfg := range netgen.Benchmarks {
		c := cfg.Scaled(s.Scale)
		c.Seed += s.Seed
		h, err := netgen.Generate(c)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: generating %s: %w", c.Name, err)
		}
		cfgs[i] = c
		hs[i] = h
	}
	return cfgs, hs, nil
}

// eigenOpts is the eigensolver configuration the suite's IG-Match runs
// share.
func (s Suite) eigenOpts() eigen.Options {
	return eigen.Options{ReorthMode: s.Reorth, MatvecWorkers: s.MatvecWorkers}
}

// Algorithm names used across tables.
const (
	AlgIGMatch    = "IG-Match"
	AlgMultilevel = "ML-IGMatch"
	AlgIGVote     = "IG-Vote"
	AlgEIG1       = "EIG1"
	AlgRCut       = "RCut"
	AlgIGDiam     = "IG-Diam"
)

// Run executes one named algorithm on a circuit, returning its metrics and
// wall-clock time.
func (s Suite) Run(alg string, h *hypergraph.Hypergraph) (partition.Metrics, time.Duration, error) {
	s = s.withDefaults()
	sp := obs.OrNop(s.Rec).StartSpan(alg)
	defer sp.End()
	t0 := time.Now()
	var met partition.Metrics
	var err error
	switch alg {
	case AlgIGMatch:
		var r core.Result
		r, err = core.Partition(h, core.Options{Parallelism: s.Parallelism, Eigen: s.eigenOpts(), Rec: sp})
		met = r.Metrics
	case AlgMultilevel:
		var r multilevel.Result
		r, err = multilevel.Partition(h, multilevel.Options{
			Levels: s.Levels,
			Core:   core.Options{Parallelism: s.Parallelism, Eigen: s.eigenOpts()},
			Rec:    sp,
		})
		met = r.Metrics
	case AlgIGVote:
		var r igvote.Result
		r, err = igvote.Partition(h, igvote.Options{})
		met = r.Metrics
	case AlgEIG1:
		var r spectral.Result
		r, err = spectral.Partition(h, spectral.Options{})
		met = r.Metrics
	case AlgRCut:
		var r fm.Result
		r, err = fm.RatioCut(h, fm.Options{Starts: s.RCutStarts, Seed: 1 + s.Seed})
		met = r.Metrics
	case AlgIGDiam:
		var r igdiam.Result
		r, err = igdiam.Partition(h)
		met = r.Metrics
	default:
		return partition.Metrics{}, 0, fmt.Errorf("bench: unknown algorithm %q", alg)
	}
	return met, time.Since(t0), err
}

// ImprovementPct is the paper's "Percent improvement" column: the relative
// ratio-cut reduction of `ours` versus `base`, in percent (negative when
// ours is worse). Matches the paper's rounding convention of whole percent.
func ImprovementPct(base, ours float64) float64 {
	if base == 0 {
		return 0
	}
	return (1 - ours/base) * 100
}

// GeomImprovement aggregates per-row improvements the way the paper does:
// a plain average of the per-benchmark percent improvements.
func GeomImprovement(rows []CompareRow) float64 {
	if len(rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rows {
		sum += r.Improvement
	}
	return sum / float64(len(rows))
}

// CompareRow is one line of a Table 2/3-style comparison.
type CompareRow struct {
	Name        string
	Elements    int
	Base        partition.Metrics
	BaseTime    time.Duration
	Ours        partition.Metrics
	OursTime    time.Duration
	Improvement float64 // percent, by ratio cut
}

// Compare runs two algorithms across the whole suite.
func (s Suite) Compare(baseAlg, oursAlg string) ([]CompareRow, error) {
	s = s.withDefaults()
	cfgs, hs, err := s.circuits()
	if err != nil {
		return nil, err
	}
	rows := make([]CompareRow, 0, len(cfgs))
	for i, h := range hs {
		base, bt, err := s.Run(baseAlg, h)
		if err != nil {
			return nil, fmt.Errorf("bench: %s on %s: %w", baseAlg, cfgs[i].Name, err)
		}
		ours, ot, err := s.Run(oursAlg, h)
		if err != nil {
			return nil, fmt.Errorf("bench: %s on %s: %w", oursAlg, cfgs[i].Name, err)
		}
		rows = append(rows, CompareRow{
			Name:        cfgs[i].Name,
			Elements:    h.NumModules(),
			Base:        base,
			BaseTime:    bt,
			Ours:        ours,
			OursTime:    ot,
			Improvement: ImprovementPct(base.RatioCut, ours.RatioCut),
		})
	}
	return rows, nil
}

// ratioStr renders a ratio-cut value in the paper's ×10⁻⁵ style.
func ratioStr(r float64) string {
	if math.IsInf(r, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.2fe-5", r*1e5)
}
