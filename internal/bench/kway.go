package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"igpart/internal/core"
	"igpart/internal/multiway"
)

// This file produces the balanced k-way run report behind
// results/BENCH_kway.json: both engines (recursive IG-Match bisection
// and spectral-k vector partitioning) across k ∈ {2, 4, 8} on the whole
// benchmark suite, gated in CI on spanning-net regressions the same way
// the bipartition report is gated on ratio cut.

// The k-way engines a report covers.
const (
	EngineRecursive = "recursive"
	EngineSpectral  = "spectral"
)

// DefaultKWayKs is the part-count column of a k-way report.
func DefaultKWayKs() []int { return []int{2, 4, 8} }

// KWayRun is one (circuit, k, engine) outcome.
type KWayRun struct {
	K            int     `json:"k"`
	Engine       string  `json:"engine"`
	Eps          float64 `json:"eps"`
	Cap          int     `json:"cap"`
	SpanningNets int     `json:"spanning_nets"`
	Connectivity int     `json:"connectivity"`
	RatioValue   float64 `json:"ratio_value"`
	Sizes        []int   `json:"sizes"`
	WallNS       int64   `json:"wall_ns"`
}

// KWayCircuitReport is one benchmark circuit's slice of a k-way report.
type KWayCircuitReport struct {
	Name    string    `json:"name"`
	Modules int       `json:"modules"`
	Nets    int       `json:"nets"`
	Runs    []KWayRun `json:"runs"`
}

// KWayReport is the top-level BENCH_<name>.json document for k-way runs.
type KWayReport struct {
	Name       string              `json:"name"`
	CreatedAt  time.Time           `json:"created_at"`
	GoVersion  string              `json:"go_version"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	Suite      SuiteConfig         `json:"suite"`
	Ks         []int               `json:"ks"`
	Eps        float64             `json:"eps"`
	Circuits   []KWayCircuitReport `json:"circuits"`
	TotalNS    int64               `json:"total_ns"`
}

// KWayReport runs both k-way engines at every k over the benchmark suite
// under the ε budget and assembles the run report.
func (s Suite) KWayReport(name string, ks []int, eps float64) (*KWayReport, error) {
	s = s.withDefaults()
	if len(ks) == 0 {
		ks = DefaultKWayKs()
	}
	cfgs, hs, err := s.circuits()
	if err != nil {
		return nil, err
	}
	rep := &KWayReport{
		Name:       name,
		CreatedAt:  time.Now().UTC(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Suite: SuiteConfig{
			Scale:       s.Scale,
			Seed:        s.Seed,
			Parallelism: s.Parallelism,
		},
		Ks:  ks,
		Eps: eps,
	}
	t0 := time.Now()
	for i, h := range hs {
		cr := KWayCircuitReport{
			Name:    cfgs[i].Name,
			Modules: h.NumModules(),
			Nets:    h.NumNets(),
		}
		for _, k := range ks {
			if h.NumModules() < k {
				continue
			}
			for _, engine := range []string{EngineRecursive, EngineSpectral} {
				opts := multiway.Options{
					K: k, Eps: eps, Spectral: engine == EngineSpectral,
					Core: core.Options{
						Eigen:       s.eigenOpts(),
						Parallelism: s.Parallelism,
						Rec:         s.Rec,
					},
				}
				start := time.Now()
				res, err := multiway.Partition(h, opts)
				if err != nil {
					return nil, fmt.Errorf("bench: kway %s k=%d on %s: %w", engine, k, cr.Name, err)
				}
				cr.Runs = append(cr.Runs, KWayRun{
					K: k, Engine: engine, Eps: eps, Cap: res.Cap,
					SpanningNets: res.SpanningNets,
					Connectivity: res.Connectivity,
					RatioValue:   res.RatioValue,
					Sizes:        res.PartSizesSorted(),
					WallNS:       int64(time.Since(start)),
				})
			}
		}
		rep.Circuits = append(rep.Circuits, cr)
	}
	rep.TotalNS = int64(time.Since(t0))
	return rep, nil
}

// WriteFile writes the report as <dir>/BENCH_<name>.json (creating the
// directory if missing) and returns the path written.
func (r *KWayReport) WriteFile(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("bench: creating report dir: %w", err)
	}
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("bench: encoding kway report: %w", err)
	}
	path := filepath.Join(dir, "BENCH_"+r.Name+".json")
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadKWayReportFile loads a k-way BENCH_<name>.json report from disk.
func ReadKWayReportFile(path string) (*KWayReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: reading kway baseline: %w", err)
	}
	var r KWayReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("bench: decoding %s: %w", path, err)
	}
	return &r, nil
}

// CompareKWayReports diffs cur against a checked-in baseline under a
// relative tolerance on the spanning-net count (the primary k-way cut
// metric): a (circuit, k, engine) cell regresses when its current count
// exceeds baseline·(1+tol), and cells the baseline covers but the
// current report dropped also count. Wall times are machine-dependent
// and deliberately not compared. Empty means the gate passes.
func CompareKWayReports(baseline, cur *KWayReport, tol float64) []string {
	type cell struct {
		name, engine string
		k            int
	}
	current := make(map[cell]KWayRun)
	for _, c := range cur.Circuits {
		for _, run := range c.Runs {
			current[cell{c.Name, run.Engine, run.K}] = run
		}
	}
	var regressions []string
	for _, c := range baseline.Circuits {
		for _, base := range c.Runs {
			now, ok := current[cell{c.Name, base.Engine, base.K}]
			if !ok {
				regressions = append(regressions,
					fmt.Sprintf("%s/%s/k=%d: present in baseline but missing from current report", c.Name, base.Engine, base.K))
				continue
			}
			limit := float64(base.SpanningNets) * (1 + tol)
			if float64(now.SpanningNets) > limit {
				regressions = append(regressions,
					fmt.Sprintf("%s/%s/k=%d: spanning nets %d exceed baseline %d by more than %.0f%% (limit %.6g)",
						c.Name, base.Engine, base.K, now.SpanningNets, base.SpanningNets, tol*100, limit))
			}
		}
	}
	return regressions
}

// FormatKWayTable renders the report as the markdown table EXPERIMENTS.md
// embeds: one row per circuit × k, both engines side by side.
func FormatKWayTable(r *KWayReport) string {
	out := "| circuit | k | recursive spans | recursive λ−1 | spectral spans | spectral λ−1 |\n"
	out += "|---|---|---|---|---|---|\n"
	for _, c := range r.Circuits {
		byK := make(map[int]map[string]KWayRun)
		for _, run := range c.Runs {
			if byK[run.K] == nil {
				byK[run.K] = make(map[string]KWayRun)
			}
			byK[run.K][run.Engine] = run
		}
		for _, k := range r.Ks {
			runs, ok := byK[k]
			if !ok {
				continue
			}
			rec, spec := runs[EngineRecursive], runs[EngineSpectral]
			out += fmt.Sprintf("| %s | %d | %d | %d | %d | %d |\n",
				c.Name, k, rec.SpanningNets, rec.Connectivity, spec.SpanningNets, spec.Connectivity)
		}
	}
	return out
}
