package bench

import (
	"fmt"
	"runtime"
	"time"

	"igpart/internal/core"
	"igpart/internal/eigen"
	"igpart/internal/netgen"
	"igpart/internal/obs"
)

// This file is the million-net-scale harness: it runs the candidate-split
// IG-Match pipeline (core.PartitionCandidates) on the large synthetic
// presets under both reorthogonalization modes and emits the same
// RunReport JSON as the small-circuit reports, so results/BENCH_scale.json
// can be diffed, budgeted, and gated exactly like BENCH_baseline.json.

// Scale-run algorithm names. The slash suffix distinguishes the reorth
// mode; both runs share the ordering-quality contract (equal ratio cut)
// while diverging in eigensolve wall time.
const (
	AlgScaleSelective = "IG-Scale/selective"
	AlgScaleFull      = "IG-Scale/full"
)

// Scale acceptance gate, from the reproduction roadmap: on a circuit of
// at least ScaleMinNets nets, selective reorthogonalization must be at
// least ScaleMinSpeedup× faster end to end than full reorthogonalization
// while landing within ScaleRatioTol of its ratio cut.
const (
	ScaleMinNets    = 100_000
	ScaleMinSpeedup = 3.0
	ScaleRatioTol   = 0.01
)

// ScaleConfig configures one scale-report run.
type ScaleConfig struct {
	// Preset names the netgen benchmark to run (a ScaleBenchmarks entry;
	// any named benchmark works for smoke runs). Default "scale100k".
	Preset string
	// Candidates is the number of completed splits the candidate sweep
	// evaluates. 0 uses core.DefaultCandidates.
	Candidates int
	// Parallelism bounds candidate-shard workers (0 = GOMAXPROCS).
	Parallelism int
	// MatvecWorkers is threaded to eigen.Options.MatvecWorkers
	// (0 = auto: parallel above the size floor).
	MatvecWorkers int
	// Seed offsets the preset's generator seed.
	Seed int64
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if c.Preset == "" {
		c.Preset = "scale100k"
	}
	if c.Candidates <= 0 {
		c.Candidates = core.DefaultCandidates
	}
	return c
}

// ScaleReport generates the preset circuit once and partitions it twice —
// selective then full reorthogonalization — recording wall times, ratio
// cuts, and the eigensolver's reorth/matvec counters into a RunReport.
func ScaleReport(name string, cfg ScaleConfig) (*RunReport, error) {
	cfg = cfg.withDefaults()
	gen, ok := netgen.ByName(cfg.Preset)
	if !ok {
		return nil, fmt.Errorf("bench: unknown scale preset %q", cfg.Preset)
	}
	gen.Seed += cfg.Seed
	h, err := netgen.Generate(gen)
	if err != nil {
		return nil, fmt.Errorf("bench: generating %s: %w", gen.Name, err)
	}

	tr := obs.NewTrace("bench:" + name)
	rep := &RunReport{
		Name:       name,
		CreatedAt:  time.Now().UTC(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Suite: SuiteConfig{
			Scale:       1.0,
			Seed:        cfg.Seed,
			Parallelism: cfg.Parallelism,
		},
		Algorithms: []string{AlgScaleSelective, AlgScaleFull},
	}
	cr := CircuitReport{
		Name:    gen.Name,
		Modules: h.NumModules(),
		Nets:    h.NumNets(),
		Pins:    h.NumPins(),
	}
	csp := tr.StartSpan(gen.Name)
	for _, run := range []struct {
		alg  string
		mode eigen.ReorthMode
	}{{AlgScaleSelective, eigen.ReorthSelective}, {AlgScaleFull, eigen.ReorthFull}} {
		sp := csp.StartSpan(run.alg)
		opts := core.Options{
			Parallelism: cfg.Parallelism,
			Rec:         sp,
		}
		opts.Eigen.ReorthMode = run.mode
		opts.Eigen.MatvecWorkers = cfg.MatvecWorkers
		t0 := time.Now()
		res, err := core.PartitionCandidates(h, cfg.Candidates, opts)
		wall := time.Since(t0)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("bench: scale run %s on %s: %w", run.alg, gen.Name, err)
		}
		cr.Runs = append(cr.Runs, AlgRun{
			Alg:      run.alg,
			Metrics:  res.Metrics,
			WallNS:   int64(wall),
			RatioCut: res.Metrics.RatioCut,
		})
	}
	csp.End()
	rep.Circuits = []CircuitReport{cr}
	root := tr.Finish()
	rep.Circuits[0].Stages = root.Children[0]
	rep.Metrics = tr.Metrics().Snapshot()
	rep.TotalNS = root.DurationNS
	return rep, nil
}

// findScaleRuns locates the selective/full pair in a report's circuits.
func findScaleRuns(r *RunReport) (circuit *CircuitReport, sel, full *AlgRun) {
	for i := range r.Circuits {
		c := &r.Circuits[i]
		var s, f *AlgRun
		for j := range c.Runs {
			switch c.Runs[j].Alg {
			case AlgScaleSelective:
				s = &c.Runs[j]
			case AlgScaleFull:
				f = &c.Runs[j]
			}
		}
		if s != nil && f != nil {
			return c, s, f
		}
	}
	return nil, nil, nil
}

// VerifyScaleReport checks a scale report against the acceptance gate:
// a ≥ScaleMinNets-net circuit, selective ≥ScaleMinSpeedup× faster than
// full, ratio cuts within ScaleRatioTol of each other, and the
// reorth-skip counter proving the selective path actually skipped work.
// The returned slice lists every violation; empty means the gate passes.
func VerifyScaleReport(r *RunReport) []string {
	var violations []string
	c, sel, full := findScaleRuns(r)
	if c == nil {
		return []string{fmt.Sprintf("no circuit carries both %s and %s runs", AlgScaleSelective, AlgScaleFull)}
	}
	if c.Nets < ScaleMinNets {
		violations = append(violations,
			fmt.Sprintf("%s: %d nets is below the %d-net scale floor", c.Name, c.Nets, ScaleMinNets))
	}
	if sel.WallNS <= 0 || full.WallNS <= 0 {
		violations = append(violations,
			fmt.Sprintf("%s: non-positive wall times (selective %dns, full %dns)", c.Name, sel.WallNS, full.WallNS))
	} else if speedup := float64(full.WallNS) / float64(sel.WallNS); speedup < ScaleMinSpeedup {
		violations = append(violations,
			fmt.Sprintf("%s: selective speedup %.2f× is below the %.1f× floor (selective %s, full %s)",
				c.Name, speedup, ScaleMinSpeedup,
				time.Duration(sel.WallNS), time.Duration(full.WallNS)))
	}
	if hi, lo := sel.RatioCut, full.RatioCut; hi > lo*(1+ScaleRatioTol) || lo > hi*(1+ScaleRatioTol) {
		violations = append(violations,
			fmt.Sprintf("%s: ratio cuts diverge beyond %.0f%%: selective %.6g vs full %.6g",
				c.Name, ScaleRatioTol*100, sel.RatioCut, full.RatioCut))
	}
	if r.Metrics.Counters["eigen.reorth.skipped"] == 0 {
		violations = append(violations,
			"eigen.reorth.skipped = 0: the selective run never skipped reorthogonalization, so the speedup claim is vacuous")
	}
	return violations
}

// CompareReportsWithBudget extends CompareReports with a wall-clock
// budget: beyond the ratio-cut gate, each (circuit, algorithm) cell must
// finish within wallFactor× its baseline wall time. Wall times vary
// across machines, so callers pick generous factors (CI uses 3×); a
// factor ≤ 0 disables the budget and reduces to CompareReports.
func CompareReportsWithBudget(baseline, cur *RunReport, tol, wallFactor float64) []string {
	regressions := CompareReports(baseline, cur, tol)
	if wallFactor <= 0 {
		return regressions
	}
	current := make(map[[2]string]AlgRun)
	for _, c := range cur.Circuits {
		for _, run := range c.Runs {
			current[[2]string{c.Name, run.Alg}] = run
		}
	}
	for _, c := range baseline.Circuits {
		for _, base := range c.Runs {
			now, ok := current[[2]string{c.Name, base.Alg}]
			if !ok || base.WallNS <= 0 {
				continue // missing cells are already reported by CompareReports
			}
			if limit := int64(float64(base.WallNS) * wallFactor); now.WallNS > limit {
				regressions = append(regressions,
					fmt.Sprintf("%s/%s: wall time %s exceeds the %.1f× budget over baseline %s",
						c.Name, base.Alg, time.Duration(now.WallNS), wallFactor, time.Duration(base.WallNS)))
			}
		}
	}
	return regressions
}
