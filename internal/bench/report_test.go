package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestReportStagesAndCounters runs a small report and cross-checks the
// embedded stage tree against the run outcomes: every circuit appears,
// every requested algorithm has both an AlgRun and a stage span, and the
// IG-Match subtree's splits counter equals nets−1 for its circuit.
func TestReportStagesAndCounters(t *testing.T) {
	s := Suite{Scale: 0.1, RCutStarts: 2}
	rep, err := s.Report("test", []string{AlgIGMatch, AlgIGVote})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Circuits) == 0 {
		t.Fatal("no circuits in report")
	}
	if rep.TotalNS <= 0 {
		t.Errorf("total duration %d", rep.TotalNS)
	}
	for _, cr := range rep.Circuits {
		if len(cr.Runs) != 2 {
			t.Fatalf("%s: %d runs, want 2", cr.Name, len(cr.Runs))
		}
		if cr.Stages.Name != cr.Name {
			t.Errorf("stage root %q for circuit %q", cr.Stages.Name, cr.Name)
		}
		ig := cr.Stages.Find(AlgIGMatch)
		if ig == nil {
			t.Fatalf("%s: no IG-Match stage span", cr.Name)
		}
		if got := ig.Sum("splits"); got != int64(cr.Nets-1) {
			t.Errorf("%s: IG-Match splits = %d, want %d", cr.Name, got, cr.Nets-1)
		}
		if cr.Stages.Find(AlgIGVote) == nil {
			t.Errorf("%s: no IG-Vote stage span", cr.Name)
		}
		for _, run := range cr.Runs {
			if run.RatioCut != run.Metrics.RatioCut {
				t.Errorf("%s/%s: flat ratio_cut %g != metrics %g",
					cr.Name, run.Alg, run.RatioCut, run.Metrics.RatioCut)
			}
		}
	}
	if rep.Metrics.Counters["sweep.splits"] == 0 {
		t.Error("registry snapshot missing sweep.splits")
	}
}

// TestWriteFileCreatesMissingDir is the regression test for report (and
// CSV) output into a results directory that does not exist yet: WriteFile
// must create it rather than fail the first write of a fresh checkout.
func TestWriteFileCreatesMissingDir(t *testing.T) {
	rep := &RunReport{Name: "mkdir-check"}
	dir := filepath.Join(t.TempDir(), "deep", "results")
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("precondition: %s should not exist", dir)
	}
	path, err := rep.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_mkdir-check.json"); path != want {
		t.Errorf("path %q, want %q", path, want)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("written report is not valid JSON: %v", err)
	}
	if back.Name != "mkdir-check" {
		t.Errorf("round-tripped name %q", back.Name)
	}
}

// TestCompareReports pins the bench-sanity gate semantics: regressions
// beyond the tolerance fail, improvements and in-tolerance noise pass,
// and dropped coverage counts as a regression.
func TestCompareReports(t *testing.T) {
	mk := func(runs map[string]float64) *RunReport {
		rep := &RunReport{}
		cr := CircuitReport{Name: "c1"}
		for _, alg := range []string{AlgIGMatch, AlgMultilevel, AlgRCut} {
			r, ok := runs[alg]
			if !ok {
				continue
			}
			cr.Runs = append(cr.Runs, AlgRun{Alg: alg, RatioCut: r})
		}
		rep.Circuits = append(rep.Circuits, cr)
		return rep
	}
	base := mk(map[string]float64{AlgIGMatch: 1.0, AlgMultilevel: 2.0, AlgRCut: 3.0})

	if regs := CompareReports(base, mk(map[string]float64{AlgIGMatch: 1.05, AlgMultilevel: 1.5, AlgRCut: 3.0}), 0.10); len(regs) != 0 {
		t.Fatalf("in-tolerance run flagged: %v", regs)
	}
	regs := CompareReports(base, mk(map[string]float64{AlgIGMatch: 1.2, AlgMultilevel: 2.0, AlgRCut: 3.0}), 0.10)
	if len(regs) != 1 || !strings.Contains(regs[0], AlgIGMatch) {
		t.Fatalf("11%%-worse ratio not flagged exactly once: %v", regs)
	}
	regs = CompareReports(base, mk(map[string]float64{AlgIGMatch: 1.0, AlgMultilevel: 2.0}), 0.10)
	if len(regs) != 1 || !strings.Contains(regs[0], "missing") {
		t.Fatalf("dropped algorithm not flagged: %v", regs)
	}
	// Round trip through disk, as CI does.
	dir := t.TempDir()
	path, err := (&RunReport{Name: "x", Circuits: base.Circuits}).WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if regs := CompareReports(loaded, base, 0.10); len(regs) != 0 {
		t.Fatalf("self-comparison after round trip failed: %v", regs)
	}
}

// TestMultilevelTable exercises the V-cycle comparison harness at a tiny
// scale: every row must be feasible and the ML quality within the bench
// gate's tolerance band of flat (the acceptance envelope).
func TestMultilevelTable(t *testing.T) {
	s := Suite{Scale: 0.12, Levels: 3}
	rows, err := s.MultilevelTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.Flat.SizeU == 0 || r.ML.SizeU == 0 {
			t.Fatalf("%s: infeasible row %+v", r.Name, r)
		}
		if r.Levels < 1 || r.CoarsestNets < 2 {
			t.Fatalf("%s: implausible hierarchy %+v", r.Name, r)
		}
	}
}
