package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"igpart/internal/anneal"
	"igpart/internal/core"
	"igpart/internal/features"
	"igpart/internal/flow"
	"igpart/internal/fm"
	"igpart/internal/kl"
	"igpart/internal/partition"
)

// TaxonomyRow compares one representative of each partitioning-approach
// class the paper's Section 1.1 surveys, on one benchmark:
// spectral-on-the-dual (IG-Match), iterative greedy (FM ratio cut and KL),
// stochastic (simulated annealing), and exact min-cut via max-flow.
type TaxonomyRow struct {
	Name string
	// Features is the instance's structural feature vector — the same
	// one the portfolio lineup heuristic consumes, extracted by the
	// shared internal/features package so bench and serving can never
	// drift on feature definitions.
	Features features.Vector
	IGMatch  partition.Metrics
	RCut     partition.Metrics
	KL       partition.Metrics
	Anneal   partition.Metrics
	MinCut   partition.Metrics
	// MinCutSmallSide records how unevenly the flow min cut divides the
	// circuit (Section 1.1's criticism of the formulation).
	MinCutSmallSide int
	Elapsed         time.Duration
}

// TaxonomyTable runs all five approach classes across the suite.
func (s Suite) TaxonomyTable() ([]TaxonomyRow, error) {
	s = s.withDefaults()
	cfgs, hs, err := s.circuits()
	if err != nil {
		return nil, err
	}
	rows := make([]TaxonomyRow, len(hs))
	for i, h := range hs {
		t0 := time.Now()
		row := TaxonomyRow{Name: cfgs[i].Name, Features: features.Extract(h)}

		ig, err := core.Partition(h, core.Options{})
		if err != nil {
			return nil, err
		}
		row.IGMatch = ig.Metrics

		rc, err := fm.RatioCut(h, fm.Options{Starts: s.RCutStarts, Seed: 1 + s.Seed})
		if err != nil {
			return nil, err
		}
		row.RCut = rc.Metrics

		klr, err := kl.Bisect(h, kl.Options{Starts: 3, Seed: 2 + s.Seed})
		if err != nil {
			return nil, err
		}
		row.KL = klr.Metrics

		an, err := anneal.RatioCut(h, anneal.Options{Seed: 3 + s.Seed})
		if err != nil {
			return nil, err
		}
		row.Anneal = an.Metrics

		fl, err := flow.BestOverPairs(h, 4)
		if err != nil {
			return nil, err
		}
		row.MinCut = fl.Metrics
		small := fl.Metrics.SizeU
		if fl.Metrics.SizeW < small {
			small = fl.Metrics.SizeW
		}
		row.MinCutSmallSide = small
		row.Elapsed = time.Since(t0)
		rows[i] = row
	}
	return rows, nil
}

// FormatTaxonomy renders the taxonomy comparison.
func FormatTaxonomy(rows []TaxonomyRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Taxonomy (Section 1.1): one representative per approach class (ratio cut; min-cut column also shows cut/small-side)")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Test\tclass\tdensity\tIG-Match\tRCut(FM)\tKL\tAnneal\tMinCut(flow)\tcut/small\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.4f\t%s\t%s\t%s\t%s\t%s\t%d/%d\t\n",
			r.Name, r.Features.Class, r.Features.PinDensity,
			ratioStr(r.IGMatch.RatioCut), ratioStr(r.RCut.RatioCut),
			ratioStr(r.KL.RatioCut), ratioStr(r.Anneal.RatioCut),
			ratioStr(r.MinCut.RatioCut), r.MinCut.CutNets, r.MinCutSmallSide)
	}
	w.Flush()
	return b.String()
}
