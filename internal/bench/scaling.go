package bench

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"text/tabwriter"
	"time"

	"igpart/internal/core"
	"igpart/internal/eigen"
	"igpart/internal/netgen"
	"igpart/internal/netmodel"
)

// ScalingRow measures the IG-Match pipeline cost at one circuit size — the
// data behind the paper's Section 5 claim that "the computational
// complexity of the Lanczos implementation scales well with increasing
// problem sizes… this overall methodology will continue to be useful even
// when problem sizes grow very large".
type ScalingRow struct {
	Scale    float64
	Modules  int
	Nets     int
	Pins     int
	IGBuild  time.Duration // intersection-graph construction
	Eigen    time.Duration // Fiedler solve on Q'
	Sweep    time.Duration // serial sweep: matching maintenance + completions
	SweepPar time.Duration // same sweep, sharded across Par workers
	Par      int           // shard count of the parallel sweep
	Total    time.Duration // IGBuild + Eigen + SweepPar
	RatioCut float64
}

// Speedup is the serial-over-parallel sweep time ratio.
func (r ScalingRow) Speedup() float64 {
	if r.SweepPar <= 0 {
		return 0
	}
	return float64(r.Sweep) / float64(r.SweepPar)
}

// ScalingTable runs IG-Match on the Prim2-class circuit at multiples of
// its published size. Scales beyond 1.0 extrapolate the benchmark.
func (s Suite) ScalingTable(scales []float64) ([]ScalingRow, error) {
	s = s.withDefaults()
	if len(scales) == 0 {
		scales = []float64{0.25, 0.5, 1, 2, 4}
	}
	base, _ := netgen.ByName("Prim2")
	rows := make([]ScalingRow, 0, len(scales))
	for _, f := range scales {
		cfg := base.Scaled(f * s.Scale)
		cfg.Seed += s.Seed
		h, err := netgen.Generate(cfg)
		if err != nil {
			return nil, err
		}
		row := ScalingRow{Scale: f, Modules: h.NumModules(), Nets: h.NumNets(), Pins: h.NumPins()}

		t0 := time.Now()
		q := netmodel.IGLaplacian(h, netmodel.IGOptions{})
		row.IGBuild = time.Since(t0)

		t0 = time.Now()
		fied, err := eigen.Fiedler(q, eigen.Options{})
		if err != nil {
			return nil, fmt.Errorf("bench: scaling eigensolve at %.2gx: %w", f, err)
		}
		row.Eigen = time.Since(t0)

		order := core.SortNetsByVector(fied.Vector)
		t0 = time.Now()
		res, err := core.PartitionWithOrder(h, order, core.Options{Parallelism: 1})
		if err != nil {
			return nil, fmt.Errorf("bench: scaling sweep at %.2gx: %w", f, err)
		}
		row.Sweep = time.Since(t0)

		row.Par = runtime.GOMAXPROCS(0)
		if s.Parallelism > 0 {
			row.Par = s.Parallelism
		}
		t0 = time.Now()
		resP, err := core.PartitionWithOrder(h, order, core.Options{Parallelism: row.Par})
		if err != nil {
			return nil, fmt.Errorf("bench: scaling parallel sweep at %.2gx: %w", f, err)
		}
		row.SweepPar = time.Since(t0)
		if resP.Metrics != res.Metrics || resP.BestRank != res.BestRank {
			return nil, fmt.Errorf("bench: parallel sweep diverged from serial at %.2gx: %+v (rank %d) vs %+v (rank %d)",
				f, resP.Metrics, resP.BestRank, res.Metrics, res.BestRank)
		}

		row.Total = row.IGBuild + row.Eigen + row.SweepPar
		row.RatioCut = res.Metrics.RatioCut
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatScaling renders the scaling study.
func FormatScaling(rows []ScalingRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Scaling (§5 claim): IG-Match pipeline cost vs circuit size (Prim2 class)")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "scale\tmodules\tnets\tpins\tIG build\teigen\tsweep P=1\tsweep P=n\tspeedup\ttotal\tratio\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%.2gx\t%d\t%d\t%d\t%v\t%v\t%v\t%v (P=%d)\t%.2fx\t%v\t%s\t\n",
			r.Scale, r.Modules, r.Nets, r.Pins,
			r.IGBuild.Round(time.Millisecond), r.Eigen.Round(time.Millisecond),
			r.Sweep.Round(time.Millisecond), r.SweepPar.Round(time.Millisecond), r.Par,
			r.Speedup(), r.Total.Round(time.Millisecond),
			ratioStr(r.RatioCut))
	}
	w.Flush()
	if len(rows) >= 2 {
		first, last := rows[0], rows[len(rows)-1]
		sizeRatio := float64(last.Nets) / float64(first.Nets)
		timeRatio := float64(last.Total) / float64(first.Total)
		fmt.Fprintf(&b, "size grew %.1fx, total time grew %.1fx (exponent %.2f)\n",
			sizeRatio, timeRatio, logRatio(timeRatio, sizeRatio))
	}
	return b.String()
}

// logRatio returns log(a)/log(b) — the empirical scaling exponent.
func logRatio(a, b float64) float64 {
	if a <= 0 || b <= 0 || b == 1 {
		return 0
	}
	return math.Log(a) / math.Log(b)
}
