package bench

import (
	"strings"
	"testing"

	"igpart/internal/netmodel"
	"igpart/internal/partition"
)

// quickSuite runs the harness at 15% scale so the whole table set completes
// in seconds.
func quickSuite() Suite { return Suite{Scale: 0.15, RCutStarts: 3} }

func TestImprovementPct(t *testing.T) {
	// Paper rows: bm1 12.73 -> 5.53 is 57%; 19ks 5.88 -> 5.96 is -1%.
	if got := ImprovementPct(12.73e-5, 5.53e-5); got < 56 || got > 58 {
		t.Errorf("bm1-style improvement = %v, want ≈57", got)
	}
	if got := ImprovementPct(5.88e-5, 5.96e-5); got > -1 || got < -2 {
		t.Errorf("19ks-style improvement = %v, want ≈-1.4", got)
	}
	if ImprovementPct(0, 1) != 0 {
		t.Error("zero base should yield 0")
	}
}

func TestDefaultSuite(t *testing.T) {
	s := DefaultSuite()
	if s.Scale != 1.0 || s.RCutStarts != 10 {
		t.Errorf("DefaultSuite = %+v", s)
	}
}

func TestEIG1AndIGDiamTables(t *testing.T) {
	s := quickSuite()
	e, err := s.TableEIG1()
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.TableIGDiam()
	if err != nil {
		t.Fatal(err)
	}
	if len(e) != 9 || len(d) != 9 {
		t.Fatalf("rows: eig1=%d igdiam=%d", len(e), len(d))
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	s := quickSuite()
	_, hs, err := s.circuits()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Run("nope", hs[0]); err == nil {
		t.Error("accepted unknown algorithm")
	}
}

func TestTable1(t *testing.T) {
	r, err := quickSuite().Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	total := 0
	for _, row := range r.Rows {
		total += row.Count
		if row.Cut > row.Count {
			t.Errorf("size %d: cut %d > count %d", row.NetSize, row.Cut, row.Count)
		}
	}
	if total == 0 {
		t.Error("empty histogram")
	}
	out := FormatTable1(r)
	if !strings.Contains(out, "Net Size") {
		t.Errorf("format missing header: %q", out)
	}
}

func TestNonMonotone(t *testing.T) {
	// Cut fraction dips at size 3 then rises: non-monotone.
	dip := []partition.CutStatRow{
		{NetSize: 2, Count: 100, Cut: 10},
		{NetSize: 3, Count: 50, Cut: 2},
		{NetSize: 4, Count: 10, Cut: 5},
	}
	if !NonMonotone(dip, 1) {
		t.Error("dip not detected")
	}
	mono := []partition.CutStatRow{
		{NetSize: 2, Count: 100, Cut: 5},
		{NetSize: 3, Count: 50, Cut: 10},
		{NetSize: 4, Count: 10, Cut: 9},
	}
	if NonMonotone(mono, 1) {
		t.Error("false positive on monotone data")
	}
	// Rows below the count floor are ignored.
	if NonMonotone(dip, 60) {
		t.Error("count floor not applied")
	}
}

func TestTables2And3(t *testing.T) {
	s := quickSuite()
	t2, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(t2) != 9 {
		t.Fatalf("Table2 has %d rows", len(t2))
	}
	avg := GeomImprovement(t2)
	if avg < 0 {
		t.Errorf("IG-Match loses to RCut on average at small scale: %.1f%%", avg)
	}
	t3, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range t3 {
		if r.Improvement < -1 {
			t.Errorf("%s: IG-Match worse than IG-Vote by %.1f%% (paper: uniform domination)", r.Name, -r.Improvement)
		}
	}
	out := FormatCompare("t", "RCut", "IG-Match", t2)
	if !strings.Contains(out, "average improvement") {
		t.Errorf("format missing summary: %q", out)
	}
}

func TestSparsityTable(t *testing.T) {
	rows, err := quickSuite().SparsityTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows", len(rows))
	}
	sparser := 0
	for _, r := range rows {
		if r.Ratio > 1 {
			sparser++
		}
	}
	if sparser < 7 {
		t.Errorf("IG sparser on only %d/9 benchmarks", sparser)
	}
	if !strings.Contains(FormatSparsity(rows), "Clique nnz") {
		t.Error("format broken")
	}
}

func TestStabilityTable(t *testing.T) {
	rows, err := quickSuite().StabilityTable(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.DistinctIGs != 1 {
			t.Errorf("%s: IG-Match gave %d distinct results across repeats", r.Name, r.DistinctIGs)
		}
		if len(r.RCutRatios) != 3 {
			t.Errorf("%s: %d RCut ratios", r.Name, len(r.RCutRatios))
		}
		if r.RCutBest > 0 && r.RCutSpread < 1 {
			t.Errorf("%s: spread %v < 1", r.Name, r.RCutSpread)
		}
	}
	if !strings.Contains(FormatStability(rows), "IG distinct") {
		t.Error("format broken")
	}
}

func TestWeightSchemeTable(t *testing.T) {
	rows, err := quickSuite().WeightSchemeTable()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r.Ratios) != 4 {
			t.Errorf("%s: %d schemes", r.Name, len(r.Ratios))
		}
		for scheme, ratio := range r.Ratios {
			// Zero is legitimate when the scaled-down circuit is
			// disconnected; negative ratios never are.
			if ratio < 0 {
				t.Errorf("%s/%v: ratio %v", r.Name, scheme, ratio)
			}
		}
	}
	if !strings.Contains(FormatWeightSchemes(rows), netmodel.SchemePaper.String()) {
		t.Error("format broken")
	}
}

func TestNetModelTable(t *testing.T) {
	rows, err := quickSuite().NetModelTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.SpreadPct < 0 {
			t.Errorf("%s: negative spread", r.Name)
		}
	}
	if !strings.Contains(FormatNetModel(rows), "EIG1/star") {
		t.Error("format broken")
	}
}

func TestThresholdTable(t *testing.T) {
	rows, err := quickSuite().ThresholdTable([]int{0, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r.Ratios) != 2 || len(r.IGNonzeros) != 2 {
			t.Fatalf("%s: wrong widths %+v", r.Name, r)
		}
		if r.IGNonzeros[1] > r.IGNonzeros[0] {
			t.Errorf("%s: thresholding increased nonzeros", r.Name)
		}
	}
	if !strings.Contains(FormatThreshold(rows), "T=8") {
		t.Error("format broken")
	}
}

func TestRecursiveTable(t *testing.T) {
	rows, err := quickSuite().RecursiveTable()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Recursive.RatioCut > r.Plain.RatioCut+1e-12 {
			t.Errorf("%s: recursion worsened ratio", r.Name)
		}
	}
	if !strings.Contains(FormatRecursive(rows), "recursive ratio") {
		t.Error("format broken")
	}
}

func TestRefineTable(t *testing.T) {
	rows, err := quickSuite().RefineTable()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.IGMatchFM > r.IGMatch+1e-12 {
			t.Errorf("%s: FM polish worsened IG-Match", r.Name)
		}
		if r.EIG1FM > r.EIG1+1e-12 {
			t.Errorf("%s: FM polish worsened EIG1", r.Name)
		}
	}
	if !strings.Contains(FormatRefine(rows), "+FM") {
		t.Error("format broken")
	}
}

func TestClusterTable(t *testing.T) {
	rows, err := quickSuite().ClusterTable()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.CoarseModules <= 0 {
			t.Errorf("%s: coarse modules %d", r.Name, r.CoarseModules)
		}
		if r.Condensed.SizeU == 0 || r.Condensed.SizeW == 0 {
			t.Errorf("%s: improper condensed partition", r.Name)
		}
	}
	if !strings.Contains(FormatCluster(rows), "coarse n") {
		t.Error("format broken")
	}
}

func TestOrderingTable(t *testing.T) {
	rows, err := quickSuite().OrderingTable(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows", len(rows))
	}
	betterOrEqual := 0
	for _, r := range rows {
		if r.Eigen <= r.RandomMean+1e-12 {
			betterOrEqual++
		}
	}
	// The eigen ordering should beat the mean random ordering on most
	// circuits — that is the point of the spectral stage.
	if betterOrEqual < 6 {
		t.Errorf("eigen order only matched random mean on %d/9 circuits", betterOrEqual)
	}
	if !strings.Contains(FormatOrdering(rows), "random mean") {
		t.Error("format broken")
	}
}

func TestScalingTable(t *testing.T) {
	rows, err := quickSuite().ScalingTable([]float64{0.5, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Nets <= rows[i-1].Nets {
			t.Errorf("circuit sizes not increasing: %d then %d", rows[i-1].Nets, rows[i].Nets)
		}
	}
	if !strings.Contains(FormatScaling(rows), "exponent") {
		t.Error("format broken")
	}
}

func TestCSVEmitters(t *testing.T) {
	s := quickSuite()
	rows, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteCompareCSV(&buf, "a", "b", rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 10 { // header + 9 rows
		t.Errorf("compare CSV has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "test,elements,a_sizeU") {
		t.Errorf("header = %q", lines[0])
	}

	r1, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteCutStatsCSV(&buf, r1.Rows); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "net_size,count,cut\n") {
		t.Error("cut-stats header broken")
	}

	trace, err := s.SweepTrace("Prim1")
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	buf.Reset()
	if err := WriteTraceCSV(&buf, trace); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "rank,matching,cut,ratio\n") {
		t.Error("trace header broken")
	}
	if _, err := s.SweepTrace("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestTaxonomyTable(t *testing.T) {
	rows, err := quickSuite().TaxonomyTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// The min cut must be at most every other method's cut: it is the
		// true minimum over some separation, and in particular is optimal
		// for its own pair.
		if r.MinCut.CutNets > r.RCut.CutNets && r.MinCut.CutNets > r.IGMatch.CutNets {
			t.Errorf("%s: flow 'min cut' %d larger than both heuristics (%d, %d)",
				r.Name, r.MinCut.CutNets, r.RCut.CutNets, r.IGMatch.CutNets)
		}
	}
	if !strings.Contains(FormatTaxonomy(rows), "MinCut(flow)") {
		t.Error("format broken")
	}
}

func TestTimingAndLanczosTables(t *testing.T) {
	s := quickSuite()
	rows, err := s.TimingTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows", len(rows))
	}
	if !strings.Contains(FormatTiming(rows, s.RCutStarts), "RCutN/IG") {
		t.Error("format broken")
	}
	lz, err := s.LanczosTable()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range lz {
		if r.Lambda2 < 0 {
			t.Errorf("%s: λ2 = %v", r.Name, r.Lambda2)
		}
	}
	if !strings.Contains(FormatLanczos(lz), "lambda2") {
		t.Error("format broken")
	}
}
