package bench

import (
	"fmt"
	"runtime"
	"time"

	"igpart/internal/core"
	"igpart/internal/eigen"
	"igpart/internal/netgen"
	"igpart/internal/obs"
	"igpart/internal/portfolio"
)

// This file is the portfolio/ECO harness behind results/BENCH_portfolio.json:
// one circuit, four rows. The first pair races the adaptive portfolio
// against a fixed IG-Match solve (same seed, Accept=0 so the winner is
// the deterministic best-of-lineup, not a timing race); the second pair
// re-partitions after a small ECO delta warm (WarmStart from the cached
// net ordering) and cold (full IG-Match on the edited netlist), which is
// the incremental-ECO speedup claim in measurable form.

// Portfolio-report row names.
const (
	AlgPortfolioRace  = "Portfolio/race"
	AlgPortfolioFixed = "Portfolio/igmatch-fixed"
	AlgECOWarm        = "ECO/warm"
	AlgECOCold        = "ECO/cold"
)

// Portfolio acceptance gate: the warm ECO re-partition must be at least
// PortfolioWarmSpeedup× faster than the cold re-solve with a ratio cut
// within PortfolioRatioTol, the delta must stay at or under
// PortfolioMaxDeltaFrac of the nets (the claim is about small ECOs),
// and the portfolio winner must not lose to fixed IG-Match by more than
// PortfolioRatioTol.
const (
	PortfolioWarmSpeedup  = 3.0
	PortfolioRatioTol     = 0.10
	PortfolioMaxDeltaFrac = 0.05
)

// PortfolioConfig configures one portfolio-report run.
type PortfolioConfig struct {
	// Preset names the netgen benchmark (default "scale10k" — large
	// enough that the warm/cold wall-time ratio is signal, small enough
	// for a CI gate).
	Preset string
	// DeltaNets is how many nets the ECO delta removes (0 = 1% of the
	// circuit, floor 5).
	DeltaNets int
	// Budget bounds the portfolio race (0 = no deadline; every
	// contender finishes and the best wins deterministically).
	Budget time.Duration
	// Parallelism bounds sweep shards (0 = GOMAXPROCS).
	Parallelism int
	// Seed offsets the preset's generator seed and seeds the solvers.
	Seed int64
}

func (c PortfolioConfig) withDefaults() PortfolioConfig {
	if c.Preset == "" {
		c.Preset = "scale10k"
	}
	return c
}

// PortfolioReport generates the preset circuit and measures the four
// rows: portfolio race, fixed IG-Match, warm ECO re-partition, cold ECO
// re-solve. The ECO rows run on the delta'd netlist (the last
// cfg.DeltaNets nets removed), so their ratio cuts are directly
// comparable to each other but not to the first pair.
func PortfolioReport(name string, cfg PortfolioConfig) (*RunReport, error) {
	cfg = cfg.withDefaults()
	gen, ok := netgen.ByName(cfg.Preset)
	if !ok {
		return nil, fmt.Errorf("bench: unknown preset %q", cfg.Preset)
	}
	gen.Seed += cfg.Seed
	h, err := netgen.Generate(gen)
	if err != nil {
		return nil, fmt.Errorf("bench: generating %s: %w", gen.Name, err)
	}

	touched := cfg.DeltaNets
	if touched <= 0 {
		touched = h.NumNets() / 100
		if touched < 5 {
			touched = 5
		}
	}
	delta := portfolio.Delta{RemoveNets: make([]int, touched)}
	for i := range delta.RemoveNets {
		delta.RemoveNets[i] = h.NumNets() - touched + i
	}

	tr := obs.NewTrace("bench:" + name)
	rep := &RunReport{
		Name:       name,
		CreatedAt:  time.Now().UTC(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Suite: SuiteConfig{
			Scale:       1.0,
			Seed:        cfg.Seed,
			Parallelism: cfg.Parallelism,
		},
		Algorithms: []string{AlgPortfolioRace, AlgPortfolioFixed, AlgECOWarm, AlgECOCold},
	}
	cr := CircuitReport{
		Name:    gen.Name,
		Modules: h.NumModules(),
		Nets:    h.NumNets(),
		Pins:    h.NumPins(),
	}
	csp := tr.StartSpan(gen.Name)

	// Row 1: the adaptive portfolio, Accept=0 (deterministic winner).
	sp := csp.StartSpan(AlgPortfolioRace)
	t0 := time.Now()
	race, err := portfolio.Race(h, portfolio.Options{
		Budget:      cfg.Budget,
		Parallelism: cfg.Parallelism,
		Seed:        cfg.Seed,
		Rec:         sp,
	})
	wall := time.Since(t0)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("bench: portfolio race on %s: %w", gen.Name, err)
	}
	cr.Runs = append(cr.Runs, AlgRun{
		Alg: AlgPortfolioRace, Metrics: race.Metrics,
		WallNS: int64(wall), RatioCut: race.Metrics.RatioCut,
	})
	tr.Metrics().Gauge("portfolio.report.winner_is_igmatch").Set(b2f(race.Winner == portfolio.AlgIGMatch))

	// Row 2: fixed IG-Match on the same circuit and seed. Its result is
	// also the warm-start base for the ECO rows.
	sp = csp.StartSpan(AlgPortfolioFixed)
	t0 = time.Now()
	base, err := core.Partition(h, core.Options{
		Parallelism: cfg.Parallelism,
		Eigen:       eigen.Options{Seed: cfg.Seed},
		Rec:         sp,
	})
	wall = time.Since(t0)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("bench: fixed IG-Match on %s: %w", gen.Name, err)
	}
	cr.Runs = append(cr.Runs, AlgRun{
		Alg: AlgPortfolioFixed, Metrics: base.Metrics,
		WallNS: int64(wall), RatioCut: base.Metrics.RatioCut,
	})

	// Row 3: warm ECO re-partition from the base ordering.
	sp = csp.StartSpan(AlgECOWarm)
	t0 = time.Now()
	warm, err := portfolio.WarmStart(h, base.NetOrder, base.BestRank, delta, portfolio.WarmOptions{
		Core: core.Options{
			Parallelism: cfg.Parallelism,
			Eigen:       eigen.Options{Seed: cfg.Seed},
			Rec:         sp,
		},
	})
	wall = time.Since(t0)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("bench: warm ECO on %s: %w", gen.Name, err)
	}
	if warm.Cold {
		return nil, fmt.Errorf("bench: %d-net delta on %s fell back to a cold solve", touched, gen.Name)
	}
	cr.Runs = append(cr.Runs, AlgRun{
		Alg: AlgECOWarm, Metrics: warm.Metrics,
		WallNS: int64(wall), RatioCut: warm.Metrics.RatioCut,
	})

	// Row 4: cold re-solve of the same edited netlist.
	edited, _ := delta.Apply(h)
	sp = csp.StartSpan(AlgECOCold)
	t0 = time.Now()
	cold, err := core.Partition(edited, core.Options{
		Parallelism: cfg.Parallelism,
		Eigen:       eigen.Options{Seed: cfg.Seed},
		Rec:         sp,
	})
	wall = time.Since(t0)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("bench: cold ECO re-solve on %s: %w", gen.Name, err)
	}
	cr.Runs = append(cr.Runs, AlgRun{
		Alg: AlgECOCold, Metrics: cold.Metrics,
		WallNS: int64(wall), RatioCut: cold.Metrics.RatioCut,
	})
	csp.End()

	rep.Circuits = []CircuitReport{cr}
	root := tr.Finish()
	rep.Circuits[0].Stages = root.Children[0]
	rep.Metrics = tr.Metrics().Snapshot()
	rep.TotalNS = root.DurationNS
	return rep, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// findPortfolioRuns locates the four portfolio/ECO rows in a report.
func findPortfolioRuns(r *RunReport) (circuit *CircuitReport, runs map[string]*AlgRun) {
	for i := range r.Circuits {
		c := &r.Circuits[i]
		m := make(map[string]*AlgRun)
		for j := range c.Runs {
			switch c.Runs[j].Alg {
			case AlgPortfolioRace, AlgPortfolioFixed, AlgECOWarm, AlgECOCold:
				m[c.Runs[j].Alg] = &c.Runs[j]
			}
		}
		if len(m) == 4 {
			return c, m
		}
	}
	return nil, nil
}

// VerifyPortfolioReport checks a portfolio report against the
// acceptance gate: the warm ECO re-partition at least
// PortfolioWarmSpeedup× faster than the cold re-solve with ratio cuts
// within PortfolioRatioTol, the warm-start counter proving the warm
// path actually ran, and the portfolio race no worse than fixed
// IG-Match beyond the same tolerance. The returned slice lists every
// violation; empty means the gate passes.
func VerifyPortfolioReport(r *RunReport) []string {
	var violations []string
	c, runs := findPortfolioRuns(r)
	if c == nil {
		return []string{fmt.Sprintf("no circuit carries all of %s, %s, %s, %s",
			AlgPortfolioRace, AlgPortfolioFixed, AlgECOWarm, AlgECOCold)}
	}
	warm, cold := runs[AlgECOWarm], runs[AlgECOCold]
	if warm.WallNS <= 0 || cold.WallNS <= 0 {
		violations = append(violations,
			fmt.Sprintf("%s: non-positive ECO wall times (warm %dns, cold %dns)", c.Name, warm.WallNS, cold.WallNS))
	} else if speedup := float64(cold.WallNS) / float64(warm.WallNS); speedup < PortfolioWarmSpeedup {
		violations = append(violations,
			fmt.Sprintf("%s: warm ECO speedup %.2f× is below the %.1f× floor (warm %s, cold %s)",
				c.Name, speedup, PortfolioWarmSpeedup,
				time.Duration(warm.WallNS), time.Duration(cold.WallNS)))
	}
	if hi, lo := warm.RatioCut, cold.RatioCut; hi > lo*(1+PortfolioRatioTol) || lo > hi*(1+PortfolioRatioTol) {
		violations = append(violations,
			fmt.Sprintf("%s: ECO ratio cuts diverge beyond %.0f%%: warm %.6g vs cold %.6g",
				c.Name, PortfolioRatioTol*100, warm.RatioCut, cold.RatioCut))
	}
	if r.Metrics.Counters["portfolio.warm_start"] == 0 {
		violations = append(violations,
			"portfolio.warm_start = 0: the ECO row never took the warm path, so the speedup claim is vacuous")
	}
	race, fixed := runs[AlgPortfolioRace], runs[AlgPortfolioFixed]
	if race.RatioCut > fixed.RatioCut*(1+PortfolioRatioTol) {
		violations = append(violations,
			fmt.Sprintf("%s: portfolio ratio cut %.6g loses to fixed IG-Match %.6g beyond %.0f%%",
				c.Name, race.RatioCut, fixed.RatioCut, PortfolioRatioTol*100))
	}
	return violations
}
