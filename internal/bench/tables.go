package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"igpart/internal/cluster"
	"igpart/internal/core"
	"igpart/internal/eigen"
	"igpart/internal/fm"
	"igpart/internal/multilevel"
	"igpart/internal/netgen"
	"igpart/internal/netmodel"
	"igpart/internal/obs"
	"igpart/internal/partition"
	"igpart/internal/refine"
	"igpart/internal/spectral"
)

// ---------------------------------------------------------------------------
// Table 1 — cut statistics per net size for a locally minimum ratio cut.

// Table1Result carries the Table 1 reproduction.
type Table1Result struct {
	Circuit string
	Metrics partition.Metrics
	Rows    []partition.CutStatRow
}

// Table1 optimizes a ratio cut on the Prim2-class circuit with the RCut
// heuristic (a "typical locally minimum ratio cut", as the paper puts it)
// and tabulates cut counts per net size.
func (s Suite) Table1() (Table1Result, error) {
	s = s.withDefaults()
	cfg, _ := netgen.ByName("Prim2")
	cfg = cfg.Scaled(s.Scale)
	cfg.Seed += s.Seed
	h, err := netgen.Generate(cfg)
	if err != nil {
		return Table1Result{}, err
	}
	res, err := fm.RatioCut(h, fm.Options{Starts: s.RCutStarts, Seed: 1 + s.Seed})
	if err != nil {
		return Table1Result{}, err
	}
	return Table1Result{
		Circuit: cfg.Name,
		Metrics: res.Metrics,
		Rows:    partition.CutStatistics(h, res.Partition),
	}, nil
}

// FormatTable1 renders the Table 1 layout.
func FormatTable1(r Table1Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: cut statistics per net size (%s, ratio cut %s)\n", r.Circuit, ratioStr(r.Metrics.RatioCut))
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "Net Size\tNumber of Nets\tNumber Cut\t")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t\n", row.NetSize, row.Count, row.Cut)
	}
	w.Flush()
	return b.String()
}

// NonMonotone reports whether the cut fraction fails to increase
// monotonically with net size over rows with at least minCount nets — the
// qualitative claim Table 1 supports.
func NonMonotone(rows []partition.CutStatRow, minCount int) bool {
	prev := -1.0
	for _, r := range rows {
		if r.Count < minCount {
			continue
		}
		frac := float64(r.Cut) / float64(r.Count)
		if prev >= 0 && frac < prev-1e-12 {
			return true
		}
		prev = frac
	}
	return false
}

// ---------------------------------------------------------------------------
// Tables 2 and 3 — IG-Match vs RCut and vs IG-Vote.

// Table2 compares IG-Match against the RCut baseline (paper: 28.8% average
// improvement).
func (s Suite) Table2() ([]CompareRow, error) { return s.Compare(AlgRCut, AlgIGMatch) }

// Table3 compares IG-Match against IG-Vote (paper: 7% average improvement,
// uniform domination).
func (s Suite) Table3() ([]CompareRow, error) { return s.Compare(AlgIGVote, AlgIGMatch) }

// TableEIG1 compares IG-Match against EIG1 (paper: 22% average improvement
// quoted in Section 4).
func (s Suite) TableEIG1() ([]CompareRow, error) { return s.Compare(AlgEIG1, AlgIGMatch) }

// TableIGDiam compares IG-Match against the Kahng'89-style diameter
// heuristic — the earliest intersection-graph partitioner the paper cites.
func (s Suite) TableIGDiam() ([]CompareRow, error) { return s.Compare(AlgIGDiam, AlgIGMatch) }

// FormatCompare renders a Table 2/3-style comparison.
func FormatCompare(title, baseName, oursName string, rows []CompareRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "Test\tElements\t%s areas\tcut\tratio\t%s areas\tcut\tratio\timprove%%\t\n", baseName, oursName)
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d:%d\t%d\t%s\t%d:%d\t%d\t%s\t%.0f\t\n",
			r.Name, r.Elements,
			r.Base.SizeU, r.Base.SizeW, r.Base.CutNets, ratioStr(r.Base.RatioCut),
			r.Ours.SizeU, r.Ours.SizeW, r.Ours.CutNets, ratioStr(r.Ours.RatioCut),
			r.Improvement)
	}
	w.Flush()
	fmt.Fprintf(&b, "average improvement: %.1f%%\n", GeomImprovement(rows))
	return b.String()
}

// ---------------------------------------------------------------------------
// X1 — sparsity of the intersection graph vs the clique model.

// SparsityRow reports the nonzero counts of both net models for one
// benchmark (paper, Section 1.2: Test05 has 19 935 IG nonzeros vs 219 811
// clique nonzeros).
type SparsityRow struct {
	Name    string
	Modules int
	Nets    int
	netmodel.Sparsity
}

// SparsityTable builds both models for every benchmark.
func (s Suite) SparsityTable() ([]SparsityRow, error) {
	s = s.withDefaults()
	cfgs, hs, err := s.circuits()
	if err != nil {
		return nil, err
	}
	rows := make([]SparsityRow, len(hs))
	for i, h := range hs {
		rows[i] = SparsityRow{
			Name:     cfgs[i].Name,
			Modules:  h.NumModules(),
			Nets:     h.NumNets(),
			Sparsity: netmodel.CompareSparsity(h),
		}
	}
	return rows, nil
}

// FormatSparsity renders the sparsity comparison.
func FormatSparsity(rows []SparsityRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Sparsity: clique-model vs intersection-graph nonzeros")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Test\tModules\tNets\tClique nnz\tIG nnz\tratio\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.2f\t\n",
			r.Name, r.Modules, r.Nets, r.CliqueNonzeros, r.IGNonzeros, r.Ratio)
	}
	w.Flush()
	return b.String()
}

// ---------------------------------------------------------------------------
// X2 — runtime comparison: spectral flow vs multi-start RCut.

// TimingRow reports wall-clock comparison for one benchmark (the paper's
// PrimSC2 datum: 83 s eigen vs 204 s for 10 RCut1.0 runs on a Sun4/60).
type TimingRow struct {
	Name      string
	IGMatch   time.Duration
	EIG1      time.Duration
	RCutBest  time.Duration // full multi-start run
	RCutOne   time.Duration // single start, for scale
	SpeedupVs float64       // RCutBest / IGMatch
}

// TimingTable measures all four timings per benchmark.
func (s Suite) TimingTable() ([]TimingRow, error) {
	s = s.withDefaults()
	cfgs, hs, err := s.circuits()
	if err != nil {
		return nil, err
	}
	rows := make([]TimingRow, len(hs))
	for i, h := range hs {
		_, igT, err := s.Run(AlgIGMatch, h)
		if err != nil {
			return nil, err
		}
		_, egT, err := s.Run(AlgEIG1, h)
		if err != nil {
			return nil, err
		}
		_, rcT, err := s.Run(AlgRCut, h)
		if err != nil {
			return nil, err
		}
		one := Suite{Scale: s.Scale, RCutStarts: 1, Seed: s.Seed}
		_, rc1T, err := one.Run(AlgRCut, h)
		if err != nil {
			return nil, err
		}
		rows[i] = TimingRow{
			Name:     cfgs[i].Name,
			IGMatch:  igT,
			EIG1:     egT,
			RCutBest: rcT,
			RCutOne:  rc1T,
		}
		if igT > 0 {
			rows[i].SpeedupVs = float64(rcT) / float64(igT)
		}
	}
	return rows, nil
}

// FormatTiming renders the timing comparison.
func FormatTiming(rows []TimingRow, starts int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Timing: IG-Match / EIG1 vs RCut best-of-%d (wall clock)\n", starts)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Test\tIG-Match\tEIG1\tRCut xN\tRCut x1\tRCutN/IG\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%v\t%v\t%v\t%v\t%.2f\t\n",
			r.Name, r.IGMatch.Round(time.Millisecond), r.EIG1.Round(time.Millisecond),
			r.RCutBest.Round(time.Millisecond), r.RCutOne.Round(time.Millisecond), r.SpeedupVs)
	}
	w.Flush()
	return b.String()
}

// ---------------------------------------------------------------------------
// X3 — stability: deterministic spectral flow vs seed-dependent RCut.

// StabilityRow summarizes the run-to-run behavior on one benchmark.
type StabilityRow struct {
	Name        string
	IGMatch     float64   // single deterministic ratio cut
	RCutRatios  []float64 // one final ratio per seed
	RCutBest    float64
	RCutWorst   float64
	RCutSpread  float64 // worst/best
	DistinctIGs int     // distinct IG-Match results across repeats (must be 1)
}

// StabilityTable runs IG-Match repeatedly (expecting identical output) and
// RCut across `seeds` different seeds.
func (s Suite) StabilityTable(seeds int) ([]StabilityRow, error) {
	s = s.withDefaults()
	if seeds <= 0 {
		seeds = 5
	}
	cfgs, hs, err := s.circuits()
	if err != nil {
		return nil, err
	}
	rows := make([]StabilityRow, len(hs))
	for i, h := range hs {
		row := StabilityRow{Name: cfgs[i].Name}
		distinct := map[partition.Metrics]bool{}
		for rep := 0; rep < 3; rep++ {
			met, _, err := s.Run(AlgIGMatch, h)
			if err != nil {
				return nil, err
			}
			distinct[met] = true
			row.IGMatch = met.RatioCut
		}
		row.DistinctIGs = len(distinct)
		for seed := 0; seed < seeds; seed++ {
			res, err := fm.RatioCut(h, fm.Options{Starts: 1, Seed: int64(1000 + seed)})
			if err != nil {
				return nil, err
			}
			row.RCutRatios = append(row.RCutRatios, res.Metrics.RatioCut)
			if seed == 0 || res.Metrics.RatioCut < row.RCutBest {
				row.RCutBest = res.Metrics.RatioCut
			}
			if res.Metrics.RatioCut > row.RCutWorst {
				row.RCutWorst = res.Metrics.RatioCut
			}
		}
		if row.RCutBest > 0 {
			row.RCutSpread = row.RCutWorst / row.RCutBest
		}
		rows[i] = row
	}
	return rows, nil
}

// FormatStability renders the stability comparison.
func FormatStability(rows []StabilityRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Stability: deterministic IG-Match vs single-start RCut across seeds")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Test\tIG-Match\tRCut best\tRCut worst\tworst/best\tIG distinct\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.2f\t%d\t\n",
			r.Name, ratioStr(r.IGMatch), ratioStr(r.RCutBest), ratioStr(r.RCutWorst),
			r.RCutSpread, r.DistinctIGs)
	}
	w.Flush()
	return b.String()
}

// ---------------------------------------------------------------------------
// A1 — IG edge-weight scheme ablation.

// WeightRow holds IG-Match results under each weighting scheme.
type WeightRow struct {
	Name    string
	Ratios  map[netmodel.WeightScheme]float64
	CutNets map[netmodel.WeightScheme]int
}

// weightSchemes lists the ablated schemes in display order.
var weightSchemes = []netmodel.WeightScheme{
	netmodel.SchemePaper, netmodel.SchemeUnit, netmodel.SchemeOverlap, netmodel.SchemeMinSize,
}

// WeightSchemeTable runs IG-Match under every IG weighting (the paper's
// Section 2.2 robustness claim: schemes give "extremely similar" results).
func (s Suite) WeightSchemeTable() ([]WeightRow, error) {
	s = s.withDefaults()
	cfgs, hs, err := s.circuits()
	if err != nil {
		return nil, err
	}
	rows := make([]WeightRow, len(hs))
	for i, h := range hs {
		row := WeightRow{
			Name:    cfgs[i].Name,
			Ratios:  map[netmodel.WeightScheme]float64{},
			CutNets: map[netmodel.WeightScheme]int{},
		}
		for _, scheme := range weightSchemes {
			res, err := core.Partition(h, core.Options{IG: netmodel.IGOptions{Scheme: scheme}})
			if err != nil {
				return nil, fmt.Errorf("bench: scheme %v on %s: %w", scheme, cfgs[i].Name, err)
			}
			row.Ratios[scheme] = res.Metrics.RatioCut
			row.CutNets[scheme] = res.Metrics.CutNets
		}
		rows[i] = row
	}
	return rows, nil
}

// FormatWeightSchemes renders the weighting ablation.
func FormatWeightSchemes(rows []WeightRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation A1: IG edge-weight schemes (ratio cut per scheme)")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprint(w, "Test\t")
	for _, scheme := range weightSchemes {
		fmt.Fprintf(w, "%v\t", scheme)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t", r.Name)
		for _, scheme := range weightSchemes {
			fmt.Fprintf(w, "%s\t", ratioStr(r.Ratios[scheme]))
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return b.String()
}

// ---------------------------------------------------------------------------
// A6 — net-model fragility: EIG1 depends on the flattening choice,
// IG-Match has no net model to choose.

// NetModelRow compares EIG1 under the clique and star net models against
// IG-Match on one benchmark.
type NetModelRow struct {
	Name       string
	EIG1Clique float64
	EIG1Star   float64
	IGMatch    float64
	// SpreadPct is |clique−star|/min — how much EIG1's result moves when
	// only the net model changes (Section 2.1's fragility).
	SpreadPct float64
}

// NetModelTable runs the fragility ablation over the suite.
func (s Suite) NetModelTable() ([]NetModelRow, error) {
	s = s.withDefaults()
	cfgs, hs, err := s.circuits()
	if err != nil {
		return nil, err
	}
	rows := make([]NetModelRow, len(hs))
	for i, h := range hs {
		clique, err := spectral.Partition(h, spectral.Options{})
		if err != nil {
			return nil, err
		}
		star, err := spectral.Partition(h, spectral.Options{Model: spectral.ModelStar})
		if err != nil {
			return nil, err
		}
		ig, err := core.Partition(h, core.Options{})
		if err != nil {
			return nil, err
		}
		row := NetModelRow{
			Name:       cfgs[i].Name,
			EIG1Clique: clique.Metrics.RatioCut,
			EIG1Star:   star.Metrics.RatioCut,
			IGMatch:    ig.Metrics.RatioCut,
		}
		lo, hi := row.EIG1Clique, row.EIG1Star
		if hi < lo {
			lo, hi = hi, lo
		}
		if lo > 0 {
			row.SpreadPct = (hi/lo - 1) * 100
		}
		rows[i] = row
	}
	return rows, nil
}

// FormatNetModel renders the fragility ablation.
func FormatNetModel(rows []NetModelRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation A6: net-model fragility (EIG1 clique vs star; IG-Match has no net model)")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Test\tEIG1/clique\tEIG1/star\tspread%\tIG-Match\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%.0f\t%s\t\n",
			r.Name, ratioStr(r.EIG1Clique), ratioStr(r.EIG1Star), r.SpreadPct, ratioStr(r.IGMatch))
	}
	w.Flush()
	return b.String()
}

// ---------------------------------------------------------------------------
// A2 — thresholding sparsification ablation.

// ThresholdRow holds IG-Match quality/size under net-size thresholds.
type ThresholdRow struct {
	Name       string
	Thresholds []int
	Ratios     []float64
	IGNonzeros []int
}

// ThresholdTable sweeps the IG construction threshold (0 = off).
func (s Suite) ThresholdTable(thresholds []int) ([]ThresholdRow, error) {
	s = s.withDefaults()
	if len(thresholds) == 0 {
		thresholds = []int{0, 16, 8, 4}
	}
	cfgs, hs, err := s.circuits()
	if err != nil {
		return nil, err
	}
	rows := make([]ThresholdRow, len(hs))
	for i, h := range hs {
		row := ThresholdRow{Name: cfgs[i].Name, Thresholds: thresholds}
		for _, th := range thresholds {
			opts := netmodel.IGOptions{Threshold: th}
			res, err := core.Partition(h, core.Options{IG: opts})
			if err != nil {
				return nil, fmt.Errorf("bench: threshold %d on %s: %w", th, cfgs[i].Name, err)
			}
			row.Ratios = append(row.Ratios, res.Metrics.RatioCut)
			row.IGNonzeros = append(row.IGNonzeros, netmodel.IntersectionGraph(h, opts).OffDiagNNZ())
		}
		rows[i] = row
	}
	return rows, nil
}

// FormatThreshold renders the thresholding ablation.
func FormatThreshold(rows []ThresholdRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Ablation A2: IG thresholding (ratio cut / IG nonzeros per threshold; 0 = off)")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	if len(rows) > 0 {
		fmt.Fprint(w, "Test\t")
		for _, th := range rows[0].Thresholds {
			fmt.Fprintf(w, "T=%d\t\t", th)
		}
		fmt.Fprintln(w)
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t", r.Name)
		for i := range r.Thresholds {
			fmt.Fprintf(w, "%s\t%d\t", ratioStr(r.Ratios[i]), r.IGNonzeros[i])
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return b.String()
}

// ---------------------------------------------------------------------------
// A3 — recursive completion extension.

// RecursiveRow compares bulk Phase II against the recursive completion.
type RecursiveRow struct {
	Name      string
	Plain     partition.Metrics
	Recursive partition.Metrics
	Recursed  bool
}

// RecursiveTable runs IG-Match with and without the recursive extension.
func (s Suite) RecursiveTable() ([]RecursiveRow, error) {
	s = s.withDefaults()
	cfgs, hs, err := s.circuits()
	if err != nil {
		return nil, err
	}
	rows := make([]RecursiveRow, len(hs))
	for i, h := range hs {
		plain, err := core.Partition(h, core.Options{})
		if err != nil {
			return nil, err
		}
		rec, err := core.Partition(h, core.Options{RecursionDepth: 2})
		if err != nil {
			return nil, err
		}
		rows[i] = RecursiveRow{
			Name:      cfgs[i].Name,
			Plain:     plain.Metrics,
			Recursive: rec.Metrics,
			Recursed:  rec.Recursed,
		}
	}
	return rows, nil
}

// FormatRecursive renders the recursion ablation.
func FormatRecursive(rows []RecursiveRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Extension A3: recursive IG-Match completion")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Test\tbulk ratio\trecursive ratio\timproved\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%v\t\n",
			r.Name, ratioStr(r.Plain.RatioCut), ratioStr(r.Recursive.RatioCut), r.Recursed)
	}
	w.Flush()
	return b.String()
}

// ---------------------------------------------------------------------------
// A4 — FM post-refinement extension.

// RefineRow compares each spectral method with its FM-polished variant.
type RefineRow struct {
	Name           string
	IGMatch        float64
	IGMatchFM      float64
	EIG1           float64
	EIG1FM         float64
	IGMatchFMDelta float64 // percent improvement of polish over pure
}

// RefineTable runs the spectral+FM pipelines.
func (s Suite) RefineTable() ([]RefineRow, error) {
	s = s.withDefaults()
	cfgs, hs, err := s.circuits()
	if err != nil {
		return nil, err
	}
	rows := make([]RefineRow, len(hs))
	for i, h := range hs {
		igr, err := refine.IGMatchFM(h, core.Options{}, fm.Options{})
		if err != nil {
			return nil, err
		}
		egr, err := refine.EIG1FM(h, spectral.Options{}, fm.Options{})
		if err != nil {
			return nil, err
		}
		rows[i] = RefineRow{
			Name:           cfgs[i].Name,
			IGMatch:        igr.Spectral.RatioCut,
			IGMatchFM:      igr.Refined.RatioCut,
			EIG1:           egr.Spectral.RatioCut,
			EIG1FM:         egr.Refined.RatioCut,
			IGMatchFMDelta: ImprovementPct(igr.Spectral.RatioCut, igr.Refined.RatioCut),
		}
	}
	return rows, nil
}

// FormatRefine renders the refinement ablation.
func FormatRefine(rows []RefineRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Extension A4: FM post-refinement of spectral outputs")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Test\tIG-Match\t+FM\tEIG1\t+FM\tIG gain%\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%.1f\t\n",
			r.Name, ratioStr(r.IGMatch), ratioStr(r.IGMatchFM),
			ratioStr(r.EIG1), ratioStr(r.EIG1FM), r.IGMatchFMDelta)
	}
	w.Flush()
	return b.String()
}

// ---------------------------------------------------------------------------
// A5 — clustering condensation extension.

// ClusterRow compares the direct IG-Match solve with the condensed flow.
type ClusterRow struct {
	Name          string
	Direct        partition.Metrics
	DirectTime    time.Duration
	Condensed     partition.Metrics
	CondensedTime time.Duration
	CoarseModules int
}

// ClusterTable runs both pipelines per benchmark.
func (s Suite) ClusterTable() ([]ClusterRow, error) {
	s = s.withDefaults()
	cfgs, hs, err := s.circuits()
	if err != nil {
		return nil, err
	}
	rows := make([]ClusterRow, len(hs))
	for i, h := range hs {
		t0 := time.Now()
		direct, err := core.Partition(h, core.Options{})
		if err != nil {
			return nil, err
		}
		dt := time.Since(t0)
		t0 = time.Now()
		cond, err := cluster.Partition(h, cluster.Options{})
		if err != nil {
			return nil, err
		}
		ct := time.Since(t0)
		rows[i] = ClusterRow{
			Name:          cfgs[i].Name,
			Direct:        direct.Metrics,
			DirectTime:    dt,
			Condensed:     cond.Metrics,
			CondensedTime: ct,
			CoarseModules: cond.CoarseModules,
		}
	}
	return rows, nil
}

// FormatCluster renders the condensation ablation.
func FormatCluster(rows []ClusterRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Extension A5: clustering condensation vs direct solve")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Test\tdirect\ttime\tcondensed\ttime\tcoarse n\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%v\t%s\t%v\t%d\t\n",
			r.Name, ratioStr(r.Direct.RatioCut), r.DirectTime.Round(time.Millisecond),
			ratioStr(r.Condensed.RatioCut), r.CondensedTime.Round(time.Millisecond),
			r.CoarseModules)
	}
	w.Flush()
	return b.String()
}

// ---------------------------------------------------------------------------
// Eigen convergence detail (supporting the X2 runtime discussion).

// LanczosDetail reports the IG Laplacian eigensolve parameters for one
// circuit.
type LanczosDetail struct {
	Name    string
	Nets    int
	Lambda2 float64
	Elapsed time.Duration
}

// LanczosTable measures the IG Fiedler solve per benchmark.
func (s Suite) LanczosTable() ([]LanczosDetail, error) {
	s = s.withDefaults()
	cfgs, hs, err := s.circuits()
	if err != nil {
		return nil, err
	}
	rows := make([]LanczosDetail, len(hs))
	for i, h := range hs {
		q := netmodel.IGLaplacian(h, netmodel.IGOptions{})
		t0 := time.Now()
		res, err := eigen.Fiedler(q, eigen.Options{})
		if err != nil {
			return nil, fmt.Errorf("bench: Fiedler on %s: %w", cfgs[i].Name, err)
		}
		rows[i] = LanczosDetail{
			Name:    cfgs[i].Name,
			Nets:    h.NumNets(),
			Lambda2: res.Lambda2,
			Elapsed: time.Since(t0),
		}
	}
	return rows, nil
}

// FormatLanczos renders the eigensolver detail.
func FormatLanczos(rows []LanczosDetail) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Eigensolver: IG Laplacian second eigenpair per benchmark")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Test\tnets\tlambda2\ttime\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%.4g\t%v\t\n", r.Name, r.Nets, r.Lambda2, r.Elapsed.Round(time.Millisecond))
	}
	w.Flush()
	return b.String()
}

// ---------------------------------------------------------------------------
// Multilevel V-cycle vs flat IG-Match — speed/quality tradeoff.

// MultilevelRow compares flat IG-Match against the multilevel V-cycle on
// one circuit, isolating the sweep stage (the O(m·(m+e)) part the V-cycle
// exists to shrink) from the end-to-end wall clock.
type MultilevelRow struct {
	Name         string
	Nets         int
	Flat         partition.Metrics
	FlatTime     time.Duration
	FlatSweep    time.Duration // flat run's sweep stage
	ML           partition.Metrics
	MLTime       time.Duration
	MLSweep      time.Duration // V-cycle's coarsest-level sweep stage
	Levels       int
	CoarsestNets int
	QualityPct   float64 // ratio-cut improvement of ML over flat (negative = worse)
	SweepSpeedup float64 // FlatSweep / MLSweep
}

// MultilevelTable runs both engines per benchmark with stage tracing and
// extracts the sweep-stage times from the span trees.
func (s Suite) MultilevelTable() ([]MultilevelRow, error) {
	s = s.withDefaults()
	cfgs, hs, err := s.circuits()
	if err != nil {
		return nil, err
	}
	sweepNS := func(root obs.Stage) time.Duration {
		if sw := root.Find("sweep"); sw != nil {
			return sw.Duration()
		}
		return 0
	}
	rows := make([]MultilevelRow, len(hs))
	for i, h := range hs {
		ftr := obs.NewTrace("flat")
		t0 := time.Now()
		flat, err := core.Partition(h, core.Options{Parallelism: s.Parallelism, Rec: ftr})
		ft := time.Since(t0)
		ftr.End()
		if err != nil {
			return nil, fmt.Errorf("bench: flat IG-Match on %s: %w", cfgs[i].Name, err)
		}
		mtr := obs.NewTrace("multilevel")
		t0 = time.Now()
		ml, err := multilevel.Partition(h, multilevel.Options{
			Levels: s.Levels,
			Core:   core.Options{Parallelism: s.Parallelism},
			Rec:    mtr,
		})
		mt := time.Since(t0)
		mtr.End()
		if err != nil {
			return nil, fmt.Errorf("bench: multilevel on %s: %w", cfgs[i].Name, err)
		}
		row := MultilevelRow{
			Name:         cfgs[i].Name,
			Nets:         h.NumNets(),
			Flat:         flat.Metrics,
			FlatTime:     ft,
			FlatSweep:    sweepNS(ftr.Finish()),
			ML:           ml.Metrics,
			MLTime:       mt,
			MLSweep:      sweepNS(mtr.Finish()),
			Levels:       ml.Levels,
			CoarsestNets: ml.CoarsestNets,
			QualityPct:   ImprovementPct(flat.Metrics.RatioCut, ml.Metrics.RatioCut),
		}
		if row.MLSweep > 0 {
			row.SweepSpeedup = float64(row.FlatSweep) / float64(row.MLSweep)
		}
		rows[i] = row
	}
	return rows, nil
}

// FormatMultilevel renders the V-cycle comparison.
func FormatMultilevel(rows []MultilevelRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Multilevel V-cycle vs flat IG-Match (sweep column isolates the coarsest-level sweep stage)")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Test\tnets\tflat\ttime\tsweep\tML\ttime\tsweep\tlv\tcoarse m\tsweep ×\tquality%\t")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%s\t%v\t%v\t%s\t%v\t%v\t%d\t%d\t%.1f\t%+.1f\t\n",
			r.Name, r.Nets,
			ratioStr(r.Flat.RatioCut), r.FlatTime.Round(time.Millisecond), r.FlatSweep.Round(time.Millisecond),
			ratioStr(r.ML.RatioCut), r.MLTime.Round(time.Millisecond), r.MLSweep.Round(time.Millisecond),
			r.Levels, r.CoarsestNets, r.SweepSpeedup, r.QualityPct)
	}
	w.Flush()
	return b.String()
}
