package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"igpart/internal/obs"
	"igpart/internal/partition"
)

// This file produces the machine-readable run report behind
// results/BENCH_<name>.json: every algorithm of interest run over the
// whole benchmark suite with full stage tracing, so the perf trajectory
// of the pipeline (and each of its stages) can be tracked across
// commits by diffing reports instead of eyeballing table text.

// DefaultReportAlgs is the algorithm set a run report covers unless the
// caller narrows it: the paper's comparison column plus IG-Match itself
// and its multilevel V-cycle variant.
func DefaultReportAlgs() []string {
	return []string{AlgIGMatch, AlgMultilevel, AlgIGVote, AlgEIG1, AlgRCut, AlgIGDiam}
}

// SuiteConfig is the JSON form of the Suite knobs a report ran under.
type SuiteConfig struct {
	Scale       float64 `json:"scale"`
	RCutStarts  int     `json:"rcut_starts"`
	Seed        int64   `json:"seed"`
	Parallelism int     `json:"parallelism"`
	Levels      int     `json:"levels,omitempty"`
}

// AlgRun is one algorithm's outcome on one circuit.
type AlgRun struct {
	Alg      string            `json:"alg"`
	Metrics  partition.Metrics `json:"metrics"`
	WallNS   int64             `json:"wall_ns"`
	RatioCut float64           `json:"ratio_cut"` // duplicated for flat queries
}

// CircuitReport is one benchmark circuit's slice of a run report. Stages
// holds the circuit's stage span subtree: one child per algorithm, and
// under the IG-Match child the full pipeline breakdown (ig-build,
// laplacian, eigensolve cycles, sweep shards).
type CircuitReport struct {
	Name    string    `json:"name"`
	Modules int       `json:"modules"`
	Nets    int       `json:"nets"`
	Pins    int       `json:"pins"`
	Runs    []AlgRun  `json:"runs"`
	Stages  obs.Stage `json:"stages"`
}

// RunReport is the top-level BENCH_<name>.json document.
type RunReport struct {
	Name       string              `json:"name"`
	CreatedAt  time.Time           `json:"created_at"`
	GoVersion  string              `json:"go_version"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	Suite      SuiteConfig         `json:"suite"`
	Algorithms []string            `json:"algorithms"`
	Circuits   []CircuitReport     `json:"circuits"`
	Metrics    obs.MetricsSnapshot `json:"metrics"`
	TotalNS    int64               `json:"total_ns"`
}

// Report runs each named algorithm (DefaultReportAlgs when algs is nil)
// on every circuit of the benchmark suite under a fresh Trace and
// assembles the run report with per-stage breakdowns.
func (s Suite) Report(name string, algs []string) (*RunReport, error) {
	s = s.withDefaults()
	if len(algs) == 0 {
		algs = DefaultReportAlgs()
	}
	cfgs, hs, err := s.circuits()
	if err != nil {
		return nil, err
	}
	tr := obs.NewTrace("bench:" + name)
	rep := &RunReport{
		Name:       name,
		CreatedAt:  time.Now().UTC(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Suite: SuiteConfig{
			Scale:       s.Scale,
			RCutStarts:  s.RCutStarts,
			Seed:        s.Seed,
			Parallelism: s.Parallelism,
			Levels:      s.Levels,
		},
		Algorithms: algs,
	}
	for i, h := range hs {
		csp := tr.StartSpan(cfgs[i].Name)
		cr := CircuitReport{
			Name:    cfgs[i].Name,
			Modules: h.NumModules(),
			Nets:    h.NumNets(),
			Pins:    h.NumPins(),
		}
		traced := s
		traced.Rec = csp
		for _, alg := range algs {
			met, wall, err := traced.Run(alg, h)
			if err != nil {
				return nil, fmt.Errorf("bench: report %s on %s: %w", alg, cr.Name, err)
			}
			cr.Runs = append(cr.Runs, AlgRun{
				Alg:      alg,
				Metrics:  met,
				WallNS:   int64(wall),
				RatioCut: met.RatioCut,
			})
		}
		csp.End()
		rep.Circuits = append(rep.Circuits, cr)
	}
	root := tr.Finish()
	for i := range rep.Circuits {
		rep.Circuits[i].Stages = root.Children[i]
	}
	rep.Metrics = tr.Metrics().Snapshot()
	rep.TotalNS = root.DurationNS
	return rep, nil
}

// WriteFile writes the report as <dir>/BENCH_<name>.json, creating the
// directory (and any parents) if missing — a fresh checkout or a wiped
// results/ must never fail the first write. It returns the path written.
func (r *RunReport) WriteFile(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("bench: creating report dir: %w", err)
	}
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("bench: encoding report: %w", err)
	}
	path := filepath.Join(dir, "BENCH_"+r.Name+".json")
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadReportFile loads a BENCH_<name>.json report from disk.
func ReadReportFile(path string) (*RunReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: reading baseline report: %w", err)
	}
	var r RunReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("bench: decoding %s: %w", path, err)
	}
	return &r, nil
}

// CompareReports diffs cur against a checked-in baseline under a relative
// tolerance on the ratio cut: a (circuit, algorithm) cell regresses when
// its current ratio cut exceeds baseline·(1+tol). Cells the baseline
// covers but the current report dropped also count as regressions
// (coverage loss must be deliberate, via a new baseline). Wall times are
// machine-dependent and deliberately not compared. The returned slice
// describes each regression; empty means the gate passes.
func CompareReports(baseline, cur *RunReport, tol float64) []string {
	current := make(map[[2]string]AlgRun)
	for _, c := range cur.Circuits {
		for _, run := range c.Runs {
			current[[2]string{c.Name, run.Alg}] = run
		}
	}
	var regressions []string
	for _, c := range baseline.Circuits {
		for _, base := range c.Runs {
			now, ok := current[[2]string{c.Name, base.Alg}]
			if !ok {
				regressions = append(regressions,
					fmt.Sprintf("%s/%s: present in baseline but missing from current report", c.Name, base.Alg))
				continue
			}
			limit := base.RatioCut * (1 + tol)
			if now.RatioCut > limit {
				regressions = append(regressions,
					fmt.Sprintf("%s/%s: ratio cut %.6g exceeds baseline %.6g by more than %.0f%% (limit %.6g)",
						c.Name, base.Alg, now.RatioCut, base.RatioCut, tol*100, limit))
			}
		}
	}
	return regressions
}
