package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"igpart/internal/obs"
	"igpart/internal/partition"
)

// This file produces the machine-readable run report behind
// results/BENCH_<name>.json: every algorithm of interest run over the
// whole benchmark suite with full stage tracing, so the perf trajectory
// of the pipeline (and each of its stages) can be tracked across
// commits by diffing reports instead of eyeballing table text.

// DefaultReportAlgs is the algorithm set a run report covers unless the
// caller narrows it: the paper's comparison column plus IG-Match itself.
func DefaultReportAlgs() []string {
	return []string{AlgIGMatch, AlgIGVote, AlgEIG1, AlgRCut, AlgIGDiam}
}

// SuiteConfig is the JSON form of the Suite knobs a report ran under.
type SuiteConfig struct {
	Scale       float64 `json:"scale"`
	RCutStarts  int     `json:"rcut_starts"`
	Seed        int64   `json:"seed"`
	Parallelism int     `json:"parallelism"`
}

// AlgRun is one algorithm's outcome on one circuit.
type AlgRun struct {
	Alg      string            `json:"alg"`
	Metrics  partition.Metrics `json:"metrics"`
	WallNS   int64             `json:"wall_ns"`
	RatioCut float64           `json:"ratio_cut"` // duplicated for flat queries
}

// CircuitReport is one benchmark circuit's slice of a run report. Stages
// holds the circuit's stage span subtree: one child per algorithm, and
// under the IG-Match child the full pipeline breakdown (ig-build,
// laplacian, eigensolve cycles, sweep shards).
type CircuitReport struct {
	Name    string    `json:"name"`
	Modules int       `json:"modules"`
	Nets    int       `json:"nets"`
	Pins    int       `json:"pins"`
	Runs    []AlgRun  `json:"runs"`
	Stages  obs.Stage `json:"stages"`
}

// RunReport is the top-level BENCH_<name>.json document.
type RunReport struct {
	Name       string              `json:"name"`
	CreatedAt  time.Time           `json:"created_at"`
	GoVersion  string              `json:"go_version"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	Suite      SuiteConfig         `json:"suite"`
	Algorithms []string            `json:"algorithms"`
	Circuits   []CircuitReport     `json:"circuits"`
	Metrics    obs.MetricsSnapshot `json:"metrics"`
	TotalNS    int64               `json:"total_ns"`
}

// Report runs each named algorithm (DefaultReportAlgs when algs is nil)
// on every circuit of the benchmark suite under a fresh Trace and
// assembles the run report with per-stage breakdowns.
func (s Suite) Report(name string, algs []string) (*RunReport, error) {
	s = s.withDefaults()
	if len(algs) == 0 {
		algs = DefaultReportAlgs()
	}
	cfgs, hs, err := s.circuits()
	if err != nil {
		return nil, err
	}
	tr := obs.NewTrace("bench:" + name)
	rep := &RunReport{
		Name:       name,
		CreatedAt:  time.Now().UTC(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Suite: SuiteConfig{
			Scale:       s.Scale,
			RCutStarts:  s.RCutStarts,
			Seed:        s.Seed,
			Parallelism: s.Parallelism,
		},
		Algorithms: algs,
	}
	for i, h := range hs {
		csp := tr.StartSpan(cfgs[i].Name)
		cr := CircuitReport{
			Name:    cfgs[i].Name,
			Modules: h.NumModules(),
			Nets:    h.NumNets(),
			Pins:    h.NumPins(),
		}
		traced := s
		traced.Rec = csp
		for _, alg := range algs {
			met, wall, err := traced.Run(alg, h)
			if err != nil {
				return nil, fmt.Errorf("bench: report %s on %s: %w", alg, cr.Name, err)
			}
			cr.Runs = append(cr.Runs, AlgRun{
				Alg:      alg,
				Metrics:  met,
				WallNS:   int64(wall),
				RatioCut: met.RatioCut,
			})
		}
		csp.End()
		rep.Circuits = append(rep.Circuits, cr)
	}
	root := tr.Finish()
	for i := range rep.Circuits {
		rep.Circuits[i].Stages = root.Children[i]
	}
	rep.Metrics = tr.Metrics().Snapshot()
	rep.TotalNS = root.DurationNS
	return rep, nil
}

// WriteFile writes the report as <dir>/BENCH_<name>.json, creating the
// directory (and any parents) if missing — a fresh checkout or a wiped
// results/ must never fail the first write. It returns the path written.
func (r *RunReport) WriteFile(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("bench: creating report dir: %w", err)
	}
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("bench: encoding report: %w", err)
	}
	path := filepath.Join(dir, "BENCH_"+r.Name+".json")
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
