package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"igpart/internal/core"
	"igpart/internal/partition"
)

// This file provides machine-readable CSV emitters for the harness
// results, so downstream plotting (gnuplot, pandas, spreadsheets) can
// regenerate the paper's figures from `cmd/experiments -csv`.

// WriteCompareCSV emits a Table 2/3-style comparison.
func WriteCompareCSV(w io.Writer, baseName, oursName string, rows []CompareRow) error {
	cw := csv.NewWriter(w)
	header := []string{
		"test", "elements",
		baseName + "_sizeU", baseName + "_sizeW", baseName + "_cut", baseName + "_ratio",
		oursName + "_sizeU", oursName + "_sizeW", oursName + "_cut", oursName + "_ratio",
		"improvement_pct",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Name, strconv.Itoa(r.Elements),
			strconv.Itoa(r.Base.SizeU), strconv.Itoa(r.Base.SizeW),
			strconv.Itoa(r.Base.CutNets), formatRatio(r.Base.RatioCut),
			strconv.Itoa(r.Ours.SizeU), strconv.Itoa(r.Ours.SizeW),
			strconv.Itoa(r.Ours.CutNets), formatRatio(r.Ours.RatioCut),
			strconv.FormatFloat(r.Improvement, 'f', 2, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCutStatsCSV emits Table 1 rows.
func WriteCutStatsCSV(w io.Writer, rows []partition.CutStatRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"net_size", "count", "cut"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{strconv.Itoa(r.NetSize), strconv.Itoa(r.Count), strconv.Itoa(r.Cut)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTraceCSV emits the per-split sweep records behind the Figure 2-style
// profile (rank, matching bound, completed cut, ratio).
func WriteTraceCSV(w io.Writer, trace []core.SplitRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rank", "matching", "cut", "ratio"}); err != nil {
		return err
	}
	for _, r := range trace {
		rec := []string{
			strconv.Itoa(r.Rank), strconv.Itoa(r.MatchingSize),
			strconv.Itoa(r.CutNets), formatRatio(r.RatioCut),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// formatRatio renders a ratio for CSV (plain float, "inf" for +Inf).
func formatRatio(r float64) string {
	if r > 1e300 {
		return "inf"
	}
	return strconv.FormatFloat(r, 'g', 8, 64)
}

// SweepTrace runs IG-Match on one named benchmark at the suite scale and
// returns the full split trace (the data behind examples/splitsweep).
func (s Suite) SweepTrace(benchName string) ([]core.SplitRecord, error) {
	s = s.withDefaults()
	cfgs, hs, err := s.circuits()
	if err != nil {
		return nil, err
	}
	for i, cfg := range cfgs {
		if cfg.Name != benchName {
			continue
		}
		var trace []core.SplitRecord
		if _, err := core.Partition(hs[i], core.Options{Trace: &trace}); err != nil {
			return nil, err
		}
		return trace, nil
	}
	return nil, fmt.Errorf("bench: unknown benchmark %q", benchName)
}

// WriteMultilevelCSV emits the V-cycle comparison rows.
func WriteMultilevelCSV(w io.Writer, rows []MultilevelRow) error {
	cw := csv.NewWriter(w)
	header := []string{
		"test", "nets", "flat_cut", "flat_ratio", "flat_ns", "flat_sweep_ns",
		"ml_cut", "ml_ratio", "ml_ns", "ml_sweep_ns",
		"levels", "coarsest_nets", "sweep_speedup", "quality_pct",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Name, strconv.Itoa(r.Nets),
			strconv.Itoa(r.Flat.CutNets), formatRatio(r.Flat.RatioCut),
			strconv.FormatInt(int64(r.FlatTime), 10), strconv.FormatInt(int64(r.FlatSweep), 10),
			strconv.Itoa(r.ML.CutNets), formatRatio(r.ML.RatioCut),
			strconv.FormatInt(int64(r.MLTime), 10), strconv.FormatInt(int64(r.MLSweep), 10),
			strconv.Itoa(r.Levels), strconv.Itoa(r.CoarsestNets),
			strconv.FormatFloat(r.SweepSpeedup, 'f', 2, 64),
			strconv.FormatFloat(r.QualityPct, 'f', 2, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
