package place

import (
	"math"
	"math/rand"
	"testing"

	"igpart/internal/hypergraph"
	"igpart/internal/netmodel"
)

// chain builds a netlist whose clique graph is a path: 2-pin nets joining
// consecutive modules.
func chain(n int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder()
	for i := 0; i < n-1; i++ {
		b.AddNet(i, i+1)
	}
	return b.Build()
}

func TestHall1DPathOrder(t *testing.T) {
	h := chain(30)
	p, lam, err := Hall1D(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The Fiedler vector of a path is monotone: the 1-D placement recovers
	// the chain order (up to reflection).
	asc, desc := true, true
	for i := 1; i < 30; i++ {
		if p.X[i] < p.X[i-1] {
			asc = false
		}
		if p.X[i] > p.X[i-1] {
			desc = false
		}
	}
	if !asc && !desc {
		t.Error("1-D placement does not order the chain")
	}
	// Hall's theorem: the objective value at the optimum equals λ₂.
	g := netmodel.CliqueGraph(h, 0)
	z := QuadraticWirelength(g, p)
	if math.Abs(z-lam) > 1e-6*(1+lam) {
		t.Errorf("z = %v, λ2 = %v (must be equal at the optimum)", z, lam)
	}
}

func TestHall1DBeatsRandomPlacement(t *testing.T) {
	h := chain(40)
	g := netmodel.CliqueGraph(h, 0)
	p, _, err := Hall1D(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	zSpectral := QuadraticWirelength(g, p)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		x := make([]float64, h.NumModules())
		norm := 0.0
		for i := range x {
			x[i] = rng.NormFloat64()
			norm += x[i] * x[i]
		}
		// Normalize and center like the spectral solution.
		mean := 0.0
		for _, v := range x {
			mean += v
		}
		mean /= float64(len(x))
		norm = 0
		for i := range x {
			x[i] -= mean
			norm += x[i] * x[i]
		}
		norm = math.Sqrt(norm)
		for i := range x {
			x[i] /= norm
		}
		if z := QuadraticWirelength(g, Placement{X: x}); z < zSpectral {
			t.Fatalf("random placement %v beat spectral optimum %v", z, zSpectral)
		}
	}
}

// grid builds a netlist whose clique graph is a g×g grid.
func grid(g int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder()
	id := func(r, c int) int { return r*g + c }
	for r := 0; r < g; r++ {
		for c := 0; c < g; c++ {
			if c+1 < g {
				b.AddNet(id(r, c), id(r, c+1))
			}
			if r+1 < g {
				b.AddNet(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

func TestHall2DGrid(t *testing.T) {
	g := 8
	h := grid(g)
	p, lams, err := Hall2D(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lams[0] <= 0 || lams[1] < lams[0]-1e-9 {
		t.Errorf("eigenvalues out of order: %v", lams)
	}
	// The 2-D embedding of a grid must spread corners apart: opposite
	// corners farther than adjacent modules on average.
	d := func(a, b int) float64 {
		return math.Hypot(p.X[a]-p.X[b], p.Y[a]-p.Y[b])
	}
	corner := d(0, g*g-1)
	adjacent := d(0, 1)
	if corner <= adjacent {
		t.Errorf("corner distance %v not larger than adjacent %v", corner, adjacent)
	}
}

func TestNetsAsPointsCentroid(t *testing.T) {
	h := chain(20)
	nets, modules, err := NetsAsPoints2D(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(nets.X) != h.NumNets() || len(modules.X) != h.NumModules() {
		t.Fatal("wrong placement sizes")
	}
	// Module 1 belongs to nets 0 and 1; it must sit at their midpoint.
	wantX := (nets.X[0] + nets.X[1]) / 2
	wantY := (nets.Y[0] + nets.Y[1]) / 2
	if math.Abs(modules.X[1]-wantX) > 1e-12 || math.Abs(modules.Y[1]-wantY) > 1e-12 {
		t.Errorf("module 1 not at centroid: (%v,%v) want (%v,%v)",
			modules.X[1], modules.Y[1], wantX, wantY)
	}
}

func TestHPWL(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddNet(0, 1, 2)
	b.AddNet(3) // singleton: no wirelength
	h := b.Build()
	p := Placement{X: []float64{0, 1, 3, 9}, Y: []float64{0, 2, 1, 9}}
	// Net 0: x span 3, y span 2 -> 5.
	if got := HPWL(h, p); math.Abs(got-5) > 1e-12 {
		t.Errorf("HPWL = %v, want 5", got)
	}
	one := Placement{X: []float64{0, 1, 3, 9}}
	if got := HPWL(h, one); math.Abs(got-3) > 1e-12 {
		t.Errorf("1-D HPWL = %v, want 3", got)
	}
}

func TestPlaceErrors(t *testing.T) {
	small := hypergraph.NewBuilder()
	small.AddNet(0)
	h := small.Build()
	if _, _, err := Hall1D(h, Options{}); err == nil {
		t.Error("Hall1D accepted 1 module")
	}
	if _, _, err := Hall2D(h, Options{}); err == nil {
		t.Error("Hall2D accepted 1 module")
	}
	if _, _, err := NetsAsPoints2D(h, Options{}); err == nil {
		t.Error("NetsAsPoints2D accepted 1 net")
	}
}
