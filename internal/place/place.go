// Package place implements the spectral placement formulations surrounding
// the paper: Hall's r-dimensional quadratic placement (Appendix A — the
// prototypical eigenvector formulation the partitioning work builds on),
// and the "nets-as-points" placement of Pillage–Rohrer cited in Section
// 2.2, which embeds the intersection graph and drops each module at the
// centroid of its nets.
package place

import (
	"errors"
	"math"

	"igpart/internal/eigen"
	"igpart/internal/hypergraph"
	"igpart/internal/netmodel"
	"igpart/internal/sparse"
)

// Placement holds coordinates for a set of points (modules or nets);
// Y is nil for one-dimensional placements.
type Placement struct {
	X []float64
	Y []float64
}

// Options tunes the underlying eigensolver.
type Options struct {
	Eigen eigen.Options
	// Threshold sparsifies the clique model (0 = off).
	Threshold int
}

// Hall1D computes Hall's one-dimensional quadratic placement of the
// modules: the second eigenvector of Q = D − A minimizes
// z = ½ Σ A_ij (x_i − x_j)² over unit-norm x orthogonal to the trivial
// constant solution, and z equals λ₂ at the optimum. Returns the placement
// and λ₂.
func Hall1D(h *hypergraph.Hypergraph, opts Options) (Placement, float64, error) {
	if h.NumModules() < 2 {
		return Placement{}, 0, errors.New("place: need at least 2 modules")
	}
	q := netmodel.ModuleLaplacian(h, opts.Threshold)
	res, err := eigen.Fiedler(q, opts.Eigen)
	if err != nil {
		return Placement{}, 0, err
	}
	return Placement{X: res.Vector}, res.Lambda2, nil
}

// Hall2D computes Hall's two-dimensional placement from eigenvectors 2 and
// 3 of the module Laplacian. Returns the placement and (λ₂, λ₃).
func Hall2D(h *hypergraph.Hypergraph, opts Options) (Placement, [2]float64, error) {
	if h.NumModules() < 3 {
		return Placement{}, [2]float64{}, errors.New("place: need at least 3 modules")
	}
	q := netmodel.ModuleLaplacian(h, opts.Threshold)
	vals, vecs, err := eigen.SmallestK(q, 3, opts.Eigen)
	if err != nil {
		return Placement{}, [2]float64{}, err
	}
	return Placement{X: vecs[1], Y: vecs[2]}, [2]float64{vals[1], vals[2]}, nil
}

// NetsAsPoints2D embeds the intersection graph in 2-D (eigenvectors 2 and
// 3 of Q') and places each module at the centroid of the nets containing
// it — the Pillage–Rohrer construction. Modules on no net are placed at
// the origin. It returns the net placement and the derived module
// placement.
func NetsAsPoints2D(h *hypergraph.Hypergraph, opts Options) (nets, modules Placement, err error) {
	if h.NumNets() < 3 {
		return Placement{}, Placement{}, errors.New("place: need at least 3 nets")
	}
	q := netmodel.IGLaplacian(h, netmodel.IGOptions{})
	_, vecs, err := eigen.SmallestK(q, 3, opts.Eigen)
	if err != nil {
		return Placement{}, Placement{}, err
	}
	nets = Placement{X: vecs[1], Y: vecs[2]}
	n := h.NumModules()
	modules = Placement{X: make([]float64, n), Y: make([]float64, n)}
	for v := 0; v < n; v++ {
		inc := h.Nets(v)
		if len(inc) == 0 {
			continue
		}
		var sx, sy float64
		for _, e := range inc {
			sx += nets.X[e]
			sy += nets.Y[e]
		}
		modules.X[v] = sx / float64(len(inc))
		modules.Y[v] = sy / float64(len(inc))
	}
	return nets, modules, nil
}

// QuadraticWirelength evaluates Hall's objective
// z = ½ Σ_ij A_ij ((x_i−x_j)² + (y_i−y_j)²) for a placement over the
// weighted graph a.
func QuadraticWirelength(a *sparse.SymCSR, p Placement) float64 {
	z := 0.0
	for i := 0; i < a.N(); i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if j <= i {
				continue
			}
			dx := p.X[i] - p.X[j]
			z += vals[k] * dx * dx
			if p.Y != nil {
				dy := p.Y[i] - p.Y[j]
				z += vals[k] * dy * dy
			}
		}
	}
	return z
}

// HPWL evaluates the half-perimeter wirelength of a module placement over
// the netlist: Σ over nets of (max−min x) + (max−min y).
func HPWL(h *hypergraph.Hypergraph, p Placement) float64 {
	total := 0.0
	for e := 0; e < h.NumNets(); e++ {
		pins := h.Pins(e)
		if len(pins) < 2 {
			continue
		}
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := 0.0, 0.0
		if p.Y != nil {
			minY, maxY = math.Inf(1), math.Inf(-1)
		}
		for _, v := range pins {
			if p.X[v] < minX {
				minX = p.X[v]
			}
			if p.X[v] > maxX {
				maxX = p.X[v]
			}
			if p.Y != nil {
				if p.Y[v] < minY {
					minY = p.Y[v]
				}
				if p.Y[v] > maxY {
					maxY = p.Y[v]
				}
			}
		}
		total += maxX - minX
		if p.Y != nil {
			total += maxY - minY
		}
	}
	return total
}
