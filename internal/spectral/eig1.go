// Package spectral implements EIG1, the Hagen–Kahng ratio-cut heuristic the
// paper builds on: sort the Fiedler vector of the clique-model Laplacian
// Q = D − A over modules, then return the best ratio-cut split of the
// resulting module ordering. It is the strongest pre-intersection-graph
// spectral baseline, and the paper reports IG-Match improving on it by an
// average of 22%.
package spectral

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"igpart/internal/eigen"
	"igpart/internal/hypergraph"
	"igpart/internal/netmodel"
	"igpart/internal/partition"
	"igpart/internal/sparse"
)

// NetModel selects how the hypergraph is flattened to a graph before the
// eigensolve — the choice Section 2.1 calls fragile (and which the
// intersection-graph methods avoid entirely).
type NetModel int

const (
	// ModelClique is the standard weighted clique model (1/(k−1) per pair).
	ModelClique NetModel = iota
	// ModelStar adds one virtual center vertex per net with unit spokes;
	// the Fiedler components of the real modules drive the ordering.
	ModelStar
)

// String implements fmt.Stringer.
func (m NetModel) String() string {
	if m == ModelStar {
		return "star"
	}
	return "clique"
}

// Options configures an EIG1 run.
type Options struct {
	// Threshold, when positive, drops nets larger than Threshold pins from
	// the net model (classical sparsification).
	Threshold int
	// Model selects the net model (default ModelClique).
	Model NetModel
	// Eigen tunes the Lanczos solver.
	Eigen eigen.Options
}

// Result is the outcome of an EIG1 run.
type Result struct {
	Partition *partition.Bipartition
	Metrics   partition.Metrics
	// ModuleOrder is the eigenvector-sorted module ordering.
	ModuleOrder []int
	// Lambda2 is the second-smallest eigenvalue of Q; λ2/n lower-bounds the
	// optimal graph ratio cut (Theorem 1).
	Lambda2 float64
	// BestRank is the split position in ModuleOrder of the best partition.
	BestRank int
}

// Partition runs EIG1 on the netlist h.
func Partition(h *hypergraph.Hypergraph, opts Options) (Result, error) {
	n := h.NumModules()
	if n < 2 {
		return Result{}, errors.New("spectral: need at least 2 modules")
	}
	var q *sparse.SymCSR
	if opts.Model == ModelStar {
		q = sparse.Laplacian(netmodel.StarGraph(h, opts.Threshold))
	} else {
		q = netmodel.ModuleLaplacian(h, opts.Threshold)
	}
	fied, err := eigen.Fiedler(q, opts.Eigen)
	if err != nil {
		return Result{}, fmt.Errorf("spectral: eigensolve failed: %w", err)
	}
	// Under the star model the vector covers modules plus virtual centers;
	// only the module components drive the ordering.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return fied.Vector[order[a]] < fied.Vector[order[b]]
	})
	p, met, rank := BestSplit(h, order)
	if p == nil {
		return Result{}, errors.New("spectral: no proper split found")
	}
	return Result{
		Partition:   p,
		Metrics:     met,
		ModuleOrder: order,
		Lambda2:     fied.Lambda2,
		BestRank:    rank,
	}, nil
}

// BestSplit scans all n−1 prefix splits of the module ordering and returns
// the partition with minimum ratio cut, evaluated incrementally in O(pins)
// total. Ties break toward the earlier rank.
func BestSplit(h *hypergraph.Hypergraph, order []int) (*partition.Bipartition, partition.Metrics, int) {
	n := len(order)
	// Start with everything on W; move modules to U in order.
	p := partition.New(n)
	for v := 0; v < n; v++ {
		p.Set(v, partition.W)
	}
	c := partition.NewCounter(h, p)
	bestRatio := math.Inf(1)
	bestRank := -1
	bestCut := 0
	for r := 1; r < n; r++ {
		c.Move(order[r-1]) // module joins U
		ratio := partition.RatioCutFrom(c.Cut(), r, n-r)
		if ratio < bestRatio {
			bestRatio = ratio
			bestRank = r
			bestCut = c.Cut()
		}
	}
	if bestRank < 0 {
		return nil, partition.Metrics{}, -1
	}
	best := partition.FromOrderSplit(order, bestRank)
	return best, partition.Metrics{
		CutNets:  bestCut,
		SizeU:    bestRank,
		SizeW:    n - bestRank,
		RatioCut: bestRatio,
	}, bestRank
}
