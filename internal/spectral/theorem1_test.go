package spectral

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"igpart/internal/eigen"
	"igpart/internal/hypergraph"
	"igpart/internal/netmodel"
	"igpart/internal/sparse"
)

// weightedCut returns the weighted edge cut of the graph under the side
// mask.
func weightedCut(g *sparse.SymCSR, inU uint32) float64 {
	cut := 0.0
	for i := 0; i < g.N(); i++ {
		cols, vals := g.Row(i)
		for k, j := range cols {
			if j > i && (inU>>uint(i))&1 != (inU>>uint(j))&1 {
				cut += vals[k]
			}
		}
	}
	return cut
}

// TestTheorem1LowerBound exhaustively verifies the Hagen–Kahng bound: the
// optimal graph ratio cut of G is at least λ2(Q)/n, for the clique-model
// graphs of random small netlists.
func TestTheorem1LowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8) // brute force over 2^n subsets
		b := hypergraph.NewBuilder()
		b.SetNumModules(n)
		for e := 0; e < 2*n; e++ {
			k := 2 + rng.Intn(3)
			pins := make([]int, k)
			for i := range pins {
				pins[i] = rng.Intn(n)
			}
			b.AddNet(pins...)
		}
		h := b.Build()
		g := netmodel.CliqueGraph(h, 0)
		q := sparse.Laplacian(g)
		vals, _, err := eigen.Jacobi(sparse.FromCSR(q), 0)
		if err != nil {
			return false
		}
		lambda2 := vals[1]

		best := math.Inf(1)
		for mask := uint32(1); mask < 1<<uint(n-1); mask++ { // fix vertex n-1 in W
			sizeU := 0
			for i := 0; i < n; i++ {
				if (mask>>uint(i))&1 == 1 {
					sizeU++
				}
			}
			if sizeU == 0 || sizeU == n {
				continue
			}
			ratio := weightedCut(g, mask) / (float64(sizeU) * float64(n-sizeU))
			if ratio < best {
				best = ratio
			}
		}
		return best >= lambda2/float64(n)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestTheorem1BoundIsUseful checks the bound is not vacuous: on a circuit
// with a planted cheap cut, λ2/n is positive yet below the heuristic cost.
func TestTheorem1BoundIsUseful(t *testing.T) {
	h := clustered(15, 1, 3)
	q := netmodel.ModuleLaplacian(h, 0)
	res, err := eigen.Fiedler(q, eigen.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda2 <= 0 {
		t.Fatalf("λ2 = %v, want > 0 on a connected circuit", res.Lambda2)
	}
	sp, err := Partition(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bound := res.Lambda2 / float64(h.NumModules())
	// The heuristic's *graph* ratio cut upper-bounds the optimum, which the
	// theorem lower-bounds; the net-cut metric reported by Partition is not
	// directly comparable, so compare against the graph cut of its split.
	g := netmodel.CliqueGraph(h, 0)
	cut := 0.0
	for i := 0; i < g.N(); i++ {
		cols, vals := g.Row(i)
		for k, j := range cols {
			if j > i && sp.Partition.Side(i) != sp.Partition.Side(j) {
				cut += vals[k]
			}
		}
	}
	ratio := cut / (float64(sp.Metrics.SizeU) * float64(sp.Metrics.SizeW))
	if ratio < bound-1e-9 {
		t.Errorf("heuristic graph ratio %v below the λ2/n bound %v", ratio, bound)
	}
}
