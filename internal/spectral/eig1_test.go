package spectral

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"igpart/internal/hypergraph"
	"igpart/internal/partition"
)

func clustered(k, bridges int, seed int64) *hypergraph.Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	b := hypergraph.NewBuilder()
	b.SetNumModules(2 * k)
	for c := 0; c < 2; c++ {
		base := c * k
		for i := 0; i < k-1; i++ {
			b.AddNet(base+i, base+i+1)
		}
		for e := 0; e < 2*k; e++ {
			b.AddNet(base+rng.Intn(k), base+rng.Intn(k), base+rng.Intn(k))
		}
	}
	for i := 0; i < bridges; i++ {
		b.AddNet(rng.Intn(k), k+rng.Intn(k))
	}
	return b.Build()
}

func TestEIG1FindsPlantedCut(t *testing.T) {
	h := clustered(30, 1, 4)
	res, err := Partition(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.SizeU == 0 || res.Metrics.SizeW == 0 {
		t.Fatal("improper partition")
	}
	if res.Metrics.CutNets > 3 {
		t.Errorf("cut = %d, want near 1", res.Metrics.CutNets)
	}
	if got := partition.Evaluate(h, res.Partition); got != res.Metrics {
		t.Errorf("metrics mismatch: reported %+v, evaluated %+v", res.Metrics, got)
	}
	if res.Lambda2 < 0 {
		t.Errorf("λ2 = %v", res.Lambda2)
	}
	if len(res.ModuleOrder) != h.NumModules() {
		t.Errorf("order length %d", len(res.ModuleOrder))
	}
}

func TestBestSplitIncrementalMatchesDirect(t *testing.T) {
	// The incremental sweep must agree with brute-force evaluation of every
	// split.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		b := hypergraph.NewBuilder()
		b.SetNumModules(n)
		for e := 0; e < 2*n; e++ {
			k := 2 + rng.Intn(3)
			pins := make([]int, k)
			for i := range pins {
				pins[i] = rng.Intn(n)
			}
			b.AddNet(pins...)
		}
		h := b.Build()
		order := rng.Perm(n)
		_, met, rank := BestSplit(h, order)

		bestRatio := math.Inf(1)
		bestRank := -1
		for r := 1; r < n; r++ {
			p := partition.FromOrderSplit(order, r)
			ratio := partition.RatioCut(h, p)
			if ratio < bestRatio {
				bestRatio = ratio
				bestRank = r
			}
		}
		return rank == bestRank && math.Abs(met.RatioCut-bestRatio) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEIG1Deterministic(t *testing.T) {
	h := clustered(20, 2, 8)
	a, err := Partition(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics != b.Metrics {
		t.Errorf("nondeterministic: %+v vs %+v", a.Metrics, b.Metrics)
	}
}

func TestEIG1Threshold(t *testing.T) {
	h := clustered(20, 1, 6)
	res, err := Partition(h, Options{Threshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.SizeU == 0 || res.Metrics.SizeW == 0 {
		t.Error("improper partition under thresholding")
	}
}

func TestEIG1StarModel(t *testing.T) {
	h := clustered(20, 1, 6)
	res, err := Partition(h, Options{Model: ModelStar})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.SizeU == 0 || res.Metrics.SizeW == 0 {
		t.Fatal("improper partition")
	}
	// The star model should still find the planted cut on a clean circuit.
	if res.Metrics.CutNets > 3 {
		t.Errorf("star-model cut = %d, want near 1", res.Metrics.CutNets)
	}
	if got := partition.Evaluate(h, res.Partition); got != res.Metrics {
		t.Errorf("metrics mismatch: %+v vs %+v", got, res.Metrics)
	}
	if ModelStar.String() != "star" || ModelClique.String() != "clique" {
		t.Error("NetModel.String broken")
	}
}

func TestEIG1TooSmall(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.SetNumModules(1)
	if _, err := Partition(b.Build(), Options{}); err == nil {
		t.Error("accepted single module")
	}
}
