// Package igdiam implements a diameter-based intersection-graph bisection
// heuristic in the spirit of Kahng's "Fast Hypergraph Partition" (DAC
// 1989), which the paper cites as the earliest partitioning use of the
// intersection graph: two nets realizing an (approximate) diameter of G'
// anchor the two sides; every net joins the side of the nearer anchor, and
// modules follow the majority of their nets. All threshold shifts of the
// distance-difference ordering are evaluated and the best ratio cut wins.
package igdiam

import (
	"errors"
	"math"
	"sort"

	"igpart/internal/core"
	"igpart/internal/hypergraph"
	"igpart/internal/partition"
)

// Result is the outcome of a diameter-heuristic run.
type Result struct {
	Partition *partition.Bipartition
	Metrics   partition.Metrics
	// AnchorA and AnchorB are the approximate diameter endpoints (nets).
	AnchorA, AnchorB int
	// Eccentricity is the distance between the anchors in G'.
	Eccentricity int
}

// Partition runs the diameter heuristic on h.
func Partition(h *hypergraph.Hypergraph) (Result, error) {
	m := h.NumNets()
	if m < 2 || h.NumModules() < 2 {
		return Result{}, errors.New("igdiam: need at least 2 nets and 2 modules")
	}
	adj := core.IGAdjacency(h)

	// Double BFS: from net 0 to its farthest net a, then from a to b.
	distFrom := func(src int) []int {
		dist := make([]int, m)
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		for qi := 0; qi < len(queue); qi++ {
			x := queue[qi]
			for _, y := range adj[x] {
				if dist[y] < 0 {
					dist[y] = dist[x] + 1
					queue = append(queue, y)
				}
			}
		}
		return dist
	}
	// farthest prefers unreachable nets (distance −1 means a different IG
	// component — infinitely far), so the anchors straddle components when
	// the intersection graph is disconnected.
	farthest := func(dist []int) int {
		best, bestD := 0, -1
		for i, d := range dist {
			if d < 0 {
				return i
			}
			if d > bestD {
				best, bestD = i, d
			}
		}
		return best
	}
	a := farthest(distFrom(0))
	distA := distFrom(a)
	b := farthest(distA)
	distB := distFrom(b)

	// Score nets by distance difference; unreachable nets sort to the
	// A side (they are disconnected from both anchors anyway).
	type scored struct {
		net   int
		score int
	}
	reach := func(d int) int {
		if d < 0 {
			return m + 1 // effectively infinite
		}
		return d
	}
	order := make([]scored, m)
	for e := 0; e < m; e++ {
		order[e] = scored{net: e, score: reach(distA[e]) - reach(distB[e])}
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].score < order[j].score })

	// Sweep every threshold of the ordering; modules follow the majority
	// of their incident nets (ties and netless modules go to side U).
	sideOfNet := make([]partition.Side, m)
	for i := range sideOfNet {
		sideOfNet[i] = partition.W // everything starts on the B side
	}
	bestRatio := math.Inf(1)
	var bestSides []partition.Side
	var bestMet partition.Metrics
	sides := make([]partition.Side, h.NumModules())
	for t := 0; t < m-1; t++ {
		sideOfNet[order[t].net] = partition.U
		if order[t+1].score == order[t].score {
			continue // only evaluate at score boundaries
		}
		met, ok := completeMajority(h, sideOfNet, sides)
		if ok && met.RatioCut < bestRatio {
			bestRatio = met.RatioCut
			bestMet = met
			bestSides = append(bestSides[:0], sides...)
		}
	}
	// Also the final boundary (all but the last net on U).
	met, ok := completeMajority(h, sideOfNet, sides)
	if ok && met.RatioCut < bestRatio {
		bestMet = met
		bestSides = append(bestSides[:0], sides...)
	}
	if bestSides == nil {
		return Result{}, errors.New("igdiam: no proper completion found")
	}
	return Result{
		Partition:    partition.FromSides(bestSides),
		Metrics:      bestMet,
		AnchorA:      a,
		AnchorB:      b,
		Eccentricity: maxInt(distA[b], 0),
	}, nil
}

// completeMajority assigns each module to the side holding the majority of
// its nets and evaluates the result.
func completeMajority(h *hypergraph.Hypergraph, sideOfNet []partition.Side, sides []partition.Side) (partition.Metrics, bool) {
	for v := 0; v < h.NumModules(); v++ {
		onU := 0
		for _, e := range h.Nets(v) {
			if sideOfNet[e] == partition.U {
				onU++
			}
		}
		if 2*onU >= h.Degree(v) {
			sides[v] = partition.U
		} else {
			sides[v] = partition.W
		}
	}
	p := partition.FromSides(sides)
	met := partition.Evaluate(h, p)
	if met.SizeU == 0 || met.SizeW == 0 {
		return partition.Metrics{}, false
	}
	return met, true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
