package igdiam

import (
	"math/rand"
	"testing"
	"testing/quick"

	"igpart/internal/hypergraph"
	"igpart/internal/partition"
)

func clustered(k, bridges int, seed int64) *hypergraph.Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	b := hypergraph.NewBuilder()
	b.SetNumModules(2 * k)
	for c := 0; c < 2; c++ {
		base := c * k
		for i := 0; i < k-1; i++ {
			b.AddNet(base+i, base+i+1)
		}
		for e := 0; e < 2*k; e++ {
			b.AddNet(base+rng.Intn(k), base+rng.Intn(k), base+rng.Intn(k))
		}
	}
	for i := 0; i < bridges; i++ {
		b.AddNet(rng.Intn(k), k+rng.Intn(k))
	}
	return b.Build()
}

func TestDiameterFindsPlantedCut(t *testing.T) {
	h := clustered(25, 1, 3)
	res, err := Partition(h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.SizeU == 0 || res.Metrics.SizeW == 0 {
		t.Fatal("improper partition")
	}
	// On a cleanly clustered circuit the diameter endpoints land in
	// opposite clusters and the heuristic finds a near-optimal cut.
	if res.Metrics.CutNets > 5 {
		t.Errorf("cut = %d, want near 1", res.Metrics.CutNets)
	}
	if res.AnchorA == res.AnchorB {
		t.Error("anchors coincide")
	}
	if res.Eccentricity < 2 {
		t.Errorf("eccentricity = %d, want a real diameter", res.Eccentricity)
	}
}

func TestMetricsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(25)
		b := hypergraph.NewBuilder()
		b.SetNumModules(n)
		for e := 0; e < 2*n; e++ {
			k := 2 + rng.Intn(3)
			pins := make([]int, k)
			for i := range pins {
				pins[i] = rng.Intn(n)
			}
			b.AddNet(pins...)
		}
		h := b.Build()
		res, err := Partition(h)
		if err != nil {
			return true // degenerate instance
		}
		return partition.Evaluate(h, res.Partition) == res.Metrics
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDeterministic(t *testing.T) {
	h := clustered(12, 2, 5)
	a, err := Partition(h)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(h)
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics != b.Metrics || a.AnchorA != b.AnchorA {
		t.Error("nondeterministic")
	}
}

func TestDisconnectedIG(t *testing.T) {
	// Two netlists glued only by module adjacency within nets of separate
	// components: the IG is disconnected; unreachable nets must be handled.
	b := hypergraph.NewBuilder()
	b.AddNet(0, 1)
	b.AddNet(1, 2)
	b.AddNet(3, 4)
	b.AddNet(4, 5)
	h := b.Build()
	res, err := Partition(h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.CutNets != 0 {
		t.Errorf("cut = %d, want 0 for disconnected circuit", res.Metrics.CutNets)
	}
}

func TestTooSmall(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddNet(0, 1)
	if _, err := Partition(b.Build()); err == nil {
		t.Error("accepted single-net circuit")
	}
}
