package igvote

import (
	"math/rand"
	"testing"
	"testing/quick"

	"igpart/internal/hypergraph"
	"igpart/internal/partition"
)

func clustered(k, bridges int, seed int64) *hypergraph.Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	b := hypergraph.NewBuilder()
	b.SetNumModules(2 * k)
	for c := 0; c < 2; c++ {
		base := c * k
		for i := 0; i < k-1; i++ {
			b.AddNet(base+i, base+i+1)
		}
		for e := 0; e < 2*k; e++ {
			b.AddNet(base+rng.Intn(k), base+rng.Intn(k), base+rng.Intn(k))
		}
	}
	for i := 0; i < bridges; i++ {
		b.AddNet(rng.Intn(k), k+rng.Intn(k))
	}
	return b.Build()
}

func TestIGVoteFindsPlantedCut(t *testing.T) {
	h := clustered(25, 1, 13)
	res, err := Partition(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.SizeU == 0 || res.Metrics.SizeW == 0 {
		t.Fatal("improper partition")
	}
	if res.Metrics.CutNets > 4 {
		t.Errorf("cut = %d, want near 1", res.Metrics.CutNets)
	}
	if got := partition.Evaluate(h, res.Partition); got != res.Metrics {
		t.Errorf("metrics mismatch: reported %+v, evaluated %+v", res.Metrics, got)
	}
}

func TestSweepMetricsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		b := hypergraph.NewBuilder()
		b.SetNumModules(n)
		m := 3 + rng.Intn(25)
		for e := 0; e < m; e++ {
			k := 2 + rng.Intn(3)
			pins := make([]int, k)
			for i := range pins {
				pins[i] = rng.Intn(n)
			}
			b.AddNet(pins...)
		}
		h := b.Build()
		order := rng.Perm(h.NumNets())
		p, met := Sweep(h, order, 0.5)
		if p == nil {
			return true // no proper snapshot; acceptable
		}
		return partition.Evaluate(h, p) == met
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSweepMonotoneMigration(t *testing.T) {
	// After the full sweep every module with positive net weight has seen
	// all its weight move, so all such modules end on W.
	h := clustered(10, 2, 3)
	order := make([]int, h.NumNets())
	for i := range order {
		order[i] = i
	}
	n := h.NumModules()
	w := make([]float64, n)
	z := make([]float64, n)
	p := partition.New(n)
	for e := 0; e < h.NumNets(); e++ {
		vote := 1 / float64(h.NetSize(e))
		for _, v := range h.Pins(e) {
			w[v] += vote
		}
	}
	for _, e := range order {
		vote := 1 / float64(h.NetSize(e))
		for _, v := range h.Pins(e) {
			z[v] += vote
			if p.Side(v) == partition.U && z[v] >= 0.5*w[v] {
				p.Set(v, partition.W)
			}
		}
	}
	for v := 0; v < n; v++ {
		if w[v] > 0 && p.Side(v) != partition.W {
			t.Fatalf("module %d did not migrate after full sweep", v)
		}
	}
}

func TestIGVoteDeterministic(t *testing.T) {
	h := clustered(15, 2, 5)
	a, err := Partition(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics != b.Metrics || a.Forward != b.Forward {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestIGVoteErrors(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddNet(0, 1)
	if _, err := Partition(b.Build(), Options{}); err == nil {
		t.Error("accepted single-net netlist")
	}
}

func TestCustomThreshold(t *testing.T) {
	h := clustered(12, 2, 21)
	lo, err := Partition(h, Options{MoveThreshold: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Partition(h, Options{MoveThreshold: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	// Different thresholds may legitimately give different partitions; both
	// must be proper.
	for _, r := range []Result{lo, hi} {
		if r.Metrics.SizeU == 0 || r.Metrics.SizeW == 0 {
			t.Error("improper partition")
		}
	}
}
