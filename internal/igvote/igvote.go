// Package igvote implements IG-Vote (the EIG1-IG algorithm of Hagen–Kahng,
// Appendix B of the paper): modules migrate between partitions when enough
// of their incident net weight — each net voting 1/|s| on its modules — has
// crossed, as nets are shifted one by one in intersection-graph eigenvector
// order. Both sweep directions are tried and the best ratio cut over all
// intermediate partitions is returned. IG-Match improves on IG-Vote by an
// average of 7% in the paper (Table 3).
package igvote

import (
	"errors"
	"fmt"
	"math"

	"igpart/internal/core"
	"igpart/internal/eigen"
	"igpart/internal/hypergraph"
	"igpart/internal/netmodel"
	"igpart/internal/partition"
)

// Options configures an IG-Vote run.
type Options struct {
	// IG configures intersection-graph construction.
	IG netmodel.IGOptions
	// Eigen tunes the Lanczos solver.
	Eigen eigen.Options
	// MoveThreshold is the fraction of a module's total net weight that
	// must shift before the module follows (the paper uses 1/2).
	// Default 0.5.
	MoveThreshold float64
}

// Result is the outcome of an IG-Vote run.
type Result struct {
	Partition *partition.Bipartition
	Metrics   partition.Metrics
	// NetOrder is the eigenvector-sorted net ordering.
	NetOrder []int
	// Lambda2 is the second-smallest eigenvalue of Q'(G').
	Lambda2 float64
	// Forward reports whether the winning partition came from the forward
	// sweep (nets moved in ascending eigenvector order) or the backward one.
	Forward bool
}

// Partition runs IG-Vote on the netlist h.
func Partition(h *hypergraph.Hypergraph, opts Options) (Result, error) {
	if h.NumNets() < 2 || h.NumModules() < 2 {
		return Result{}, errors.New("igvote: need at least 2 nets and 2 modules")
	}
	if opts.MoveThreshold <= 0 {
		opts.MoveThreshold = 0.5
	}
	q := netmodel.IGLaplacian(h, opts.IG)
	fied, err := eigen.Fiedler(q, opts.Eigen)
	if err != nil {
		return Result{}, fmt.Errorf("igvote: eigensolve failed: %w", err)
	}
	order := core.SortNetsByVector(fied.Vector)

	fwdP, fwdM := Sweep(h, order, opts.MoveThreshold)
	rev := make([]int, len(order))
	for i, e := range order {
		rev[len(order)-1-i] = e
	}
	bwdP, bwdM := Sweep(h, rev, opts.MoveThreshold)

	res := Result{NetOrder: order, Lambda2: fied.Lambda2}
	switch {
	case fwdP == nil && bwdP == nil:
		return Result{}, errors.New("igvote: no proper partition found in either sweep")
	case bwdP == nil || (fwdP != nil && fwdM.RatioCut <= bwdM.RatioCut):
		res.Partition, res.Metrics, res.Forward = fwdP, fwdM, true
	default:
		res.Partition, res.Metrics = bwdP, bwdM
	}
	return res, nil
}

// Sweep performs one direction of the IG-Vote pass: all modules start on
// side U; nets are shifted to W in the given order, each adding 1/|s| vote
// weight to its modules; a module crosses when its accumulated weight
// reaches threshold·(total weight). The best ratio-cut snapshot over all
// net shifts is returned (nil if every snapshot had an empty side).
func Sweep(h *hypergraph.Hypergraph, order []int, threshold float64) (*partition.Bipartition, partition.Metrics) {
	n := h.NumModules()
	w := make([]float64, n) // total incident net weight per module
	for e := 0; e < h.NumNets(); e++ {
		vote := 1 / float64(h.NetSize(e))
		for _, v := range h.Pins(e) {
			w[v] += vote
		}
	}
	z := make([]float64, n) // moved net weight per module
	p := partition.New(n)   // all on U
	c := partition.NewCounter(h, p)

	bestRatio := math.Inf(1)
	var bestSides []partition.Side
	var bestMet partition.Metrics
	onW := 0
	for _, e := range order {
		if h.NetSize(e) == 0 {
			continue
		}
		vote := 1 / float64(h.NetSize(e))
		for _, v := range h.Pins(e) {
			z[v] += vote
			if p.Side(v) == partition.U && z[v] >= threshold*w[v] {
				c.Move(v)
				onW++
			}
		}
		if onW == 0 || onW == n {
			continue
		}
		ratio := partition.RatioCutFrom(c.Cut(), n-onW, onW)
		if ratio < bestRatio {
			bestRatio = ratio
			bestSides = append(bestSides[:0], p.Sides()...)
			bestMet = partition.Metrics{
				CutNets:  c.Cut(),
				SizeU:    n - onW,
				SizeW:    onW,
				RatioCut: ratio,
			}
		}
	}
	if bestSides == nil {
		return nil, partition.Metrics{}
	}
	return partition.FromSides(bestSides), bestMet
}
