// Package netgen generates synthetic benchmark circuits standing in for
// the MCNC Primary/Test suite and the industry examples the paper
// evaluates on (those netlists are not redistributable, and this module is
// offline).
//
// The generator reproduces the structural properties the paper's argument
// rests on:
//
//   - Hierarchical organization. Modules are arranged in a recursive
//     cluster tree mirroring a designer's functional decomposition; each
//     net is anchored at a tree node chosen by descending from the root
//     with probability Locality per level, then connects modules sampled
//     from that node's span. Most nets are deep (local), a thin tail spans
//     high levels — exactly the "natural" structure that gives spectral
//     ratio-cut methods their advantage and makes net-cut probability
//     non-monotone in net size (Table 1's observation).
//   - Empirical net-size distribution. Sizes are drawn from the published
//     Table 1 histogram of the MCNC Primary2 netlist (dominated by 2–3 pin
//     nets, long tail to 37 pins), so intersection-graph sparsity behaves
//     as in the paper.
//   - Benchmark scale. Config presets match the module and net counts of
//     each circuit in Tables 2–3.
package netgen

import (
	"fmt"
	"math/rand"
	"sort"

	"igpart/internal/hypergraph"
)

// SizeBucket is one entry of a net-size histogram.
type SizeBucket struct {
	Size  int
	Count int
}

// Primary2SizeDist is the net-size histogram of the MCNC Primary2 netlist
// as published in Table 1 of the paper (3029 nets total).
var Primary2SizeDist = []SizeBucket{
	{2, 1835}, {3, 365}, {4, 203}, {5, 192}, {6, 120}, {7, 52}, {8, 14},
	{9, 83}, {10, 14}, {11, 35}, {12, 5}, {13, 3}, {14, 10}, {15, 3},
	{16, 1}, {17, 72}, {18, 1}, {23, 1}, {26, 1}, {29, 1}, {30, 1},
	{31, 1}, {33, 14}, {34, 1}, {37, 1},
}

// Config parameterizes one synthetic circuit.
type Config struct {
	// Name labels the circuit in reports.
	Name string
	// Modules is the number of modules (vertices).
	Modules int
	// Nets is the number of signal nets (hyperedges).
	Nets int
	// Seed makes generation reproducible.
	Seed int64
	// Locality is the per-level probability of descending deeper in the
	// cluster tree when anchoring a net; higher values mean more local nets
	// and a cheaper natural cut. Default 0.93.
	Locality float64
	// Branch is the cluster-tree fanout. Default 2.
	Branch int
	// LeafSize stops the recursive decomposition. Default 12.
	LeafSize int
	// SizeDist is the net-size histogram to sample from.
	// Default Primary2SizeDist.
	SizeDist []SizeBucket
	// HubProb is the per-net probability of picking up a high-fanout hub
	// module (the global or regional clock/control driver of the net's
	// region). Hub modules accumulate degrees in the hundreds — the
	// structure that stresses clique-model geometry but is discounted by
	// the intersection graph's 1/(d_k−1) weighting. Zero disables hubs
	// (the default); the hub-sensitivity ablation sweeps this knob.
	HubProb float64
}

func (c Config) withDefaults() Config {
	if c.Locality == 0 {
		c.Locality = 0.93
	}
	if c.Branch < 2 {
		c.Branch = 2
	}
	if c.LeafSize < 2 {
		c.LeafSize = 12
	}
	if c.SizeDist == nil {
		c.SizeDist = Primary2SizeDist
	}
	return c
}

// span is one node of the cluster tree: a contiguous module index range.
type span struct {
	lo, hi   int // modules [lo, hi)
	children []int
}

// buildTree recursively decomposes [0, n) into a cluster tree.
func buildTree(n, branch, leaf int) []span {
	tree := []span{{lo: 0, hi: n}}
	for i := 0; i < len(tree); i++ {
		s := tree[i]
		size := s.hi - s.lo
		if size <= leaf {
			continue
		}
		parts := branch
		if parts > size {
			parts = size
		}
		base := size / parts
		extra := size % parts
		lo := s.lo
		for p := 0; p < parts; p++ {
			sz := base
			if p < extra {
				sz++
			}
			tree[i].children = append(tree[i].children, len(tree))
			tree = append(tree, span{lo: lo, hi: lo + sz})
			lo += sz
		}
	}
	return tree
}

// Generate produces the synthetic circuit described by cfg.
func Generate(cfg Config) (*hypergraph.Hypergraph, error) {
	cfg = cfg.withDefaults()
	if cfg.Modules < 2 {
		return nil, fmt.Errorf("netgen: %q needs at least 2 modules", cfg.Name)
	}
	if cfg.Nets < 1 {
		return nil, fmt.Errorf("netgen: %q needs at least 1 net", cfg.Name)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tree := buildTree(cfg.Modules, cfg.Branch, cfg.LeafSize)
	parent := make([]int, len(tree))
	depth := make([]int, len(tree))
	for p, s := range tree {
		for _, c := range s.children {
			parent[c] = p
			depth[c] = depth[p] + 1
		}
	}
	// Hub modules: one per tree node of depth ≤ 1 (a global driver plus one
	// regional driver per top-level block), mid-span so they are ordinary
	// modules with extra fanout.
	hubOf := make(map[int]int) // tree node -> hub module
	for idx, s := range tree {
		if depth[idx] <= 1 && s.hi-s.lo >= 2 {
			hubOf[idx] = (s.lo + s.hi) / 2
		}
	}

	// Cumulative size distribution for sampling.
	totalW := 0
	for _, b := range cfg.SizeDist {
		totalW += b.Count
	}
	sampleSize := func() int {
		r := rng.Intn(totalW)
		for _, b := range cfg.SizeDist {
			r -= b.Count
			if r < 0 {
				return b.Size
			}
		}
		return cfg.SizeDist[len(cfg.SizeDist)-1].Size
	}

	bld := hypergraph.NewBuilder()
	bld.SetNumModules(cfg.Modules)

	// Backbone: one bus net spanning each leaf cluster (like a local clock
	// or control line) plus a 2-pin link from each cluster's first module
	// to its parent's first module. Every leaf is internally connected and
	// every child span hangs off its parent's anchor, so the whole circuit
	// is connected (as real designs are) while the backbone consumes only
	// a small fraction of the net budget. Backbone nets count toward it.
	budget := cfg.Nets
	for idx, s := range tree {
		if len(s.children) > 0 {
			continue
		}
		if budget > 1 && s.hi-s.lo >= 2 {
			bus := make([]int, 0, s.hi-s.lo)
			for v := s.lo; v < s.hi; v++ {
				bus = append(bus, v)
			}
			bld.AddNet(bus...)
			budget--
		}
		if idx > 0 && budget > 1 && s.lo != tree[parent[idx]].lo {
			bld.AddNet(s.lo, tree[parent[idx]].lo)
			budget--
		}
	}

	// Track module degrees so the fixup phase can guarantee a minimum
	// degree of 2, as real standard-cell netlists have (every gate has at
	// least an input and an output pin). Without this, degree-1 modules
	// dangling from a single net create "peel off three modules of one
	// net" ratio cuts that no net-partition completion can express —
	// an artifact absent from real circuits.
	deg := make([]int, cfg.Modules)
	leafOf := make([]int, cfg.Modules)
	for idx, s := range tree {
		if len(s.children) > 0 {
			continue
		}
		for v := s.lo; v < s.hi; v++ {
			leafOf[v] = idx
		}
	}
	countNet := func(pins []int) {
		for _, v := range pins {
			deg[v]++
		}
	}
	// Backbone degrees: every module sits on its leaf bus; anchors carry
	// uplinks. Recount from the builder's state via the leaf structure.
	for idx, s := range tree {
		if len(s.children) > 0 {
			continue
		}
		if s.hi-s.lo >= 2 {
			for v := s.lo; v < s.hi; v++ {
				deg[v]++
			}
		}
		if idx > 0 && s.lo != tree[parent[idx]].lo {
			deg[s.lo]++
			deg[tree[parent[idx]].lo]++
		}
	}
	// The fixup phase pairs deficient modules within their leaf, so the
	// budget reserve is Σ_leaf ceil(needy/2), maintained incrementally.
	needyInLeaf := make(map[int]int)
	reserve := 0
	for v, d := range deg {
		if d < 2 {
			needyInLeaf[leafOf[v]]++
		}
	}
	for _, k := range needyInLeaf {
		reserve += (k + 1) / 2
	}
	repair := func(v int) {
		// Called when module v's degree reaches 2.
		l := leafOf[v]
		k := needyInLeaf[l]
		needyInLeaf[l] = k - 1
		if k%2 == 1 {
			reserve--
		}
	}

	// Body: hierarchy-anchored random nets, stopping while enough budget
	// remains to repair every degree-deficient module.
	pins := make([]int, 0, 64)
	for budget > reserve {
		k := sampleSize()
		node := 0
		for len(tree[node].children) > 0 && rng.Float64() < cfg.Locality {
			node = tree[node].children[rng.Intn(len(tree[node].children))]
		}
		// Ensure the anchor span can host k distinct modules.
		for tree[node].hi-tree[node].lo < k && node != 0 {
			node = parent[node]
		}
		if tree[node].hi-tree[node].lo < k {
			k = tree[node].hi - tree[node].lo // circuit smaller than the sampled net
		}
		s := tree[node]
		pins = pins[:0]
		seen := map[int]bool{}
		for len(pins) < k {
			v := s.lo + rng.Intn(s.hi-s.lo)
			if !seen[v] {
				seen[v] = true
				pins = append(pins, v)
			}
		}
		// Regional hub pickup: the net is driven by the hub of its nearest
		// depth-≤1 ancestor with probability HubProb.
		if rng.Float64() < cfg.HubProb {
			hn := node
			for depth[hn] > 1 {
				hn = parent[hn]
			}
			if hub, ok := hubOf[hn]; ok && !seen[hub] {
				seen[hub] = true
				pins = append(pins, hub)
			}
		}
		bld.AddNet(pins...)
		budget--
		for _, v := range pins {
			if deg[v] == 1 {
				repair(v)
			}
		}
		countNet(pins)
	}

	// Fixup: pair remaining degree-deficient modules with 2-pin nets,
	// preferring partners inside the same leaf to preserve locality.
	var needy []int
	for v, d := range deg {
		if d < 2 {
			needy = append(needy, v)
		}
	}
	for i := 0; i < len(needy) && budget > 0; {
		v := needy[i]
		if deg[v] >= 2 {
			i++
			continue
		}
		partner := -1
		for j := i + 1; j < len(needy); j++ {
			if deg[needy[j]] < 2 && leafOf[needy[j]] == leafOf[v] {
				partner = needy[j]
				break
			}
		}
		if partner < 0 {
			// Any module in the same leaf other than v.
			s := tree[leafOf[v]]
			if s.hi-s.lo < 2 {
				i++
				continue
			}
			for {
				partner = s.lo + rng.Intn(s.hi-s.lo)
				if partner != v {
					break
				}
			}
		}
		bld.AddNet(v, partner)
		deg[v]++
		deg[partner]++
		budget--
		i++
	}
	// Spend any leftover budget on local 2-pin filler nets.
	for budget > 0 {
		leaf := tree[leafOf[rng.Intn(cfg.Modules)]]
		if leaf.hi-leaf.lo < 2 {
			continue
		}
		a := leaf.lo + rng.Intn(leaf.hi-leaf.lo)
		b := leaf.lo + rng.Intn(leaf.hi-leaf.lo)
		if a == b {
			continue
		}
		bld.AddNet(a, b)
		budget--
	}
	return bld.Build(), nil
}

// Benchmarks lists the nine circuits of Tables 2–3 with module and net
// counts matching the originals (MCNC Primary/Test plus the two industry
// examples bm1 and 19ks reported by Wei–Cheng).
var Benchmarks = []Config{
	{Name: "bm1", Modules: 882, Nets: 903, Seed: 101},
	{Name: "19ks", Modules: 2844, Nets: 3282, Seed: 102},
	{Name: "Prim1", Modules: 833, Nets: 902, Seed: 103},
	{Name: "Prim2", Modules: 3014, Nets: 3029, Seed: 104},
	{Name: "Test02", Modules: 1663, Nets: 1720, Seed: 105},
	{Name: "Test03", Modules: 1607, Nets: 1618, Seed: 106},
	{Name: "Test04", Modules: 1515, Nets: 1658, Seed: 107},
	{Name: "Test05", Modules: 2595, Nets: 2750, Seed: 108},
	{Name: "Test06", Modules: 1752, Nets: 1541, Seed: 109},
}

// ScaleBenchmarks lists the large synthetic circuits behind the scale
// benchmarks (ROADMAP: 10⁵–10⁶-net inputs solved in seconds). Module
// counts keep the ~0.99 modules-per-net ratio of Primary2 so structural
// properties (IG sparsity, net-size mix) carry over; only the scale
// changes.
var ScaleBenchmarks = []Config{
	{Name: "scale10k", Modules: 9_900, Nets: 10_000, Seed: 210},
	{Name: "scale30k", Modules: 29_700, Nets: 30_000, Seed: 211},
	{Name: "scale100k", Modules: 99_000, Nets: 100_000, Seed: 212},
	{Name: "scale300k", Modules: 297_000, Nets: 300_000, Seed: 213},
	{Name: "scale1M", Modules: 990_000, Nets: 1_000_000, Seed: 214},
}

// ByName returns the benchmark Config with the given name, searching the
// paper suite first, then the scale presets.
func ByName(name string) (Config, bool) {
	for _, c := range Benchmarks {
		if c.Name == name {
			return c, true
		}
	}
	for _, c := range ScaleBenchmarks {
		if c.Name == name {
			return c, true
		}
	}
	return Config{}, false
}

// Names returns the benchmark names in table order.
func Names() []string {
	names := make([]string, len(Benchmarks))
	for i, c := range Benchmarks {
		names[i] = c.Name
	}
	return names
}

// scaled returns cfg with module and net counts scaled by f (at least 2
// modules / 1 net), used to run the experiment suite at reduced size.
func (c Config) scaled(f float64) Config {
	s := c
	s.Modules = int(float64(c.Modules) * f)
	if s.Modules < 2 {
		s.Modules = 2
	}
	s.Nets = int(float64(c.Nets) * f)
	if s.Nets < 1 {
		s.Nets = 1
	}
	return s
}

// Scaled exposes scaled for harness use.
func (c Config) Scaled(f float64) Config { return c.scaled(f) }

// SortedSizes returns the distinct net sizes of dist in ascending order.
func SortedSizes(dist []SizeBucket) []int {
	sizes := make([]int, len(dist))
	for i, b := range dist {
		sizes[i] = b.Size
	}
	sort.Ints(sizes)
	return sizes
}
