package netgen

import (
	"testing"

	"igpart/internal/hypergraph"
	"igpart/internal/netmodel"
	"igpart/internal/partition"
)

func TestGenerateBasic(t *testing.T) {
	h, err := Generate(Config{Name: "t", Modules: 200, Nets: 220, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumModules() != 200 {
		t.Errorf("modules = %d, want 200", h.NumModules())
	}
	if h.NumNets() != 220 {
		t.Errorf("nets = %d, want 220", h.NumNets())
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Name: "t", Modules: 300, Nets: 320, Seed: 9}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNets() != b.NumNets() || a.NumPins() != b.NumPins() {
		t.Fatalf("same seed differs: %d/%d vs %d/%d",
			a.NumNets(), a.NumPins(), b.NumNets(), b.NumPins())
	}
	for e := 0; e < a.NumNets(); e++ {
		pa, pb := a.Pins(e), b.Pins(e)
		if len(pa) != len(pb) {
			t.Fatalf("net %d size differs", e)
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("net %d pin %d differs", e, i)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(Config{Modules: 300, Nets: 320, Seed: 1})
	b, _ := Generate(Config{Modules: 300, Nets: 320, Seed: 2})
	if a.NumPins() == b.NumPins() {
		// Pins could coincide by chance; check pin lists too.
		same := true
		for e := 0; e < a.NumNets() && same; e++ {
			pa, pb := a.Pins(e), b.Pins(e)
			if len(pa) != len(pb) {
				same = false
				break
			}
			for i := range pa {
				if pa[i] != pb[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Error("different seeds produced identical circuits")
		}
	}
}

func TestGenerateConnected(t *testing.T) {
	h, err := Generate(Config{Modules: 500, Nets: 550, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, n := hypergraph.ConnectedComponents(h)
	// The backbone keeps the circuit essentially connected; allow a couple
	// of stragglers from budget exhaustion.
	if n > 5 {
		t.Errorf("components = %d, want few", n)
	}
}

func TestGenerateSizeDistributionShape(t *testing.T) {
	h, err := Generate(Config{Modules: 3014, Nets: 3029, Seed: 104})
	if err != nil {
		t.Fatal(err)
	}
	s := hypergraph.ComputeStats(h)
	// 2-pin nets must dominate (Table 1: 1835/3029 ≈ 61%, plus backbone).
	frac2 := float64(s.NetSizeHist[2]) / float64(s.Nets)
	if frac2 < 0.5 {
		t.Errorf("2-pin fraction = %v, want > 0.5", frac2)
	}
	// The long tail must be present.
	if s.MaxNetSize < 17 {
		t.Errorf("max net size = %d, want a long tail (≥17)", s.MaxNetSize)
	}
	if s.AvgNetSize < 2 || s.AvgNetSize > 5 {
		t.Errorf("avg net size = %v, want 2–5", s.AvgNetSize)
	}
}

func TestGenerateHasNaturalCut(t *testing.T) {
	// The planted hierarchy means the middle split is far cheaper than a
	// random one: count nets crossing the root split.
	h, err := Generate(Config{Modules: 1000, Nets: 1100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	p := partition.New(h.NumModules())
	for v := 500; v < 1000; v++ {
		p.Set(v, partition.W)
	}
	natural := partition.CutNets(h, p)
	// Compare with an interleaved (worst-case-ish) split.
	q := partition.New(h.NumModules())
	for v := 0; v < 1000; v += 2 {
		q.Set(v, partition.W)
	}
	interleaved := partition.CutNets(h, q)
	if natural*3 > interleaved {
		t.Errorf("natural cut %d not clearly cheaper than interleaved %d", natural, interleaved)
	}
}

func TestGenerateMinDegreeTwo(t *testing.T) {
	// Real netlists have no dangling gates: every module must end with at
	// least two incident nets (given a sufficient net budget).
	for _, cfg := range Benchmarks {
		h, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		low := 0
		for v := 0; v < h.NumModules(); v++ {
			if h.Degree(v) < 2 {
				low++
			}
		}
		if low > 0 {
			t.Errorf("%s: %d modules with degree < 2", cfg.Name, low)
		}
	}
}

func TestGenerateIGSparsity(t *testing.T) {
	// The paper's sparsity claim should hold on generated circuits with the
	// Primary2 distribution: IG sparser than the clique model.
	h, err := Generate(Config{Modules: 2595, Nets: 2750, Seed: 108})
	if err != nil {
		t.Fatal(err)
	}
	s := netmodel.CompareSparsity(h)
	if s.Ratio < 1.5 {
		t.Errorf("clique/IG nonzero ratio = %v, want clearly > 1", s.Ratio)
	}
}

func TestBenchmarkRegistry(t *testing.T) {
	if len(Benchmarks) != 9 {
		t.Fatalf("registry has %d entries, want 9", len(Benchmarks))
	}
	cfg, ok := ByName("Prim2")
	if !ok || cfg.Modules != 3014 {
		t.Errorf("ByName(Prim2) = %+v, %v", cfg, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName accepted unknown name")
	}
	names := Names()
	if len(names) != 9 || names[0] != "bm1" {
		t.Errorf("Names = %v", names)
	}
	for _, c := range Benchmarks {
		h, err := Generate(c.Scaled(0.1))
		if err != nil {
			t.Errorf("%s: %v", c.Name, err)
			continue
		}
		if err := h.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestScaled(t *testing.T) {
	c := Config{Modules: 1000, Nets: 1100}
	s := c.Scaled(0.5)
	if s.Modules != 500 || s.Nets != 550 {
		t.Errorf("Scaled = %+v", s)
	}
	tiny := c.Scaled(0.0001)
	if tiny.Modules < 2 || tiny.Nets < 1 {
		t.Errorf("Scaled floor broken: %+v", tiny)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{Modules: 1, Nets: 5}); err == nil {
		t.Error("accepted 1 module")
	}
	if _, err := Generate(Config{Modules: 5, Nets: 0}); err == nil {
		t.Error("accepted 0 nets")
	}
}

func TestGenerateTinyCircuit(t *testing.T) {
	// Nets larger than the whole circuit must be clamped, not loop forever.
	h, err := Generate(Config{Modules: 4, Nets: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumNets() != 30 {
		t.Errorf("nets = %d", h.NumNets())
	}
	for e := 0; e < h.NumNets(); e++ {
		if h.NetSize(e) > 4 {
			t.Errorf("net %d has %d pins on a 4-module circuit", e, h.NetSize(e))
		}
	}
}

func TestSortedSizes(t *testing.T) {
	got := SortedSizes([]SizeBucket{{5, 1}, {2, 3}, {9, 1}})
	if len(got) != 3 || got[0] != 2 || got[2] != 9 {
		t.Errorf("SortedSizes = %v", got)
	}
}
