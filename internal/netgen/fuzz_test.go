package netgen

import (
	"bytes"
	"testing"

	"igpart/internal/hypergraph"
)

// FuzzNetgen drives Generate across the whole configuration space and
// asserts the generator's structural contract: the circuit hits the
// requested module and net counts exactly, no net is degenerate (empty,
// single-pin, or duplicate-pin — the builder sorts and dedups, so a
// repeated sample collapsing a net to one pin would surface here), every
// module has the minimum degree 2 of real standard-cell netlists, and
// the circuit survives a Bookshelf write/read round trip unchanged.
func FuzzNetgen(f *testing.F) {
	f.Add(int64(1), uint16(50), uint16(60), uint8(93), uint8(0))
	f.Add(int64(104), uint16(3014), uint16(3029), uint8(93), uint8(0)) // Prim2 shape
	f.Add(int64(7), uint16(2), uint16(1), uint8(0), uint8(99))
	f.Add(int64(-3), uint16(997), uint16(1203), uint8(50), uint8(25))
	f.Fuzz(func(t *testing.T, seed int64, modules, nets uint16, locality, hubs uint8) {
		cfg := Config{
			Name:     "fuzz",
			Modules:  int(modules)%2000 + 2,
			Nets:     int(nets)%2500 + 1,
			Seed:     seed,
			Locality: float64(locality%100) / 100,
			HubProb:  float64(hubs%100) / 100,
		}
		h, err := Generate(cfg)
		if err != nil {
			t.Fatalf("Generate(%+v): %v", cfg, err)
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("generated circuit invalid: %v", err)
		}
		if h.NumModules() != cfg.Modules || h.NumNets() != cfg.Nets {
			t.Fatalf("got %d modules / %d nets, want %d / %d",
				h.NumModules(), h.NumNets(), cfg.Modules, cfg.Nets)
		}
		for e := 0; e < h.NumNets(); e++ {
			if h.NetSize(e) < 2 {
				t.Fatalf("net %d is degenerate: %d pins", e, h.NetSize(e))
			}
		}
		if cfg.Nets >= cfg.Modules {
			// The min-degree-2 guarantee needs enough net budget for the
			// fixup phase; at the >= 1 net-per-module ratio of every real
			// preset it must hold for all modules.
			for v := 0; v < h.NumModules(); v++ {
				if h.Degree(v) < 2 {
					t.Fatalf("module %d has degree %d, want >= 2", v, h.Degree(v))
				}
			}
		}

		var nodes, netsBuf bytes.Buffer
		if err := hypergraph.WriteBookshelf(&nodes, &netsBuf, h); err != nil {
			t.Fatalf("WriteBookshelf: %v", err)
		}
		back, err := hypergraph.ReadBookshelf(bytes.NewReader(nodes.Bytes()), bytes.NewReader(netsBuf.Bytes()))
		if err != nil {
			t.Fatalf("ReadBookshelf of generated circuit: %v", err)
		}
		if back.NumModules() != h.NumModules() || back.NumNets() != h.NumNets() {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d",
				h.NumModules(), h.NumNets(), back.NumModules(), back.NumNets())
		}
		for e := 0; e < h.NumNets(); e++ {
			want, got := h.Pins(e), back.Pins(e)
			if len(want) != len(got) {
				t.Fatalf("net %d changed size in round trip: %d -> %d", e, len(want), len(got))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("net %d pin %d changed in round trip: %d -> %d", e, i, want[i], got[i])
				}
			}
		}
	})
}
