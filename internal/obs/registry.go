package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a lightweight metrics registry: named counters, gauges,
// and timers, created on first use. All accessors are nil-receiver-safe
// and return nil-receiver-safe instruments, so code threaded with a Nop
// recorder can write `rec.Metrics().Counter("x").Add(1)` unconditionally
// — the whole chain degenerates to two nil checks.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.timers == nil {
		r.timers = make(map[string]*Timer)
	}
	t := r.timers[name]
	if t == nil {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Counter is a monotonically adjustable integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float metric.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value (0 before the first Set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Timer accumulates observation count and total duration.
type Timer struct {
	n     atomic.Int64
	total atomic.Int64
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.n.Add(1)
	t.total.Add(int64(d))
}

// Start begins timing; calling the returned func records the elapsed
// time as one observation.
func (t *Timer) Start() func() {
	if t == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { t.Observe(time.Since(t0)) }
}

// Count returns the number of observations.
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.n.Load()
}

// Total returns the summed observed duration.
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.total.Load())
}

// Mean returns the average observation (0 with no observations).
func (t *Timer) Mean() time.Duration {
	n := t.Count()
	if n == 0 {
		return 0
	}
	return t.Total() / time.Duration(n)
}

// TimerStat is the JSON form of a Timer.
type TimerStat struct {
	Count   int64 `json:"count"`
	TotalNS int64 `json:"total_ns"`
}

// MetricsSnapshot is a point-in-time, JSON-serializable copy of a
// Registry.
type MetricsSnapshot struct {
	Counters map[string]int64     `json:"counters,omitempty"`
	Gauges   map[string]float64   `json:"gauges,omitempty"`
	Timers   map[string]TimerStat `json:"timers,omitempty"`
}

// Snapshot copies the registry's current values. A nil registry yields
// an empty snapshot.
func (r *Registry) Snapshot() MetricsSnapshot {
	var s MetricsSnapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for k, c := range r.counters {
			s.Counters[k] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for k, g := range r.gauges {
			s.Gauges[k] = g.Value()
		}
	}
	if len(r.timers) > 0 {
		s.Timers = make(map[string]TimerStat, len(r.timers))
		for k, t := range r.timers {
			s.Timers[k] = TimerStat{Count: t.Count(), TotalNS: int64(t.Total())}
		}
	}
	return s
}

// String renders the snapshot as sorted "kind name = value" lines.
func (s MetricsSnapshot) String() string {
	var b strings.Builder
	for _, k := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "counter %s = %d\n", k, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "gauge   %s = %g\n", k, s.Gauges[k])
	}
	for _, k := range sortedKeys(s.Timers) {
		t := s.Timers[k]
		fmt.Fprintf(&b, "timer   %s = %v over %d obs\n", k, time.Duration(t.TotalNS), t.Count)
	}
	return b.String()
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
