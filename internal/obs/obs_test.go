package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestOrNop(t *testing.T) {
	if OrNop(nil) != Nop {
		t.Error("OrNop(nil) should be Nop")
	}
	tr := NewTrace("x")
	if OrNop(tr) != Recorder(tr) {
		t.Error("OrNop should pass a real recorder through")
	}
}

func TestNopIsInert(t *testing.T) {
	r := OrNop(nil)
	if r.Enabled() {
		t.Error("Nop must report disabled")
	}
	sp := r.StartSpan("stage")
	sp.Count("n", 5)
	sp.End()
	if sp.Enabled() {
		t.Error("Nop child must report disabled")
	}
	if r.Metrics() != nil {
		t.Error("Nop registry must be nil")
	}
	// The nil-safe registry chain must be a legal no-op.
	r.Metrics().Counter("c").Add(1)
	r.Metrics().Gauge("g").Set(2)
	r.Metrics().Timer("t").Observe(time.Second)
	if r.Metrics().Counter("c").Value() != 0 || r.Metrics().Gauge("g").Value() != 0 {
		t.Error("nil instruments must read as zero")
	}
	if r.Metrics().Timer("t").Count() != 0 || r.Metrics().Timer("t").Mean() != 0 {
		t.Error("nil timer must read as zero")
	}
	if s := r.Metrics().Snapshot(); len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Timers) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
}

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("run")
	if !tr.Enabled() {
		t.Fatal("trace must be enabled")
	}
	a := tr.StartSpan("a")
	a.Count("hits", 2)
	a.Count("hits", 3)
	aa := a.StartSpan("aa")
	aa.End()
	a.End()
	b := tr.StartSpan("b")
	b.End()
	tr.Count("root-counter", 7)
	root := tr.Finish()

	if root.Name != "run" || len(root.Children) != 2 {
		t.Fatalf("root = %q with %d children", root.Name, len(root.Children))
	}
	if root.Counters["root-counter"] != 7 {
		t.Errorf("root counter = %v", root.Counters)
	}
	if root.Children[0].Name != "a" || root.Children[1].Name != "b" {
		t.Errorf("child order: %q, %q", root.Children[0].Name, root.Children[1].Name)
	}
	if root.Children[0].Counters["hits"] != 5 {
		t.Errorf("counter accumulation: %v", root.Children[0].Counters)
	}
	if got := root.Find("aa"); got == nil {
		t.Error("Find failed to locate nested stage")
	}
	if got := root.Find("missing"); got != nil {
		t.Error("Find invented a stage")
	}
	if root.Duration() <= 0 || root.Children[0].Duration() < 0 {
		t.Error("durations must be recorded")
	}
}

func TestTraceDoubleEndAndOpenReport(t *testing.T) {
	tr := NewTrace("run")
	sp := tr.StartSpan("stage")
	sp.End()
	first := tr.Report().Children[0].DurationNS
	time.Sleep(time.Millisecond)
	sp.End() // idempotent
	if again := tr.Report().Children[0].DurationNS; again != first {
		t.Errorf("double End changed duration: %d vs %d", again, first)
	}
	// Open spans report elapsed-so-far time.
	open := tr.StartSpan("open")
	time.Sleep(time.Millisecond)
	if d := tr.Report().Children[1].Duration(); d <= 0 {
		t.Errorf("open span duration = %v", d)
	}
	open.End()
}

func TestSpanConcurrency(t *testing.T) {
	tr := NewTrace("run")
	sw := tr.StartSpan("sweep")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := sw.StartSpan("shard")
			for j := 0; j < 100; j++ {
				sp.Count("splits", 1)
				sp.Metrics().Counter("total.splits").Add(1)
			}
			sp.End()
		}()
	}
	wg.Wait()
	sw.End()
	root := tr.Finish()
	sweep := root.Find("sweep")
	if sweep == nil || len(sweep.Children) != 8 {
		t.Fatalf("sweep children = %+v", sweep)
	}
	if got := sweep.Sum("splits"); got != 800 {
		t.Errorf("Sum(splits) = %d, want 800", got)
	}
	if got := tr.Metrics().Counter("total.splits").Value(); got != 800 {
		t.Errorf("registry total = %d, want 800", got)
	}
}

func TestRegistryInstruments(t *testing.T) {
	var reg Registry
	reg.Counter("c").Add(2)
	reg.Counter("c").Add(3)
	if got := reg.Counter("c").Value(); got != 5 {
		t.Errorf("counter = %d", got)
	}
	reg.Gauge("g").Set(1.5)
	reg.Gauge("g").Set(2.5)
	if got := reg.Gauge("g").Value(); got != 2.5 {
		t.Errorf("gauge = %g", got)
	}
	reg.Timer("t").Observe(10 * time.Millisecond)
	stop := reg.Timer("t").Start()
	stop()
	tm := reg.Timer("t")
	if tm.Count() != 2 || tm.Total() < 10*time.Millisecond || tm.Mean() <= 0 {
		t.Errorf("timer = %d obs, total %v", tm.Count(), tm.Total())
	}

	snap := reg.Snapshot()
	if snap.Counters["c"] != 5 || snap.Gauges["g"] != 2.5 || snap.Timers["t"].Count != 2 {
		t.Errorf("snapshot = %+v", snap)
	}
	out := snap.String()
	for _, want := range []string{"counter c = 5", "gauge   g = 2.5", "timer   t ="} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot dump missing %q in:\n%s", want, out)
		}
	}
}

func TestFormatTree(t *testing.T) {
	tr := NewTrace("igpart")
	sp := tr.StartSpan("eigensolve")
	sp.Count("restarts", 1)
	sp.Count("matvecs", 42)
	sp.End()
	out := FormatTree(tr.Finish())
	if !strings.Contains(out, "igpart") || !strings.Contains(out, "eigensolve") {
		t.Errorf("tree missing stages:\n%s", out)
	}
	if !strings.Contains(out, "matvecs=42 restarts=1") {
		t.Errorf("counters must be sorted k=v pairs:\n%s", out)
	}
	if tr.String() == "" {
		t.Error("Trace.String must render")
	}
}

func TestStageJSONRoundTrip(t *testing.T) {
	tr := NewTrace("run")
	sp := tr.StartSpan("stage")
	sp.Count("k", 9)
	sp.End()
	root := tr.Finish()
	raw, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var back Stage
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "run" || len(back.Children) != 1 || back.Children[0].Counters["k"] != 9 {
		t.Errorf("round trip = %+v", back)
	}
}
