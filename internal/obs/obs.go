// Package obs is the pipeline observability layer: hierarchical stage
// spans carrying wall time and counters, plus a lightweight metrics
// registry of counters, gauges, and timers. It depends only on the
// standard library.
//
// A Recorder is both a span handle and a span factory: StartSpan opens a
// nested child stage, Count attaches a named counter to the stage, End
// closes it. The two implementations are
//
//   - Trace (trace.go): records everything, safe for concurrent use —
//     the parallel sweep shards open sibling spans side by side; and
//   - Nop: discards everything at near-zero cost.
//
// The disabled path is a hard requirement: every pipeline Options struct
// carries a Recorder that defaults to nil, call sites normalize with
// OrNop, and the Nop methods are empty leaf calls the compiler can see
// through. Hot loops additionally keep per-iteration tallies in local
// integers and flush them to a span once per stage, so a traced run and
// an untraced run execute the same per-split instructions.
package obs

// Recorder receives pipeline instrumentation. It is the handle of the
// currently open stage: StartSpan opens a child stage (returning its
// handle), Count accumulates a named counter on this stage, and End
// closes it. Metrics returns the run-wide registry shared by every span
// of the same Trace (nil for Nop — the *Registry accessors are nil-safe,
// so `r.Metrics().Counter("x").Add(1)` is always a legal no-op chain).
type Recorder interface {
	// StartSpan opens a child stage span and returns its handle.
	StartSpan(name string) Recorder
	// Count adds delta to the named counter of this stage.
	Count(name string, delta int64)
	// End closes the stage, freezing its wall time. Ending a span twice
	// is a no-op; spans left open report elapsed-so-far time.
	End()
	// Metrics returns the run-wide metrics registry (nil for Nop).
	Metrics() *Registry
	// Enabled reports whether this recorder actually records, letting
	// callers skip expensive label construction on the disabled path.
	Enabled() bool
}

// Nop is the default recorder: it discards everything.
var Nop Recorder = nop{}

// OrNop normalizes an optional recorder: nil becomes Nop, anything else
// passes through. Pipeline entry points call this once so inner stages
// never need nil checks.
func OrNop(r Recorder) Recorder {
	if r == nil {
		return Nop
	}
	return r
}

type nop struct{}

func (nop) StartSpan(string) Recorder { return Nop }
func (nop) Count(string, int64)       {}
func (nop) End()                      {}
func (nop) Metrics() *Registry        { return nil }
func (nop) Enabled() bool             { return false }
