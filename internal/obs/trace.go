package obs

import (
	"sync"
	"time"
)

// Trace is the concrete Recorder: it captures a tree of stage spans with
// wall times and counters plus a metrics registry, and renders both as a
// timing tree (String/FormatTree) or a machine-readable report (Report).
// All methods are safe for concurrent use; sibling spans may be opened
// and ended from different goroutines.
type Trace struct {
	reg  Registry
	root span
}

// NewTrace returns a Trace whose root span bears the given name. The
// root opens immediately; Finish (or End) closes it.
func NewTrace(name string) *Trace {
	t := &Trace{}
	t.root.t = t
	t.root.name = name
	t.root.start = time.Now()
	return t
}

// StartSpan opens a top-level stage under the root.
func (t *Trace) StartSpan(name string) Recorder { return t.root.StartSpan(name) }

// Count adds delta to a root-level counter.
func (t *Trace) Count(name string, delta int64) { t.root.Count(name, delta) }

// End closes the root span.
func (t *Trace) End() { t.root.End() }

// Metrics returns the trace's metrics registry.
func (t *Trace) Metrics() *Registry { return &t.reg }

// Enabled reports that the trace records.
func (t *Trace) Enabled() bool { return true }

// Finish ends the root span (idempotent) and returns the stage tree.
func (t *Trace) Finish() Stage {
	t.root.End()
	return t.Report()
}

// Report snapshots the stage tree. Spans still open report their elapsed
// time so far, so Report is usable mid-run.
func (t *Trace) Report() Stage { return t.root.report() }

// String renders the stage tree as an indented per-stage timing table.
func (t *Trace) String() string { return FormatTree(t.Report()) }

// span is one node of the stage tree.
type span struct {
	t     *Trace
	name  string
	start time.Time

	mu       sync.Mutex
	ended    bool
	dur      time.Duration
	counters map[string]int64
	children []*span
}

func (s *span) StartSpan(name string) Recorder {
	c := &span{t: s.t, name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

func (s *span) Count(name string, delta int64) {
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64)
	}
	s.counters[name] += delta
	s.mu.Unlock()
}

func (s *span) End() {
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

func (s *span) Metrics() *Registry { return &s.t.reg }

func (s *span) Enabled() bool { return true }

func (s *span) report() Stage {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.dur
	if !s.ended {
		d = time.Since(s.start)
	}
	st := Stage{Name: s.name, DurationNS: int64(d)}
	if len(s.counters) > 0 {
		st.Counters = make(map[string]int64, len(s.counters))
		for k, v := range s.counters {
			st.Counters[k] = v
		}
	}
	if len(s.children) > 0 {
		st.Children = make([]Stage, 0, len(s.children))
		for _, c := range s.children {
			st.Children = append(st.Children, c.report())
		}
	}
	return st
}
