package obs

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// Stage is the machine-readable form of one recorded span: its wall
// time, counters, and child stages. Trace.Report returns the root Stage;
// the JSON encoding is the per-stage breakdown embedded in the bench
// suite's BENCH_<name>.json run reports.
type Stage struct {
	Name       string           `json:"name"`
	DurationNS int64            `json:"duration_ns"`
	Counters   map[string]int64 `json:"counters,omitempty"`
	Children   []Stage          `json:"children,omitempty"`
}

// Duration returns the stage's wall time.
func (s Stage) Duration() time.Duration { return time.Duration(s.DurationNS) }

// Find returns the first stage named name in a depth-first walk of the
// subtree rooted at s (including s itself), or nil.
func (s *Stage) Find(name string) *Stage {
	if s.Name == name {
		return s
	}
	for i := range s.Children {
		if hit := s.Children[i].Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// Sum totals the named counter over the whole subtree rooted at s. The
// cross-shard totals of the sweep (splits evaluated, augmentations, …)
// are Sums over the sweep stage.
func (s Stage) Sum(counter string) int64 {
	total := s.Counters[counter]
	for _, c := range s.Children {
		total += c.Sum(counter)
	}
	return total
}

// FormatTree renders a stage tree as an indented timing table, one stage
// per line with its wall time and sorted counters:
//
//	igpart                 523ms
//	  eigensolve           211ms  matvecs=412 restarts=1
//	  sweep                302ms
//	    shard[1:450)       298ms  augmentations=1208 splits=449
func FormatTree(root Stage) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	var walk func(s Stage, depth int)
	walk = func(s Stage, depth int) {
		fmt.Fprintf(w, "%s%s\t%v\t%s\n",
			strings.Repeat("  ", depth), s.Name,
			s.Duration().Round(10*time.Microsecond), formatCounters(s.Counters))
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	w.Flush()
	return b.String()
}

// formatCounters renders counters as sorted space-separated k=v pairs.
func formatCounters(c map[string]int64) string {
	if len(c) == 0 {
		return ""
	}
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, c[k])
	}
	return strings.Join(parts, " ")
}
