package eigen

import (
	"errors"
	"math"

	"igpart/internal/sparse"
)

// Jacobi computes the full eigendecomposition of a dense symmetric matrix
// using the cyclic Jacobi rotation method. It returns the eigenvalues in
// ascending order and the corresponding orthonormal eigenvectors as columns
// (vecs[i][k] is the i-th component of the k-th eigenvector).
//
// Jacobi is O(n³) per sweep and only intended for small matrices: it serves
// as the oracle the Lanczos path is tested against, and handles the tiny
// worked examples from the paper exactly.
func Jacobi(a *sparse.SymDense, maxSweeps int) (vals []float64, vecs [][]float64, err error) {
	n := a.N()
	if n == 0 {
		return nil, nil, nil
	}
	if maxSweeps <= 0 {
		maxSweeps = 64
	}
	// Work on a raw copy of the matrix.
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			m[i][j] = a.At(i, j)
		}
	}
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}

	offNorm := func() float64 {
		s := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += m[i][j] * m[i][j]
			}
		}
		return math.Sqrt(2 * s)
	}
	normA := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			normA += m[i][j] * m[i][j]
		}
	}
	normA = math.Sqrt(normA)
	tol := 1e-13 * (1 + normA)

	for sweep := 0; sweep < maxSweeps; sweep++ {
		if offNorm() <= tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m[p][q]
				if math.Abs(apq) <= tol/float64(n*n) {
					continue
				}
				app, aqq := m[p][p], m[q][q]
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// A' = Gᵀ A G with G the (p,q) rotation.
				for k := 0; k < n; k++ {
					if k == p || k == q {
						continue
					}
					akp, akq := m[k][p], m[k][q]
					m[k][p] = c*akp - s*akq
					m[p][k] = m[k][p]
					m[k][q] = s*akp + c*akq
					m[q][k] = m[k][q]
				}
				m[p][p] = c*c*app - 2*s*c*apq + s*s*aqq
				m[q][q] = s*s*app + 2*s*c*apq + c*c*aqq
				m[p][q] = 0
				m[q][p] = 0
				// Accumulate V' = V G.
				for k := 0; k < n; k++ {
					vkp, vkq := v[k][p], v[k][q]
					v[k][p] = c*vkp - s*vkq
					v[k][q] = s*vkp + c*vkq
				}
			}
		}
	}
	if offNorm() > 1e-6*(1+normA) {
		return nil, nil, errors.New("eigen: Jacobi failed to converge")
	}

	vals = make([]float64, n)
	for i := range vals {
		vals[i] = m[i][i]
	}
	// Sort ascending, permuting the eigenvector columns.
	for i := 0; i < n-1; i++ {
		k := i
		for j := i + 1; j < n; j++ {
			if vals[j] < vals[k] {
				k = j
			}
		}
		if k != i {
			vals[i], vals[k] = vals[k], vals[i]
			for r := 0; r < n; r++ {
				v[r][i], v[r][k] = v[r][k], v[r][i]
			}
		}
	}
	return vals, v, nil
}
