package eigen

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"igpart/internal/fault"
	"igpart/internal/obs"
	"igpart/internal/sparse"
)

// Operator is a symmetric linear operator on R^n. Both sparse.SymCSR and
// sparse.SymDense satisfy it.
type Operator interface {
	N() int
	MulVec(y, x []float64)
}

// ParOperator is an Operator whose product can shard rows across worker
// goroutines with bit-identical results for every worker count.
// sparse.SymCSR (and the shifted wrapper Fiedler builds) satisfy it.
type ParOperator interface {
	Operator
	ParMulVec(y, x []float64, workers int)
}

// opMulVec dispatches one matvec, through the row-sharded parallel
// kernel when workers enables it and the operator supports it.
// workers follows the ParMulVec convention: 1 forces the serial kernel,
// <= 0 selects GOMAXPROCS.
func opMulVec(op Operator, y, x []float64, workers int) {
	if workers != 1 {
		if po, ok := op.(ParOperator); ok {
			po.ParMulVec(y, x, workers)
			return
		}
	}
	op.MulVec(y, x)
}

// Options tunes the Lanczos iteration. The zero value selects sensible
// defaults for netlist-sized Laplacians.
type Options struct {
	// MaxSteps caps the Krylov dimension per restart cycle.
	// Default: min(n, 300).
	MaxSteps int
	// Tol is the relative residual tolerance for Ritz-pair convergence.
	// Default: 1e-8.
	Tol float64
	// MaxRestarts bounds the number of restart cycles. Default: 8.
	MaxRestarts int
	// Seed seeds the random starting vector, making runs reproducible.
	Seed int64
	// BlockSize selects block Lanczos with the given block width when > 1
	// (the solver family of the paper's reference [12]); ≤ 1 selects the
	// simple single-vector iteration.
	BlockSize int
	// ReorthMode selects the reorthogonalization strategy: ReorthAuto
	// (default) runs the ω-monitored selective scheme once the dimension
	// reaches ReorthAutoCutoff and the historical full scheme below it;
	// ReorthFull and ReorthSelective force one or the other.
	ReorthMode ReorthMode
	// MatvecWorkers bounds the worker goroutines of the row-sharded
	// parallel matvec on operators that support it (CSR Laplacians and
	// their shifted wrappers). 0 selects auto — GOMAXPROCS workers once
	// the dimension reaches parMatvecMinRows, serial below it; 1 forces
	// the serial kernel; negative means GOMAXPROCS unconditionally.
	// Results are bit-identical for every value.
	MatvecWorkers int
	// Rec, when non-nil, receives one stage span per restart cycle
	// (Krylov steps, matrix–vector products) plus restart counters.
	// Recording never changes the iteration.
	Rec obs.Recorder
	// Ctx, when non-nil, enables cooperative cancellation: the solver
	// polls it at the start of every restart cycle and every few Krylov
	// steps within a cycle, returning ctx.Err() once it fires. A nil or
	// background context changes nothing — the iteration (and therefore
	// every eigenpair) is bit-identical with or without one.
	Ctx context.Context
	// DenseFallbackCutoff bounds the dimension up to which Fiedler (and
	// SmallestK) may fall back to the exact dense Jacobi solver after
	// the iterative rungs fail. 0 selects the default (512); negative
	// disables the dense fallback rung entirely.
	DenseFallbackCutoff int
	// Fault, when non-nil, arms deterministic fault injection: the
	// fault.EigenNoConverge point fires at solve entry and simulates a
	// non-convergence, exercising the fallback chain. A nil injector is
	// a no-op — production runs are bit-identical with or without the
	// field wired.
	Fault *fault.Injector
}

// defaultDenseFallback is the dimension bound for the dense Jacobi
// fallback rung when Options.DenseFallbackCutoff is 0. Jacobi is O(n³)
// per sweep, so the bound keeps the worst-case rescue solve within
// interactive time while covering every netlist the paper evaluates.
const defaultDenseFallback = 512

// denseFallbackCutoff resolves Options.DenseFallbackCutoff.
func (o Options) denseFallbackCutoff() int {
	if o.DenseFallbackCutoff > 0 {
		return o.DenseFallbackCutoff
	}
	if o.DenseFallbackCutoff < 0 {
		return 0
	}
	return defaultDenseFallback
}

// NoConvergeError reports that an iterative eigensolve failed to reach
// its tolerance (or produced a non-finite result, which is treated the
// same way). It is the trigger of the Fiedler fallback chain: callers
// detect it with errors.As and escalate to the next rung instead of
// failing the whole pipeline.
type NoConvergeError struct {
	// Residual is the best residual norm reached (0 when injected).
	Residual float64
	// Restarts is the restart budget that was exhausted.
	Restarts int
	// NonFinite marks a solve that converged numerically but produced
	// NaN/Inf entries — poisoned output that must not reach the sweep.
	NonFinite bool
	// Injected marks a simulated non-convergence from fault injection.
	Injected bool
}

func (e *NoConvergeError) Error() string {
	switch {
	case e.Injected:
		return "eigen: injected non-convergence (fault eigen.noconverge)"
	case e.NonFinite:
		return fmt.Sprintf("eigen: solve produced non-finite values (residual %.3g after %d restarts)", e.Residual, e.Restarts)
	default:
		return fmt.Sprintf("eigen: did not converge (residual %.3g after %d restarts)", e.Residual, e.Restarts)
	}
}

// finite reports whether every entry of x is a finite float.
func finite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// checkFinitePair guards an iterative solve's output: a NaN/Inf value
// or vector entry becomes a NoConvergeError so the fallback chain trips
// instead of a poisoned ordering reaching the sweep.
func checkFinitePair(theta float64, ritz []float64, restarts int) error {
	if math.IsNaN(theta) || math.IsInf(theta, 0) || !finite(ritz) {
		return &NoConvergeError{Restarts: restarts, NonFinite: true}
	}
	return nil
}

// ctxErr polls an optional context: nil contexts never cancel.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// cancelCheckSteps is how many Krylov steps (one matvec each) may elapse
// between context polls inside a cycle.
const cancelCheckSteps = 16

// parMatvecMinRows is the dimension from which Options.MatvecWorkers = 0
// turns the parallel matvec on. Below it the goroutine fork/join costs
// more than the row sweep saves.
const parMatvecMinRows = 4096

// matvecWorkers resolves Options.MatvecWorkers against the dimension
// into a ParMulVec workers argument (1 = serial, <= 0 = GOMAXPROCS).
func (o Options) matvecWorkers(n int) int {
	if o.MatvecWorkers != 0 {
		return o.MatvecWorkers
	}
	if n >= parMatvecMinRows {
		return 0
	}
	return 1
}

func (o Options) withDefaults(n int) Options {
	if o.MaxSteps <= 0 {
		if o.BlockSize > 1 {
			o.MaxSteps = 120 // the projected solve is dense in block mode
		} else {
			o.MaxSteps = 300
		}
	}
	if o.MaxSteps > n {
		o.MaxSteps = n
	}
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.MaxRestarts <= 0 {
		o.MaxRestarts = 8
	}
	return o
}

// LargestDeflated computes the largest eigenvalue and a corresponding unit
// eigenvector of op restricted to the orthogonal complement of the deflate
// vectors (which must each be unit length and mutually orthogonal). With an
// empty deflation set it is a plain symmetric Lanczos extremal solve.
//
// The method is Lanczos with full reorthogonalization (each new Krylov
// vector is re-orthogonalized against every stored basis vector and every
// deflation vector), restarted from the best Ritz vector until the residual
// ‖op·x − θx‖ falls below Tol·|θ| or MaxRestarts cycles elapse.
func LargestDeflated(op Operator, deflate [][]float64, opts Options) (float64, []float64, error) {
	n := op.N()
	if n == 0 {
		return 0, nil, errors.New("eigen: empty operator")
	}
	if len(deflate) >= n {
		return 0, nil, fmt.Errorf("eigen: %d deflation vectors leave no residual space in dimension %d", len(deflate), n)
	}
	opts = opts.withDefaults(n)
	if opts.MaxSteps > n-len(deflate) {
		opts.MaxSteps = n - len(deflate)
	}
	if opts.Fault.Active(fault.EigenNoConverge) {
		// Simulated non-convergence: fail at solve entry exactly as an
		// exhausted restart budget would, so the caller's fallback chain
		// is exercised end to end.
		return 0, nil, &NoConvergeError{Restarts: opts.MaxRestarts, Injected: true}
	}
	if opts.BlockSize > 1 {
		return largestDeflatedBlock(op, deflate, opts)
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	start := make([]float64, n)
	for i := range start {
		start[i] = rng.NormFloat64()
	}

	project := func(x []float64) {
		for _, d := range deflate {
			sparse.Axpy(-sparse.Dot(d, x), d, x)
		}
	}

	rec := obs.OrNop(opts.Rec)
	cycles := 0
	defer func() {
		// Cycles beyond the first are restarts (the paper's solver
		// rarely needs any on netlist-sized Laplacians).
		rec.Count("restarts", int64(cycles-1))
		rec.Metrics().Counter("eigen.restarts").Add(int64(cycles - 1))
	}()

	var (
		theta    float64
		ritz     []float64
		residual = math.Inf(1)
	)
	x := start
	for cycle := 0; cycle < opts.MaxRestarts; cycle++ {
		if err := ctxErr(opts.Ctx); err != nil {
			return 0, nil, err
		}
		cycles++
		csp := rec.StartSpan("lanczos-cycle")
		th, v, res, cst, err := lanczosCycle(op, x, project, opts, rng)
		csp.Count("steps", int64(cst.steps))
		csp.Count("matvecs", int64(cst.matvecs))
		csp.End()
		met := rec.Metrics()
		met.Counter("eigen.matvecs").Add(int64(cst.matvecs))
		met.Counter("eigen.matvec.rows").Add(int64(cst.matvecs) * int64(n))
		met.Counter("eigen.reorth.skipped").Add(int64(cst.reorthSkipped))
		met.Counter("eigen.reorth.forced").Add(int64(cst.reorthForced))
		if err != nil {
			return 0, nil, err
		}
		theta, ritz, residual = th, v, res
		if residual <= opts.Tol*math.Max(math.Abs(theta), 1) {
			if err := checkFinitePair(theta, ritz, cycle); err != nil {
				return theta, ritz, err
			}
			return theta, ritz, nil
		}
		x = ritz // restart from the best Ritz vector
	}
	if residual <= 1e3*opts.Tol*math.Max(math.Abs(theta), 1) {
		// Close enough for a combinatorial consumer: the sorted order of the
		// eigenvector entries is what partitioning uses.
		if err := checkFinitePair(theta, ritz, opts.MaxRestarts); err != nil {
			return theta, ritz, err
		}
		return theta, ritz, nil
	}
	return theta, ritz, &NoConvergeError{Residual: residual, Restarts: opts.MaxRestarts}
}

// cycleStats aggregates the per-cycle work counters the restart loop
// feeds into spans and the metrics registry.
type cycleStats struct {
	steps         int // Krylov steps taken
	matvecs       int // operator applications (steps + residual checks)
	reorthSkipped int // selective steps where the ω-monitor skipped full reorth
	reorthForced  int // selective steps where it triggered full reorth
}

// lanczosCycle runs one restart cycle from the given starting vector and
// returns the best Ritz pair, its residual norm, and the cycle's work
// counters.
func lanczosCycle(op Operator, start []float64, project func([]float64), opts Options, rng *rand.Rand) (float64, []float64, float64, cycleStats, error) {
	n := op.N()
	var st cycleStats
	basis := make([][]float64, 0, opts.MaxSteps)
	alpha := make([]float64, 0, opts.MaxSteps)
	beta := make([]float64, 0, opts.MaxSteps)
	workers := opts.matvecWorkers(n)
	selective := opts.selectiveReorth(n)
	var mon *omegaMonitor
	if selective {
		mon = newOmegaMonitor(opts.MaxSteps, n)
	}

	v := append([]float64(nil), start...)
	project(v)
	if sparse.Normalize(v) == 0 {
		// Start vector lies entirely in the deflated space; draw a random one.
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		project(v)
		if sparse.Normalize(v) == 0 {
			return 0, nil, 0, st, errors.New("eigen: cannot find a starting vector outside the deflation space")
		}
	}
	basis = append(basis, v)

	w := make([]float64, n)
	// Full reorthogonalization, twice for stability ("twice is enough").
	fullReorth := func() {
		for pass := 0; pass < 2; pass++ {
			for _, b := range basis {
				sparse.Axpy(-sparse.Dot(b, w), b, w)
			}
			project(w)
		}
	}
	// In selective mode a triggered cleanup also covers the following
	// step: ω estimates for the in-between vector are unreliable until
	// two consecutive vectors are clean.
	reorthNext := false
	for j := 0; j < opts.MaxSteps; j++ {
		if opts.Ctx != nil && j%cancelCheckSteps == cancelCheckSteps-1 {
			if err := opts.Ctx.Err(); err != nil {
				return 0, nil, 0, st, err
			}
		}
		vj := basis[j]
		opMulVec(op, w, vj, workers)
		st.matvecs++
		project(w)
		a := sparse.Dot(vj, w)
		alpha = append(alpha, a)
		sparse.Axpy(-a, vj, w)
		if j > 0 {
			sparse.Axpy(-beta[j-1], basis[j-1], w)
		}
		if !selective {
			fullReorth()
		} else {
			tentative := sparse.Norm2(w)
			degenerate := tentative <= 1e-14*(math.Abs(a)+1)
			if mon.advance(alpha, beta, tentative) > omegaThreshold || reorthNext || degenerate {
				if !reorthNext {
					reorthNext = true
				} else {
					reorthNext = false
				}
				fullReorth()
				mon.reset()
				st.reorthForced++
			} else {
				project(w)
				st.reorthSkipped++
			}
		}
		st.steps++
		bnorm := sparse.Norm2(w)
		if bnorm <= 1e-14*(math.Abs(a)+1) || j == opts.MaxSteps-1 {
			break // invariant subspace found or step budget exhausted
		}
		beta = append(beta, bnorm)
		next := make([]float64, n)
		copy(next, w)
		sparse.Scale(1/bnorm, next)
		basis = append(basis, next)
	}

	m := len(alpha)
	vals, z, err := SymTridiagonal(alpha[:m], beta[:min(len(beta), m-1)], true)
	if err != nil {
		return 0, nil, 0, st, err
	}
	// Largest Ritz value is the last (ascending order).
	k := m - 1
	theta := vals[k]
	ritz := make([]float64, n)
	for j := 0; j < m; j++ {
		sparse.Axpy(z[j][k], basis[j], ritz)
	}
	project(ritz)
	sparse.Normalize(ritz)
	// True residual ‖op·x − θx‖ for the assembled Ritz vector.
	opMulVec(op, w, ritz, workers)
	st.matvecs++
	project(w)
	sparse.Axpy(-theta, ritz, w)
	return theta, ritz, sparse.Norm2(w), st, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
