package eigen

import (
	"errors"
	"math"
	"testing"

	"igpart/internal/fault"
	"igpart/internal/obs"
	"igpart/internal/sparse"
)

// mustInjector builds an injector for one point, failing the test on a
// bad rule.
func mustInjector(t *testing.T, reg *obs.Registry, r fault.Rule) *fault.Injector {
	t.Helper()
	in, err := fault.New(1, reg, r)
	if err != nil {
		t.Fatalf("fault.New: %v", err)
	}
	return in
}

// ringLaplacian builds the Laplacian of a cycle graph on n vertices —
// large enough to exercise the iterative path, with a known λ₂ =
// 2(1−cos(2π/n)).
func ringLaplacian(n int) *sparse.SymCSR {
	b := sparse.NewCSRBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, (i+1)%n, 1)
	}
	return sparse.Laplacian(b.Build())
}

func TestFiedlerRungLanczosOnCleanRun(t *testing.T) {
	q := ringLaplacian(100)
	res, err := Fiedler(q, Options{})
	if err != nil {
		t.Fatalf("Fiedler: %v", err)
	}
	if res.Rung != RungLanczos || res.Dense {
		t.Fatalf("rung = %q dense=%v, want %q iterative", res.Rung, res.Dense, RungLanczos)
	}
}

func TestFiedlerRetryRungAfterSingleNoConverge(t *testing.T) {
	reg := new(obs.Registry)
	inj := mustInjector(t, reg, fault.Rule{Point: fault.EigenNoConverge, Limit: 1})
	q := ringLaplacian(100)
	res, err := Fiedler(q, Options{Fault: inj, Rec: obs.NewTrace("t")})
	if err != nil {
		t.Fatalf("Fiedler with limit=1 injection: %v", err)
	}
	if res.Rung != RungLanczosRetry {
		t.Fatalf("rung = %q, want %q", res.Rung, RungLanczosRetry)
	}
	snap := reg.Snapshot()
	if snap.Counters["fault.fired.eigen.noconverge"] != 1 {
		t.Fatalf("fired counter = %d, want 1", snap.Counters["fault.fired.eigen.noconverge"])
	}
	clean, err := Fiedler(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Lambda2-clean.Lambda2) > 1e-6 {
		t.Fatalf("retry rung λ₂ = %g, clean λ₂ = %g", res.Lambda2, clean.Lambda2)
	}
}

func TestFiedlerJacobiFallbackRung(t *testing.T) {
	reg := new(obs.Registry)
	inj := mustInjector(t, reg, fault.Rule{Point: fault.EigenNoConverge})
	tr := obs.NewTrace("t")
	q := ringLaplacian(100) // > denseCutoff, ≤ default dense fallback cutoff
	res, err := Fiedler(q, Options{Fault: inj, Rec: tr})
	if err != nil {
		t.Fatalf("Fiedler with always-on injection: %v", err)
	}
	if res.Rung != RungJacobiFallback || !res.Dense {
		t.Fatalf("rung = %q dense=%v, want %q dense", res.Rung, res.Dense, RungJacobiFallback)
	}
	want := 2 * (1 - math.Cos(2*math.Pi/100))
	if math.Abs(res.Lambda2-want) > 1e-9 {
		t.Fatalf("fallback λ₂ = %g, want %g", res.Lambda2, want)
	}
	mreg := tr.Metrics().Snapshot()
	if mreg.Counters["eigen.fallback_retries"] != 1 || mreg.Counters["eigen.fallback_jacobi"] != 1 {
		t.Fatalf("fallback counters = %+v, want 1 retry / 1 jacobi", mreg.Counters)
	}
	// Both iterative rungs armed the injection point.
	if got := inj.Fires(fault.EigenNoConverge); got != 2 {
		t.Fatalf("injection fired %d times, want 2 (initial + retry)", got)
	}
}

func TestFiedlerFallbackRespectsCutoff(t *testing.T) {
	inj := mustInjector(t, nil, fault.Rule{Point: fault.EigenNoConverge})
	q := ringLaplacian(100)

	// Cutoff below n: the chain must end in NoConvergeError.
	_, err := Fiedler(q, Options{Fault: inj, DenseFallbackCutoff: -1})
	var nc *NoConvergeError
	if !errors.As(err, &nc) || !nc.Injected {
		t.Fatalf("disabled fallback: err = %v, want injected NoConvergeError", err)
	}

	// Explicit cutoff covering n: rescue succeeds.
	inj2 := mustInjector(t, nil, fault.Rule{Point: fault.EigenNoConverge})
	res, err := Fiedler(q, Options{Fault: inj2, DenseFallbackCutoff: 100})
	if err != nil || res.Rung != RungJacobiFallback {
		t.Fatalf("explicit cutoff: res=%+v err=%v", res.Rung, err)
	}
}

// nanOperator yields NaN on every matvec, simulating numerically
// poisoned input reaching the solver.
type nanOperator struct{ n int }

func (o nanOperator) N() int { return o.n }
func (o nanOperator) MulVec(y, _ []float64) {
	for i := range y {
		y[i] = math.NaN()
	}
}

func TestLargestDeflatedGuardsNonFiniteOutput(t *testing.T) {
	_, _, err := LargestDeflated(nanOperator{n: 64}, nil, Options{})
	if err == nil {
		t.Fatal("NaN operator converged")
	}
	var nc *NoConvergeError
	if !errors.As(err, &nc) {
		t.Fatalf("err = %v, want NoConvergeError so the fallback chain trips", err)
	}
}

func TestBlockLanczosInjectedNoConverge(t *testing.T) {
	inj := mustInjector(t, nil, fault.Rule{Point: fault.EigenNoConverge})
	q := ringLaplacian(100)
	res, err := Fiedler(q, Options{Fault: inj, BlockSize: 4})
	if err != nil || res.Rung != RungJacobiFallback {
		t.Fatalf("block-mode fallback: rung=%q err=%v", res.Rung, err)
	}
}

func TestSmallestKDenseRescue(t *testing.T) {
	inj := mustInjector(t, nil, fault.Rule{Point: fault.EigenNoConverge})
	q := ringLaplacian(100)
	vals, vecs, err := SmallestK(q, 3, Options{Fault: inj})
	if err != nil {
		t.Fatalf("SmallestK under injection: %v", err)
	}
	clean, cleanVecs, err := SmallestK(q, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Abs(vals[i]-clean[i]) > 1e-6 {
			t.Fatalf("rescued vals = %v, clean = %v", vals, clean)
		}
	}
	if len(vecs) != len(cleanVecs) {
		t.Fatalf("got %d vectors, want %d", len(vecs), len(cleanVecs))
	}
	if err := CheckOrthonormal(vecs, 1e-8); err != nil {
		t.Fatalf("rescued vectors: %v", err)
	}
}

func TestRetrySeedChangesStream(t *testing.T) {
	if retrySeed(0) == 0 || retrySeed(1) == 1 || retrySeed(0) == retrySeed(1) {
		t.Fatalf("retrySeed not a proper derivation: %d %d", retrySeed(0), retrySeed(1))
	}
}

// TestFiedlerRetryRungRescuesAboveDenseCutoff closes the fallback
// chain's previously untested middle rung at scale: at n=600 the
// instance is past defaultDenseFallback (512), so the Jacobi rescue is
// out of reach and a first-attempt non-convergence can only be saved by
// the reseeded retry rung itself.
func TestFiedlerRetryRungRescuesAboveDenseCutoff(t *testing.T) {
	const n = 600 // > defaultDenseFallback
	reg := new(obs.Registry)
	inj := mustInjector(t, reg, fault.Rule{Point: fault.EigenNoConverge, Limit: 1})
	q := ringLaplacian(n)
	res, err := Fiedler(q, Options{Fault: inj, Rec: obs.NewTrace("t")})
	if err != nil {
		t.Fatalf("Fiedler at n=%d with limit=1 injection: %v", n, err)
	}
	if res.Rung != RungLanczosRetry || res.Dense {
		t.Fatalf("rung = %q dense=%v, want %q iterative", res.Rung, res.Dense, RungLanczosRetry)
	}
	want := 2 * (1 - math.Cos(2*math.Pi/n))
	if math.Abs(res.Lambda2-want) > 1e-6 {
		t.Fatalf("retry-rung λ₂ = %g, analytic = %g", res.Lambda2, want)
	}

	// With unlimited injection the same instance must fail outright:
	// there is no rung past the retry at this size, which is exactly
	// what makes the rescue above attributable to the retry rung.
	inj2 := mustInjector(t, nil, fault.Rule{Point: fault.EigenNoConverge})
	_, err = Fiedler(q, Options{Fault: inj2})
	var nc *NoConvergeError
	if !errors.As(err, &nc) {
		t.Fatalf("unlimited injection at n=%d: got %v, want NoConvergeError (Jacobi rung must be out of reach)", n, err)
	}
}
