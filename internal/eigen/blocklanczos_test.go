package eigen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"igpart/internal/sparse"
)

func TestBlockLanczosMatchesJacobi(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(25)
		m := sparse.NewSymDense(n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		wantVals, _, err := Jacobi(m, 0)
		if err != nil {
			return false
		}
		for _, bs := range []int{2, 4} {
			got, vec, err := LargestDeflated(m, nil, Options{Seed: seed, BlockSize: bs})
			if err != nil {
				return false
			}
			want := wantVals[n-1]
			if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				return false
			}
			if Residual(m, got, vec) > 1e-5*(1+math.Abs(got)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBlockLanczosDegenerateEigenvalue(t *testing.T) {
	// A matrix whose top eigenvalue has multiplicity 3 (block diagonal with
	// three identical 2×2 blocks plus a low-rank tail). Block Lanczos must
	// still return a valid top eigenpair.
	n := 20
	m := sparse.NewSymDense(n)
	for b := 0; b < 3; b++ {
		i := 2 * b
		m.Set(i, i, 4)
		m.Set(i+1, i+1, 4)
		m.Set(i, i+1, 1) // eigenvalues 3 and 5, three copies of each
	}
	for i := 6; i < n; i++ {
		m.Set(i, i, float64(i%3)) // small filler spectrum
	}
	got, vec, err := LargestDeflated(m, nil, Options{Seed: 3, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-5) > 1e-8 {
		t.Errorf("top eigenvalue = %v, want 5", got)
	}
	if r := Residual(m, got, vec); r > 1e-7 {
		t.Errorf("residual = %v", r)
	}
}

func TestBlockLanczosRespectsDeflation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 18
	m := sparse.NewSymDense(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	vals, vecs, err := Jacobi(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	top := make([]float64, n)
	for i := range top {
		top[i] = vecs[i][n-1]
	}
	got, vec, err := LargestDeflated(m, [][]float64{top}, Options{Seed: 2, BlockSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-vals[n-2]) > 1e-6*(1+math.Abs(vals[n-2])) {
		t.Errorf("second-largest = %v, want %v", got, vals[n-2])
	}
	if math.Abs(sparse.Dot(vec, top)) > 1e-6 {
		t.Error("returned vector not orthogonal to the deflated one")
	}
}

func TestBlockFiedlerPathGraph(t *testing.T) {
	// End-to-end: block-mode Fiedler on a path graph matches the known λ2.
	n := 150
	q := pathLaplacian(n)
	res, err := Fiedler(q, Options{Seed: 7, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * (1 - math.Cos(math.Pi/float64(n)))
	if math.Abs(res.Lambda2-want) > 1e-5*(1+want) {
		t.Errorf("λ2 = %v, want %v", res.Lambda2, want)
	}
}

func TestBlockLanczosDisconnectedLaplacian(t *testing.T) {
	// Three disjoint triangles: λ2 of the Laplacian is 0 with multiplicity
	// 2 after deflating the constant vector — the degenerate case block
	// methods exist for.
	b := sparse.NewCSRBuilder(9)
	for c := 0; c < 3; c++ {
		base := c * 3
		b.Add(base, base+1, 1)
		b.Add(base+1, base+2, 1)
		b.Add(base, base+2, 1)
	}
	q := sparse.Laplacian(b.Build())
	sigma := GershgorinUpper(q)
	ones := make([]float64, 9)
	for i := range ones {
		ones[i] = 1.0 / 3.0
	}
	mu, vec, err := LargestDeflated(&shifted{q: q, sigma: sigma}, [][]float64{ones}, Options{Seed: 1, BlockSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sigma-mu) > 1e-7 {
		t.Errorf("λ2 = %v, want 0", sigma-mu)
	}
	if r := Residual(q, 0, vec); r > 1e-6 {
		t.Errorf("residual = %v", r)
	}
}
