package eigen

import (
	"fmt"
	"math"
)

// ReorthMode selects the reorthogonalization strategy of the Lanczos
// engines. Full reorthogonalization re-projects every new Krylov vector
// against the whole basis (O(n·j) per step j) — robust but the dominant
// cost at scale. Selective mode tracks the estimated loss of
// orthogonality with Simon's ω-recurrence and re-projects only when the
// estimate crosses √ε, skipping the O(n·j) work on the (typically vast)
// majority of steps. Correctness never rests on the estimate: restart
// acceptance always checks the true residual ‖op·x − θx‖, so a degraded
// basis can cost extra restarts but never a wrong eigenpair, and the
// Fiedler retry rung escalates to full reorthogonalization.
type ReorthMode int

const (
	// ReorthAuto (the default) picks per solve: selective once the
	// dimension reaches ReorthAutoCutoff, full below it — small solves
	// keep their historical bit-exact behavior, large solves get the
	// O(n·j)→O(n) step cost reduction.
	ReorthAuto ReorthMode = iota
	// ReorthFull always re-projects against the whole basis ("twice is
	// enough"), the historical behavior.
	ReorthFull
	// ReorthSelective always runs the ω-monitored selective scheme.
	ReorthSelective
)

// ReorthAutoCutoff is the dimension from which ReorthAuto selects the
// selective scheme.
const ReorthAutoCutoff = 1024

// String implements fmt.Stringer, using the -reorth flag spellings.
func (m ReorthMode) String() string {
	switch m {
	case ReorthAuto:
		return "auto"
	case ReorthFull:
		return "full"
	case ReorthSelective:
		return "selective"
	default:
		return fmt.Sprintf("ReorthMode(%d)", int(m))
	}
}

// ParseReorthMode maps the flag spellings "auto", "full" and
// "selective" (empty = auto) to a ReorthMode.
func ParseReorthMode(s string) (ReorthMode, error) {
	switch s {
	case "", "auto":
		return ReorthAuto, nil
	case "full":
		return ReorthFull, nil
	case "selective":
		return ReorthSelective, nil
	default:
		return ReorthAuto, fmt.Errorf("eigen: unknown reorth mode %q (want auto, full or selective)", s)
	}
}

// selectiveReorth resolves Options.ReorthMode against the dimension.
func (o Options) selectiveReorth(n int) bool {
	switch o.ReorthMode {
	case ReorthFull:
		return false
	case ReorthSelective:
		return true
	default:
		return n >= ReorthAutoCutoff
	}
}

// machEps is the float64 machine epsilon (2⁻⁵²).
const machEps = 2.220446049250313e-16

// omegaThreshold is the loss-of-orthogonality bound √ε: semiorthogonality
// |vᵢ·vⱼ| ≤ √ε is the weakest condition under which the Ritz values of
// the tridiagonal projection still carry full working accuracy (Simon
// 1984), so the monitor triggers reorthogonalization exactly when the
// estimate crosses it.
var omegaThreshold = math.Sqrt(machEps)

// omegaMonitor maintains Simon's ω-recurrence, a running estimate of the
// inner products ω_{j,i} ≈ v_j·v_i between Krylov basis vectors, driven
// only by the scalars (α, β) the iteration already computes — O(j) per
// step instead of the O(n·j) of measuring the products. The recurrence
// mirrors the three-term Lanczos relation:
//
//	β_j·ω_{j+1,i} = β_i·ω_{j,i+1} + (α_i − α_j)·ω_{j,i}
//	              + β_{i−1}·ω_{j,i−1} − β_{j−1}·ω_{j−1,i} + O(ε)
//
// seeded with ω_{j,j} = 1 and ω_{j+1,j} = ε·√n for adjacent pairs.
type omegaMonitor struct {
	psi  float64 // adjacent-pair seed ε·√n
	prev []float64
	cur  []float64
	next []float64
}

// newOmegaMonitor sizes the monitor for up to maxSteps Krylov steps on an
// n-dimensional operator.
func newOmegaMonitor(maxSteps, n int) *omegaMonitor {
	m := &omegaMonitor{
		psi:  machEps * math.Sqrt(float64(n)),
		prev: make([]float64, 0, maxSteps+2),
		cur:  make([]float64, 1, maxSteps+2),
		next: make([]float64, 0, maxSteps+2),
	}
	m.cur[0] = 1 // ω_{0,0}
	return m
}

// advance pushes the recurrence one step. It is called at Krylov step j
// with the coefficient history alpha[0..j], beta[0..j-1] and the
// tentative β_j (the norm of the candidate vector before any
// reorthogonalization), and returns the resulting estimate
// max_{i ≤ j−1} |ω_{j+1,i}| — the monitor's bound on how far the new
// vector has drifted from the older basis. A degenerate β_j returns +Inf
// so the caller reorthogonalizes before trusting anything.
func (m *omegaMonitor) advance(alpha, beta []float64, betaJ float64) float64 {
	j := len(alpha) - 1
	maxOmega := 0.0
	m.next = m.next[:j+2]
	if betaJ > 0 && !math.IsInf(betaJ, 0) && !math.IsNaN(betaJ) {
		aj := alpha[j]
		var betaJm1 float64
		if j > 0 {
			betaJm1 = beta[j-1]
		}
		for i := 0; i <= j-1; i++ {
			t := beta[i]*m.cur[i+1] + (alpha[i]-aj)*m.cur[i] - betaJm1*m.prev[i]
			if i > 0 {
				t += beta[i-1] * m.cur[i-1]
			}
			w := (t + math.Copysign(machEps*(beta[i]+betaJ), t)) / betaJ
			m.next[i] = w
			if a := math.Abs(w); a > maxOmega {
				maxOmega = a
			}
		}
	} else {
		for i := 0; i <= j-1; i++ {
			m.next[i] = omegaThreshold // unknown: force a cleanup
		}
		maxOmega = math.Inf(1)
	}
	m.next[j] = m.psi
	m.next[j+1] = 1
	m.prev, m.cur, m.next = m.cur, m.next, m.prev[:0]
	return maxOmega
}

// reset records that the newest basis vector has just been fully
// reorthogonalized: its estimated inner products against the older basis
// drop back to the round-off floor.
func (m *omegaMonitor) reset() {
	for i := 0; i < len(m.cur)-1; i++ {
		m.cur[i] = m.psi
	}
}
