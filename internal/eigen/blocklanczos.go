package eigen

import (
	"errors"
	"math"
	"math/rand"

	"igpart/internal/obs"
	"igpart/internal/sparse"
)

// This file implements block Lanczos — the solver family the paper's
// footnote 1 actually uses ("the block Lanczos algorithm [12]"). With
// block size b the method expands the Krylov basis b vectors at a time,
// which converges reliably when the wanted eigenvalue is clustered or (as
// with the λ=0 eigenvalue of a disconnected Laplacian) degenerate, where
// single-vector Lanczos may stall. Block size ≤ 1 selects the simple
// iteration in lanczos.go; Options.BlockSize picks the engine.

// blockCycle runs one restarted block-Lanczos cycle: it grows an
// orthonormal basis block by block (deflation respected), assembles the
// projected matrix T = BᵀAB, and returns the top Ritz pair with its true
// residual.
//
// Reorthogonalization follows Options.ReorthMode. Full mode projects
// every new vector against the whole basis twice. Selective mode is the
// block-structured variant of the scheme in lanczos.go: by the block
// three-term recurrence a new image is already orthogonal to all but the
// preceding block and the block under construction, so only those are
// projected out, and a measured
// drift probe (one O(n) dot against the oldest basis vector, the
// direction round-off drifts toward first) escalates to a full cleanup
// whenever semiorthogonality √ε is lost.
func blockCycle(op Operator, start []float64, project func([]float64), opts Options, rng *rand.Rand) (float64, []float64, float64, cycleStats, error) {
	n := op.N()
	bs := opts.BlockSize
	var st cycleStats
	workers := opts.matvecWorkers(n)
	selective := opts.selectiveReorth(n)

	var basis [][]float64
	blockLo := 0 // start of the block currently being expanded from

	// orthonormalize projects v against the deflation space and the basis
	// and appends it when it survives.
	orthonormalize := func(v []float64, threshold float64) bool {
		project(v)
		full := func() {
			for pass := 0; pass < 2; pass++ {
				for _, u := range basis {
					sparse.Axpy(-sparse.Dot(u, v), u, v)
				}
				project(v)
			}
		}
		if !selective || blockLo == 0 {
			full()
		} else {
			for pass := 0; pass < 2; pass++ {
				for _, u := range basis[blockLo:] {
					sparse.Axpy(-sparse.Dot(u, v), u, v)
				}
				project(v)
			}
			nrm := sparse.Norm2(v)
			if nrm > threshold && math.Abs(sparse.Dot(basis[0], v))/nrm > omegaThreshold {
				full()
				st.reorthForced++
			} else {
				st.reorthSkipped += blockLo
			}
		}
		if sparse.Normalize(v) <= threshold {
			return false
		}
		basis = append(basis, v)
		return true
	}

	// Initial block: the restart vector (if any) plus random fill.
	if start != nil {
		orthonormalize(append([]float64(nil), start...), 1e-12)
	}
	for len(basis) < bs {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		if !orthonormalize(v, 1e-12) && len(basis) == 0 {
			return 0, nil, 0, st, errors.New("eigen: block Lanczos could not build a starting block")
		}
	}

	// Expand: apply the operator to the newest block, orthogonalize the
	// images, stop at an invariant subspace or the step budget.
	for len(basis) < opts.MaxSteps {
		if err := ctxErr(opts.Ctx); err != nil {
			return 0, nil, 0, st, err
		}
		hi := len(basis)
		grew := false
		w := make([]float64, n)
		for j := blockLo; j < hi && len(basis) < opts.MaxSteps; j++ {
			opMulVec(op, w, basis[j], workers)
			st.matvecs++
			if orthonormalize(append([]float64(nil), w...), 1e-10) {
				grew = true
			}
		}
		if !grew {
			break
		}
		blockLo = hi
	}

	// Projected eigenproblem T = BᵀAB, solved densely (m ≤ MaxSteps).
	m := len(basis)
	if m == 0 {
		return 0, nil, 0, st, errors.New("eigen: empty block Lanczos basis")
	}
	st.steps = m
	img := make([][]float64, m)
	for j := 0; j < m; j++ {
		img[j] = make([]float64, n)
		opMulVec(op, img[j], basis[j], workers)
		st.matvecs++
		project(img[j])
	}
	T := sparse.NewSymDense(m)
	for i := 0; i < m; i++ {
		for j := i; j < m; j++ {
			T.Set(i, j, sparse.Dot(basis[i], img[j]))
		}
	}
	vals, z, err := Jacobi(T, 0)
	if err != nil {
		return 0, nil, 0, st, err
	}
	theta := vals[m-1]
	ritz := make([]float64, n)
	for j := 0; j < m; j++ {
		sparse.Axpy(z[j][m-1], basis[j], ritz)
	}
	project(ritz)
	sparse.Normalize(ritz)
	w := make([]float64, n)
	opMulVec(op, w, ritz, workers)
	st.matvecs++
	project(w)
	sparse.Axpy(-theta, ritz, w)
	return theta, ritz, sparse.Norm2(w), st, nil
}

// largestDeflatedBlock is the block-mode counterpart of LargestDeflated.
func largestDeflatedBlock(op Operator, deflate [][]float64, opts Options) (float64, []float64, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	project := func(x []float64) {
		for _, d := range deflate {
			sparse.Axpy(-sparse.Dot(d, x), d, x)
		}
	}
	rec := obs.OrNop(opts.Rec)
	cycles := 0
	defer func() {
		rec.Count("restarts", int64(cycles-1))
		rec.Metrics().Counter("eigen.restarts").Add(int64(cycles - 1))
	}()
	var (
		theta    float64
		ritz     []float64
		residual = math.Inf(1)
	)
	var start []float64
	for cycle := 0; cycle < opts.MaxRestarts; cycle++ {
		if err := ctxErr(opts.Ctx); err != nil {
			return 0, nil, err
		}
		cycles++
		csp := rec.StartSpan("block-lanczos-cycle")
		csp.Count("block", int64(opts.BlockSize))
		th, v, res, cst, err := blockCycle(op, start, project, opts, rng)
		csp.Count("matvecs", int64(cst.matvecs))
		csp.End()
		met := rec.Metrics()
		met.Counter("eigen.matvecs").Add(int64(cst.matvecs))
		met.Counter("eigen.matvec.rows").Add(int64(cst.matvecs) * int64(op.N()))
		met.Counter("eigen.reorth.skipped").Add(int64(cst.reorthSkipped))
		met.Counter("eigen.reorth.forced").Add(int64(cst.reorthForced))
		if err != nil {
			return 0, nil, err
		}
		theta, ritz, residual = th, v, res
		if residual <= opts.Tol*math.Max(math.Abs(theta), 1) {
			if err := checkFinitePair(theta, ritz, cycle); err != nil {
				return theta, ritz, err
			}
			return theta, ritz, nil
		}
		start = ritz
	}
	if residual <= 1e3*opts.Tol*math.Max(math.Abs(theta), 1) {
		if err := checkFinitePair(theta, ritz, opts.MaxRestarts); err != nil {
			return theta, ritz, err
		}
		return theta, ritz, nil
	}
	return theta, ritz, &NoConvergeError{Residual: residual, Restarts: opts.MaxRestarts}
}
