package eigen

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"igpart/internal/sparse"
)

func TestSymTridiagonalSmall(t *testing.T) {
	// T = [[2,1],[1,2]] has eigenvalues 1 and 3 with known eigenvectors.
	vals, z, err := SymTridiagonal([]float64{2, 2}, []float64{1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-12 || math.Abs(vals[1]-3) > 1e-12 {
		t.Fatalf("vals = %v, want [1 3]", vals)
	}
	// Eigenvector for λ=1 is (1,-1)/√2 up to sign.
	if math.Abs(math.Abs(z[0][0])-1/math.Sqrt2) > 1e-12 {
		t.Errorf("z = %v", z)
	}
	if z[0][0]*z[1][0] > 0 {
		t.Errorf("λ=1 eigenvector should have opposite signs: %v", z)
	}
}

func TestSymTridiagonalDiagonal(t *testing.T) {
	vals, z, err := SymTridiagonal([]float64{5, -1, 3}, []float64{0, 0}, true)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, 3, 5}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
	if z == nil {
		t.Fatal("no vectors returned")
	}
}

func TestSymTridiagonalEdgeCases(t *testing.T) {
	if vals, _, err := SymTridiagonal(nil, nil, true); err != nil || vals != nil {
		t.Errorf("empty: vals=%v err=%v", vals, err)
	}
	vals, _, err := SymTridiagonal([]float64{7}, nil, true)
	if err != nil || len(vals) != 1 || vals[0] != 7 {
		t.Errorf("1x1: vals=%v err=%v", vals, err)
	}
	if _, _, err := SymTridiagonal([]float64{1, 2}, []float64{1, 2, 3}, false); err == nil {
		t.Error("accepted wrong subdiagonal length")
	}
}

// randomTridiag builds a random symmetric tridiagonal system.
func randomTridiag(rng *rand.Rand, n int) (d, e []float64) {
	d = make([]float64, n)
	e = make([]float64, n-1)
	for i := range d {
		d[i] = rng.NormFloat64() * 3
	}
	for i := range e {
		e[i] = rng.NormFloat64()
	}
	return d, e
}

func TestSymTridiagonalMatchesJacobi(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(14)
		d, e := randomTridiag(rng, n)
		got, z, err := SymTridiagonal(d, e, true)
		if err != nil {
			return false
		}
		m := sparse.NewSymDense(n)
		for i := 0; i < n; i++ {
			m.Set(i, i, d[i])
		}
		for i := 0; i < n-1; i++ {
			m.Set(i, i+1, e[i])
		}
		want, _, err := Jacobi(m, 0)
		if err != nil {
			return false
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
				return false
			}
		}
		// Residual check: ‖T z_k − λ_k z_k‖ small for each k.
		for k := 0; k < n; k++ {
			x := make([]float64, n)
			for i := 0; i < n; i++ {
				x[i] = z[i][k]
			}
			y := make([]float64, n)
			m.MulVec(y, x)
			sparse.Axpy(-got[k], x, y)
			if sparse.Norm2(y) > 1e-8*(1+math.Abs(got[k])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestJacobiKnownMatrix(t *testing.T) {
	// Path graph P3 Laplacian: eigenvalues 0, 1, 3.
	a := sparse.NewSymDense(3)
	a.Set(0, 1, 1)
	a.Set(1, 2, 1)
	q := sparse.DenseLaplacian(a)
	vals, vecs, err := Jacobi(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 3}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-10 {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
	// Fiedler vector of P3 is (1,0,-1)/√2 up to sign.
	if math.Abs(vecs[1][1]) > 1e-10 {
		t.Errorf("middle component of Fiedler vector = %v, want 0", vecs[1][1])
	}
	if vecs[0][1]*vecs[2][1] >= 0 {
		t.Errorf("end components should have opposite signs: %v %v", vecs[0][1], vecs[2][1])
	}
}

func TestJacobiOrthonormality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		m := sparse.NewSymDense(n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		_, v, err := Jacobi(m, 0)
		if err != nil {
			return false
		}
		for a := 0; a < n; a++ {
			for b := a; b < n; b++ {
				s := 0.0
				for i := 0; i < n; i++ {
					s += v[i][a] * v[i][b]
				}
				want := 0.0
				if a == b {
					want = 1
				}
				if math.Abs(s-want) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLargestDeflatedMatchesJacobi(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		m := sparse.NewSymDense(n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		wantVals, _, err := Jacobi(m, 0)
		if err != nil {
			return false
		}
		got, vec, err := LargestDeflated(m, nil, Options{Seed: seed})
		if err != nil {
			return false
		}
		want := wantVals[n-1]
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			return false
		}
		// Residual check.
		y := make([]float64, n)
		m.MulVec(y, vec)
		sparse.Axpy(-got, vec, y)
		return sparse.Norm2(y) <= 1e-5*(1+math.Abs(got))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLargestDeflatedRespectsDeflation(t *testing.T) {
	// Deflating the top eigenvector must return the second-largest value.
	rng := rand.New(rand.NewSource(7))
	n := 16
	m := sparse.NewSymDense(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	vals, vecs, err := Jacobi(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	top := make([]float64, n)
	for i := range top {
		top[i] = vecs[i][n-1]
	}
	got, vec, err := LargestDeflated(m, [][]float64{top}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-vals[n-2]) > 1e-6*(1+math.Abs(vals[n-2])) {
		t.Errorf("second-largest = %v, want %v", got, vals[n-2])
	}
	if math.Abs(sparse.Dot(vec, top)) > 1e-6 {
		t.Errorf("returned vector not orthogonal to deflation: %v", sparse.Dot(vec, top))
	}
}

func TestLargestDeflatedErrors(t *testing.T) {
	if _, _, err := LargestDeflated(sparse.NewSymDense(0), nil, Options{}); err == nil {
		t.Error("accepted empty operator")
	}
	one := []float64{1}
	if _, _, err := LargestDeflated(sparse.NewSymDense(1), [][]float64{one}, Options{}); err == nil {
		t.Error("accepted full deflation")
	}
}

// pathLaplacian builds the Laplacian of a path graph on n vertices.
func pathLaplacian(n int) *sparse.SymCSR {
	b := sparse.NewCSRBuilder(n)
	for i := 0; i < n-1; i++ {
		b.Add(i, i+1, 1)
	}
	return sparse.Laplacian(b.Build())
}

func TestFiedlerPathGraph(t *testing.T) {
	// λ2 of path P_n is 2(1 − cos(π/n)); the Fiedler vector is monotone
	// along the path, so sorting it recovers the path order.
	for _, n := range []int{8, 40, 120} {
		q := pathLaplacian(n)
		res, err := Fiedler(q, Options{Seed: 3})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := 2 * (1 - math.Cos(math.Pi/float64(n)))
		if math.Abs(res.Lambda2-want) > 1e-5*(1+want) {
			t.Errorf("n=%d: λ2 = %v, want %v", n, res.Lambda2, want)
		}
		// Monotonicity (up to global sign).
		x := res.Vector
		asc, desc := true, true
		for i := 1; i < n; i++ {
			if x[i] < x[i-1] {
				asc = false
			}
			if x[i] > x[i-1] {
				desc = false
			}
		}
		if !asc && !desc {
			t.Errorf("n=%d: Fiedler vector of a path is not monotone", n)
		}
		if (n <= denseCutoff) != res.Dense {
			t.Errorf("n=%d: Dense=%v, cutoff=%d", n, res.Dense, denseCutoff)
		}
	}
}

func TestFiedlerDisconnected(t *testing.T) {
	// Two disjoint triangles: λ2 = 0 and the vector separates components.
	b := sparse.NewCSRBuilder(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}} {
		b.Add(e[0], e[1], 1)
	}
	q := sparse.Laplacian(b.Build())
	res, err := Fiedler(q, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Lambda2) > 1e-8 {
		t.Errorf("λ2 = %v, want 0 for disconnected graph", res.Lambda2)
	}
	// The λ2=0 eigenvector is constant on each component and the two
	// constants differ (it is orthogonal to the all-ones vector and unit
	// norm, so it cannot be globally constant).
	vA, vB := res.Vector[0], res.Vector[3]
	for _, i := range []int{1, 2} {
		if math.Abs(res.Vector[i]-vA) > 1e-8 {
			t.Errorf("component A not constant: %v", res.Vector)
		}
	}
	for _, i := range []int{4, 5} {
		if math.Abs(res.Vector[i]-vB) > 1e-8 {
			t.Errorf("component B not constant: %v", res.Vector)
		}
	}
	if math.Abs(vA-vB) < 1e-8 {
		t.Errorf("components not separated: %v", res.Vector)
	}
}

func TestFiedlerTwoCommunities(t *testing.T) {
	// Two dense 30-vertex clusters joined by one edge: sorting the Fiedler
	// vector must recover the planted split exactly.
	rng := rand.New(rand.NewSource(11))
	n := 60
	b := sparse.NewCSRBuilder(n)
	added := map[[2]int]bool{}
	addEdge := func(i, j int) {
		if i == j {
			return
		}
		if i > j {
			i, j = j, i
		}
		if !added[[2]int{i, j}] {
			added[[2]int{i, j}] = true
			b.Add(i, j, 1)
		}
	}
	for c := 0; c < 2; c++ {
		base := c * 30
		// random connected-ish dense cluster
		for i := 1; i < 30; i++ {
			addEdge(base+i, base+rng.Intn(i))
		}
		for k := 0; k < 120; k++ {
			addEdge(base+rng.Intn(30), base+rng.Intn(30))
		}
	}
	addEdge(0, 30)
	q := sparse.Laplacian(b.Build())
	res, err := Fiedler(q, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	type iv struct {
		i int
		v float64
	}
	order := make([]iv, n)
	for i := range order {
		order[i] = iv{i, res.Vector[i]}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].v < order[b].v })
	sides := map[bool]bool{}
	for _, o := range order[:30] {
		sides[o.i < 30] = true
	}
	if len(sides) != 1 {
		t.Error("Fiedler ordering mixed the two planted communities")
	}
}

func TestFiedlerTooSmall(t *testing.T) {
	if _, err := Fiedler(pathLaplacian(1), Options{}); err == nil {
		t.Error("accepted 1-vertex graph")
	}
}

func TestGershgorinUpper(t *testing.T) {
	q := pathLaplacian(10)
	bound := GershgorinUpper(q)
	vals, _, err := Jacobi(sparse.FromCSR(q), 0)
	if err != nil {
		t.Fatal(err)
	}
	if vals[len(vals)-1] > bound+1e-12 {
		t.Errorf("Gershgorin bound %v below λmax %v", bound, vals[len(vals)-1])
	}
	if bound > 4.0+1e-12 { // path Laplacian: max 2*degree = 4
		t.Errorf("bound too loose: %v", bound)
	}
}
