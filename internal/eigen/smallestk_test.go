package eigen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"igpart/internal/sparse"
)

func TestSmallestKMatchesJacobi(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		b := sparse.NewCSRBuilder(n)
		for e := 0; e < 3*n; e++ {
			b.Add(rng.Intn(n), rng.Intn(n), rng.Float64())
		}
		q := sparse.Laplacian(b.Build())
		k := 1 + rng.Intn(3)
		vals, vecs, err := SmallestK(q, k, Options{Seed: seed})
		if err != nil {
			return false
		}
		want, _, err := Jacobi(sparse.FromCSR(q), 0)
		if err != nil {
			return false
		}
		for j := 0; j < k; j++ {
			if math.Abs(vals[j]-want[j]) > 1e-6*(1+math.Abs(want[j])) {
				return false
			}
			if Residual(q, vals[j], vecs[j]) > 1e-5*(1+math.Abs(vals[j])) {
				return false
			}
		}
		return CheckOrthonormal(vecs, 1e-6) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSmallestKSparsePath(t *testing.T) {
	// Force the Lanczos path with a large path-graph Laplacian, whose
	// eigenvalues are 2(1 − cos(jπ/n)).
	n := 150
	q := pathLaplacian(n)
	vals, vecs, err := SmallestK(q, 3, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		want := 2 * (1 - math.Cos(float64(j)*math.Pi/float64(n)))
		if math.Abs(vals[j]-want) > 1e-5*(1+want) {
			t.Errorf("λ%d = %v, want %v", j+1, vals[j], want)
		}
	}
	if err := CheckOrthonormal(vecs, 1e-6); err != nil {
		t.Error(err)
	}
}

func TestSmallestKErrors(t *testing.T) {
	q := pathLaplacian(5)
	if _, _, err := SmallestK(q, 0, Options{}); err == nil {
		t.Error("accepted k=0")
	}
	if _, _, err := SmallestK(q, 6, Options{}); err == nil {
		t.Error("accepted k>n")
	}
}

func TestResidualLengthMismatch(t *testing.T) {
	q := pathLaplacian(4)
	if !math.IsInf(Residual(q, 0, []float64{1, 2}), 1) {
		t.Error("mismatched length should give +Inf")
	}
}

func TestCheckOrthonormal(t *testing.T) {
	good := [][]float64{{1, 0}, {0, 1}}
	if err := CheckOrthonormal(good, 1e-12); err != nil {
		t.Error(err)
	}
	bad := [][]float64{{1, 0}, {1, 0}}
	if err := CheckOrthonormal(bad, 1e-12); err == nil {
		t.Error("accepted duplicate vectors")
	}
	unnormalized := [][]float64{{2, 0}}
	if err := CheckOrthonormal(unnormalized, 1e-12); err == nil {
		t.Error("accepted non-unit vector")
	}
}
