package eigen

import (
	"errors"
	"math"

	"igpart/internal/obs"
	"igpart/internal/sparse"
)

// shifted wraps a Laplacian Q as the operator B = σI − Q, mapping the
// smallest eigenvalues of Q to the largest of B. This mirrors the paper's
// use of −Q = A − D: the Kaniel–Paige–Saad theory makes Lanczos converge
// fastest to extremal (largest) eigenvalues, so we solve for the top of the
// shifted spectrum rather than the bottom of the original.
type shifted struct {
	q     Operator
	sigma float64
}

func (s *shifted) N() int { return s.q.N() }

func (s *shifted) MulVec(y, x []float64) {
	s.q.MulVec(y, x)
	for i := range y {
		y[i] = s.sigma*x[i] - y[i]
	}
}

// GershgorinUpper returns an upper bound on the largest eigenvalue of the
// symmetric matrix q from Gershgorin's circle theorem:
// max_i (q_ii + Σ_{j≠i} |q_ij|).
func GershgorinUpper(q *sparse.SymCSR) float64 {
	bound := 0.0
	for i := 0; i < q.N(); i++ {
		cols, vals := q.Row(i)
		r := 0.0
		for k, j := range cols {
			if j == i {
				r += vals[k]
			} else {
				r += math.Abs(vals[k])
			}
		}
		if i == 0 || r > bound {
			bound = r
		}
	}
	return bound
}

// FiedlerResult is the outcome of a Fiedler-vector computation.
type FiedlerResult struct {
	// Lambda2 is the second-smallest eigenvalue of the Laplacian. By the
	// Hagen–Kahng bound (Theorem 1), Lambda2/n lower-bounds the optimal
	// ratio-cut cost of the underlying graph.
	Lambda2 float64
	// Vector is the corresponding unit eigenvector, orthogonal to the
	// all-ones vector.
	Vector []float64
	// Dense records whether the small-instance dense path was taken.
	Dense bool
}

// denseCutoff is the dimension below which Fiedler uses the exact Jacobi
// solver instead of Lanczos.
const denseCutoff = 48

// Fiedler computes the second-smallest eigenpair of the graph Laplacian q
// (q must satisfy Q·1 = 0, which sparse.Laplacian guarantees). Small
// instances are solved densely by Jacobi; larger ones use shifted Lanczos
// with the constant vector deflated.
func Fiedler(q *sparse.SymCSR, opts Options) (FiedlerResult, error) {
	n := q.N()
	if n < 2 {
		return FiedlerResult{}, errors.New("eigen: Fiedler vector needs at least 2 vertices")
	}
	if n <= denseCutoff {
		sp := obs.OrNop(opts.Rec).StartSpan("jacobi-dense")
		vals, vecs, err := Jacobi(sparse.FromCSR(q), 0)
		sp.Count("dim", int64(n))
		sp.End()
		if err != nil {
			return FiedlerResult{}, err
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = vecs[i][1]
		}
		return FiedlerResult{Lambda2: vals[1], Vector: x, Dense: true}, nil
	}

	sigma := GershgorinUpper(q)
	if sigma <= 0 {
		sigma = 1 // empty graph: Q = 0, any orthonormal basis works
	}
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1 / math.Sqrt(float64(n))
	}
	mu, x, err := LargestDeflated(&shifted{q: q, sigma: sigma}, [][]float64{ones}, opts)
	if err != nil {
		return FiedlerResult{}, err
	}
	lambda2 := sigma - mu
	if lambda2 < 0 && lambda2 > -1e-9*sigma {
		lambda2 = 0 // clamp tiny negative round-off on disconnected graphs
	}
	return FiedlerResult{Lambda2: lambda2, Vector: x}, nil
}
