package eigen

import (
	"errors"
	"math"

	"igpart/internal/obs"
	"igpart/internal/par"
	"igpart/internal/sparse"
)

// shifted wraps a Laplacian Q as the operator B = σI − Q, mapping the
// smallest eigenvalues of Q to the largest of B. This mirrors the paper's
// use of −Q = A − D: the Kaniel–Paige–Saad theory makes Lanczos converge
// fastest to extremal (largest) eigenvalues, so we solve for the top of the
// shifted spectrum rather than the bottom of the original.
type shifted struct {
	q     Operator
	sigma float64
}

func (s *shifted) N() int { return s.q.N() }

func (s *shifted) MulVec(y, x []float64) {
	s.q.MulVec(y, x)
	for i := range y {
		y[i] = s.sigma*x[i] - y[i]
	}
}

// ParMulVec shards the underlying product and then the shift across
// workers. Both write y elementwise over disjoint ranges with unchanged
// per-element arithmetic, so the result is bit-identical to MulVec for
// every worker count.
func (s *shifted) ParMulVec(y, x []float64, workers int) {
	po, ok := s.q.(ParOperator)
	if !ok {
		s.MulVec(y, x)
		return
	}
	po.ParMulVec(y, x, workers)
	n := len(y)
	p := par.Workers(workers, n)
	bounds := par.Bounds(p, n)
	par.Run(p, func(i int) {
		for k := bounds[i][0]; k < bounds[i][1]; k++ {
			y[k] = s.sigma*x[k] - y[k]
		}
	})
}

// GershgorinUpper returns an upper bound on the largest eigenvalue of the
// symmetric matrix q from Gershgorin's circle theorem:
// max_i (q_ii + Σ_{j≠i} |q_ij|).
func GershgorinUpper(q *sparse.SymCSR) float64 {
	bound := 0.0
	for i := 0; i < q.N(); i++ {
		cols, vals := q.Row(i)
		r := 0.0
		for k, j := range cols {
			if j == i {
				r += vals[k]
			} else {
				r += math.Abs(vals[k])
			}
		}
		if i == 0 || r > bound {
			bound = r
		}
	}
	return bound
}

// The solver rungs a Fiedler computation can come from, recorded in
// FiedlerResult.Rung. The fallback chain descends RungLanczos →
// RungLanczosRetry → RungJacobiFallback; small instances go straight to
// RungDense.
const (
	// RungDense is the small-instance direct dense path (n ≤ denseCutoff).
	RungDense = "jacobi-dense"
	// RungLanczos is the first iterative attempt with the caller's options.
	RungLanczos = "lanczos"
	// RungLanczosRetry is the second attempt after a non-convergence:
	// reseeded start vector, doubled restart budget.
	RungLanczosRetry = "lanczos-retry"
	// RungJacobiFallback is the exact dense rescue taken when both
	// iterative rungs failed and the instance is small enough
	// (Options.DenseFallbackCutoff).
	RungJacobiFallback = "jacobi-fallback"
)

// ErrNonFinite reports a solver output containing NaN/Inf entries that
// survived every rescue rung — it must never reach the sweep ordering.
var ErrNonFinite = errors.New("eigen: Fiedler vector contains non-finite entries")

// FiedlerResult is the outcome of a Fiedler-vector computation.
type FiedlerResult struct {
	// Lambda2 is the second-smallest eigenvalue of the Laplacian. By the
	// Hagen–Kahng bound (Theorem 1), Lambda2/n lower-bounds the optimal
	// ratio-cut cost of the underlying graph.
	Lambda2 float64
	// Vector is the corresponding unit eigenvector, orthogonal to the
	// all-ones vector.
	Vector []float64
	// Dense records whether a dense (Jacobi) path produced the result —
	// the small-instance direct path or the fallback rung.
	Dense bool
	// Rung names the solver rung that produced the result (one of the
	// Rung* constants): degraded-mode runs are observable, not silent.
	Rung string
}

// denseCutoff is the dimension below which Fiedler uses the exact Jacobi
// solver instead of Lanczos.
const denseCutoff = 48

// retrySeed derives the reseeded start vector seed for the retry rung —
// an LCG step, so the retry explores a genuinely different Krylov space
// while staying a pure function of the original seed.
func retrySeed(seed int64) int64 {
	return seed*6364136223846793005 + 1442695040888963407
}

// largestWithRetry runs the iterative extremal solve with the first two
// rungs of the fallback chain: the configured Lanczos (or block
// Lanczos) attempt, then — on non-convergence or non-finite output —
// one retry from a reseeded start vector with a doubled restart budget.
// It reports which rung succeeded. Errors other than NoConvergeError
// propagate immediately; a NoConvergeError from the retry rung is
// returned for the caller to escalate to the dense rescue.
func largestWithRetry(op Operator, deflate [][]float64, opts Options) (float64, []float64, string, error) {
	mu, x, err := LargestDeflated(op, deflate, opts)
	if err == nil {
		return mu, x, RungLanczos, nil
	}
	var nc *NoConvergeError
	if !errors.As(err, &nc) {
		return 0, nil, RungLanczos, err
	}
	retry := opts
	retry.Seed = retrySeed(opts.Seed)
	base := opts.MaxRestarts
	if base <= 0 {
		base = 8 // withDefaults' MaxRestarts
	}
	retry.MaxRestarts = 2 * base
	// The retry rung also abandons selective reorthogonalization: if the
	// first attempt stalled because the ω-monitor under-estimated the
	// orthogonality loss, rerunning with the full scheme removes that
	// failure mode before the chain escalates to the dense rescue.
	retry.ReorthMode = ReorthFull
	rec := obs.OrNop(opts.Rec)
	sp := rec.StartSpan("eigen-retry")
	sp.Count("restart-budget", int64(retry.MaxRestarts))
	mu, x, err = LargestDeflated(op, deflate, retry)
	sp.End()
	rec.Metrics().Counter("eigen.fallback_retries").Add(1)
	return mu, x, RungLanczosRetry, err
}

// fiedlerDense solves the Fiedler pair exactly with dense Jacobi,
// guarding the output against non-finite values.
func fiedlerDense(q *sparse.SymCSR, opts Options, rung string) (FiedlerResult, error) {
	n := q.N()
	sp := obs.OrNop(opts.Rec).StartSpan(rung)
	vals, vecs, err := Jacobi(sparse.FromCSR(q), 0)
	sp.Count("dim", int64(n))
	sp.End()
	if err != nil {
		return FiedlerResult{}, err
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = vecs[i][1]
	}
	if math.IsNaN(vals[1]) || math.IsInf(vals[1], 0) || !finite(x) {
		return FiedlerResult{}, ErrNonFinite
	}
	return FiedlerResult{Lambda2: vals[1], Vector: x, Dense: true, Rung: rung}, nil
}

// Fiedler computes the second-smallest eigenpair of the graph Laplacian q
// (q must satisfy Q·1 = 0, which sparse.Laplacian guarantees). Small
// instances are solved densely by Jacobi; larger ones use shifted Lanczos
// with the constant vector deflated.
//
// Solver failure is a recoverable event, not an error: on Lanczos
// non-convergence (or NaN/Inf output) the computation descends a
// fallback chain — retry once with a reseeded start vector and a
// doubled restart budget, then solve exactly with dense Jacobi when the
// instance is at most Options.DenseFallbackCutoff. The rung that
// produced the result is recorded in FiedlerResult.Rung and in the
// eigen.fallback_* counters of the run's metrics registry. Only when
// every applicable rung fails does Fiedler return an error.
func Fiedler(q *sparse.SymCSR, opts Options) (FiedlerResult, error) {
	n := q.N()
	if n < 2 {
		return FiedlerResult{}, errors.New("eigen: Fiedler vector needs at least 2 vertices")
	}
	if n <= denseCutoff {
		return fiedlerDense(q, opts, RungDense)
	}

	sigma := GershgorinUpper(q)
	if sigma <= 0 {
		sigma = 1 // empty graph: Q = 0, any orthonormal basis works
	}
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1 / math.Sqrt(float64(n))
	}
	mu, x, rung, err := largestWithRetry(&shifted{q: q, sigma: sigma}, [][]float64{ones}, opts)
	if err != nil {
		var nc *NoConvergeError
		if !errors.As(err, &nc) || n > opts.denseFallbackCutoff() {
			return FiedlerResult{}, err
		}
		rec := obs.OrNop(opts.Rec)
		res, jerr := fiedlerDense(q, opts, RungJacobiFallback)
		rec.Metrics().Counter("eigen.fallback_jacobi").Add(1)
		if jerr != nil {
			return FiedlerResult{}, jerr
		}
		return res, nil
	}
	lambda2 := sigma - mu
	if lambda2 < 0 && lambda2 > -1e-9*sigma {
		lambda2 = 0 // clamp tiny negative round-off on disconnected graphs
	}
	if math.IsNaN(lambda2) || math.IsInf(lambda2, 0) || !finite(x) {
		// checkFinitePair guards the solver returns, so this is belt and
		// braces for the σ−μ arithmetic itself.
		return FiedlerResult{}, ErrNonFinite
	}
	return FiedlerResult{Lambda2: lambda2, Vector: x, Rung: rung}, nil
}
