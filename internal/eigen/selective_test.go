package eigen

import (
	"math"
	"math/rand"
	"testing"

	"igpart/internal/obs"
	"igpart/internal/sparse"
)

// plantedLaplacian builds the Laplacian of a connected two-community
// random graph on n vertices: each community is a ring (guaranteeing
// connectivity) plus random intra-community chords, with a few weak
// cross links. λ₂ is tiny (the planted cut) while λ₃ sits at the
// intra-community connectivity scale — the well-separated spectrum the
// ω-monitor is designed to exploit.
func plantedLaplacian(n int, seed int64) *sparse.SymCSR {
	rng := rand.New(rand.NewSource(seed))
	b := sparse.NewCSRBuilder(n)
	half := n / 2
	ring := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			j := i + 1
			if j == hi {
				j = lo
			}
			b.Add(i, j, 1)
		}
	}
	ring(0, half)
	ring(half, n)
	pick := func(lo, hi int) (int, int) {
		i := lo + rng.Intn(hi-lo)
		j := lo + rng.Intn(hi-lo)
		for j == i {
			j = lo + rng.Intn(hi-lo)
		}
		return i, j
	}
	for k := 0; k < 3*n; k++ {
		var i, j int
		if k%2 == 0 {
			i, j = pick(0, half)
		} else {
			i, j = pick(half, n)
		}
		b.Add(i, j, 1)
	}
	for k := 0; k < 3; k++ {
		b.Add(rng.Intn(half), half+rng.Intn(n-half), 0.05)
	}
	return sparse.Laplacian(b.Build())
}

// TestSelectiveReorthFiedlerParity is the reorth-monitor property suite:
// across 24 randomized Laplacians the selective solve must reproduce the
// full-reorth Fiedler pair — λ₂ and, after sign alignment, every vector
// entry — within 1e-8, while actually skipping reorthogonalization work
// on these well-separated spectra.
func TestSelectiveReorthFiedlerParity(t *testing.T) {
	const seeds = 24
	totalSkipped := int64(0)
	for seed := int64(0); seed < seeds; seed++ {
		n := 140 + int(seed*17)%240
		q := plantedLaplacian(n, seed)
		opts := Options{Seed: seed, Tol: 1e-11}

		fullOpts := opts
		fullOpts.ReorthMode = ReorthFull
		full, err := Fiedler(q, fullOpts)
		if err != nil {
			t.Fatalf("seed %d: full-reorth Fiedler: %v", seed, err)
		}

		tr := obs.NewTrace("selective")
		selOpts := opts
		selOpts.ReorthMode = ReorthSelective
		selOpts.Rec = tr
		sel, err := Fiedler(q, selOpts)
		if err != nil {
			t.Fatalf("seed %d: selective Fiedler: %v", seed, err)
		}
		if sel.Dense || full.Dense {
			t.Fatalf("seed %d: dense path at n=%d; the parity claim is about the iterative engines", seed, n)
		}

		if d := math.Abs(sel.Lambda2 - full.Lambda2); d > 1e-8*(1+math.Abs(full.Lambda2)) {
			t.Fatalf("seed %d: λ₂ diverged by %.3g (selective %.12g vs full %.12g)", seed, d, sel.Lambda2, full.Lambda2)
		}
		sign := 1.0
		if sparse.Dot(sel.Vector, full.Vector) < 0 {
			sign = -1
		}
		for i := range full.Vector {
			if d := math.Abs(sign*sel.Vector[i] - full.Vector[i]); d > 1e-8 {
				t.Fatalf("seed %d: vector entry %d diverged by %.3g", seed, i, d)
			}
		}
		totalSkipped += tr.Metrics().Snapshot().Counters["eigen.reorth.skipped"]
	}
	if totalSkipped == 0 {
		t.Fatal("eigen.reorth.skipped = 0 across all seeds: the selective path never skipped any work, so the parity test exercised nothing")
	}
}

// TestSelectiveReorthSkipsOnWellSeparatedSpectrum pins the economics on
// one instance: the monitor must skip the overwhelming majority of steps
// and the skip/force counters must account for every Krylov step.
func TestSelectiveReorthSkipsOnWellSeparatedSpectrum(t *testing.T) {
	q := plantedLaplacian(400, 7)
	tr := obs.NewTrace("t")
	_, err := Fiedler(q, Options{ReorthMode: ReorthSelective, Rec: tr})
	if err != nil {
		t.Fatalf("Fiedler: %v", err)
	}
	snap := tr.Metrics().Snapshot()
	skipped := snap.Counters["eigen.reorth.skipped"]
	forced := snap.Counters["eigen.reorth.forced"]
	if skipped == 0 {
		t.Fatalf("eigen.reorth.skipped = 0 (forced = %d): selective mode did full reorth on every step", forced)
	}
	if forced > skipped {
		t.Fatalf("monitor fired on most steps (skipped %d, forced %d) — its bound is mis-tuned for a well-separated spectrum", skipped, forced)
	}
	if snap.Counters["eigen.matvec.rows"] == 0 {
		t.Fatal("eigen.matvec.rows = 0: matvec volume accounting is not wired")
	}
}

// TestReorthAutoMatchesFullBelowCutoff: auto mode must resolve to the
// historical full scheme below ReorthAutoCutoff — bit-identical vectors,
// so every existing golden stays pinned.
func TestReorthAutoMatchesFullBelowCutoff(t *testing.T) {
	q := plantedLaplacian(300, 3) // 300 < ReorthAutoCutoff
	auto, err := Fiedler(q, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Fiedler(q, Options{Seed: 3, ReorthMode: ReorthFull})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Lambda2 != full.Lambda2 {
		t.Fatalf("auto λ₂ %.17g != full λ₂ %.17g below cutoff", auto.Lambda2, full.Lambda2)
	}
	for i := range full.Vector {
		if auto.Vector[i] != full.Vector[i] {
			t.Fatalf("auto and full vectors differ at %d below the cutoff: %g vs %g", i, auto.Vector[i], full.Vector[i])
		}
	}
}

// TestSelectiveReorthBlockMode runs the parity check through the block
// engine, which uses the measured-drift variant of the monitor.
func TestSelectiveReorthBlockMode(t *testing.T) {
	q := plantedLaplacian(220, 11)
	full, err := Fiedler(q, Options{Seed: 11, BlockSize: 4, ReorthMode: ReorthFull})
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	tr := obs.NewTrace("t")
	sel, err := Fiedler(q, Options{Seed: 11, BlockSize: 4, ReorthMode: ReorthSelective, Rec: tr})
	if err != nil {
		t.Fatalf("selective: %v", err)
	}
	if d := math.Abs(sel.Lambda2 - full.Lambda2); d > 1e-7*(1+math.Abs(full.Lambda2)) {
		t.Fatalf("block λ₂ diverged by %.3g", d)
	}
	if tr.Metrics().Snapshot().Counters["eigen.reorth.skipped"] == 0 {
		t.Fatal("block selective mode skipped no work")
	}
}

// TestParseReorthMode covers the flag surface both ways.
func TestParseReorthMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want ReorthMode
	}{{"", ReorthAuto}, {"auto", ReorthAuto}, {"full", ReorthFull}, {"selective", ReorthSelective}} {
		got, err := ParseReorthMode(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseReorthMode(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if tc.in != "" && got.String() != tc.in {
			t.Fatalf("String() round trip: %q -> %q", tc.in, got.String())
		}
	}
	if _, err := ParseReorthMode("bogus"); err == nil {
		t.Fatal("ParseReorthMode accepted garbage")
	}
}
