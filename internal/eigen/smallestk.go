package eigen

import (
	"errors"
	"fmt"
	"math"

	"igpart/internal/obs"
	"igpart/internal/sparse"
)

// smallestKDense solves the full dense eigenproblem and returns the k
// smallest pairs.
func smallestKDense(q *sparse.SymCSR, k int) ([]float64, [][]float64, error) {
	n := q.N()
	vals, z, err := Jacobi(sparse.FromCSR(q), 0)
	if err != nil {
		return nil, nil, err
	}
	vecs := make([][]float64, k)
	for j := 0; j < k; j++ {
		v := make([]float64, n)
		for i := 0; i < n; i++ {
			v[i] = z[i][j]
		}
		if !finite(v) || math.IsNaN(vals[j]) || math.IsInf(vals[j], 0) {
			return nil, nil, ErrNonFinite
		}
		vecs[j] = v
	}
	return vals[:k], vecs, nil
}

// SmallestK computes the k smallest eigenvalues (ascending) of the
// symmetric matrix q and their orthonormal eigenvectors. Small instances
// use the dense Jacobi solver; larger ones run shifted Lanczos repeatedly,
// deflating each converged eigenvector. Each deflated solve carries the
// same fallback chain as Fiedler: a reseeded doubled-budget retry on
// non-convergence, then — when the instance is within
// Options.DenseFallbackCutoff — an exact dense solve of the whole
// problem instead of an error.
//
// For a graph Laplacian the first pair is (0, constant vector); Hall's
// quadratic placement (Appendix A of the paper) uses pairs 2 and 3 for a
// two-dimensional embedding.
func SmallestK(q *sparse.SymCSR, k int, opts Options) ([]float64, [][]float64, error) {
	n := q.N()
	if k < 1 || k > n {
		return nil, nil, fmt.Errorf("eigen: k=%d outside [1,%d]", k, n)
	}
	if n <= denseCutoff || k >= n/2 {
		return smallestKDense(q, k)
	}

	sigma := GershgorinUpper(q)
	if sigma <= 0 {
		sigma = 1
	}
	op := &shifted{q: q, sigma: sigma}
	vals := make([]float64, 0, k)
	vecs := make([][]float64, 0, k)
	deflate := make([][]float64, 0, k)
	for j := 0; j < k; j++ {
		o := opts
		o.Seed = opts.Seed + int64(j)
		mu, x, _, err := largestWithRetry(op, deflate, o)
		if err != nil {
			var nc *NoConvergeError
			if errors.As(err, &nc) && n <= opts.denseFallbackCutoff() {
				// Dense rescue replaces the whole deflation run: the exact
				// solver returns every pair at once.
				obs.OrNop(opts.Rec).Metrics().Counter("eigen.fallback_jacobi").Add(1)
				return smallestKDense(q, k)
			}
			return nil, nil, fmt.Errorf("eigen: pair %d: %w", j+1, err)
		}
		lam := sigma - mu
		if lam < 0 && lam > -1e-9*sigma {
			lam = 0
		}
		vals = append(vals, lam)
		vecs = append(vecs, x)
		deflate = append(deflate, x)
	}
	// Deflated solves can return pairs marginally out of order when
	// eigenvalues are nearly degenerate; enforce ascending order.
	for i := 1; i < k; i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
			vecs[j], vecs[j-1] = vecs[j-1], vecs[j]
		}
	}
	return vals, vecs, nil
}

// Residual returns ‖q·x − λx‖ for diagnostics and tests.
func Residual(q Operator, lambda float64, x []float64) float64 {
	if len(x) != q.N() {
		return math.Inf(1)
	}
	y := make([]float64, len(x))
	q.MulVec(y, x)
	sparse.Axpy(-lambda, x, y)
	return sparse.Norm2(y)
}

// CheckOrthonormal verifies that the given vectors are unit length and
// mutually orthogonal within tol; a testing aid.
func CheckOrthonormal(vecs [][]float64, tol float64) error {
	for i, a := range vecs {
		for j := i; j < len(vecs); j++ {
			d := sparse.Dot(a, vecs[j])
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(d-want) > tol {
				return errors.New("eigen: vectors not orthonormal")
			}
		}
	}
	return nil
}
