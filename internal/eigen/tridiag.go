// Package eigen implements the symmetric eigensolvers behind the spectral
// partitioners: a Lanczos iteration with full reorthogonalization and
// deflation (the sparse workhorse, standing in for the block Lanczos code
// the paper uses), a symmetric tridiagonal QL solver for the Lanczos
// projection, a dense Jacobi solver used for cross-validation and tiny
// instances, and a Fiedler-vector driver that ties them together.
package eigen

import (
	"errors"
	"math"
)

// SymTridiagonal solves the full eigenproblem of a symmetric tridiagonal
// matrix with diagonal d (length n) and subdiagonal e (length n−1), using
// the implicit QL method with Wilkinson shifts (the classical EISPACK tql2
// algorithm). It returns the eigenvalues in ascending order and, when
// wantVectors is set, the matrix of eigenvectors z with z[i][k] the i-th
// component of the k-th eigenvector. d and e are not modified.
func SymTridiagonal(d, e []float64, wantVectors bool) (vals []float64, z [][]float64, err error) {
	n := len(d)
	if len(e) != n-1 && !(n == 0 && len(e) == 0) {
		return nil, nil, errors.New("eigen: subdiagonal must have length n-1")
	}
	if n == 0 {
		return nil, nil, nil
	}
	vals = append([]float64(nil), d...)
	sub := make([]float64, n) // sub[0..n-2] active, sub[n-1] = 0
	copy(sub, e)
	if wantVectors {
		z = make([][]float64, n)
		for i := range z {
			z[i] = make([]float64, n)
			z[i][i] = 1
		}
	}

	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			// Find the first small subdiagonal element at or after l.
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(vals[m]) + math.Abs(vals[m+1])
				if math.Abs(sub[m]) <= math.SmallestNonzeroFloat64 || math.Abs(sub[m]) <= 1e-16*dd {
					break
				}
			}
			if m == l {
				break
			}
			if iter >= 50 {
				return nil, nil, errors.New("eigen: tridiagonal QL failed to converge in 50 iterations")
			}
			// Form the Wilkinson shift.
			g := (vals[l+1] - vals[l]) / (2 * sub[l])
			r := math.Hypot(g, 1)
			g = vals[m] - vals[l] + sub[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * sub[i]
				b := c * sub[i]
				r = math.Hypot(f, g)
				sub[i+1] = r
				if r == 0 {
					vals[i+1] -= p
					sub[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = vals[i+1] - p
				r = (vals[i]-g)*s + 2*c*b
				p = s * r
				vals[i+1] = g + p
				g = c*r - b
				if wantVectors {
					for k := 0; k < n; k++ {
						f := z[k][i+1]
						z[k][i+1] = s*z[k][i] + c*f
						z[k][i] = c*z[k][i] - s*f
					}
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			vals[l] -= p
			sub[l] = g
			sub[m] = 0
		}
	}

	// Sort eigenvalues ascending, permuting eigenvectors alongside.
	for i := 0; i < n-1; i++ {
		k := i
		for j := i + 1; j < n; j++ {
			if vals[j] < vals[k] {
				k = j
			}
		}
		if k != i {
			vals[i], vals[k] = vals[k], vals[i]
			if wantVectors {
				for r := 0; r < n; r++ {
					z[r][i], z[r][k] = z[r][k], z[r][i]
				}
			}
		}
	}
	return vals, z, nil
}
