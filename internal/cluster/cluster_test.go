package cluster

import (
	"math/rand"
	"testing"

	"igpart/internal/hypergraph"
	"igpart/internal/partition"
)

func clustered(k, bridges int, seed int64) *hypergraph.Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	b := hypergraph.NewBuilder()
	b.SetNumModules(2 * k)
	for c := 0; c < 2; c++ {
		base := c * k
		for i := 0; i < k-1; i++ {
			b.AddNet(base+i, base+i+1)
		}
		for e := 0; e < 2*k; e++ {
			b.AddNet(base+rng.Intn(k), base+rng.Intn(k), base+rng.Intn(k))
		}
	}
	for i := 0; i < bridges; i++ {
		b.AddNet(rng.Intn(k), k+rng.Intn(k))
	}
	return b.Build()
}

func TestMatchClustersValidMap(t *testing.T) {
	h := clustered(20, 3, 1)
	cmap, k := MatchClusters(h)
	if len(cmap) != h.NumModules() {
		t.Fatalf("map length %d", len(cmap))
	}
	seen := make([]int, k)
	for _, c := range cmap {
		if c < 0 || c >= k {
			t.Fatalf("cluster %d outside [0,%d)", c, k)
		}
		seen[c]++
	}
	for c, cnt := range seen {
		if cnt == 0 {
			t.Errorf("cluster %d empty", c)
		}
		if cnt > 2 {
			t.Errorf("cluster %d has %d members; matching merges at most 2", c, cnt)
		}
	}
	if k >= h.NumModules() {
		t.Error("matching produced no merges on a dense circuit")
	}
}

func TestClusterPartitionQuality(t *testing.T) {
	h := clustered(30, 1, 5)
	res, err := Partition(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.SizeU == 0 || res.Metrics.SizeW == 0 {
		t.Fatal("improper partition")
	}
	if res.Metrics.CutNets > 4 {
		t.Errorf("cut = %d, want near 1 (planted bridge)", res.Metrics.CutNets)
	}
	if res.CoarseModules >= h.NumModules() {
		t.Errorf("no condensation: coarse=%d fine=%d", res.CoarseModules, h.NumModules())
	}
	if res.Levels < 1 {
		t.Error("no coarsening rounds")
	}
	if got := partition.Evaluate(h, res.Partition); got != res.Metrics {
		t.Errorf("metrics mismatch: %+v vs %+v", got, res.Metrics)
	}
}

func TestClusterSkipRefine(t *testing.T) {
	h := clustered(25, 2, 7)
	plain, err := Partition(h, Options{SkipRefine: true})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Partition(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if refined.Metrics.RatioCut > plain.Metrics.RatioCut {
		t.Errorf("refined %v worse than unrefined %v", refined.Metrics.RatioCut, plain.Metrics.RatioCut)
	}
}

func TestMultilevelRefinement(t *testing.T) {
	h := clustered(40, 3, 17)
	plain, err := Partition(h, Options{Levels: 4, TargetRatio: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	ml, err := Partition(h, Options{Levels: 4, TargetRatio: 0.15, Multilevel: true})
	if err != nil {
		t.Fatal(err)
	}
	if ml.Metrics.SizeU == 0 || ml.Metrics.SizeW == 0 {
		t.Fatal("improper multilevel partition")
	}
	// Per-level refinement should not lose to the single-shot polish on a
	// clustered circuit (both see the same coarse solve).
	if ml.Metrics.RatioCut > plain.Metrics.RatioCut*1.5+1e-12 {
		t.Errorf("multilevel %v much worse than single-shot %v",
			ml.Metrics.RatioCut, plain.Metrics.RatioCut)
	}
	if got := partition.Evaluate(h, ml.Partition); got != ml.Metrics {
		t.Error("metrics mismatch")
	}
}

func TestClusterTooSmall(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddNet(0, 1)
	if _, err := Partition(b.Build(), Options{}); err == nil {
		t.Error("accepted tiny circuit")
	}
}

func TestClusterDeterministic(t *testing.T) {
	h := clustered(15, 2, 11)
	a, err := Partition(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics != b.Metrics {
		t.Errorf("nondeterministic: %+v vs %+v", a.Metrics, b.Metrics)
	}
}

func TestTargetRatioRespected(t *testing.T) {
	h := clustered(40, 2, 13)
	res, err := Partition(h, Options{TargetRatio: 0.6, Levels: 5})
	if err != nil {
		t.Fatal(err)
	}
	// One matching round halves at best; with target 0.6 one round should
	// suffice and coarsening must stop at or below 60% plus one round's
	// overshoot allowance.
	if res.CoarseModules > h.NumModules() {
		t.Errorf("coarse %d > fine %d", res.CoarseModules, h.NumModules())
	}
}

func TestMatchByWeight(t *testing.T) {
	// 0–1 is heaviest and must merge first; 1–2 is then blocked; 2–3
	// merges next; 4 survives as a singleton.
	pairs := []WeightedPair{
		{A: 1, B: 2, W: 5},
		{A: 0, B: 1, W: 9},
		{A: 2, B: 3, W: 4},
		{A: 3, B: 3, W: 99}, // self pair must be ignored
	}
	gmap, k := MatchByWeight(5, pairs)
	if k != 3 {
		t.Fatalf("want 3 groups, got %d (map %v)", k, gmap)
	}
	if gmap[0] != gmap[1] || gmap[2] != gmap[3] || gmap[0] == gmap[2] {
		t.Fatalf("wrong grouping: %v", gmap)
	}
	if gmap[4] == gmap[0] || gmap[4] == gmap[2] {
		t.Fatalf("singleton merged: %v", gmap)
	}
}

func TestMatchByWeightDeterministic(t *testing.T) {
	// Equal weights resolve by ascending indices regardless of input order.
	fwd := []WeightedPair{{A: 0, B: 1, W: 1}, {A: 0, B: 2, W: 1}, {A: 1, B: 2, W: 1}}
	rev := []WeightedPair{{A: 1, B: 2, W: 1}, {A: 0, B: 2, W: 1}, {A: 0, B: 1, W: 1}}
	m1, k1 := MatchByWeight(3, fwd)
	m2, k2 := MatchByWeight(3, rev)
	if k1 != k2 {
		t.Fatalf("group counts diverge: %d vs %d", k1, k2)
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("input order changed the matching: %v vs %v", m1, m2)
		}
	}
	if m1[0] != m1[1] {
		t.Fatalf("tie-break should merge 0-1 first: %v", m1)
	}
}
