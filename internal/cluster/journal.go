package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"

	"igpart/internal/fault"
)

// errInjectedWrite marks a journal append failed by the
// journal.write-err fault point rather than by the filesystem.
var errInjectedWrite = errors.New("injected fault")

// Record is one journal line. Four kinds exist:
//
//   - accept: the coordinator took responsibility for a job — the full
//     forwarded request body and routing key are stored, so the job can
//     be resubmitted from the journal alone;
//   - done: the job reached a terminal state (done/failed/cancelled);
//   - mark: a compaction watermark. Boot-time compaction drops
//     accept/done pairs, which would otherwise regress the ID counter
//     Recover derives from the highest ID seen; the mark pins that
//     high-water ID in the compacted file. Unfinished ignores marks.
//   - lease: a leadership claim or renewal — term number, owner
//     identity, and deadline. The newest lease (highest term, then
//     latest deadline) tells a standby tailing the journal whether the
//     leader is still alive; compaction always preserves it.
//
// A job that has an accept but no done record is unfinished: a
// coordinator crash happened between accepting and completing it, and
// boot-time replay resubmits it. Re-running a job whose completion
// record was lost in the crash window is safe — the solve is a pure
// function of the request and the backends' content-addressed caches
// usually turn the re-run into a hit.
type Record struct {
	T     string          `json:"t"` // "accept" | "done" | "mark" | "lease"
	Job   string          `json:"job,omitempty"`
	Batch string          `json:"batch,omitempty"`
	Key   string          `json:"key,omitempty"`
	Body  json.RawMessage `json:"body,omitempty"`
	State string          `json:"state,omitempty"`

	// Lease fields (T == "lease").
	Term     int64  `json:"term,omitempty"`
	Owner    string `json:"owner,omitempty"`
	Deadline int64  `json:"deadline,omitempty"` // unix nanoseconds
}

// Journal is the coordinator's durable intake log: append-only JSONL,
// fsync'd per record, replayed on boot. Durability before
// acknowledgement is the contract — Accept returns only after the
// record is on disk, so an accepted batch survives a SIGKILL. A nil
// *Journal is a disabled journal: appends succeed as no-ops.
type Journal struct {
	mu  sync.Mutex
	f   *os.File
	inj *fault.Injector
}

// SetFault arms the journal.write-err injection point: when it fires,
// an append fails before touching disk, exactly as a full or failing
// volume would.
func (j *Journal) SetFault(inj *fault.Injector) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.inj = inj
	j.mu.Unlock()
}

// OpenJournal opens (creating if absent) the journal at path and
// returns the records already in it. A torn final line — the crash
// happened mid-write — is truncated away: its job, necessarily
// unfinished, is either absent entirely (torn accept: the coordinator
// never acknowledged it, so nothing is lost) or replayed (torn done:
// the job re-runs, which is idempotent). Truncation matters because
// the file is O_APPEND — without it the first post-recovery append
// would concatenate onto the partial line, corrupting the journal for
// the boot after this one.
//
// The journal is then compacted: completed accept/done pairs are
// dropped (their request bodies dominate the file's size and replay
// never reads them), keeping only a mark record pinning the high-water
// job ID plus the unfinished accepts. The rewrite is atomic — tmp
// file, fsync, rename — so a crash mid-compaction leaves the old
// journal intact; the returned records are the compacted set, which
// yields the same Unfinished replay set as the original.
func OpenJournal(path string) (*Journal, []Record, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: open journal: %w", err)
	}
	recs, off, err := scanJournal(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if end, serr := f.Seek(0, io.SeekEnd); serr != nil {
		f.Close()
		return nil, nil, fmt.Errorf("cluster: seek journal: %w", serr)
	} else if end != off {
		// Drop the torn tail so appends (O_APPEND: always at EOF) start
		// on a clean line.
		if terr := f.Truncate(off); terr != nil {
			f.Close()
			return nil, nil, fmt.Errorf("cluster: truncate torn journal tail: %w", terr)
		}
	}

	kept := compactRecords(recs)
	if len(kept) < len(recs) {
		if err := rewriteJournal(path, kept); err != nil {
			f.Close()
			return nil, nil, err
		}
		// The open handle still points at the renamed-over inode; reopen
		// so appends land in the compacted file.
		f.Close()
		f, err = os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: reopen compacted journal: %w", err)
		}
		recs = kept
	}
	return &Journal{f: f}, recs, nil
}

// scanJournal reads complete records off r, returning them along with
// the byte offset just past the last fully-persisted line. A torn
// final line — the crash happened mid-write — is tolerated and simply
// excluded from off; a complete garbage line followed by valid data
// means the file is not a journal (or was rewritten underneath the
// reader) and is reported as an error. The standby tailer reuses this
// on the suffix of the leader's live journal.
func scanJournal(r io.Reader) ([]Record, int64, error) {
	var recs []Record
	br := bufio.NewReaderSize(r, 64*1024)
	var off int64 // byte offset just past the last fully-persisted line
	for {
		line, rerr := br.ReadBytes('\n')
		if rerr != nil && !errors.Is(rerr, io.EOF) {
			return nil, 0, fmt.Errorf("cluster: read journal: %w", rerr)
		}
		complete := rerr == nil // the line carries its terminating newline
		if body := bytes.TrimSuffix(line, []byte{'\n'}); len(body) > 0 {
			var rec Record
			if jerr := json.Unmarshal(body, &rec); jerr != nil {
				// Only the torn tail of a crashed write is tolerated; garbage
				// followed by valid records means the file is not ours.
				if complete {
					if _, perr := br.Peek(1); perr == nil {
						return nil, 0, fmt.Errorf("cluster: corrupt journal record: %v", jerr)
					}
				}
				break
			}
			if !complete {
				// Parseable JSON but no newline: the write (line then Sync)
				// never finished, so the record was never acknowledged —
				// drop it with the rest of the torn tail.
				break
			}
			recs = append(recs, rec)
		}
		if !complete {
			break
		}
		off += int64(len(line))
	}
	return recs, off, nil
}

// compactRecords reduces a replayed record set to what future boots
// need: a mark pinning the high-water job/batch ID (so dropping
// completed jobs cannot regress Recover's ID counter), the newest
// lease record (a standby must still see who led last and at what
// term, or takeover would reuse term numbers), plus the unfinished
// accepts in order. Returns the input-sized slice when compaction
// would not shrink the file.
func compactRecords(recs []Record) []Record {
	maxID := int64(0)
	for _, r := range recs {
		for _, id := range []string{r.Job, r.Batch} {
			if i := strings.LastIndexByte(id, '-'); i >= 0 {
				if n, err := strconv.ParseInt(id[i+1:], 10, 64); err == nil && n > maxID {
					maxID = n
				}
			}
		}
	}
	unfinished := Unfinished(recs)
	kept := make([]Record, 0, len(unfinished)+2)
	if maxID > 0 {
		kept = append(kept, Record{T: "mark", Job: fmt.Sprintf("cjob-%d", maxID)})
	}
	if lease, ok := LatestLease(recs); ok {
		kept = append(kept, lease.record())
	}
	kept = append(kept, unfinished...)
	if len(kept) >= len(recs) {
		return recs
	}
	return kept
}

// rewriteJournal atomically replaces the journal at path with the
// given records: write a sibling tmp file, fsync it, rename over.
func rewriteJournal(path string, recs []Record) error {
	tmp := path + ".compact.tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("cluster: create compaction tmp: %w", err)
	}
	bw := bufio.NewWriter(f)
	for _, r := range recs {
		line, err := json.Marshal(r)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("cluster: marshal compacted record: %w", err)
		}
		line = append(line, '\n')
		if _, err := bw.Write(line); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("cluster: write compacted journal: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("cluster: flush compacted journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("cluster: fsync compacted journal: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cluster: close compacted journal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cluster: swap compacted journal: %w", err)
	}
	return nil
}

// append writes one record and fsyncs before returning.
func (j *Journal) append(r Record) error {
	if j == nil {
		return nil
	}
	line, err := json.Marshal(r)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil // closed: the coordinator is past the point of journaling
	}
	if j.inj.Active(fault.JournalWriteErr) {
		return fmt.Errorf("cluster: journal write: %w", errInjectedWrite)
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("cluster: journal write: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("cluster: journal fsync: %w", err)
	}
	return nil
}

// Accept journals responsibility for a job; it must succeed before the
// submission is acknowledged to the client.
func (j *Journal) Accept(job, batch, key string, body json.RawMessage) error {
	return j.append(Record{T: "accept", Job: job, Batch: batch, Key: key, Body: body})
}

// Complete journals a job's terminal state.
func (j *Journal) Complete(job, state string) error {
	return j.append(Record{T: "done", Job: job, State: state})
}

// Lease journals a leadership claim or renewal. Like every record it
// is fsync'd before returning — a standby trusts only what is durably
// on disk, so an unsynced renewal is no renewal at all.
func (j *Journal) Lease(l Lease) error {
	return j.append(l.record())
}

// Close releases the journal file. Appends after Close are dropped —
// by then the coordinator is shutting down and unfinished jobs are
// deliberately left for the next boot's replay.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Unfinished filters the replayed records down to accepted jobs with
// no completion record, in acceptance order.
func Unfinished(recs []Record) []Record {
	done := make(map[string]bool)
	for _, r := range recs {
		if r.T == "done" {
			done[r.Job] = true
		}
	}
	var out []Record
	for _, r := range recs {
		if r.T == "accept" && !done[r.Job] {
			out = append(out, r)
		}
	}
	return out
}
