package cluster

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// DefaultLeaseTTL is the leadership lease horizon when none is
// configured: long enough that a busy leader renewing at TTL/3 never
// misses, short enough that takeover is fast.
const DefaultLeaseTTL = 3 * time.Second

// ErrLeaseHeld reports that the journal's leadership lease is still
// owned by a live leader: the lease has not expired and the lock file
// names a process that cannot be shown dead. Standbys poll until the
// leader stops renewing.
var ErrLeaseHeld = errors.New("cluster: journal lease held by a live leader")

// Lease is a coordinator leadership claim over a shared journal. The
// term is a fencing token: each takeover increments it, so records
// from a deposed leader are distinguishable from the new leader's.
type Lease struct {
	Term     int64
	Owner    string
	Deadline time.Time
}

// Expired reports whether the lease deadline has passed.
func (l Lease) Expired(now time.Time) bool {
	return !l.Deadline.After(now)
}

func (l Lease) record() Record {
	return Record{T: "lease", Term: l.Term, Owner: l.Owner, Deadline: l.Deadline.UnixNano()}
}

// LatestLease returns the winning lease in a replayed record set: the
// highest term, and within a term (renewals keep their term) the
// latest deadline.
func LatestLease(recs []Record) (Lease, bool) {
	var best Lease
	found := false
	for _, r := range recs {
		if r.T != "lease" {
			continue
		}
		l := Lease{Term: r.Term, Owner: r.Owner, Deadline: time.Unix(0, r.Deadline)}
		if !found || l.Term > best.Term || (l.Term == best.Term && !l.Deadline.Before(best.Deadline)) {
			best, found = l, true
		}
	}
	return best, found
}

// LeaseOwnerID identifies this process in lease and lock records:
// host/pid, distinct across every process that could share a journal
// path (same host via pid, replicated path via hostname).
func LeaseOwnerID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "unknown"
	}
	return fmt.Sprintf("%s/%d", host, os.Getpid())
}

// LockPath returns the leader lock file guarding the journal at path.
func LockPath(journalPath string) string {
	return journalPath + ".lock"
}

// readLockOwner returns the owner string inside the lock file.
func readLockOwner(path string) (string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(string(b)), nil
}

// lockHolderDead reports whether the lock's recorded owner is a
// same-host process that demonstrably no longer exists. Only a
// provable death breaks a lock early; a holder on another host (the
// replicated-journal topology) must instead let its lease expire.
func lockHolderDead(owner string) bool {
	host, pidStr, ok := strings.Cut(owner, "/")
	if !ok {
		return false
	}
	if self, err := os.Hostname(); err != nil || host != self {
		return false
	}
	pid, err := strconv.Atoi(pidStr)
	if err != nil || pid <= 0 || pid == os.Getpid() {
		return false
	}
	proc, err := os.FindProcess(pid)
	if err != nil {
		return true
	}
	serr := proc.Signal(syscall.Signal(0))
	// EPERM means the pid exists under another uid — alive.
	return serr != nil && !errors.Is(serr, syscall.EPERM)
}

// acquireLock creates the lock file with O_EXCL, making lock
// acquisition atomic even between processes racing on the same
// journal: exactly one O_CREATE|O_EXCL open succeeds.
func acquireLock(path, owner string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	_, werr := fmt.Fprintln(f, owner)
	if serr := f.Sync(); werr == nil {
		werr = serr
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(path)
		return fmt.Errorf("cluster: write leader lock: %w", werr)
	}
	return nil
}

// releaseLock removes the lock file iff it still names owner. A
// deposed leader must not delete the lock its successor now holds.
func releaseLock(path, owner string) {
	if cur, err := readLockOwner(path); err == nil && cur == owner {
		os.Remove(path)
	}
}

// peekLease scans the journal read-only for the current lease, without
// opening it for append (that is the leader's privilege).
func peekLease(path string) (Lease, bool, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return Lease{}, false, nil
	}
	if err != nil {
		return Lease{}, false, fmt.Errorf("cluster: peek journal lease: %w", err)
	}
	defer f.Close()
	recs, _, err := scanJournal(f)
	if err != nil {
		return Lease{}, false, err
	}
	l, ok := LatestLease(recs)
	return l, ok, nil
}

// TakeLeadership claims single-writer ownership of the journal at
// path: verify that no live leader holds it, take the O_EXCL lock
// file, open (and compact) the journal, and fsync a fresh lease one
// term past the previous leader's. On success the caller is the
// leader and must keep renewing the lease.
//
// Leadership is takeable when the previous lease has expired, when the
// lock holder is a same-host process that provably died, or when no
// lock file exists at all (a graceful shutdown releases the lock
// early, letting a standby skip the rest of the lease window; a live
// leader whose lock vanishes deposes itself at its next renewal, so
// the fencing still holds). ErrLeaseHeld means none of those — keep
// polling.
func TakeLeadership(path, owner string, ttl time.Duration) (*Journal, []Record, Lease, error) {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	prev, havePrev, err := peekLease(path)
	if err != nil {
		return nil, nil, Lease{}, err
	}
	lockPath := LockPath(path)
	holder, herr := readLockOwner(lockPath)
	switch {
	case herr == nil && holder == owner:
		// Our own stale lock (a crashed previous run of this very
		// process identity); fall through and re-create it.
		os.Remove(lockPath)
	case herr == nil:
		expired := havePrev && prev.Expired(time.Now())
		if !expired && !lockHolderDead(holder) {
			// No lease yet but a lock: the holder is between locking and
			// its first lease write — still a live claim.
			return nil, nil, Lease{}, fmt.Errorf("%w (owner %s, term %d)", ErrLeaseHeld, holder, prev.Term)
		}
		os.Remove(lockPath)
	case !os.IsNotExist(herr):
		return nil, nil, Lease{}, fmt.Errorf("cluster: read leader lock: %w", herr)
	}
	if err := acquireLock(lockPath, owner); err != nil {
		if os.IsExist(err) {
			// Another standby won the O_EXCL race this instant.
			return nil, nil, Lease{}, fmt.Errorf("%w (lost lock race)", ErrLeaseHeld)
		}
		return nil, nil, Lease{}, fmt.Errorf("cluster: acquire leader lock: %w", err)
	}
	j, recs, err := OpenJournal(path)
	if err != nil {
		releaseLock(lockPath, owner)
		return nil, nil, Lease{}, err
	}
	term := int64(1)
	if l, ok := LatestLease(recs); ok {
		term = l.Term + 1
	}
	lease := Lease{Term: term, Owner: owner, Deadline: time.Now().Add(ttl)}
	if err := j.Lease(lease); err != nil {
		j.Close()
		releaseLock(lockPath, owner)
		return nil, nil, Lease{}, fmt.Errorf("cluster: write initial lease: %w", err)
	}
	return j, recs, lease, nil
}
