package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"igpart/internal/fault"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal has %d records", len(recs))
	}
	body := json.RawMessage(`{"seed":7}`)
	for _, id := range []string{"cjob-1", "cjob-2", "cjob-3"} {
		if err := j.Accept(id, "batch-0", "key-"+id, body); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Complete("cjob-2", StateDone); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	// Boot-time compaction drops the completed cjob-2 pair, leaving the
	// high-water mark plus the two unfinished accepts.
	if len(recs) != 3 || recs[0].T != "mark" || recs[0].Job != "cjob-3" {
		t.Fatalf("replayed %+v, want mark(cjob-3) + 2 accepts", recs)
	}
	un := Unfinished(recs)
	if len(un) != 2 || un[0].Job != "cjob-1" || un[1].Job != "cjob-3" {
		t.Fatalf("unfinished = %+v, want cjob-1 and cjob-3", un)
	}
	if un[0].Batch != "batch-0" || string(un[0].Body) != `{"seed":7}` || un[0].Key != "key-cjob-1" {
		t.Fatalf("accept payload not preserved: %+v", un[0])
	}
}

// A torn final line — the fsync'd write was interrupted mid-crash — is
// tolerated and dropped; the journal stays usable.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Accept("cjob-1", "", "k", json.RawMessage(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: append half a record with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"done","job":"cj`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if len(recs) != 1 || recs[0].Job != "cjob-1" {
		t.Fatalf("replayed %+v, want just the accept", recs)
	}
	if un := Unfinished(recs); len(un) != 1 {
		t.Fatalf("torn completion must leave the job unfinished, got %+v", un)
	}
	// The torn tail must be truncated, not just skipped: an append after
	// recovery has to start on a clean line, or the NEXT boot would see
	// mid-file corruption and refuse the journal entirely.
	if err := j2.Complete("cjob-1", StateDone); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("journal corrupted by post-recovery append: %v", err)
	}
	defer j3.Close()
	// The completed pair compacts away; only the high-water mark remains.
	if len(recs) != 1 || recs[0].T != "mark" || recs[0].Job != "cjob-1" {
		t.Fatalf("after recovery+append replayed %+v, want just mark(cjob-1)", recs)
	}
	if un := Unfinished(recs); len(un) != 0 {
		t.Fatalf("completed job still unfinished: %+v", un)
	}
}

// A crash can also cut the write exactly between the record and its
// newline: the tail parses as JSON but was never acknowledged (Sync
// follows the full line), so it is dropped and truncated like any
// other torn tail.
func TestJournalTornTailMissingNewline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Accept("cjob-1", "", "k", json.RawMessage(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"done","job":"cjob-1"}`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("newline-less tail rejected: %v", err)
	}
	if len(recs) != 1 || recs[0].T != "accept" {
		t.Fatalf("replayed %+v, want just the accept", recs)
	}
	if err := j2.Accept("cjob-2", "", "k2", json.RawMessage(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("journal corrupted by post-recovery append: %v", err)
	}
	defer j3.Close()
	if len(recs) != 2 || recs[1].Job != "cjob-2" {
		t.Fatalf("after recovery+append replayed %+v, want the two accepts", recs)
	}
}

// Garbage in the middle of the file is not a torn write — it means the
// file is not our journal, and replaying it would silently lose work.
func TestJournalRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	if err := os.WriteFile(path, []byte("not json\n{\"t\":\"accept\",\"job\":\"cjob-1\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

// Boot-time compaction must preserve the journal's two observable
// contracts: the Unfinished replay set is identical to the original's,
// and the high-water ID Recover derives (so fresh IDs never collide
// with completed jobs dropped from the file) survives via the mark.
func TestJournalCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	body := json.RawMessage(`{"nets":5}`)
	for _, id := range []string{"cjob-1", "cjob-2", "cjob-3", "cjob-4", "cjob-5"} {
		if err := j.Accept(id, "batch-1", "key-"+id, body); err != nil {
			t.Fatal(err)
		}
	}
	// Complete all but cjob-2 and cjob-4; note cjob-5 — the high-water
	// ID — is among the completed, so without the mark a recovered
	// coordinator would mint cjob-5 again.
	for _, id := range []string{"cjob-1", "cjob-3", "cjob-5"} {
		if err := j.Complete(id, StateDone); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wantUnfinished := Unfinished(mustParseJournal(t, before))

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	// Compacted: mark + the 2 unfinished accepts, nothing else.
	if len(recs) != 3 || recs[0].T != "mark" || recs[0].Job != "cjob-5" {
		t.Fatalf("compacted set = %+v, want mark(cjob-5) + 2 accepts", recs)
	}
	got := Unfinished(recs)
	if len(got) != len(wantUnfinished) {
		t.Fatalf("unfinished set changed: got %+v, want %+v", got, wantUnfinished)
	}
	for i := range got {
		if got[i].Job != wantUnfinished[i].Job || got[i].Key != wantUnfinished[i].Key ||
			got[i].Batch != wantUnfinished[i].Batch || string(got[i].Body) != string(wantUnfinished[i].Body) {
			t.Fatalf("unfinished[%d] = %+v, want %+v", i, got[i], wantUnfinished[i])
		}
	}
	// The on-disk file shrank and is itself a valid journal: appends go
	// to the compacted file and a further boot replays them.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(before) {
		t.Fatalf("compaction did not shrink the file: %d -> %d bytes", len(before), len(after))
	}
	if err := j2.Complete("cjob-2", StateDone); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	j3, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("compacted journal unreadable: %v", err)
	}
	defer j3.Close()
	if un := Unfinished(recs); len(un) != 1 || un[0].Job != "cjob-4" {
		t.Fatalf("after append+reboot unfinished = %+v, want just cjob-4", un)
	}
	// A Coordinator recovering from the compacted journal must not
	// regress its ID counter below the dropped completed jobs.
	c, err := New(Config{Backends: []Backend{{Name: "b0", URL: "http://127.0.0.1:1"}}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())
	c.Recover(recs)
	c.mu.Lock()
	next := c.nextID
	c.mu.Unlock()
	if next < 5 {
		t.Fatalf("recovered nextID = %d, want >= 5 (mark must pin the high-water ID)", next)
	}
}

// An already-compacted journal is not rewritten again on the next
// boot — the rewrite only fires when it shrinks the record set.
func TestJournalCompactionIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Accept("cjob-1", "", "k", json.RawMessage(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Accept("cjob-2", "", "k", json.RawMessage(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Complete("cjob-1", StateDone); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, _, err := OpenJournal(path) // compacts: mark + accept(cjob-2)
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	st1, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	j3, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j3.Close()
	st2, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st1.Size() != st2.Size() {
		t.Fatalf("second boot rewrote a stable journal: %d -> %d bytes", st1.Size(), st2.Size())
	}
	if len(recs) != 2 || recs[0].T != "mark" || recs[1].Job != "cjob-2" {
		t.Fatalf("stable journal replayed %+v, want mark + accept(cjob-2)", recs)
	}
}

func mustParseJournal(t *testing.T, raw []byte) []Record {
	t.Helper()
	var recs []Record
	for _, line := range bytes.Split(raw, []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("unparseable journal line %q: %v", line, err)
		}
		recs = append(recs, r)
	}
	return recs
}

// Appends after Close are dropped, not crashed on — the shutdown path
// races runners finishing against the journal closing.
func TestJournalAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Complete("cjob-9", StateDone); err != nil {
		t.Fatalf("append after close: %v", err)
	}
	var nilJ *Journal
	if err := nilJ.Accept("x", "", "", nil); err != nil {
		t.Fatalf("nil journal accept: %v", err)
	}
	if err := nilJ.Close(); err != nil {
		t.Fatalf("nil journal close: %v", err)
	}
}

// Compaction keeps exactly one lease record — the newest by term, then
// deadline — no matter how many claims and renewals the journal has
// accumulated. Dropping it would let the next takeover reuse a term;
// keeping an old one would misreport who led last.
func TestJournalCompactionPreservesNewestLease(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now()
	leases := []Lease{
		{Term: 1, Owner: "a", Deadline: base.Add(time.Second)},
		{Term: 2, Owner: "b", Deadline: base.Add(2 * time.Second)},
		{Term: 2, Owner: "b", Deadline: base.Add(5 * time.Second)}, // renewal
	}
	for i, l := range leases {
		if err := j.Lease(l); err != nil {
			t.Fatal(err)
		}
		// Interleave completed work so compaction has something to drop.
		id := fmt.Sprintf("cjob-%d", i+1)
		if err := j.Accept(id, "", "k", json.RawMessage(`{}`)); err != nil {
			t.Fatal(err)
		}
		if err := j.Complete(id, StateDone); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	nLease := 0
	for _, r := range recs {
		if r.T == "lease" {
			nLease++
		}
	}
	if nLease != 1 {
		t.Fatalf("compacted journal keeps %d lease records, want exactly 1 (%+v)", nLease, recs)
	}
	l, ok := LatestLease(recs)
	if !ok || l.Term != 2 || l.Owner != "b" {
		t.Fatalf("surviving lease = %+v, want term 2 owner b", l)
	}
	if !l.Deadline.Equal(leases[2].Deadline.Truncate(0)) && l.Deadline.UnixNano() != leases[2].Deadline.UnixNano() {
		t.Fatalf("surviving lease deadline %v, want the renewal's %v", l.Deadline, leases[2].Deadline)
	}
}

// Compact-then-recover with a live lease: a coordinator booting from a
// compacted journal (mark + lease + unfinished) must resubmit exactly
// the unfinished set under the original IDs and keep counting above the
// mark — the lease record must not confuse either derivation.
func TestJournalCompactedLeaseRecover(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Lease(Lease{Term: 3, Owner: "a", Deadline: time.Now().Add(time.Hour)}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"cjob-6", "cjob-7", "cjob-8"} {
		if err := j.Accept(id, "", "key-"+id, json.RawMessage(`{"seed":1}`)); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"cjob-6", "cjob-8"} {
		if err := j.Complete(id, StateDone); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	j2, recs, err := OpenJournal(path) // compacts: mark + lease + cjob-7
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if un := Unfinished(recs); len(un) != 1 || un[0].Job != "cjob-7" {
		t.Fatalf("unfinished = %+v, want cjob-7", un)
	}
	if l, ok := LatestLease(recs); !ok || l.Term != 3 {
		t.Fatalf("lease lost in compaction: %+v ok=%v", l, ok)
	}
	c, err := New(Config{Backends: []Backend{{Name: "b0", URL: "http://127.0.0.1:1"}}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())
	n := c.Recover(recs)
	if n != 1 {
		t.Fatalf("Recover resubmitted %d jobs, want 1", n)
	}
	if _, ok := c.Get("cjob-7"); !ok {
		t.Fatal("recovered job not tracked under its original ID")
	}
	c.mu.Lock()
	next := c.nextID
	c.mu.Unlock()
	if next < 8 {
		t.Fatalf("recovered nextID = %d, want >= 8 (mark must outlive the lease)", next)
	}
}

// The journal.write-err fault point fails the append before any byte
// reaches disk — the coordinator must surface the error instead of
// acknowledging a job it cannot durably own.
func TestJournalWriteErrInjection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.New(1, nil, fault.Rule{Point: fault.JournalWriteErr, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	j.SetFault(inj)
	if err := j.Accept("cjob-1", "", "k", json.RawMessage(`{}`)); err == nil {
		t.Fatal("injected write error not surfaced")
	}
	// Limit=1: the fault is spent, the journal works again.
	if err := j.Accept("cjob-2", "", "k", json.RawMessage(`{}`)); err != nil {
		t.Fatalf("journal did not recover after injected fault: %v", err)
	}
	j.Close()
	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != 1 || recs[0].Job != "cjob-2" {
		t.Fatalf("replayed %+v, want only the acknowledged cjob-2", recs)
	}
}
