package cluster

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal has %d records", len(recs))
	}
	body := json.RawMessage(`{"seed":7}`)
	for _, id := range []string{"cjob-1", "cjob-2", "cjob-3"} {
		if err := j.Accept(id, "batch-0", "key-"+id, body); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Complete("cjob-2", StateDone); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs))
	}
	un := Unfinished(recs)
	if len(un) != 2 || un[0].Job != "cjob-1" || un[1].Job != "cjob-3" {
		t.Fatalf("unfinished = %+v, want cjob-1 and cjob-3", un)
	}
	if un[0].Batch != "batch-0" || string(un[0].Body) != `{"seed":7}` || un[0].Key != "key-cjob-1" {
		t.Fatalf("accept payload not preserved: %+v", un[0])
	}
}

// A torn final line — the fsync'd write was interrupted mid-crash — is
// tolerated and dropped; the journal stays usable.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Accept("cjob-1", "", "k", json.RawMessage(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: append half a record with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"done","job":"cj`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if len(recs) != 1 || recs[0].Job != "cjob-1" {
		t.Fatalf("replayed %+v, want just the accept", recs)
	}
	if un := Unfinished(recs); len(un) != 1 {
		t.Fatalf("torn completion must leave the job unfinished, got %+v", un)
	}
	// The torn tail must be truncated, not just skipped: an append after
	// recovery has to start on a clean line, or the NEXT boot would see
	// mid-file corruption and refuse the journal entirely.
	if err := j2.Complete("cjob-1", StateDone); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("journal corrupted by post-recovery append: %v", err)
	}
	defer j3.Close()
	if len(recs) != 2 || recs[1].T != "done" || recs[1].Job != "cjob-1" {
		t.Fatalf("after recovery+append replayed %+v, want accept then done", recs)
	}
	if un := Unfinished(recs); len(un) != 0 {
		t.Fatalf("completed job still unfinished: %+v", un)
	}
}

// A crash can also cut the write exactly between the record and its
// newline: the tail parses as JSON but was never acknowledged (Sync
// follows the full line), so it is dropped and truncated like any
// other torn tail.
func TestJournalTornTailMissingNewline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Accept("cjob-1", "", "k", json.RawMessage(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"done","job":"cjob-1"}`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("newline-less tail rejected: %v", err)
	}
	if len(recs) != 1 || recs[0].T != "accept" {
		t.Fatalf("replayed %+v, want just the accept", recs)
	}
	if err := j2.Accept("cjob-2", "", "k2", json.RawMessage(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("journal corrupted by post-recovery append: %v", err)
	}
	defer j3.Close()
	if len(recs) != 2 || recs[1].Job != "cjob-2" {
		t.Fatalf("after recovery+append replayed %+v, want the two accepts", recs)
	}
}

// Garbage in the middle of the file is not a torn write — it means the
// file is not our journal, and replaying it would silently lose work.
func TestJournalRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	if err := os.WriteFile(path, []byte("not json\n{\"t\":\"accept\",\"job\":\"cjob-1\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

// Appends after Close are dropped, not crashed on — the shutdown path
// races runners finishing against the journal closing.
func TestJournalAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Complete("cjob-9", StateDone); err != nil {
		t.Fatalf("append after close: %v", err)
	}
	var nilJ *Journal
	if err := nilJ.Accept("x", "", "", nil); err != nil {
		t.Fatalf("nil journal accept: %v", err)
	}
	if err := nilJ.Close(); err != nil {
		t.Fatalf("nil journal close: %v", err)
	}
}
