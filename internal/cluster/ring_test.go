package cluster

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"testing"
)

// keys returns n distinct routing keys shaped like production ones:
// hex SHA-256 content addresses.
func testKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%x", sha256.Sum256([]byte(fmt.Sprintf("netlist-%d", i))))
	}
	return out
}

func backendNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("b%d", i)
	}
	return out
}

// Distribution balance: with the default vnode count, every backend's
// key share stays within a factor of the even split across fleet sizes
// 2–8. Consistent hashing is not perfectly uniform, but a share
// outside [0.5, 1.6]× of even means the vnode count or hash is broken.
func TestRingBalance(t *testing.T) {
	keys := testKeys(20000)
	for n := 2; n <= 8; n++ {
		r, err := NewRing(backendNames(n), 0)
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[string]int)
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		mean := float64(len(keys)) / float64(n)
		for _, name := range backendNames(n) {
			share := float64(counts[name]) / mean
			if share < 0.5 || share > 1.6 {
				t.Errorf("n=%d: backend %s owns %d keys, %.2fx the even share", n, name, counts[name], share)
			}
		}
	}
}

// Minimal key movement: removing one backend moves exactly the keys it
// owned — every key owned by a survivor keeps its owner. This is the
// property that makes the ring a cache-sharding function: a node death
// does not reshuffle (and so does not cold-start) the rest of the
// fleet's caches.
func TestRingMinimalMovement(t *testing.T) {
	keys := testKeys(10000)
	names := backendNames(5)
	before, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	const removed = "b2"
	var survivors []string
	for _, n := range names {
		if n != removed {
			survivors = append(survivors, n)
		}
	}
	after, err := NewRing(survivors, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, k := range keys {
		was := before.Owner(k)
		now := after.Owner(k)
		if was == removed {
			moved++
			continue
		}
		if was != now {
			t.Fatalf("key %s moved %s -> %s though %s survived", k[:12], was, now, was)
		}
	}
	if moved == 0 {
		t.Fatal("removed backend owned no keys; balance test should have caught this")
	}
}

// Deterministic routing: two independently built rings over the same
// backend list route every key identically, and the full failover
// order is stable — the property that lets any coordinator (or a
// rebooted one) route a resubmission to the same secondary.
func TestRingDeterministicRouting(t *testing.T) {
	names := backendNames(4)
	r1, _ := NewRing(names, 0)
	r2, _ := NewRing(names, 0)
	for _, k := range testKeys(500) {
		o1, o2 := r1.Route(k), r2.Route(k)
		if len(o1) != len(names) || len(o2) != len(names) {
			t.Fatalf("route for %s covers %d/%d backends", k[:12], len(o1), len(o2))
		}
		seen := make(map[string]bool)
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("rings disagree on %s: %v vs %v", k[:12], o1, o2)
			}
			if seen[o1[i]] {
				t.Fatalf("route for %s repeats backend %s", k[:12], o1[i])
			}
			seen[o1[i]] = true
		}
		if o1[0] != r1.Owner(k) {
			t.Fatalf("Route[0]=%s but Owner=%s", o1[0], r1.Owner(k))
		}
	}
}

func TestRingRejectsBadConfig(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty backend list accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate backend name accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty backend name accepted")
	}
}

func TestParseBackends(t *testing.T) {
	bs, err := ParseBackends("http://h1:8080, n2=http://h2:9090/ ,h3:7070")
	if err != nil {
		t.Fatal(err)
	}
	want := []Backend{
		{Name: "b0", URL: "http://h1:8080"},
		{Name: "n2", URL: "http://h2:9090"},
		{Name: "b2", URL: "http://h3:7070"},
	}
	if len(bs) != len(want) {
		t.Fatalf("got %d backends, want %d", len(bs), len(want))
	}
	for i := range want {
		if bs[i] != want[i] {
			t.Errorf("backend %d = %+v, want %+v", i, bs[i], want[i])
		}
	}
	if _, err := ParseBackends(" , "); err == nil {
		t.Error("empty spec accepted")
	}
}

// Duplicate backend names are a typed error from ParseBackends — a
// silent duplicate would double one backend's ring share, so both the
// explicit-name and positional-name collision shapes must be caught.
func TestParseBackendsRejectsDuplicates(t *testing.T) {
	cases := []string{
		"a=http://h1,a=http://h2",          // explicit vs explicit
		"b1=http://h1,http://h2",           // explicit vs positional (entry 1 auto-names b1)
		"http://h1,b0=http://h2",           // positional vs explicit
		"http://h1,http://h2,b1=http://h3", // positional vs later explicit
	}
	for _, spec := range cases {
		if _, err := ParseBackends(spec); !errors.Is(err, ErrDuplicateBackend) {
			t.Errorf("ParseBackends(%q) = %v, want ErrDuplicateBackend", spec, err)
		}
	}
	// Distinct names sharing a URL are fine — that is a deployment
	// choice (weighting), not a config typo.
	if _, err := ParseBackends("a=http://h1,b=http://h1"); err != nil {
		t.Errorf("shared URL rejected: %v", err)
	}
}

// MovedKeys is the membership-change churn estimator: identical rings
// move nothing, adding one node to k moves about 1/(k+1) of the keys,
// and the sample is deterministic call to call.
func TestMovedKeysEstimatesChurn(t *testing.T) {
	r2, err := NewRing([]string{"b0", "b1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := NewRing([]string{"b0", "b1", "b2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4096
	if moved := MovedKeys(r2, r2, n); moved != 0 {
		t.Fatalf("identical rings moved %d keys", moved)
	}
	moved := MovedKeys(r2, r3, n)
	if moved == 0 || moved > n/2 {
		t.Fatalf("2->3 backends moved %d/%d keys, want roughly a third", moved, n)
	}
	if again := MovedKeys(r2, r3, n); again != moved {
		t.Fatalf("estimate not deterministic: %d then %d", moved, again)
	}
}
