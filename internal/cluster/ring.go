// Package cluster is the coordinator tier that scales igpartd out: a
// consistent-hash ring that routes jobs to N backends by the same
// content address that memoizes results (SHA-256 of the netlist's
// CanonicalBytes — so each backend's result cache shards naturally,
// with zero invalidation protocol), a backend client with health
// probing, a failover policy that resubmits work whose backend died,
// and a durable fsync'd job journal replayed on boot so a coordinator
// restart loses no accepted work.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultReplicas is the virtual-node count per backend. 128 vnodes
// keep per-backend key shares within a few tens of percent of even
// while the ring stays small enough to rebuild on every topology
// change (rebuilds happen on membership reloads, which are operator
// actions, not hot-path events).
const DefaultReplicas = 128

// Ring is an immutable consistent-hash ring over named backends. Keys
// and virtual nodes share one hash space; a key belongs to the first
// vnode clockwise from its hash. Immutability is deliberate: the
// backend set is configuration, so routing is a pure function and two
// coordinators with the same -backends flag route identically.
type Ring struct {
	names  []string // distinct backend names, insertion order
	hashes []uint64 // sorted vnode positions
	owners []string // owners[i] owns hashes[i]
}

// NewRing builds a ring with the given virtual-node count per backend
// (<= 0 means DefaultReplicas). Backend names must be non-empty and
// distinct — they are the ring's identity, so a duplicate would
// silently double one backend's share.
func NewRing(names []string, replicas int) (*Ring, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one backend")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(names))
	r := &Ring{
		names:  append([]string(nil), names...),
		hashes: make([]uint64, 0, len(names)*replicas),
		owners: make([]string, 0, len(names)*replicas),
	}
	type vnode struct {
		h     uint64
		owner string
	}
	vnodes := make([]vnode, 0, len(names)*replicas)
	for _, name := range names {
		if name == "" {
			return nil, fmt.Errorf("cluster: empty backend name")
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate backend name %q", name)
		}
		seen[name] = true
		for i := 0; i < replicas; i++ {
			vnodes = append(vnodes, vnode{ringHash(fmt.Sprintf("%s#%d", name, i)), name})
		}
	}
	sort.Slice(vnodes, func(a, b int) bool { return vnodes[a].h < vnodes[b].h })
	for _, v := range vnodes {
		r.hashes = append(r.hashes, v.h)
		r.owners = append(r.owners, v.owner)
	}
	return r, nil
}

// ringHash positions a vnode or key: the first 8 bytes of SHA-256.
// SHA-256 (rather than FNV) because vnode labels are short and highly
// structured — a weak hash clumps them and skews the shares.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Backends returns the backend names in configuration order.
func (r *Ring) Backends() []string { return append([]string(nil), r.names...) }

// Owner returns the backend the key routes to first.
func (r *Ring) Owner(key string) string { return r.owners[r.succ(key)] }

// Route returns every backend in failover order for the key: the owner
// first, then each further backend in the order their vnodes appear
// clockwise from the key. The order is deterministic per key, so a
// resubmitted job lands on the same secondary from any coordinator.
func (r *Ring) Route(key string) []string {
	out := make([]string, 0, len(r.names))
	seen := make(map[string]bool, len(r.names))
	for i, start := 0, r.succ(key); len(out) < len(r.names) && i < len(r.hashes); i++ {
		owner := r.owners[(start+i)%len(r.hashes)]
		if !seen[owner] {
			seen[owner] = true
			out = append(out, owner)
		}
	}
	return out
}

// MovedKeys estimates ring churn between two topologies: of n
// synthetic keys, how many route to a different owner on after than on
// before. For a consistent-hash ring the expectation is n·(share of
// the ring the changed backends own) — adding one node to a fleet of k
// moves about n/(k+1) keys, never a full rehash. The key stream is
// fixed, so the estimate is deterministic.
func MovedKeys(before, after *Ring, n int) int {
	moved := 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("movedkeys-sample-%d", i)
		if before.Owner(key) != after.Owner(key) {
			moved++
		}
	}
	return moved
}

// succ returns the index of the key's successor vnode.
func (r *Ring) succ(key string) int {
	h := ringHash(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return i
}
