package cluster

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// Growing and shrinking the fleet live: adds steal only their
// consistent-hash share, removes disappear from routing, and the
// metrics record the churn.
func TestUpdateBackendsAddRemove(t *testing.T) {
	c, b0, b1 := testCluster(t, Config{MinDwell: -1})
	b2 := newFakeBackend()
	t.Cleanup(b2.srv.Close)

	fleet2 := c.Backends()
	fleet3 := append(append([]Backend(nil), fleet2...), Backend{Name: "b2", URL: b2.srv.URL})
	ch, err := c.UpdateBackends(fleet3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Added) != 1 || ch.Added[0] != "b2" || len(ch.Removed) != 0 {
		t.Fatalf("change = %+v, want add b2 only", ch)
	}
	// Minimal movement: one joiner in a fleet of three owns about a
	// third of the keys; far more than half moving means a full rehash.
	if ch.MovedKeys == 0 || ch.MovedKeys > ch.SampledKeys/2 {
		t.Fatalf("add moved %d/%d sampled keys", ch.MovedKeys, ch.SampledKeys)
	}
	if got := len(c.Ring().Backends()); got != 3 {
		t.Fatalf("ring has %d backends after add", got)
	}
	if got := c.Metrics().Gauge("cluster.backends_total").Value(); got != 3 {
		t.Fatalf("backends_total = %v", got)
	}

	// Work still lands, including on the joiner for keys it now owns.
	for seed := int64(1); seed <= 8; seed++ {
		j := mustSubmit(t, c, string(rune('a'+seed))+"-memb-key", seed)
		if snap := waitDone(t, j); snap.State != StateDone {
			t.Fatalf("seed %d ended %s: %s", seed, snap.State, snap.Err)
		}
	}

	ch, err = c.UpdateBackends(fleet2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Removed) != 1 || ch.Removed[0] != "b2" || len(ch.Added) != 0 {
		t.Fatalf("change = %+v, want remove b2 only", ch)
	}
	if got := len(c.Ring().Backends()); got != 2 {
		t.Fatalf("ring has %d backends after remove", got)
	}
	_ = b0
	_ = b1
}

// A removed backend's in-flight jobs drain to completion on it — the
// retained client keeps polling — while new work for its keys routes
// to the survivors.
func TestUpdateBackendsDrainsInflight(t *testing.T) {
	c, b0, b1 := testCluster(t, Config{MinDwell: -1})
	// Find a key the soon-to-be-removed b1 owns.
	key := ""
	for i := 0; i < 10000; i++ {
		k := "drain-key-" + string(rune('0'+i%10)) + "-" + time.Duration(i).String()
		if c.Ring().Owner(k) == "b1" {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key routing to b1 found")
	}
	b0.setHold(true)
	b1.setHold(true)
	j := mustSubmit(t, c, key, 7)
	deadline := time.Now().Add(5 * time.Second)
	for len(b1.seeds()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never dispatched to b1")
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := c.UpdateBackends([]Backend{{Name: "b0", URL: b0.srv.URL}}); err != nil {
		t.Fatal(err)
	}
	// The departed backend finishes the held job; the coordinator is
	// still polling it through the retained client.
	b1.release(7)
	if snap := waitDone(t, j); snap.State != StateDone || snap.Backend != "b1" {
		t.Fatalf("drained job: state %s on %s (err %s)", snap.State, snap.Backend, snap.Err)
	}

	// The same key now routes to the survivor.
	b0.setHold(false)
	j2 := mustSubmit(t, c, key, 8)
	if snap := waitDone(t, j2); snap.State != StateDone || snap.Backend != "b0" {
		t.Fatalf("post-remove job: state %s on %s", snap.State, snap.Backend)
	}
}

// The flap guard: a backend re-added within MinDwell of its removal is
// suppressed; with the guard disabled it rejoins immediately.
func TestUpdateBackendsFlapGuard(t *testing.T) {
	c, b0, b1 := testCluster(t, Config{MinDwell: time.Hour})
	fleet2 := c.Backends()
	only0 := []Backend{{Name: "b0", URL: b0.srv.URL}}
	if _, err := c.UpdateBackends(only0); err != nil {
		t.Fatal(err)
	}
	ch, err := c.UpdateBackends(fleet2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Suppressed) != 1 || ch.Suppressed[0] != "b1" || len(ch.Added) != 0 {
		t.Fatalf("change = %+v, want b1 flap-suppressed", ch)
	}
	if got := len(c.Ring().Backends()); got != 1 {
		t.Fatalf("suppressed backend rejoined the ring (%d backends)", got)
	}
	if got := c.Metrics().Counter("cluster.membership.flap_suppressed").Value(); got != 1 {
		t.Fatalf("flap_suppressed = %d", got)
	}
	// A reload that would leave only suppressed backends is refused
	// outright — it would empty the fleet.
	if _, err := c.UpdateBackends([]Backend{{Name: "b1", URL: b1.srv.URL}}); err == nil {
		t.Fatal("all-suppressed reload accepted")
	}

	cd, _, _ := testCluster(t, Config{MinDwell: -1})
	fleet2d := cd.Backends()
	if _, err := cd.UpdateBackends(fleet2d[:1]); err != nil {
		t.Fatal(err)
	}
	ch, err = cd.UpdateBackends(fleet2d)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Added) != 1 || ch.Added[0] != "b1" || len(ch.Suppressed) != 0 {
		t.Fatalf("with the guard disabled, change = %+v, want immediate re-add", ch)
	}
}

func TestUpdateBackendsRejectsBadFleets(t *testing.T) {
	c, b0, _ := testCluster(t, Config{})
	if _, err := c.UpdateBackends(nil); err == nil {
		t.Error("empty fleet accepted")
	}
	dup := []Backend{{Name: "b0", URL: b0.srv.URL}, {Name: "b0", URL: "http://other:1"}}
	if _, err := c.UpdateBackends(dup); !errors.Is(err, ErrDuplicateBackend) {
		t.Errorf("duplicate fleet: err = %v, want ErrDuplicateBackend", err)
	}
	// Rejections leave the fleet untouched.
	if got := len(c.Ring().Backends()); got != 2 {
		t.Errorf("rejected update changed the ring (%d backends)", got)
	}
}

func TestParseBackendsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "backends.txt")
	content := "# fleet as of today\nhttp://h1:8080\n\nn2=http://h2:9090  # the big box\n  h3:7070\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	bs, err := ParseBackendsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Backend{
		{Name: "b0", URL: "http://h1:8080"},
		{Name: "n2", URL: "http://h2:9090"},
		{Name: "b2", URL: "http://h3:7070"},
	}
	if len(bs) != len(want) {
		t.Fatalf("got %+v, want %+v", bs, want)
	}
	for i := range want {
		if bs[i] != want[i] {
			t.Errorf("backend %d = %+v, want %+v", i, bs[i], want[i])
		}
	}
	if _, err := ParseBackendsFile(filepath.Join(dir, "absent.txt")); err == nil {
		t.Error("missing file accepted")
	}
	empty := filepath.Join(dir, "empty.txt")
	os.WriteFile(empty, []byte("# nothing\n\n"), 0o644)
	if _, err := ParseBackendsFile(empty); err == nil {
		t.Error("comment-only file accepted")
	}
}

// The watcher applies file edits on its poll and immediately on a
// force tick (SIGHUP in the daemon), and a broken edit keeps the
// current fleet.
func TestWatchBackendsFile(t *testing.T) {
	c, b0, b1 := testCluster(t, Config{MinDwell: -1})
	dir := t.TempDir()
	path := filepath.Join(dir, "backends.txt")
	both := "b0=" + b0.srv.URL + "\nb1=" + b1.srv.URL + "\n"
	if err := os.WriteFile(path, []byte(both), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	force := make(chan struct{}, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.WatchBackendsFile(ctx, path, 2*time.Millisecond, force, nil)
	}()
	// Let the watcher take its baseline stat of the current file before
	// editing it, or the edit can slip under the baseline unseen.
	time.Sleep(100 * time.Millisecond)

	waitFleet := func(n int, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for len(c.Ring().Backends()) != n {
			if time.Now().After(deadline) {
				t.Fatalf("%s: fleet stuck at %v", what, c.Ring().Backends())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Shrink via the poll path.
	if err := os.WriteFile(path, []byte("b0="+b0.srv.URL+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	waitFleet(1, "poll-driven remove")

	// A half-written edit must not take the fleet down.
	if err := os.WriteFile(path, []byte("# oops, nothing here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for c.Metrics().Counter("cluster.membership.reload_errors").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("broken edit never reported")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := len(c.Ring().Backends()); got != 1 {
		t.Fatalf("broken edit changed the fleet (%d backends)", got)
	}

	// Grow back via the force path.
	if err := os.WriteFile(path, []byte(both), 0o644); err != nil {
		t.Fatal(err)
	}
	force <- struct{}{}
	waitFleet(2, "forced re-add")

	cancel()
	<-done
}
