package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Backend names one igpartd node: Name is the ring identity (stable
// across URL changes), URL its HTTP base, e.g. http://10.0.0.7:8080.
type Backend struct {
	Name string
	URL  string
}

// ErrDuplicateBackend rejects a backend list in which two entries
// share a ring name. Letting the last one win would silently
// double-count the name's virtual nodes and hide half the fleet.
var ErrDuplicateBackend = errors.New("cluster: duplicate backend name")

// ParseBackends parses the -backends flag: a comma-separated list of
// URLs, each optionally prefixed "name=". Unnamed backends are called
// b0, b1, … in flag order — positional names are fine for a static
// fleet, but naming them explicitly keeps the ring stable when the
// list is reordered. Duplicate names (explicit, or an explicit name
// colliding with a positional one) are rejected with
// ErrDuplicateBackend.
func ParseBackends(spec string) ([]Backend, error) {
	var out []Backend
	seen := make(map[string]bool)
	for i, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		b := Backend{Name: fmt.Sprintf("b%d", i)}
		if name, url, ok := strings.Cut(part, "="); ok && !strings.Contains(name, "/") {
			b.Name, part = name, url
		}
		if seen[b.Name] {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateBackend, b.Name)
		}
		seen[b.Name] = true
		if !strings.HasPrefix(part, "http://") && !strings.HasPrefix(part, "https://") {
			part = "http://" + part
		}
		b.URL = strings.TrimRight(part, "/")
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil, errors.New("cluster: -backends lists no backends")
	}
	return out, nil
}

// nodeError is a backend failure at the node level — connection
// refused, 5xx, lost job, probe timeout — as opposed to a job-level
// outcome. Node errors are what trigger failover to the next backend
// on the ring; job-level failures would fail identically anywhere
// (the solve is a pure function of the request) and are mirrored.
type nodeError struct {
	backend string
	err     error
}

func (e *nodeError) Error() string {
	return fmt.Sprintf("cluster: backend %s: %v", e.backend, e.err)
}

func (e *nodeError) Unwrap() error { return e.err }

// isNodeError reports whether err warrants failover.
func isNodeError(err error) bool {
	var ne *nodeError
	return errors.As(err, &ne)
}

// IsNodeError reports whether err is a backend node-level failure
// (connection refused, 5xx, 429, lost job) rather than a request-level
// rejection — the HTTP layer maps these to 502.
func IsNodeError(err error) bool { return isNodeError(err) }

// backendJob is the slice of a backend's job JSON the coordinator
// reads; the result payload is relayed opaquely.
type backendJob struct {
	ID     string          `json:"id"`
	State  string          `json:"state"`
	Cached bool            `json:"cached"`
	Error  string          `json:"error"`
	Result json.RawMessage `json:"result"`
}

// client wraps one backend with the coordinator's view of its health.
// Health flips pessimistically on any node error and optimistically on
// any successful call, and the background prober (see Coordinator)
// re-probes /readyz so a dead backend is skipped at routing time
// instead of burning a failed attempt per job.
type client struct {
	b            Backend
	hc           *http.Client
	timeout      time.Duration
	probeTimeout time.Duration

	mu      sync.Mutex
	healthy bool
	lastErr error
}

func newClient(b Backend, hc *http.Client, timeout, probeTimeout time.Duration) *client {
	if probeTimeout <= 0 || probeTimeout > timeout {
		probeTimeout = timeout
	}
	return &client{b: b, hc: hc, timeout: timeout, probeTimeout: probeTimeout, healthy: true}
}

// Healthy reports the coordinator's current belief about the backend.
func (c *client) Healthy() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.healthy
}

func (c *client) setHealth(ok bool, err error) {
	c.mu.Lock()
	c.healthy, c.lastErr = ok, err
	c.mu.Unlock()
}

// do issues one request with the per-call timeout and returns the
// response body. Transport errors and 5xx statuses come back as
// *nodeError; 4xx as plain errors (the request is at fault, not the
// node). A success flips the backend healthy again.
func (c *client) do(ctx context.Context, method, path string, body []byte) (int, []byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.b.URL+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		ne := &nodeError{backend: c.b.Name, err: err}
		c.setHealth(false, ne)
		return 0, nil, ne
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		ne := &nodeError{backend: c.b.Name, err: err}
		c.setHealth(false, ne)
		return 0, nil, ne
	}
	if resp.StatusCode >= 500 {
		ne := &nodeError{backend: c.b.Name, err: fmt.Errorf("%s %s -> %d: %s", method, path, resp.StatusCode, strings.TrimSpace(string(out)))}
		c.setHealth(false, ne)
		return resp.StatusCode, out, ne
	}
	c.setHealth(true, nil)
	return resp.StatusCode, out, nil
}

// submit POSTs a job body to the backend and returns the backend's job
// ID. A 429 (backpressure) is a node-level condition — the node is
// alive but saturated, so the job should try the next ring backend.
func (c *client) submit(ctx context.Context, body []byte) (string, error) {
	status, out, err := c.do(ctx, http.MethodPost, "/v1/jobs", body)
	if err != nil {
		return "", err
	}
	if status == http.StatusTooManyRequests {
		return "", &nodeError{backend: c.b.Name, err: errors.New("queue full (429)")}
	}
	if status != http.StatusAccepted {
		return "", fmt.Errorf("cluster: backend %s rejected job: %d: %s", c.b.Name, status, strings.TrimSpace(string(out)))
	}
	var bj backendJob
	if err := json.Unmarshal(out, &bj); err != nil || bj.ID == "" {
		return "", &nodeError{backend: c.b.Name, err: fmt.Errorf("unparseable submit response %q", out)}
	}
	return bj.ID, nil
}

// patch submits an ECO delta against a backend job and returns the new
// backend job ID. Unlike submit there is no failover retry semantics
// at the call site: the warm-start cache entry lives only on the node
// that solved the base job, so the delta is pinned there and a node
// failure fails the delta (the caller re-PATCHes). The HTTP status is
// returned so the coordinator can classify 404/409 rejections.
func (c *client) patch(ctx context.Context, id string, body []byte) (string, int, error) {
	status, out, err := c.do(ctx, http.MethodPatch, "/v1/jobs/"+id, body)
	if err != nil {
		return "", status, err
	}
	switch status {
	case http.StatusAccepted:
		var bj backendJob
		if err := json.Unmarshal(out, &bj); err != nil || bj.ID == "" {
			return "", status, &nodeError{backend: c.b.Name, err: fmt.Errorf("unparseable patch response %q", out)}
		}
		return bj.ID, status, nil
	case http.StatusTooManyRequests:
		return "", status, &nodeError{backend: c.b.Name, err: errors.New("queue full (429)")}
	default:
		return "", status, fmt.Errorf("cluster: backend %s rejected delta: %d: %s",
			c.b.Name, status, strings.TrimSpace(string(out)))
	}
}

// poll fetches the backend's view of a job. A 404 means the backend
// lost the job (it restarted and its registry is gone) — a node error,
// because the cure is resubmission elsewhere.
func (c *client) poll(ctx context.Context, id string) (*backendJob, error) {
	status, out, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNotFound {
		return nil, &nodeError{backend: c.b.Name, err: fmt.Errorf("job %s unknown (backend restarted?)", id)}
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("cluster: backend %s poll -> %d: %s", c.b.Name, status, strings.TrimSpace(string(out)))
	}
	var bj backendJob
	if err := json.Unmarshal(out, &bj); err != nil {
		return nil, &nodeError{backend: c.b.Name, err: fmt.Errorf("unparseable poll response: %v", err)}
	}
	return &bj, nil
}

// cancel best-effort DELETEs a job on the backend.
func (c *client) cancel(ctx context.Context, id string) {
	_, _, _ = c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil)
}

// probe checks /readyz under its own probe timeout — tighter than the
// general request timeout, because a probe that needs ten seconds has
// already answered the question. Ready means route new work here; a
// live but degraded backend (503) stays unhealthy for routing yet
// needs no failover of running jobs — probe errors, not degradation,
// mark the node dead.
func (c *client) probe(ctx context.Context) bool {
	ctx, cancel := context.WithTimeout(ctx, c.probeTimeout)
	defer cancel()
	status, _, err := c.do(ctx, http.MethodGet, "/readyz", nil)
	ok := err == nil && status == http.StatusOK
	if err == nil {
		// do() flipped healthy on any non-5xx response; readiness is
		// stricter — only a 200 should attract new work.
		c.setHealth(ok, nil)
	}
	return ok
}

// metrics fetches the backend's raw /metrics JSON.
func (c *client) metrics(ctx context.Context) (json.RawMessage, error) {
	status, out, err := c.do(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("cluster: backend %s metrics -> %d", c.b.Name, status)
	}
	return json.RawMessage(out), nil
}

// readyz fetches the backend's raw /readyz payload plus its status.
func (c *client) readyz(ctx context.Context) (bool, json.RawMessage) {
	status, out, err := c.do(ctx, http.MethodGet, "/readyz", nil)
	if err != nil {
		return false, nil
	}
	return status == http.StatusOK, json.RawMessage(out)
}
