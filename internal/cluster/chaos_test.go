package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"igpart/internal/fault"
	"igpart/internal/obs"
)

// coord.crash kills the coordinator at the worst possible instant —
// after the accept is journaled, before any backend sees the job. The
// submitter gets an error (never a silent loss), and the successor's
// replay completes the job under its original ID with exactly one
// completion record.
func TestCoordCrashChaos(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.New(1, nil, fault.Rule{Point: fault.CoordCrash, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg := new(obs.Registry)
	c1, b0, b1 := testCluster(t, Config{Journal: j, Fault: inj, Metrics: reg})
	if _, err := c1.Submit("crash-key", seedBody(42)); !errors.Is(err, ErrShutdown) {
		t.Fatalf("crashed submit returned %v, want ErrShutdown", err)
	}
	if got := reg.Counter("cluster.coord.crashes").Value(); got != 1 {
		t.Fatalf("coord.crashes = %d, want 1", got)
	}
	// The crash deposed the coordinator for good — the spent fault must
	// not leave a half-alive leader accepting work.
	if _, err := c1.Submit("post-crash", seedBody(43)); !errors.Is(err, ErrShutdown) {
		t.Fatalf("deposed coordinator accepted a job (err = %v)", err)
	}
	if len(b0.seeds())+len(b1.seeds()) != 0 {
		t.Fatal("crashed job leaked to a backend before the crash point")
	}
	_ = c1.Shutdown(context.Background())

	// Successor: replay resurfaces the accepted-but-never-dispatched job.
	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	un := Unfinished(recs)
	if len(un) != 1 {
		t.Fatalf("unfinished after crash = %+v, want exactly the crashed accept", un)
	}
	id := un[0].Job
	c2, err := New(Config{
		Backends:       []Backend{{Name: "b0", URL: b0.srv.URL}, {Name: "b1", URL: b1.srv.URL}},
		PollInterval:   2 * time.Millisecond,
		ProbeInterval:  -1,
		RetryBaseDelay: time.Millisecond,
		Journal:        j2,
		Metrics:        new(obs.Registry),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Recover(recs); got != 1 {
		t.Fatalf("Recover resubmitted %d jobs, want 1", got)
	}
	job, ok := c2.Get(id)
	if !ok {
		t.Fatalf("replayed job %s not tracked under its original ID", id)
	}
	if snap := waitDone(t, job); snap.State != StateDone {
		t.Fatalf("replayed job ended %s: %s", snap.State, snap.Err)
	}
	if err := c2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Exactly one completion record — a duplicate would mean the job ran
	// under two identities across the crash.
	j3, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j3.Close()
	dones := 0
	for _, r := range recs {
		if r.T == "done" && r.Job == id {
			dones++
		}
	}
	if un := Unfinished(recs); len(un) != 0 || dones > 1 {
		t.Fatalf("after recovery: %d unfinished, %d done records for %s", len(un), dones, id)
	}
	runs := 0
	for _, s := range append(b0.seeds(), b1.seeds()...) {
		if s == 42 {
			runs++
		}
	}
	if runs != 1 {
		t.Fatalf("crashed job ran %d times across backends, want exactly 1", runs)
	}
}

// Health probes are bounded per-probe and failures are counted: a
// backend that blackholes /readyz must cost one probe timeout, not a
// wedged prober.
func TestProbeTimeoutAndFailureCounter(t *testing.T) {
	stall := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall // hold /readyz (and everything else) open
	}))
	defer slow.Close() // LIFO: runs after the stall is released,
	defer close(stall) // or Close would wait on the held handler forever

	cl := newClient(Backend{Name: "slow", URL: slow.URL}, &http.Client{}, 10*time.Second, 30*time.Millisecond)
	start := time.Now()
	if cl.probe(context.Background()) {
		t.Fatal("probe of a stalled backend reported healthy")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("probe ran %v — the per-probe timeout did not bound it", elapsed)
	}

	reg := new(obs.Registry)
	c, err := New(Config{
		// An unroutable address: every probe fails fast.
		Backends:      []Backend{{Name: "dead", URL: "http://127.0.0.1:1"}},
		ProbeInterval: 2 * time.Millisecond,
		ProbeTimeout:  50 * time.Millisecond,
		PollInterval:  2 * time.Millisecond,
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("cluster.probe.failures").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("probe failures never counted")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
