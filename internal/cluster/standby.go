package cluster

import (
	"context"
	"errors"
	"io"
	"os"
	"sync"
	"time"

	"igpart/internal/obs"
)

// StandbyConfig configures a warm-standby coordinator.
type StandbyConfig struct {
	// Path is the journal shared with (or replicated from) the leader.
	Path string
	// Owner is this process's lease identity (LeaseOwnerID()).
	Owner string
	// TTL is the lease horizon written at takeover and the patience
	// granted to a journal with no lease at all. Default DefaultLeaseTTL.
	TTL time.Duration
	// Poll is the journal tail cadence. Default 100ms.
	Poll time.Duration
	// Metrics receives standby gauges and counters; nil disables.
	Metrics *obs.Registry
}

// StandbyStatus is a point-in-time view of the standby for /readyz.
type StandbyStatus struct {
	Lease      Lease
	HasLease   bool
	Records    int
	Unfinished int
}

// Standby is the warm spare: it tails the shared journal keeping the
// replay set a takeover would need, and claims leadership the moment
// the leader's lease stops being renewed. Tailing is incremental — a
// poll reads only the bytes appended since the last one — with a full
// rebuild whenever the file shrinks or stops parsing mid-stream, which
// is what the leader's boot-time compaction (rename-over with a new,
// smaller file) looks like from a reader holding a byte offset.
type Standby struct {
	cfg StandbyConfig

	// mu guards the tail state: Run's goroutine writes it, Status (the
	// /readyz handler) reads it concurrently.
	mu   sync.Mutex
	recs []Record
	off  int64
}

// NewStandby builds a standby tailer; call Run to start it.
func NewStandby(cfg StandbyConfig) *Standby {
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultLeaseTTL
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 100 * time.Millisecond
	}
	return &Standby{cfg: cfg}
}

// Status reports the standby's current view of the journal.
func (s *Standby) Status() StandbyStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StandbyStatus{Records: len(s.recs), Unfinished: len(Unfinished(s.recs))}
	st.Lease, st.HasLease = LatestLease(s.recs)
	return st
}

// reset drops the tail state so the next refresh re-reads from byte 0.
func (s *Standby) reset() {
	s.mu.Lock()
	s.recs, s.off = nil, 0
	s.mu.Unlock()
	s.cfg.Metrics.Counter("cluster.standby.resets").Add(1)
}

// refresh tails newly appended records. Returns false when the file
// had to be reset (caller may refresh again immediately).
func (s *Standby) refresh() bool {
	f, err := os.Open(s.cfg.Path)
	if err != nil {
		return true // nothing there yet (or transiently unreadable)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return true
	}
	s.mu.Lock()
	off := s.off
	s.mu.Unlock()
	if st.Size() < off {
		// The file shrank: compaction renamed a smaller journal over the
		// path. Rebuild from the start.
		s.reset()
		return false
	}
	if st.Size() == off {
		return true
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return true
	}
	recs, n, err := scanJournal(f)
	if err != nil {
		// Our offset landed mid-record in a rewritten file.
		s.reset()
		return false
	}
	s.mu.Lock()
	s.recs = append(s.recs, recs...)
	s.off = off + n
	total, unfinished := len(s.recs), len(Unfinished(s.recs))
	s.mu.Unlock()
	s.cfg.Metrics.Gauge("cluster.standby.records").Set(float64(total))
	s.cfg.Metrics.Gauge("cluster.standby.unfinished").Set(float64(unfinished))
	return true
}

// Run tails the journal until leadership is takeable, then takes it.
// It returns the open journal, the warm replay records, and the new
// lease — the caller boots a Coordinator from them exactly as a fresh
// leader would. Run blocks until takeover or ctx cancellation.
func (s *Standby) Run(ctx context.Context) (*Journal, []Record, Lease, error) {
	start := time.Now()
	for {
		if !s.refresh() {
			s.refresh() // reread immediately after a compaction reset
		}
		lease, haveLease := LatestLease(s.snapshot())
		now := time.Now()
		takeable := false
		switch {
		case haveLease && lease.Expired(now):
			takeable = true
		case haveLease:
			// Unexpired lease — but a gracefully-stopped leader releases
			// its lock early, and that is takeable without waiting.
			if _, err := os.Stat(LockPath(s.cfg.Path)); os.IsNotExist(err) {
				takeable = true
			}
		case now.Sub(start) >= s.cfg.TTL:
			// No lease at all after a full TTL of watching: a cold journal
			// with no leader. Claim it.
			takeable = true
		}
		if takeable {
			j, recs, l, err := TakeLeadership(s.cfg.Path, s.cfg.Owner, s.cfg.TTL)
			switch {
			case err == nil:
				s.cfg.Metrics.Counter("cluster.standby.takeovers").Add(1)
				return j, recs, l, nil
			case errors.Is(err, ErrLeaseHeld):
				// Lost the race, or the leader came back between our read
				// and the claim. Keep tailing.
			default:
				return nil, nil, Lease{}, err
			}
		}
		select {
		case <-ctx.Done():
			return nil, nil, Lease{}, ctx.Err()
		case <-time.After(s.cfg.Poll):
		}
	}
}

func (s *Standby) snapshot() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recs
}
