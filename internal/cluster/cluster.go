// Package cluster implements the hybrid condense-then-partition flow the
// paper's Section 5 cites (Bui et al., Lengauer): greedily merge strongly
// connected module pairs to shrink the netlist, partition the coarse
// circuit spectrally, project the result back, and polish with FM. The
// cluster-condensation ablation (experiment A5) measures the speed/quality
// tradeoff against the direct solve.
package cluster

import (
	"errors"
	"sort"

	"igpart/internal/core"
	"igpart/internal/fm"
	"igpart/internal/hypergraph"
	"igpart/internal/partition"
)

// Options configures the condense-partition-refine pipeline.
type Options struct {
	// TargetRatio stops coarsening once the cluster count drops below
	// TargetRatio·NumModules. Default 0.35.
	TargetRatio float64
	// Levels bounds the number of coarsening rounds. Default 3.
	Levels int
	// Core configures the coarse-level IG-Match solve.
	Core core.Options
	// Refine configures FM polishing; Refine.MaxPasses=0 uses the FM
	// default.
	Refine fm.Options
	// SkipRefine disables the FM polish (for ablation).
	SkipRefine bool
	// Multilevel refines after every projection step (the classical
	// multilevel V-cycle) instead of only at the finest level. Coarse-level
	// refinement uses the area-weighted ratio cut, since cluster weights
	// are exactly the fine-module counts they stand for.
	Multilevel bool
}

func (o Options) withDefaults() Options {
	if o.TargetRatio <= 0 {
		o.TargetRatio = 0.35
	}
	if o.Levels <= 0 {
		o.Levels = 3
	}
	return o
}

// Result reports the pipeline outcome.
type Result struct {
	Partition *partition.Bipartition
	Metrics   partition.Metrics
	// CoarseModules is the module count of the coarsest level actually
	// partitioned.
	CoarseModules int
	// Levels is the number of coarsening rounds performed.
	Levels int
}

// Partition runs the full condense → IG-Match → project → refine pipeline.
func Partition(h *hypergraph.Hypergraph, opts Options) (Result, error) {
	if h.NumModules() < 4 {
		return Result{}, errors.New("cluster: circuit too small to condense")
	}
	opts = opts.withDefaults()

	type level struct {
		h    *hypergraph.Hypergraph
		map_ []int // fine module -> coarse cluster
	}
	var stack []level
	cur := h
	target := int(opts.TargetRatio * float64(h.NumModules()))
	rounds := 0
	for rounds < opts.Levels && cur.NumModules() > target && cur.NumModules() > 8 {
		cmap, k := MatchClusters(cur)
		if k >= cur.NumModules() {
			break // no merges possible
		}
		coarse, err := hypergraph.Contract(cur, cmap, k)
		if err != nil {
			return Result{}, err
		}
		stack = append(stack, level{h: cur, map_: cmap})
		cur = coarse
		rounds++
	}

	res, err := core.Partition(cur, opts.Core)
	if err != nil {
		return Result{}, err
	}
	p := res.Partition
	coarseModules := cur.NumModules()

	// Project back through the levels, optionally refining at each one.
	for i := len(stack) - 1; i >= 0; i-- {
		lv := stack[i]
		fine := partition.New(lv.h.NumModules())
		for v := 0; v < lv.h.NumModules(); v++ {
			fine.Set(v, p.Side(lv.map_[v]))
		}
		p = fine
		if opts.Multilevel && !opts.SkipRefine && i > 0 {
			ro := opts.Refine
			ro.UseWeights = true // cluster weights carry fine module counts
			if _, _, err := fm.RefinePartition(lv.h, p, ro); err != nil {
				return Result{}, err
			}
		}
	}

	if !opts.SkipRefine {
		if _, _, err := fm.RefinePartition(h, p, opts.Refine); err != nil {
			return Result{}, err
		}
	}
	return Result{
		Partition:     p,
		Metrics:       partition.Evaluate(h, p),
		CoarseModules: coarseModules,
		Levels:        rounds,
	}, nil
}

// MatchClusters performs one round of greedy heavy-connectivity matching:
// module pairs sharing the most (size-discounted) net weight are merged
// first; unmatched modules survive as singletons. It returns the cluster
// map and the cluster count.
func MatchClusters(h *hypergraph.Hypergraph) ([]int, int) {
	// Connectivity between adjacent modules: Σ over shared nets of
	// 1/(|net|−1) — the clique-model weight restricted to neighbors.
	weight := map[[2]int]float64{}
	for e := 0; e < h.NumNets(); e++ {
		pins := h.Pins(e)
		k := len(pins)
		if k < 2 || k > 16 {
			continue // huge nets say little about pairwise affinity
		}
		w := 1 / float64(k-1)
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				weight[[2]int{pins[i], pins[j]}] += w
			}
		}
	}
	pairs := make([]WeightedPair, 0, len(weight))
	for key, w := range weight {
		pairs = append(pairs, WeightedPair{A: key[0], B: key[1], W: w})
	}
	return MatchByWeight(h.NumModules(), pairs)
}

// WeightedPair is an affinity edge between two items for MatchByWeight.
type WeightedPair struct {
	A, B int
	W    float64
}

// MatchByWeight greedily computes a maximal matching of the items 0..n−1
// by descending pair weight (ties broken by ascending indices, so the
// result is deterministic regardless of input order): the heaviest pair
// whose endpoints are both still free is merged into one group; unmatched
// items survive as singleton groups. It returns the item→group map (dense
// group indices) and the group count. This is the heavy-edge matching
// shared by module condensation (MatchClusters) and the multilevel
// engine's net coarsening; pairs is reordered in place.
func MatchByWeight(n int, pairs []WeightedPair) ([]int, int) {
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].W != pairs[b].W {
			return pairs[a].W > pairs[b].W
		}
		if pairs[a].A != pairs[b].A {
			return pairs[a].A < pairs[b].A
		}
		return pairs[a].B < pairs[b].B
	})
	gmap := make([]int, n)
	for i := range gmap {
		gmap[i] = -1
	}
	next := 0
	for _, pr := range pairs {
		if gmap[pr.A] < 0 && gmap[pr.B] < 0 && pr.A != pr.B {
			gmap[pr.A] = next
			gmap[pr.B] = next
			next++
		}
	}
	for v := range gmap {
		if gmap[v] < 0 {
			gmap[v] = next
			next++
		}
	}
	return gmap, next
}
