package cluster

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"igpart/internal/obs"
)

func TestLatestLease(t *testing.T) {
	base := time.Unix(1000, 0)
	recs := []Record{
		{T: "accept", Job: "cjob-1"},
		{T: "lease", Term: 1, Owner: "a", Deadline: base.UnixNano()},
		{T: "lease", Term: 2, Owner: "b", Deadline: base.Add(time.Second).UnixNano()},
		// A renewal of term 2 pushes the deadline without a new term.
		{T: "lease", Term: 2, Owner: "b", Deadline: base.Add(3 * time.Second).UnixNano()},
		{T: "done", Job: "cjob-1"},
	}
	l, ok := LatestLease(recs)
	if !ok {
		t.Fatal("no lease found")
	}
	if l.Term != 2 || l.Owner != "b" {
		t.Fatalf("lease = %+v, want term 2 owner b", l)
	}
	if !l.Deadline.Equal(base.Add(3 * time.Second)) {
		t.Fatalf("deadline %v, want the renewed one", l.Deadline)
	}
	if _, ok := LatestLease([]Record{{T: "accept", Job: "x"}}); ok {
		t.Fatal("lease found in a lease-free record set")
	}
}

func TestTakeLeadershipColdStart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, recs, lease, err := TakeLeadership(path, "owner-a", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(recs) != 0 {
		t.Fatalf("cold journal replayed %d records", len(recs))
	}
	if lease.Term != 1 || lease.Owner != "owner-a" {
		t.Fatalf("lease = %+v, want term 1 owner-a", lease)
	}
	if holder, err := readLockOwner(LockPath(path)); err != nil || holder != "owner-a" {
		t.Fatalf("lock holder = %q (%v), want owner-a", holder, err)
	}
	// The lease is durably in the journal, visible to a read-only peek.
	got, ok, err := peekLease(path)
	if err != nil || !ok || got.Term != 1 {
		t.Fatalf("peekLease = %+v ok=%v err=%v", got, ok, err)
	}
}

func TestTakeLeadershipHeldByLiveLeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	// A live remote leader: unexpired lease, lock naming another host
	// (so the pid liveness check cannot break it).
	j, _, _, err := TakeLeadership(path, "otherhost/4242", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, _, _, err = TakeLeadership(path, "owner-b", time.Second)
	if !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("err = %v, want ErrLeaseHeld", err)
	}
}

func TestTakeLeadershipAfterLeaseExpiry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, l1, err := TakeLeadership(path, "otherhost/4242", 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Accept("cjob-1", "", "k", []byte(`{"seed":1}`)); err != nil {
		t.Fatal(err)
	}
	j.Close() // crash: the lock file stays behind
	time.Sleep(80 * time.Millisecond)

	j2, recs, l2, err := TakeLeadership(path, "owner-b", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if l2.Term != l1.Term+1 {
		t.Fatalf("term %d, want fenced successor term %d", l2.Term, l1.Term+1)
	}
	if un := Unfinished(recs); len(un) != 1 || un[0].Job != "cjob-1" {
		t.Fatalf("unfinished = %+v, want the crashed leader's accept", un)
	}
	if holder, _ := readLockOwner(LockPath(path)); holder != "owner-b" {
		t.Fatalf("lock holder = %q after takeover", holder)
	}
}

// A same-host holder whose process provably died is takeable even
// before the lease expires.
func TestTakeLeadershipDeadSameHostHolder(t *testing.T) {
	cmd := exec.Command("true")
	if err := cmd.Run(); err != nil {
		t.Skipf("cannot spawn helper process: %v", err)
	}
	deadPid := cmd.Process.Pid
	host, err := os.Hostname()
	if err != nil {
		t.Skipf("no hostname: %v", err)
	}
	deadOwner := fmt.Sprintf("%s/%d", host, deadPid)

	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, _, err := TakeLeadership(path, deadOwner, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, _, lease, err := TakeLeadership(path, "owner-b", time.Second)
	if err != nil {
		t.Fatalf("dead same-host holder not broken: %v", err)
	}
	defer j2.Close()
	if lease.Term != 2 {
		t.Fatalf("term = %d, want 2", lease.Term)
	}
}

// A gracefully-stopped leader releases its lock; the unexpired lease
// alone must not block the successor.
func TestTakeLeadershipAfterGracefulRelease(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, _, err := TakeLeadership(path, "otherhost/4242", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	releaseLock(LockPath(path), "otherhost/4242")

	j2, _, lease, err := TakeLeadership(path, "owner-b", time.Second)
	if err != nil {
		t.Fatalf("released lock not takeable: %v", err)
	}
	defer j2.Close()
	if lease.Term != 2 {
		t.Fatalf("term = %d, want 2", lease.Term)
	}
}

// The leader renews its lease on a cadence and releases the lock on a
// clean shutdown.
func TestLeaseRenewalAndRelease(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, lease, err := TakeLeadership(path, LeaseOwnerID(), 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	reg := new(obs.Registry)
	c, _, _ := testCluster(t, Config{
		Journal: j,
		Metrics: reg,
		HA:      &HAConfig{Lease: lease, TTL: 150 * time.Millisecond, LockPath: LockPath(path)},
	})
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("cluster.lease.renewals").Value() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("renewals = %d after 5s", reg.Counter("cluster.lease.renewals").Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(LockPath(path)); !os.IsNotExist(err) {
		t.Fatalf("lock not released on clean shutdown: %v", err)
	}
	// The renewed lease (same term, later deadline) is on disk.
	got, ok, err := peekLease(path)
	if err != nil || !ok {
		t.Fatalf("peekLease: %v ok=%v", err, ok)
	}
	if got.Term != lease.Term || !got.Deadline.After(lease.Deadline) {
		t.Fatalf("lease on disk %+v not a renewal of %+v", got, lease)
	}
}

// A leader whose lock stops naming it has been fenced out by a standby
// and must depose itself instead of double-serving.
func TestLeaseFencingDeposesLeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, lease, err := TakeLeadership(path, LeaseOwnerID(), 60*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	reg := new(obs.Registry)
	c, _, _ := testCluster(t, Config{
		Journal: j,
		Metrics: reg,
		HA:      &HAConfig{Lease: lease, TTL: 60 * time.Millisecond, LockPath: LockPath(path)},
	})
	// A standby fences us: the lock now names someone else.
	if err := os.WriteFile(LockPath(path), []byte("usurper/1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("cluster.lease.lost").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never noticed it was fenced out")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.Submit("fenced-key", seedBody(1)); !errors.Is(err, ErrShutdown) {
		t.Fatalf("deposed leader accepted a job (err = %v)", err)
	}
}

// Standby takeover end to end: the leader journals accepted work and
// crashes; the standby, tailing the same journal, claims leadership
// once the lease lapses and walks away with exactly the unfinished set.
func TestStandbyTakeoverAfterLeaderCrash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, l1, err := TakeLeadership(path, "otherhost/4242", 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := j.Accept(fmt.Sprintf("cjob-%d", i), "", fmt.Sprintf("k%d", i), seedBody(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Complete("cjob-2", StateDone); err != nil {
		t.Fatal(err)
	}

	reg := new(obs.Registry)
	stb := NewStandby(StandbyConfig{Path: path, Owner: "owner-b", TTL: 200 * time.Millisecond, Poll: 10 * time.Millisecond, Metrics: reg})
	// Warm up while the leader is alive: the standby must already hold
	// the replay set before any takeover.
	deadline := time.Now().Add(5 * time.Second)
	for stb.Status().Unfinished != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("standby never warmed: %+v", stb.Status())
		}
		stb.refresh()
		time.Sleep(5 * time.Millisecond)
	}
	j.Close() // leader crashes; its lock file remains

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	j2, recs, l2, err := stb.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if l2.Term != l1.Term+1 || l2.Owner != "owner-b" {
		t.Fatalf("takeover lease = %+v, want term %d owner-b", l2, l1.Term+1)
	}
	un := Unfinished(recs)
	if len(un) != 2 || un[0].Job != "cjob-1" || un[1].Job != "cjob-3" {
		t.Fatalf("replay set = %+v, want cjob-1 and cjob-3", un)
	}
	if got := reg.Counter("cluster.standby.takeovers").Value(); got != 1 {
		t.Fatalf("takeovers = %d", got)
	}
}

// While the leader keeps renewing, the standby stays a standby.
func TestStandbyWaitsOutLiveLeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, _, _, err := TakeLeadership(path, "otherhost/4242", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	reg := new(obs.Registry)
	stb := NewStandby(StandbyConfig{Path: path, Owner: "owner-b", TTL: time.Hour, Poll: 5 * time.Millisecond, Metrics: reg})
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, _, _, err := stb.Run(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("standby returned %v while the lease was live", err)
	}
	if got := reg.Counter("cluster.standby.takeovers").Value(); got != 0 {
		t.Fatalf("takeovers = %d, want 0", got)
	}
}

// Takeover racing compaction: the standby's byte offset points into a
// journal that the (re)booting leader just compacted — a smaller file
// renamed over the path. The tailer must detect the rewrite, rebuild
// from byte zero, and still produce the correct replay set.
func TestStandbyTailSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	j, _, _, err := TakeLeadership(path, "otherhost/4242", 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Plenty of completed bulk so compaction shrinks the file.
	for i := 1; i <= 20; i++ {
		id := fmt.Sprintf("cjob-%d", i)
		if err := j.Accept(id, "", "k", seedBody(int64(i))); err != nil {
			t.Fatal(err)
		}
		if i != 7 {
			if err := j.Complete(id, StateDone); err != nil {
				t.Fatal(err)
			}
		}
	}
	reg := new(obs.Registry)
	stb := NewStandby(StandbyConfig{Path: path, Owner: "owner-b", TTL: 150 * time.Millisecond, Poll: 5 * time.Millisecond, Metrics: reg})
	stb.refresh()
	if st := stb.Status(); st.Records < 40 {
		t.Fatalf("standby warmed only %d records pre-compaction", st.Records)
	}
	j.Close()

	// The successor's boot compacts: rename a much smaller file over
	// the path, exactly what OpenJournal does.
	jb, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	jb.Close()
	if len(recs) >= 40 {
		t.Fatalf("boot did not compact (%d records)", len(recs))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	j2, recs2, lease, err := stb.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if reg.Counter("cluster.standby.resets").Value() == 0 {
		t.Fatal("tailer never reset across the compaction rewrite")
	}
	un := Unfinished(recs2)
	if len(un) != 1 || un[0].Job != "cjob-7" {
		t.Fatalf("replay set after compaction race = %+v, want cjob-7", un)
	}
	if lease.Term != 2 {
		t.Fatalf("term = %d, want 2", lease.Term)
	}
}
