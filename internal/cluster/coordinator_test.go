package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"igpart/internal/obs"
)

// fakeBackend is a controllable stand-in for an igpartd node: it
// speaks just enough of the /v1/jobs wire protocol for the coordinator
// and lets tests hold jobs open, reject submissions, and die.
type fakeBackend struct {
	mu          sync.Mutex
	nextID      int
	jobs        map[string]*fakeJob
	hold        bool     // new jobs stay "running" until released
	rejectWith  int      // non-zero: POST /v1/jobs answers this status
	submissions []int64  // request seeds in arrival order
	cancelled   []string // backend job IDs DELETEd
	srv         *httptest.Server
}

type fakeJob struct {
	seed   int64
	state  string
	result json.RawMessage
}

func newFakeBackend() *fakeBackend {
	f := &fakeBackend{jobs: make(map[string]*fakeJob)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", f.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", f.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", f.handleCancel)
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"counters":{"fake":1}}`)
	})
	f.srv = httptest.NewServer(mux)
	return f
}

func (f *fakeBackend) handleSubmit(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rejectWith != 0 {
		w.WriteHeader(f.rejectWith)
		fmt.Fprintf(w, `{"error":"rejected with %d"}`, f.rejectWith)
		return
	}
	var body struct {
		Seed int64 `json:"seed"`
	}
	_ = json.NewDecoder(r.Body).Decode(&body)
	f.nextID++
	id := fmt.Sprintf("fj-%d", f.nextID)
	j := &fakeJob{seed: body.Seed, state: StateRunning}
	if !f.hold {
		j.state = StateDone
		j.result = json.RawMessage(fmt.Sprintf(`{"algo":"igmatch","ratio_cut":2.5,"seed":%d}`, body.Seed))
	}
	f.jobs[id] = j
	f.submissions = append(f.submissions, body.Seed)
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintf(w, `{"id":%q,"state":%q}`, id, j.state)
}

func (f *fakeBackend) handleGet(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	defer f.mu.Unlock()
	j, ok := f.jobs[r.PathValue("id")]
	if !ok {
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":"unknown job"}`)
		return
	}
	out := map[string]any{"id": r.PathValue("id"), "state": j.state}
	if j.result != nil {
		out["result"] = j.result
	}
	_ = json.NewEncoder(w).Encode(out)
}

func (f *fakeBackend) handleCancel(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	defer f.mu.Unlock()
	id := r.PathValue("id")
	f.cancelled = append(f.cancelled, id)
	if j, ok := f.jobs[id]; ok && !terminalState(j.state) {
		j.state = StateCancelled
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, `{}`)
}

// release completes every held job with the given seed.
func (f *fakeBackend) release(seed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, j := range f.jobs {
		if j.seed == seed && j.state == StateRunning {
			j.state = StateDone
			j.result = json.RawMessage(fmt.Sprintf(`{"algo":"igmatch","ratio_cut":2.5,"seed":%d}`, j.seed))
		}
	}
}

func (f *fakeBackend) setHold(hold bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hold = hold
}

func (f *fakeBackend) seeds() []int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int64(nil), f.submissions...)
}

// testCluster builds a coordinator over two fake backends with fast
// test timings. The background prober is off so health transitions are
// driven purely by request outcomes and stay deterministic.
func testCluster(t *testing.T, cfg Config) (*Coordinator, *fakeBackend, *fakeBackend) {
	t.Helper()
	b0, b1 := newFakeBackend(), newFakeBackend()
	t.Cleanup(func() { b0.srv.Close(); b1.srv.Close() })
	cfg.Backends = []Backend{{Name: "b0", URL: b0.srv.URL}, {Name: "b1", URL: b1.srv.URL}}
	cfg.PollInterval = 2 * time.Millisecond
	cfg.ProbeInterval = -1
	cfg.RetryBaseDelay = time.Millisecond
	cfg.RetryMaxDelay = 4 * time.Millisecond
	if cfg.Metrics == nil {
		cfg.Metrics = new(obs.Registry)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = c.Shutdown(ctx)
	})
	return c, b0, b1
}

// byName maps ring names onto the fakes.
func byName(c *Coordinator, b0, b1 *fakeBackend, name string) (owner, other *fakeBackend) {
	if name == "b0" {
		return b0, b1
	}
	return b1, b0
}

func seedBody(seed int64) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(`{"seed":%d}`, seed))
}

func waitDone(t *testing.T, j *Job) Snapshot {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s not terminal after 10s: %+v", j.ID(), j.Snapshot())
	}
	return j.Snapshot()
}

func TestCoordinatorRelaysResult(t *testing.T) {
	c, b0, b1 := testCluster(t, Config{})
	key := "some-content-address"
	j, err := c.Submit(key, seedBody(7))
	if err != nil {
		t.Fatal(err)
	}
	snap := waitDone(t, j)
	if snap.State != StateDone {
		t.Fatalf("state %s, err %q", snap.State, snap.Err)
	}
	if snap.Attempts != 1 || snap.Resubmits != 0 {
		t.Errorf("attempts=%d resubmits=%d, want 1/0", snap.Attempts, snap.Resubmits)
	}
	if snap.Backend != c.Ring().Owner(key) {
		t.Errorf("ran on %s, ring owner is %s", snap.Backend, c.Ring().Owner(key))
	}
	var res struct {
		RatioCut float64 `json:"ratio_cut"`
	}
	if err := json.Unmarshal(snap.Result, &res); err != nil || res.RatioCut != 2.5 {
		t.Errorf("result not relayed verbatim: %s (%v)", snap.Result, err)
	}
	owner, other := byName(c, b0, b1, snap.Backend)
	if len(owner.seeds()) != 1 || len(other.seeds()) != 0 {
		t.Errorf("submissions: owner %v, other %v", owner.seeds(), other.seeds())
	}
	if got := c.Metrics().Counter("cluster.jobs_completed").Value(); got != 1 {
		t.Errorf("jobs_completed = %d", got)
	}
}

// A dead owner at submission time: the first attempt gets connection
// refused and the job fails over to the next backend on the ring.
func TestCoordinatorFailoverDeadOwner(t *testing.T) {
	c, b0, b1 := testCluster(t, Config{})
	key := "dead-owner-key"
	owner, other := byName(c, b0, b1, c.Ring().Owner(key))
	owner.srv.Close()

	snap := waitDone(t, mustSubmit(t, c, key, 1))
	if snap.State != StateDone {
		t.Fatalf("state %s, err %q", snap.State, snap.Err)
	}
	if snap.Resubmits < 1 {
		t.Errorf("resubmits = %d, want >= 1", snap.Resubmits)
	}
	if want := c.Ring().Route(key)[1]; snap.Backend != want {
		t.Errorf("failed over to %s, want ring successor %s", snap.Backend, want)
	}
	if len(other.seeds()) != 1 {
		t.Errorf("survivor got %d submissions, want 1", len(other.seeds()))
	}
	if got := c.Metrics().Counter("cluster.failover.resubmits").Value(); got < 1 {
		t.Errorf("cluster.failover.resubmits = %d, want >= 1", got)
	}
}

// The backend dies while the job is running on it: polling hits
// connection refused and the job is resubmitted to the ring successor.
func TestCoordinatorFailoverMidRun(t *testing.T) {
	c, b0, b1 := testCluster(t, Config{})
	key := "mid-run-key"
	owner, other := byName(c, b0, b1, c.Ring().Owner(key))
	owner.setHold(true) // job runs "forever" on the owner

	j := mustSubmit(t, c, key, 2)
	// Wait until the job is actually running on the owner.
	deadline := time.Now().Add(5 * time.Second)
	for len(owner.seeds()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never reached the owner")
		}
		time.Sleep(time.Millisecond)
	}
	owner.srv.CloseClientConnections()
	owner.srv.Close()

	snap := waitDone(t, j)
	if snap.State != StateDone {
		t.Fatalf("state %s, err %q", snap.State, snap.Err)
	}
	if snap.Resubmits < 1 {
		t.Errorf("resubmits = %d, want >= 1", snap.Resubmits)
	}
	if len(other.seeds()) != 1 {
		t.Errorf("survivor got %d submissions, want 1", len(other.seeds()))
	}
}

// Every backend dead: the job fails after the bounded attempt budget
// instead of retrying forever.
func TestCoordinatorAllBackendsDead(t *testing.T) {
	c, b0, b1 := testCluster(t, Config{Attempts: 3})
	b0.srv.Close()
	b1.srv.Close()
	snap := waitDone(t, mustSubmit(t, c, "all-dead", 3))
	if snap.State != StateFailed {
		t.Fatalf("state %s, want failed", snap.State)
	}
	if snap.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", snap.Attempts)
	}
	if got := c.Metrics().Counter("cluster.jobs_failed").Value(); got != 1 {
		t.Errorf("jobs_failed = %d", got)
	}
}

// A 400 is the request's fault, not the node's: no failover, the job
// fails on the first attempt.
func TestCoordinatorPermanentRejection(t *testing.T) {
	c, b0, b1 := testCluster(t, Config{})
	key := "bad-request-key"
	owner, other := byName(c, b0, b1, c.Ring().Owner(key))
	owner.mu.Lock()
	owner.rejectWith = http.StatusBadRequest
	owner.mu.Unlock()

	snap := waitDone(t, mustSubmit(t, c, key, 4))
	if snap.State != StateFailed || snap.Attempts != 1 || snap.Resubmits != 0 {
		t.Fatalf("state=%s attempts=%d resubmits=%d, want failed/1/0", snap.State, snap.Attempts, snap.Resubmits)
	}
	if len(other.seeds()) != 0 {
		t.Errorf("a 400 must not fail over, but the other backend got %v", other.seeds())
	}
}

// Backpressure (429) is node-level: the saturated node is skipped and
// the job runs on the ring successor.
func TestCoordinatorBackpressureFailsOver(t *testing.T) {
	c, b0, b1 := testCluster(t, Config{})
	key := "saturated-key"
	owner, other := byName(c, b0, b1, c.Ring().Owner(key))
	owner.mu.Lock()
	owner.rejectWith = http.StatusTooManyRequests
	owner.mu.Unlock()

	snap := waitDone(t, mustSubmit(t, c, key, 5))
	if snap.State != StateDone {
		t.Fatalf("state %s, err %q", snap.State, snap.Err)
	}
	if len(other.seeds()) != 1 || snap.Resubmits < 1 {
		t.Errorf("survivor seeds %v, resubmits %d", other.seeds(), snap.Resubmits)
	}
}

func TestCoordinatorCancelPropagates(t *testing.T) {
	c, b0, b1 := testCluster(t, Config{})
	key := "cancel-key"
	owner, _ := byName(c, b0, b1, c.Ring().Owner(key))
	owner.setHold(true)

	j := mustSubmit(t, c, key, 6)
	// Wait until the coordinator knows the backend job ID — cancelling
	// earlier (mid-submit) legitimately cannot reach the backend copy.
	deadline := time.Now().Add(5 * time.Second)
	for j.Snapshot().BackendJob == "" {
		if time.Now().After(deadline) {
			t.Fatal("job never reached the owner")
		}
		time.Sleep(time.Millisecond)
	}
	if !c.Cancel(j.ID()) {
		t.Fatal("cancel: unknown job")
	}
	snap := waitDone(t, j)
	if snap.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", snap.State)
	}
	// The backend's copy was cancelled too (best effort, but in-process
	// it always lands).
	deadline = time.Now().Add(5 * time.Second)
	for {
		owner.mu.Lock()
		n := len(owner.cancelled)
		owner.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("backend never saw the cancel")
		}
		time.Sleep(time.Millisecond)
	}
}

func mustSubmit(t *testing.T, c *Coordinator, key string, seed int64) *Job {
	t.Helper()
	j, err := c.Submit(key, seedBody(seed))
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// Journal recovery, the crash-consistency contract: accept N jobs,
// crash (abort without draining) with some unfinished, reboot onto the
// same journal — the replay resubmits exactly the unfinished set, and
// completed jobs are not re-run because their completion records are
// on disk.
func TestCoordinatorJournalRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	journal, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatal("fresh journal not empty")
	}
	c1, b0, b1 := testCluster(t, Config{Journal: journal})
	b0.setHold(true)
	b1.setHold(true)

	const n = 5
	jobs := make([]*Job, n)
	for i := 0; i < n; i++ {
		// Distinct keys spread the jobs across both backends.
		jobs[i] = mustSubmit(t, c1, fmt.Sprintf("recovery-key-%d", i), int64(i+1))
	}
	// Wait until every job is running on some backend.
	deadline := time.Now().Add(10 * time.Second)
	for len(b0.seeds())+len(b1.seeds()) < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d jobs dispatched", len(b0.seeds())+len(b1.seeds()), n)
		}
		time.Sleep(time.Millisecond)
	}
	// Complete seeds 1 and 2; crash with 3..5 in flight.
	for _, seed := range []int64{1, 2} {
		b0.release(seed)
		b1.release(seed)
		waitDone(t, jobs[seed-1])
	}
	crashCtx, cancel := context.WithCancel(context.Background())
	cancel() // expired: Shutdown aborts instead of draining
	if err := c1.Shutdown(crashCtx); err == nil {
		t.Fatal("aborted shutdown reported a clean drain")
	}

	// The crashed-over jobs are non-terminal and unjournaled.
	journal2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	un := Unfinished(recs)
	if len(un) != 3 {
		t.Fatalf("unfinished after crash = %d (%+v), want 3", len(un), un)
	}
	wantUnfinished := map[string]bool{jobs[2].ID(): true, jobs[3].ID(): true, jobs[4].ID(): true}
	for _, r := range un {
		if !wantUnfinished[r.Job] {
			t.Fatalf("unexpected unfinished job %s", r.Job)
		}
	}

	// Reboot: fresh coordinator over the same (now releasing) backends.
	b0.setHold(false)
	b1.setHold(false)
	wipeSubmissions(b0)
	wipeSubmissions(b1)
	cfg := Config{
		Backends:       []Backend{{Name: "b0", URL: b0.srv.URL}, {Name: "b1", URL: b1.srv.URL}},
		PollInterval:   2 * time.Millisecond,
		ProbeInterval:  -1,
		RetryBaseDelay: time.Millisecond,
		Journal:        journal2,
		Metrics:        new(obs.Registry),
	}
	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = c2.Shutdown(ctx)
	}()
	if got := c2.Recover(recs); got != 3 {
		t.Fatalf("Recover resubmitted %d jobs, want 3", got)
	}
	for id := range wantUnfinished {
		j, ok := c2.Get(id)
		if !ok {
			t.Fatalf("replayed job %s not tracked", id)
		}
		if snap := waitDone(t, j); snap.State != StateDone {
			t.Fatalf("replayed job %s ended %s: %s", id, snap.State, snap.Err)
		}
	}
	// Exactly the unfinished seeds were resubmitted — 1 and 2 have
	// completion records and must not re-run.
	resub := make(map[int64]int)
	for _, s := range append(b0.seeds(), b1.seeds()...) {
		resub[s]++
	}
	for seed := int64(1); seed <= 2; seed++ {
		if resub[seed] != 0 {
			t.Errorf("completed seed %d was re-run %d time(s)", seed, resub[seed])
		}
	}
	for seed := int64(3); seed <= 5; seed++ {
		if resub[seed] != 1 {
			t.Errorf("unfinished seed %d resubmitted %d time(s), want exactly 1", seed, resub[seed])
		}
	}
	// New IDs never collide with replayed ones.
	j, err := c2.Submit("post-recovery", seedBody(99))
	if err != nil {
		t.Fatal(err)
	}
	if _, taken := wantUnfinished[j.ID()]; taken || j.ID() == jobs[0].ID() || j.ID() == jobs[1].ID() {
		t.Fatalf("post-recovery job reused ID %s", j.ID())
	}
	waitDone(t, j)

	// After the recovered run, nothing is left unfinished on disk.
	_ = c2.Shutdown(context.Background())
	_, recs, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if un := Unfinished(recs); len(un) != 0 {
		t.Fatalf("journal still lists %d unfinished after recovery: %+v", len(un), un)
	}
}

func wipeSubmissions(f *fakeBackend) {
	f.mu.Lock()
	f.submissions = nil
	f.mu.Unlock()
}

// Status and GatherMetrics aggregate per-backend views and survive a
// dead node.
func TestCoordinatorAggregation(t *testing.T) {
	c, _, b1 := testCluster(t, Config{})
	b1.srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	sts := c.Status(ctx)
	if len(sts) != 2 {
		t.Fatalf("%d statuses", len(sts))
	}
	ready := 0
	for _, st := range sts {
		if st.Ready {
			ready++
		}
	}
	if ready != 1 {
		t.Errorf("ready = %d, want 1 (b1 is down)", ready)
	}
	ms := c.GatherMetrics(ctx)
	if len(ms) != 2 {
		t.Fatalf("%d metrics entries", len(ms))
	}
	if ms["b0"] == nil {
		t.Error("live backend's metrics missing")
	}
	if ms["b1"] != nil {
		t.Error("dead backend should map to null metrics")
	}
}
