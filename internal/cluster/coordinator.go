package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"igpart/internal/fault"
	"igpart/internal/obs"
)

// The cluster job lifecycle mirrors the backend engine's: queued and
// running are transient, the other three terminal. A cluster job is
// "running" from first submission attempt onward — routing, failover
// hops, and backoff all count as running time.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// terminalState reports whether a state string is final.
func terminalState(s string) bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Sentinel errors of the coordinator.
var (
	// ErrShutdown rejects submissions after Shutdown began.
	ErrShutdown = errors.New("cluster: coordinator shutting down")
	// ErrCancelled is the cancel cause of a user-requested Cancel.
	ErrCancelled = errors.New("cluster: job cancelled")
	// ErrUnknownBase rejects a delta naming a cluster job the
	// coordinator does not track.
	ErrUnknownBase = errors.New("cluster: unknown base job")
	// ErrNotWarmStartable rejects a delta whose base job cannot seed a
	// warm start on its backend: not done, or the backend lost it.
	ErrNotWarmStartable = errors.New("cluster: base job not warm-startable")
	// errAborted is the internal cancel cause of a crash-style abort
	// (drain deadline expired): runners exit without journaling a
	// completion, leaving their jobs for the next boot's replay.
	errAborted = errors.New("cluster: coordinator aborted")
)

// Config sizes a Coordinator. Backends is the only required field.
type Config struct {
	// Backends is the boot-time fleet, routed by consistent hashing.
	// UpdateBackends (or the backends-file watcher) changes it live.
	Backends []Backend
	// Replicas is the ring's virtual-node count per backend
	// (default DefaultReplicas).
	Replicas int
	// Attempts bounds submissions per job across failover hops
	// (default 2·current fleet size: every backend gets a second
	// chance after a full lap of backoff).
	Attempts int
	// MaxInflight bounds concurrently dispatched jobs; accepted jobs
	// beyond it wait, already journaled (default 128).
	MaxInflight int
	// PollInterval paces job status polls (default 50ms).
	PollInterval time.Duration
	// ProbeInterval paces the background /readyz prober; negative
	// disables it (health then updates only from request outcomes),
	// 0 means the default 500ms.
	ProbeInterval time.Duration
	// ProbeTimeout bounds each individual /readyz probe (default 2s,
	// capped at RequestTimeout) so one hung backend cannot stall a
	// probe round for the whole fleet.
	ProbeTimeout time.Duration
	// RequestTimeout bounds each backend HTTP call (default 10s).
	RequestTimeout time.Duration
	// RetryBaseDelay and RetryMaxDelay shape the capped exponential
	// backoff between failover hops (defaults 100ms and 2s), computed
	// by the shared fault.BackoffDelay machinery.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// MaxFinished bounds how many terminal jobs stay queryable
	// (default 4096).
	MaxFinished int
	// MinDwell is the flapping guard for dynamic membership: a backend
	// re-added within MinDwell of its removal is held out of the ring
	// until the dwell passes (default 5s; negative disables).
	MinDwell time.Duration
	// Metrics receives the coordinator's counters and gauges; nil gets
	// a private registry.
	Metrics *obs.Registry
	// Journal is the durable intake log; nil runs without durability.
	Journal *Journal
	// Fault arms the coordinator-side chaos points (coord.crash); nil
	// disables them.
	Fault *fault.Injector
	// HA, when set, makes the coordinator maintain the leadership lease
	// it was booted with: renew at TTL/3, depose itself if the lock
	// file stops naming it.
	HA *HAConfig
	// HTTPClient overrides the backend transport (tests); nil uses a
	// fresh http.Client.
	HTTPClient *http.Client
}

// HAConfig carries the leadership state a coordinator must keep alive.
type HAConfig struct {
	// Lease is the lease held at boot, from TakeLeadership.
	Lease Lease
	// TTL is the lease horizon; renewals push the deadline this far
	// into the future (default DefaultLeaseTTL).
	TTL time.Duration
	// LockPath is the O_EXCL leader lock file (LockPath(journalPath)).
	LockPath string
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = DefaultReplicas
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 128
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 50 * time.Millisecond
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.ProbeTimeout > c.RequestTimeout {
		c.ProbeTimeout = c.RequestTimeout
	}
	if c.MinDwell == 0 {
		c.MinDwell = 5 * time.Second
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 100 * time.Millisecond
	}
	if c.RetryMaxDelay <= 0 {
		c.RetryMaxDelay = 2 * time.Second
	}
	if c.MaxFinished <= 0 {
		c.MaxFinished = 4096
	}
	if c.Metrics == nil {
		c.Metrics = new(obs.Registry)
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	return c
}

// Snapshot is the externally visible state of a cluster job.
type Snapshot struct {
	ID    string
	Batch string
	State string
	// Backend is the node currently (or last) responsible for the job;
	// BackendJob its job ID there.
	Backend    string
	BackendJob string
	// Attempts counts submissions tried; Resubmits the failover hops
	// beyond the first.
	Attempts  int
	Resubmits int
	// Cached reports the backend served the result from its cache.
	Cached bool
	Err    string
	// Result is the backend's result JSON, relayed verbatim.
	Result    json.RawMessage
	Submitted time.Time
	Finished  time.Time
}

// Job is one routed partitioning request tracked by the coordinator.
type Job struct {
	id    string
	batch string
	key   string
	body  json.RawMessage

	ctx    context.Context
	cancel context.CancelCauseFunc
	done   chan struct{}

	// ephemeral jobs (ECO deltas) are never journaled: their warm-start
	// state is node-local and cannot be re-pinned by a fresh boot, so
	// finish() skips the completion record too.
	ephemeral bool

	mu         sync.Mutex
	state      string
	backend    string
	backendJob string
	attempts   int
	resubmits  int
	cached     bool
	errMsg     string
	result     json.RawMessage
	submitted  time.Time
	finished   time.Time
}

// ID returns the coordinator-assigned job identifier.
func (j *Job) ID() string { return j.id }

// Done is closed when the job reaches a terminal state. It stays open
// across a crash-style abort — such jobs complete on the next boot.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel requests cancellation of the job: its runner stops at the
// next step and best-effort cancels the backend copy.
func (j *Job) Cancel() { j.cancel(ErrCancelled) }

// Snapshot returns the job's current externally visible state.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Snapshot{
		ID:         j.id,
		Batch:      j.batch,
		State:      j.state,
		Backend:    j.backend,
		BackendJob: j.backendJob,
		Attempts:   j.attempts,
		Resubmits:  j.resubmits,
		Cached:     j.cached,
		Err:        j.errMsg,
		Result:     j.result,
		Submitted:  j.submitted,
		Finished:   j.finished,
	}
}

// Batch groups jobs accepted by one SubmitBatch call.
type Batch struct {
	ID   string
	Jobs []*Job
}

// Coordinator routes jobs across the backend fleet: consistent-hash
// placement, health-aware failover with bounded backed-off
// resubmission, and a durable journal so accepted work survives a
// coordinator restart. The fleet itself is dynamic — UpdateBackends
// swaps the ring and client set live, draining removed backends'
// in-flight jobs through the ordinary failover path.
type Coordinator struct {
	cfg     Config
	reg     *obs.Registry
	journal *Journal

	// topoMu guards the routable topology. Rings are immutable, so a
	// membership change builds a new ring and swaps the pointer;
	// runners holding an old ring's route simply fail over into the
	// new topology when their backend disappears from clients.
	topoMu   sync.RWMutex
	ring     *Ring
	backends []Backend
	clients  map[string]*client
	removed  map[string]time.Time // name → removal time, for the flap guard

	ctx       context.Context
	abort     context.CancelCauseFunc
	wg        sync.WaitGroup // job runners
	probeWG   sync.WaitGroup
	probeStop chan struct{}
	leaseWG   sync.WaitGroup
	leaseStop chan struct{}
	stopOnce  sync.Once
	sem       chan struct{} // MaxInflight dispatch slots

	mu       sync.Mutex
	closed   bool
	nextID   int64
	jobs     map[string]*Job
	finished []string
}

// New builds a coordinator over the configured backends and starts its
// health prober (and, under HA, its lease-renewal loop). Call Recover
// next when booting with a journal.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	names := make([]string, len(cfg.Backends))
	for i, b := range cfg.Backends {
		names[i] = b.Name
	}
	ring, err := NewRing(names, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	ctx, abort := context.WithCancelCause(context.Background())
	c := &Coordinator{
		cfg:       cfg,
		reg:       cfg.Metrics,
		ring:      ring,
		backends:  append([]Backend(nil), cfg.Backends...),
		clients:   make(map[string]*client, len(cfg.Backends)),
		removed:   make(map[string]time.Time),
		journal:   cfg.Journal,
		ctx:       ctx,
		abort:     abort,
		probeStop: make(chan struct{}),
		leaseStop: make(chan struct{}),
		sem:       make(chan struct{}, cfg.MaxInflight),
		jobs:      make(map[string]*Job),
	}
	for _, b := range cfg.Backends {
		c.clients[b.Name] = newClient(b, cfg.HTTPClient, cfg.RequestTimeout, cfg.ProbeTimeout)
	}
	c.reg.Gauge("cluster.backends_healthy").Set(float64(len(cfg.Backends)))
	c.reg.Gauge("cluster.backends_total").Set(float64(len(cfg.Backends)))
	if cfg.ProbeInterval > 0 {
		c.probeWG.Add(1)
		go c.prober()
	}
	if cfg.HA != nil {
		c.leaseWG.Add(1)
		go c.renewLease()
	}
	return c, nil
}

// Metrics returns the coordinator's metrics registry.
func (c *Coordinator) Metrics() *obs.Registry { return c.reg }

// Ring returns the current routing ring (immutable; a membership
// change swaps in a new one).
func (c *Coordinator) Ring() *Ring {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	return c.ring
}

// attemptBudget is the per-job failover budget: the configured cap, or
// two laps of the current fleet.
func (c *Coordinator) attemptBudget() int {
	if c.cfg.Attempts > 0 {
		return c.cfg.Attempts
	}
	c.topoMu.RLock()
	n := len(c.backends)
	c.topoMu.RUnlock()
	if n == 0 {
		n = 1
	}
	return 2 * n
}

// renewLease keeps the leadership lease alive. Every TTL/3 it checks
// the lock file still names this coordinator — if not, a standby
// fenced us out, and the only safe move is to depose: stop intake and
// abort runners crash-style, leaving unfinished jobs journaled for the
// new leader's replay. A failed renewal write is retried on the next
// tick; if the writes keep failing, the lease expires and the standby
// takes over, which is the designed outcome for a leader that lost its
// disk.
func (c *Coordinator) renewLease() {
	defer c.leaseWG.Done()
	ha := c.cfg.HA
	ttl := ha.TTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	interval := ttl / 3
	if interval <= 0 {
		interval = time.Second
	}
	c.reg.Gauge("cluster.lease.term").Set(float64(ha.Lease.Term))
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.leaseStop:
			return
		case <-t.C:
		}
		if owner, err := readLockOwner(ha.LockPath); err != nil || owner != ha.Lease.Owner {
			c.reg.Counter("cluster.lease.lost").Add(1)
			c.depose()
			return
		}
		l := Lease{Term: ha.Lease.Term, Owner: ha.Lease.Owner, Deadline: time.Now().Add(ttl)}
		if err := c.journal.Lease(l); err != nil {
			c.reg.Counter("cluster.lease.write_errors").Add(1)
			continue
		}
		c.reg.Counter("cluster.lease.renewals").Add(1)
	}
}

// depose stops this coordinator as if it had crashed: intake closes,
// runners abort without journaling completions, and the journaled
// unfinished set is left for the successor's replay. Used when a
// standby fences us out and by the coord.crash chaos point.
func (c *Coordinator) depose() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.abort(errAborted)
}

// prober re-probes every backend's /readyz on a fixed cadence so dead
// nodes are skipped at routing time rather than discovered one failed
// submission at a time.
func (c *Coordinator) prober() {
	defer c.probeWG.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.probeStop:
			return
		case <-t.C:
			c.probeAll()
		}
	}
}

// probeAll probes all backends concurrently and updates the healthy
// gauge. Each probe carries its own ProbeTimeout-bounded context (see
// client.probe), so one hung backend delays the round by at most that
// timeout instead of the full RequestTimeout.
func (c *Coordinator) probeAll() {
	c.topoMu.RLock()
	clients := make([]*client, 0, len(c.clients))
	for _, cl := range c.clients {
		clients = append(clients, cl)
	}
	c.topoMu.RUnlock()
	var wg sync.WaitGroup
	for _, cl := range clients {
		wg.Add(1)
		go func(cl *client) {
			defer wg.Done()
			if !cl.probe(c.ctx) {
				c.reg.Counter("cluster.probe.failures").Add(1)
			}
		}(cl)
	}
	wg.Wait()
	healthy := 0
	for _, cl := range clients {
		if cl.Healthy() {
			healthy++
		}
	}
	c.reg.Gauge("cluster.backends_healthy").Set(float64(healthy))
}

// Submit accepts one job: journal the acceptance durably, then route
// and dispatch it. key is the routing key — the hex SHA-256 of the
// netlist's CanonicalBytes — and body the backend-ready request JSON
// (netlist inlined, so the backend needs no shared filesystem).
func (c *Coordinator) Submit(key string, body json.RawMessage) (*Job, error) {
	return c.submit("", key, body)
}

// SubmitBatch accepts many jobs as one batch. Every job is journaled
// before the call returns; per-job completion is observed via
// (*Job).Done.
func (c *Coordinator) SubmitBatch(keys []string, bodies []json.RawMessage) (*Batch, error) {
	if len(keys) != len(bodies) {
		return nil, fmt.Errorf("cluster: %d keys for %d bodies", len(keys), len(bodies))
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrShutdown
	}
	c.nextID++
	batch := &Batch{ID: fmt.Sprintf("batch-%d", c.nextID)}
	c.mu.Unlock()
	for i := range keys {
		j, err := c.submit(batch.ID, keys[i], bodies[i])
		if err != nil {
			// Already-accepted jobs keep running; the caller learns which
			// prefix was accepted from the partial batch.
			return batch, err
		}
		batch.Jobs = append(batch.Jobs, j)
	}
	c.reg.Counter("cluster.batches").Add(1)
	return batch, nil
}

func (c *Coordinator) submit(batch, key string, body json.RawMessage) (*Job, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrShutdown
	}
	c.nextID++
	id := fmt.Sprintf("cjob-%d", c.nextID)
	c.mu.Unlock()
	if err := c.journal.Accept(id, batch, key, body); err != nil {
		// An unjournaled acceptance must not be acknowledged: the whole
		// point of the journal is that accepted == durable.
		return nil, err
	}
	if c.cfg.Fault.Active(fault.CoordCrash) {
		// Die between journaling and dispatching — the worst-timed crash:
		// the record is durable but no backend has seen the job. The
		// successor's replay must resurface it under this exact ID.
		c.reg.Counter("cluster.coord.crashes").Add(1)
		c.depose()
		return nil, ErrShutdown
	}
	return c.start(id, batch, key, body), nil
}

// SubmitDelta routes an ECO delta to the backend holding the base
// job's warm-start state. Routing is pinned, not ring-hashed: the base
// result's cached net ordering lives only in the engine cache of the
// node that solved it, so the delta must land there and a dead node
// fails the delta instead of failing over (the caller re-submits the
// base elsewhere and re-PATCHes). The backend call happens
// synchronously so its 400/404/409 verdicts relay to the caller; the
// returned job then polls to completion like any other. Delta jobs are
// ephemeral — never journaled — because a restarted coordinator could
// not re-pin them.
func (c *Coordinator) SubmitDelta(ctx context.Context, baseID string, body json.RawMessage) (*Job, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrShutdown
	}
	base, ok := c.jobs[baseID]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownBase, baseID)
	}
	snap := base.Snapshot()
	if snap.State != StateDone || snap.Backend == "" || snap.BackendJob == "" {
		return nil, fmt.Errorf("%w: job %s is %s", ErrNotWarmStartable, baseID, snap.State)
	}
	c.topoMu.RLock()
	cl, ok := c.clients[snap.Backend]
	c.topoMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: backend %s left the fleet", ErrNotWarmStartable, snap.Backend)
	}
	bid, status, err := cl.patch(ctx, snap.BackendJob, body)
	switch {
	case err != nil && (status == http.StatusNotFound || status == http.StatusConflict):
		// The backend no longer holds (or cannot warm-start from) the
		// base job — typically it restarted and lost its registry.
		return nil, fmt.Errorf("%w: %v", ErrNotWarmStartable, err)
	case err != nil:
		return nil, err
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		// Accepted on the backend but the coordinator is going away; the
		// backend still runs it, we just cannot track it.
		return nil, ErrShutdown
	}
	c.nextID++
	id := fmt.Sprintf("cjob-%d", c.nextID)
	c.mu.Unlock()

	jctx, cancel := context.WithCancelCause(c.ctx)
	j := &Job{
		id:        id,
		key:       snap.ID, // lineage, not a ring key: deltas never route
		body:      body,
		ephemeral: true,
		ctx:       jctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		state:     StateRunning,
		submitted: time.Now(),
	}
	j.backend = snap.Backend
	j.backendJob = bid
	j.attempts = 1
	c.mu.Lock()
	c.jobs[id] = j
	c.pruneFinishedLocked()
	c.mu.Unlock()
	c.reg.Counter("cluster.deltas_submitted").Add(1)
	c.wg.Add(1)
	go c.runPinned(j, cl)
	return j, nil
}

// runPinned drives a delta job already accepted by its pinned backend:
// poll to terminal, no failover.
func (c *Coordinator) runPinned(j *Job, cl *client) {
	defer c.wg.Done()
	select {
	case c.sem <- struct{}{}:
	case <-j.ctx.Done():
		c.finishAborted(j)
		return
	}
	defer func() {
		<-c.sem
		c.reg.Gauge("cluster.jobs_inflight").Set(float64(len(c.sem)))
	}()
	c.reg.Gauge("cluster.jobs_inflight").Set(float64(len(c.sem)))

	bj, err := c.pollUntilTerminal(j, cl, j.backendJob)
	switch {
	case err != nil && j.ctx.Err() != nil:
		c.cancelBackend(cl, j.backendJob)
		c.finishAborted(j)
	case err != nil:
		c.finish(j, StateFailed, nil,
			fmt.Errorf("cluster: pinned backend %s lost the delta job: %w", cl.b.Name, err))
	default:
		c.finish(j, bj.State, bj, nil)
	}
}

// start registers and dispatches a job (newly accepted or replayed).
func (c *Coordinator) start(id, batch, key string, body json.RawMessage) *Job {
	ctx, cancel := context.WithCancelCause(c.ctx)
	j := &Job{
		id:        id,
		batch:     batch,
		key:       key,
		body:      body,
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		state:     StateQueued,
		submitted: time.Now(),
	}
	c.mu.Lock()
	c.jobs[id] = j
	c.pruneFinishedLocked()
	c.mu.Unlock()
	c.reg.Counter("cluster.jobs_submitted").Add(1)
	c.wg.Add(1)
	go c.run(j)
	return j
}

// Recover replays journal records from boot: every accepted job with
// no completion record is resubmitted under its original ID, and the
// ID counter advances past everything seen so new IDs never collide.
// Completed jobs are NOT re-run — their completion records prove the
// work was delivered. Returns the number of jobs resubmitted.
func (c *Coordinator) Recover(recs []Record) int {
	maxID := int64(0)
	for _, r := range recs {
		for _, id := range []string{r.Job, r.Batch} {
			if i := strings.LastIndexByte(id, '-'); i >= 0 {
				if n, err := strconv.ParseInt(id[i+1:], 10, 64); err == nil && n > maxID {
					maxID = n
				}
			}
		}
	}
	c.mu.Lock()
	if c.nextID < maxID {
		c.nextID = maxID
	}
	c.mu.Unlock()
	unfinished := Unfinished(recs)
	for _, r := range unfinished {
		c.start(r.Job, r.Batch, r.Key, r.Body)
	}
	c.reg.Counter("cluster.journal.replayed").Add(int64(len(unfinished)))
	return len(unfinished)
}

// Get returns the job with the given ID.
func (c *Coordinator) Get(id string) (*Job, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a job: the runner stops at its next
// step and best-effort cancels the backend copy. Reports whether the
// ID was known.
func (c *Coordinator) Cancel(id string) bool {
	j, ok := c.Get(id)
	if !ok {
		return false
	}
	j.Cancel()
	return true
}

// run drives one job to a terminal state: submit to the ring owner,
// poll to completion, and on node death resubmit to the next backend
// in ring order with capped, jittered backoff — at most cfg.Attempts
// submissions in total.
func (c *Coordinator) run(j *Job) {
	defer c.wg.Done()
	select {
	case c.sem <- struct{}{}:
	case <-j.ctx.Done():
		c.finishAborted(j)
		return
	}
	defer func() {
		<-c.sem
		c.reg.Gauge("cluster.jobs_inflight").Set(float64(len(c.sem)))
	}()
	c.reg.Gauge("cluster.jobs_inflight").Set(float64(len(c.sem)))

	order := c.Ring().Route(j.key)
	// FNV-1a over the job ID: per-job deterministic jitter streams, the
	// same scheme the backend engine uses for its solve retries.
	seed := uint64(14695981039346656037)
	for i := 0; i < len(j.id); i++ {
		seed = (seed ^ uint64(j.id[i])) * 1099511628211
	}
	var lastErr error
	budget := c.attemptBudget()
	for attempt := 1; attempt <= budget; attempt++ {
		if j.ctx.Err() != nil {
			c.finishAborted(j)
			return
		}
		if attempt > 1 {
			c.reg.Counter("cluster.failover.resubmits").Add(1)
			j.mu.Lock()
			j.resubmits++
			j.mu.Unlock()
			if sleepCtx(j.ctx, fault.BackoffDelay(attempt-1, c.cfg.RetryBaseDelay, c.cfg.RetryMaxDelay, seed)) != nil {
				c.finishAborted(j)
				return
			}
		}
		cl := c.pick(order, attempt-1)
		if cl == nil {
			// Every backend in the routed order left the fleet since this
			// job was routed: re-route on the current ring.
			order = c.Ring().Route(j.key)
			cl = c.pick(order, attempt-1)
		}
		if cl == nil {
			c.finish(j, StateFailed, nil, errors.New("cluster: no routable backend in the current fleet"))
			return
		}
		j.mu.Lock()
		j.state = StateRunning
		j.backend = cl.b.Name
		j.backendJob = ""
		j.attempts = attempt
		j.mu.Unlock()

		bid, err := cl.submit(j.ctx, j.body)
		if err != nil {
			if j.ctx.Err() != nil {
				c.finishAborted(j)
				return
			}
			if isNodeError(err) {
				lastErr = err
				continue
			}
			// Permanent rejection (a 400): no backend would accept it.
			c.finish(j, StateFailed, nil, err)
			return
		}
		j.mu.Lock()
		j.backendJob = bid
		j.mu.Unlock()

		bj, err := c.pollUntilTerminal(j, cl, bid)
		switch {
		case err != nil && j.ctx.Err() != nil:
			// Cancelled (or aborted) mid-poll: pass the cancel on to the
			// backend so it stops computing a result nobody wants.
			c.cancelBackend(cl, bid)
			c.finishAborted(j)
			return
		case err != nil:
			lastErr = err
			continue
		default:
			c.finish(j, bj.State, bj, nil)
			return
		}
	}
	c.finish(j, StateFailed, nil,
		fmt.Errorf("cluster: no backend completed the job after %d attempts: %w", budget, lastErr))
}

// pollErrLimit is how many consecutive poll failures declare the
// backend dead. One transient blip should not trigger a resubmission;
// three in a row (with the poll interval between them) is a node that
// stopped answering.
const pollErrLimit = 3

// pollUntilTerminal polls the backend until the job is terminal there.
// It returns a node-level error when the backend stops answering.
func (c *Coordinator) pollUntilTerminal(j *Job, cl *client, bid string) (*backendJob, error) {
	consecutive := 0
	for {
		if err := sleepCtx(j.ctx, c.cfg.PollInterval); err != nil {
			return nil, err
		}
		bj, err := cl.poll(j.ctx, bid)
		if err != nil {
			if j.ctx.Err() != nil {
				return nil, err
			}
			consecutive++
			// A node error that also flipped the client unhealthy (e.g.
			// connection refused) fails over at once; anything softer gets
			// pollErrLimit chances to be a blip.
			if consecutive >= pollErrLimit || (isNodeError(err) && !cl.Healthy()) {
				return nil, err
			}
			continue
		}
		consecutive = 0
		if terminalState(bj.State) {
			return bj, nil
		}
	}
}

// pick chooses the backend for a given failover hop: ring order from
// the hop offset, preferring the first backend currently believed
// healthy, falling back to the first still-present choice when the
// whole fleet looks down (it may have recovered since the last
// probe). Backends that left the fleet since the order was computed
// are skipped; nil means none of the routed backends exist anymore
// and the caller must re-route.
func (c *Coordinator) pick(order []string, hop int) *client {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	n := len(order)
	var fallback *client
	for i := 0; i < n; i++ {
		cl := c.clients[order[(hop+i)%n]]
		if cl == nil {
			continue
		}
		if fallback == nil {
			fallback = cl
		}
		if cl.Healthy() {
			return cl
		}
	}
	return fallback
}

// cancelBackend best-effort cancels the backend's copy of a job; the
// job's own context is already dead, so use a short independent one.
func (c *Coordinator) cancelBackend(cl *client, bid string) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	cl.cancel(ctx, bid)
}

// finish freezes the job in a terminal state, journals the completion,
// and counts the outcome.
func (c *Coordinator) finish(j *Job, state string, bj *backendJob, err error) {
	j.mu.Lock()
	j.state = state
	if bj != nil {
		j.cached = bj.Cached
		j.result = bj.Result
		j.errMsg = bj.Error
	}
	if err != nil {
		j.errMsg = err.Error()
	}
	j.finished = time.Now()
	j.mu.Unlock()
	if jerr := c.completeJournal(j, state); jerr != nil {
		// A completion that could not be journaled means the job will be
		// re-run on the next boot — wasteful (the backend cache usually
		// absorbs it) but never wrong.
		c.reg.Counter("cluster.journal.write_errors").Add(1)
	}
	switch state {
	case StateDone:
		c.reg.Counter("cluster.jobs_completed").Add(1)
	case StateCancelled:
		c.reg.Counter("cluster.jobs_cancelled").Add(1)
	default:
		c.reg.Counter("cluster.jobs_failed").Add(1)
	}
	c.recordFinished(j)
	close(j.done)
}

// completeJournal writes the job's completion record; ephemeral jobs
// (deltas) were never accepted in the journal, so completing them
// would strand a done-without-accept record for nothing.
func (c *Coordinator) completeJournal(j *Job, state string) error {
	if j.ephemeral {
		return nil
	}
	return c.journal.Complete(j.id, state)
}

// finishAborted resolves a job whose context died, by cause: a user
// Cancel becomes a journaled "cancelled"; a coordinator abort (crash
// simulation, drain deadline) leaves the job non-terminal and
// unjournaled so the next boot replays it.
func (c *Coordinator) finishAborted(j *Job) {
	if errors.Is(context.Cause(j.ctx), errAborted) {
		return
	}
	c.finish(j, StateCancelled, nil, context.Cause(j.ctx))
}

// recordFinished appends to the terminal list for pruning.
func (c *Coordinator) recordFinished(j *Job) {
	c.mu.Lock()
	c.finished = append(c.finished, j.id)
	c.pruneFinishedLocked()
	c.mu.Unlock()
}

// pruneFinishedLocked forgets the oldest terminal jobs beyond
// MaxFinished.
func (c *Coordinator) pruneFinishedLocked() {
	for len(c.finished) > c.cfg.MaxFinished {
		delete(c.jobs, c.finished[0])
		c.finished = c.finished[1:]
	}
}

// BackendStatus is one backend's aggregated health view.
type BackendStatus struct {
	Name    string          `json:"name"`
	URL     string          `json:"url"`
	Ready   bool            `json:"ready"`
	Healthy bool            `json:"healthy"`
	Detail  json.RawMessage `json:"detail,omitempty"`
}

// Backends returns the current fleet in configuration order.
func (c *Coordinator) Backends() []Backend {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	return append([]Backend(nil), c.backends...)
}

// Status live-probes every backend's /readyz and returns per-backend
// readiness in configuration order.
func (c *Coordinator) Status(ctx context.Context) []BackendStatus {
	c.topoMu.RLock()
	backends := append([]Backend(nil), c.backends...)
	clients := make([]*client, len(backends))
	for i, b := range backends {
		clients[i] = c.clients[b.Name]
	}
	c.topoMu.RUnlock()
	out := make([]BackendStatus, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		wg.Add(1)
		go func(i int, b Backend, cl *client) {
			defer wg.Done()
			ready, detail := cl.readyz(ctx)
			out[i] = BackendStatus{Name: b.Name, URL: b.URL, Ready: ready, Healthy: cl.Healthy(), Detail: detail}
		}(i, b, clients[i])
	}
	wg.Wait()
	return out
}

// GatherMetrics fetches every backend's /metrics concurrently; a dead
// backend maps to null so the aggregate never blocks on fleet health.
func (c *Coordinator) GatherMetrics(ctx context.Context) map[string]json.RawMessage {
	c.topoMu.RLock()
	clients := make(map[string]*client, len(c.clients))
	for name, cl := range c.clients {
		clients[name] = cl
	}
	c.topoMu.RUnlock()
	out := make(map[string]json.RawMessage, len(clients))
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for name, cl := range clients {
		wg.Add(1)
		go func(name string, cl *client) {
			defer wg.Done()
			m, err := cl.metrics(ctx)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				out[name] = nil
				return
			}
			out[name] = m
		}(name, cl)
	}
	wg.Wait()
	return out
}

// Shutdown stops intake and drains: in-flight jobs keep running to
// completion. If ctx fires first the remaining runners abort without
// journaling completions — exactly a crash from the journal's point of
// view, so the next boot replays them; the ctx error is returned.
// Under HA the leader lock is released (if still ours) so a standby
// can take over without waiting out the lease window.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.stopOnce.Do(func() {
		close(c.probeStop)
		close(c.leaseStop)
	})
	c.probeWG.Wait()
	c.leaseWG.Wait()

	drained := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		c.abort(errAborted)
		<-drained
		err = ctx.Err()
	}
	if jerr := c.journal.Close(); err == nil && jerr != nil {
		err = jerr
	}
	if ha := c.cfg.HA; ha != nil {
		releaseLock(ha.LockPath, ha.Lease.Owner)
	}
	return err
}

// sleepCtx sleeps for d or until ctx fires.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
