package cluster

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

// movedSampleKeys is how many synthetic keys MovedKeys samples to
// estimate ring churn on a membership change.
const movedSampleKeys = 4096

// MembershipChange summarizes one UpdateBackends call.
type MembershipChange struct {
	Added      []string
	Removed    []string
	Suppressed []string // adds held back by the flap guard
	// MovedKeys of SampledKeys synthetic routing keys changed owner
	// between the old and new ring — the minimal-movement check.
	MovedKeys   int
	SampledKeys int
}

func (ch MembershipChange) empty() bool {
	return len(ch.Added) == 0 && len(ch.Removed) == 0 && len(ch.Suppressed) == 0
}

// UpdateBackends swaps the fleet to the given list. Added backends
// extend the ring (stealing only their consistent-hash share of the
// key space); removed backends disappear from routing while their
// in-flight jobs drain through the ordinary failover path — the
// runner's next poll or submit fails over along the ring, because pick
// no longer finds the departed client. A backend re-added within
// MinDwell of its removal is suppressed until the dwell passes
// (flapping guard): the watcher retries, so a genuinely stable return
// takes traffic after the dwell, while a flapping node never churns
// the ring.
func (c *Coordinator) UpdateBackends(backends []Backend) (MembershipChange, error) {
	var ch MembershipChange
	if len(backends) == 0 {
		return ch, errors.New("cluster: membership update lists no backends")
	}
	now := time.Now()
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	cur := make(map[string]Backend, len(c.backends))
	for _, b := range c.backends {
		cur[b.Name] = b
	}
	next := make([]Backend, 0, len(backends))
	nextSet := make(map[string]Backend, len(backends))
	for _, b := range backends {
		if _, dup := nextSet[b.Name]; dup {
			return MembershipChange{}, fmt.Errorf("%w: %q", ErrDuplicateBackend, b.Name)
		}
		if _, have := cur[b.Name]; !have {
			if left, ok := c.removed[b.Name]; ok && c.cfg.MinDwell > 0 && now.Sub(left) < c.cfg.MinDwell {
				ch.Suppressed = append(ch.Suppressed, b.Name)
				continue
			}
			ch.Added = append(ch.Added, b.Name)
		}
		nextSet[b.Name] = b
		next = append(next, b)
	}
	if len(next) == 0 {
		return MembershipChange{}, errors.New("cluster: membership update leaves no routable backends")
	}
	for name := range cur {
		if _, keep := nextSet[name]; !keep {
			ch.Removed = append(ch.Removed, name)
		}
	}
	sort.Strings(ch.Added)
	sort.Strings(ch.Removed)
	sort.Strings(ch.Suppressed)

	names := make([]string, len(next))
	for i, b := range next {
		names[i] = b.Name
	}
	ring, err := NewRing(names, c.cfg.Replicas)
	if err != nil {
		return MembershipChange{}, err
	}
	ch.SampledKeys = movedSampleKeys
	ch.MovedKeys = MovedKeys(c.ring, ring, movedSampleKeys)

	clients := make(map[string]*client, len(next))
	for _, b := range next {
		// Keep the existing client (and its health belief) when the
		// backend is unchanged; a new URL means a new client.
		if old := c.clients[b.Name]; old != nil && old.b.URL == b.URL {
			clients[b.Name] = old
		} else {
			clients[b.Name] = newClient(b, c.cfg.HTTPClient, c.cfg.RequestTimeout, c.cfg.ProbeTimeout)
		}
	}
	for _, name := range ch.Removed {
		c.removed[name] = now
	}
	for _, name := range ch.Added {
		delete(c.removed, name)
	}
	c.ring, c.backends, c.clients = ring, next, clients

	c.reg.Counter("cluster.membership.reloads").Add(1)
	c.reg.Counter("cluster.membership.adds").Add(int64(len(ch.Added)))
	c.reg.Counter("cluster.membership.removes").Add(int64(len(ch.Removed)))
	c.reg.Counter("cluster.membership.flap_suppressed").Add(int64(len(ch.Suppressed)))
	if len(ch.Added)+len(ch.Removed) > 0 {
		// The gauge records the churn of the last real topology change;
		// a no-op reload (double SIGHUP, unchanged file) must not zero it.
		c.reg.Gauge("cluster.ring.moved_keys").Set(float64(ch.MovedKeys))
	}
	c.reg.Gauge("cluster.backends_total").Set(float64(len(next)))
	return ch, nil
}

// ParseBackendsFile reads a watchable backends file: one ParseBackends
// spec per line ("name=URL" or bare URL), '#' comments, blank lines
// ignored. Line order is flag order for positional b0, b1, … naming.
func ParseBackendsFile(path string) ([]Backend, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: backends file: %w", err)
	}
	var specs []string
	for _, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line != "" {
			specs = append(specs, line)
		}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: backends file %s lists no backends", path)
	}
	return ParseBackends(strings.Join(specs, ","))
}

// WatchBackendsFile polls the backends file for membership changes
// until ctx ends: a changed mtime or size triggers a reload, and a
// tick on force (SIGHUP in the daemon) reloads unconditionally. A file
// that fails to parse — or a reload that would empty the fleet — is
// logged and skipped, keeping the current fleet: a half-written edit
// must never take the cluster down. While an add is flap-suppressed
// the watcher keeps retrying every interval so the backend joins as
// soon as its dwell passes.
func (c *Coordinator) WatchBackendsFile(ctx context.Context, path string, interval time.Duration, force <-chan struct{}, logf func(format string, args ...any)) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var lastMod time.Time
	var lastSize int64 = -1
	if st, err := os.Stat(path); err == nil {
		lastMod, lastSize = st.ModTime(), st.Size()
	}
	pending := false // a suppressed add waiting out its dwell
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		reload := pending
		select {
		case <-ctx.Done():
			return
		case <-force:
			reload = true
		case <-t.C:
			if st, err := os.Stat(path); err == nil && (!st.ModTime().Equal(lastMod) || st.Size() != lastSize) {
				lastMod, lastSize = st.ModTime(), st.Size()
				reload = true
			}
		}
		if !reload {
			continue
		}
		backends, err := ParseBackendsFile(path)
		if err != nil {
			c.reg.Counter("cluster.membership.reload_errors").Add(1)
			logf("cluster: backends file reload failed, keeping current fleet: %v", err)
			pending = false
			continue
		}
		ch, err := c.UpdateBackends(backends)
		if err != nil {
			c.reg.Counter("cluster.membership.reload_errors").Add(1)
			logf("cluster: membership update rejected, keeping current fleet: %v", err)
			pending = false
			continue
		}
		pending = len(ch.Suppressed) > 0
		if !ch.empty() {
			logf("cluster: membership reload: added %v removed %v flap-suppressed %v (%d/%d sampled keys moved)",
				ch.Added, ch.Removed, ch.Suppressed, ch.MovedKeys, ch.SampledKeys)
		}
	}
}
