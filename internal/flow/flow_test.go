package flow

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"igpart/internal/hypergraph"
	"igpart/internal/partition"
)

func twoTriangles() *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder()
	b.AddNet(0, 1)
	b.AddNet(1, 2)
	b.AddNet(0, 2)
	b.AddNet(3, 4)
	b.AddNet(4, 5)
	b.AddNet(3, 5)
	b.AddNet(2, 3) // bridge
	return b.Build()
}

func TestMinNetCutBridge(t *testing.T) {
	h := twoTriangles()
	res, err := MinNetCut(h, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxFlow != 1 {
		t.Fatalf("max flow = %d, want 1 (the bridge)", res.MaxFlow)
	}
	if res.Metrics.CutNets != 1 {
		t.Errorf("cut = %d, want 1", res.Metrics.CutNets)
	}
	if res.Partition.Side(0) == res.Partition.Side(5) {
		t.Error("source and sink not separated")
	}
	// The whole triangles stay intact.
	for v := 1; v <= 2; v++ {
		if res.Partition.Side(v) != res.Partition.Side(0) {
			t.Errorf("module %d split from source triangle", v)
		}
	}
}

func TestMinNetCutSharedNet(t *testing.T) {
	// s and t on one 2-pin net: cutting that single net separates them.
	b := hypergraph.NewBuilder()
	b.AddNet(0, 1)
	h := b.Build()
	res, err := MinNetCut(h, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxFlow != 1 || res.Metrics.CutNets != 1 {
		t.Errorf("flow=%d cut=%d, want 1/1", res.MaxFlow, res.Metrics.CutNets)
	}
}

func TestMinNetCutErrors(t *testing.T) {
	h := twoTriangles()
	if _, err := MinNetCut(h, 0, 0); err == nil {
		t.Error("accepted s == t")
	}
	if _, err := MinNetCut(h, -1, 2); err == nil {
		t.Error("accepted out-of-range source")
	}
}

// bruteMinNetCut finds the true minimum number of nets separating s and t
// by enumerating net subsets (small instances only).
func bruteMinNetCut(h *hypergraph.Hypergraph, s, t int) int {
	m := h.NumNets()
	best := m + 1
	for mask := uint32(0); mask < 1<<uint(m); mask++ {
		k := bits.OnesCount32(mask)
		if k >= best {
			continue
		}
		// Connectivity of s to t avoiding removed nets.
		seen := make([]bool, h.NumModules())
		seen[s] = true
		queue := []int{s}
		for qi := 0; qi < len(queue) && !seen[t]; qi++ {
			u := queue[qi]
			for _, e := range h.Nets(u) {
				if mask&(1<<uint(e)) != 0 {
					continue
				}
				for _, v := range h.Pins(e) {
					if !seen[v] {
						seen[v] = true
						queue = append(queue, v)
					}
				}
			}
		}
		if !seen[t] {
			best = k
		}
	}
	return best
}

func TestMinNetCutMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		b := hypergraph.NewBuilder()
		b.SetNumModules(n)
		m := 2 + rng.Intn(9)
		for e := 0; e < m; e++ {
			k := 2 + rng.Intn(3)
			pins := make([]int, k)
			for i := range pins {
				pins[i] = rng.Intn(n)
			}
			b.AddNet(pins...)
		}
		h := b.Build()
		s := rng.Intn(n)
		t0 := rng.Intn(n)
		if s == t0 {
			t0 = (t0 + 1) % n
		}
		res, err := MinNetCut(h, s, t0)
		if err != nil {
			return false
		}
		want := bruteMinNetCut(h, s, t0)
		// The gadget guarantees the partition cuts exactly MaxFlow nets and
		// MaxFlow equals the true minimum.
		return res.MaxFlow == want && res.Metrics.CutNets == res.MaxFlow &&
			partition.Evaluate(h, res.Partition) == res.Metrics
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBestOverPairs(t *testing.T) {
	h := twoTriangles()
	res, err := BestOverPairs(h, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxFlow != 1 {
		t.Errorf("best cut = %d, want 1", res.MaxFlow)
	}
	if _, err := BestOverPairs(hypergraph.NewBuilder().Build(), 2); err == nil {
		t.Error("accepted empty netlist")
	}
}

// TestMinCutUnevenDivision reproduces the paper's Section 1.1 observation:
// on a circuit with a cheap peripheral separation, the flow min cut peels
// a tiny piece while the ratio-cut objective prefers the balanced split.
func TestMinCutUnevenDivision(t *testing.T) {
	// Two 12-module clusters joined by 3 bridges, plus one pendant module
	// hanging off a single net: the global min cut (1) isolates the
	// pendant; the planted "good" partition cuts 3.
	rng := rand.New(rand.NewSource(4))
	b := hypergraph.NewBuilder()
	b.SetNumModules(25)
	for c := 0; c < 2; c++ {
		base := c * 12
		for i := 0; i < 11; i++ {
			b.AddNet(base+i, base+i+1)
		}
		for e := 0; e < 20; e++ {
			b.AddNet(base+rng.Intn(12), base+rng.Intn(12))
		}
	}
	for i := 0; i < 3; i++ {
		b.AddNet(rng.Intn(12), 12+rng.Intn(12))
	}
	b.AddNet(0, 24) // pendant module 24
	h := b.Build()
	res, err := BestOverPairs(h, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxFlow > 1 {
		t.Fatalf("min cut = %d, want 1 (the pendant)", res.MaxFlow)
	}
	small := res.Metrics.SizeU
	if res.Metrics.SizeW < small {
		small = res.Metrics.SizeW
	}
	if small > 2 {
		t.Errorf("min cut should divide very unevenly; small side = %d", small)
	}
}
