// Package flow implements the paper's first formulation (Section 1.1):
// Minimum Cut via max-flow/min-cut (Ford–Fulkerson [8]). The netlist
// hypergraph is converted to a flow network with the standard net-splitting
// gadget — each net becomes an in-node and an out-node joined by a
// capacity-1 arc, so a unit of cut capacity corresponds to exactly one cut
// net — and a Dinic max-flow between a source and sink module yields a
// minimum net cut separating them.
//
// The paper's point about this formulation is that the min cut "will often
// divide modules very unevenly"; the MinNetCut experiment in the harness
// demonstrates exactly that against the ratio-cut objective.
package flow

import (
	"errors"
	"math"

	"igpart/internal/hypergraph"
	"igpart/internal/partition"
)

const inf = int(1) << 30

// dinic is a standard Dinic max-flow solver over an adjacency-list network
// with paired reverse edges.
type dinic struct {
	n     int
	to    []int
	cap   []int
	next  []int
	head  []int
	level []int
	iter  []int
}

func newDinic(n int) *dinic {
	d := &dinic{n: n, head: make([]int, n), level: make([]int, n), iter: make([]int, n)}
	for i := range d.head {
		d.head[i] = -1
	}
	return d
}

// addEdge adds a directed edge u→v with the given capacity (plus the
// implicit reverse edge of capacity 0).
func (d *dinic) addEdge(u, v, c int) {
	d.to = append(d.to, v)
	d.cap = append(d.cap, c)
	d.next = append(d.next, d.head[u])
	d.head[u] = len(d.to) - 1

	d.to = append(d.to, u)
	d.cap = append(d.cap, 0)
	d.next = append(d.next, d.head[v])
	d.head[v] = len(d.to) - 1
}

func (d *dinic) bfs(s, t int) bool {
	for i := range d.level {
		d.level[i] = -1
	}
	d.level[s] = 0
	queue := []int{s}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for e := d.head[u]; e >= 0; e = d.next[e] {
			if d.cap[e] > 0 && d.level[d.to[e]] < 0 {
				d.level[d.to[e]] = d.level[u] + 1
				queue = append(queue, d.to[e])
			}
		}
	}
	return d.level[t] >= 0
}

func (d *dinic) dfs(u, t, f int) int {
	if u == t {
		return f
	}
	for ; d.iter[u] >= 0; d.iter[u] = d.next[d.iter[u]] {
		e := d.iter[u]
		v := d.to[e]
		if d.cap[e] > 0 && d.level[v] == d.level[u]+1 {
			got := d.dfs(v, t, min(f, d.cap[e]))
			if got > 0 {
				d.cap[e] -= got
				d.cap[e^1] += got
				return got
			}
		}
	}
	return 0
}

// maxFlow runs Dinic from s to t and returns the flow value.
func (d *dinic) maxFlow(s, t int) int {
	flow := 0
	for d.bfs(s, t) {
		copy(d.iter, d.head)
		for {
			f := d.dfs(s, t, inf)
			if f == 0 {
				break
			}
			flow += f
		}
	}
	return flow
}

// reachable returns the set of nodes reachable from s in the residual
// network — the source side of a minimum cut.
func (d *dinic) reachable(s int) []bool {
	seen := make([]bool, d.n)
	seen[s] = true
	queue := []int{s}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for e := d.head[u]; e >= 0; e = d.next[e] {
			if d.cap[e] > 0 && !seen[d.to[e]] {
				seen[d.to[e]] = true
				queue = append(queue, d.to[e])
			}
		}
	}
	return seen
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Result reports a source–sink minimum net cut.
type Result struct {
	Partition *partition.Bipartition
	Metrics   partition.Metrics
	// MaxFlow is the flow value — exactly the number of cut nets by the
	// max-flow min-cut theorem on the gadget network.
	MaxFlow int
	// Source and Sink are the separated modules.
	Source, Sink int
}

// MinNetCut computes a minimum net cut separating module s from module t:
// the fewest nets whose removal disconnects them. The returned bipartition
// places the residual-reachable modules on side U (with s) and the rest on
// side W (with t).
func MinNetCut(h *hypergraph.Hypergraph, s, t int) (Result, error) {
	n := h.NumModules()
	m := h.NumNets()
	if s < 0 || s >= n || t < 0 || t >= n {
		return Result{}, errors.New("flow: source or sink out of range")
	}
	if s == t {
		return Result{}, errors.New("flow: source equals sink")
	}
	// Nodes: modules 0..n−1, then per net an in-node n+2e and out-node
	// n+2e+1. Module→netIn and netOut→module arcs are uncuttable (∞);
	// netIn→netOut carries capacity 1.
	d := newDinic(n + 2*m)
	for e := 0; e < m; e++ {
		in, out := n+2*e, n+2*e+1
		d.addEdge(in, out, 1)
		for _, v := range h.Pins(e) {
			d.addEdge(v, in, inf)
			d.addEdge(out, v, inf)
		}
	}
	flowVal := d.maxFlow(s, t)
	seen := d.reachable(s)
	p := partition.New(n)
	for v := 0; v < n; v++ {
		if !seen[v] {
			p.Set(v, partition.W)
		}
	}
	met := partition.Evaluate(h, p)
	return Result{
		Partition: p,
		Metrics:   met,
		MaxFlow:   flowVal,
		Source:    s,
		Sink:      t,
	}, nil
}

// BestOverPairs tries min net cuts over a deterministic set of well-spread
// source/sink pairs (endpoints of module-graph BFS sweeps plus extremes)
// and returns the result with the smallest cut, breaking ties toward the
// better ratio cut. It is the "global min cut via a few s–t cuts"
// heuristic that makes the Section 1.1 formulation usable standalone.
func BestOverPairs(h *hypergraph.Hypergraph, pairs int) (Result, error) {
	n := h.NumModules()
	if n < 2 {
		return Result{}, errors.New("flow: need at least 2 modules")
	}
	if pairs <= 0 {
		pairs = 4
	}
	// BFS over "share a net" adjacency from module 0 to find a far pair.
	far := func(src int) int {
		dist := make([]int, n)
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []int{src}
		last := src
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			last = u
			for _, e := range h.Nets(u) {
				for _, v := range h.Pins(e) {
					if dist[v] < 0 {
						dist[v] = dist[u] + 1
						queue = append(queue, v)
					}
				}
			}
		}
		// Prefer a module in another component when one exists.
		for v := 0; v < n; v++ {
			if dist[v] < 0 {
				return v
			}
		}
		return last
	}
	a := far(0)
	b := far(a)
	cands := [][2]int{{a, b}, {0, n - 1}, {a, n / 2}, {b, n / 2}, {0, a}, {0, b}}
	var best Result
	bestCut := math.Inf(1)
	tried := 0
	for _, c := range cands {
		if tried >= pairs || c[0] == c[1] {
			continue
		}
		tried++
		res, err := MinNetCut(h, c[0], c[1])
		if err != nil {
			continue
		}
		key := float64(res.MaxFlow) + 1e-9*res.Metrics.RatioCut
		if key < bestCut {
			bestCut = key
			best = res
		}
	}
	if best.Partition == nil {
		return Result{}, errors.New("flow: no usable source/sink pair")
	}
	return best, nil
}
