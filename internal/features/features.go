// Package features extracts the cheap structural feature vector of a
// netlist that drives per-instance algorithm choice: size, pin density,
// and the net-size / module-degree distribution shape from Section 2 of
// the paper. The same vector feeds the bench taxonomy table and the
// portfolio lineup heuristic, so the two can never drift on feature
// definitions.
//
// Extraction is one O(pins) walk (it reuses hypergraph.ComputeStats)
// and is deterministic: equal netlists always yield equal vectors.
package features

import (
	"fmt"
	"sort"

	"igpart/internal/hypergraph"
)

// Class buckets a netlist by the structure that matters for choosing a
// partitioning strategy. The thresholds live in Classify.
type Class string

const (
	// ClassTiny: small enough that every engine finishes instantly;
	// racing direct engines costs nothing and spectral quality wins.
	ClassTiny Class = "tiny"
	// ClassSparse: moderate size, bounded net sizes, low pin density —
	// the flat IG-Match sweep is affordable and usually best.
	ClassSparse Class = "sparse"
	// ClassDense: large nets relative to the module count (high pin
	// density); the intersection graph is heavy, so module-side
	// spectral (EIG1) and coarsened engines pull ahead.
	ClassDense Class = "dense"
	// ClassLarge: enough nets that the full O(m·(m+e)) sweep is the
	// bottleneck; multilevel and candidate-sweep variants are the
	// only engines that stay fast.
	ClassLarge Class = "large"
)

// Vector is the feature vector of one netlist.
type Vector struct {
	Modules int `json:"modules"`
	Nets    int `json:"nets"`
	Pins    int `json:"pins"`

	// AvgNetSize and MaxNetSize summarize the net-size distribution;
	// P90NetSize is the smallest size covering 90% of nets (their
	// count, not their pins).
	AvgNetSize float64 `json:"avg_net_size"`
	MaxNetSize int     `json:"max_net_size"`
	P90NetSize int     `json:"p90_net_size"`

	// AvgDegree and MaxDegree summarize the module-degree
	// distribution (nets per module).
	AvgDegree float64 `json:"avg_degree"`
	MaxDegree int     `json:"max_degree"`

	// PinDensity is pins / (modules · nets) — the fill ratio of the
	// module-net incidence matrix. Dense instances make the
	// intersection graph quadratic-ish and favor module-side engines.
	PinDensity float64 `json:"pin_density"`

	// Class is the lineup bucket Classify derived from the fields
	// above.
	Class Class `json:"class"`
}

// Classification thresholds. Exported so the portfolio lineup, the bench
// taxonomy table, and tests agree on the exact boundaries.
const (
	// TinyNets: at or below this many nets everything is instant.
	TinyNets = 256
	// LargeNets: above this many nets the full sweep dominates wall
	// time and coarsening/candidate engines take over.
	LargeNets = 4096
	// DensePinDensity: above this fill ratio the instance counts as
	// dense regardless of size.
	DensePinDensity = 0.05
	// DenseAvgNetSizeFrac: an average net spanning more than this
	// fraction of all modules also counts as dense.
	DenseAvgNetSizeFrac = 0.25
)

// Extract walks h once and returns its feature vector, classified.
func Extract(h *hypergraph.Hypergraph) Vector {
	st := hypergraph.ComputeStats(h)
	v := Vector{
		Modules:    st.Modules,
		Nets:       st.Nets,
		Pins:       st.Pins,
		AvgNetSize: st.AvgNetSize,
		MaxNetSize: st.MaxNetSize,
		AvgDegree:  st.AvgDegree,
		MaxDegree:  st.MaxDegree,
		P90NetSize: quantileFromHist(st.NetSizeHist, st.Nets, 0.90),
	}
	if st.Modules > 0 && st.Nets > 0 {
		v.PinDensity = float64(st.Pins) / (float64(st.Modules) * float64(st.Nets))
	}
	v.Class = v.classify()
	return v
}

// classify buckets the vector; see the Class constants for intent.
func (v Vector) classify() Class {
	dense := v.PinDensity > DensePinDensity ||
		(v.Modules > 0 && v.AvgNetSize > DenseAvgNetSizeFrac*float64(v.Modules))
	switch {
	case v.Nets <= TinyNets:
		return ClassTiny
	case v.Nets > LargeNets:
		return ClassLarge
	case dense:
		return ClassDense
	default:
		return ClassSparse
	}
}

// quantileFromHist returns the smallest key k of hist such that the
// cumulative count through k reaches q·total. Zero when the histogram is
// empty.
func quantileFromHist(hist map[int]int, total int, q float64) int {
	if total <= 0 || len(hist) == 0 {
		return 0
	}
	keys := make([]int, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	need := q * float64(total)
	cum := 0
	for _, k := range keys {
		cum += hist[k]
		if float64(cum) >= need {
			return k
		}
	}
	return keys[len(keys)-1]
}

// String renders the vector for log lines and tables.
func (v Vector) String() string {
	return fmt.Sprintf("class=%s nets=%d modules=%d pins=%d density=%.4f netsize[avg=%.2f p90=%d max=%d] degree[avg=%.2f max=%d]",
		v.Class, v.Nets, v.Modules, v.Pins, v.PinDensity,
		v.AvgNetSize, v.P90NetSize, v.MaxNetSize, v.AvgDegree, v.MaxDegree)
}
