package features

import (
	"math/rand"
	"testing"

	"igpart/internal/hypergraph"
)

// chain builds a path-like netlist: n 2-pin nets over n+1 modules.
func chain(n int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNet(i, i+1)
	}
	return b.Build()
}

func TestExtractBasics(t *testing.T) {
	h := chain(10)
	v := Extract(h)
	if v.Nets != 10 || v.Modules != 11 || v.Pins != 20 {
		t.Fatalf("counts: %+v", v)
	}
	if v.AvgNetSize != 2 || v.MaxNetSize != 2 || v.P90NetSize != 2 {
		t.Fatalf("net sizes: %+v", v)
	}
	if v.MaxDegree != 2 {
		t.Fatalf("max degree: %+v", v)
	}
	wantDensity := 20.0 / (11.0 * 10.0)
	if v.PinDensity != wantDensity {
		t.Fatalf("pin density %g, want %g", v.PinDensity, wantDensity)
	}
	if v.Class != ClassTiny {
		t.Fatalf("class %q, want tiny", v.Class)
	}
}

func TestClassifyBuckets(t *testing.T) {
	cases := []struct {
		name string
		v    Vector
		want Class
	}{
		{"tiny", Vector{Nets: TinyNets, Modules: 100}, ClassTiny},
		{"sparse", Vector{Nets: 1000, Modules: 1000, AvgNetSize: 3, PinDensity: 0.003}, ClassSparse},
		{"large", Vector{Nets: LargeNets + 1, Modules: 4000}, ClassLarge},
		{"dense-by-density", Vector{Nets: 1000, Modules: 50, PinDensity: 0.2}, ClassDense},
		{"dense-by-netsize", Vector{Nets: 1000, Modules: 40, AvgNetSize: 20}, ClassDense},
	}
	for _, c := range cases {
		if got := c.v.classify(); got != c.want {
			t.Errorf("%s: classify = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestP90Quantile(t *testing.T) {
	// 9 nets of size 2, 1 net of size 7: the 90th percentile is size 2,
	// one more net pushes it to 7.
	b := hypergraph.NewBuilder()
	for i := 0; i < 9; i++ {
		b.AddNet(i, i+1)
	}
	b.AddNet(0, 1, 2, 3, 4, 5, 6)
	v := Extract(b.Build())
	if v.P90NetSize != 2 {
		t.Fatalf("p90 = %d, want 2", v.P90NetSize)
	}
	b.AddNet(0, 1, 2, 3, 4, 5, 7)
	v = Extract(b.Build())
	// 11 nets, need ceil(9.9) = 10 covered; sizes 2 cover 9, size 7 nets
	// bring the cumulative count to 11 >= 9.9 at key 7.
	if v.P90NetSize != 7 {
		t.Fatalf("p90 after big nets = %d, want 7", v.P90NetSize)
	}
}

func TestExtractDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := hypergraph.NewBuilder()
	for i := 0; i < 300; i++ {
		k := 2 + rng.Intn(4)
		pins := make([]int, k)
		for j := range pins {
			pins[j] = rng.Intn(200)
		}
		b.AddNet(pins...)
	}
	h := b.Build()
	a, bvec := Extract(h), Extract(h)
	if a != bvec {
		t.Fatalf("Extract not deterministic: %+v vs %+v", a, bvec)
	}
	if a.Class != ClassSparse {
		t.Fatalf("class %q, want sparse", a.Class)
	}
}

func TestEmptyHypergraph(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.SetNumModules(3)
	v := Extract(b.Build())
	if v.Nets != 0 || v.PinDensity != 0 || v.P90NetSize != 0 {
		t.Fatalf("empty: %+v", v)
	}
	if v.Class != ClassTiny {
		t.Fatalf("class %q, want tiny", v.Class)
	}
}
