package fault

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"igpart/internal/obs"
)

func mustNew(t *testing.T, seed int64, reg *obs.Registry, rules ...Rule) *Injector {
	t.Helper()
	in, err := New(seed, reg, rules...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return in
}

func TestNilInjectorIsDisabled(t *testing.T) {
	var in *Injector
	for _, p := range Points() {
		if in.Active(p) {
			t.Fatalf("nil injector fired %s", p)
		}
	}
	if in.Fires(WorkerPanic) != 0 || in.Arms(WorkerPanic) != 0 || in.Seed() != 0 {
		t.Fatal("nil injector reported non-zero state")
	}
	if in.String() != "fault: disabled" {
		t.Fatalf("nil String = %q", in.String())
	}
}

func TestUnarmedPointNeverFires(t *testing.T) {
	in := mustNew(t, 1, nil, Rule{Point: WorkerPanic})
	for i := 0; i < 10; i++ {
		if in.Active(IOReadErr) {
			t.Fatal("unarmed point fired")
		}
	}
	if in.Arms(IOReadErr) != 0 {
		t.Fatal("unarmed point accumulated arms")
	}
}

func TestBarePointFiresEveryArm(t *testing.T) {
	reg := new(obs.Registry)
	in := mustNew(t, 7, reg, Rule{Point: WorkerPanic})
	for i := 0; i < 25; i++ {
		if !in.Active(WorkerPanic) {
			t.Fatalf("arm %d did not fire", i)
		}
	}
	if got := in.Fires(WorkerPanic); got != 25 {
		t.Fatalf("fires = %d, want 25", got)
	}
	if got := reg.Snapshot().Counters["fault.fired.worker.panic"]; got != 25 {
		t.Fatalf("registry counter = %d, want 25", got)
	}
}

func TestLimitCapsFires(t *testing.T) {
	in := mustNew(t, 7, nil, Rule{Point: WorkerPanic, Limit: 3})
	fires := 0
	for i := 0; i < 10; i++ {
		if in.Active(WorkerPanic) {
			fires++
		}
	}
	if fires != 3 || in.Fires(WorkerPanic) != 3 {
		t.Fatalf("fires = %d (state %d), want 3", fires, in.Fires(WorkerPanic))
	}
	if in.Arms(WorkerPanic) != 10 {
		t.Fatalf("arms = %d, want 10", in.Arms(WorkerPanic))
	}
}

func TestEveryNthArm(t *testing.T) {
	in := mustNew(t, 7, nil, Rule{Point: SweepSlowShard, Every: 3})
	var pattern []bool
	for i := 0; i < 9; i++ {
		pattern = append(pattern, in.Active(SweepSlowShard))
	}
	for i, fired := range pattern {
		want := (i+1)%3 == 0
		if fired != want {
			t.Fatalf("arm %d fired=%v, want %v", i, fired, want)
		}
	}
}

func TestProbabilityIsSeedDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		in := mustNew(t, seed, nil, Rule{Point: EigenNoConverge, P: 0.5})
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Active(EigenNoConverge)
		}
		return out
	}
	a, b := run(42), run(42)
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at arm %d", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("p=0.5 fired %d/%d times — not probabilistic", fires, len(a))
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fire pattern")
	}
}

func TestPerPointStreamsAreIndependent(t *testing.T) {
	// Interleaving arms of a second point must not shift the first
	// point's decision stream.
	solo := mustNew(t, 9, nil, Rule{Point: EigenNoConverge, P: 0.5})
	duo := mustNew(t, 9, nil, Rule{Point: EigenNoConverge, P: 0.5}, Rule{Point: IOReadErr, P: 0.5})
	for i := 0; i < 100; i++ {
		duo.Active(IOReadErr)
		if solo.Active(EigenNoConverge) != duo.Active(EigenNoConverge) {
			t.Fatalf("arm %d: interleaved point shifted the stream", i)
		}
	}
}

func TestNewRejectsBadRules(t *testing.T) {
	cases := []Rule{
		{Point: "bogus.point"},
		{Point: WorkerPanic, P: -0.5},
		{Point: WorkerPanic, Every: -1},
		{Point: WorkerPanic, Limit: -1},
	}
	for _, r := range cases {
		if _, err := New(1, nil, r); err == nil {
			t.Fatalf("rule %+v accepted", r)
		}
	}
	if _, err := New(1, nil, Rule{Point: WorkerPanic}, Rule{Point: WorkerPanic}); err == nil {
		t.Fatal("duplicate rules accepted")
	}
}

func TestParse(t *testing.T) {
	in, err := Parse("worker.panic:limit=1, eigen.noconverge ,sweep.slow-shard:p=0.25:every=2", 5, nil)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	s := in.String()
	for _, want := range []string{
		"seed=5",
		"worker.panic(p=0,every=1,limit=1)",
		"eigen.noconverge(p=0,every=1,limit=0)",
		"sweep.slow-shard(p=0.25,every=2,limit=0)",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("String %q missing %q", s, want)
		}
	}

	if in, err := Parse("", 1, nil); err != nil || in != nil {
		t.Fatalf("empty spec = (%v, %v), want (nil, nil)", in, err)
	}
	for _, bad := range []string{
		"nope.point",
		"worker.panic:limit",
		"worker.panic:p=x",
		"worker.panic:every=x",
		"worker.panic:limit=x",
		"worker.panic:frob=1",
	} {
		if _, err := Parse(bad, 1, nil); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

func TestPanicError(t *testing.T) {
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = Recovered(r)
			}
		}()
		panic("boom")
	}()
	pe, ok := AsPanic(fmt.Errorf("job failed: %w", err))
	if !ok {
		t.Fatal("AsPanic missed a wrapped PanicError")
	}
	if pe.Value != "boom" || !strings.Contains(pe.Error(), "boom") {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "fault") {
		t.Fatal("stack not captured at recovery site")
	}
	if _, ok := AsPanic(errors.New("plain")); ok {
		t.Fatal("AsPanic matched a plain error")
	}
}
