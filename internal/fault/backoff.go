package fault

import "time"

// Splitmix64 is a single mixing step of the splitmix generator: enough
// to decorrelate nearby seeds into independent-looking jitter streams.
// It is the shared hash behind every deterministic backoff schedule in
// the tree (service retries, cluster failover resubmission).
func Splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// BackoffDelay returns the wait before retry number attempt (1-based):
// exponential base·2^(attempt−1), capped at max, scaled by a
// deterministic jitter factor in [½, 1) derived from seed — so
// schedules are reproducible in tests yet staggered across jobs.
func BackoffDelay(attempt int, base, max time.Duration, seed uint64) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// Jitter scales into [½, 1): keep half the delay, randomize the rest.
	frac := float64(Splitmix64(seed^uint64(attempt))>>11) / (1 << 53)
	return d/2 + time.Duration(frac*float64(d/2))
}
