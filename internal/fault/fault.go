// Package fault is the deterministic fault-injection layer of the
// pipeline: named injection points, seeded trigger rules, and the
// structured panic error the recovery barriers produce.
//
// The design goal is a provable no-op when disabled: every check site
// calls Injector.Active on a possibly-nil *Injector, and the nil
// receiver returns false after a single comparison — there is no global
// state, no registration, and nothing to strip from production builds.
// When an injector *is* armed, every decision is a deterministic
// function of (seed, point, arm count): two runs with the same seed and
// the same per-point call sequence fire at exactly the same arms, which
// is what lets the chaos suite assert exact counters and lets a failure
// be replayed from its seed.
//
// Injection points are pure decision oracles — the injector never
// panics, sleeps, or errors by itself. The call site owns the faulty
// behavior (panicking, returning a non-convergence error, sleeping,
// purging a cache), so each point's blast radius is visible in the code
// that hosts it.
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"

	"igpart/internal/obs"
)

// Point names one fault-injection site. Points are stable identifiers:
// they appear in flag specs, metric names, and test assertions.
type Point string

// The injection points wired through the pipeline.
const (
	// WorkerPanic fires inside a service worker's recovery barrier,
	// panicking before the solve starts. Exercises panic isolation.
	WorkerPanic Point = "worker.panic"
	// EigenNoConverge fires at the entry of a Lanczos (or block-Lanczos)
	// solve, simulating non-convergence. Exercises the Fiedler fallback
	// chain (reseeded retry, then dense Jacobi).
	EigenNoConverge Point = "eigen.noconverge"
	// SweepSlowShard fires at the start of a sweep shard, injecting a
	// straggler delay. Results are unaffected; exercises shard skew.
	SweepSlowShard Point = "sweep.slow-shard"
	// CacheEvictStorm fires on a result-cache store, purging every
	// cached entry first. Exercises cold-cache behavior and eviction
	// accounting.
	CacheEvictStorm Point = "cache.evict-storm"
	// IOReadErr fires when the daemon resolves a submission's netlist
	// source, simulating a failed read. Exercises transient-error
	// surfacing (HTTP 503, not 400).
	IOReadErr Point = "io.read-err"
	// CoordCrash fires in the coordinator right after a job is journaled
	// but before any backend sees it — the coordinator then dies
	// crash-style (intake closed, runners aborted, nothing journaled as
	// done). Exercises standby takeover and journal replay: the accepted
	// set must resurface under its original IDs.
	CoordCrash Point = "coord.crash"
	// JournalWriteErr fires inside a journal append, failing the write
	// before it reaches disk. Exercises the accept-before-acknowledge
	// contract (submission rejected, client retries) and lease-renewal
	// resilience.
	JournalWriteErr Point = "journal.write-err"
)

// Points lists every known injection point in stable order.
func Points() []Point {
	return []Point{WorkerPanic, EigenNoConverge, SweepSlowShard, CacheEvictStorm, IOReadErr, CoordCrash, JournalWriteErr}
}

func knownPoint(p Point) bool {
	for _, q := range Points() {
		if q == p {
			return true
		}
	}
	return false
}

// Rule arms one injection point. The zero trigger configuration
// (P == 0, Every == 0) defaults to firing on every arm.
type Rule struct {
	// Point is the site this rule arms.
	Point Point
	// P fires with this probability per arm, drawn from the rule's own
	// seeded stream. 0 means "not probability-gated" (see Every);
	// values ≥ 1 always pass the probability gate.
	P float64
	// Every fires on every Nth arm (1 = every arm). 0 with P == 0
	// defaults to 1. Every and P compose: the arm must be an Nth hit
	// AND win the coin flip.
	Every int
	// Limit caps the total number of fires; 0 means unlimited. Once
	// exhausted the point never fires again.
	Limit int
}

type ruleState struct {
	Rule
	rng   *rand.Rand
	arms  int64
	fires int64
}

// Injector decides, deterministically per seed, whether each armed
// injection point fires. The nil injector is the disabled layer: every
// method is nil-receiver-safe and Active returns false immediately.
type Injector struct {
	seed int64
	reg  *obs.Registry

	mu    sync.Mutex
	rules map[Point]*ruleState
}

// New builds an injector firing the given rules under the given seed.
// reg, when non-nil, receives a fault.fired.<point> counter per trigger
// (and fault.armed.<point> per check of an armed point). Unknown points
// are rejected so a typo in a spec cannot silently disarm a chaos run.
func New(seed int64, reg *obs.Registry, rules ...Rule) (*Injector, error) {
	in := &Injector{seed: seed, reg: reg, rules: make(map[Point]*ruleState, len(rules))}
	for _, r := range rules {
		if !knownPoint(r.Point) {
			return nil, fmt.Errorf("fault: unknown injection point %q", r.Point)
		}
		if _, dup := in.rules[r.Point]; dup {
			return nil, fmt.Errorf("fault: duplicate rule for point %q", r.Point)
		}
		if r.P < 0 || math.IsNaN(r.P) {
			return nil, fmt.Errorf("fault: point %q: probability %v out of range", r.Point, r.P)
		}
		if r.Every < 0 {
			return nil, fmt.Errorf("fault: point %q: negative period %d", r.Point, r.Every)
		}
		if r.Limit < 0 {
			return nil, fmt.Errorf("fault: point %q: negative limit %d", r.Point, r.Limit)
		}
		if r.Every == 0 && r.P == 0 {
			r.Every = 1 // bare point: fire on every arm
		}
		if r.Every == 0 {
			r.Every = 1
		}
		in.rules[r.Point] = &ruleState{Rule: r, rng: rand.New(rand.NewSource(pointSeed(seed, r.Point)))}
	}
	return in, nil
}

// pointSeed derives a per-point RNG seed so each point draws from its
// own deterministic stream regardless of what other points do.
func pointSeed(seed int64, p Point) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", seed, p)
	return int64(h.Sum64())
}

// Active reports whether the point fires at this arm, advancing the
// point's deterministic decision stream. A nil injector, or one with no
// rule for the point, returns false without any further work — the
// disabled path is a nil check and a map miss.
func (in *Injector) Active(p Point) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	rs, ok := in.rules[p]
	if !ok {
		in.mu.Unlock()
		return false
	}
	rs.arms++
	fire := rs.Limit == 0 || rs.fires < int64(rs.Limit)
	if fire && rs.arms%int64(rs.Every) != 0 {
		fire = false
	}
	if fire && rs.P > 0 && rs.P < 1 {
		// One draw per period-eligible arm keeps the stream aligned with
		// the arm sequence even when the limit is exhausted later.
		fire = rs.rng.Float64() < rs.P
	}
	if fire {
		rs.fires++
	}
	reg := in.reg
	in.mu.Unlock()
	if fire {
		reg.Counter("fault.fired." + string(p)).Add(1)
	}
	return fire
}

// Fires returns how many times the point has fired so far.
func (in *Injector) Fires(p Point) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if rs, ok := in.rules[p]; ok {
		return rs.fires
	}
	return 0
}

// Arms returns how many times the point has been checked so far.
func (in *Injector) Arms(p Point) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if rs, ok := in.rules[p]; ok {
		return rs.arms
	}
	return 0
}

// Seed returns the injector's seed (0 for nil).
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// String renders the armed rules in stable order, e.g. for startup logs.
func (in *Injector) String() string {
	if in == nil {
		return "fault: disabled"
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	points := make([]string, 0, len(in.rules))
	for p := range in.rules {
		points = append(points, string(p))
	}
	sort.Strings(points)
	var b strings.Builder
	fmt.Fprintf(&b, "fault: seed=%d", in.seed)
	for _, p := range points {
		rs := in.rules[Point(p)]
		fmt.Fprintf(&b, " %s(p=%g,every=%d,limit=%d)", p, rs.P, rs.Every, rs.Limit)
	}
	return b.String()
}

// Parse builds an injector from a flag-style spec: comma-separated
// entries of the form
//
//	point[:key=value[:key=value...]]
//
// with keys p (fire probability), every (fire on every Nth arm), and
// limit (total fire cap). A bare point fires on every arm. Examples:
//
//	worker.panic
//	worker.panic:limit=1,eigen.noconverge
//	sweep.slow-shard:p=0.25,io.read-err:every=3:limit=10
//
// An empty spec returns a nil injector — the disabled layer.
func Parse(spec string, seed int64, reg *obs.Registry) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []Rule
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		r := Rule{Point: Point(parts[0])}
		for _, kv := range parts[1:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("fault: spec entry %q: %q is not key=value", entry, kv)
			}
			switch key {
			case "p":
				f, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return nil, fmt.Errorf("fault: spec entry %q: bad probability %q", entry, val)
				}
				r.P = f
			case "every":
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("fault: spec entry %q: bad period %q", entry, val)
				}
				r.Every = n
			case "limit":
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("fault: spec entry %q: bad limit %q", entry, val)
				}
				r.Limit = n
			default:
				return nil, fmt.Errorf("fault: spec entry %q: unknown key %q", entry, key)
			}
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, nil
	}
	return New(seed, reg, rules...)
}

// PanicError is the structured error a recovery barrier produces from a
// recovered panic: the panic value plus the goroutine stack captured at
// the recovery site. It is how a worker panic becomes a failed job
// instead of a dead process.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the stack trace captured inside the recover barrier.
	Stack []byte
}

// Recovered wraps a recover() value into a PanicError, capturing the
// current stack. Call it only from inside a deferred recover barrier.
func Recovered(v any) *PanicError {
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// Error renders the panic value; the stack is kept structured so
// transports can surface it separately.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// AsPanic extracts a PanicError from an error chain, if present.
func AsPanic(err error) (*PanicError, bool) {
	var pe *PanicError
	if errors.As(err, &pe) {
		return pe, true
	}
	return nil, false
}
