package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0, 1000); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0, 1000) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(8, 3); got != 3 {
		t.Fatalf("Workers(8, 3) = %d, want 3", got)
	}
	if got := Workers(4, 0); got != 1 {
		t.Fatalf("Workers(4, 0) = %d, want 1", got)
	}
	if got := Workers(-1, 2); got != 2 && got != 1 {
		t.Fatalf("Workers(-1, 2) = %d", got)
	}
}

func TestBoundsPartition(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		for p := 1; p <= 9; p++ {
			b := Bounds(p, n)
			prev := 0
			for _, r := range b {
				if r[0] != prev || r[1] < r[0] {
					t.Fatalf("Bounds(%d,%d) = %v not a partition", p, n, b)
				}
				prev = r[1]
			}
			if prev != n {
				t.Fatalf("Bounds(%d,%d) ends at %d", p, n, prev)
			}
		}
	}
}

func TestRunInvokesEveryIndexOnce(t *testing.T) {
	for _, p := range []int{0, 1, 2, 8} {
		var hits [8]int64
		Run(p, func(i int) { atomic.AddInt64(&hits[i], 1) })
		for i := 0; i < p; i++ {
			if hits[i] != 1 {
				t.Fatalf("Run(%d): index %d hit %d times", p, i, hits[i])
			}
		}
		for i := p; i < 8; i++ {
			if p >= 0 && i >= p && hits[i] != 0 {
				t.Fatalf("Run(%d): index %d hit unexpectedly", p, i)
			}
		}
	}
}
