// Package par provides the small shared parallel-execution helpers used
// by the sweep engine (internal/core) and the sparse matvec kernels
// (internal/sparse): worker-count resolution, contiguous range sharding,
// and a fork-join runner. Shard boundaries are a pure function of their
// inputs, so callers can promise bit-identical results for every worker
// count.
package par

import (
	"runtime"
	"sync"
)

// Workers resolves a requested parallelism against the number of items:
// 0 (or negative) selects GOMAXPROCS, and the result never exceeds items
// and never drops below one.
func Workers(requested, items int) int {
	p := requested
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > items {
		p = items
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Bounds cuts [0, n) into p contiguous shards of near-equal size;
// entry i is the [lo, hi) range of shard i. Deterministic: boundary k
// of p shards over n items is always k·n/p.
func Bounds(p, n int) [][2]int {
	if p < 1 {
		p = 1
	}
	b := make([][2]int, p)
	for i := 0; i < p; i++ {
		b[i] = [2]int{i * n / p, (i + 1) * n / p}
	}
	return b
}

// Run invokes fn(i) for every i in [0, p), one goroutine per index, and
// waits for all of them. p <= 1 stays on the calling goroutine — the
// serial path, with zero synchronization overhead.
func Run(p int, fn func(i int)) {
	if p <= 1 {
		if p == 1 {
			fn(0)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for i := 0; i < p; i++ {
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}
