package bipartite

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildAdj converts an edge list into adjacency lists over n vertices.
func buildAdj(n int, edges [][2]int) [][]int {
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	return adj
}

func TestMatcherBasicSweep(t *testing.T) {
	// Path 0-1-2-3. Sweep vertices to R one by one and check matching sizes.
	adj := buildAdj(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	m := NewMatcher(adj)
	if m.MatchingSize() != 0 || m.EdgesInB() != 0 {
		t.Fatal("initial state not empty")
	}
	m.MoveToR(0) // B has edge {0,1}: matching size 1
	if got := m.MatchingSize(); got != 1 {
		t.Errorf("after move 0: size = %d, want 1", got)
	}
	m.MoveToR(1) // L={2,3}, R={0,1}; only edge {1,2}: size 1
	if got := m.MatchingSize(); got != 1 {
		t.Errorf("after move 1: size = %d, want 1", got)
	}
	m.MoveToR(2) // L={3}, R={0,1,2}; edge {2,3}: size 1
	if got := m.MatchingSize(); got != 1 {
		t.Errorf("after move 2: size = %d, want 1", got)
	}
	m.MoveToR(3) // L empty: B empty, size 0
	if got := m.MatchingSize(); got != 0 {
		t.Errorf("after move 3: size = %d, want 0", got)
	}
	if err := m.CheckMatching(); err != nil {
		t.Error(err)
	}
}

func TestMatcherMoveTwicePanics(t *testing.T) {
	m := NewMatcher(buildAdj(2, [][2]int{{0, 1}}))
	m.MoveToR(0)
	defer func() {
		if recover() == nil {
			t.Error("second MoveToR did not panic")
		}
	}()
	m.MoveToR(0)
}

func TestMatchAccessor(t *testing.T) {
	adj := buildAdj(2, [][2]int{{0, 1}})
	m := NewMatcher(adj)
	if m.Match(0) != -1 {
		t.Error("unmatched vertex should report -1")
	}
	m.MoveToR(1)
	if m.Match(0) != 1 || m.Match(1) != 0 {
		t.Errorf("Match = %d,%d, want 1,0", m.Match(0), m.Match(1))
	}
	if m.EdgesInB() != 1 {
		t.Errorf("EdgesInB = %d, want 1", m.EdgesInB())
	}
	if m.N() != 2 || !m.InL(0) || m.InL(1) {
		t.Error("basic accessors broken")
	}
}

func TestWinnersSimple(t *testing.T) {
	// Star: center 0 adjacent to 1,2,3. Move the center to R: B is a star,
	// max matching 1, MIS = {1,2,3} (leaves are L winners).
	adj := buildAdj(4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	m := NewMatcher(adj)
	m.MoveToR(0)
	if m.MatchingSize() != 1 {
		t.Fatalf("matching size = %d, want 1", m.MatchingSize())
	}
	s := m.Winners()
	if len(s.EvenL) != 3 {
		t.Errorf("EvenL = %v, want the three leaves", s.EvenL)
	}
	if len(s.OddL) != 1 || s.OddL[0] != 0 {
		t.Errorf("OddL = %v, want [0]", s.OddL)
	}
	if len(s.EvenR)+len(s.OddR)+len(s.CoreL)+len(s.CoreR) != 0 {
		t.Errorf("unexpected extra sets: %+v", s)
	}
}

func TestWinnersCore(t *testing.T) {
	// Perfect matching on K2,2 minus nothing: vertices 0,1 in L, 2,3 in R,
	// all four cross edges. No unmatched vertices → everything is core.
	adj := buildAdj(4, [][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}})
	m := NewMatcher(adj)
	m.MoveToR(2)
	m.MoveToR(3)
	if m.MatchingSize() != 2 {
		t.Fatalf("matching size = %d, want 2", m.MatchingSize())
	}
	s := m.Winners()
	if len(s.EvenL)+len(s.EvenR)+len(s.OddL)+len(s.OddR) != 0 {
		t.Errorf("expected empty Even/Odd sets: %+v", s)
	}
	if len(s.CoreL) != 2 || len(s.CoreR) != 2 {
		t.Errorf("core = %v | %v, want 2+2", s.CoreL, s.CoreR)
	}
}

func TestWinnersFigure3Shape(t *testing.T) {
	// A graph with unmatched vertices on both sides plus a core:
	// L = {0,1,2,6}, R = {3,4,5,7}.
	// Edges: 0-3, 1-3, 1-4, 2-4 chain plus isolated-ish core pair 6-7
	// and a pendant unmatched 5 adjacent to 2.
	edges := [][2]int{{0, 3}, {1, 3}, {1, 4}, {2, 4}, {2, 5}, {6, 7}}
	adj := buildAdj(8, edges)
	m := NewMatcher(adj)
	for _, v := range []int{3, 4, 5, 7} {
		m.MoveToR(v)
	}
	if err := m.CheckMatching(); err != nil {
		t.Fatal(err)
	}
	size, _ := HopcroftKarp(adj, sidesOf(m))
	if m.MatchingSize() != size {
		t.Fatalf("incremental size %d != oracle %d", m.MatchingSize(), size)
	}
	s := m.Winners()
	// Every vertex appears in exactly one set.
	seen := map[int]int{}
	for _, set := range [][]int{s.EvenL, s.OddL, s.EvenR, s.OddR, s.CoreL, s.CoreR} {
		for _, v := range set {
			seen[v]++
		}
	}
	total := 0
	for v, c := range seen {
		if c != 1 {
			t.Errorf("vertex %d classified %d times", v, c)
		}
		total++
	}
	// Unmatched isolated-in-B vertices still belong to Even sets (U_L/U_R).
	if total != 8 {
		t.Errorf("classified %d of 8 vertices: %+v", total, s)
	}
}

func sidesOf(m *Matcher) []bool {
	inL := make([]bool, m.N())
	for v := 0; v < m.N(); v++ {
		inL[v] = m.InL(v)
	}
	return inL
}

// randomGraph generates a random host graph.
func randomGraph(rng *rand.Rand, n, e int) [][]int {
	var edges [][2]int
	seen := map[[2]int]bool{}
	for k := 0; k < e; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		if seen[[2]int{i, j}] {
			continue
		}
		seen[[2]int{i, j}] = true
		edges = append(edges, [2]int{i, j})
	}
	return buildAdj(n, edges)
}

func TestIncrementalMatchesOracleEverySweepStep(t *testing.T) {
	// The heart of Theorem 6: after every incremental move, the matching
	// must equal a from-scratch maximum matching.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(18)
		adj := randomGraph(rng, n, 3*n)
		m := NewMatcher(adj)
		order := rng.Perm(n)
		for _, v := range order {
			m.MoveToR(v)
			if m.CheckMatching() != nil {
				return false
			}
			size, _ := HopcroftKarp(adj, sidesOf(m))
			if m.MatchingSize() != size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestKoenigDuality(t *testing.T) {
	// |MIS| + |MVC| = n and |MVC| = |MM| on the active bipartite subgraph.
	// Winner sets + core side choice must realize an MIS of exactly
	// n − |MM| vertices, cross-checked against brute force.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		adj := randomGraph(rng, n, 2*n)
		m := NewMatcher(adj)
		moves := rng.Perm(n)[:1+rng.Intn(n-1)]
		for _, v := range moves {
			m.MoveToR(v)
		}
		s := m.Winners()
		mm := m.MatchingSize()
		// MIS candidate: Even(L) ∪ Even(R) ∪ (larger-core-side trick is not
		// needed for the size identity: core is perfectly matched K-like,
		// and either core side works).
		misSize := len(s.EvenL) + len(s.EvenR) + len(s.CoreL)
		if misSize != m.N()-mm {
			return false
		}
		// Verify independence: no crossing edge inside the candidate set.
		inSet := make([]bool, m.N())
		for _, set := range [][]int{s.EvenL, s.EvenR, s.CoreL} {
			for _, v := range set {
				inSet[v] = true
			}
		}
		for v, nbrs := range adj {
			if !inSet[v] {
				continue
			}
			for _, u := range nbrs {
				if inSet[u] && m.InL(u) != m.InL(v) {
					return false
				}
			}
		}
		// Cross-check the MIS size against brute force.
		return BruteForceMIS(adj, sidesOf(m)) == misSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestKoenigDualityCoreR(t *testing.T) {
	// The same identity must hold choosing the R side of the core, since
	// the core is symmetric under Phase II's two bulk options.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		n := 2 + rng.Intn(12)
		adj := randomGraph(rng, n, 2*n)
		m := NewMatcher(adj)
		moves := rng.Perm(n)[:1+rng.Intn(n-1)]
		for _, v := range moves {
			m.MoveToR(v)
		}
		s := m.Winners()
		misSize := len(s.EvenL) + len(s.EvenR) + len(s.CoreR)
		return misSize == m.N()-m.MatchingSize()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHopcroftKarpKnown(t *testing.T) {
	// K3,3: perfect matching of size 3.
	var edges [][2]int
	for i := 0; i < 3; i++ {
		for j := 3; j < 6; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	adj := buildAdj(6, edges)
	inL := []bool{true, true, true, false, false, false}
	size, match := HopcroftKarp(adj, inL)
	if size != 3 {
		t.Fatalf("K3,3 matching = %d, want 3", size)
	}
	for v, p := range match {
		if p < 0 || match[p] != v {
			t.Errorf("match table broken at %d: %v", v, match)
		}
	}
}

func TestHopcroftKarpIgnoresSameSideEdges(t *testing.T) {
	adj := buildAdj(4, [][2]int{{0, 1}, {2, 3}, {0, 2}})
	inL := []bool{true, true, false, false}
	size, _ := HopcroftKarp(adj, inL)
	if size != 1 {
		t.Errorf("size = %d, want 1 (only edge 0-2 crosses)", size)
	}
}

func TestBruteForceMISPanicsOnLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for oversized instance")
		}
	}()
	BruteForceMIS(make([][]int, 30), make([]bool, 30))
}

func TestCriticalSetInvariance(t *testing.T) {
	// The Odd sets (the Hasan–Liu critical set) must not depend on which
	// maximum matching the incremental process happens to hold. We compare
	// the Odd sets computed after different random move orders arriving at
	// the same final split.
	rng := rand.New(rand.NewSource(99))
	n := 14
	adj := randomGraph(rng, n, 3*n)
	target := make([]bool, n) // final inL
	for v := range target {
		target[v] = rng.Intn(2) == 0
	}
	var ref map[int]bool
	for trial := 0; trial < 5; trial++ {
		m := NewMatcher(adj)
		order := rng.Perm(n)
		for _, v := range order {
			if !target[v] {
				m.MoveToR(v)
			}
		}
		s := m.Winners()
		odd := map[int]bool{}
		for _, v := range append(append([]int{}, s.OddL...), s.OddR...) {
			odd[v] = true
		}
		if trial == 0 {
			ref = odd
			continue
		}
		if len(odd) != len(ref) {
			t.Fatalf("critical set size differs across matchings: %d vs %d", len(odd), len(ref))
		}
		for v := range odd {
			if !ref[v] {
				t.Fatalf("critical set differs across matchings at vertex %d", v)
			}
		}
	}
}

func BenchmarkIncrementalSweep(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := 2000
	adj := randomGraph(rng, n, 6000)
	order := rng.Perm(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMatcher(adj)
		for _, v := range order {
			m.MoveToR(v)
		}
	}
}
