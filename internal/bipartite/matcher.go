// Package bipartite implements the matching machinery behind IG-Match:
// an incrementally maintained maximum matching in the bipartite conflict
// graph B(L, R, E_B) induced by a split of the intersection graph, the
// Even/Odd alternating-path construction that extracts a maximum
// independent set (the "winner" nets), and a Hopcroft–Karp reference
// implementation used as a testing oracle.
package bipartite

// Matcher maintains a maximum matching in the bipartite graph B(L, R, E_B)
// induced by a two-coloring of a fixed host graph: vertices start on side L
// and migrate one at a time to side R (MoveToR); an edge of the host graph
// is in E_B exactly when its endpoints are currently on opposite sides.
//
// After every move the matching is guaranteed maximum for the current B.
// Each MoveToR performs at most two augmenting-path searches, so a full
// sweep of n moves costs O(n·(n+e)) — the amortized bound of Theorem 6.
type Matcher struct {
	adj   [][]int // static host-graph adjacency
	inL   []bool
	match []int // match[v] = current partner, or -1
	augs  int   // augmenting paths applied over the matcher's lifetime

	// scratch for searches
	visited []int
	stamp   int
	parent  []int
	queue   []int
	mark    []uint8 // scratch for Winners classification
}

// NewMatcher creates a Matcher over the host graph given by adjacency lists
// (adj[v] lists the neighbors of v). All vertices start on side L, so E_B is
// empty and the matching is empty.
func NewMatcher(adj [][]int) *Matcher {
	n := len(adj)
	m := &Matcher{
		adj:     adj,
		inL:     make([]bool, n),
		match:   make([]int, n),
		visited: make([]int, n),
		parent:  make([]int, n),
	}
	for i := range m.inL {
		m.inL[i] = true
		m.match[i] = -1
	}
	return m
}

// NewMatcherAt creates a Matcher over the host graph with vertices already
// split: inR[v] true places v on side R. The matching is seeded from scratch
// with Hopcroft–Karp, so it is maximum for the initial bipartite graph and
// the incremental MoveToR invariant holds from there. This is the shard
// bootstrap of the parallel sweep: a NewMatcherAt at rank k is equivalent to
// a NewMatcher after k MoveToR calls — same matching size and, because the
// Dulmage–Mendelsohn decomposition is canonical over maximum matchings, the
// same Even/Odd/Core classification.
func NewMatcherAt(adj [][]int, inR []bool) *Matcher {
	if len(inR) != len(adj) {
		panic("bipartite: NewMatcherAt split length mismatch")
	}
	n := len(adj)
	m := &Matcher{
		adj:     adj,
		inL:     make([]bool, n),
		visited: make([]int, n),
		parent:  make([]int, n),
	}
	for i := range m.inL {
		m.inL[i] = !inR[i]
	}
	m.augs, m.match = HopcroftKarp(adj, m.inL)
	return m
}

// Augmentations returns the number of augmenting paths applied over the
// matcher's lifetime — the work metric of the incremental maintenance.
// A Hopcroft–Karp bootstrap (NewMatcherAt) counts one per seeded
// matching edge, so the value is comparable across the serial and
// sharded sweep engines.
func (m *Matcher) Augmentations() int { return m.augs }

// N returns the number of vertices in the host graph.
func (m *Matcher) N() int { return len(m.adj) }

// InL reports whether vertex v is currently on side L.
func (m *Matcher) InL(v int) bool { return m.inL[v] }

// Match returns v's matching partner, or −1 when v is unmatched.
func (m *Matcher) Match(v int) int { return m.match[v] }

// MatchingSize returns the current (maximum) matching size, which equals
// the minimum vertex cover size of B by König's theorem.
func (m *Matcher) MatchingSize() int {
	k := 0
	for v, p := range m.match {
		if p >= 0 && v < p {
			k++
		}
	}
	return k
}

// MoveToR migrates vertex v from L to R, repairing the matching to be
// maximum for the new bipartite graph. It follows the Phase I pseudocode of
// Figure 5: unmatch v (freeing its former partner u in R), try one
// augmentation from u, then reinsert v on side R and try one augmentation
// from v.
func (m *Matcher) MoveToR(v int) {
	if !m.inL[v] {
		panic("bipartite: MoveToR on a vertex already in R")
	}
	u := m.match[v]
	if u >= 0 {
		m.match[v] = -1
		m.match[u] = -1
	}
	m.inL[v] = false
	if u >= 0 {
		m.augmentFromR(u)
	}
	m.augmentFromR(v)
}

// augmentFromR searches for an augmenting path starting at the free vertex
// r ∈ R using BFS over alternating edges (non-matching R→L, matching L→R)
// and applies it if found. Returns whether the matching grew.
func (m *Matcher) augmentFromR(r int) bool {
	if m.inL[r] || m.match[r] >= 0 {
		return false
	}
	m.stamp++
	m.queue = m.queue[:0]
	m.queue = append(m.queue, r)
	m.visited[r] = m.stamp
	for qi := 0; qi < len(m.queue); qi++ {
		y := m.queue[qi] // y ∈ R
		for _, x := range m.adj[y] {
			if !m.inL[x] || m.visited[x] == m.stamp {
				continue // edge not in E_B, or x already reached
			}
			m.visited[x] = m.stamp
			m.parent[x] = y
			if m.match[x] < 0 {
				// Augment: flip the path back to r.
				m.augs++
				for {
					py := m.parent[x]
					next := m.match[py]
					m.match[x] = py
					m.match[py] = x
					if next < 0 {
						return true
					}
					x = next
				}
			}
			y2 := m.match[x]
			if m.visited[y2] != m.stamp {
				m.visited[y2] = m.stamp
				m.parent[y2] = x // informational; R-vertices re-expand via queue
				m.queue = append(m.queue, y2)
			}
		}
	}
	return false
}

// Sets holds the alternating-path classification of Figure 3. Even(L) are
// L-vertices at even distance from an unmatched L-vertex (the L winners,
// containing U_L); Odd(L) are the R-vertices at odd distance on those same
// paths (losers). Even(R)/Odd(R) are symmetric. CoreL/CoreR are the
// vertices of the residual subgraph B′: matched vertices unreachable from
// any unmatched vertex, which Phase II of IG-Match resolves in bulk.
type Sets struct {
	EvenL []int // winners in L (⊇ U_L)
	OddL  []int // losers in R reached from U_L
	EvenR []int // winners in R (⊇ U_R)
	OddR  []int // losers in L reached from U_R
	CoreL []int // B′ ∩ L
	CoreR []int // B′ ∩ R
}

// Winners computes the Even/Odd/Core classification for the current split.
// The matching must be maximum (which Matcher guarantees), otherwise the
// alternating BFS could discover an augmenting path.
//
// The returned loser set Odd(L) ∪ Odd(R) is the critical set of Hasan–Liu:
// it is contained in every minimum vertex cover of B and is independent of
// which maximum matching the Matcher currently holds.
func (m *Matcher) Winners() Sets {
	var s Sets
	m.WinnersInto(&s)
	return s
}

// WinnersInto is Winners with caller-owned storage: the slices of s are
// reset and reused, so a sweep calling it once per split allocates only on
// growth. The contents of s are valid until the next call.
func (m *Matcher) WinnersInto(s *Sets) {
	n := len(m.adj)
	const (
		unseen = 0
		even   = 1
		odd    = 2
	)
	if m.mark == nil {
		m.mark = make([]uint8, n)
	}
	mark := m.mark
	for i := range mark {
		mark[i] = unseen
	}
	s.EvenL = s.EvenL[:0]
	s.OddL = s.OddL[:0]
	s.EvenR = s.EvenR[:0]
	s.OddR = s.OddR[:0]
	s.CoreL = s.CoreL[:0]
	s.CoreR = s.CoreR[:0]

	// BFS from unmatched vertices of one side across E_B; matching edges
	// pull the partner into the even set.
	sweep := func(fromL bool, evens, odds []int) ([]int, []int) {
		m.queue = m.queue[:0]
		for v := 0; v < n; v++ {
			if m.inL[v] == fromL && m.match[v] < 0 {
				mark[v] = even
				m.queue = append(m.queue, v)
				evens = append(evens, v)
			}
		}
		for qi := 0; qi < len(m.queue); qi++ {
			x := m.queue[qi] // even-side vertex
			for _, y := range m.adj[x] {
				if m.inL[y] == m.inL[x] {
					continue // not an E_B edge
				}
				if mark[y] != unseen {
					continue
				}
				mark[y] = odd
				odds = append(odds, y)
				x2 := m.match[y]
				if x2 >= 0 && mark[x2] == unseen {
					mark[x2] = even
					evens = append(evens, x2)
					m.queue = append(m.queue, x2)
				}
			}
		}
		return evens, odds
	}

	s.EvenL, s.OddL = sweep(true, s.EvenL, s.OddL)
	s.EvenR, s.OddR = sweep(false, s.EvenR, s.OddR)
	for v := 0; v < n; v++ {
		if mark[v] == unseen && m.match[v] >= 0 {
			if m.inL[v] {
				s.CoreL = append(s.CoreL, v)
			} else {
				s.CoreR = append(s.CoreR, v)
			}
		}
	}
}

// EdgesInB counts the edges currently in the bipartite graph E_B.
func (m *Matcher) EdgesInB() int {
	k := 0
	for v, nbrs := range m.adj {
		if !m.inL[v] {
			continue
		}
		for _, u := range nbrs {
			if !m.inL[u] {
				k++
			}
		}
	}
	return k
}

// CheckMatching validates internal consistency: symmetry of match pointers
// and that every matched edge crosses the split and exists in the host
// graph. It is a testing aid.
func (m *Matcher) CheckMatching() error {
	for v, p := range m.match {
		if p < 0 {
			continue
		}
		if m.match[p] != v {
			return errMatch(v, p, "asymmetric match")
		}
		if m.inL[v] == m.inL[p] {
			return errMatch(v, p, "matched edge does not cross the split")
		}
		found := false
		for _, u := range m.adj[v] {
			if u == p {
				found = true
				break
			}
		}
		if !found {
			return errMatch(v, p, "matched edge not in host graph")
		}
	}
	return nil
}

type matchError struct {
	v, p int
	msg  string
}

func errMatch(v, p int, msg string) error { return &matchError{v, p, msg} }

func (e *matchError) Error() string {
	return "bipartite: " + e.msg
}
