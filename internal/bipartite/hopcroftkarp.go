package bipartite

// HopcroftKarp computes the maximum matching size of a bipartite graph from
// scratch in O(E·√V). Vertices are 0..n−1; inL gives the side of each
// vertex; adj lists neighbors (edges within a side are ignored). It serves
// as the from-scratch oracle that validates the incremental Matcher, and is
// exposed for callers that need a one-shot matching.
func HopcroftKarp(adj [][]int, inL []bool) (size int, match []int) {
	n := len(adj)
	match = make([]int, n)
	for i := range match {
		match[i] = -1
	}
	const inf = int(^uint(0) >> 1)
	dist := make([]int, n)
	queue := make([]int, 0, n)

	// BFS layers from free L vertices; returns whether any augmenting path
	// exists.
	bfs := func() bool {
		queue = queue[:0]
		for v := 0; v < n; v++ {
			if inL[v] && match[v] < 0 {
				dist[v] = 0
				queue = append(queue, v)
			} else {
				dist[v] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			x := queue[qi]
			for _, y := range adj[x] {
				if inL[y] == inL[x] {
					continue
				}
				p := match[y]
				if p < 0 {
					found = true
					continue
				}
				if dist[p] == inf {
					dist[p] = dist[x] + 1
					queue = append(queue, p)
				}
			}
		}
		return found
	}

	var dfs func(x int) bool
	dfs = func(x int) bool {
		for _, y := range adj[x] {
			if inL[y] == inL[x] {
				continue
			}
			p := match[y]
			if p < 0 || (dist[p] == dist[x]+1 && dfs(p)) {
				match[x] = y
				match[y] = x
				return true
			}
		}
		dist[x] = inf
		return false
	}

	for bfs() {
		for v := 0; v < n; v++ {
			if inL[v] && match[v] < 0 && dfs(v) {
				size++
			}
		}
	}
	return size, match
}

// BruteForceMIS returns the size of a maximum independent set of the graph
// restricted to edges crossing the inL split, by exhaustive search over all
// vertex subsets. Exponential; for test oracles on tiny graphs only.
func BruteForceMIS(adj [][]int, inL []bool) int {
	n := len(adj)
	if n > 22 {
		panic("bipartite: BruteForceMIS instance too large")
	}
	// Precompute crossing-edge masks.
	masks := make([]uint32, n)
	for v, nbrs := range adj {
		for _, u := range nbrs {
			if inL[u] != inL[v] {
				masks[v] |= 1 << uint(u)
			}
		}
	}
	best := 0
	for set := uint32(0); set < 1<<uint(n); set++ {
		ok := true
		cnt := 0
		for v := 0; v < n && ok; v++ {
			if set&(1<<uint(v)) == 0 {
				continue
			}
			cnt++
			if masks[v]&set != 0 {
				ok = false
			}
		}
		if ok && cnt > best {
			best = cnt
		}
	}
	return best
}
