package bipartite

import (
	"math/rand"
	"sort"
	"testing"
)

// TestIncrementalVsHopcroftKarp1000Moves is the shard-bootstrap seam test:
// the parallel sweep seeds each shard's matcher with a from-scratch
// Hopcroft–Karp build (NewMatcherAt) and then maintains it incrementally, so
// the two engines must agree at every split. After each of 1000 random
// single-net moves we check that the incremental matching size equals the
// from-scratch HK size, and periodically that a NewMatcherAt bootstrapped at
// the current split is internally consistent and classifies the exact same
// Even/Odd/Core sets (the Dulmage–Mendelsohn canonicality the parallel
// engine's bit-parity rests on).
func TestIncrementalVsHopcroftKarp1000Moves(t *testing.T) {
	const n = 1100
	rng := rand.New(rand.NewSource(42))
	adj := randomGraph(rng, n, 5*n)
	m := NewMatcher(adj)

	perm := rng.Perm(n)
	for step := 0; step < 1000; step++ {
		m.MoveToR(perm[step])
		if err := m.CheckMatching(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		inL := make([]bool, n)
		for v := 0; v < n; v++ {
			inL[v] = m.InL(v)
		}
		oracle, _ := HopcroftKarp(adj, inL)
		if got := m.MatchingSize(); got != oracle {
			t.Fatalf("step %d: incremental matching %d, Hopcroft–Karp %d", step, got, oracle)
		}

		if step%100 == 99 {
			inR := make([]bool, n)
			for v := 0; v < n; v++ {
				inR[v] = !inL[v]
			}
			boot := NewMatcherAt(adj, inR)
			if err := boot.CheckMatching(); err != nil {
				t.Fatalf("step %d: bootstrapped matcher: %v", step, err)
			}
			if boot.MatchingSize() != oracle {
				t.Fatalf("step %d: bootstrapped matching %d, want %d", step, boot.MatchingSize(), oracle)
			}
			if !sameSets(m.Winners(), boot.Winners()) {
				t.Fatalf("step %d: bootstrapped Even/Odd/Core classification differs from incremental", step)
			}
		}
	}
}

// sameSets compares two winner classifications as unordered sets.
func sameSets(a, b Sets) bool {
	eq := func(x, y []int) bool {
		if len(x) != len(y) {
			return false
		}
		xs := append([]int(nil), x...)
		ys := append([]int(nil), y...)
		sort.Ints(xs)
		sort.Ints(ys)
		for i := range xs {
			if xs[i] != ys[i] {
				return false
			}
		}
		return true
	}
	return eq(a.EvenL, b.EvenL) && eq(a.OddL, b.OddL) &&
		eq(a.EvenR, b.EvenR) && eq(a.OddR, b.OddR) &&
		eq(a.CoreL, b.CoreL) && eq(a.CoreR, b.CoreR)
}

// TestNewMatcherAtEmptySplitEqualsNewMatcher pins the degenerate boundary:
// bootstrapping with nothing in R is the NewMatcher starting state.
func TestNewMatcherAtEmptySplitEqualsNewMatcher(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	adj := randomGraph(rng, 40, 120)
	boot := NewMatcherAt(adj, make([]bool, 40))
	if boot.MatchingSize() != 0 {
		t.Errorf("empty split has matching size %d, want 0", boot.MatchingSize())
	}
	for v := 0; v < 40; v++ {
		if !boot.InL(v) {
			t.Fatalf("vertex %d not on L after empty-split bootstrap", v)
		}
	}
}

// TestNewMatcherAtLengthMismatchPanics pins the argument check.
func TestNewMatcherAtLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMatcherAt accepted a mismatched split slice")
		}
	}()
	NewMatcherAt(make([][]int, 3), make([]bool, 2))
}
