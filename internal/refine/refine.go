// Package refine combines the spectral partitioners with Fiduccia–
// Mattheyses post-refinement — the hybrid the paper's Section 5 proposes
// ("the ratio cuts so obtained may optionally be improved by using standard
// iterative techniques").
package refine

import (
	"igpart/internal/core"
	"igpart/internal/fm"
	"igpart/internal/hypergraph"
	"igpart/internal/partition"
	"igpart/internal/spectral"
)

// Result reports a spectral+FM pipeline outcome.
type Result struct {
	// Spectral is the metric of the pure spectral stage.
	Spectral partition.Metrics
	// Refined is the metric after FM polishing (never worse under the
	// ratio-cut objective).
	Refined partition.Metrics
	// Partition is the final, refined partition.
	Partition *partition.Bipartition
	// Passes is the number of FM passes the refinement ran.
	Passes int
}

// IGMatchFM runs IG-Match and then polishes its output with ratio-cut FM.
func IGMatchFM(h *hypergraph.Hypergraph, igOpts core.Options, fmOpts fm.Options) (Result, error) {
	res, err := core.Partition(h, igOpts)
	if err != nil {
		return Result{}, err
	}
	return polish(h, res.Partition, res.Metrics, fmOpts)
}

// EIG1FM runs EIG1 and then polishes its output with ratio-cut FM.
func EIG1FM(h *hypergraph.Hypergraph, spOpts spectral.Options, fmOpts fm.Options) (Result, error) {
	res, err := spectral.Partition(h, spOpts)
	if err != nil {
		return Result{}, err
	}
	return polish(h, res.Partition, res.Metrics, fmOpts)
}

// Polish refines an arbitrary starting partition (cloned, not mutated).
func Polish(h *hypergraph.Hypergraph, p *partition.Bipartition, fmOpts fm.Options) (Result, error) {
	return polish(h, p.Clone(), partition.Evaluate(h, p), fmOpts)
}

func polish(h *hypergraph.Hypergraph, p *partition.Bipartition, before partition.Metrics, fmOpts fm.Options) (Result, error) {
	work := p.Clone()
	met, passes, err := fm.RefinePartition(h, work, fmOpts)
	if err != nil {
		return Result{}, err
	}
	r := Result{Spectral: before, Passes: passes}
	if met.RatioCut <= before.RatioCut {
		r.Refined = met
		r.Partition = work
	} else {
		// FM's prefix selection should never worsen the objective, but be
		// defensive: keep the spectral partition if it somehow did.
		r.Refined = before
		r.Partition = p
	}
	return r, nil
}
