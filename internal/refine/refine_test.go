package refine

import (
	"math/rand"
	"testing"

	"igpart/internal/core"
	"igpart/internal/fm"
	"igpart/internal/hypergraph"
	"igpart/internal/partition"
	"igpart/internal/spectral"
)

func clustered(k, bridges int, seed int64) *hypergraph.Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	b := hypergraph.NewBuilder()
	b.SetNumModules(2 * k)
	for c := 0; c < 2; c++ {
		base := c * k
		for i := 0; i < k-1; i++ {
			b.AddNet(base+i, base+i+1)
		}
		for e := 0; e < 2*k; e++ {
			b.AddNet(base+rng.Intn(k), base+rng.Intn(k), base+rng.Intn(k))
		}
	}
	for i := 0; i < bridges; i++ {
		b.AddNet(rng.Intn(k), k+rng.Intn(k))
	}
	return b.Build()
}

func TestIGMatchFMNeverWorse(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		h := clustered(20, 3, seed)
		r, err := IGMatchFM(h, core.Options{}, fm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Refined.RatioCut > r.Spectral.RatioCut {
			t.Errorf("seed %d: refinement worsened %v -> %v", seed, r.Spectral.RatioCut, r.Refined.RatioCut)
		}
		if got := partition.Evaluate(h, r.Partition); got != r.Refined {
			t.Errorf("seed %d: metrics mismatch %+v vs %+v", seed, got, r.Refined)
		}
		if r.Passes < 1 {
			t.Errorf("seed %d: no passes recorded", seed)
		}
	}
}

func TestEIG1FMNeverWorse(t *testing.T) {
	h := clustered(25, 4, 9)
	r, err := EIG1FM(h, spectral.Options{}, fm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Refined.RatioCut > r.Spectral.RatioCut {
		t.Errorf("refinement worsened %v -> %v", r.Spectral.RatioCut, r.Refined.RatioCut)
	}
}

func TestPolishArbitraryPartition(t *testing.T) {
	h := clustered(15, 2, 4)
	// A deliberately bad partition: interleaved sides.
	p := partition.New(h.NumModules())
	for v := 0; v < h.NumModules(); v += 2 {
		p.Set(v, partition.W)
	}
	before := partition.Evaluate(h, p)
	r, err := Polish(h, p, fm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Refined.RatioCut > before.RatioCut {
		t.Errorf("polish worsened %v -> %v", before.RatioCut, r.Refined.RatioCut)
	}
	// The input partition must not be mutated.
	if got := partition.Evaluate(h, p); got != before {
		t.Error("Polish mutated its input")
	}
	// An interleaved start on a clustered circuit leaves plenty of slack;
	// the polish must strictly improve it.
	if r.Refined.RatioCut >= before.RatioCut {
		t.Errorf("no improvement from interleaved start: %v", r.Refined.RatioCut)
	}
}

func TestRefinePartitionDirect(t *testing.T) {
	h := clustered(10, 2, 6)
	p := partition.New(h.NumModules())
	for v := 10; v < 20; v++ {
		p.Set(v, partition.W)
	}
	met, passes, err := fm.RefinePartition(h, p, fm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if passes < 1 {
		t.Error("no passes")
	}
	if got := partition.Evaluate(h, p); got != met {
		t.Errorf("in-place refinement metrics stale: %+v vs %+v", got, met)
	}
}

func TestRefinePartitionFixedModules(t *testing.T) {
	h := clustered(12, 2, 8)
	// Start from a bad interleaved partition but pin modules 0 and 12 to
	// opposite sides (like I/O pads on different boards).
	p := partition.New(h.NumModules())
	for v := 0; v < h.NumModules(); v += 2 {
		p.Set(v, partition.W)
	}
	p.Set(0, partition.U)
	p.Set(12, partition.W)
	fixed := make([]bool, h.NumModules())
	fixed[0] = true
	fixed[12] = true
	before := partition.Evaluate(h, p)
	met, _, err := fm.RefinePartition(h, p, fm.Options{Fixed: fixed})
	if err != nil {
		t.Fatal(err)
	}
	if p.Side(0) != partition.U || p.Side(12) != partition.W {
		t.Error("fixed modules moved")
	}
	if met.RatioCut > before.RatioCut {
		t.Errorf("refinement with pins worsened %v -> %v", before.RatioCut, met.RatioCut)
	}

	if _, _, err := fm.RefinePartition(h, p, fm.Options{Fixed: []bool{true}}); err == nil {
		t.Error("accepted wrong-length Fixed mask")
	}
}

func TestRefinePartitionErrors(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.SetNumModules(1)
	h := b.Build()
	if _, _, err := fm.RefinePartition(h, partition.New(1), fm.Options{}); err == nil {
		t.Error("accepted 1-module circuit")
	}
	h2 := clustered(5, 1, 1)
	if _, _, err := fm.RefinePartition(h2, partition.New(3), fm.Options{}); err == nil {
		t.Error("accepted mismatched partition")
	}
}
