package sparse

import (
	"math/rand"
	"testing"
)

// randomCSR builds a random symmetric matrix with ~avgDeg off-diagonals
// per row plus a diagonal, seeded for reproducibility.
func randomCSR(n, avgDeg int, seed int64) *SymCSR {
	rng := rand.New(rand.NewSource(seed))
	b := NewCSRBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 1+rng.Float64())
		for k := 0; k < avgDeg/2; k++ {
			j := rng.Intn(n)
			if j != i {
				b.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return b.Build()
}

// TestParMulVecBitIdentity is the determinism contract of the tentpole:
// the row-sharded product must equal the serial product bit for bit at
// every worker count, on matrices with skewed row lengths and empty
// rows. Run under -race this also proves the shards never touch each
// other's rows.
func TestParMulVecBitIdentity(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    *SymCSR
	}{
		{"random-1000", randomCSR(1000, 8, 1)},
		{"random-small", randomCSR(17, 4, 2)},
		{"ring-one-row-heavy", func() *SymCSR {
			// One hub row holds half the nonzeros — stresses the
			// nnz-balanced shard boundaries.
			b := NewCSRBuilder(500)
			for i := 1; i < 500; i++ {
				b.Add(0, i, float64(i))
			}
			for i := 100; i < 400; i++ {
				b.Add(i, i, 2)
			}
			return b.Build()
		}()},
		{"empty-rows", func() *SymCSR {
			b := NewCSRBuilder(64)
			b.Add(3, 60, 1)
			b.Add(10, 11, -2)
			return b.Build()
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.m.N()
			rng := rand.New(rand.NewSource(99))
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			want := make([]float64, n)
			tc.m.MulVec(want, x)
			for _, p := range []int{1, 2, 4, 8} {
				got := make([]float64, n)
				tc.m.ParMulVec(got, x, p)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("P=%d: y[%d] = %x, serial %x — parallel matvec is not bit-identical", p, i, got[i], want[i])
					}
				}
			}
			// 0 (auto = GOMAXPROCS) must stay bit-identical too.
			got := make([]float64, n)
			tc.m.ParMulVec(got, x, 0)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("P=auto: y[%d] = %x, serial %x", i, got[i], want[i])
				}
			}
		})
	}
}

// TestMulVecRangeCoversDisjointly checks the row-slice kernel agrees
// with MulVec on any [lo, hi) cover.
func TestMulVecRangeCoversDisjointly(t *testing.T) {
	m := randomCSR(123, 6, 5)
	x := make([]float64, 123)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	want := make([]float64, 123)
	m.MulVec(want, x)
	got := make([]float64, 123)
	for _, cut := range []int{0, 1, 40, 122, 123} {
		for i := range got {
			got[i] = 0
		}
		m.MulVecRange(got, x, 0, cut)
		m.MulVecRange(got, x, cut, 123)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cut %d: y[%d] = %g, want %g", cut, i, got[i], want[i])
			}
		}
	}
}

// TestRowBoundsPartition checks the nnz-balanced shard boundaries are a
// partition of the rows for every p, including p > n.
func TestRowBoundsPartition(t *testing.T) {
	for _, m := range []*SymCSR{randomCSR(97, 6, 3), NewCSRBuilder(5).Build()} {
		for p := 1; p <= 12; p++ {
			bounds := m.rowBounds(p)
			if len(bounds) != p {
				t.Fatalf("p=%d: %d bounds", p, len(bounds))
			}
			prev := 0
			for _, b := range bounds {
				if b[0] != prev || b[1] < b[0] {
					t.Fatalf("p=%d: bad bounds %v", p, bounds)
				}
				prev = b[1]
			}
			if prev != m.N() {
				t.Fatalf("p=%d: bounds end at %d, want %d", p, prev, m.N())
			}
		}
	}
}

// TestRowsBuilderMatchesCoordinateBuilder: the streaming builder must
// produce exactly the matrix the coordinate builder produces.
func TestRowsBuilderMatchesCoordinateBuilder(t *testing.T) {
	want := randomCSR(60, 6, 9)
	rb := NewRowsBuilder(60)
	for i := 0; i < 60; i++ {
		cols, vals := want.Row(i)
		rb.AppendRow(cols, vals)
	}
	got := rb.Build()
	if got.NNZ() != want.NNZ() || got.N() != want.N() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", got.N(), got.NNZ(), want.N(), want.NNZ())
	}
	for i := 0; i < 60; i++ {
		wc, wv := want.Row(i)
		gc, gv := got.Row(i)
		if len(wc) != len(gc) {
			t.Fatalf("row %d length %d vs %d", i, len(gc), len(wc))
		}
		for k := range wc {
			if wc[k] != gc[k] || wv[k] != gv[k] {
				t.Fatalf("row %d entry %d: (%d,%g) vs (%d,%g)", i, k, gc[k], gv[k], wc[k], wv[k])
			}
		}
		if got.Diag()[i] != want.Diag()[i] || got.RowSums()[i] != want.RowSums()[i] {
			t.Fatalf("row %d caches differ", i)
		}
	}
}
