// Package sparse provides the small dense/sparse linear-algebra kernels the
// spectral partitioners need: vectors, symmetric CSR matrices, and dense
// symmetric matrices. Everything is float64. Vector kernels are
// single-threaded; the CSR matvec also comes in a row-sharded parallel
// form (ParMulVec) that is bit-identical to the serial product for every
// worker count, which is what lets million-row netlist Laplacians iterate
// in seconds without giving up determinism.
package sparse

import (
	"fmt"
	"math"
)

// Dot returns the inner product of x and y, which must have equal length.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("sparse: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Scaled accumulation to avoid overflow for extreme inputs.
	maxAbs := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		r := v / maxAbs
		s += r * r
	}
	return maxAbs * math.Sqrt(s)
}

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("sparse: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// Scale multiplies x by a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Normalize scales x to unit Euclidean norm and returns the original norm.
// A zero vector is left unchanged.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n > 0 {
		Scale(1/n, x)
	}
	return n
}

// Copy copies src into dst (lengths must match).
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("sparse: Copy length mismatch %d vs %d", len(dst), len(src)))
	}
	copy(dst, src)
}

// Zero sets every element of x to 0.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}
