package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorKernels(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, -5, 6}
	if got := Dot(x, y); got != 12 {
		t.Errorf("Dot = %v, want 12", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Errorf("Norm2(nil) = %v, want 0", got)
	}
	z := []float64{1, 1, 1}
	Axpy(2, x, z)
	if z[0] != 3 || z[1] != 5 || z[2] != 7 {
		t.Errorf("Axpy = %v", z)
	}
	Scale(0.5, z)
	if z[0] != 1.5 {
		t.Errorf("Scale = %v", z)
	}
	v := []float64{0, 3, 4}
	n := Normalize(v)
	if n != 5 || !almostEq(Norm2(v), 1, 1e-15) {
		t.Errorf("Normalize: n=%v v=%v", n, v)
	}
	zero := []float64{0, 0}
	if Normalize(zero) != 0 || zero[0] != 0 {
		t.Error("Normalize(0) should be a no-op returning 0")
	}
	dst := make([]float64, 3)
	Copy(dst, x)
	if dst[2] != 3 {
		t.Errorf("Copy = %v", dst)
	}
	Zero(dst)
	if dst[0] != 0 || dst[1] != 0 || dst[2] != 0 {
		t.Errorf("Zero = %v", dst)
	}
}

func TestNorm2Overflow(t *testing.T) {
	big := math.MaxFloat64 / 2
	got := Norm2([]float64{big, big})
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("Norm2 overflowed: %v", got)
	}
	want := big * math.Sqrt2
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("Norm2 = %v, want %v", got, want)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot accepted mismatched lengths")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestCSRBuildAndAt(t *testing.T) {
	b := NewCSRBuilder(4)
	b.Add(0, 1, 2)
	b.Add(1, 2, 3)
	b.Add(0, 1, 1) // duplicate, summed
	b.Add(3, 3, 7) // diagonal
	m := b.Build()
	if m.N() != 4 {
		t.Fatalf("N = %d", m.N())
	}
	if got := m.At(0, 1); got != 3 {
		t.Errorf("At(0,1) = %v, want 3", got)
	}
	if got := m.At(1, 0); got != 3 {
		t.Errorf("At(1,0) = %v, want 3 (symmetry)", got)
	}
	if got := m.At(2, 1); got != 3 {
		t.Errorf("At(2,1) = %v, want 3", got)
	}
	if got := m.At(3, 3); got != 7 {
		t.Errorf("At(3,3) = %v, want 7", got)
	}
	if got := m.At(0, 3); got != 0 {
		t.Errorf("At(0,3) = %v, want 0", got)
	}
	if got := m.NNZ(); got != 5 { // (0,1),(1,0),(1,2),(2,1),(3,3)
		t.Errorf("NNZ = %d, want 5", got)
	}
	if got := m.OffDiagNNZ(); got != 4 {
		t.Errorf("OffDiagNNZ = %d, want 4", got)
	}
	if d := m.Diag(); d[3] != 7 || d[0] != 0 {
		t.Errorf("Diag = %v", d)
	}
	if rs := m.RowSums(); rs[1] != 6 || rs[3] != 7 {
		t.Errorf("RowSums = %v", rs)
	}
}

func TestCSRZeroEntriesSkipped(t *testing.T) {
	b := NewCSRBuilder(3)
	b.Add(0, 1, 0)
	m := b.Build()
	if m.NNZ() != 0 {
		t.Errorf("explicit zero stored: NNZ = %d", m.NNZ())
	}
}

func TestCSRAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add out of range did not panic")
		}
	}()
	NewCSRBuilder(2).Add(0, 5, 1)
}

func TestMulVecAgainstDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		b := NewCSRBuilder(n)
		d := NewSymDense(n)
		for k := 0; k < 3*n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			v := rng.NormFloat64()
			b.Add(i, j, v)
			d.Add(i, j, v)
		}
		m := b.Build()
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ys := make([]float64, n)
		yd := make([]float64, n)
		m.MulVec(ys, x)
		d.MulVec(yd, x)
		for i := range ys {
			if !almostEq(ys[i], yd[i], 1e-9*(1+math.Abs(yd[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLaplacianProperties(t *testing.T) {
	// Laplacian rows sum to zero and Q = D - A ignoring self-loops.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		b := NewCSRBuilder(n)
		for k := 0; k < 2*n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			b.Add(i, j, rng.Float64()) // nonnegative weights
		}
		a := b.Build()
		q := Laplacian(a)
		one := make([]float64, n)
		for i := range one {
			one[i] = 1
		}
		y := make([]float64, n)
		q.MulVec(y, one)
		for _, v := range y {
			if math.Abs(v) > 1e-9 {
				return false
			}
		}
		// Positive semidefinite: x^T Q x >= 0 for random x.
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		q.MulVec(y, x)
		return Dot(x, y) >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDenseLaplacianMatchesSparse(t *testing.T) {
	b := NewCSRBuilder(3)
	b.Add(0, 1, 2)
	b.Add(1, 2, 0.5)
	b.Add(2, 2, 9) // self-loop, ignored by Laplacian
	a := b.Build()
	qs := Laplacian(a)
	qd := DenseLaplacian(FromCSR(a))
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !almostEq(qs.At(i, j), qd.At(i, j), 1e-12) {
				t.Errorf("Q[%d][%d]: sparse=%v dense=%v", i, j, qs.At(i, j), qd.At(i, j))
			}
		}
	}
	if qd.At(2, 2) != 0.5 {
		t.Errorf("self-loop leaked into Laplacian: %v", qd.At(2, 2))
	}
}

func TestFromCSR(t *testing.T) {
	b := NewCSRBuilder(3)
	b.Add(0, 2, 4)
	m := FromCSR(b.Build())
	if m.At(0, 2) != 4 || m.At(2, 0) != 4 || m.At(1, 1) != 0 {
		t.Errorf("FromCSR wrong: %v %v %v", m.At(0, 2), m.At(2, 0), m.At(1, 1))
	}
	c := m.Clone()
	c.Set(0, 2, 9)
	if m.At(0, 2) != 4 {
		t.Error("Clone shares storage")
	}
}
