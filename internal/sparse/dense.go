package sparse

import "fmt"

// SymDense is a small dense symmetric matrix stored as a full square. It
// exists to cross-validate the sparse path (Jacobi eigensolver in package
// eigen works on SymDense) and to handle the tiny worked examples from the
// paper exactly.
type SymDense struct {
	n    int
	data []float64 // row-major n×n
}

// NewSymDense returns a zero n×n symmetric matrix.
func NewSymDense(n int) *SymDense {
	if n < 0 {
		panic("sparse: negative dimension")
	}
	return &SymDense{n: n, data: make([]float64, n*n)}
}

// N returns the matrix dimension.
func (m *SymDense) N() int { return m.n }

// At returns A[i][j].
func (m *SymDense) At(i, j int) float64 { return m.data[i*m.n+j] }

// Set assigns A[i][j] = A[j][i] = v.
func (m *SymDense) Set(i, j int, v float64) {
	m.data[i*m.n+j] = v
	m.data[j*m.n+i] = v
}

// Add accumulates v into A[i][j] (and A[j][i] when i != j).
func (m *SymDense) Add(i, j int, v float64) {
	m.data[i*m.n+j] += v
	if i != j {
		m.data[j*m.n+i] += v
	}
}

// MulVec computes y = A*x.
func (m *SymDense) MulVec(y, x []float64) {
	if len(x) != m.n || len(y) != m.n {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch n=%d len(x)=%d len(y)=%d", m.n, len(x), len(y)))
	}
	for i := 0; i < m.n; i++ {
		row := m.data[i*m.n : (i+1)*m.n]
		s := 0.0
		for j, a := range row {
			s += a * x[j]
		}
		y[i] = s
	}
}

// Clone returns a deep copy.
func (m *SymDense) Clone() *SymDense {
	c := NewSymDense(m.n)
	copy(c.data, m.data)
	return c
}

// FromCSR converts a sparse symmetric matrix to dense form.
func FromCSR(a *SymCSR) *SymDense {
	m := NewSymDense(a.N())
	for i := 0; i < a.N(); i++ {
		cols, vals := a.Row(i)
		for k, j := range cols {
			m.data[i*m.n+j] = vals[k]
		}
	}
	return m
}

// DenseLaplacian returns Q = D − A for a dense adjacency matrix, ignoring
// any diagonal entries of a.
func DenseLaplacian(a *SymDense) *SymDense {
	q := NewSymDense(a.n)
	for i := 0; i < a.n; i++ {
		d := 0.0
		for j := 0; j < a.n; j++ {
			if j == i {
				continue
			}
			v := a.At(i, j)
			d += v
			q.data[i*q.n+j] = -v
		}
		q.data[i*q.n+i] = d
	}
	return q
}
