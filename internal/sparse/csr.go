package sparse

import (
	"fmt"
	"sort"

	"igpart/internal/par"
)

// SymCSR is a symmetric sparse matrix in compressed-sparse-row form. Both
// triangles are stored explicitly, which keeps the matrix-vector product a
// single contiguous sweep — the operation Lanczos iterates on.
type SymCSR struct {
	n       int
	rowPtr  []int
	colIdx  []int
	values  []float64
	diag    []float64 // cached diagonal (0 where absent)
	rowSums []float64 // cached sum of each row (including diagonal)
}

// N returns the matrix dimension.
func (m *SymCSR) N() int { return m.n }

// NNZ returns the number of stored nonzeros (both triangles plus diagonal).
func (m *SymCSR) NNZ() int { return len(m.values) }

// OffDiagNNZ returns the number of stored off-diagonal nonzeros. Divide by
// two for the number of distinct undirected adjacencies.
func (m *SymCSR) OffDiagNNZ() int {
	k := 0
	for i := 0; i < m.n; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			if m.colIdx[p] != i {
				k++
			}
		}
	}
	return k
}

// Diag returns the cached diagonal; entry i is A[i][i].
// The slice is owned by the matrix and must not be modified.
func (m *SymCSR) Diag() []float64 { return m.diag }

// RowSums returns, for each row, the sum of all entries in that row. For an
// adjacency matrix this is the weighted degree vector. The slice is owned by
// the matrix and must not be modified.
func (m *SymCSR) RowSums() []float64 { return m.rowSums }

// Row returns the column indices and values of row i. The slices are owned
// by the matrix and must not be modified.
func (m *SymCSR) Row(i int) ([]int, []float64) {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	return m.colIdx[lo:hi], m.values[lo:hi]
}

// At returns A[i][j] (0 when the entry is not stored).
func (m *SymCSR) At(i, j int) float64 {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	cols := m.colIdx[lo:hi]
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return m.values[lo+k]
	}
	return 0
}

// MulVec computes y = A*x. x and y must both have length N and must not
// alias each other.
func (m *SymCSR) MulVec(y, x []float64) {
	if len(x) != m.n || len(y) != m.n {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch n=%d len(x)=%d len(y)=%d", m.n, len(x), len(y)))
	}
	for i := 0; i < m.n; i++ {
		s := 0.0
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			s += m.values[p] * x[m.colIdx[p]]
		}
		y[i] = s
	}
}

// MulVecRange computes y[lo:hi] = (A*x)[lo:hi], the row slice of the
// product. Each row is accumulated exactly as MulVec does — same
// summation order, same bits. Callers are responsible for covering
// [0, N) with disjoint ranges.
func (m *SymCSR) MulVecRange(y, x []float64, lo, hi int) {
	if len(x) != m.n || len(y) != m.n {
		panic(fmt.Sprintf("sparse: MulVecRange dimension mismatch n=%d len(x)=%d len(y)=%d", m.n, len(x), len(y)))
	}
	for i := lo; i < hi; i++ {
		s := 0.0
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			s += m.values[p] * x[m.colIdx[p]]
		}
		y[i] = s
	}
}

// ParMulVec computes y = A*x with rows sharded across workers goroutines
// (<= 0 selects GOMAXPROCS). Shards are contiguous row ranges balanced by
// stored nonzeros, rows are written disjointly, and per-row summation
// order is unchanged, so the result is bit-identical to MulVec for every
// worker count.
func (m *SymCSR) ParMulVec(y, x []float64, workers int) {
	p := par.Workers(workers, m.n)
	if p == 1 {
		m.MulVec(y, x)
		return
	}
	bounds := m.rowBounds(p)
	par.Run(len(bounds), func(i int) {
		m.MulVecRange(y, x, bounds[i][0], bounds[i][1])
	})
}

// rowBounds cuts the rows into p contiguous shards balanced by stored
// nonzeros: shard boundary k is the first row whose rowPtr reaches
// k·nnz/p. A pure function of the matrix shape and p — the same matrix
// always shards the same way.
func (m *SymCSR) rowBounds(p int) [][2]int {
	nnz := len(m.values)
	bounds := make([][2]int, p)
	lo := 0
	for k := 1; k <= p; k++ {
		hi := m.n
		if k < p {
			target := k * nnz / p
			hi = sort.SearchInts(m.rowPtr[:m.n+1], target)
			// SearchInts lands on the first rowPtr >= target; clamp so
			// shards never run backwards on empty-row runs.
			if hi > m.n {
				hi = m.n
			}
			if hi < lo {
				hi = lo
			}
		}
		bounds[k-1] = [2]int{lo, hi}
		lo = hi
	}
	return bounds
}

// Coord is a single (i, j, v) triplet used when assembling a matrix.
type Coord struct {
	I, J int
	V    float64
}

// CSRBuilder accumulates coordinate-form entries and assembles a SymCSR.
// Entries may be added in any order; duplicates are summed. Adding (i, j)
// with i != j automatically adds the mirrored (j, i), so callers supply each
// undirected adjacency once.
type CSRBuilder struct {
	n      int
	coords []Coord
}

// NewCSRBuilder returns a builder for an n×n symmetric matrix.
func NewCSRBuilder(n int) *CSRBuilder {
	if n < 0 {
		panic("sparse: negative dimension")
	}
	return &CSRBuilder{n: n}
}

// Add accumulates v into A[i][j] (and A[j][i] when i != j).
func (b *CSRBuilder) Add(i, j int, v float64) {
	if i < 0 || i >= b.n || j < 0 || j >= b.n {
		panic(fmt.Sprintf("sparse: Add(%d,%d) outside %d×%d", i, j, b.n, b.n))
	}
	if v == 0 {
		return
	}
	b.coords = append(b.coords, Coord{i, j, v})
	if i != j {
		b.coords = append(b.coords, Coord{j, i, v})
	}
}

// Build assembles the matrix. The builder may be reused afterwards (it keeps
// its accumulated entries).
func (b *CSRBuilder) Build() *SymCSR {
	sorted := append([]Coord(nil), b.coords...)
	sort.Slice(sorted, func(a, c int) bool {
		if sorted[a].I != sorted[c].I {
			return sorted[a].I < sorted[c].I
		}
		return sorted[a].J < sorted[c].J
	})
	m := &SymCSR{n: b.n}
	m.rowPtr = make([]int, b.n+1)
	// First pass: merge duplicates.
	merged := sorted[:0]
	for _, c := range sorted {
		if k := len(merged); k > 0 && merged[k-1].I == c.I && merged[k-1].J == c.J {
			merged[k-1].V += c.V
		} else {
			merged = append(merged, c)
		}
	}
	m.colIdx = make([]int, len(merged))
	m.values = make([]float64, len(merged))
	for k, c := range merged {
		m.rowPtr[c.I+1]++
		m.colIdx[k] = c.J
		m.values[k] = c.V
	}
	for i := 0; i < b.n; i++ {
		m.rowPtr[i+1] += m.rowPtr[i]
	}
	m.diag = make([]float64, b.n)
	m.rowSums = make([]float64, b.n)
	for i := 0; i < b.n; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			m.rowSums[i] += m.values[p]
			if m.colIdx[p] == i {
				m.diag[i] = m.values[p]
			}
		}
	}
	return m
}

// Laplacian returns the graph Laplacian Q = D − A of the adjacency matrix a,
// where D is the diagonal matrix of row sums of a. Any diagonal entries of a
// are ignored (self-loops do not affect a Laplacian).
//
// The build is a direct two-pass row stream over a: O(nnz) time and
// memory, no coordinate buffer and no global sort. Entry values and
// accumulation orders match the historical builder-based assembly
// bit for bit (degrees fold over a's columns in ascending order; zero
// entries are elided the same way CSRBuilder.Add elided them).
func Laplacian(a *SymCSR) *SymCSR {
	n := a.n
	m := &SymCSR{n: n}
	m.rowPtr = make([]int, n+1)
	for i := 0; i < n; i++ {
		cnt := 0
		deg := 0.0
		for p := a.rowPtr[i]; p < a.rowPtr[i+1]; p++ {
			if a.colIdx[p] != i {
				deg += a.values[p]
				if a.values[p] != 0 {
					cnt++
				}
			}
		}
		if deg != 0 {
			cnt++ // the diagonal entry
		}
		m.rowPtr[i+1] = m.rowPtr[i] + cnt
	}
	m.colIdx = make([]int, m.rowPtr[n])
	m.values = make([]float64, m.rowPtr[n])
	m.diag = make([]float64, n)
	m.rowSums = make([]float64, n)
	for i := 0; i < n; i++ {
		deg := 0.0
		for p := a.rowPtr[i]; p < a.rowPtr[i+1]; p++ {
			if a.colIdx[p] != i {
				deg += a.values[p]
			}
		}
		k := m.rowPtr[i]
		wroteDiag := deg == 0 // nothing to write for isolated rows
		for p := a.rowPtr[i]; p < a.rowPtr[i+1]; p++ {
			j := a.colIdx[p]
			if j == i || a.values[p] == 0 {
				continue
			}
			if j > i && !wroteDiag {
				m.colIdx[k] = i
				m.values[k] = deg
				k++
				wroteDiag = true
			}
			m.colIdx[k] = j
			m.values[k] = -a.values[p]
			k++
		}
		if !wroteDiag {
			m.colIdx[k] = i
			m.values[k] = deg
			k++
		}
		m.diag[i] = deg
		s := 0.0
		for p := m.rowPtr[i]; p < k; p++ {
			s += m.values[p]
		}
		m.rowSums[i] = s
	}
	return m
}

// RowsBuilder assembles a SymCSR one row at a time, in row order, with
// no intermediate coordinate buffer — O(nnz) memory and time, the
// memory-lean path for streaming constructions like the intersection
// graph. The caller supplies each row's columns in strictly ascending
// order and is responsible for overall symmetry; zero values are elided
// to match CSRBuilder semantics.
type RowsBuilder struct {
	n      int
	next   int // next row to be appended
	rowPtr []int
	colIdx []int
	values []float64
}

// NewRowsBuilder returns a streaming builder for an n×n symmetric matrix.
func NewRowsBuilder(n int) *RowsBuilder {
	if n < 0 {
		panic("sparse: negative dimension")
	}
	return &RowsBuilder{n: n, rowPtr: make([]int, 1, n+1)}
}

// AppendRow adds the next row with the given columns and values (equal
// length, columns strictly ascending within [0, n)). The slices are
// copied; callers may reuse them. Call exactly n times, once per row.
func (b *RowsBuilder) AppendRow(cols []int, vals []float64) {
	if b.next >= b.n {
		panic(fmt.Sprintf("sparse: AppendRow past row %d of %d", b.next, b.n))
	}
	if len(cols) != len(vals) {
		panic(fmt.Sprintf("sparse: AppendRow length mismatch %d cols vs %d vals", len(cols), len(vals)))
	}
	prev := -1
	for k, c := range cols {
		if c < 0 || c >= b.n {
			panic(fmt.Sprintf("sparse: AppendRow column %d outside %d×%d", c, b.n, b.n))
		}
		if c <= prev {
			panic(fmt.Sprintf("sparse: AppendRow columns not strictly ascending at %d", c))
		}
		prev = c
		if vals[k] == 0 {
			continue
		}
		b.colIdx = append(b.colIdx, c)
		b.values = append(b.values, vals[k])
	}
	b.next++
	b.rowPtr = append(b.rowPtr, len(b.colIdx))
}

// Build finalizes the matrix. All n rows must have been appended.
func (b *RowsBuilder) Build() *SymCSR {
	if b.next != b.n {
		panic(fmt.Sprintf("sparse: Build after %d of %d rows", b.next, b.n))
	}
	m := &SymCSR{
		n:      b.n,
		rowPtr: b.rowPtr,
		colIdx: b.colIdx,
		values: b.values,
	}
	if m.colIdx == nil {
		m.colIdx = []int{}
	}
	if m.values == nil {
		m.values = []float64{}
	}
	m.diag = make([]float64, b.n)
	m.rowSums = make([]float64, b.n)
	for i := 0; i < b.n; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			m.rowSums[i] += m.values[p]
			if m.colIdx[p] == i {
				m.diag[i] = m.values[p]
			}
		}
	}
	return m
}
