package sparse

import (
	"fmt"
	"sort"
)

// SymCSR is a symmetric sparse matrix in compressed-sparse-row form. Both
// triangles are stored explicitly, which keeps the matrix-vector product a
// single contiguous sweep — the operation Lanczos iterates on.
type SymCSR struct {
	n       int
	rowPtr  []int
	colIdx  []int
	values  []float64
	diag    []float64 // cached diagonal (0 where absent)
	rowSums []float64 // cached sum of each row (including diagonal)
}

// N returns the matrix dimension.
func (m *SymCSR) N() int { return m.n }

// NNZ returns the number of stored nonzeros (both triangles plus diagonal).
func (m *SymCSR) NNZ() int { return len(m.values) }

// OffDiagNNZ returns the number of stored off-diagonal nonzeros. Divide by
// two for the number of distinct undirected adjacencies.
func (m *SymCSR) OffDiagNNZ() int {
	k := 0
	for i := 0; i < m.n; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			if m.colIdx[p] != i {
				k++
			}
		}
	}
	return k
}

// Diag returns the cached diagonal; entry i is A[i][i].
// The slice is owned by the matrix and must not be modified.
func (m *SymCSR) Diag() []float64 { return m.diag }

// RowSums returns, for each row, the sum of all entries in that row. For an
// adjacency matrix this is the weighted degree vector. The slice is owned by
// the matrix and must not be modified.
func (m *SymCSR) RowSums() []float64 { return m.rowSums }

// Row returns the column indices and values of row i. The slices are owned
// by the matrix and must not be modified.
func (m *SymCSR) Row(i int) ([]int, []float64) {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	return m.colIdx[lo:hi], m.values[lo:hi]
}

// At returns A[i][j] (0 when the entry is not stored).
func (m *SymCSR) At(i, j int) float64 {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	cols := m.colIdx[lo:hi]
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return m.values[lo+k]
	}
	return 0
}

// MulVec computes y = A*x. x and y must both have length N and must not
// alias each other.
func (m *SymCSR) MulVec(y, x []float64) {
	if len(x) != m.n || len(y) != m.n {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch n=%d len(x)=%d len(y)=%d", m.n, len(x), len(y)))
	}
	for i := 0; i < m.n; i++ {
		s := 0.0
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			s += m.values[p] * x[m.colIdx[p]]
		}
		y[i] = s
	}
}

// Coord is a single (i, j, v) triplet used when assembling a matrix.
type Coord struct {
	I, J int
	V    float64
}

// CSRBuilder accumulates coordinate-form entries and assembles a SymCSR.
// Entries may be added in any order; duplicates are summed. Adding (i, j)
// with i != j automatically adds the mirrored (j, i), so callers supply each
// undirected adjacency once.
type CSRBuilder struct {
	n      int
	coords []Coord
}

// NewCSRBuilder returns a builder for an n×n symmetric matrix.
func NewCSRBuilder(n int) *CSRBuilder {
	if n < 0 {
		panic("sparse: negative dimension")
	}
	return &CSRBuilder{n: n}
}

// Add accumulates v into A[i][j] (and A[j][i] when i != j).
func (b *CSRBuilder) Add(i, j int, v float64) {
	if i < 0 || i >= b.n || j < 0 || j >= b.n {
		panic(fmt.Sprintf("sparse: Add(%d,%d) outside %d×%d", i, j, b.n, b.n))
	}
	if v == 0 {
		return
	}
	b.coords = append(b.coords, Coord{i, j, v})
	if i != j {
		b.coords = append(b.coords, Coord{j, i, v})
	}
}

// Build assembles the matrix. The builder may be reused afterwards (it keeps
// its accumulated entries).
func (b *CSRBuilder) Build() *SymCSR {
	sorted := append([]Coord(nil), b.coords...)
	sort.Slice(sorted, func(a, c int) bool {
		if sorted[a].I != sorted[c].I {
			return sorted[a].I < sorted[c].I
		}
		return sorted[a].J < sorted[c].J
	})
	m := &SymCSR{n: b.n}
	m.rowPtr = make([]int, b.n+1)
	// First pass: merge duplicates.
	merged := sorted[:0]
	for _, c := range sorted {
		if k := len(merged); k > 0 && merged[k-1].I == c.I && merged[k-1].J == c.J {
			merged[k-1].V += c.V
		} else {
			merged = append(merged, c)
		}
	}
	m.colIdx = make([]int, len(merged))
	m.values = make([]float64, len(merged))
	for k, c := range merged {
		m.rowPtr[c.I+1]++
		m.colIdx[k] = c.J
		m.values[k] = c.V
	}
	for i := 0; i < b.n; i++ {
		m.rowPtr[i+1] += m.rowPtr[i]
	}
	m.diag = make([]float64, b.n)
	m.rowSums = make([]float64, b.n)
	for i := 0; i < b.n; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			m.rowSums[i] += m.values[p]
			if m.colIdx[p] == i {
				m.diag[i] = m.values[p]
			}
		}
	}
	return m
}

// Laplacian returns the graph Laplacian Q = D − A of the adjacency matrix a,
// where D is the diagonal matrix of row sums of a. Any diagonal entries of a
// are ignored (self-loops do not affect a Laplacian).
func Laplacian(a *SymCSR) *SymCSR {
	b := NewCSRBuilder(a.n)
	deg := make([]float64, a.n)
	for i := 0; i < a.n; i++ {
		for p := a.rowPtr[i]; p < a.rowPtr[i+1]; p++ {
			j := a.colIdx[p]
			if j == i {
				continue
			}
			deg[i] += a.values[p]
			if j > i {
				b.Add(i, j, -a.values[p])
			}
		}
	}
	for i, d := range deg {
		b.Add(i, i, d)
	}
	return b.Build()
}
