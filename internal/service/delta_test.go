package service

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"igpart"
)

// solveBase submits h with opts and waits for the solve; the returned
// job is a warm-startable base for SubmitDelta tests.
func solveBase(t *testing.T, e *Engine, h *igpart.Netlist, opts Options) *Job {
	t.Helper()
	job, err := e.Submit(Request{Netlist: h, Options: opts})
	if err != nil {
		t.Fatalf("submit base: %v", err)
	}
	if s := job.Wait(context.Background()); s.State != StateDone {
		t.Fatalf("base state = %s (err %v), want done", s.State, s.Err)
	}
	return job
}

// smallDelta perturbs a handful of nets of a generated netlist:
// remove net 3, add one net, and move a pin on net 0.
func smallDelta(t *testing.T, h *igpart.Netlist) igpart.NetlistDelta {
	t.Helper()
	pins := h.Pins(0)
	if len(pins) == 0 {
		t.Fatal("net 0 has no pins")
	}
	// A pin (0, mod) not already on net 0.
	add := -1
	on := make(map[int]bool, len(pins))
	for _, v := range pins {
		on[v] = true
	}
	for v := 0; v < h.NumModules(); v++ {
		if !on[v] {
			add = v
			break
		}
	}
	if add < 0 {
		t.Fatal("net 0 covers every module")
	}
	d := igpart.NetlistDelta{
		AddNets:    [][]int{{0, 1, 2}},
		RemoveNets: []int{3},
		AddPins:    []igpart.DeltaPin{{Net: 0, Module: add}},
		RemovePins: []igpart.DeltaPin{{Net: 0, Module: pins[0]}},
	}
	if err := d.Validate(h); err != nil {
		t.Fatalf("smallDelta invalid: %v", err)
	}
	return d
}

func TestSubmitDeltaWarmLifecycle(t *testing.T) {
	h := genNetlist(t, 150, 180, 21)
	e := New(Config{Workers: 2})
	defer shutdownNow(t, e)

	base := solveBase(t, e, h, Options{})
	d := smallDelta(t, h)
	job, err := e.SubmitDelta(base.ID(), d, 0)
	if err != nil {
		t.Fatalf("submit delta: %v", err)
	}
	s := job.Wait(context.Background())
	if s.State != StateDone {
		t.Fatalf("delta state = %s (err %v), want done", s.State, s.Err)
	}
	r := s.Result
	if !r.Warm {
		t.Fatalf("%d-net delta fell back cold (threshold should warm-start it)", d.TouchedNets())
	}
	if r.TouchedNets != d.TouchedNets() {
		t.Fatalf("result TouchedNets = %d, want %d", r.TouchedNets, d.TouchedNets())
	}
	applied, _ := d.Apply(h)
	if len(r.Sides) != applied.NumModules() {
		t.Fatalf("sides has %d entries, want %d", len(r.Sides), applied.NumModules())
	}
	// The warm result must carry a net ordering so it can itself serve
	// as the base of a further delta (ECO chains).
	if len(r.NetOrder) != applied.NumNets() || r.BestRank < 1 {
		t.Fatalf("warm result not chainable: %d order entries (want %d), rank %d",
			len(r.NetOrder), applied.NumNets(), r.BestRank)
	}
	// Same result contract as any IG-Match solve: a real bipartition
	// (both sides populated; a zero cut is fine — the delta may
	// disconnect a component) no worse than twice the cold ratio cut.
	a, b := 0, 0
	for _, side := range r.Sides {
		if side == 0 {
			a++
		} else {
			b++
		}
	}
	if a == 0 || b == 0 {
		t.Fatalf("degenerate bipartition: %d/%d", a, b)
	}
	direct, err := igpart.IGMatch(applied)
	if err != nil {
		t.Fatalf("direct IGMatch on applied: %v", err)
	}
	if r.Metrics.RatioCut > 2*direct.Metrics.RatioCut {
		t.Fatalf("warm ratio cut %+v far worse than cold %+v", r.Metrics, direct.Metrics)
	}

	// Chain: a further delta against the delta job warm-starts again.
	d2 := igpart.NetlistDelta{RemoveNets: []int{1}}
	if err := d2.Validate(applied); err != nil {
		t.Fatalf("chain delta invalid: %v", err)
	}
	job2, err := e.SubmitDelta(job.ID(), d2, 0)
	if err != nil {
		t.Fatalf("submit chained delta: %v", err)
	}
	if s2 := job2.Wait(context.Background()); s2.State != StateDone || !s2.Result.Warm {
		t.Fatalf("chained delta: state %s warm %v, want done+warm", s2.State, s2.Result != nil && s2.Result.Warm)
	}
}

func TestSubmitDeltaRejections(t *testing.T) {
	h := genNetlist(t, 100, 120, 5)
	e := New(Config{Workers: 1})
	defer shutdownNow(t, e)

	d := igpart.NetlistDelta{RemoveNets: []int{0}}
	if _, err := e.SubmitDelta("job-nope", d, 0); !errors.Is(err, ErrUnknownBase) {
		t.Fatalf("unknown base: err = %v, want ErrUnknownBase", err)
	}

	// A multilevel result carries no net ordering — not warm-startable.
	ml := solveBase(t, e, h, Options{Algo: AlgoMultilevel, Levels: 2})
	if _, err := e.SubmitDelta(ml.ID(), d, 0); !errors.Is(err, ErrNotWarmStartable) {
		t.Fatalf("multilevel base: err = %v, want ErrNotWarmStartable", err)
	}

	base := solveBase(t, e, h, Options{})
	bad := igpart.NetlistDelta{RemoveNets: []int{h.NumNets() + 7}}
	if _, err := e.SubmitDelta(base.ID(), bad, 0); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("out-of-range delta: err = %v, want ErrBadRequest", err)
	}
	if _, err := e.SubmitDelta(base.ID(), d, -time.Second); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("negative timeout: err = %v, want ErrBadRequest", err)
	}
}

func TestSubmitDeltaCacheHit(t *testing.T) {
	h := genNetlist(t, 120, 140, 9)
	e := New(Config{Workers: 1, CacheEntries: 16})
	defer shutdownNow(t, e)

	var warmSolves atomic.Int64
	inner := e.solveDeltaFn
	e.solveDeltaFn = func(ctx context.Context, ws *warmSpec, o Options) (*Result, error) {
		warmSolves.Add(1)
		return inner(ctx, ws, o)
	}

	base := solveBase(t, e, h, Options{})
	d := smallDelta(t, h)
	j1, err := e.SubmitDelta(base.ID(), d, 0)
	if err != nil {
		t.Fatalf("first delta: %v", err)
	}
	s1 := j1.Wait(context.Background())
	if s1.State != StateDone || s1.Cached {
		t.Fatalf("first delta: state %s cached %v, want done uncached", s1.State, s1.Cached)
	}

	// The same edit set with every list reordered must hit the cache —
	// the delta cache key builds on the canonical encoding.
	shuffled := igpart.NetlistDelta{
		AddNets:    d.AddNets,
		RemoveNets: d.RemoveNets,
		AddPins:    d.AddPins,
		RemovePins: d.RemovePins,
	}
	shuffled.AddNets = [][]int{{2, 0, 1}}
	j2, err := e.SubmitDelta(base.ID(), shuffled, 0)
	if err != nil {
		t.Fatalf("resubmit delta: %v", err)
	}
	s2 := j2.Wait(context.Background())
	if s2.State != StateDone || !s2.Cached {
		t.Fatalf("resubmit: state %s cached %v, want done+cached", s2.State, s2.Cached)
	}
	if got := warmSolves.Load(); got != 1 {
		t.Fatalf("warm solve ran %d times, want 1 (second submit must hit cache)", got)
	}
	if s1.Result.Metrics != s2.Result.Metrics {
		t.Fatalf("cached metrics diverge: %+v vs %+v", s1.Result.Metrics, s2.Result.Metrics)
	}
}

// FuzzDeltaRequest throws arbitrary deltas at SubmitDelta: malformed
// ones must come back as typed ErrBadRequest (never a panic or an
// untyped error), and accepted ones must have an order-insensitive
// cache key — reversing every edit list yields the same deltaCacheKey.
func FuzzDeltaRequest(f *testing.F) {
	h, err := igpart.Generate(igpart.GenConfig{Name: "fuzz", Modules: 60, Nets: 80, Seed: 3})
	if err != nil {
		f.Fatal(err)
	}
	e := New(Config{Workers: 1})
	base, err := e.Submit(Request{Netlist: h})
	if err != nil {
		f.Fatal(err)
	}
	if s := base.Wait(context.Background()); s.State != StateDone {
		f.Fatalf("base solve failed: %s", s.State)
	}
	f.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		e.Shutdown(ctx)
	})

	f.Add(int16(3), int16(0), int16(5), int16(1), int16(2), int16(7), false)
	f.Add(int16(-1), int16(9), int16(200), int16(0), int16(0), int16(0), true)
	f.Add(int16(0), int16(0), int16(0), int16(0), int16(0), int16(0), false)
	f.Fuzz(func(t *testing.T, rmNet, addNetA, addNetB, pinNet, pinModA, pinModB int16, dup bool) {
		d := igpart.NetlistDelta{
			AddNets:    [][]int{{int(addNetA), int(addNetB)}},
			RemoveNets: []int{int(rmNet)},
			AddPins:    []igpart.DeltaPin{{Net: int(pinNet), Module: int(pinModA)}},
			RemovePins: []igpart.DeltaPin{{Net: int(pinNet), Module: int(pinModB)}},
		}
		if dup {
			d.RemoveNets = append(d.RemoveNets, int(rmNet))
		}
		job, err := e.SubmitDelta(base.ID(), d, 0)
		if err != nil {
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("rejection not typed ErrBadRequest: %v", err)
			}
			return
		}
		if s := job.Wait(context.Background()); s.State != StateDone {
			t.Fatalf("accepted delta failed: %s (err %v)", s.State, s.Err)
		}
		// Cache-key stability: reversing the edit lists is the same edit
		// set, so the canonical key must not move.
		rev := igpart.NetlistDelta{
			AddNets:    [][]int{{int(addNetB), int(addNetA)}},
			RemoveNets: d.RemoveNets,
			AddPins:    d.AddPins,
			RemovePins: d.RemovePins,
		}
		o := base.req.Options
		if k1, k2 := deltaCacheKey(h, d, o), deltaCacheKey(h, rev, o); k1 != k2 {
			t.Fatalf("cache key order-sensitive: %s != %s", k1, k2)
		}
	})
}
